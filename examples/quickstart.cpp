// Quickstart: the full perturbation-analysis pipeline in ~60 lines.
//
//   1. describe a parallel program (a DOACROSS loop with a dependence chain)
//   2. simulate it uninstrumented  -> the "actual" trace
//   3. simulate it with software probes -> the perturbed "measured" trace
//   4. recover the actual behaviour from the measured trace with time-based
//      and event-based perturbation analysis, and compare.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "experiments/experiments.hpp"
#include "trace/validate.hpp"

int main() {
  using namespace perturb;

  // 1. A DOACROSS loop: 400 iterations, each doing independent work, then a
  //    guarded update that iteration i+1 depends on (distance 1).
  sim::Program program;
  const auto chain = program.declare_sync_var("chain");
  sim::Block body;
  body.nodes.push_back(sim::compute("independent work", 120));
  body.nodes.push_back(sim::await(chain, {1, -1}));     // await(i-1)
  body.nodes.push_back(sim::compute("guarded update", 24));
  body.nodes.push_back(sim::advance(chain, {1, 0}));    // advance(i)
  body.nodes.push_back(sim::compute("post work", 40));
  program.root().nodes.push_back(
      sim::par_loop("quickstart", sim::LoopKind::kDoacross,
                    sim::Schedule::kCyclic, 400, std::move(body)));
  program.finalize();

  // 2-4. Run the experiment pipeline: actual run, measured run under full
  //      instrumentation, then both analyses.
  experiments::Setup setup;  // 8 processors, ~175-cycle statement probes
  const auto run = experiments::run_program_experiment(
      program, setup, experiments::PlanKind::kFull, "quickstart");

  std::printf("actual total time:    %lld cycles\n",
              static_cast<long long>(run.actual.total_time()));
  std::printf("measured total time:  %lld cycles  (%.2fx slowdown)\n",
              static_cast<long long>(run.measured.total_time()),
              run.tb_quality.measured_over_actual);
  std::printf("time-based approx:    %lld cycles  (%+.1f%% error)\n",
              static_cast<long long>(run.time_based.total_time()),
              run.tb_quality.percent_error);
  std::printf("event-based approx:   %lld cycles  (%+.1f%% error)\n",
              static_cast<long long>(run.event_based.approx.total_time()),
              run.eb_quality.percent_error);
  std::printf("waits removed: %zu, introduced: %zu (of %zu awaits)\n",
              run.event_based.waits_removed, run.event_based.waits_introduced,
              run.event_based.awaits_total);

  // The approximation is still a feasible execution: the causality checks
  // that hold for real traces hold for it too.
  const auto violations = trace::validate(run.event_based.approx);
  std::printf("approximated trace causality violations: %zu\n",
              violations.size());
  return violations.empty() ? 0 : 1;
}
