// Full Livermore-suite perturbation study: runs every kernel of the paper's
// loop sets through the measurement pipeline and prints a combined report —
// sequential loops under time-based analysis (Figure 1's experiment) and the
// DOACROSS loops under both analyses (Tables 1 and 2), plus the native C++
// kernels' checksums as a functional cross-check of the workload suite.
//
// Options: --n <trip> --procs <p> --stmt-probe <cycles> --seed <s>
#include <algorithm>
#include <cstdio>

#include "experiments/experiments.hpp"
#include "loops/kernels.hpp"
#include "analysis/report.hpp"
#include "loops/programs.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  experiments::Setup setup;
  setup.machine.num_procs =
      static_cast<std::uint32_t>(cli.get_int("procs", 8));
  setup.stmt.mean = cli.get_double("stmt-probe", setup.stmt.mean);
  setup.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1991));
  const auto n = cli.get_int("n", 1001);

  std::printf("Livermore loop perturbation study  (P=%u, n=%lld, stmt probe "
              "%.0f cycles)\n\n",
              setup.machine.num_procs, static_cast<long long>(n),
              setup.stmt.mean);

  std::printf("-- native kernels (functional check) --\n");
  loops::LfkData data(n);
  for (int k = 1; k <= loops::kNumKernels; ++k) {
    data.reset();
    const double checksum = loops::run_kernel(k, data);
    std::printf("  lfk%-3d %-34s checksum %.6e\n", k, loops::kernel_name(k),
                checksum);
  }

  std::printf("\n-- sequential loops, full statement instrumentation, "
              "time-based analysis --\n");
  std::printf("  %-5s %-34s %9s %9s\n", "loop", "kernel", "slowdown", "err%");
  for (const int loop : loops::sequential_study_loops()) {
    const auto run = experiments::run_sequential_experiment(loop, n, setup);
    std::printf("  %-5d %-34s %8.2fx %+8.2f%%\n", loop,
                loops::kernel_name(loop), run.tb_quality.measured_over_actual,
                run.tb_quality.percent_error);
  }

  std::printf("\n-- DOACROSS loops, time-based vs event-based --\n");
  std::printf("  %-5s %-34s %9s %9s %9s\n", "loop", "kernel", "slowdown",
              "tb err%", "eb err%");
  for (const int loop : loops::doacross_study_loops()) {
    const auto t1 = experiments::run_concurrent_experiment(
        loop, n, setup, experiments::PlanKind::kStatementsOnly);
    const auto t2 = experiments::run_concurrent_experiment(
        loop, n, setup, experiments::PlanKind::kFull);
    std::printf("  %-5d %-34s %8.2fx %+8.1f%% %+8.1f%%\n", loop,
                loops::kernel_name(loop), t2.eb_quality.measured_over_actual,
                t1.tb_quality.percent_error, t2.eb_quality.percent_error);
  }

  std::printf("\nevent-based analysis keeps dependent-loop approximations\n"
              "within a few percent while time-based analysis misses by\n"
              "double-digit factors in both directions.\n");

  // Deep dive: the full §5.3-style report for loop 17, generated from the
  // event-based approximation of the measured trace.
  std::printf("\n");
  const auto deep = experiments::run_concurrent_experiment(
      17, std::min<std::int64_t>(n, 240), setup, experiments::PlanKind::kFull);
  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  const auto ov = experiments::overheads_for(plan, setup.machine);
  analysis::ReportOptions report;
  report.classifier.await_nowait = ov.s_nowait;
  report.classifier.lock_acquire = ov.lock_acquire;
  report.classifier.barrier_depart = ov.barrier_depart;
  report.classifier.tolerance = 2;
  std::printf("%s", analysis::render_report(deep.event_based.approx,
                                            &deep.eb_quality, report)
                        .c_str());
  return 0;
}
