// Semaphore case study: a DOALL loop whose iterations each need one of a
// small pool of identical resources (think memory ports, DMA engines, or
// I/O buffers), modelled with a counting semaphore.
//
// Instrumentation inside the resource-holding region stretches the holding
// time, inflating pool contention in the measurement — the loop-17 mechanism,
// but through a capacity-c semaphore rather than a serializing chain.  The
// example shows:
//   1. time-based analysis over-approximates (it cannot remove the inflated
//      queueing),
//   2. event-based analysis *without* capacity knowledge does no better
//      (semaphores need external information, like scheduling in §4.2.3),
//   3. event-based analysis with the declared capacity recovers the actual
//      time within a few percent.
//
// Options: --n <iterations> --capacity <c> --procs <p>
#include <cstdio>

#include "core/eventbased.hpp"
#include "core/timebased.hpp"
#include "experiments/experiments.hpp"
#include "support/cli.hpp"
#include "trace/validate.hpp"

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  const auto n = cli.get_int("n", 400);
  const auto capacity = cli.get_int("capacity", 2);
  experiments::Setup setup;
  setup.machine.num_procs =
      static_cast<std::uint32_t>(cli.get_int("procs", 8));

  // The program: independent work, then a semaphore-guarded "resource use"
  // region whose statements are instrumentation sites.
  sim::Program program;
  const auto pool = program.declare_semaphore("pool", capacity);
  sim::Block region;
  region.nodes.push_back(sim::compute("stage into buffer", 30));
  region.nodes.push_back(sim::compute("operate on resource", 45));
  sim::Block body;
  body.nodes.push_back(sim::compute("prepare", 140));
  body.nodes.push_back(sim::semaphore_region(pool, std::move(region)));
  body.nodes.push_back(sim::compute("consume result", 60));
  program.root().nodes.push_back(
      sim::par_loop("pool-loop", sim::LoopKind::kDoall, sim::Schedule::kCyclic,
                    n, std::move(body)));
  program.finalize();

  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  auto ov = experiments::overheads_for(plan, setup.machine);
  ov.sem_acquire = setup.machine.sem_acquire_cost;

  const auto actual = sim::simulate_actual(setup.machine, program, "actual");
  const auto measured =
      sim::simulate(setup.machine, program, plan, "measured");

  const auto ratio = [&](trace::Tick t) {
    return static_cast<double>(t) / static_cast<double>(actual.total_time());
  };

  std::printf("resource pool: %lld iterations, capacity %lld, %u processors\n",
              static_cast<long long>(n), static_cast<long long>(capacity),
              setup.machine.num_procs);
  std::printf("actual:    %8lld cycles\n",
              static_cast<long long>(actual.total_time()));
  std::printf("measured:  %8lld cycles  (%.2fx)\n",
              static_cast<long long>(measured.total_time()),
              ratio(measured.total_time()));

  const auto tb = core::time_based_approximation(measured, ov);
  std::printf("time-based approx:                 %8lld  (%.2fx)\n",
              static_cast<long long>(tb.total_time()), ratio(tb.total_time()));

  const auto eb_blind = core::event_based_approximation(measured, ov, {});
  std::printf("event-based, capacity unknown:     %8lld  (%.2fx)\n",
              static_cast<long long>(eb_blind.approx.total_time()),
              ratio(eb_blind.approx.total_time()));

  core::EventBasedOptions opt;
  opt.semaphore_capacity[pool] = capacity;
  const auto eb = core::event_based_approximation(measured, ov, opt);
  std::printf("event-based, capacity declared:    %8lld  (%.2fx)\n",
              static_cast<long long>(eb.approx.total_time()),
              ratio(eb.approx.total_time()));

  const auto violations = trace::validate(eb.approx);
  std::printf("approximation causality violations: %zu\n", violations.size());
  return violations.empty() ? 0 : 1;
}
