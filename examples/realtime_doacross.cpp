// Real-threads demonstration: traces a live DOACROSS execution (kernel 3's
// inner-product dependence pattern) with the src/rt runtime and feeds the
// genuinely perturbed measured trace into event-based perturbation analysis.
//
// Unlike the simulator experiments, there is no exact ground truth here —
// exactly the paper's situation.  The example calibrates the tracer's
// per-event cost empirically, runs the loop twice (untraced wall-clock vs
// traced), and compares the untraced duration against the analysis'
// approximated duration.
//
// Options: --n <iterations> --threads <t>
#include <chrono>
#include <thread>
#include <cstdio>

#include "analysis/waiting.hpp"
#include "core/eventbased.hpp"
#include "rt/doacross.hpp"
#include "rt/tracer.hpp"
#include "support/cli.hpp"
#include "trace/validate.hpp"

namespace {

using namespace perturb;

/// Measures the tracer's mean per-event recording cost in nanoseconds.
double calibrate_probe_ns() {
  rt::Tracer tracer(1, 1u << 16);
  constexpr int kEvents = 50000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kEvents; ++i)
    tracer.record(0, trace::EventKind::kStmtEnter, 1, 0, i);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / kEvents;
}

volatile double g_sink = 0.0;

/// A unit of CPU work (~a few hundred ns); `reps` scales it.
void burn(int reps) {
  double acc = g_sink;
  for (int r = 0; r < reps * 40; ++r) acc += static_cast<double>(r) * 1e-9;
  g_sink = acc;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 2000);
  const auto threads = static_cast<std::uint32_t>(cli.get_int("threads", 2));

  if (std::thread::hardware_concurrency() < threads) {
    std::printf("note: %u worker threads on %u hardware thread(s) — the OS\n"
                "interleaves them, so spin-waits dominate both runs and the\n"
                "approximation attributes that waiting to the probes.\n\n",
                threads, std::thread::hardware_concurrency());
  }

  rt::DoacrossBody body;
  body.pre = [](std::int64_t) { burn(12); };      // independent product
  body.guarded = [](std::int64_t) { burn(2); };   // shared accumulation
  body.post = {};

  rt::DoacrossOptions opts;
  opts.iterations = n;
  opts.distance = 1;
  opts.num_threads = threads;

  // Untraced run: wall-clock reference (the closest thing to "actual").
  const auto w0 = std::chrono::steady_clock::now();
  rt::run_doacross(body, opts);
  const auto w1 = std::chrono::steady_clock::now();
  const double untraced_ns =
      std::chrono::duration<double, std::nano>(w1 - w0).count();

  // Traced run: the measured event trace, genuinely perturbed.
  const auto measured = rt::run_doacross_traced(body, opts, "rt-doacross");
  const auto violations = trace::validate(measured);
  std::printf("measured trace: %zu events, %zu causality violations\n",
              measured.size(), violations.size());
  if (!violations.empty()) {
    std::printf("%s", trace::describe(violations).c_str());
    return 1;
  }

  // Analysis inputs: the calibrated per-event recording cost; the spin-await
  // processing costs are small relative to it.
  const double probe_ns = calibrate_probe_ns();
  core::AnalysisOverheads ov;
  for (std::uint8_t k = 0; k < trace::kNumEventKinds; ++k)
    ov.probe[k] = static_cast<trace::Tick>(probe_ns);
  ov.probe[static_cast<std::size_t>(trace::EventKind::kProgramBegin)] = 0;
  ov.probe[static_cast<std::size_t>(trace::EventKind::kProgramEnd)] = 0;
  ov.s_nowait = static_cast<trace::Tick>(probe_ns / 2);
  ov.s_wait = static_cast<trace::Tick>(probe_ns);

  const auto result = core::event_based_approximation(measured, ov);
  const auto approx_violations = trace::validate(result.approx);

  std::printf("tracer probe cost: %.0f ns/event\n", probe_ns);
  std::printf("untraced duration:   %12.0f ns\n", untraced_ns);
  std::printf("measured duration:   %12lld ns (%.2fx)\n",
              static_cast<long long>(measured.total_time()),
              static_cast<double>(measured.total_time()) / untraced_ns);
  std::printf("event-based approx:  %12lld ns (%+.1f%% vs untraced)\n",
              static_cast<long long>(result.approx.total_time()),
              (static_cast<double>(result.approx.total_time()) / untraced_ns -
               1.0) * 100.0);
  std::printf("awaits: %zu, measured waits: %zu, approx waits: %zu\n",
              result.awaits_total, result.waits_measured, result.waits_approx);
  std::printf("approximated trace causality violations: %zu\n",
              approx_violations.size());

  // Per-thread waiting in the approximation.
  analysis::WaitClassifier classifier;
  classifier.await_nowait = ov.s_nowait;
  classifier.tolerance = static_cast<trace::Tick>(probe_ns);
  const auto waits = analysis::waiting_analysis(result.approx, classifier);
  std::printf("%s", analysis::render_waiting_table(waits).c_str());
  return approx_violations.empty() ? 0 : 1;
}
