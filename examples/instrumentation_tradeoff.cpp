// Instrumentation volume vs. accuracy: an interactive tour of the
// Instrumentation Uncertainty Principle (§1) and why perturbation analysis
// relaxes it (§5.2).
//
// For Livermore loop 3, sweeps four measurement strategies:
//   1. sync-only instrumentation      (low volume, low perturbation)
//   2. statements-only instrumentation (the §3 experiment)
//   3. full instrumentation, raw       (high volume, heavy perturbation)
//   4. full instrumentation + event-based analysis (the paper's answer)
// and reports data volume, measured slowdown, and total-time error.
//
// Options: --n <trip> --procs <p>
#include <cstdio>

#include <algorithm>

#include "experiments/experiments.hpp"
#include "instr/budget.hpp"
#include "loops/programs.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  experiments::Setup setup;
  setup.machine.num_procs =
      static_cast<std::uint32_t>(cli.get_int("procs", 8));
  const auto n = cli.get_int("n", 1001);

  std::printf("Instrumentation volume vs. accuracy — Livermore loop 3\n\n");
  std::printf("%-34s %10s %10s %12s\n", "strategy", "events", "slowdown",
              "time err%");

  struct Row {
    const char* name;
    experiments::PlanKind plan;
    bool event_based;  ///< score the event-based (vs time-based) approximation
  };
  const Row rows[] = {
      {"sync events only + event model", experiments::PlanKind::kSyncOnly, true},
      {"statements only + time model", experiments::PlanKind::kStatementsOnly,
       false},
      {"full + time model", experiments::PlanKind::kFull, false},
      {"full + event model", experiments::PlanKind::kFull, true},
  };

  for (const Row& row : rows) {
    const auto run =
        experiments::run_concurrent_experiment(3, n, setup, row.plan);
    const auto& q = row.event_based ? run.eb_quality : run.tb_quality;
    std::printf("%-34s %10zu %9.2fx %+11.1f%%\n", row.name,
                run.measured.size(), q.measured_over_actual, q.percent_error);
  }

  std::printf(
      "\nThe principle says more events => more perturbation, and it holds\n"
      "(slowdown grows with volume).  But the *error after analysis* does\n"
      "not follow: the heaviest instrumentation plus event-based analysis\n"
      "beats every lighter strategy, because the extra synchronization\n"
      "events are precisely the knowledge the analysis needs (§5.2).\n");

  // Bonus: when even the sync-instrumented volume is too much, the budget
  // planner picks which statement sites fit a target event count.
  const auto program = loops::make_concurrent_ir(17, n);
  const auto unlimited =
      instr::plan_for_budget(setup.machine, program, 1u << 30);
  const auto half = instr::plan_for_budget(setup.machine, program,
                                           unlimited.selected_events / 2);
  std::printf("\nbudget planner on loop 17: full statement volume %llu "
              "events;\na 50%% budget keeps %llu events across %zu of %zu "
              "sites (least-frequent first).\n",
              static_cast<unsigned long long>(unlimited.selected_events),
              static_cast<unsigned long long>(half.selected_events),
              static_cast<std::size_t>(
                  std::count(half.enabled.begin(), half.enabled.end(), true)),
              half.profiles.size());
  return 0;
}
