// Reproduces Table 3: percentage of total execution time spent waiting on
// each processor in Livermore loop 17 — computed, as in §5.3, from the
// *event-based approximation* of the measured trace (not from the actual
// trace, which a real measurement could never observe).
#include <cstdio>

#include "analysis/waiting.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  const auto setup = bench::setup_from_cli(cli);
  const auto n = bench::trip_from_cli(cli);

  bench::print_header(
      "Table 3 — DOACROSS Waiting Time in Loop 17",
      "Per-processor waiting as a percentage of total execution time,\n"
      "derived from the event-based approximated trace.");

  const auto run = experiments::run_scenario(bench::concurrent_scenario(
      17, n, setup, experiments::PlanKind::kFull));
  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  const auto ov = experiments::overheads_for(plan, setup.machine);

  analysis::WaitClassifier classifier;
  classifier.await_nowait = ov.s_nowait;
  classifier.lock_acquire = ov.lock_acquire;
  classifier.barrier_depart = ov.barrier_depart;
  classifier.tolerance = 2;

  const auto approx_stats =
      analysis::waiting_analysis(run.event_based.approx, classifier);
  const auto actual_stats = analysis::waiting_analysis(run.actual, classifier);

  std::printf("Paper (measured on the FX/80):\n  ");
  for (const double pct : bench::paper_table3_waiting())
    std::printf("%7.2f%%", pct);
  std::printf("\n\nReproduced from the event-based approximation:\n%s",
              analysis::render_waiting_table(approx_stats).c_str());
  std::printf("\nGround truth (actual trace, unobservable in a real "
              "measurement):\n%s",
              analysis::render_waiting_table(actual_stats).c_str());
  std::printf("\nShape check: a few percent of waiting per processor,\n"
              "approximation close to ground truth.\n");
  return 0;
}
