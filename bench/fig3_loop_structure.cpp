// Reproduces Figure 3: the synchronization structure of Livermore loops 3,
// 4 and 17 as they execute on the simulated machine — DOACROSS loop bounds,
// statement nodes, and the placement of the await/advance operations.
#include <cstdio>

#include "loops/kernels.hpp"
#include "loops/programs.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  const auto n = cli.get_int("n", 1001);

  std::printf("== Figure 3 — Lawrence Livermore Loops 3, 4, and 17 ==\n");
  std::printf("Statement/dependence structure of the DOACROSS lowerings.\n\n");

  for (const int loop : loops::doacross_study_loops()) {
    const auto prog = loops::make_concurrent_ir(loop, n);
    std::printf("Loop %d — %s\n", loop, loops::kernel_name(loop));
    std::printf("%s\n", prog.dump().c_str());
  }

  std::printf("White-arrow dependences: await(S, i-d) waits for advance(S, i-d)\n"
              "issued by iteration i-d; the enddoacross is a barrier.\n");
  return 0;
}
