// Reproduces Table 2: execution-time ratios for Livermore loops 3, 4 and 17
// under *event-based* perturbation analysis (§5.2).
//
// The instrumentation is heavier than Table 1's (synchronization operations
// are now traced too, so the measured slowdowns grow), yet modelling the
// advance/await semantics brings every approximation within a few percent of
// the actual execution time — the paper's apparent violation of the
// Instrumentation Uncertainty Principle.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  const auto setup = bench::setup_from_cli(cli);
  const auto n = bench::trip_from_cli(cli);

  bench::print_header(
      "Table 2 — Loop Execution Time Ratios: Event-Based Analysis",
      "Same loops with synchronization instrumentation added; event-based\n"
      "analysis enforces the advance/await partial order (§4.2.3).");

  // One grid covers both halves of the output: full-plan cells feed the
  // ratio table AND the error comparison, statements-only cells feed only
  // the comparison.  Each loop's two cells share a memoized actual run.
  const auto& paper = bench::paper_table2();
  std::vector<experiments::Scenario> grid;
  for (const auto& row : paper)
    grid.push_back(bench::concurrent_scenario(row.loop, n, setup,
                                              experiments::PlanKind::kFull));
  for (const auto& row : paper)
    grid.push_back(bench::concurrent_scenario(
        row.loop, n, setup, experiments::PlanKind::kStatementsOnly));
  const auto runs =
      experiments::run_grid(grid, bench::grid_options_from_cli(cli));

  std::vector<bench::PaperRatioRow> ours;
  for (std::size_t i = 0; i < paper.size(); ++i)
    ours.push_back({paper[i].loop, runs[i].eb_quality.measured_over_actual,
                    runs[i].eb_quality.approx_over_actual});
  bench::print_ratio_table(paper, ours);

  std::printf("Shape check: all Approx/Actual within a few percent of 1.0\n"
              "despite measured slowdowns of 3x-14x.\n");

  // Errors side by side with Table 1, as §5.2 discusses (loop 3: -63%% vs
  // -4%% in the paper).
  std::printf("\n%-6s %16s %16s\n", "Loop", "time-based err", "event-based err");
  for (std::size_t i = 0; i < paper.size(); ++i) {
    const auto& full = runs[i];
    const auto& stmts = runs[paper.size() + i];
    std::printf("%-6d %+15.1f%% %+15.1f%%\n", paper[i].loop,
                stmts.tb_quality.percent_error, full.eb_quality.percent_error);
  }
  return 0;
}
