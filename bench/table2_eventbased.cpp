// Reproduces Table 2: execution-time ratios for Livermore loops 3, 4 and 17
// under *event-based* perturbation analysis (§5.2).
//
// The instrumentation is heavier than Table 1's (synchronization operations
// are now traced too, so the measured slowdowns grow), yet modelling the
// advance/await semantics brings every approximation within a few percent of
// the actual execution time — the paper's apparent violation of the
// Instrumentation Uncertainty Principle.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  const auto setup = bench::setup_from_cli(cli);
  const auto n = bench::trip_from_cli(cli);

  bench::print_header(
      "Table 2 — Loop Execution Time Ratios: Event-Based Analysis",
      "Same loops with synchronization instrumentation added; event-based\n"
      "analysis enforces the advance/await partial order (§4.2.3).");

  std::vector<bench::PaperRatioRow> ours;
  for (const auto& row : bench::paper_table2()) {
    const auto run = experiments::run_concurrent_experiment(
        row.loop, n, setup, experiments::PlanKind::kFull);
    ours.push_back({row.loop, run.eb_quality.measured_over_actual,
                    run.eb_quality.approx_over_actual});
  }
  bench::print_ratio_table(bench::paper_table2(), ours);

  std::printf("Shape check: all Approx/Actual within a few percent of 1.0\n"
              "despite measured slowdowns of 3x-14x.\n");

  // Errors side by side with Table 1, as §5.2 discusses (loop 3: -63%% vs
  // -4%% in the paper).
  std::printf("\n%-6s %16s %16s\n", "Loop", "time-based err", "event-based err");
  for (const auto& row : bench::paper_table2()) {
    const auto t1 = experiments::run_concurrent_experiment(
        row.loop, n, setup, experiments::PlanKind::kStatementsOnly);
    const auto t2 = experiments::run_concurrent_experiment(
        row.loop, n, setup, experiments::PlanKind::kFull);
    std::printf("%-6d %+15.1f%% %+15.1f%%\n", row.loop,
                t1.tb_quality.percent_error, t2.eb_quality.percent_error);
  }
  return 0;
}
