// Ablation: execution modes (§3) — the paper applied time-based analysis to
// scalar, vector, and concurrent executions of the Livermore suite, finding
// sequential and vector approximations "extremely accurate" and concurrent
// accuracy dependent on dependence structure.
//
// For a set of vectorizable loops this bench compares, per mode: actual
// time, measured slowdown under full statement instrumentation, and the
// time-based approximation error.  Vector mode records one event per
// 32-element strip, so its data volume — and perturbation — is ~32x smaller
// per element than scalar mode.
#include <cstdio>

#include "bench_util.hpp"
#include "loops/kernels.hpp"

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  const auto setup = bench::setup_from_cli(cli);
  const auto n = bench::trip_from_cli(cli);

  bench::print_header(
      "Ablation — Execution Modes: Scalar / Vector / Concurrent (§3)",
      "Time-based analysis of full statement instrumentation per mode.\n"
      "Vector mode emits one event per strip; concurrent (DOALL) divides\n"
      "events across processors.");

  constexpr int kLoops[] = {1, 7, 12, 22};
  const char* const kModeNames[] = {"scalar", "vector", "concurrent"};
  std::vector<experiments::Scenario> grid;
  for (const int loop : kLoops) {
    grid.push_back(bench::sequential_scenario(loop, n, setup));
    grid.push_back(bench::vector_scenario(loop, n, setup));
    grid.push_back(bench::concurrent_scenario(
        loop, n, setup, experiments::PlanKind::kStatementsOnly));
  }
  const auto runs =
      experiments::run_grid(grid, bench::grid_options_from_cli(cli));

  std::printf("%-5s %-11s %12s %10s %10s %10s\n", "loop", "mode", "actual",
              "events", "slowdown", "tb err%");
  std::size_t cell = 0;
  for (const int loop : kLoops) {
    for (const char* const mode : kModeNames) {
      const auto& run = runs[cell++];
      std::printf("%-5d %-11s %12lld %10zu %9.2fx %+9.2f%%\n", loop, mode,
                  static_cast<long long>(run.actual.total_time()),
                  run.measured.size(),
                  run.tb_quality.measured_over_actual,
                  run.tb_quality.percent_error);
    }
    std::printf("\n");
  }
  std::printf(
      "Reading: vector mode is both faster and far less perturbed (fewer\n"
      "events); time-based approximations are accurate in all three modes\n"
      "for these dependence-free loops, matching §3.\n");
  return 0;
}
