// Shared helpers for the reproduction benches: paper reference values and
// common printing.  Each bench binary regenerates one table or figure of
// Malony, "Event-Based Performance Perturbation: A Case Study" (PPoPP 1991)
// and prints the paper's reported values next to the reproduced ones.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "experiments/experiments.hpp"
#include "experiments/grid.hpp"
#include "support/cli.hpp"
#include "support/text.hpp"

namespace perturb::bench {

/// Paper Table 1 (time-based analysis, full statement instrumentation).
struct PaperRatioRow {
  int loop;
  double measured_over_actual;
  double approx_over_actual;
};

inline const std::vector<PaperRatioRow>& paper_table1() {
  static const std::vector<PaperRatioRow> rows = {
      {3, 2.48, 0.37}, {4, 2.64, 0.57}, {17, 9.97, 8.31}};
  return rows;
}

/// Paper Table 2 (event-based analysis, statements + synchronization).
inline const std::vector<PaperRatioRow>& paper_table2() {
  static const std::vector<PaperRatioRow> rows = {
      {3, 4.56, 0.96}, {4, 3.38, 1.06}, {17, 14.08, 0.97}};
  return rows;
}

/// Paper Table 3: per-processor DOACROSS waiting time in loop 17 (percent).
inline const std::vector<double>& paper_table3_waiting() {
  static const std::vector<double> pct = {4.05, 8.09, 4.05, 2.70,
                                          4.05, 5.40, 2.70, 4.05};
  return pct;
}

/// Figure 5's headline number: average parallelism of loop 17 excluding the
/// sequential portions.
inline constexpr double kPaperLoop17AvgParallelism = 7.5;

inline void print_header(const char* artifact, const char* description) {
  std::printf("== %s ==\n%s\n\n", artifact, description);
}

inline void print_ratio_table(const std::vector<PaperRatioRow>& paper,
                              const std::vector<PaperRatioRow>& ours) {
  std::printf("%-6s | %-21s | %-21s\n", "", "Measured/Actual", "Approx/Actual");
  std::printf("%-6s | %10s %10s | %10s %10s\n", "Loop", "paper", "ours",
              "paper", "ours");
  std::printf("-------+-----------------------+----------------------\n");
  for (std::size_t i = 0; i < paper.size(); ++i) {
    std::printf("%-6d | %10.2f %10.2f | %10.2f %10.2f\n", paper[i].loop,
                paper[i].measured_over_actual, ours[i].measured_over_actual,
                paper[i].approx_over_actual, ours[i].approx_over_actual);
  }
  std::printf("\n");
}

/// Standard experiment setup shared by the benches (overridable via CLI).
inline experiments::Setup setup_from_cli(const support::Cli& cli) {
  experiments::Setup setup;
  setup.machine.num_procs = static_cast<std::uint32_t>(
      cli.get_int("procs", setup.machine.num_procs));
  setup.stmt.mean = cli.get_double("stmt-probe", setup.stmt.mean);
  setup.sync.mean = cli.get_double("sync-probe", setup.sync.mean);
  setup.control.mean = cli.get_double("control-probe", setup.control.mean);
  setup.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1991));
  return setup;
}

inline std::int64_t trip_from_cli(const support::Cli& cli,
                                  std::int64_t def = 1001) {
  return cli.get_int("n", def);
}

/// Grid options shared by the benches: worker count from --threads
/// (default 0 = hardware concurrency; results are thread-count invariant).
inline experiments::GridOptions grid_options_from_cli(const support::Cli& cli) {
  experiments::GridOptions options;
  options.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  return options;
}

/// Scenario builders: one grid cell per call.  These are the single place
/// the benches construct (mode, loop, n, Setup, plan) tuples, so sweeps
/// differ only in the fields they vary.
inline experiments::Scenario sequential_scenario(
    int loop, std::int64_t n, const experiments::Setup& setup,
    experiments::PlanKind plan = experiments::PlanKind::kStatementsOnly) {
  experiments::Scenario s;
  s.loop = loop;
  s.n = n;
  s.mode = experiments::ExecMode::kSequential;
  s.setup = setup;
  s.plan = plan;
  return s;
}

inline experiments::Scenario concurrent_scenario(
    int loop, std::int64_t n, const experiments::Setup& setup,
    experiments::PlanKind plan,
    sim::Schedule schedule = sim::Schedule::kCyclic) {
  experiments::Scenario s;
  s.loop = loop;
  s.n = n;
  s.mode = experiments::ExecMode::kConcurrent;
  s.schedule = schedule;
  s.setup = setup;
  s.plan = plan;
  return s;
}

inline experiments::Scenario vector_scenario(
    int loop, std::int64_t n, const experiments::Setup& setup,
    experiments::PlanKind plan = experiments::PlanKind::kStatementsOnly) {
  experiments::Scenario s;
  s.loop = loop;
  s.n = n;
  s.mode = experiments::ExecMode::kVector;
  s.setup = setup;
  s.plan = plan;
  return s;
}

}  // namespace perturb::bench
