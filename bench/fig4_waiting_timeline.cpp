// Reproduces Figure 4: the per-processor waiting-time history of Livermore
// loop 17, computed from the event-based approximation (§5.3).  Prints an
// ASCII timeline ('#' = waiting) and writes the interval data as CSV next to
// the binary when --csv is given.
#include <cstdio>
#include <sstream>

#include "analysis/timeline.hpp"
#include "analysis/waiting.hpp"
#include "bench_util.hpp"
#include "support/fsio.hpp"

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  const auto setup = bench::setup_from_cli(cli);
  // A shorter loop keeps the 80-column timeline legible (the paper plots
  // roughly 480 microseconds of execution); --n overrides.
  const auto n = bench::trip_from_cli(cli, 240);

  bench::print_header(
      "Figure 4 — Approximated Waiting Behavior in Livermore Loop 17",
      "Waiting intervals per processor from the event-based approximation\n"
      "of a fully instrumented run ('#' marks waiting).");

  const auto run = experiments::run_concurrent_experiment(
      17, n, setup, experiments::PlanKind::kFull);
  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  const auto ov = experiments::overheads_for(plan, setup.machine);

  analysis::WaitClassifier classifier;
  classifier.await_nowait = ov.s_nowait;
  classifier.lock_acquire = ov.lock_acquire;
  classifier.barrier_depart = ov.barrier_depart;
  classifier.tolerance = 2;

  const auto stats =
      analysis::waiting_analysis(run.event_based.approx, classifier);
  std::printf("%s\n",
              analysis::render_waiting_timeline(run.event_based.approx, stats)
                  .c_str());
  std::printf("%s\n", analysis::render_waiting_table(stats).c_str());

  if (cli.has("csv")) {
    const std::string path = cli.get("csv", "fig4_waiting.csv");
    std::ostringstream out;
    analysis::write_waiting_csv(out, stats);
    std::string werr;
    if (!support::write_file_atomic(path, out.str(), &werr)) {
      std::fprintf(stderr, "error: cannot write %s: %s\n", path.c_str(),
                   werr.c_str());
      return 1;
    }
    std::printf("interval data written to %s\n", path.c_str());
  }
  return 0;
}
