// Reproduces Figure 1: sequential Livermore loop execution with full
// statement instrumentation — the ratio of measured and of time-based
// approximated execution time to actual execution time.
//
// Expected shape: measured slowdowns of roughly 4x-17x (cheap statements →
// larger ratios), while the approximated ratios stay within a few percent of
// 1.0 (the paper reports within fifteen percent) — time-based analysis is
// accurate when execution is sequential.
#include <cstdio>

#include "bench_util.hpp"
#include "loops/kernels.hpp"
#include "support/ascii_chart.hpp"

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  const auto setup = bench::setup_from_cli(cli);
  const auto n = bench::trip_from_cli(cli);

  bench::print_header(
      "Figure 1 — Sequential Loop Execution: Measured and Approximated Ratios",
      "Full statement-level instrumentation of the Figure 1 loop set;\n"
      "black bars = Measured/Actual, dotted bars = Approximated/Actual.");

  std::vector<support::BarGroup> groups;
  std::printf("%-6s %18s %18s %14s %10s\n", "Loop", "Measured/Actual",
              "Approx/Actual", "event err p50", "p95");
  for (const int loop : loops::sequential_study_loops()) {
    const auto run = experiments::run_sequential_experiment(loop, n, setup);
    // §3: "the accuracy of individual event timings were equally
    // impressive" — report the per-event error distribution too.
    std::printf("%-6d %18.2f %18.3f %14.1f %10.1f\n", loop,
                run.tb_quality.measured_over_actual,
                run.tb_quality.approx_over_actual,
                run.tb_quality.p50_event_error,
                run.tb_quality.p95_event_error);
    groups.push_back({support::strf("%d", loop),
                      {run.tb_quality.measured_over_actual,
                       run.tb_quality.approx_over_actual}});
  }

  std::printf("\n%s", support::render_bar_chart({"Measured", "Model"}, groups)
                          .c_str());
  std::printf("Paper reference: slowdowns up to ~17x with model\n"
              "approximations within fifteen percent of actual.\n");
  return 0;
}
