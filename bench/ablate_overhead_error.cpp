// Ablation: sensitivity of perturbation analysis to mis-calibrated probe
// overheads.
//
// Both analyses take the *measured costs of instrumentation* as input (§2).
// In practice those costs are themselves measured and carry error.  This
// bench feeds the event-based analysis probe means scaled by a calibration
// error factor and reports the resulting total-time error for loops 3 and
// 17 — quantifying how accurately one must know alpha for the method to
// hold up.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/eventbased.hpp"

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  const auto setup = bench::setup_from_cli(cli);
  const auto n = bench::trip_from_cli(cli);

  bench::print_header(
      "Ablation — Probe-Overhead Calibration Error",
      "Event-based analysis with probe means scaled by an error factor;\n"
      "full instrumentation of loops 3 and 17.");

  std::printf("%-5s", "loop");
  const double factors[] = {0.70, 0.85, 0.95, 1.00, 1.05, 1.15, 1.30};
  for (const double f : factors) std::printf(" %9.0f%%", (f - 1.0) * 100.0);
  std::printf("      <- calibration error\n");

  constexpr int kLoops[] = {3, 17};
  std::vector<experiments::Scenario> grid;
  for (const int loop : kLoops)
    grid.push_back(bench::concurrent_scenario(loop, n, setup,
                                              experiments::PlanKind::kFull));
  const auto runs =
      experiments::run_grid(grid, bench::grid_options_from_cli(cli));

  std::size_t cell = 0;
  for (const int loop : kLoops) {
    const auto& run = runs[cell++];
    const auto plan =
        experiments::make_plan(experiments::PlanKind::kFull, setup);
    const auto true_ov = experiments::overheads_for(plan, setup.machine);

    std::printf("%-5d", loop);
    for (const double f : factors) {
      core::AnalysisOverheads ov = true_ov;
      for (auto& alpha : ov.probe)
        alpha = static_cast<core::Cycles>(
            std::llround(static_cast<double>(alpha) * f));
      const auto result = core::event_based_approximation(run.measured, ov);
      const double err =
          (static_cast<double>(result.approx.total_time()) /
               static_cast<double>(run.actual.total_time()) -
           1.0) * 100.0;
      std::printf(" %+9.1f%%", err);
    }
    std::printf("  <- eb approx error\n");
  }
  std::printf(
      "\nReading: the approximation degrades smoothly with calibration\n"
      "error; underestimating probes leaves overhead in (positive error),\n"
      "overestimating removes real work (negative error).  The per-event\n"
      "costs need only be known to ~5%% for percent-level accuracy.\n");
  return 0;
}
