// Google-benchmark micro-suite: throughput of the building blocks —
// simulation, trace handling, and both perturbation analyses — plus the
// real-threads tracer's per-event recording cost (the α this library exists
// to compensate for).
#include <benchmark/benchmark.h>

#include <map>
#include <sstream>
#include <vector>

#include "core/eventbased.hpp"
#include "core/timebased.hpp"
#include "experiments/experiments.hpp"
#include "loops/kernels.hpp"
#include "loops/programs.hpp"
#include "rt/tracer.hpp"
#include "support/crc32.hpp"
#include "trace/index.hpp"
#include "trace/io.hpp"
#include "trace/validate.hpp"

namespace {

using namespace perturb;

experiments::Setup default_setup() { return experiments::Setup{}; }

void BM_SimulateActualLoop17(benchmark::State& state) {
  const auto prog = loops::make_concurrent_ir(17, state.range(0));
  const auto setup = default_setup();
  for (auto _ : state) {
    auto t = sim::simulate_actual(setup.machine, prog, "bench");
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateActualLoop17)->Arg(256)->Arg(1024);

void BM_SimulateMeasuredLoop17(benchmark::State& state) {
  const auto prog = loops::make_concurrent_ir(17, state.range(0));
  const auto setup = default_setup();
  const auto plan =
      experiments::make_plan(experiments::PlanKind::kFull, setup);
  for (auto _ : state) {
    auto t = sim::simulate(setup.machine, prog, plan, "bench");
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateMeasuredLoop17)->Arg(256)->Arg(1024);

void BM_TimeBasedAnalysis(benchmark::State& state) {
  const auto prog = loops::make_concurrent_ir(17, state.range(0));
  const auto setup = default_setup();
  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  const auto ov = experiments::overheads_for(plan, setup.machine);
  const auto measured = sim::simulate(setup.machine, prog, plan, "bench");
  for (auto _ : state) {
    auto approx = core::time_based_approximation(measured, ov);
    benchmark::DoNotOptimize(approx.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(measured.size()));
}
BENCHMARK(BM_TimeBasedAnalysis)->Arg(256)->Arg(1024);

void BM_EventBasedAnalysis(benchmark::State& state) {
  const auto prog = loops::make_concurrent_ir(17, state.range(0));
  const auto setup = default_setup();
  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  const auto ov = experiments::overheads_for(plan, setup.machine);
  const auto measured = sim::simulate(setup.machine, prog, plan, "bench");
  for (auto _ : state) {
    auto result = core::event_based_approximation(measured, ov);
    benchmark::DoNotOptimize(result.approx.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(measured.size()));
}
BENCHMARK(BM_EventBasedAnalysis)->Arg(256)->Arg(1024);

void BM_EventBasedAnalysisIndexed(benchmark::State& state) {
  const auto prog = loops::make_concurrent_ir(17, state.range(0));
  const auto setup = default_setup();
  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  const auto ov = experiments::overheads_for(plan, setup.machine);
  const auto measured = sim::simulate(setup.machine, prog, plan, "bench");
  const trace::TraceIndex index(measured);
  for (auto _ : state) {
    auto result = core::event_based_approximation(index, ov);
    benchmark::DoNotOptimize(result.approx.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(measured.size()));
}
BENCHMARK(BM_EventBasedAnalysisIndexed)->Arg(256)->Arg(1024);

void BM_TraceIndexBuild(benchmark::State& state) {
  const auto prog = loops::make_concurrent_ir(17, state.range(0));
  const auto setup = default_setup();
  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  const auto measured = sim::simulate(setup.machine, prog, plan, "bench");
  for (auto _ : state) {
    trace::TraceIndex index(measured);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(measured.size()));
}
BENCHMARK(BM_TraceIndexBuild)->Arg(256)->Arg(1024);

// The retained single-pass map-based builder, kept as the correctness and
// performance reference for the counting-sort builder above.
void BM_TraceIndexBuildReference(benchmark::State& state) {
  const auto prog = loops::make_concurrent_ir(17, state.range(0));
  const auto setup = default_setup();
  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  const auto measured = sim::simulate(setup.machine, prog, plan, "bench");
  for (auto _ : state) {
    trace::TraceIndex index(trace::TraceIndex::ReferenceBuild{}, measured);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(measured.size()));
}
BENCHMARK(BM_TraceIndexBuildReference)->Arg(256)->Arg(1024);

/// Collects every advance key of a trace, in trace order.
std::vector<trace::SyncKey> advance_keys(const trace::Trace& t) {
  std::vector<trace::SyncKey> keys;
  for (const auto& e : t)
    if (e.kind == trace::EventKind::kAdvance)
      keys.push_back({e.object, e.payload});
  return keys;
}

// Sync-table cost per analysis pass: the shared TraceIndex's flat sorted
// arrays (built once per trace, queried by every analyzer) vs the private
// std::map each analysis used to rebuild before querying.  Same queries,
// same answers; the map variant pays the rebuild because that is what every
// pass paid before the index existed.
void BM_SyncLookupFlat(benchmark::State& state) {
  const auto prog = loops::make_concurrent_ir(17, state.range(0));
  const auto setup = default_setup();
  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  const auto measured = sim::simulate(setup.machine, prog, plan, "bench");
  const trace::TraceIndex index(measured);
  const auto keys = advance_keys(measured);
  for (auto _ : state) {
    std::size_t sum = 0;
    for (const auto& key : keys) sum += index.last_advance(key);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_SyncLookupFlat)->Arg(256)->Arg(1024);

void BM_SyncLookupMap(benchmark::State& state) {
  const auto prog = loops::make_concurrent_ir(17, state.range(0));
  const auto setup = default_setup();
  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  const auto measured = sim::simulate(setup.machine, prog, plan, "bench");
  const auto keys = advance_keys(measured);
  for (auto _ : state) {
    std::map<std::pair<trace::ObjectId, std::int64_t>, std::size_t> table;
    for (std::size_t i = 0; i < measured.size(); ++i)
      if (measured[i].kind == trace::EventKind::kAdvance)
        table[{measured[i].object, measured[i].payload}] = i;
    std::size_t sum = 0;
    for (const auto& key : keys)
      sum += table.find({key.object, key.index})->second;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_SyncLookupMap)->Arg(256)->Arg(1024);

void BM_TraceValidate(benchmark::State& state) {
  const auto prog = loops::make_concurrent_ir(17, state.range(0));
  const auto setup = default_setup();
  const auto t = sim::simulate_actual(setup.machine, prog, "bench");
  for (auto _ : state) {
    auto violations = trace::validate(t);
    benchmark::DoNotOptimize(violations.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_TraceValidate)->Arg(1024);

void BM_TraceBinaryRoundtrip(benchmark::State& state) {
  const auto prog = loops::make_concurrent_ir(17, 512);
  const auto setup = default_setup();
  const auto t = sim::simulate_actual(setup.machine, prog, "bench");
  for (auto _ : state) {
    std::stringstream ss;
    trace::write_binary(ss, t);
    auto back = trace::read_binary(ss);
    benchmark::DoNotOptimize(back.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_TraceBinaryRoundtrip);

/// One binary v2 image of a measured loop-17 trace, shared by the two
/// read-path benchmarks below.
const std::string& binary_image() {
  static const std::string image = [] {
    const auto prog = loops::make_concurrent_ir(17, 2048);
    const auto setup = default_setup();
    const auto plan =
        experiments::make_plan(experiments::PlanKind::kFull, setup);
    const auto t = sim::simulate(setup.machine, prog, plan, "bench");
    std::stringstream ss;
    trace::write_binary(ss, t);
    return std::move(ss).str();
  }();
  return image;
}

// The retained istream decoder (per-event push_back) vs the zero-copy
// buffer decoder (CRC + fixed-width decode straight into pre-sized
// storage).  Same image, same resulting trace.
void BM_TraceBinaryReadStream(benchmark::State& state) {
  const std::string& image = binary_image();
  std::size_t events = 0;
  for (auto _ : state) {
    std::istringstream in(image);
    auto t = trace::read_binary(in);
    events = t.size();
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_TraceBinaryReadStream);

void BM_TraceBinaryReadBuffer(benchmark::State& state) {
  const std::string& image = binary_image();
  std::size_t events = 0;
  for (auto _ : state) {
    auto t = trace::read_binary(image.data(), image.size());
    events = t.size();
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_TraceBinaryReadBuffer);

void BM_Crc32Throughput(benchmark::State& state) {
  const std::vector<char> buf(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(support::crc32(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_Crc32Throughput)->Arg(1 << 12)->Arg(1 << 20);

void BM_RtTracerRecord(benchmark::State& state) {
  rt::Tracer tracer(1, 1u << 22);
  std::uint64_t i = 0;
  for (auto _ : state) {
    tracer.record(0, trace::EventKind::kStmtEnter, 1, 0,
                  static_cast<std::int64_t>(i++));
    if (i % (1u << 21) == 0) tracer.harvest("drain");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RtTracerRecord);

void BM_NativeKernel(benchmark::State& state) {
  loops::LfkData data(1001);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(loops::run_kernel(k, data));
  }
}
BENCHMARK(BM_NativeKernel)->Arg(3)->Arg(4)->Arg(17);

}  // namespace

BENCHMARK_MAIN();
