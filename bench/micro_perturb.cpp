// Google-benchmark micro-suite: throughput of the building blocks —
// simulation, trace handling, and both perturbation analyses — plus the
// real-threads tracer's per-event recording cost (the α this library exists
// to compensate for).
#include <benchmark/benchmark.h>

#include <sstream>

#include "core/eventbased.hpp"
#include "core/timebased.hpp"
#include "experiments/experiments.hpp"
#include "loops/kernels.hpp"
#include "loops/programs.hpp"
#include "rt/tracer.hpp"
#include "trace/io.hpp"
#include "trace/validate.hpp"

namespace {

using namespace perturb;

experiments::Setup default_setup() { return experiments::Setup{}; }

void BM_SimulateActualLoop17(benchmark::State& state) {
  const auto prog = loops::make_concurrent_ir(17, state.range(0));
  const auto setup = default_setup();
  for (auto _ : state) {
    auto t = sim::simulate_actual(setup.machine, prog, "bench");
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateActualLoop17)->Arg(256)->Arg(1024);

void BM_SimulateMeasuredLoop17(benchmark::State& state) {
  const auto prog = loops::make_concurrent_ir(17, state.range(0));
  const auto setup = default_setup();
  const auto plan =
      experiments::make_plan(experiments::PlanKind::kFull, setup);
  for (auto _ : state) {
    auto t = sim::simulate(setup.machine, prog, plan, "bench");
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateMeasuredLoop17)->Arg(256)->Arg(1024);

void BM_TimeBasedAnalysis(benchmark::State& state) {
  const auto prog = loops::make_concurrent_ir(17, state.range(0));
  const auto setup = default_setup();
  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  const auto ov = experiments::overheads_for(plan, setup.machine);
  const auto measured = sim::simulate(setup.machine, prog, plan, "bench");
  for (auto _ : state) {
    auto approx = core::time_based_approximation(measured, ov);
    benchmark::DoNotOptimize(approx.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(measured.size()));
}
BENCHMARK(BM_TimeBasedAnalysis)->Arg(256)->Arg(1024);

void BM_EventBasedAnalysis(benchmark::State& state) {
  const auto prog = loops::make_concurrent_ir(17, state.range(0));
  const auto setup = default_setup();
  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  const auto ov = experiments::overheads_for(plan, setup.machine);
  const auto measured = sim::simulate(setup.machine, prog, plan, "bench");
  for (auto _ : state) {
    auto result = core::event_based_approximation(measured, ov);
    benchmark::DoNotOptimize(result.approx.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(measured.size()));
}
BENCHMARK(BM_EventBasedAnalysis)->Arg(256)->Arg(1024);

void BM_TraceValidate(benchmark::State& state) {
  const auto prog = loops::make_concurrent_ir(17, state.range(0));
  const auto setup = default_setup();
  const auto t = sim::simulate_actual(setup.machine, prog, "bench");
  for (auto _ : state) {
    auto violations = trace::validate(t);
    benchmark::DoNotOptimize(violations.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_TraceValidate)->Arg(1024);

void BM_TraceBinaryRoundtrip(benchmark::State& state) {
  const auto prog = loops::make_concurrent_ir(17, 512);
  const auto setup = default_setup();
  const auto t = sim::simulate_actual(setup.machine, prog, "bench");
  for (auto _ : state) {
    std::stringstream ss;
    trace::write_binary(ss, t);
    auto back = trace::read_binary(ss);
    benchmark::DoNotOptimize(back.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_TraceBinaryRoundtrip);

void BM_RtTracerRecord(benchmark::State& state) {
  rt::Tracer tracer(1, 1u << 22);
  std::uint64_t i = 0;
  for (auto _ : state) {
    tracer.record(0, trace::EventKind::kStmtEnter, 1, 0,
                  static_cast<std::int64_t>(i++));
    if (i % (1u << 21) == 0) tracer.harvest("drain");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RtTracerRecord);

void BM_NativeKernel(benchmark::State& state) {
  loops::LfkData data(1001);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(loops::run_kernel(k, data));
  }
}
BENCHMARK(BM_NativeKernel)->Arg(3)->Arg(4)->Arg(17);

}  // namespace

BENCHMARK_MAIN();
