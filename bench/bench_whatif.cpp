// bench_whatif — causal what-if engine versus re-simulation (DESIGN.md §13).
//
// For each full-size Livermore kernel {3, 4, 17} the bench recovers the
// event-based approximation, builds the what-if dependency DAG, and runs a
// 64-experiment virtual-speedup sweep (64 distinct (site, pct) plans) two
// ways:
//
//   * engine: WhatIfEngine::run_many over the trace's WhatIfDag —
//     lane-batched dense sweeps fanned across a TaskPool.  The DAG is
//     built once per trace (like the TraceIndex both sides share) and its
//     one-time cost is reported separately;
//   * reference: 64 independent whatif_reference calls, each rewriting
//     every event's cost and re-simulating the full trace.
//
// Gates before any timing is trusted: the engine must be bit-identical to
// the reference on every plan of every sweep, and bit-identical to itself
// at 1 and 8 worker threads.  Speedups are engine-vs-reference in the same
// process, so they are comparable across hosts (absolute rates are not).
// Results go to JSON (--out, default BENCH_whatif.json);
// tools/check_bench.py gates CI runs against
// bench/baseline/BENCH_whatif.json (floor: 10x per kernel).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/sites.hpp"
#include "bench_util.hpp"
#include "support/check.hpp"
#include "support/fsio.hpp"
#include "support/parallel.hpp"
#include "support/text.hpp"
#include "trace/index.hpp"
#include "whatif/whatif.hpp"

namespace {

using namespace perturb;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kSweepSize = 64;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

template <typename Fn>
double time_best(std::size_t reps, Fn&& body) {
  double best = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    body();
    const double elapsed = seconds_since(start);
    if (elapsed > 0.0 && (best == 0.0 || elapsed < best)) best = elapsed;
  }
  return best;
}

/// 64 distinct (site, pct) plans: every site of the registry at descending
/// speedups until the sweep is full.
std::vector<whatif::WhatIfPlan> sweep_plans(
    const analysis::SiteRegistry& sites) {
  std::vector<whatif::WhatIfPlan> plans;
  for (std::int64_t pct = 100; pct >= 1 && plans.size() < kSweepSize; pct -= 5)
    for (analysis::SiteId s = 0;
         s < sites.size() && plans.size() < kSweepSize; ++s)
      plans.push_back({s, pct});
  return plans;
}

struct KernelRow {
  int loop = 0;
  std::size_t events = 0;
  std::size_t anchors = 0;
  std::size_t edges = 0;
  double dag_s = 0.0;
  double engine_s = 0.0;
  double reference_s = 0.0;
  double speedup = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  const std::string out_path = cli.get("out", "BENCH_whatif.json");
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 3));
  const std::int64_t n = bench::trip_from_cli(cli, 2000);
  const experiments::Setup setup = bench::setup_from_cli(cli);
  support::TaskPool pool(static_cast<std::size_t>(cli.get_int("threads", 0)));

  bench::print_header(
      "BENCH whatif",
      "causal what-if sweeps (delta propagation over the anchor DAG)\n"
      "versus rewrite-costs-and-resimulate (DESIGN.md §13)");

  std::vector<KernelRow> rows;
  for (const int loop : {3, 4, 17}) {
    const auto run = experiments::run_concurrent_experiment(
        loop, n, setup, experiments::PlanKind::kFull);
    const trace::Trace& t = run.event_based.approx;
    const trace::TraceIndex index(t);
    const analysis::SiteRegistry sites(index);
    PERTURB_CHECK_MSG(sites.size() > 0, "recovered trace interned no sites");
    const std::vector<whatif::WhatIfPlan> plans = sweep_plans(sites);
    PERTURB_CHECK_MSG(plans.size() == kSweepSize,
                      "registry too small for a 64-experiment sweep");

    // --- equivalence gates ------------------------------------------------
    const auto dag_start = Clock::now();
    const whatif::WhatIfDag dag(index, sites);
    const double dag_s = seconds_since(dag_start);
    std::vector<whatif::WhatIfResult> reference;
    reference.reserve(plans.size());
    for (const auto& plan : plans)
      reference.push_back(whatif::whatif_reference(index, sites, plan));
    {
      whatif::WhatIfEngine engine(dag);
      const auto fast = engine.run_many(plans, pool);
      for (std::size_t i = 0; i < plans.size(); ++i)
        PERTURB_CHECK_MSG(fast[i] == reference[i],
                          "engine result differs from the reference oracle");
      support::TaskPool one(1), eight(8);
      whatif::WhatIfEngine e1(dag), e8(dag);
      PERTURB_CHECK_MSG(e1.run_many(plans, one) == e8.run_many(plans, eight),
                        "sweep results vary with thread count");
    }

    // --- timing -----------------------------------------------------------
    // A fresh engine per rep: the memo must not turn later reps into
    // lookups.  The DAG is the trace's one-time artifact, timed above.
    const double engine_s = time_best(reps, [&] {
      whatif::WhatIfEngine engine(dag);
      if (engine.run_many(plans, pool).size() != plans.size()) std::abort();
    });
    const double reference_s = time_best(reps, [&] {
      trace::Tick sink = 0;
      for (const auto& plan : plans)
        sink += whatif::whatif_reference(index, sites, plan).makespan;
      if (sink == 0) std::abort();
    });

    KernelRow row;
    row.loop = loop;
    row.events = t.size();
    row.anchors = dag.num_anchors();
    row.edges = dag.num_edges();
    row.dag_s = dag_s;
    row.engine_s = engine_s;
    row.reference_s = reference_s;
    row.speedup = engine_s > 0.0 ? reference_s / engine_s : 0.0;
    rows.push_back(row);
  }

  std::printf("equivalence: engine == reference on %zu plans per kernel, "
              "bit-identical at 1/8 threads\n\n", kSweepSize);
  std::printf("timing (n=%lld, %zu reps, %zu-experiment sweeps, "
              "%zu workers)\n",
              static_cast<long long>(n), reps, kSweepSize, pool.size());
  std::printf("  %-6s %9s %9s %9s %9s %11s %13s %9s\n", "loop", "events",
              "anchors", "edges", "dag ms", "engine ms", "reference ms",
              "speedup");
  for (const KernelRow& r : rows)
    std::printf("  lfk%-3d %9zu %9zu %9zu %9.2f %11.2f %13.2f %8.2fx\n",
                r.loop, r.events, r.anchors, r.edges, r.dag_s * 1e3,
                r.engine_s * 1e3, r.reference_s * 1e3, r.speedup);

  // --- JSON ----------------------------------------------------------------
  std::string json = support::strf(
      "{\n  \"bench\": \"whatif\",\n  \"n\": %lld,\n"
      "  \"sweep_experiments\": %zu,\n  \"rates\": {",
      static_cast<long long>(n), kSweepSize);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const KernelRow& r = rows[i];
    json += support::strf(
        "%s\"whatif_sweep_lfk%d_engine\": %.1f, "
        "\"whatif_sweep_lfk%d_reference\": %.1f",
        i ? ", " : "", r.loop,
        r.engine_s > 0.0 ? static_cast<double>(kSweepSize) / r.engine_s : 0.0,
        r.loop,
        r.reference_s > 0.0
            ? static_cast<double>(kSweepSize) / r.reference_s
            : 0.0);
  }
  json += "},\n  \"speedups\": {";
  for (std::size_t i = 0; i < rows.size(); ++i)
    json += support::strf("%s\"whatif_sweep_lfk%d\": %.3f", i ? ", " : "",
                          rows[i].loop, rows[i].speedup);
  // The bar this PR was built to clear: a 64-experiment sweep at least an
  // order of magnitude faster than 64 reference re-simulations.
  json += "},\n  \"floors\": {";
  for (std::size_t i = 0; i < rows.size(); ++i)
    json += support::strf("%s\"whatif_sweep_lfk%d\": 10.0", i ? ", " : "",
                          rows[i].loop);
  json += "}\n}\n";

  std::string werr;
  PERTURB_CHECK_MSG(support::write_file_atomic(out_path, json, &werr),
                    "cannot write bench output file");
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
