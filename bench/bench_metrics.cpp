// bench_metrics — self-overhead of the metrics registry.
//
// The repo's observability layer must be cheap enough to leave on: this
// harness runs the full analysis pipeline (load -> triage -> index ->
// event-based analysis) over a large synthetic DOACROSS trace with metrics
// disabled and enabled, interleaving the repetitions so both sides see the
// same thermal/cache conditions, and reports
//
//   * the on/off throughput ratio ("metrics_on_over_off"; 1.0 = free,
//     gated in CI at >= 0.98, i.e. at most ~2% overhead), and
//   * phase coverage: with metrics on, the summed pipeline.phase.* timer
//     nanoseconds divided by the end-to-end wall time of the same run.
//     Coverage near 1.0 means the per-stage timers account for the whole
//     pipeline; the harness checks >= 0.90 in-process.
//
// Results go to BENCH_metrics.json (--out).  --n scales the trace (default
// 143000 iterations ~= 1e6 events; CI smoke uses --n 4000), --reps the
// per-side repetitions.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "loops/programs.hpp"
#include "sim/engine.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/fsio.hpp"
#include "support/metrics.hpp"
#include "support/text.hpp"
#include "trace/io.hpp"

namespace {

using namespace perturb;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 143000);
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 9));
  const std::string out_path = cli.get("out", "BENCH_metrics.json");
  bench::print_header("BENCH metrics",
                      "pipeline throughput with the metrics registry off vs "
                      "on, plus phase-timer coverage");

  const experiments::Setup setup = bench::setup_from_cli(cli);
  const auto prog = loops::make_concurrent_ir(3, n);
  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  const trace::Trace measured =
      sim::simulate(setup.machine, prog, plan, "bench_metrics");
  const std::size_t events = measured.size();

  const std::string tmp = out_path + ".trace.tmp";
  {
    std::ofstream f(tmp, std::ios::binary);
    trace::write_binary(f, measured);
  }

  core::PipelineOptions options;
  options.overheads = experiments::overheads_for(plan, setup.machine);
  options.machine = setup.machine;
  core::AnalysisPipeline pipeline(options);
  pipeline.add(core::AnalyzerKind::kEventBased);

  const auto run_once = [&] {
    auto result = pipeline.run_file(tmp);
    if (!result.acquire.ok || result.outputs[0].approx.size() != events)
      std::abort();
  };

  // Warm up both modes (first enabled run also interns the lazily-registered
  // handles), then interleave timed reps and keep each side's best.
  support::Metrics::enable(false);
  run_once();
  support::Metrics::enable(true);
  run_once();
  double best_off = 0.0;
  double best_on = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    support::Metrics::enable(false);
    auto start = Clock::now();
    run_once();
    const double off = seconds_since(start);
    if (off > 0.0 && (best_off == 0.0 || off < best_off)) best_off = off;

    support::Metrics::enable(true);
    start = Clock::now();
    run_once();
    const double on = seconds_since(start);
    if (on > 0.0 && (best_on == 0.0 || on < best_on)) best_on = on;
  }
  const double rate_off =
      best_off > 0.0 ? static_cast<double>(events) / best_off : 0.0;
  const double rate_on =
      best_on > 0.0 ? static_cast<double>(events) / best_on : 0.0;
  const double ratio = rate_off > 0.0 ? rate_on / rate_off : 0.0;
  const double overhead_pct = (1.0 - ratio) * 100.0;

  // Phase coverage: one clean enabled run, snapshot, and compare the summed
  // stage timers against that run's wall clock.
  support::Metrics::enable(true);
  support::Metrics::reset();
  const auto wall_start = Clock::now();
  run_once();
  const double wall = seconds_since(wall_start);
  const auto snap = support::Metrics::snapshot();
  std::uint64_t phase_ns = 0;
  for (const auto& [name, h] : snap.histograms)
    if (name.rfind("pipeline.phase.", 0) == 0) phase_ns += h.sum;
  const double coverage =
      wall > 0.0 ? static_cast<double>(phase_ns) / 1e9 / wall : 0.0;
  support::Metrics::enable(false);
  std::remove(tmp.c_str());

  std::printf("metrics overhead (lfk3 concurrent, %zu events, %zu reps)\n",
              events, reps);
  std::printf("  %-20s %12.0f events/sec\n", "pipeline_off", rate_off);
  std::printf("  %-20s %12.0f events/sec\n", "pipeline_on", rate_on);
  std::printf("  on/off ratio %.4fx (overhead %.2f%%), phase coverage %.3f\n",
              ratio, overhead_pct, coverage);

  // The stage timers must account for (almost) the entire pipeline run —
  // uninstrumented gaps would make the snapshot lie about where time goes.
  PERTURB_CHECK_MSG(coverage >= 0.90 && coverage <= 1.05,
                    "pipeline.phase.* timers do not cover the run");

  std::string json = "{\n  \"bench\": \"metrics\",\n";
  json += support::strf("  \"loop\": 3,\n  \"n\": %lld,\n  \"events\": %zu,\n",
                        static_cast<long long>(n), events);
  json += support::strf(
      "  \"rates\": {\"pipeline_off\": %.1f, \"pipeline_on\": %.1f},\n",
      rate_off, rate_on);
  json += support::strf("  \"overhead_pct\": %.2f,\n", overhead_pct);
  json += support::strf("  \"phase_coverage\": %.3f,\n", coverage);
  json += support::strf("  \"speedups\": {\"metrics_on_over_off\": %.3f}\n}\n",
                        ratio);

  std::string werr;
  PERTURB_CHECK_MSG(support::write_file_atomic(out_path, json, &werr),
                    "cannot write bench output file");
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
