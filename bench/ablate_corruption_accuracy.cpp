// Ablation: trace corruption vs. approximation accuracy.
//
// The paper assumes intact measured traces; production capture loses events
// (full buffers, torn runs).  This bench quantifies what the triage & repair
// pipeline (trace/repair.hpp) preserves: sweep a uniform event-drop rate
// over the loop-17 measured trace, repair the degraded trace, run the
// event-based analysis on it, and report approximated-vs-actual total-time
// error next to the intact-trace baseline.
#include <cstdio>

#include "bench_util.hpp"
#include "core/eventbased.hpp"
#include "trace/faults.hpp"
#include "trace/repair.hpp"

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  const auto n = bench::trip_from_cli(cli);
  const int loop = static_cast<int>(cli.get_int("loop", 17));
  // Measured traces carry probe-cost timing noise; give the repair
  // validator one max-probe of slack (see ValidateOptions::sync_slack).
  const trace::Tick slack = cli.get_int("sync-slack", 200);

  bench::print_header(
      "Ablation — Trace Corruption vs. Approximation Accuracy",
      "Event-drop sweep on the loop-17 measured trace, repaired before "
      "analysis.");

  experiments::Setup setup = bench::setup_from_cli(cli);
  const auto run = experiments::run_concurrent_experiment(
      loop, n, setup, experiments::PlanKind::kFull);
  const auto plan =
      experiments::make_plan(experiments::PlanKind::kFull, setup);
  const auto ov = experiments::overheads_for(plan, setup.machine);
  const double actual_total =
      static_cast<double>(run.actual.total_time());

  std::printf("intact baseline: measured %.2fx of actual, event-based "
              "approx %+0.1f%% error\n\n",
              run.eb_quality.measured_over_actual,
              run.eb_quality.percent_error);
  std::printf("%-7s %-9s %-9s | %-8s %-22s | %9s\n", "drop%", "events",
              "repaired", "severity", "repairs (drop/synth/adj)", "eb err%");
  std::printf("----------------------------+---------------------------------"
              "+----------\n");

  for (const double drop_pct : {0.0, 2.0, 5.0, 10.0, 15.0, 20.0}) {
    const trace::Trace degraded = trace::drop_random_events(
        run.measured, drop_pct / 100.0, 1991 + static_cast<std::uint64_t>(
                                                   drop_pct * 10));
    trace::RepairOptions opts;
    opts.sync_slack = slack;
    auto repaired = trace::repair(degraded, opts);
    bool aggressive = false;
    if (repaired.manifest.severity == trace::RepairSeverity::kUnsalvageable) {
      opts.aggressive = true;
      aggressive = true;
      repaired = trace::repair(degraded, opts);
    }
    if (repaired.manifest.severity == trace::RepairSeverity::kUnsalvageable) {
      std::printf("%-7.0f %-9zu %-9zu | unsalvageable (%zu violations "
                  "remain)\n",
                  drop_pct, degraded.size(), repaired.repaired.size(),
                  repaired.manifest.remaining.size());
      continue;
    }
    const auto result =
        core::event_based_approximation(repaired.repaired, ov);
    const double err = (static_cast<double>(result.approx.total_time()) -
                        actual_total) /
                       actual_total * 100.0;
    const std::string repairs = support::strf(
        "%zu/%zu/%zu%s", repaired.manifest.events_dropped,
        repaired.manifest.events_synthesized,
        repaired.manifest.events_adjusted, aggressive ? " *" : "");
    std::printf("%-7.0f %-9zu %-9zu | %-8s %-22s | %+8.1f%%\n", drop_pct,
                degraded.size(), repaired.repaired.size(),
                trace::repair_severity_name(repaired.manifest.severity),
                repairs.c_str(), err);
  }
  std::printf("\nReading: repair keeps the event-based analysis running on\n"
              "degraded traces; accuracy decays with the drop rate because\n"
              "dropped synchronization events take their waiting time with\n"
              "them.  Rows marked * needed --aggressive strategies.\n");
  return 0;
}
