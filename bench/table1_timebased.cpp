// Reproduces Table 1: execution-time ratios for Livermore loops 3, 4 and 17
// under *time-based* perturbation analysis of a full statement-level
// instrumentation (§3).
//
// Expected shape: the time-based model under-approximates loops 3 and 4
// (instrumentation inflated the independent work and removed blocking at the
// critical section, which the model cannot restore) and over-approximates
// loop 17 (instrumentation inside the large critical section increased
// contention, which the model cannot remove).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  const auto setup = bench::setup_from_cli(cli);
  const auto n = bench::trip_from_cli(cli);

  bench::print_header(
      "Table 1 — Loop Execution Time Ratios: Time-Based Analysis",
      "DOACROSS loops 3, 4, 17 on the simulated 8-CE machine; full\n"
      "statement instrumentation; analysis assumes event independence.");

  std::vector<experiments::Scenario> grid;
  for (const auto& row : bench::paper_table1())
    grid.push_back(bench::concurrent_scenario(
        row.loop, n, setup, experiments::PlanKind::kStatementsOnly));
  const auto runs =
      experiments::run_grid(grid, bench::grid_options_from_cli(cli));

  std::vector<bench::PaperRatioRow> ours;
  for (std::size_t i = 0; i < runs.size(); ++i)
    ours.push_back({bench::paper_table1()[i].loop,
                    runs[i].tb_quality.measured_over_actual,
                    runs[i].tb_quality.approx_over_actual});
  bench::print_ratio_table(bench::paper_table1(), ours);

  std::printf("Shape check: loops 3 and 4 under-approximated (< 1), loop 17\n"
              "over-approximated (close to its measured slowdown).\n");
  return 0;
}
