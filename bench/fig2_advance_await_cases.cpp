// Reproduces Figure 2: the two advance/await correction cases of event-based
// perturbation analysis (§4.2.3).
//
//   Case A (waiting removed): in the *measurement* the awaiting processor
//     waits, but only because probe overhead inside the predecessor's
//     guarded region delayed the advance; the actual execution never waits.
//     The approximation removes the spurious wait.
//
//   Case B (waiting introduced): in the measurement the await is satisfied
//     on arrival, but only because the awaitB probe delayed the awaiting
//     processor past the advance; the actual execution waits.  The
//     approximation re-introduces the wait.
//
// Each case is a two-processor, two-iteration DOACROSS micro-program with
// zero probe jitter, so the classifications are exact and the bench verifies
// them against the actual trace.
#include <cstdio>

#include "bench_util.hpp"
#include "trace/event.hpp"

namespace {

using namespace perturb;

/// DOACROSS over 2 iterations on 2 processors; iteration 1 awaits iteration
/// 0.  Iteration 0 (the advancer) runs `advancer_work` before the guarded
/// region; iteration 1 (the awaiter) runs `awaiter_work` before its await.
/// `traced_region` controls whether the guarded region's statements are
/// instrumentation sites (probes inside the critical region — Case A's
/// mechanism) or compiler-generated code (Case B's).
sim::Program make_case(sim::Cycles advancer_work, sim::Cycles awaiter_work,
                       bool traced_region) {
  sim::Program prog;
  const auto var = prog.declare_sync_var("A");
  sim::Block body;
  body.nodes.push_back(sim::compute_fn(
      "work", [advancer_work, awaiter_work](std::int64_t i) {
        return i == 0 ? advancer_work : awaiter_work;
      }));
  body.nodes.push_back(sim::await(var, {1, -1}));
  if (traced_region) {
    body.nodes.push_back(sim::compute("guarded stmt 1", 10));
    body.nodes.push_back(sim::compute("guarded stmt 2", 10));
  } else {
    body.nodes.push_back(sim::raw_compute("guarded update", 20));
  }
  body.nodes.push_back(sim::advance(var, {1, 0}));
  prog.root().nodes.push_back(
      sim::par_loop("fig2", sim::LoopKind::kDoacross, sim::Schedule::kCyclic,
                    2, std::move(body)));
  prog.finalize();
  return prog;
}

bool actual_waited(const trace::Trace& t) {
  // Compare the awaitB against the advance of the *same* pair (payload).
  std::int64_t awaited_pair = -1;
  trace::Tick await_b = 0;
  for (const auto& e : t) {
    if (e.kind == trace::EventKind::kAwaitBegin) {
      awaited_pair = e.payload;
      await_b = e.time;
    }
  }
  for (const auto& e : t)
    if (e.kind == trace::EventKind::kAdvance && e.payload == awaited_pair)
      return e.time > await_b;
  return false;
}

void print_sync_events(const char* label, const trace::Trace& t) {
  std::printf("  %-10s", label);
  for (const auto& e : t) {
    switch (e.kind) {
      case trace::EventKind::kAdvance:
      case trace::EventKind::kAwaitBegin:
      case trace::EventKind::kAwaitEnd:
        std::printf(" %s@%lld(p%u)", trace::event_kind_name(e.kind),
                    static_cast<long long>(e.time), unsigned(e.proc));
        break;
      default:
        break;
    }
  }
  std::printf("\n");
}

void run_case(const char* name, const char* mechanism,
              sim::Cycles advancer_work, sim::Cycles awaiter_work,
              bool traced_region, const experiments::Setup& setup) {
  const auto prog = make_case(advancer_work, awaiter_work, traced_region);
  const auto run = experiments::run_program_experiment(
      prog, setup, experiments::PlanKind::kFull, name);

  std::printf("%s\n  mechanism: %s\n", name, mechanism);
  print_sync_events("actual:", run.actual);
  print_sync_events("measured:", run.measured);
  print_sync_events("approx:", run.event_based.approx);
  std::printf("  actual waits: %s | measured waits: %zu | approx waits: %zu | "
              "removed: %zu | introduced: %zu\n\n",
              actual_waited(run.actual) ? "yes" : "no",
              run.event_based.waits_measured, run.event_based.waits_approx,
              run.event_based.waits_removed, run.event_based.waits_introduced);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  experiments::Setup setup = bench::setup_from_cli(cli);
  setup.machine.num_procs = 2;
  // Zero jitter: the micro-cases should be exact.
  setup.stmt.jitter_frac = setup.sync.jitter_frac = setup.control.jitter_frac = 0;
  setup.sync.mean = 90;

  bench::print_header(
      "Figure 2 — Advance/Await Synchronization: Measurement and Approximation",
      "Two-processor micro-programs realizing both correction cases.");

  run_case("Case A (waiting removed by the approximation)",
           "probes inside the predecessor's guarded region delay the advance",
           /*advancer_work=*/60, /*awaiter_work=*/220, /*traced_region=*/true,
           setup);

  experiments::Setup b = setup;
  b.sync.mean = 400;  // a heavyweight awaitB probe delays the awaiter
  run_case("Case B (waiting introduced by the approximation)",
           "the awaitB probe delays the awaiting processor past the advance",
           /*advancer_work=*/300, /*awaiter_work=*/100,
           /*traced_region=*/false, b);
  return 0;
}
