// bench_workload — reconstruction-error phase diagrams over synthesized
// workloads (DESIGN.md §14).
//
// The Livermore suite shows where event-based reconstruction works; this
// bench maps where it breaks down, along two axes:
//
//   * error vs tail weight: Pareto per-iteration costs under self-scheduling
//     with a DOACROSS chain, tail index alpha swept heavy to light, plus a
//     Livermore-like control (near-uniform costs, cyclic schedule, no
//     chain).  Heavy tails push reconstruction error past 5% while the
//     control stays under 1% — the boundary of the paper's method;
//   * error vs contention density: critical-section/semaphore densities
//     swept from 0 upward, plus the bursty-interference family whose probe
//     inflation reconstruction cannot subtract (a guaranteed failure mode).
//
// Gates (all deterministic — the simulator is seeded, so error percentages
// are bit-stable across hosts):
//   * the whole grid is bit-identical at 1 and 8 worker threads (the
//     synthesized actual-run memo keys are exercised: tail cells share
//     nothing, control cells share nothing, repeats share everything);
//   * heavy-tail and bursty cells exceed 5% mean |error|; the control stays
//     under 1%;
//   * cross-validation: no cell whose measured error exceeds 5% may be
//     model-confident at experiments::kDefaultScreenThreshold — the
//     analytic uncertainty must flag every cell the phase diagram condemns.
//
// Results go to JSON (--out, default BENCH_workload.json; per-cell phase
// data to --phase-out, default WORKLOAD_phase.json); tools/check_bench.py
// gates CI runs against bench/baseline/BENCH_workload.json.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "support/check.hpp"
#include "support/fsio.hpp"
#include "support/text.hpp"
#include "workload/workload.hpp"

namespace {

using namespace perturb;
using Clock = std::chrono::steady_clock;

/// One phase-diagram cell: a workload scenario plus its sweep coordinates.
struct PhaseCell {
  std::string sweep;   ///< "tail", "control", "contention", "bursty"
  double knob = 0.0;   ///< swept coordinate (alpha or density)
  experiments::Scenario scenario;
};

experiments::Scenario workload_scenario(const workload::WorkloadSpec& spec,
                                        const experiments::Setup& setup) {
  experiments::Scenario s;
  s.setup = setup;
  s.plan = experiments::PlanKind::kFull;
  s.workload = spec;
  return s;
}

bool traces_equal(const trace::Trace& a, const trace::Trace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a[i] == b[i])) return false;
  return true;
}

bool runs_equal(const experiments::LoopRun& a, const experiments::LoopRun& b) {
  return traces_equal(a.actual, b.actual) &&
         traces_equal(a.measured, b.measured) &&
         traces_equal(a.time_based, b.time_based) &&
         traces_equal(a.event_based.approx, b.event_based.approx) &&
         a.eb_quality.percent_error == b.eb_quality.percent_error;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  const std::string out_path = cli.get("out", "BENCH_workload.json");
  const std::string phase_path = cli.get("phase-out", "WORKLOAD_phase.json");
  const std::int64_t trip = cli.get_int("trip", 600);
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 2));
  const experiments::Setup setup = bench::setup_from_cli(cli);

  bench::print_header(
      "BENCH workload",
      "reconstruction-error phase diagrams over synthesized workloads\n"
      "(heavy tails, contention density, bursty interference; DESIGN.md §14)");

  const std::vector<std::uint64_t> seeds = {5, 7, 9};
  std::vector<PhaseCell> cells;

  // --- tail sweep: Pareto alpha, heavy to light -------------------------
  const std::vector<double> alphas = {1.3, 1.6, 2.0, 3.0, 6.0};
  for (const double alpha : alphas) {
    for (const std::uint64_t seed : seeds) {
      workload::WorkloadSpec spec;
      spec.family = workload::Family::kPareto;
      spec.seed = seed;
      spec.params = workload::default_params(spec.family);
      spec.params.trip = trip;
      spec.params.alpha = alpha;
      cells.push_back({"tail", alpha, workload_scenario(spec, setup)});
    }
  }
  // Livermore-like control: near-uniform costs, static schedule, no chain.
  for (const std::uint64_t seed : seeds) {
    workload::WorkloadSpec spec;
    spec.family = workload::Family::kPareto;
    spec.seed = seed;
    spec.params = workload::default_params(spec.family);
    spec.params.trip = trip;
    spec.params.alpha = 8.0;
    spec.params.chain_prob = 0.0;
    spec.params.schedule = sim::Schedule::kCyclic;
    cells.push_back({"control", 8.0, workload_scenario(spec, setup)});
  }

  // --- contention sweep: critical-section density -----------------------
  const std::vector<double> densities = {0.0, 0.2, 0.4, 0.6};
  for (const double crit : densities) {
    for (const std::uint64_t seed : seeds) {
      workload::WorkloadSpec spec;
      spec.family = workload::Family::kContention;
      spec.seed = seed;
      spec.params = workload::default_params(spec.family);
      spec.params.trip = std::max<std::int64_t>(1, trip * 2 / 3);
      spec.params.critical_density = crit;
      spec.params.sem_density = crit / 2.0;
      cells.push_back({"contention", crit, workload_scenario(spec, setup)});
    }
  }
  // Bursty interference: the guaranteed failure mode (unmodeled probe
  // inflation), one cell per seed at the family defaults.
  for (const std::uint64_t seed : seeds) {
    workload::WorkloadSpec spec;
    spec.family = workload::Family::kBursty;
    spec.seed = seed;
    spec.params = workload::default_params(spec.family);
    spec.params.trip = trip;
    cells.push_back(
        {"bursty", spec.params.burst_frac, workload_scenario(spec, setup)});
  }

  std::vector<experiments::Scenario> grid;
  grid.reserve(cells.size());
  for (const PhaseCell& c : cells) grid.push_back(c.scenario);

  // --- determinism gate: bit-identical at 1 and 8 worker threads --------
  experiments::GridOptions opts;
  opts.threads = threads;
  opts.memoize_actual = true;
  const auto t0 = Clock::now();
  const auto runs = experiments::run_grid(grid, opts);
  const double grid_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  for (const std::size_t alt : {std::size_t{1}, std::size_t{8}}) {
    experiments::GridOptions alt_opts;
    alt_opts.threads = alt;
    alt_opts.memoize_actual = alt != 1;
    const auto again = experiments::run_grid(grid, alt_opts);
    for (std::size_t i = 0; i < grid.size(); ++i)
      PERTURB_CHECK_MSG(
          runs_equal(runs[i], again[i]),
          support::strf("workload grid varies with thread count (cell %zu, "
                        "%zu threads)",
                        i, alt));
  }
  std::printf("determinism: %zu cells bit-identical at 1/%zu/8 threads\n",
              grid.size(), threads);

  // --- phase data and sweep aggregates ----------------------------------
  struct Agg {
    double sum = 0.0;
    int count = 0;
    double mean() const { return count ? sum / count : 0.0; }
  };
  std::map<std::string, std::map<double, Agg>> sweeps;
  std::string phase = "{\n  \"report\": \"workload_phase\",\n  \"cells\": [\n";
  bool crossval_ok = true;
  std::string crossval_victim;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const PhaseCell& c = cells[i];
    const double err = std::abs(runs[i].eb_quality.percent_error);
    const double tb_err = std::abs(runs[i].tb_quality.percent_error);
    sweeps[c.sweep][c.knob].sum += err;
    sweeps[c.sweep][c.knob].count += 1;
    const auto prediction = experiments::predict_scenario(c.scenario);
    const bool confident =
        prediction.uncertainty <= experiments::kDefaultScreenThreshold;
    // The cross-validation claim: the model must not be confident about any
    // cell whose reconstruction demonstrably failed.
    if (err > 5.0 && confident) {
      crossval_ok = false;
      crossval_victim = experiments::scenario_name(c.scenario);
    }
    if (i) phase += ",\n";
    phase += support::strf(
        "    {\"sweep\": \"%s\", \"knob\": %.3f, \"cell\": \"%s\", "
        "\"measured_over_actual\": %.3f, \"eb_error_pct\": %.3f, "
        "\"tb_error_pct\": %.3f, \"uncertainty\": %.3f, \"confident\": %s}",
        c.sweep.c_str(), c.knob,
        experiments::scenario_name(c.scenario).c_str(),
        runs[i].eb_quality.measured_over_actual, err, tb_err,
        prediction.uncertainty, confident ? "true" : "false");
  }
  PERTURB_CHECK_MSG(
      crossval_ok,
      support::strf("model confidently screened a failing cell (%s)",
                    crossval_victim.c_str()));

  for (const auto& [sweep, knobs] : sweeps) {
    std::printf("%s sweep:\n", sweep.c_str());
    for (const auto& [knob, agg] : knobs)
      std::printf("  knob %6.2f: mean |eb error| %6.2f%%  (%d cells)\n", knob,
                  agg.mean(), agg.count);
  }

  const double heavy_err = sweeps["tail"][alphas.front()].mean();
  const double light_err = sweeps["tail"][alphas.back()].mean();
  const double control_err = sweeps["control"][8.0].mean();
  const double bursty_err =
      sweeps["bursty"].begin()->second.mean();
  const double cont_low = sweeps["contention"][densities.front()].mean();
  const double cont_high = sweeps["contention"][densities.back()].mean();

  // --- phase-diagram gates ----------------------------------------------
  PERTURB_CHECK_MSG(heavy_err > 5.0,
                    support::strf("heavy-tail cells should exceed 5%% error, "
                                  "got %.2f%%", heavy_err));
  PERTURB_CHECK_MSG(bursty_err > 5.0,
                    support::strf("bursty cells should exceed 5%% error, got "
                                  "%.2f%%", bursty_err));
  PERTURB_CHECK_MSG(control_err < 1.0,
                    support::strf("Livermore-like control should stay under "
                                  "1%% error, got %.2f%%", control_err));
  PERTURB_CHECK_MSG(heavy_err > light_err,
                    "tail sweep is not monotone: heavy <= light");
  PERTURB_CHECK_MSG(cont_high > cont_low,
                    "contention sweep is not monotone: dense <= sparse");
  std::printf(
      "\ngates: heavy tail %.2f%% > 5%%, bursty %.2f%% > 5%%, control "
      "%.2f%% < 1%%, contention %.2f%% -> %.2f%%\n",
      heavy_err, bursty_err, control_err, cont_low, cont_high);

  // --- JSON ---------------------------------------------------------------
  // Every "speedup" below is a deterministic error statistic (seeded
  // simulation), so the 20% check_bench tolerance only absorbs deliberate
  // re-calibrations, not machine noise.
  std::string json = support::strf(
      "{\n  \"bench\": \"workload\",\n  \"trip\": %lld,\n"
      "  \"rates\": {\"grid_cells_per_sec\": %.2f},\n"
      "  \"errors\": {\"heavy_tail_pct\": %.3f, \"light_tail_pct\": %.3f, "
      "\"control_pct\": %.3f, \"bursty_pct\": %.3f, "
      "\"contention_sparse_pct\": %.3f, \"contention_dense_pct\": %.3f},\n"
      "  \"speedups\": {\"heavy_tail_error_pct\": %.3f, "
      "\"bursty_error_pct\": %.3f, \"tail_separation\": %.3f, "
      "\"contention_rise_pct\": %.3f},\n"
      "  \"floors\": {\"heavy_tail_error_pct\": 5.0, "
      "\"bursty_error_pct\": 5.0, \"tail_separation\": 5.0, "
      "\"contention_rise_pct\": 0.5}\n}\n",
      static_cast<long long>(trip),
      grid_s > 0.0 ? static_cast<double>(grid.size()) / grid_s : 0.0,
      heavy_err, light_err, control_err, bursty_err, cont_low, cont_high,
      heavy_err, bursty_err,
      control_err > 0.0 ? heavy_err / control_err : heavy_err / 0.01,
      cont_high - cont_low);
  phase += "\n  ]\n}\n";

  std::string werr;
  PERTURB_CHECK_MSG(support::write_file_atomic(out_path, json, &werr),
                    "cannot write bench output file");
  PERTURB_CHECK_MSG(support::write_file_atomic(phase_path, phase, &werr),
                    "cannot write phase report");
  std::printf("wrote %s and %s\n", out_path.c_str(), phase_path.c_str());
  return 0;
}
