// bench_stream — memory economics of streaming trace analysis.
//
// The streaming path (trace::ChunkReader → windowed StreamingReconstructor,
// core::AnalysisPipeline::run_stream_file) exists to analyze traces that do
// not fit comfortably in memory.  This harness pins down both halves of that
// claim on a >=100k-event Livermore loop-3 trace:
//
//   * peak_rss_batch_over_stream: peak resident set of a batch run_file
//     analysis divided by a summary-mode streaming run, each measured in its
//     own forked child (ru_maxrss) net of a null child's inherited
//     footprint.  Gated in CI at >= 4.0 — the streaming run must hold
//     <= 25% of the batch peak.
//
//   * stream_throughput_vs_batch: streamed events/sec over batch events/sec
//     (best of --reps).  Streaming pays per-window bookkeeping; this ratio
//     keeps that honest.  Reported and regression-checked, low floor.
//
// Equivalence gates (always on, any size): the collected streaming
// approximation must be bit-identical to the batch event-based analyzer's,
// and the summary-mode totals must match it.  Results go to
// BENCH_stream.json (--out); CI smoke shrinks --n.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "experiments/experiments.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/fsio.hpp"
#include "support/text.hpp"
#include "trace/chunk_reader.hpp"
#include "trace/io.hpp"

namespace {

using namespace perturb;
using Clock = std::chrono::steady_clock;

/// What one forked phase reports back through its pipe.
struct PhaseResult {
  std::int64_t rss_kb = 0;  ///< child ru_maxrss (Linux: KiB)
  double secs = 0.0;        ///< wall time of the workload closure
  std::uint64_t extra = 0;  ///< phase-specific payload (event counts)
};

/// Runs `work` in a forked child and returns its peak RSS + wall time.
/// Fork-per-phase keeps each measurement clean: neither allocator reuse nor
/// a previous phase's high-water mark can leak into the next one.
template <typename Fn>
PhaseResult run_phase(const char* name, Fn&& work) {
  int pipe_fds[2];
  PERTURB_CHECK_MSG(::pipe(pipe_fds) == 0, "pipe failed");
  const pid_t pid = ::fork();
  PERTURB_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    ::close(pipe_fds[0]);
    PhaseResult r;
    const auto start = Clock::now();
    r.extra = work();
    r.secs = std::chrono::duration<double>(Clock::now() - start).count();
    struct rusage usage{};
    ::getrusage(RUSAGE_SELF, &usage);
    r.rss_kb = static_cast<std::int64_t>(usage.ru_maxrss);
    const ssize_t wrote = ::write(pipe_fds[1], &r, sizeof(r));
    ::_exit(wrote == sizeof(r) ? 0 : 1);
  }
  ::close(pipe_fds[1]);
  PhaseResult r;
  const ssize_t got = ::read(pipe_fds[0], &r, sizeof(r));
  ::close(pipe_fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  PERTURB_CHECK_MSG(got == sizeof(r) && WIFEXITED(status) &&
                        WEXITSTATUS(status) == 0,
                    std::string("phase '") + name + "' child failed");
  return r;
}

core::PipelineOptions pipeline_options(std::size_t window) {
  experiments::Setup setup;
  core::PipelineOptions options;
  options.overheads = experiments::overheads_for(
      experiments::make_plan(experiments::PlanKind::kFull, setup),
      setup.machine);
  options.machine = setup.machine;
  options.sync_slack = 130;
  options.stream_window = window;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 32000);
  const auto window = static_cast<std::size_t>(
      cli.get_int("window", static_cast<std::int64_t>(
                                core::PipelineOptions{}.stream_window)));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const std::string out_path = cli.get("out", "BENCH_stream.json");
  const std::string trace_path =
      "/tmp/perturb_bench_stream_" + std::to_string(::getpid()) + ".bin";
  bench::print_header("BENCH stream",
                      "peak-RSS and throughput of windowed streaming "
                      "analysis vs the batch pipeline");

  // The workload trace is generated (and the big intermediate traces die)
  // inside its own child, so the measuring children inherit a parent that
  // never held it — the null baseline stays small and stable.
  const PhaseResult gen = run_phase("generate", [&] {
    experiments::Setup setup;
    const auto run = experiments::run_concurrent_experiment(
        3, n, setup, experiments::PlanKind::kFull);
    trace::save(trace_path, run.measured);
    return static_cast<std::uint64_t>(run.measured.size());
  });
  const auto events = static_cast<std::size_t>(gen.extra);
  std::printf("workload       lfk3 n=%lld: %zu events (window %zu)\n",
              static_cast<long long>(n), events, window);

  const PhaseResult null_phase =
      run_phase("null", [] { return std::uint64_t{0}; });

  PhaseResult batch;
  PhaseResult stream;
  for (int rep = 0; rep < reps; ++rep) {
    const PhaseResult b = run_phase("batch", [&] {
      core::AnalysisPipeline pipeline(pipeline_options(window));
      pipeline.add(core::AnalyzerKind::kEventBased);
      const core::PipelineResult result = pipeline.run_file(trace_path);
      PERTURB_CHECK_MSG(result.acquire.ok, "batch analysis failed");
      return static_cast<std::uint64_t>(
          result.output("event-based")->approx.size());
    });
    const PhaseResult s = run_phase("stream", [&] {
      const core::AnalysisPipeline pipeline(pipeline_options(window));
      const core::StreamOutcome out =
          pipeline.run_stream_file(trace_path, /*collect=*/false);
      PERTURB_CHECK_MSG(out.ok, "streaming analysis failed");
      return static_cast<std::uint64_t>(out.measured_events);
    });
    if (rep == 0 || b.secs < batch.secs) batch = b;
    if (rep == 0 || s.secs < stream.secs) stream = s;
  }
  PERTURB_CHECK_MSG(batch.extra == events && stream.extra == events,
                    "phase event counts disagree with the workload");

  // Equivalence gates, in-process (memory no longer being measured): the
  // collected stream reproduces the batch event-based approximation bit for
  // bit, and summary mode reports its exact totals.
  {
    core::AnalysisPipeline pipeline(pipeline_options(window));
    pipeline.add(core::AnalyzerKind::kEventBased);
    const core::PipelineResult b = pipeline.run_file(trace_path);
    const core::StreamOutcome collected =
        pipeline.run_stream_file(trace_path, /*collect=*/true);
    const core::StreamOutcome summary =
        pipeline.run_stream_file(trace_path, /*collect=*/false);
    const trace::Trace& oracle = b.output("event-based")->approx;
    PERTURB_CHECK_MSG(collected.event_stats.approx.events() == oracle.events(),
                      "streamed approximation diverged from batch");
    PERTURB_CHECK_MSG(summary.approx_span == oracle.span() &&
                          summary.approx_total == oracle.total_time(),
                      "summary-mode totals diverged from batch");
    std::printf("equivalence    streamed == batch on %zu events\n",
                oracle.size());
  }
  ::unlink(trace_path.c_str());

  const double batch_net =
      static_cast<double>(batch.rss_kb - null_phase.rss_kb);
  const double stream_net =
      static_cast<double>(stream.rss_kb - null_phase.rss_kb);
  const double rss_ratio = stream_net > 0 ? batch_net / stream_net : 0.0;
  const double batch_eps =
      batch.secs > 0 ? static_cast<double>(events) / batch.secs : 0.0;
  const double stream_eps =
      stream.secs > 0 ? static_cast<double>(events) / stream.secs : 0.0;
  const double throughput = batch_eps > 0 ? stream_eps / batch_eps : 0.0;
  std::printf("peak rss       null %lld KiB, batch %lld KiB, stream %lld KiB"
              "  -> ratio %.2fx\n",
              static_cast<long long>(null_phase.rss_kb),
              static_cast<long long>(batch.rss_kb),
              static_cast<long long>(stream.rss_kb), rss_ratio);
  std::printf("throughput     batch %.0f ev/s, stream %.0f ev/s  -> %.2fx\n",
              batch_eps, stream_eps, throughput);

  std::string json = "{\n";
  json += support::strf("  \"bench\": \"stream\",\n");
  json += support::strf("  \"n\": %lld,\n  \"window\": %zu,\n",
                        static_cast<long long>(n), window);
  json += support::strf("  \"events\": %zu,\n", events);
  json += support::strf(
      "  \"rss_kb\": {\"null\": %lld, \"batch\": %lld, \"stream\": %lld},\n",
      static_cast<long long>(null_phase.rss_kb),
      static_cast<long long>(batch.rss_kb),
      static_cast<long long>(stream.rss_kb));
  json += support::strf(
      "  \"rates\": {\"batch_events_per_sec\": %.0f, "
      "\"stream_events_per_sec\": %.0f},\n",
      batch_eps, stream_eps);
  json += support::strf(
      "  \"speedups\": {\"peak_rss_batch_over_stream\": %.2f, "
      "\"stream_throughput_vs_batch\": %.2f},\n",
      rss_ratio, throughput);
  json +=
      "  \"floors\": {\"peak_rss_batch_over_stream\": 4.0, "
      "\"stream_throughput_vs_batch\": 0.25}\n}\n";

  std::string error;
  PERTURB_CHECK_MSG(support::write_file_atomic(out_path, json, &error),
                    "cannot write bench output file");
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
