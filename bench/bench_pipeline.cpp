// bench_pipeline — throughput of the unified analysis pipeline.
//
// For Livermore loops 3, 4, and 17 (concurrent mode, full instrumentation)
// at several trip counts, measures:
//
//   * TraceIndex build rate (events/sec), and
//   * each analyzer's rate through core::AnalysisPipeline
//     (time-based, event-based, liberal, likely),
//
// and writes the results as JSON to BENCH_pipeline.json (override with
// --out <path>).  --reps <k> caps the repetitions per measurement (default
// 16; CI smoke runs use --reps 2).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "loops/programs.hpp"
#include "sim/engine.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/text.hpp"
#include "trace/index.hpp"

namespace {

using namespace perturb;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Measurement {
  std::string name;
  bool ok = false;
  double events_per_sec = 0.0;
};

/// Times `reps` runs of `body` and converts to events/sec.  A body that
/// throws CheckError (e.g. the liberal extractor on a shape it does not
/// support) yields ok=false instead of aborting the suite.
template <typename Fn>
Measurement measure(const std::string& name, std::size_t events,
                    std::size_t reps, Fn&& body) {
  Measurement m;
  m.name = name;
  try {
    body();  // warm-up; also surfaces unsupported shapes before timing
    const auto start = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) body();
    const double elapsed = seconds_since(start);
    m.ok = true;
    m.events_per_sec =
        elapsed > 0.0
            ? static_cast<double>(events * reps) / elapsed
            : 0.0;
  } catch (const CheckError&) {
    m.ok = false;
  }
  return m;
}

std::string json_number(double v) {
  return support::strf("%.1f", v);
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  const std::string out_path = cli.get("out", "BENCH_pipeline.json");
  const auto reps =
      static_cast<std::size_t>(cli.get_int("reps", 16));
  bench::print_header("BENCH pipeline",
                      "index-build and per-analyzer throughput (events/sec) "
                      "through core::AnalysisPipeline");

  const experiments::Setup setup = bench::setup_from_cli(cli);
  const std::vector<int> loops_to_run = {3, 4, 17};
  const std::vector<std::int64_t> trips = {128, 512, 1001};

  const std::vector<std::pair<core::AnalyzerKind, const char*>> analyzers = {
      {core::AnalyzerKind::kTimeBased, "time-based"},
      {core::AnalyzerKind::kEventBased, "event-based"},
      {core::AnalyzerKind::kLiberal, "liberal"},
      {core::AnalyzerKind::kLikely, "likely"},
  };

  std::string json = "{\n  \"bench\": \"pipeline\",\n  \"runs\": [\n";
  bool first_run = true;
  for (const int loop : loops_to_run) {
    for (const std::int64_t n : trips) {
      const auto prog = loops::make_concurrent_ir(loop, n);
      const auto plan =
          experiments::make_plan(experiments::PlanKind::kFull, setup);
      const auto measured =
          sim::simulate(setup.machine, prog, plan, "bench_pipeline");
      const std::size_t events = measured.size();

      core::PipelineOptions options;
      options.overheads = experiments::overheads_for(plan, setup.machine);
      options.machine = setup.machine;
      options.likely_samples = 8;  // keep the Monte-Carlo stage bench-sized

      std::vector<Measurement> rows;
      rows.push_back(measure("index-build", events, reps, [&] {
        trace::TraceIndex index(measured);
        if (index.size() != events) std::abort();
      }));

      const trace::TraceIndex index(measured);
      for (const auto& [kind, name] : analyzers) {
        const auto analyzer = core::make_analyzer(kind);
        rows.push_back(measure(name, events, reps, [&] {
          const auto out = analyzer->run(index, options);
          if (out.analyzer.empty()) std::abort();
        }));
      }

      std::printf("lfk%-2d n=%-5lld (%zu events)\n", loop,
                  static_cast<long long>(n), events);
      for (const auto& m : rows) {
        if (m.ok)
          std::printf("  %-12s %12.0f events/sec\n", m.name.c_str(),
                      m.events_per_sec);
        else
          std::printf("  %-12s %12s\n", m.name.c_str(), "unsupported");
      }

      if (!first_run) json += ",\n";
      first_run = false;
      json += support::strf(
          "    {\"loop\": %d, \"n\": %lld, \"events\": %zu, \"rates\": {",
          loop, static_cast<long long>(n), events);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i) json += ", ";
        json += "\"" + rows[i].name + "\": ";
        json += rows[i].ok ? json_number(rows[i].events_per_sec) : "null";
      }
      json += "}}";
    }
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  PERTURB_CHECK_MSG(f != nullptr, "cannot open bench output file");
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
