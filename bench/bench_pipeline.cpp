// bench_pipeline — throughput of the unified analysis pipeline.
//
// For Livermore loops 3, 4, and 17 (concurrent mode, full instrumentation)
// at several trip counts, measures:
//
//   * TraceIndex build rate (events/sec), and
//   * each analyzer's rate through core::AnalysisPipeline
//     (time-based, event-based, liberal, likely),
//
// and writes the results as JSON to BENCH_pipeline.json (override with
// --out <path>).  --reps <k> caps the repetitions per measurement (default
// 16; CI smoke runs use --reps 2).
//
// A second section, the hot-path suite, benchmarks the optimized trace I/O,
// index build, and fused pipeline against the reference implementations
// retained in-tree (stream reader, TraceIndex::ReferenceBuild, the
// load→validate→index→analyze composition with per-stage index builds) on a
// large synthetic DOACROSS trace, asserting along the way that every
// optimized path reproduces its reference bit for bit.  Results go to
// BENCH_hotpath.json (--hotpath-out); --hotpath-n scales the trace
// (default 143000 iterations ≈ 1e6 events) and --hotpath-reps the
// repetitions.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/eventbased.hpp"
#include "core/pipeline.hpp"
#include "loops/programs.hpp"
#include "sim/engine.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/fsio.hpp"
#include "support/text.hpp"
#include "trace/index.hpp"
#include "trace/io.hpp"
#include "trace/validate.hpp"

namespace {

using namespace perturb;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Measurement {
  std::string name;
  bool ok = false;
  double events_per_sec = 0.0;
};

/// Times `reps` runs of `body` and reports the fastest as events/sec.  The
/// best rep estimates the noise-free cost: the mean is skewed arbitrarily by
/// scheduler interference on shared machines, the minimum is not.  A body
/// that throws CheckError (e.g. the liberal extractor on a shape it does not
/// support) yields ok=false instead of aborting the suite.
template <typename Fn>
Measurement measure(const std::string& name, std::size_t events,
                    std::size_t reps, Fn&& body) {
  Measurement m;
  m.name = name;
  try {
    body();  // warm-up; also surfaces unsupported shapes before timing
    double best = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
      const auto start = Clock::now();
      body();
      const double elapsed = seconds_since(start);
      if (elapsed > 0.0 && (best == 0.0 || elapsed < best)) best = elapsed;
    }
    m.ok = true;
    m.events_per_sec =
        best > 0.0 ? static_cast<double>(events) / best : 0.0;
  } catch (const CheckError&) {
    m.ok = false;
  }
  return m;
}

std::string json_number(double v) {
  return support::strf("%.1f", v);
}

bool traces_equal(const trace::Trace& a, const trace::Trace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a[i] == b[i])) return false;
  return true;
}

void run_hotpath(const support::Cli& cli, const experiments::Setup& setup) {
  const std::int64_t n = cli.get_int("hotpath-n", 143000);
  const std::string out_path = cli.get("hotpath-out", "BENCH_hotpath.json");
  const auto reps =
      static_cast<std::size_t>(cli.get_int("hotpath-reps", 3));

  std::printf(
      "\n== BENCH hotpath ==\n"
      "zero-copy I/O, fast index, and fused pipeline vs the retained\n"
      "reference implementations (lfk3 concurrent, n=%lld)\n\n",
      static_cast<long long>(n));

  const auto prog = loops::make_concurrent_ir(3, n);
  const auto plan =
      experiments::make_plan(experiments::PlanKind::kFull, setup);
  const trace::Trace measured =
      sim::simulate(setup.machine, prog, plan, "bench_hotpath");
  const std::size_t events = measured.size();

  core::PipelineOptions options;
  options.overheads = experiments::overheads_for(plan, setup.machine);
  options.machine = setup.machine;

  const std::string tmp = out_path + ".trace.tmp";
  {
    std::ofstream f(tmp, std::ios::binary);
    trace::write_binary(f, measured);
  }

  // One-time equivalence gates: every optimized path must reproduce its
  // reference bit for bit before its rate means anything.
  trace::IoArena arena;
  {
    std::ifstream f(tmp, std::ios::binary);
    const trace::Trace via_stream = trace::read_binary(f);
    const trace::Trace via_buffer = trace::load(tmp, arena);
    PERTURB_CHECK_MSG(traces_equal(via_stream, measured) &&
                          traces_equal(via_buffer, measured),
                      "hotpath: loaded trace differs from written trace");
  }
  const trace::TraceIndex ref_index(trace::TraceIndex::ReferenceBuild{},
                                    measured);
  const trace::TraceIndex fast_index(measured);
  {
    const auto ref_eb = core::event_based_approximation(
        ref_index, options.overheads, options.event_based);
    const auto fast_eb = core::event_based_approximation(
        fast_index, options.overheads, options.event_based);
    PERTURB_CHECK_MSG(
        traces_equal(ref_eb.approx, fast_eb.approx),
        "hotpath: event-based output differs across index builders");
  }

  std::vector<Measurement> rows;
  rows.push_back(measure("simulate", events, reps, [&] {
    const auto t = sim::simulate(setup.machine, prog, plan, "bench_hotpath");
    if (t.size() != events) std::abort();
  }));
  rows.push_back(measure("write_binary", events, reps, [&] {
    std::ofstream f(tmp, std::ios::binary);
    trace::write_binary(f, measured);
  }));
  rows.push_back(measure("load_stream", events, reps, [&] {
    std::ifstream f(tmp, std::ios::binary);
    const auto t = trace::read_binary(f);
    if (t.size() != events) std::abort();
  }));
  rows.push_back(measure("load_buffer", events, reps, [&] {
    const auto t = trace::load(tmp, arena);
    if (t.size() != events) std::abort();
  }));
  rows.push_back(measure("index_reference", events, reps, [&] {
    const trace::TraceIndex idx(trace::TraceIndex::ReferenceBuild{}, measured);
    if (idx.size() != events) std::abort();
  }));
  rows.push_back(measure("index_fast", events, reps, [&] {
    const trace::TraceIndex idx(measured);
    if (idx.size() != events) std::abort();
  }));
  rows.push_back(measure("event_based", events, reps, [&] {
    const auto r = core::event_based_approximation(
        fast_index, options.overheads, options.event_based);
    if (r.approx.size() != events) std::abort();
  }));

  // End-to-end baseline: the pre-overhaul composition — stream read, triage
  // over its own reference index, a second reference index for analysis,
  // then the event-based reconstruction.
  trace::Trace baseline_approx;
  rows.push_back(measure("end_to_end_baseline", events, reps, [&] {
    std::ifstream f(tmp, std::ios::binary);
    const trace::Trace t = trace::read_binary(f);
    const trace::TraceIndex triage(trace::TraceIndex::ReferenceBuild{}, t);
    if (!trace::validate(triage, {}).empty()) std::abort();
    const trace::TraceIndex analysis(trace::TraceIndex::ReferenceBuild{}, t);
    auto r = core::event_based_approximation(analysis, options.overheads,
                                             options.event_based);
    baseline_approx = std::move(r.approx);
  }));

  // End-to-end optimized: the product path — zero-copy load, one fast index
  // shared by triage and analysis.
  core::AnalysisPipeline pipeline(options);
  pipeline.add(core::AnalyzerKind::kEventBased);
  trace::Trace fused_approx;
  rows.push_back(measure("end_to_end_optimized", events, reps, [&] {
    auto result = pipeline.run_file(tmp);
    if (!result.acquire.ok) std::abort();
    fused_approx = std::move(result.outputs[0].approx);
  }));
  PERTURB_CHECK_MSG(
      traces_equal(baseline_approx, fused_approx),
      "hotpath: fused pipeline differs from the baseline composition");
  std::remove(tmp.c_str());

  const auto rate_of = [&rows](const char* name) -> double {
    for (const auto& m : rows)
      if (m.name == name && m.ok && m.events_per_sec > 0.0)
        return m.events_per_sec;
    return 0.0;
  };
  const auto ratio = [](double fast, double slow) {
    return slow > 0.0 ? fast / slow : 0.0;
  };
  const double load_speedup = ratio(rate_of("load_buffer"),
                                    rate_of("load_stream"));
  const double index_speedup = ratio(rate_of("index_fast"),
                                     rate_of("index_reference"));
  const double e2e_speedup = ratio(rate_of("end_to_end_optimized"),
                                   rate_of("end_to_end_baseline"));

  std::printf("hotpath (%zu events)\n", events);
  for (const auto& m : rows)
    std::printf("  %-20s %12.0f events/sec\n", m.name.c_str(),
                m.events_per_sec);
  std::printf(
      "  speedups: binary load %.2fx, index build %.2fx, end-to-end %.2fx\n",
      load_speedup, index_speedup, e2e_speedup);

  std::string json = "{\n  \"bench\": \"hotpath\",\n";
  json += support::strf("  \"loop\": 3,\n  \"n\": %lld,\n  \"events\": %zu,\n",
                        static_cast<long long>(n), events);
  json += "  \"rates\": {";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i) json += ", ";
    json += "\"" + rows[i].name + "\": " + json_number(rows[i].events_per_sec);
  }
  json += "},\n  \"speedups\": {";
  json += support::strf(
      "\"binary_load\": %.3f, \"index_build\": %.3f, \"end_to_end\": %.3f",
      load_speedup, index_speedup, e2e_speedup);
  json += "}\n}\n";

  std::string werr;
  PERTURB_CHECK_MSG(support::write_file_atomic(out_path, json, &werr),
                    "cannot write hotpath bench output file");
  std::printf("wrote %s\n", out_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  const std::string out_path = cli.get("out", "BENCH_pipeline.json");
  const auto reps =
      static_cast<std::size_t>(cli.get_int("reps", 16));
  bench::print_header("BENCH pipeline",
                      "index-build and per-analyzer throughput (events/sec) "
                      "through core::AnalysisPipeline");

  const experiments::Setup setup = bench::setup_from_cli(cli);
  const std::vector<int> loops_to_run = {3, 4, 17};
  const std::vector<std::int64_t> trips = {128, 512, 1001};

  const std::vector<std::pair<core::AnalyzerKind, const char*>> analyzers = {
      {core::AnalyzerKind::kTimeBased, "time-based"},
      {core::AnalyzerKind::kEventBased, "event-based"},
      {core::AnalyzerKind::kLiberal, "liberal"},
      {core::AnalyzerKind::kLikely, "likely"},
  };

  std::string json = "{\n  \"bench\": \"pipeline\",\n  \"runs\": [\n";
  bool first_run = true;
  for (const int loop : loops_to_run) {
    for (const std::int64_t n : trips) {
      const auto prog = loops::make_concurrent_ir(loop, n);
      const auto plan =
          experiments::make_plan(experiments::PlanKind::kFull, setup);
      const auto measured =
          sim::simulate(setup.machine, prog, plan, "bench_pipeline");
      const std::size_t events = measured.size();

      core::PipelineOptions options;
      options.overheads = experiments::overheads_for(plan, setup.machine);
      options.machine = setup.machine;
      options.likely_samples = 8;  // keep the Monte-Carlo stage bench-sized

      std::vector<Measurement> rows;
      rows.push_back(measure("index-build", events, reps, [&] {
        trace::TraceIndex index(measured);
        if (index.size() != events) std::abort();
      }));

      const trace::TraceIndex index(measured);
      for (const auto& [kind, name] : analyzers) {
        const auto analyzer = core::make_analyzer(kind);
        rows.push_back(measure(name, events, reps, [&] {
          const auto out = analyzer->run(index, options);
          if (out.analyzer.empty()) std::abort();
        }));
      }

      std::printf("lfk%-2d n=%-5lld (%zu events)\n", loop,
                  static_cast<long long>(n), events);
      for (const auto& m : rows) {
        if (m.ok)
          std::printf("  %-12s %12.0f events/sec\n", m.name.c_str(),
                      m.events_per_sec);
        else
          std::printf("  %-12s %12s\n", m.name.c_str(), "unsupported");
      }

      if (!first_run) json += ",\n";
      first_run = false;
      json += support::strf(
          "    {\"loop\": %d, \"n\": %lld, \"events\": %zu, \"rates\": {",
          loop, static_cast<long long>(n), events);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i) json += ", ";
        json += "\"" + rows[i].name + "\": ";
        json += rows[i].ok ? json_number(rows[i].events_per_sec) : "null";
      }
      json += "}}";
    }
  }
  json += "\n  ]\n}\n";

  std::string werr;
  PERTURB_CHECK_MSG(support::write_file_atomic(out_path, json, &werr),
                    "cannot write bench output file");
  std::printf("\nwrote %s\n", out_path.c_str());

  run_hotpath(cli, setup);
  return 0;
}
