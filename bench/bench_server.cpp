// bench_server — robustness economics of the perturbation-analysis daemon.
//
// Overload handling is only worth its complexity if it is cheap.  This
// harness starts an in-process daemon and measures two machine-relative
// ratios (absolute jobs/sec vary by host; the ratios do not):
//
//   * overload_throughput_retention: completed-job throughput when the
//     offered load is ~4x capacity, divided by throughput at capacity.
//     A server that sheds correctly keeps serving near its capacity rate
//     under overload (retention ~1.0); one that thrashes or queues without
//     bound collapses.  Gated in CI at >= 0.60.
//
//   * reject_fastpath: structured rejections per second from a saturated
//     server, divided by the capacity job rate.  Shedding must cost far
//     less than service — the whole point of admission control is that
//     saying no is cheap.  Gated in CI at >= 2.0 (rejections at least
//     twice as fast as the jobs they displace).
//
// Each phase runs for a fixed wall-clock window (--secs) so the rates are
// comparable: under overload most calls are rejected instantly, and a
// count-based batch would end before the workers completed anything.
// Results go to BENCH_server.json (--out).  CI smoke shrinks --secs and
// the workload trace (--n).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "experiments/experiments.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/fsio.hpp"
#include "support/text.hpp"
#include "trace/io.hpp"

namespace {

using namespace perturb;
using Clock = std::chrono::steady_clock;

struct LoadResult {
  std::size_t ok = 0;
  std::size_t rejected = 0;
  double wall_s = 0.0;

  double ok_per_sec() const { return wall_s > 0 ? double(ok) / wall_s : 0.0; }
};

/// Hammers the daemon with `clients` closed-loop senders for `secs` of wall
/// clock; every sender keeps submitting until the window closes.  A sender
/// that is shed backs off for `backoff_us` before retrying — well-behaved
/// overload clients honor REJECTED_OVERLOAD rather than hammering the
/// admission path, and the retention ratio measures shedding quality under
/// that discipline (an unthrottled rejection storm mostly measures how many
/// cores the rejection handling can steal from the workers).
LoadResult drive(const std::string& socket_path, const std::string& payload,
                 std::size_t clients, double secs,
                 std::uint64_t backoff_us = 0) {
  std::vector<std::thread> senders;
  std::vector<LoadResult> partial(clients);
  std::atomic<std::uint64_t> next_id{1};
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::microseconds(static_cast<std::int64_t>(1e6 * secs));
  for (std::size_t c = 0; c < clients; ++c)
    senders.emplace_back([&, c] {
      server::Client client(socket_path);
      server::JobRequest request;
      request.analyzers = server::kMaskTimeBased | server::kMaskEventBased;
      request.payload = payload;
      while (Clock::now() < deadline) {
        request.job_id = next_id.fetch_add(1);
        const server::JobReply reply = client.call(request);
        if (reply.status == server::JobStatus::kOk) partial[c].ok++;
        if (reply.status == server::JobStatus::kRejectedOverload) {
          partial[c].rejected++;
          if (backoff_us > 0)
            std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
        }
      }
    });
  for (auto& sender : senders) sender.join();
  LoadResult total;
  total.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  for (const auto& p : partial) {
    total.ok += p.ok;
    total.rejected += p.rejected;
  }
  return total;
}

server::ServerConfig daemon_config(const std::string& socket_path,
                                   std::size_t workers,
                                   std::size_t queue_depth) {
  server::ServerConfig config;
  config.socket_path = socket_path;
  config.workers = workers;
  config.queue_depth = queue_depth;
  experiments::Setup setup;
  config.pipeline.overheads = experiments::overheads_for(
      experiments::make_plan(experiments::PlanKind::kFull, setup),
      setup.machine);
  config.pipeline.machine = setup.machine;
  config.pipeline.sync_slack = 130;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  const std::size_t workers =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   cli.get_int("workers", 2)));
  const double secs = cli.get_double("secs", 2.0);
  const std::int64_t n = cli.get_int("n", 200);
  const auto slow_samples =
      static_cast<std::uint32_t>(cli.get_int("slow-samples", 50000));
  const std::string out_path = cli.get("out", "BENCH_server.json");
  bench::print_header("BENCH server",
                      "daemon throughput at capacity vs under overload, and "
                      "the cost of a structured rejection");

  experiments::Setup setup;
  const auto run = experiments::run_concurrent_experiment(
      17, n, setup, experiments::PlanKind::kFull);
  std::ostringstream image;
  trace::write_binary(image, run.measured);
  const std::string payload = image.str();
  const std::string socket_base =
      "/tmp/perturb_bench_server_" + std::to_string(::getpid());

  // Capacity: one closed-loop client per worker keeps every worker busy
  // without ever filling the (deep) queue — nothing is shed.
  double capacity_per_sec = 0.0;
  {
    const std::string socket_path = socket_base + ".cap.sock";
    server::PerturbServer daemon(daemon_config(socket_path, workers, 1024));
    daemon.start();
    drive(socket_path, payload, workers, secs / 4);  // warmup
    const LoadResult r = drive(socket_path, payload, workers, secs);
    daemon.shutdown();
    PERTURB_CHECK_MSG(r.rejected == 0,
                      "capacity run shed jobs; queue depth miscalibrated");
    PERTURB_CHECK_MSG(r.ok > 0, "capacity run completed nothing");
    capacity_per_sec = r.ok_per_sec();
    std::printf("capacity       %7.0f ok/s (%zu jobs, %zu workers)\n",
                capacity_per_sec, r.ok, workers);
  }

  // Overload: 4x the clients against a queue of depth `workers`.  Most
  // arrivals are shed; the completed-job rate must hold near capacity.
  double overload_per_sec = 0.0;
  std::size_t overload_rejected = 0;
  {
    const std::string socket_path = socket_base + ".over.sock";
    server::PerturbServer daemon(
        daemon_config(socket_path, workers, workers));
    daemon.start();
    const LoadResult r = drive(socket_path, payload, 4 * workers, secs,
                               /*backoff_us=*/2000);
    daemon.shutdown();
    overload_per_sec = r.ok_per_sec();
    overload_rejected = r.rejected;
    std::printf("overload       %7.0f ok/s (%zu ok, %zu rejected)\n",
                overload_per_sec, r.ok, r.rejected);
  }
  PERTURB_CHECK_MSG(overload_rejected > 0,
                    "overload run shed nothing; offered load miscalibrated");

  // Rejection fast path: saturate a single worker and its one queue slot
  // with jobs made slow via the Monte-Carlo knob (tens of seconds of
  // sampling), then time pure rejections for a window that ends long
  // before the slow jobs do.
  double rejects_per_sec = 0.0;
  {
    const std::string socket_path = socket_base + ".rej.sock";
    server::ServerConfig config = daemon_config(socket_path, 1, 1);
    config.drain_timeout_ms = 200;  // shed the queued slow job at shutdown
    server::PerturbServer daemon(std::move(config));
    daemon.start();
    std::vector<std::thread> holders;
    for (int k = 0; k < 2; ++k) {
      holders.emplace_back([&, k] {
        server::Client holder(socket_path);
        server::JobRequest slow;
        slow.job_id = 900000 + static_cast<std::uint64_t>(k);
        slow.analyzers = server::kMaskLikely;
        slow.likely_samples = slow_samples;
        slow.payload = payload;
        (void)holder.call(slow);  // kOk or kCancelledDrain; either is fine
      });
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server::Client prober(socket_path);
    server::JobRequest probe;
    probe.analyzers = server::kMaskTimeBased;
    probe.payload = payload;
    std::size_t sent = 0;
    std::size_t rejected = 0;
    const auto start = Clock::now();
    const auto deadline = start + std::chrono::microseconds(
                                      static_cast<std::int64_t>(1e6 * secs / 4));
    while (Clock::now() < deadline) {
      probe.job_id = 1 + sent++;
      if (prober.call(probe).status == server::JobStatus::kRejectedOverload)
        rejected++;
    }
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    daemon.shutdown();
    for (auto& holder : holders) holder.join();
    PERTURB_CHECK_MSG(rejected == sent,
                      "saturation leaked: a probe was admitted while the "
                      "slow jobs held the server");
    rejects_per_sec = wall_s > 0 ? double(rejected) / wall_s : 0.0;
    std::printf("reject path    %7.0f rejections/s (%zu probes)\n",
                rejects_per_sec, sent);
  }

  const double retention =
      capacity_per_sec > 0 ? overload_per_sec / capacity_per_sec : 0.0;
  const double fastpath =
      capacity_per_sec > 0 ? rejects_per_sec / capacity_per_sec : 0.0;
  std::printf("retention      %7.2f   reject_fastpath %7.2f\n", retention,
              fastpath);

  std::string json = "{\n";
  json += support::strf("  \"bench\": \"server\",\n");
  json += support::strf("  \"workers\": %zu,\n  \"secs\": %.2f,\n", workers,
                        secs);
  json += support::strf("  \"events\": %zu,\n", run.measured.size());
  json += support::strf(
      "  \"rates\": {\"capacity_ok_per_sec\": %.1f, "
      "\"overload_ok_per_sec\": %.1f, \"rejections_per_sec\": %.1f},\n",
      capacity_per_sec, overload_per_sec, rejects_per_sec);
  json += support::strf(
      "  \"speedups\": {\"overload_throughput_retention\": %.3f, "
      "\"reject_fastpath\": %.2f},\n",
      retention, fastpath);
  json +=
      "  \"floors\": {\"overload_throughput_retention\": 0.60, "
      "\"reject_fastpath\": 2.0}\n}\n";

  std::string error;
  PERTURB_CHECK_MSG(support::write_file_atomic(out_path, json, &error),
                    "cannot write bench output file");
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
