// Ablation: instrumentation volume vs. approximation accuracy — the
// Instrumentation Uncertainty Principle (§1) and its apparent violation
// (§5.2).
//
// Sweeps (a) the statement probe cost and (b) the instrumentation plan, for
// loops 3 and 17, reporting measured slowdown and both analyses' errors.
// The paper's point: adding *more* instrumentation (sync events) increases
// perturbation but enables event-based analysis, which is far more accurate
// than time-based analysis on less perturbed data.
#include <cstdio>

#include "bench_util.hpp"
#include "support/text.hpp"

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  const auto n = bench::trip_from_cli(cli);

  bench::print_header(
      "Ablation — Instrumentation Volume vs. Approximation Accuracy",
      "Probe-cost and plan sweep on DOACROSS loops 3 and 17.");

  std::printf("%-5s %-10s %-12s | %9s | %9s %9s\n", "loop", "plan",
              "stmt probe", "slowdown", "tb err%", "eb err%");
  std::printf("---------------------------------+-----------+--------------------\n");

  // Every cell of a loop's sweep shares one actual run: probe costs and
  // plan kind never reach the uninstrumented simulation, so the grid's
  // memoization collapses the 10 variants to a single actual per loop.
  constexpr int kLoops[] = {3, 17};
  constexpr double kProbes[] = {40.0, 90.0, 175.0, 350.0, 700.0};
  constexpr experiments::PlanKind kKinds[] = {
      experiments::PlanKind::kStatementsOnly, experiments::PlanKind::kFull};
  std::vector<experiments::Scenario> grid;
  for (const int loop : kLoops) {
    for (const double probe : kProbes) {
      for (const auto kind : kKinds) {
        experiments::Setup setup = bench::setup_from_cli(cli);
        setup.stmt.mean = probe;
        grid.push_back(bench::concurrent_scenario(loop, n, setup, kind));
      }
    }
  }
  const auto runs =
      experiments::run_grid(grid, bench::grid_options_from_cli(cli));

  std::size_t cell = 0;
  for (const int loop : kLoops) {
    for (const double probe : kProbes) {
      for (const auto kind : kKinds) {
        const auto& run = runs[cell++];
        const bool full = kind == experiments::PlanKind::kFull;
        std::string eb = "n/a";
        if (full)
          eb = support::strf("%+8.1f%%", run.eb_quality.percent_error);
        std::printf("%-5d %-10s %-12.0f | %8.2fx | %+8.1f%% %9s\n", loop,
                    full ? "full" : "stmts", probe,
                    run.tb_quality.measured_over_actual,
                    run.tb_quality.percent_error, eb.c_str());
      }
    }
    std::printf("\n");
  }
  std::printf("Reading: event-based error stays within a few percent as\n"
              "slowdown grows; time-based error diverges with probe cost.\n"
              "(eb err is only meaningful for the full plan, which records\n"
              "the synchronization events the analysis needs.)\n");
  return 0;
}
