// Ablation: conservative vs. liberal approximation under dynamic
// self-scheduling (§4.2.3's work-reassignment discussion, §4.3).
//
// Under kSelf scheduling the iteration→processor mapping depends on timing.
// A distance-1 DOACROSS pins the mapping (completions follow the chain), so
// this bench uses a scheduling-sensitive workload: a distance-4 DOACROSS
// with strongly heterogeneous iteration costs.  Probe costs (and their
// jitter) shift completion times, so the instrumented run fetches iterations
// in a different order than the uninstrumented run would — work is remapped
// across processors.  Conservative event-based analysis must keep the
// measured mapping; liberal analysis re-simulates the loop under the
// asserted policy with de-instrumented per-iteration costs and recovers a
// mapping (and schedule-dependent timing) closer to the actual execution.
#include <cstdio>

#include "bench_util.hpp"
#include "core/liberal.hpp"
#include "core/likely.hpp"
#include "support/prng.hpp"

namespace {

using namespace perturb;

/// Self-schedulable DOACROSS: distance 4, iteration costs in roughly
/// [300, 2300] cycles (deterministic per iteration).
sim::Program make_workload(std::int64_t n, sim::Schedule sched) {
  sim::Program prog;
  const auto var = prog.declare_sync_var("S");
  sim::Block body;
  body.nodes.push_back(sim::compute_fn("irregular work", [](std::int64_t i) {
    const double j = support::keyed_jitter(0xab1e, 7, static_cast<std::uint64_t>(i));
    return static_cast<sim::Cycles>(1300 + 1000.0 * j);
  }));
  body.nodes.push_back(sim::await(var, {1, -4}));
  body.nodes.push_back(sim::raw_compute("guarded update", 30));
  body.nodes.push_back(sim::advance(var, {1, 0}));
  body.nodes.push_back(sim::compute("post", 60));
  prog.root().nodes.push_back(sim::par_loop(
      "irregular", sim::LoopKind::kDoacross, sched, n, std::move(body)));
  prog.finalize();
  return prog;
}

std::vector<trace::ProcId> iteration_mapping(const trace::Trace& t) {
  std::vector<trace::ProcId> map;
  for (const auto& e : t) {
    if (e.kind != trace::EventKind::kIterBegin) continue;
    if (static_cast<std::size_t>(e.payload) >= map.size())
      map.resize(static_cast<std::size_t>(e.payload) + 1, 0);
    map[static_cast<std::size_t>(e.payload)] = e.proc;
  }
  return map;
}

std::size_t mapping_disagreement(const std::vector<trace::ProcId>& a,
                                 const std::vector<trace::ProcId>& b) {
  std::size_t diff = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) diff += a[i] != b[i] ? 1u : 0u;
  return diff + (a.size() > n ? a.size() - n : b.size() - n);
}

trace::Tick loop_time(const trace::Trace& t) {
  trace::Tick t_begin = 0;
  trace::Tick t_end = 0;
  for (const auto& e : t) {
    if (e.kind == trace::EventKind::kLoopBegin) t_begin = e.time;
    if (e.kind == trace::EventKind::kLoopEnd) t_end = e.time;
  }
  return t_end - t_begin;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  const auto setup = bench::setup_from_cli(cli);
  const auto n = bench::trip_from_cli(cli, 400);

  bench::print_header(
      "Ablation — Conservative vs. Liberal Approximation (self-scheduling)",
      "Irregular distance-4 DOACROSS; instrumentation remaps iterations\n"
      "across processors under dynamic self-scheduling.");

  for (const auto sched : {sim::Schedule::kCyclic, sim::Schedule::kSelf}) {
    const auto prog = make_workload(n, sched);
    const auto run = experiments::run_program_experiment(
        prog, setup, experiments::PlanKind::kFull, "ablate-liberal");

    const auto actual_map = iteration_mapping(run.actual);
    const auto measured_map = iteration_mapping(run.measured);

    const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
    const auto ov = experiments::overheads_for(plan, setup.machine);
    const auto shape = core::extract_doacross_shape(run.measured, ov);
    core::LiberalOptions opt;
    opt.machine = setup.machine;
    opt.schedule = sched;
    const auto liberal = core::liberal_approximation(shape, opt);

    const double actual_loop = static_cast<double>(loop_time(run.actual));
    const double conservative_loop =
        static_cast<double>(loop_time(run.event_based.approx));
    const double liberal_loop = static_cast<double>(liberal.loop_time);

    std::printf("schedule=%s\n", sim::schedule_name(sched));
    std::printf("  iterations remapped by instrumentation: %zu of %lld\n",
                mapping_disagreement(actual_map, measured_map),
                static_cast<long long>(n));
    std::printf("  loop time    actual:     %10.0f\n", actual_loop);
    std::printf("  conservative approx:     %10.0f  (%+.1f%%)\n",
                conservative_loop,
                (conservative_loop / actual_loop - 1.0) * 100.0);
    std::printf("  liberal approx:          %10.0f  (%+.1f%%)\n", liberal_loop,
                (liberal_loop / actual_loop - 1.0) * 100.0);
    std::printf("  mapping disagreement vs actual: conservative %zu, "
                "liberal %zu\n",
                mapping_disagreement(actual_map, measured_map),
                mapping_disagreement(actual_map, liberal.iteration_to_proc));

    // §4.1: is the approximation a *likely* execution?  Sample the loop-time
    // distribution under an 8% cost-uncertainty model and place the actual
    // and approximated times in it.
    core::LikelyOptions likely_opt;
    likely_opt.machine = setup.machine;
    likely_opt.schedule = sched;
    likely_opt.samples = 48;
    likely_opt.cost_uncertainty = 0.08;
    const auto dist = core::likely_executions(shape, likely_opt);
    std::printf("  likely loop times (48 samples, +-8%% costs): "
                "[%lld .. %lld], median %lld\n",
                static_cast<long long>(dist.min),
                static_cast<long long>(dist.max),
                static_cast<long long>(dist.median));
    std::printf("  percentile of actual: %.2f, of conservative approx: %.2f\n\n",
                dist.percentile_of(static_cast<trace::Tick>(actual_loop)),
                dist.percentile_of(static_cast<trace::Tick>(conservative_loop)));
  }
  std::printf("Reading: under kSelf the measured (and therefore conservative)\n"
              "mapping diverges from the actual one; the liberal re-simulation\n"
              "recovers the actual mapping (external scheduling knowledge).\n");
  return 0;
}
