// bench_sim — simulator fast-path and experiment-grid throughput.
//
// Three sections, each gated on an in-process equivalence check against the
// retained reference implementation before any timing is trusted:
//
//   * simulate: event rate of the devirtualized engine (sealed hook
//     dispatch, per-processor arenas, flat ready selection) versus
//     simulate_reference(), for Livermore loop 3 (the DOACROSS acceptance
//     workload) and loop 17, under NullInstrumentation and the full
//     cost-table plan;
//   * trace compare: trace::compare() versus compare_reference();
//   * grid: wall-clock of experiments::run_grid over the machine-size
//     ablation's scenario set (loops 3 and 17 across processor counts) at 1
//     and 8 worker threads, versus run_grid_reference(), the serial
//     pre-optimization driver.
//
// Speedup ratios are measured fast-vs-reference in the same process, so
// they are comparable across hosts (absolute rates are not).  Results are
// written as JSON (--out, default BENCH_sim.json) with the floors the
// optimization was built to clear; tools/check_bench.py gates CI runs
// against the committed baseline in bench/baseline/BENCH_sim.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "loops/programs.hpp"
#include "sim/engine.hpp"
#include "support/check.hpp"
#include "support/fsio.hpp"
#include "support/text.hpp"
#include "trace/trace_stats.hpp"

namespace {

using namespace perturb;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Fastest of `reps` runs, in seconds.  The minimum estimates the
/// noise-free cost; means are skewed arbitrarily by scheduler interference.
template <typename Fn>
double time_best(std::size_t reps, Fn&& body) {
  double best = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    body();
    const double elapsed = seconds_since(start);
    if (elapsed > 0.0 && (best == 0.0 || elapsed < best)) best = elapsed;
  }
  return best;
}

bool traces_equal(const trace::Trace& a, const trace::Trace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a[i] == b[i])) return false;
  return true;
}

bool quality_equal(const core::ApproximationQuality& a,
                   const core::ApproximationQuality& b) {
  return a.measured_over_actual == b.measured_over_actual &&
         a.approx_over_actual == b.approx_over_actual &&
         a.percent_error == b.percent_error &&
         a.mean_abs_event_error == b.mean_abs_event_error &&
         a.rms_event_error == b.rms_event_error &&
         a.p50_event_error == b.p50_event_error &&
         a.p95_event_error == b.p95_event_error &&
         a.matched_events == b.matched_events &&
         a.degraded_input == b.degraded_input;
}

bool runs_equal(const experiments::LoopRun& a, const experiments::LoopRun& b) {
  return traces_equal(a.actual, b.actual) &&
         traces_equal(a.measured, b.measured) &&
         traces_equal(a.time_based, b.time_based) &&
         traces_equal(a.event_based.approx, b.event_based.approx) &&
         quality_equal(a.tb_quality, b.tb_quality) &&
         quality_equal(a.eb_quality, b.eb_quality);
}

struct Entry {
  std::string key;
  double fast_rate = 0.0;  ///< events (or cells) per second, optimized
  double ref_rate = 0.0;   ///< same workload through the reference path
  double speedup() const { return ref_rate > 0.0 ? fast_rate / ref_rate : 0.0; }
};

Entry bench_simulate(const std::string& key, const sim::MachineConfig& cfg,
                     const sim::Program& program,
                     const sim::InstrumentationHook& hook, std::size_t reps) {
  const trace::Trace fast = sim::simulate(cfg, program, hook, key);
  const trace::Trace ref = sim::simulate_reference(cfg, program, hook, key);
  PERTURB_CHECK_MSG(traces_equal(fast, ref),
                    key + ": fast-path trace differs from reference engine");
  const auto events = static_cast<double>(fast.size());

  Entry e;
  e.key = key;
  e.fast_rate = events / time_best(reps, [&] {
    const auto t = sim::simulate(cfg, program, hook, key);
    if (t.size() != fast.size()) std::abort();
  });
  e.ref_rate = events / time_best(reps, [&] {
    const auto t = sim::simulate_reference(cfg, program, hook, key);
    if (t.size() != fast.size()) std::abort();
  });
  std::printf("  %-22s %12.0f ev/s fast %12.0f ev/s ref  %6.2fx (%zu events)\n",
              e.key.c_str(), e.fast_rate, e.ref_rate, e.speedup(), fast.size());
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  const std::string out_path = cli.get("out", "BENCH_sim.json");
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 5));
  const std::int64_t sim_n = cli.get_int("sim-n", 20000);
  const std::int64_t sim_n17 = std::max<std::int64_t>(400, sim_n / 5);
  const std::int64_t grid_n = cli.get_int("grid-n", 600);
  const experiments::Setup setup = bench::setup_from_cli(cli);

  bench::print_header(
      "BENCH sim",
      "devirtualized engine, fast trace compare, and parallel experiment\n"
      "grids versus the retained reference implementations");

  std::vector<Entry> entries;

  // --- simulate: fast engine vs reference engine -------------------------
  std::printf("simulate (lfk3 n=%lld DOACROSS, lfk17 n=%lld)\n",
              static_cast<long long>(sim_n), static_cast<long long>(sim_n17));
  const sim::NullInstrumentation null_hook;
  const auto full_plan =
      experiments::make_plan(experiments::PlanKind::kFull, setup);
  const auto lfk3 = loops::make_concurrent_ir(3, sim_n);
  const auto lfk17 = loops::make_concurrent_ir(17, sim_n17);
  entries.push_back(bench_simulate("simulate_null_lfk3", setup.machine, lfk3,
                                   null_hook, reps));
  entries.push_back(bench_simulate("simulate_full_lfk3", setup.machine, lfk3,
                                   full_plan, reps));
  entries.push_back(bench_simulate("simulate_null_lfk17", setup.machine,
                                   lfk17, null_hook, reps));
  entries.push_back(bench_simulate("simulate_full_lfk17", setup.machine,
                                   lfk17, full_plan, reps));

  // --- trace compare: hashed matcher vs ordered-map reference ------------
  {
    const auto measured =
        sim::simulate(setup.machine, lfk17, full_plan, "cmp/measured");
    const auto actual =
        sim::simulate_actual(setup.machine, lfk17, "cmp/actual");
    const auto fast_cmp = trace::compare(measured, actual);
    const auto ref_cmp = trace::compare_reference(measured, actual);
    PERTURB_CHECK_MSG(
        fast_cmp.matched_events == ref_cmp.matched_events &&
            fast_cmp.unmatched_a == ref_cmp.unmatched_a &&
            fast_cmp.unmatched_b == ref_cmp.unmatched_b &&
            fast_cmp.mean_abs_time_error == ref_cmp.mean_abs_time_error &&
            fast_cmp.rms_time_error == ref_cmp.rms_time_error &&
            fast_cmp.p50_abs_time_error == ref_cmp.p50_abs_time_error &&
            fast_cmp.p95_abs_time_error == ref_cmp.p95_abs_time_error &&
            fast_cmp.max_abs_time_error == ref_cmp.max_abs_time_error,
        "trace compare differs from compare_reference");
    const auto events = static_cast<double>(measured.size());
    Entry e;
    e.key = "trace_compare";
    e.fast_rate = events / time_best(reps, [&] {
      const auto c = trace::compare(measured, actual);
      if (c.matched_events != fast_cmp.matched_events) std::abort();
    });
    e.ref_rate = events / time_best(reps, [&] {
      const auto c = trace::compare_reference(measured, actual);
      if (c.matched_events != fast_cmp.matched_events) std::abort();
    });
    std::printf("\ntrace compare (%zu vs %zu events)\n  %-22s %6.2fx\n",
                measured.size(), actual.size(), e.key.c_str(), e.speedup());
    entries.push_back(e);
  }

  // --- grid: parallel memoized driver vs serial reference driver ---------
  {
    std::vector<experiments::Scenario> grid;
    for (const int loop : {3, 17}) {
      for (const std::uint32_t procs : {1u, 2u, 4u, 8u, 12u, 16u}) {
        experiments::Setup cell_setup = setup;
        cell_setup.machine.num_procs = procs;
        grid.push_back(bench::concurrent_scenario(
            loop, grid_n, cell_setup, experiments::PlanKind::kFull));
      }
    }
    const auto ref_runs = experiments::run_grid_reference(grid);
    const auto fast_runs =
        experiments::run_grid(grid, {.threads = 2, .memoize_actual = true});
    PERTURB_CHECK_MSG(ref_runs.size() == fast_runs.size(),
                      "grid result count mismatch");
    for (std::size_t i = 0; i < grid.size(); ++i)
      PERTURB_CHECK_MSG(runs_equal(fast_runs[i], ref_runs[i]),
                        "grid cell differs between run_grid and the "
                        "reference driver");

    const double cells = static_cast<double>(grid.size());
    const double ref_s = time_best(reps, [&] {
      if (experiments::run_grid_reference(grid).size() != grid.size())
        std::abort();
    });
    const double at1_s = time_best(reps, [&] {
      if (experiments::run_grid(grid, {.threads = 1}).size() != grid.size())
        std::abort();
    });
    const double at8_s = time_best(reps, [&] {
      if (experiments::run_grid(grid, {.threads = 8}).size() != grid.size())
        std::abort();
    });
    Entry at1{"grid_1thread", cells / at1_s, cells / ref_s};
    Entry at8{"grid_8thread", cells / at8_s, cells / ref_s};
    std::printf(
        "\ngrid (%zu cells, machine-size ablation, n=%lld)\n"
        "  reference %7.1f ms   1 thread %7.1f ms (%.2fx)   8 threads "
        "%7.1f ms (%.2fx)\n",
        grid.size(), static_cast<long long>(grid_n), ref_s * 1e3, at1_s * 1e3,
        at1.speedup(), at8_s * 1e3, at8.speedup());
    entries.push_back(at1);
    entries.push_back(at8);
  }

  // --- JSON -------------------------------------------------------------
  std::string json = "{\n  \"bench\": \"sim\",\n";
  json += support::strf(
      "  \"sim_n\": %lld,\n  \"grid_n\": %lld,\n  \"rates\": {",
      static_cast<long long>(sim_n), static_cast<long long>(grid_n));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i) json += ", ";
    json += support::strf("\"%s_fast\": %.1f, \"%s_reference\": %.1f",
                          entries[i].key.c_str(), entries[i].fast_rate,
                          entries[i].key.c_str(), entries[i].ref_rate);
  }
  json += "},\n  \"speedups\": {";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i) json += ", ";
    json += support::strf("\"%s\": %.3f", entries[i].key.c_str(),
                          entries[i].speedup());
  }
  // The bars this PR was built to clear: 2x simulation rate on the
  // DOACROSS acceptance workload, 3x grid wall-clock at 8 threads.
  json += "},\n  \"floors\": {\"simulate_null_lfk3\": 2.0, "
          "\"grid_8thread\": 3.0}\n}\n";

  std::string werr;
  PERTURB_CHECK_MSG(support::write_file_atomic(out_path, json, &werr),
                    "cannot write bench output file");
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
