// bench_model — analytical screening of experiment grids (DESIGN.md §12).
//
// Three sections, each gated before any timing is trusted:
//
//   * equivalence: run_grid_screened over the 12-cell acceptance grid must
//     produce the designed confident/fall-through partition, fall-through
//     cells bit-identical to run_grid over the full list, and identical
//     results at 1 and 8 worker threads;
//   * accuracy: on every model-confident cell the analytical prediction of
//     the uninstrumented run must sit within kConfidentErrorBound of the
//     event-based reconstruction it replaces;
//   * cross-validation: the full Livermore grid (24 loops x 3 modes x 2
//     plans) is run both ways and every cell's (uncertainty, relative
//     error) pair is written to MODEL_crossval.json — the calibration
//     evidence behind experiments::kDefaultScreenThreshold.
//
// Timing then measures run_grid_screened against run_grid on the 12-cell
// grid (the perf headline: >=3x) and on an all-confident DOALL sweep (the
// near-O(1) case).  Speedups are screened-vs-unscreened in the same
// process, so they are comparable across hosts (absolute rates are not).
// Results go to JSON (--out, default BENCH_model.json); tools/check_bench.py
// gates CI runs against bench/baseline/BENCH_model.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "support/check.hpp"
#include "support/fsio.hpp"
#include "support/text.hpp"

namespace {

using namespace perturb;
using Clock = std::chrono::steady_clock;

/// Largest model relative error tolerated on a confident cell, measured
/// against the better of the two references available in-process: the
/// event-based reconstruction the screen replaces, and the simulated actual
/// run.  Both matter: against eb alone the gate would be dominated by the
/// reconstruction's own fixed boundary-probe residual (~100 ticks, a large
/// *relative* error on cheap short loops where the model is in fact exact);
/// against actual alone it would not demonstrate consistency with the
/// pipeline.  The cross-validation sweep writes both errors per cell.
constexpr double kConfidentErrorBound = 0.08;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

template <typename Fn>
double time_best(std::size_t reps, Fn&& body) {
  double best = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    body();
    const double elapsed = seconds_since(start);
    if (elapsed > 0.0 && (best == 0.0 || elapsed < best)) best = elapsed;
  }
  return best;
}

bool traces_equal(const trace::Trace& a, const trace::Trace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a[i] == b[i])) return false;
  return true;
}

bool runs_equal(const experiments::LoopRun& a, const experiments::LoopRun& b) {
  return traces_equal(a.actual, b.actual) &&
         traces_equal(a.measured, b.measured) &&
         traces_equal(a.time_based, b.time_based) &&
         traces_equal(a.event_based.approx, b.event_based.approx) &&
         a.tb_quality.percent_error == b.tb_quality.percent_error &&
         a.eb_quality.percent_error == b.eb_quality.percent_error;
}

double rel_error(trace::Tick predicted, trace::Tick reference) {
  if (reference <= 0) return 0.0;
  return std::abs(static_cast<double>(predicted - reference)) /
         static_cast<double>(reference);
}

/// Model error against the better reference (see kConfidentErrorBound).
double model_error(trace::Tick predicted, const experiments::LoopRun& run) {
  return std::min(
      rel_error(predicted, run.event_based.approx.total_time()),
      rel_error(predicted, run.actual.total_time()));
}

const char* plan_name(experiments::PlanKind plan) {
  switch (plan) {
    case experiments::PlanKind::kStatementsOnly: return "stmt";
    case experiments::PlanKind::kSyncOnly: return "sync";
    case experiments::PlanKind::kFull: return "full";
  }
  return "?";
}

/// The 12-cell acceptance grid: nine cells the model screens (DOALL loops
/// under full instrumentation, the distance-1 chains of loops 3 and 4 under
/// statement-only probes — slack in the chain — and sequential shapes
/// including loop 17's data-dependent statements) and three it must not:
/// loops 3 and 4 under full instrumentation (the chain nears saturation,
/// the paper's Table 1 under-approximation cells) and a self-scheduled
/// cell (dispatch order depends on jittered probe costs, opaque to the
/// closed form).
std::vector<experiments::Scenario> acceptance_grid(
    std::int64_t n, const experiments::Setup& setup) {
  using experiments::PlanKind;
  std::vector<experiments::Scenario> grid;
  grid.push_back(
      bench::concurrent_scenario(3, n, setup, PlanKind::kStatementsOnly));
  grid.push_back(
      bench::concurrent_scenario(4, n, setup, PlanKind::kStatementsOnly));
  grid.push_back(bench::concurrent_scenario(8, n, setup, PlanKind::kFull));
  grid.push_back(bench::concurrent_scenario(13, n, setup, PlanKind::kFull));
  grid.push_back(bench::concurrent_scenario(14, n, setup, PlanKind::kFull));
  grid.push_back(bench::concurrent_scenario(18, n, setup, PlanKind::kFull));
  grid.push_back(bench::sequential_scenario(17, n, setup));
  grid.push_back(
      bench::sequential_scenario(17, n, setup, experiments::PlanKind::kFull));
  grid.push_back(
      bench::sequential_scenario(20, n, setup, experiments::PlanKind::kFull));
  // Fall-through by design:
  grid.push_back(bench::concurrent_scenario(3, n, setup, PlanKind::kFull));
  grid.push_back(bench::concurrent_scenario(4, n, setup, PlanKind::kFull));
  grid.push_back(bench::concurrent_scenario(1, n, setup, PlanKind::kFull,
                                            sim::Schedule::kSelf));
  return grid;
}

constexpr std::size_t kExpectedConfident = 9;

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  const std::string out_path = cli.get("out", "BENCH_model.json");
  const std::string crossval_path =
      cli.get("crossval-out", "MODEL_crossval.json");
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 5));
  const std::int64_t n = cli.get_int("n", 600);
  const std::int64_t crossval_n = cli.get_int("crossval-n", 300);
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 2));
  const experiments::Setup setup = bench::setup_from_cli(cli);

  bench::print_header(
      "BENCH model",
      "analytical screening of experiment grids versus full\n"
      "simulate+reconstruct (DESIGN.md §12)");

  const auto grid = acceptance_grid(n, setup);
  const experiments::GridOptions grid_options{.threads = threads,
                                              .memoize_actual = true};
  experiments::ScreenOptions screen_options;
  screen_options.grid = grid_options;

  // --- equivalence gates -------------------------------------------------
  const auto unscreened = experiments::run_grid(grid, grid_options);
  const auto screened = experiments::run_grid_screened(grid, screen_options);
  PERTURB_CHECK_MSG(screened.confident == kExpectedConfident &&
                        screened.fallthrough == grid.size() - kExpectedConfident,
                    "screening partition differs from the designed grid");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const bool expect_screened = i < kExpectedConfident;
    PERTURB_CHECK_MSG(screened.cells[i].screened == expect_screened,
                      "cell screened-state differs from the designed grid");
    if (!screened.cells[i].screened)
      PERTURB_CHECK_MSG(runs_equal(screened.cells[i].run, unscreened[i]),
                        "fall-through cell differs from the unscreened grid");
  }
  for (const std::size_t alt_threads : {std::size_t{1}, std::size_t{8}}) {
    experiments::ScreenOptions alt = screen_options;
    alt.grid.threads = alt_threads;
    const auto again = experiments::run_grid_screened(grid, alt);
    PERTURB_CHECK_MSG(again.confident == screened.confident &&
                          again.fallthrough == screened.fallthrough,
                      "screening partition varies with thread count");
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto& a = again.cells[i];
      const auto& b = screened.cells[i];
      PERTURB_CHECK_MSG(
          a.screened == b.screened &&
              a.prediction.actual.total == b.prediction.actual.total &&
              a.prediction.measured.total == b.prediction.measured.total &&
              a.prediction.uncertainty == b.prediction.uncertainty,
          "cell prediction varies with thread count");
      if (!a.screened)
        PERTURB_CHECK_MSG(runs_equal(a.run, b.run),
                          "fall-through run varies with thread count");
    }
  }
  std::printf("equivalence: partition %zu confident / %zu fall-through, "
              "bit-identical at 1/2/8 threads\n",
              screened.confident, screened.fallthrough);

  // --- accuracy gate ------------------------------------------------------
  double confident_max_err = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!screened.cells[i].screened) continue;
    const double err =
        model_error(screened.cells[i].prediction.actual.total, unscreened[i]);
    confident_max_err = std::max(confident_max_err, err);
    PERTURB_CHECK_MSG(
        err <= kConfidentErrorBound,
        support::strf("confident cell %s-%s exceeds the model accuracy "
                      "bound: rel error %.4f",
                      experiments::scenario_name(grid[i]).c_str(),
                      plan_name(grid[i].plan), err));
  }
  std::printf("accuracy: confident-cell max rel error %.4f (bound %.2f)\n",
              confident_max_err, kConfidentErrorBound);

  // --- cross-validation: the full Livermore grid --------------------------
  std::string crossval = support::strf(
      "{\n  \"report\": \"model_crossval\",\n  \"n\": %lld,\n"
      "  \"threshold\": %.2f,\n  \"error_bound\": %.2f,\n  \"cells\": [\n",
      static_cast<long long>(crossval_n),
      experiments::kDefaultScreenThreshold, kConfidentErrorBound);
  double cv_confident_max_err = 0.0;
  double cv_uncertain_min_u = 1.0;
  std::size_t cv_confident = 0, cv_rows = 0;
  bool cv_separated = true;
  {
    std::vector<experiments::Scenario> cells;
    for (int k = 1; k <= 24; ++k) {
      for (const auto plan : {experiments::PlanKind::kStatementsOnly,
                              experiments::PlanKind::kFull}) {
        cells.push_back(bench::sequential_scenario(k, crossval_n, setup, plan));
        cells.push_back(bench::concurrent_scenario(k, crossval_n, setup, plan));
        cells.push_back(bench::vector_scenario(k, crossval_n, setup, plan));
      }
    }
    const auto runs = experiments::run_grid(cells, grid_options);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto prediction = experiments::predict_scenario(cells[i]);
      const auto eb = runs[i].event_based.approx.total_time();
      const auto actual = runs[i].actual.total_time();
      const double err = model_error(prediction.actual.total, runs[i]);
      const bool confident =
          prediction.uncertainty <= experiments::kDefaultScreenThreshold;
      if (confident) {
        ++cv_confident;
        cv_confident_max_err = std::max(cv_confident_max_err, err);
      } else {
        cv_uncertain_min_u =
            std::min(cv_uncertain_min_u, prediction.uncertainty);
      }
      // The calibration claim: no confident cell may exceed the bound.
      if (confident && err > kConfidentErrorBound) cv_separated = false;
      if (cv_rows++) crossval += ",\n";
      crossval += support::strf(
          "    {\"cell\": \"%s-%s\", \"uncertainty\": %.3f, "
          "\"predicted\": %lld, \"event_based\": %lld, \"actual\": %lld, "
          "\"rel_error_eb\": %.4f, \"rel_error_actual\": %.4f, "
          "\"confident\": %s}",
          experiments::scenario_name(cells[i]).c_str(),
          plan_name(cells[i].plan), prediction.uncertainty,
          static_cast<long long>(prediction.actual.total),
          static_cast<long long>(eb), static_cast<long long>(actual),
          rel_error(prediction.actual.total, eb),
          rel_error(prediction.actual.total, actual),
          confident ? "true" : "false");
    }
    crossval += support::strf(
        "\n  ],\n  \"summary\": {\"cells\": %zu, \"confident\": %zu, "
        "\"fallthrough\": %zu, \"confident_max_rel_error\": %.4f, "
        "\"fallthrough_min_uncertainty\": %.3f, \"separated\": %s}\n}\n",
        cells.size(), cv_confident, cells.size() - cv_confident,
        cv_confident_max_err, cv_uncertain_min_u,
        cv_separated ? "true" : "false");
    PERTURB_CHECK_MSG(cv_separated,
                      "cross-validation: a confident cell exceeds the "
                      "accuracy bound (threshold miscalibrated)");
    std::printf(
        "cross-validation: %zu cells, %zu confident (max rel error %.4f), "
        "%zu fall-through (min uncertainty %.3f)\n",
        cells.size(), cv_confident, cv_confident_max_err,
        cells.size() - cv_confident, cv_uncertain_min_u);
  }

  // --- timing -------------------------------------------------------------
  const double cells12 = static_cast<double>(grid.size());
  const double unscreened_s = time_best(reps, [&] {
    if (experiments::run_grid(grid, grid_options).size() != grid.size())
      std::abort();
  });
  const double screened_s = time_best(reps, [&] {
    if (experiments::run_grid_screened(grid, screen_options).cells.size() !=
        grid.size())
      std::abort();
  });
  const double speedup12 = screened_s > 0.0 ? unscreened_s / screened_s : 0.0;

  // All-confident sweep: DOALL loops across plans — the model answers every
  // cell, so the screened sweep does no simulation at all.
  std::vector<experiments::Scenario> confident_sweep;
  for (const int loop : {1, 7, 8, 9, 10, 12, 13, 14})
    for (const auto plan : {experiments::PlanKind::kStatementsOnly,
                            experiments::PlanKind::kFull})
      confident_sweep.push_back(
          bench::concurrent_scenario(loop, n, setup, plan));
  {
    const auto check = experiments::run_grid_screened(confident_sweep,
                                                      screen_options);
    PERTURB_CHECK_MSG(check.fallthrough == 0,
                      "confident sweep unexpectedly fell through");
  }
  const double sweep_cells = static_cast<double>(confident_sweep.size());
  const double sweep_unscreened_s = time_best(reps, [&] {
    if (experiments::run_grid(confident_sweep, grid_options).size() !=
        confident_sweep.size())
      std::abort();
  });
  const double sweep_screened_s = time_best(reps, [&] {
    if (experiments::run_grid_screened(confident_sweep, screen_options)
            .cells.size() != confident_sweep.size())
      std::abort();
  });
  const double sweep_speedup =
      sweep_screened_s > 0.0 ? sweep_unscreened_s / sweep_screened_s : 0.0;

  std::printf(
      "\ntiming (n=%lld, %zu reps, %zu threads)\n"
      "  12-cell grid      unscreened %8.1f ms   screened %8.1f ms  %7.2fx\n"
      "  confident sweep   unscreened %8.1f ms   screened %8.3f ms  %7.2fx "
      "(%zu cells)\n",
      static_cast<long long>(n), reps, threads, unscreened_s * 1e3,
      screened_s * 1e3, speedup12, sweep_unscreened_s * 1e3,
      sweep_screened_s * 1e3, sweep_speedup, confident_sweep.size());

  // --- JSON ---------------------------------------------------------------
  std::string json = support::strf(
      "{\n  \"bench\": \"model\",\n  \"n\": %lld,\n  \"crossval_n\": %lld,\n"
      "  \"rates\": {\"screen_12cell_screened\": %.1f, "
      "\"screen_12cell_unscreened\": %.1f, "
      "\"screen_confident_sweep_screened\": %.1f, "
      "\"screen_confident_sweep_unscreened\": %.1f},\n"
      "  \"screen\": {\"confident\": %zu, \"fallthrough\": %zu},\n"
      "  \"accuracy\": {\"confident_max_rel_error\": %.4f, "
      "\"crossval_confident_max_rel_error\": %.4f, "
      "\"crossval_fallthrough_min_uncertainty\": %.3f},\n",
      static_cast<long long>(n), static_cast<long long>(crossval_n),
      cells12 / screened_s, cells12 / unscreened_s,
      sweep_cells / sweep_screened_s, sweep_cells / sweep_unscreened_s,
      screened.confident, screened.fallthrough, confident_max_err,
      cv_confident_max_err, cv_uncertain_min_u);
  json += support::strf(
      "  \"speedups\": {\"screen_12cell\": %.3f, "
      "\"screen_confident_sweep\": %.3f},\n",
      speedup12, sweep_speedup);
  // The bars this PR was built to clear: 3x on the mixed acceptance grid,
  // an order of magnitude when the model screens every cell.
  json += "  \"floors\": {\"screen_12cell\": 3.0, "
          "\"screen_confident_sweep\": 10.0}\n}\n";

  std::string werr;
  PERTURB_CHECK_MSG(support::write_file_atomic(out_path, json, &werr),
                    "cannot write bench output file");
  PERTURB_CHECK_MSG(support::write_file_atomic(crossval_path, crossval, &werr),
                    "cannot write cross-validation report");
  std::printf("\nwrote %s and %s\n", out_path.c_str(), crossval_path.c_str());
  return 0;
}
