// Reproduces Figure 5: parallelism over time in Livermore loop 17, from the
// event-based approximation, plus the paper's headline number — an average
// parallelism of 7.5 (8 processors) excluding the sequential portions.
#include <cstdio>
#include <sstream>

#include "analysis/parallelism.hpp"
#include "analysis/timeline.hpp"
#include "bench_util.hpp"
#include "support/fsio.hpp"

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  const auto setup = bench::setup_from_cli(cli);
  const auto n = bench::trip_from_cli(cli, 240);

  bench::print_header(
      "Figure 5 — Approximated Parallelism Behavior in Livermore Loop 17",
      "Number of non-waiting active processors over time, from the\n"
      "event-based approximation.");

  const auto run = experiments::run_concurrent_experiment(
      17, n, setup, experiments::PlanKind::kFull);
  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  const auto ov = experiments::overheads_for(plan, setup.machine);

  analysis::WaitClassifier classifier;
  classifier.await_nowait = ov.s_nowait;
  classifier.lock_acquire = ov.lock_acquire;
  classifier.barrier_depart = ov.barrier_depart;
  classifier.tolerance = 2;

  const auto profile =
      analysis::parallelism_profile(run.event_based.approx, classifier);
  std::printf("%s\n",
              analysis::render_parallelism_plot(run.event_based.approx, profile)
                  .c_str());
  std::printf("average parallelism (whole run):      %.2f\n", profile.average);
  std::printf("average parallelism (parallel region): %.2f   [paper: %.1f]\n",
              profile.average_parallel, bench::kPaperLoop17AvgParallelism);

  const auto actual_profile =
      analysis::parallelism_profile(run.actual, classifier);
  std::printf("ground truth (actual trace):           %.2f\n",
              actual_profile.average_parallel);

  if (cli.has("csv")) {
    const std::string path = cli.get("csv", "fig5_parallelism.csv");
    std::ostringstream out;
    analysis::write_parallelism_csv(out, profile);
    std::string werr;
    if (!support::write_file_atomic(path, out.str(), &werr)) {
      std::fprintf(stderr, "error: cannot write %s: %s\n", path.c_str(),
                   werr.c_str());
      return 1;
    }
    std::printf("step data written to %s\n", path.c_str());
  }
  return 0;
}
