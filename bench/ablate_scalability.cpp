// Ablation: event-based analysis accuracy across machine sizes.
//
// The paper's testbed was fixed at eight CEs; the simulator lets us ask how
// the result generalizes: for loops 3 and 17, sweep the processor count and
// report the actual speedup, measured perturbation, and the event-based
// recovery error.  Loop 3's chain saturates (speedup plateaus at the
// serialization bound) while loop 17 scales until its chain binds; the
// analysis stays accurate across the sweep.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  const auto n = bench::trip_from_cli(cli, 600);

  bench::print_header(
      "Ablation — Machine-Size Sweep",
      "Actual speedup and event-based recovery error vs. processor count.");

  constexpr int kLoops[] = {3, 17};
  constexpr std::uint32_t kProcs[] = {1u, 2u, 4u, 8u, 12u, 16u};
  std::vector<experiments::Scenario> grid;
  for (const int loop : kLoops) {
    for (const std::uint32_t procs : kProcs) {
      experiments::Setup setup = bench::setup_from_cli(cli);
      setup.machine.num_procs = procs;
      grid.push_back(bench::concurrent_scenario(loop, n, setup,
                                                experiments::PlanKind::kFull));
    }
  }
  const auto runs =
      experiments::run_grid(grid, bench::grid_options_from_cli(cli));

  std::size_t cell = 0;
  for (const int loop : kLoops) {
    std::printf("loop %d\n%-8s %12s %10s %10s %10s\n", loop, "procs",
                "actual", "speedup", "slowdown", "eb err%");
    double base = 0.0;
    for (const std::uint32_t procs : kProcs) {
      const auto& run = runs[cell++];
      const auto actual = static_cast<double>(run.actual.total_time());
      if (procs == 1) base = actual;
      std::printf("%-8u %12.0f %9.2fx %9.2fx %+9.1f%%\n", procs, actual,
                  base / actual, run.eb_quality.measured_over_actual,
                  run.eb_quality.percent_error);
    }
    std::printf("\n");
  }
  std::printf("Reading: loop 3 saturates early (distance-1 chain bound);\n"
              "loop 17 scales until its chain binds; event-based recovery\n"
              "stays within a few percent at every machine size.\n");
  return 0;
}
