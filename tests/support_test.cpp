// Unit tests for the support library: PRNG determinism and distribution,
// statistics, text helpers, CSV escaping, ASCII charts, CLI parsing.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <algorithm>
#include <vector>

#include <unistd.h>

#include "support/ascii_chart.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/fsio.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/prng.hpp"
#include "support/stats.hpp"
#include "support/text.hpp"

namespace perturb::support {
namespace {

// ---- check ----------------------------------------------------------------

TEST(Check, ThrowsWithExpressionAndLocation) {
  try {
    PERTURB_CHECK_MSG(1 == 2, "math broke");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
  }
}

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(PERTURB_CHECK(2 + 2 == 4));
}

// ---- prng -----------------------------------------------------------------

TEST(Prng, SplitMixIsDeterministic) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(Prng, XoshiroSameSeedSameStream) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, XoshiroDifferentSeedsDiverge) {
  Xoshiro256 a(7);
  Xoshiro256 b(8);
  int differing = 0;
  for (int i = 0; i < 100; ++i) differing += a() != b() ? 1 : 0;
  EXPECT_GT(differing, 90);
}

TEST(Prng, Uniform01InRange) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Prng, Uniform01MeanIsCentered) {
  Xoshiro256 rng(1);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform01());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Prng, BelowRespectsBound) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Prng, BelowCoversRange) {
  Xoshiro256 rng(3);
  std::array<int, 5> counts{};
  for (int i = 0; i < 5000; ++i) counts[rng.below(5)]++;
  for (const int c : counts) EXPECT_GT(c, 800);
}

TEST(Prng, NormalHasUnitVariance) {
  Xoshiro256 rng(5);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Prng, KeyedJitterDeterministicAndBounded) {
  OnlineStats s;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const double j = keyed_jitter(9, 2, i);
    EXPECT_EQ(j, keyed_jitter(9, 2, i));
    EXPECT_GE(j, -1.0);
    EXPECT_LE(j, 1.0);
    s.add(j);
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NE(keyed_jitter(9, 2, 1), keyed_jitter(9, 3, 1));
}

// ---- stats ----------------------------------------------------------------

TEST(Stats, OnlineMomentsMatchDirectComputation) {
  OnlineStats s;
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  for (const double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 6.2);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_NEAR(s.variance(), 37.2, 1e-9);
}

TEST(Stats, EmptyStatsAreZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, MergeEqualsSingleStream) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats all;
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0, 10);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, MergeWithEmptySides) {
  OnlineStats a;
  OnlineStats b;
  b.add(3.0);
  a.merge(b);  // empty.merge(non-empty)
  EXPECT_EQ(a.count(), 1u);
  OnlineStats c;
  a.merge(c);  // non-empty.merge(empty)
  EXPECT_EQ(a.count(), 1u);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
}

TEST(Stats, PercentileSingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.3), 7.0);
}

TEST(Stats, PercentileEmptyInputIsDefinedZero) {
  // Regression: an all-unmatched comparison produces an empty error sample;
  // the percentile must degrade to the defined empty-set result (0.0), not
  // crash quality scoring with a failed check.
  EXPECT_EQ(percentile({}, 0.5), 0.0);
  EXPECT_EQ(percentile({}, 0.0), 0.0);
  EXPECT_EQ(percentile({}, 1.0), 0.0);
  std::vector<double> empty;
  EXPECT_EQ(percentile_inplace(empty, 0.95), 0.0);
  EXPECT_TRUE(empty.empty());
}

TEST(Stats, PercentileStillRejectsBadQuantile) {
  EXPECT_THROW(percentile({1.0}, -0.1), CheckError);
  EXPECT_THROW(percentile({}, 1.5), CheckError);
}

TEST(Stats, HistogramBinsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(0.0);
  h.add(3.9);
  h.add(4.0);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Stats, RmsOfKnownValues) {
  EXPECT_DOUBLE_EQ(rms({3.0, 4.0}), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
}

// ---- text -------------------------------------------------------------

TEST(Text, StrfFormats) {
  EXPECT_EQ(strf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strf("%.2f", 3.14159), "3.14");
}

TEST(Text, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Text, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Text, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcde", 3), "abcde");
}

TEST(Text, RenderTableAlignsColumns) {
  const auto out = render_table({{"name", "value"}, {"x", "1"}, {"long", "22"}});
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Values right-aligned under the header.
  EXPECT_NE(out.find("    1"), std::string::npos);
}

// ---- csv --------------------------------------------------------------

TEST(Csv, PlainRow) {
  std::ostringstream ss;
  CsvWriter w(ss);
  w.rowv("a", 1, 2.5);
  EXPECT_EQ(ss.str(), "a,1,2.5\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  std::ostringstream ss;
  CsvWriter w(ss);
  w.row({"a,b", "q\"q", "line\nbreak", "plain"});
  EXPECT_EQ(ss.str(), "\"a,b\",\"q\"\"q\",\"line\nbreak\",plain\n");
}

// ---- ascii charts ----------------------------------------------------------

TEST(AsciiChart, BarChartScalesToMax) {
  const auto out = render_bar_chart(
      {"m"}, {{"a", {10.0}}, {"b", {5.0}}}, 20);
  // The 10.0 bar should be the full 20 columns, the 5.0 bar 10 columns.
  EXPECT_NE(out.find(std::string(20, '#')), std::string::npos);
  EXPECT_NE(out.find("10.00"), std::string::npos);
}

TEST(AsciiChart, BarChartRejectsArityMismatch) {
  EXPECT_THROW(render_bar_chart({"m", "n"}, {{"a", {1.0}}}, 10), CheckError);
}

TEST(AsciiChart, TimelineMarksIntervals) {
  std::vector<TimelineRow> rows(1);
  rows[0].label = "p0";
  rows[0].intervals.push_back({50, 100});
  const auto out = render_timeline(rows, 0, 100, 10);
  // Interval covers the second half of the row.
  EXPECT_NE(out.find(".....#####"), std::string::npos);
}

TEST(AsciiChart, TimelineShortIntervalStillVisible) {
  std::vector<TimelineRow> rows(1);
  rows[0].label = "p0";
  rows[0].intervals.push_back({1, 2});
  const auto out = render_timeline(rows, 0, 1000, 10);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(AsciiChart, StepPlotShowsLevels) {
  const auto out = render_step_plot({{0, 1.0}, {50, 4.0}}, 0, 100, 4.0, 20, 4);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("4.0"), std::string::npos);
}

// ---- cli --------------------------------------------------------------

TEST(Cli, ParsesAllForms) {
  // Note: `--name value` is greedy, so a trailing boolean flag must not be
  // followed by a positional argument.
  const char* argv[] = {"prog", "--a=1", "--b", "2", "pos1", "--flag"};
  const Cli cli(6, argv);
  EXPECT_EQ(cli.get_int("a", 0), 1);
  EXPECT_EQ(cli.get_int("b", 0), 2);
  EXPECT_TRUE(cli.get_bool("flag", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  const Cli cli(1, argv);
  EXPECT_EQ(cli.get("missing", "def"), "def");
  EXPECT_EQ(cli.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, RejectsMalformedOption) {
  const char* argv[] = {"prog", "--=x"};
  EXPECT_THROW(Cli(2, argv), CheckError);
}

// ---- task pool ------------------------------------------------------------

TEST(TaskPool, RunsEveryIndexExactlyOnce) {
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    TaskPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    std::vector<int> hits(1000, 0);
    pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                            [](int h) { return h == 1; }));
  }
}

TEST(TaskPool, ZeroIterationsIsANoop) {
  TaskPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(TaskPool, ReusableAcrossCalls) {
  TaskPool pool(2);
  std::vector<std::size_t> out(64, 0);
  for (int pass = 0; pass < 3; ++pass)
    pool.parallel_for(out.size(), [&](std::size_t i) { out[i] += i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i);
}

TEST(TaskPool, PropagatesBodyException) {
  TaskPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 57)
                                     PERTURB_CHECK_MSG(false, "boom at 57");
                                 }),
               CheckError);
}

TEST(TaskPool, PropagatesLowestWorkerExceptionWhenSeveralThrow) {
  // Contract: when bodies on several workers throw, the pass drains and the
  // exception from the lowest worker id is the one rethrown — making the
  // surfaced error deterministic at any thread count.
  TaskPool pool(4);
  const std::size_t n = 400;
  try {
    pool.parallel_for(n, [&](std::size_t worker, std::size_t) {
      throw std::runtime_error("worker " + std::to_string(worker));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker 0");
  }
}

TEST(TaskPool, SurvivesExceptionAndStaysUsable) {
  // Regression: a throwing pass must not poison the pool — the workers park
  // normally and the next parallel_for runs every index again.
  TaskPool pool(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        pool.parallel_for(64,
                          [&](std::size_t i) {
                            if (i == 13) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    std::vector<int> hits(64, 0);
    pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] = 1; });
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                            [](int h) { return h == 1; }))
        << "round " << round;
  }
}

TEST(TaskPool, PropagatesNonStdExceptionWithoutTerminating) {
  // Even a non-std::exception payload must cross the thread boundary intact
  // (the pool stores exception_ptr, not a sliced what()).
  TaskPool pool(2);
  try {
    pool.parallel_for(8, [&](std::size_t i) {
      if (i == 7) throw 42;
    });
    FAIL() << "expected an exception";
  } catch (int v) {
    EXPECT_EQ(v, 42);
  }
}

TEST(TaskPool, ZeroHardwareConcurrencyClampsToOneWorker) {
  // Regression: hardware_concurrency() may report 0 on restricted
  // containers; TaskPool(0) must clamp to a single working pool instead of
  // resolving to zero workers.
  set_hardware_concurrency_override(0);
  TaskPool pool(0);
  set_hardware_concurrency_override(-1);  // restore the real query
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> hits(16, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] = 1; });
  EXPECT_TRUE(
      std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
}

TEST(TaskPool, HardwareConcurrencyOverrideIsHonored) {
  set_hardware_concurrency_override(3);
  TaskPool pool(0);
  set_hardware_concurrency_override(-1);
  EXPECT_EQ(pool.size(), 3u);
}

// ---- fsio -----------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string fsio_scratch(const std::string& leaf) {
  return "/tmp/perturb_fsio_" + std::to_string(::getpid()) + "_" + leaf;
}

TEST(Fsio, WritesNewFileAndLeavesNoTemp) {
  const std::string path = fsio_scratch("new.txt");
  std::remove(path.c_str());
  std::string error;
  ASSERT_TRUE(write_file_atomic(path, "hello, trace\n", &error)) << error;
  EXPECT_EQ(slurp(path), "hello, trace\n");
  // The temp file was renamed away, not left beside the destination.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp." +
                                       std::to_string(::getpid())));
  std::remove(path.c_str());
}

TEST(Fsio, OverwriteReplacesContentsCompletely) {
  const std::string path = fsio_scratch("overwrite.txt");
  ASSERT_TRUE(write_file_atomic(path, std::string(4096, 'A')));
  ASSERT_TRUE(write_file_atomic(path, "short"));  // shorter than the old file
  EXPECT_EQ(slurp(path), "short");                // no stale tail bytes
  std::remove(path.c_str());
}

TEST(Fsio, EmbeddedNulBytesRoundTrip) {
  const std::string path = fsio_scratch("binary.bin");
  std::string payload = "abc";
  payload.push_back('\0');
  payload += "def";
  ASSERT_TRUE(write_file_atomic(path, payload.data(), payload.size()));
  EXPECT_EQ(slurp(path), payload);
  std::remove(path.c_str());
}

TEST(Fsio, FailureReportsErrorAndPreservesExistingFile) {
  // Unwritable directory: the call must fail with a diagnosis rather than
  // silently succeed, and an existing destination must stay intact.
  std::string error;
  EXPECT_FALSE(write_file_atomic("/nonexistent-dir/x/y/out.txt", "data",
                                 &error));
  EXPECT_FALSE(error.empty());

  const std::string path = fsio_scratch("keep.txt");
  ASSERT_TRUE(write_file_atomic(path, "original"));
  // Simulate the atomic-write failure mode a reader must never observe:
  // even after a failed write elsewhere, the good file is untouched.
  EXPECT_EQ(slurp(path), "original");
  std::remove(path.c_str());
}

// ---- metrics: histogram quantiles ------------------------------------------

HistogramSnapshot make_histogram(const std::vector<std::uint64_t>& values) {
  HistogramSnapshot h;
  for (const std::uint64_t v : values) {
    if (h.count == 0 || v < h.min) h.min = v;
    if (h.count == 0 || v > h.max) h.max = v;
    h.count += 1;
    h.sum += v;
    const std::size_t bucket =
        v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v)) - 1;
    h.buckets[bucket] += 1;
  }
  return h;
}

TEST(Metrics, QuantileOfEmptyHistogramIsZero) {
  EXPECT_EQ(histogram_quantile(HistogramSnapshot{}, 0.5), 0u);
}

TEST(Metrics, QuantileClampsToExactMinAndMax) {
  const auto h = make_histogram({100, 200, 300, 400, 1000});
  EXPECT_EQ(histogram_quantile(h, 0.0), 100u);   // never below the exact min
  EXPECT_EQ(histogram_quantile(h, 1.0), 1000u);  // never above the exact max
}

TEST(Metrics, QuantileIsMonotoneAndPowerOfTwoAccurate) {
  // 90 fast values (~1k) and 10 slow ones (~1M): p50 must sit in the fast
  // band and p99 in the slow band — the property tail reporting depends on.
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 90; ++i)
    values.push_back(1000 + static_cast<std::uint64_t>(i));
  for (int i = 0; i < 10; ++i)
    values.push_back(1000000 + static_cast<std::uint64_t>(i));
  const auto h = make_histogram(values);
  const std::uint64_t p50 = histogram_quantile(h, 0.50);
  const std::uint64_t p99 = histogram_quantile(h, 0.99);
  EXPECT_GE(p50, 1000u);
  EXPECT_LT(p50, 4096u);  // within the fast band's log2 bucket
  EXPECT_GE(p99, 1000000u);
  EXPECT_LE(p99, h.max);
  EXPECT_LE(p50, p99);
}

TEST(TaskPool, FreeFunctionPartitionIsStatic) {
  // Record which indices each thread count assigns to worker blocks by
  // writing only to the body's own slot; results must be identical because
  // the partition depends only on (n, workers), never on timing.
  std::vector<std::size_t> a(257, 0), b(257, 0);
  parallel_for(1, a.size(), [&](std::size_t i) { a[i] = i * i; });
  parallel_for(8, b.size(), [&](std::size_t i) { b[i] = i * i; });
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace perturb::support
