// Tests for liberal analysis: DOACROSS shape extraction from measured traces
// and scheduling re-simulation.
#include <gtest/gtest.h>

#include "core/liberal.hpp"
#include "instr/plan.hpp"
#include "sim/engine.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"

namespace perturb::core {
namespace {

using trace::EventKind;

AnalysisOverheads overheads_from_plan(const instr::InstrumentationPlan& plan,
                                      const sim::MachineConfig& cfg) {
  AnalysisOverheads ov;
  for (std::uint8_t k = 0; k < trace::kNumEventKinds; ++k)
    ov.probe[k] = plan.mean_cost(static_cast<EventKind>(k));
  ov.s_nowait = cfg.await_check_cost;
  ov.s_wait = cfg.await_resume_cost;
  ov.lock_acquire = cfg.lock_acquire_cost;
  ov.barrier_depart = cfg.barrier_depart_cost;
  return ov;
}

sim::Program doacross(std::int64_t trip, std::int64_t d, sim::Cycles pre,
                      sim::Cycles guarded, sim::Cycles post,
                      sim::Schedule sched = sim::Schedule::kCyclic) {
  sim::Program p;
  const auto var = p.declare_sync_var("S");
  sim::Block body;
  body.nodes.push_back(sim::compute("pre", pre));
  body.nodes.push_back(sim::await(var, {1, -d}));
  body.nodes.push_back(sim::compute("chain", guarded));
  body.nodes.push_back(sim::advance(var, {1, 0}));
  body.nodes.push_back(sim::compute("post", post));
  p.root().nodes.push_back(sim::par_loop("l", sim::LoopKind::kDoacross, sched,
                                         trip, std::move(body)));
  p.finalize();
  return p;
}

TEST(LiberalExtract, RecoversSegmentCostsExactly) {
  const sim::MachineConfig cfg{.num_procs = 4};
  const auto prog = doacross(16, 2, 120, 35, 60);
  const auto plan = instr::InstrumentationPlan::full({150.0, 0.0}, {80.0, 0.0},
                                                     {40.0, 0.0}, 1);
  const auto measured = sim::simulate(cfg, prog, plan, "m");
  const auto shape =
      extract_doacross_shape(measured, overheads_from_plan(plan, cfg));

  EXPECT_EQ(shape.distance, 2);
  ASSERT_EQ(shape.iterations.size(), 16u);
  for (const auto& it : shape.iterations) {
    EXPECT_TRUE(it.has_advance);
    EXPECT_EQ(it.has_await, it.iteration >= 2);
    EXPECT_EQ(it.post, 60);
    if (it.has_await) {
      EXPECT_EQ(it.pre, 120) << "iteration " << it.iteration;
      EXPECT_EQ(it.chain, 35);
    } else {
      // Dependence-free first iterations have no await event, so the chain
      // work is indistinguishable from pre-await work.
      EXPECT_EQ(it.pre, 155);
      EXPECT_EQ(it.chain, 0);
    }
  }
}

TEST(LiberalExtract, HandlesDoallWithoutSync) {
  sim::Program p;
  sim::Block body;
  body.nodes.push_back(sim::compute("w", 90));
  p.root().nodes.push_back(sim::par_loop("l", sim::LoopKind::kDoall,
                                         sim::Schedule::kCyclic, 8,
                                         std::move(body)));
  p.finalize();
  const sim::MachineConfig cfg{.num_procs = 2};
  const auto plan = instr::InstrumentationPlan::full({100.0, 0.0}, {50.0, 0.0},
                                                     {30.0, 0.0}, 1);
  const auto measured = sim::simulate(cfg, p, plan, "m");
  const auto shape =
      extract_doacross_shape(measured, overheads_from_plan(plan, cfg));
  EXPECT_EQ(shape.distance, 0);
  for (const auto& it : shape.iterations) {
    EXPECT_FALSE(it.has_await);
    EXPECT_FALSE(it.has_advance);
    EXPECT_EQ(it.pre, 90);
  }
}

TEST(LiberalExtract, RejectsTraceWithoutLoop) {
  sim::Program p;
  p.root().nodes.push_back(sim::compute("a", 5));
  p.finalize();
  const sim::MachineConfig cfg{.num_procs = 1};
  const auto t = sim::simulate_actual(cfg, p, "a");
  AnalysisOverheads ov;
  EXPECT_THROW(extract_doacross_shape(t, ov), CheckError);
}

TEST(LiberalExtract, RejectsMultipleLoops) {
  sim::Program p;
  sim::Block b1;
  b1.nodes.push_back(sim::compute("a", 5));
  sim::Block b2;
  b2.nodes.push_back(sim::compute("b", 5));
  p.root().nodes.push_back(sim::par_loop("l1", sim::LoopKind::kDoall,
                                         sim::Schedule::kCyclic, 2,
                                         std::move(b1)));
  p.root().nodes.push_back(sim::par_loop("l2", sim::LoopKind::kDoall,
                                         sim::Schedule::kCyclic, 2,
                                         std::move(b2)));
  p.finalize();
  const sim::MachineConfig cfg{.num_procs = 2};
  const auto t = sim::simulate_actual(cfg, p, "a");
  AnalysisOverheads ov;
  EXPECT_THROW(extract_doacross_shape(t, ov), CheckError);
}

TEST(LiberalReplay, ReproducesActualLoopTimeWithoutJitter) {
  const sim::MachineConfig cfg{.num_procs = 4};
  const auto prog = doacross(32, 1, 100, 20, 40);
  const auto plan = instr::InstrumentationPlan::full({175.0, 0.0}, {90.0, 0.0},
                                                     {60.0, 0.0}, 1);
  const auto actual = sim::simulate_actual(cfg, prog, "a");
  const auto measured = sim::simulate(cfg, prog, plan, "m");
  const auto shape =
      extract_doacross_shape(measured, overheads_from_plan(plan, cfg));
  LiberalOptions opt;
  opt.machine = cfg;
  opt.schedule = sim::Schedule::kCyclic;
  const auto result = liberal_approximation(shape, opt);

  trace::Tick actual_begin = 0;
  trace::Tick actual_end = 0;
  for (const auto& e : actual) {
    if (e.kind == EventKind::kLoopBegin) actual_begin = e.time;
    if (e.kind == EventKind::kLoopEnd) actual_end = e.time;
  }
  // Exact segment extraction + the same machine model => exact loop time.
  EXPECT_EQ(result.loop_time, actual_end - actual_begin);
}

TEST(LiberalReplay, MappingMatchesSchedule) {
  const sim::MachineConfig cfg{.num_procs = 4};
  const auto prog = doacross(12, 1, 50, 10, 0);
  const auto plan = instr::InstrumentationPlan::full({100.0, 0.0}, {50.0, 0.0},
                                                     {30.0, 0.0}, 1);
  const auto measured = sim::simulate(cfg, prog, plan, "m");
  const auto shape =
      extract_doacross_shape(measured, overheads_from_plan(plan, cfg));
  LiberalOptions opt;
  opt.machine = cfg;
  opt.schedule = sim::Schedule::kCyclic;
  const auto result = liberal_approximation(shape, opt);
  ASSERT_EQ(result.iteration_to_proc.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i)
    EXPECT_EQ(result.iteration_to_proc[i], i % 4);
  EXPECT_FALSE(result.approx.empty());
}

}  // namespace
}  // namespace perturb::core
