// Tests for the instrumentation budget planner.
#include <gtest/gtest.h>

#include "instr/budget.hpp"
#include "loops/programs.hpp"
#include "support/check.hpp"

namespace perturb::instr {
namespace {

/// head statement (1 execution) + a loop over two statements (32 each).
sim::Program mixed_program() {
  sim::Program p;
  p.root().nodes.push_back(sim::compute("head", 10));
  sim::Block body;
  body.nodes.push_back(sim::compute("hot-a", 5));
  body.nodes.push_back(sim::compute("hot-b", 5));
  p.root().nodes.push_back(sim::seq_loop("l", 32, std::move(body)));
  p.finalize();
  return p;
}

TEST(Budget, ProfilesSitesByFrequency) {
  const sim::MachineConfig cfg{.num_procs = 1};
  const auto plan = plan_for_budget(cfg, mixed_program(), 1000000);
  ASSERT_EQ(plan.profiles.size(), 3u);
  // Most frequent first: the two loop statements (64 events each: enter +
  // exit per execution), then the head statement (2 events).
  EXPECT_EQ(plan.profiles[0].events, 64u);
  EXPECT_EQ(plan.profiles[1].events, 64u);
  EXPECT_EQ(plan.profiles[2].events, 2u);
}

TEST(Budget, UnlimitedBudgetSelectsEverything) {
  const sim::MachineConfig cfg{.num_procs = 1};
  const auto plan = plan_for_budget(cfg, mixed_program(), 1000000);
  EXPECT_EQ(plan.selected_events, 130u);  // 64 + 64 + 2
}

TEST(Budget, TightBudgetPrefersBreadth) {
  const sim::MachineConfig cfg{.num_procs = 1};
  // Budget for the head statement plus exactly one hot statement.
  const auto plan = plan_for_budget(cfg, mixed_program(), 66);
  EXPECT_EQ(plan.selected_events, 66u);
  // The head site (cheapest) must be selected.
  EXPECT_TRUE(plan.enabled[1]);
}

TEST(Budget, ZeroBudgetSelectsNothing) {
  const sim::MachineConfig cfg{.num_procs = 1};
  const auto plan = plan_for_budget(cfg, mixed_program(), 0);
  EXPECT_EQ(plan.selected_events, 0u);
  for (const bool on : plan.enabled) EXPECT_FALSE(on);
}

TEST(Budget, FilterIntegratesWithPlan) {
  const sim::MachineConfig cfg{.num_procs = 1};
  const auto program = mixed_program();
  const auto budget = plan_for_budget(cfg, program, 66);

  auto plan = InstrumentationPlan::statements_only({100.0, 0.0}, 1);
  plan.set_site_filter(budget.enabled);
  const auto measured = sim::simulate(cfg, program, plan, "m");
  std::uint64_t stmt_events = 0;
  for (const auto& e : measured) {
    if (e.kind == trace::EventKind::kStmtEnter ||
        e.kind == trace::EventKind::kStmtExit)
      ++stmt_events;
  }
  EXPECT_EQ(stmt_events, budget.selected_events);
}

TEST(Budget, WorksOnConcurrentLoops) {
  const sim::MachineConfig cfg{.num_procs = 4};
  const auto program = loops::make_concurrent_ir(17, 64);
  const auto full = plan_for_budget(cfg, program, 1u << 30);
  const auto half = plan_for_budget(cfg, program, full.selected_events / 2);
  EXPECT_LT(half.selected_events, full.selected_events);
  EXPECT_GT(half.selected_events, 0u);
}

TEST(Budget, RequiresFinalizedProgram) {
  sim::Program p;
  p.root().nodes.push_back(sim::compute("a", 1));
  const sim::MachineConfig cfg{.num_procs = 1};
  EXPECT_THROW(plan_for_budget(cfg, p, 10), CheckError);
}

}  // namespace
}  // namespace perturb::instr
