// Equivalence tests for the devirtualized engine fast paths: every trace
// produced by simulate() (sealed NullInstrumentation / cost-table dispatch,
// per-processor event arenas, flat ready selection, indexed waiter wakes)
// must be byte-identical to simulate_reference() (virtual dispatch, shared
// trace vector + stable sort, ready heap, linear waiter scans) on the same
// inputs — across the Livermore suite, execution modes, schedules, hook
// configurations, machine sizes that cross the waiter-index threshold, and
// fuzzed random programs.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "instr/plan.hpp"
#include "loops/programs.hpp"
#include "sim/engine.hpp"
#include "support/prng.hpp"

namespace perturb::sim {
namespace {

using support::Xoshiro256;
using trace::Event;
using trace::Trace;

MachineConfig config(std::uint32_t procs = 8) {
  MachineConfig cfg;
  cfg.num_procs = procs;
  return cfg;
}

void expect_traces_identical(const Trace& fast, const Trace& ref,
                             const std::string& label) {
  ASSERT_EQ(fast.size(), ref.size()) << label;
  const auto& a = fast.events();
  const auto& b = ref.events();
  // No memcmp: Event has tail padding whose bytes are unspecified.
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].time, b[i].time) << label << " event " << i;
    ASSERT_EQ(a[i].kind, b[i].kind) << label << " event " << i;
    ASSERT_EQ(a[i].id, b[i].id) << label << " event " << i;
    ASSERT_EQ(a[i].object, b[i].object) << label << " event " << i;
    ASSERT_EQ(a[i].proc, b[i].proc) << label << " event " << i;
    ASSERT_EQ(a[i].payload, b[i].payload) << label << " event " << i;
  }
}

void expect_equivalent(const MachineConfig& cfg, const Program& program,
                       const InstrumentationHook& hook,
                       const std::string& label) {
  const Trace fast = simulate(cfg, program, hook, label);
  const Trace ref = simulate_reference(cfg, program, hook, label);
  expect_traces_identical(fast, ref, label);
}

TEST(EngineFastPath, LivermoreSuiteNullInstrumentation) {
  const NullInstrumentation null_hook;
  for (const int loop : {1, 3, 4, 7, 12, 17, 22}) {
    expect_equivalent(config(), loops::make_concurrent_ir(loop, 200),
                      null_hook, "null/con/lfk" + std::to_string(loop));
    expect_equivalent(config(), loops::make_sequential_ir(loop, 200),
                      null_hook, "null/seq/lfk" + std::to_string(loop));
  }
  for (const int loop : {1, 7, 12, 22})
    expect_equivalent(config(), loops::make_vector_ir(loop, 200), null_hook,
                      "null/vec/lfk" + std::to_string(loop));
}

TEST(EngineFastPath, LivermoreSuiteCostTablePlans) {
  const auto stmts = instr::InstrumentationPlan::statements_only({175.0, 0.05},
                                                                 1991);
  const auto full = instr::InstrumentationPlan::full(
      {175.0, 0.05}, {90.0, 0.05}, {60.0, 0.05}, 1991);
  const auto sync = instr::InstrumentationPlan::sync_only({90.0, 0.05}, 7);
  for (const int loop : {3, 4, 17}) {
    const auto program = loops::make_concurrent_ir(loop, 200);
    expect_equivalent(config(), program, stmts,
                      "stmts/lfk" + std::to_string(loop));
    expect_equivalent(config(), program, full,
                      "full/lfk" + std::to_string(loop));
    expect_equivalent(config(), program, sync,
                      "sync/lfk" + std::to_string(loop));
  }
}

TEST(EngineFastPath, AllSchedules) {
  const auto full = instr::InstrumentationPlan::full(
      {175.0, 0.05}, {90.0, 0.05}, {60.0, 0.05}, 1991);
  for (const int loop : {3, 17}) {
    for (const Schedule sched :
         {Schedule::kCyclic, Schedule::kBlock, Schedule::kSelf}) {
      const auto program = loops::make_concurrent_ir(loop, 150, sched);
      expect_equivalent(config(), program, full,
                        "sched" + std::to_string(static_cast<int>(sched)) +
                            "/lfk" + std::to_string(loop));
    }
  }
}

TEST(EngineFastPath, SiteFilterAndStmtExitVariants) {
  const auto program = loops::make_concurrent_ir(17, 150);
  auto filtered = instr::InstrumentationPlan::statements_only({175.0, 0.0}, 3);
  std::vector<bool> filter(program.num_sites());
  for (std::size_t i = 0; i < filter.size(); ++i) filter[i] = (i % 2) == 0;
  filtered.set_site_filter(filter);
  expect_equivalent(config(), program, filtered, "site-filter");

  auto no_exit = instr::InstrumentationPlan::full({175.0, 0.05}, {90.0, 0.05},
                                                  {60.0, 0.05}, 1991);
  no_exit.set_record_stmt_exit(false);
  expect_equivalent(config(), program, no_exit, "no-stmt-exit");
}

// A hook that is neither NullInstrumentation nor a CostTableHook must take
// the virtual-dispatch fallback inside simulate() — and still match the
// reference engine exactly.
class EveryOtherEvent final : public InstrumentationHook {
 public:
  bool records(trace::EventKind kind, trace::EventId) const override {
    return static_cast<int>(kind) % 2 == 0;
  }
  Cycles probe_cost(trace::EventKind, trace::EventId, trace::ProcId proc,
                    std::uint64_t index) const override {
    return 20 + static_cast<Cycles>((proc + index) % 7);
  }
};

TEST(EngineFastPath, CustomVirtualHookFallback) {
  const EveryOtherEvent hook;
  for (const int loop : {3, 17})
    expect_equivalent(config(), loops::make_concurrent_ir(loop, 200), hook,
                      "custom/lfk" + std::to_string(loop));
}

// 48 processors blocking on a distance-1 chain push a sync variable's
// waiter list past the indexed-wake threshold (kWaiterIndexThreshold = 32);
// wake order must not change when the index engages.
TEST(EngineFastPath, ManyWaitersCrossIndexThreshold) {
  const auto full = instr::InstrumentationPlan::full(
      {700.0, 0.05}, {350.0, 0.05}, {200.0, 0.05}, 1991);
  const NullInstrumentation null_hook;
  for (const Schedule sched : {Schedule::kCyclic, Schedule::kSelf}) {
    const auto program = loops::make_concurrent_ir(3, 400, sched);
    expect_equivalent(config(48), program, null_hook, "waiters/null");
    expect_equivalent(config(48), program, full, "waiters/full");
  }
}

/// Compact randomized program in the style of fuzz_test: a parallel loop
/// mixing computation, optional DOACROSS chain, and optional critical or
/// semaphore region, deadlock-free by construction.
Program make_random_program(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Program p;
  auto rand_cost = [&](Cycles lo, Cycles hi) {
    return lo + static_cast<Cycles>(
                    rng.below(static_cast<std::uint64_t>(hi - lo + 1)));
  };

  Block body;
  const auto pre = 1 + rng.below(3);
  for (std::uint64_t s = 0; s < pre; ++s)
    body.nodes.push_back(compute("pre", rand_cost(5, 300)));
  if (rng.below(2) == 0) {
    Block inner;
    inner.nodes.push_back(compute("inner", rand_cost(5, 40)));
    body.nodes.push_back(seq_loop(
        "seq", 1 + static_cast<std::int64_t>(rng.below(4)), std::move(inner)));
  }
  const bool chained = rng.below(3) != 0;
  if (chained) {
    const auto var = p.declare_sync_var("S");
    const auto d = 1 + static_cast<std::int64_t>(rng.below(3));
    body.nodes.push_back(await(var, {1, -d}));
    body.nodes.push_back(compute("guarded", rand_cost(5, 60)));
    body.nodes.push_back(advance(var, {1, 0}));
  }
  const auto region = rng.below(3);
  if (region == 1) {
    const auto lock = p.declare_lock("L");
    body.nodes.push_back(
        critical(lock, block(compute("cs", rand_cost(5, 80)))));
  } else if (region == 2) {
    const auto cap = 1 + static_cast<std::int64_t>(rng.below(3));
    const auto sem = p.declare_semaphore("M", cap);
    body.nodes.push_back(
        semaphore_region(sem, block(compute("sem cs", rand_cost(5, 80)))));
  }
  if (rng.below(2) == 0)
    body.nodes.push_back(compute("post", rand_cost(5, 150)));

  const Schedule scheds[] = {Schedule::kCyclic, Schedule::kBlock,
                             Schedule::kSelf};
  const auto sched = scheds[rng.below(3)];
  const auto trip = 16 + static_cast<std::int64_t>(rng.below(100));
  p.root().nodes.push_back(compute("head", rand_cost(10, 100)));
  p.root().nodes.push_back(par_loop(
      "fuzz", chained ? LoopKind::kDoacross : LoopKind::kDoall, sched, trip,
      std::move(body)));
  p.root().nodes.push_back(compute("tail", rand_cost(10, 100)));
  p.finalize();
  return p;
}

TEST(EngineFastPath, FuzzedProgramsAllHooks) {
  const NullInstrumentation null_hook;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto program = make_random_program(seed);
    const auto procs = 2 + static_cast<std::uint32_t>(seed % 7);
    const auto full = instr::InstrumentationPlan::full(
        {175.0, 0.05}, {90.0, 0.05}, {60.0, 0.05}, seed);
    expect_equivalent(config(procs), program, null_hook,
                      "fuzz-null/" + std::to_string(seed));
    expect_equivalent(config(procs), program, full,
                      "fuzz-full/" + std::to_string(seed));
  }
}

}  // namespace
}  // namespace perturb::sim
