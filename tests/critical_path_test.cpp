// Tests for critical-path analysis: hand-built traces with known critical
// chains, plus integration with simulator traces.
#include <gtest/gtest.h>

#include "analysis/critical_path.hpp"
#include "loops/programs.hpp"
#include "sim/engine.hpp"

namespace perturb::analysis {
namespace {

using trace::Event;
using trace::EventKind;
using trace::Trace;

Event ev(Tick t, trace::ProcId proc, EventKind k, trace::ObjectId obj = 0,
         std::int64_t payload = 0) {
  Event e;
  e.time = t;
  e.proc = proc;
  e.kind = k;
  e.object = obj;
  e.payload = payload;
  return e;
}

TEST(CriticalPath, EmptyTrace) {
  const auto stats = critical_path(Trace({"t", 1, 1.0}));
  EXPECT_TRUE(stats.path.empty());
  EXPECT_EQ(stats.length, 0);
}

TEST(CriticalPath, SingleProcessorChain) {
  Trace t({"t", 1, 1.0});
  t.append(ev(0, 0, EventKind::kStmtEnter));
  t.append(ev(50, 0, EventKind::kStmtExit));
  t.append(ev(50, 0, EventKind::kStmtEnter));
  t.append(ev(120, 0, EventKind::kStmtExit));
  const auto stats = critical_path(t);
  EXPECT_EQ(stats.path.size(), 4u);
  EXPECT_EQ(stats.length, 120);
  EXPECT_EQ(stats.cross_processor_links, 0u);
  EXPECT_EQ(stats.time_by_kind[static_cast<std::size_t>(EventKind::kStmtExit)],
            120);
}

TEST(CriticalPath, CrossesToAdvanceWhenAwaitWaited) {
  // proc1 waits for proc0's advance: the path must route through proc0.
  Trace t({"t", 2, 1.0});
  t.append(ev(0, 1, EventKind::kStmtEnter));        // p1 early work
  t.append(ev(10, 1, EventKind::kAwaitBegin, 1, 0));
  t.append(ev(0, 0, EventKind::kStmtEnter));
  t.append(ev(200, 0, EventKind::kStmtExit));       // long work on p0
  t.append(ev(206, 0, EventKind::kAdvance, 1, 0));
  t.append(ev(214, 1, EventKind::kAwaitEnd, 1, 0));  // woken by the advance
  t.append(ev(300, 1, EventKind::kStmtExit));
  t.sort_canonical();
  const auto stats = critical_path(t);
  EXPECT_GE(stats.cross_processor_links, 1u);
  // The awaitE's link (214 - 206 = 8) is attributed to awaitE; the waiting
  // 10..206 lives on the advance side of the path, not in the awaitB.
  EXPECT_EQ(stats.time_by_kind[static_cast<std::size_t>(EventKind::kAwaitEnd)],
            8);
  EXPECT_GE(stats.time_by_kind[static_cast<std::size_t>(EventKind::kStmtExit)],
            200 + 86);
  EXPECT_EQ(stats.length, 300);
}

TEST(CriticalPath, LockHandoffOnPath) {
  Trace t({"t", 2, 1.0});
  t.append(ev(0, 0, EventKind::kLockAcquire, 5));
  t.append(ev(100, 0, EventKind::kLockRelease, 5));
  t.append(ev(106, 1, EventKind::kLockAcquire, 5));  // waited for the release
  t.append(ev(180, 1, EventKind::kLockRelease, 5));
  const auto stats = critical_path(t);
  EXPECT_EQ(stats.length, 180);
  EXPECT_EQ(stats.cross_processor_links, 1u);
  EXPECT_EQ(
      stats.time_by_kind[static_cast<std::size_t>(EventKind::kLockAcquire)],
      6);
}

TEST(CriticalPath, BarrierDepartFollowsLastArrival) {
  Trace t({"t", 2, 1.0});
  t.append(ev(10, 0, EventKind::kBarrierArrive, 9, 0));
  t.append(ev(90, 1, EventKind::kBarrierArrive, 9, 0));  // last arrival
  t.append(ev(100, 0, EventKind::kBarrierDepart, 9, 0));
  t.append(ev(100, 1, EventKind::kBarrierDepart, 9, 0));
  t.append(ev(150, 0, EventKind::kStmtExit));
  const auto stats = critical_path(t);
  // Path: arrive(p1)@90 -> depart(p0)@100 -> stmt@150.  The arrival has no
  // modeled cause in this fragment (no loop-begin fork), so it opens the
  // path and the idle time before 90 is outside it.
  EXPECT_EQ(stats.length, 60);
  EXPECT_EQ(
      stats.time_by_kind[static_cast<std::size_t>(EventKind::kBarrierDepart)],
      10);
}

TEST(CriticalPath, SimulatedChainIsSyncDominatedWhenBlocked) {
  // Loop-3-like chain: almost all of the makespan should be attributed to
  // the serialized awaitE/advance chain and the guarded updates.
  sim::Program p;
  const auto var = p.declare_sync_var("S");
  sim::Block body;
  body.nodes.push_back(sim::compute("pre", 5));
  body.nodes.push_back(sim::await(var, {1, -1}));
  body.nodes.push_back(sim::compute("upd", 40));
  body.nodes.push_back(sim::advance(var, {1, 0}));
  p.root().nodes.push_back(sim::par_loop("l", sim::LoopKind::kDoacross,
                                         sim::Schedule::kCyclic, 64,
                                         std::move(body)));
  p.finalize();
  const sim::MachineConfig cfg{.num_procs = 8};
  const auto t = sim::simulate_actual(cfg, p, "t");
  const auto stats = critical_path(t);

  const Tick sync_time =
      stats.time_by_kind[static_cast<std::size_t>(EventKind::kAwaitEnd)] +
      stats.time_by_kind[static_cast<std::size_t>(EventKind::kAdvance)] +
      stats.time_by_kind[static_cast<std::size_t>(EventKind::kStmtExit)];
  EXPECT_GT(static_cast<double>(sync_time),
            0.8 * static_cast<double>(stats.length));
  EXPECT_GT(stats.cross_processor_links, 32u);  // hops along the chain
  const auto rendered = render_critical_path(stats);
  EXPECT_NE(rendered.find("awaitE"), std::string::npos);
}

TEST(CriticalPath, PathTimesAreMonotone) {
  const auto prog = loops::make_concurrent_ir(17, 128);
  const sim::MachineConfig cfg{.num_procs = 4};
  const auto t = sim::simulate_actual(cfg, prog, "t");
  const auto stats = critical_path(t);
  ASSERT_FALSE(stats.path.empty());
  for (std::size_t i = 1; i < stats.path.size(); ++i)
    EXPECT_GE(t[stats.path[i]].time, t[stats.path[i - 1]].time);
  // The path ends at the trace's final event.
  EXPECT_EQ(t[stats.path.back()].time, t.end_time());
}

}  // namespace
}  // namespace perturb::analysis
