// Streaming trace analysis suite: the chunk-incremental load → index →
// reconstruct path must be bit-identical to the batch path it shadows.
//
// What must hold:
//   * ChunkReader parity — on any byte sequence (clean, torn, bit-flipped),
//     the chunks concatenate to exactly what read_binary /
//     read_binary_salvage produce, with the same SalvageReport and the same
//     exceptions, in both borrowed-image and feed mode;
//   * IncrementalTraceIndex::seal answers every query like a batch-built
//     TraceIndex, with ReferenceBuild as the common oracle;
//   * the windowed StreamingReconstructor reproduces the batch event-based
//     approximation bit for bit — including when an await's partner advance
//     lands in a later window, when the final chunk is torn, and across the
//     Livermore grid {3,4,17} x {1,2,8} processors under fault injection;
//   * AnalysisPipeline::run_stream_file matches run_file's event-based
//     output and publishes the pipeline.stream.* metrics;
//   * run_sealed (the server's prebuilt-index entry) matches run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "analysis/critical_path.hpp"
#include "core/eventbased.hpp"
#include "core/pipeline.hpp"
#include "experiments/experiments.hpp"
#include "support/metrics.hpp"
#include "trace/chunk_reader.hpp"
#include "trace/faults.hpp"
#include "trace/index.hpp"
#include "trace/io.hpp"

namespace perturb {
namespace {

using core::AnalysisOverheads;
using core::CollectSink;
using core::EventBasedOptions;
using core::StreamingReconstructor;
using trace::ChunkReader;
using trace::Event;
using trace::Trace;

/// Serialized v2 image of a trace.
std::string image_of(const Trace& t) {
  std::ostringstream out;
  trace::write_binary(out, t);
  return out.str();
}

/// Drains a reader, concatenating every chunk.
std::vector<Event> drain(ChunkReader& reader) {
  std::vector<Event> all;
  std::vector<Event> chunk;
  while (reader.next(chunk) == ChunkReader::Status::kChunk)
    all.insert(all.end(), chunk.begin(), chunk.end());
  return all;
}

/// The shared concurrent workload (loop 17, full instrumentation: advances,
/// awaits, loop markers — everything the index and reconstructor model).
const experiments::LoopRun& loop17() {
  static const experiments::LoopRun run = [] {
    experiments::Setup setup;
    return experiments::run_concurrent_experiment(17, 1000, setup,
                                                  experiments::PlanKind::kFull);
  }();
  return run;
}

AnalysisOverheads overheads() {
  experiments::Setup setup;
  return experiments::overheads_for(
      experiments::make_plan(experiments::PlanKind::kFull, setup),
      setup.machine);
}

// ---- ChunkReader parity ---------------------------------------------------

TEST(ChunkReader, MatchesBatchOnCleanImage) {
  const std::string bytes = image_of(loop17().measured);
  ChunkReader reader(bytes.data(), bytes.size(), /*salvage=*/false);
  const std::vector<Event> streamed = drain(reader);

  const Trace batch = trace::read_binary(bytes.data(), bytes.size());
  EXPECT_EQ(streamed, batch.events());
  EXPECT_EQ(reader.info().name, batch.info().name);
  EXPECT_EQ(reader.info().num_procs, batch.info().num_procs);
  EXPECT_EQ(reader.events_declared(), batch.size());
  EXPECT_EQ(reader.events_read(), batch.size());
  EXPECT_TRUE(reader.report().complete);
}

TEST(ChunkReader, FeedModeMatchesBorrowedAtAnyGranularity) {
  const std::string bytes = image_of(loop17().measured);
  const Trace batch = trace::read_binary(bytes.data(), bytes.size());
  // Pathological feed sizes: single bytes across the header, then odd
  // primes, then the rest — chunk boundaries never align with feed calls.
  for (const std::size_t piece : {std::size_t{1}, std::size_t{7},
                                  std::size_t{4093}}) {
    ChunkReader reader(/*salvage=*/false);
    std::vector<Event> streamed;
    std::vector<Event> chunk;
    std::size_t off = 0;
    while (off < bytes.size()) {
      const std::size_t n = std::min(piece, bytes.size() - off);
      reader.feed(bytes.data() + off, n);
      off += n;
      while (reader.next(chunk) == ChunkReader::Status::kChunk)
        streamed.insert(streamed.end(), chunk.begin(), chunk.end());
    }
    reader.finish();
    while (reader.next(chunk) == ChunkReader::Status::kChunk)
      streamed.insert(streamed.end(), chunk.begin(), chunk.end());
    EXPECT_EQ(streamed, batch.events()) << "feed piece " << piece;
    EXPECT_TRUE(reader.report().complete);
  }
}

TEST(ChunkReader, TornFinalChunkSalvagesPrefix) {
  const std::string full = image_of(loop17().measured);
  // Cut mid-way through the last chunk's payload.
  const std::string torn = full.substr(0, full.size() - 100);

  trace::SalvageReport batch_report;
  const Trace batch =
      trace::read_binary_salvage(torn.data(), torn.size(), batch_report);

  ChunkReader reader(torn.data(), torn.size(), /*salvage=*/true);
  const std::vector<Event> streamed = drain(reader);

  EXPECT_FALSE(batch_report.complete);
  EXPECT_EQ(streamed, batch.events());
  EXPECT_EQ(reader.report().complete, batch_report.complete);
  EXPECT_EQ(reader.report().events_recovered, batch_report.events_recovered);
  EXPECT_EQ(reader.report().chunks_recovered, batch_report.chunks_recovered);
  EXPECT_EQ(reader.report().detail, batch_report.detail);
}

TEST(ChunkReader, SalvageParityUnderByteFaults) {
  const std::string clean = image_of(loop17().measured);
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    std::string bytes = clean;
    if (seed % 3 == 0) {
      bytes = trace::truncate_bytes(bytes, 0.03 * static_cast<double>(seed));
    } else {
      trace::flip_bits(bytes, 1 + seed % 5, seed);
    }

    bool batch_threw = false;
    Trace batch(trace::TraceInfo{});
    trace::SalvageReport batch_report;
    try {
      batch = trace::read_binary_salvage(bytes.data(), bytes.size(),
                                         batch_report);
    } catch (const CheckError&) {
      batch_threw = true;
    }

    bool stream_threw = false;
    ChunkReader reader(bytes.data(), bytes.size(), /*salvage=*/true);
    std::vector<Event> streamed;
    try {
      streamed = drain(reader);
    } catch (const CheckError&) {
      stream_threw = true;
    }

    EXPECT_EQ(stream_threw, batch_threw) << "seed " << seed;
    if (batch_threw || stream_threw) continue;
    EXPECT_EQ(streamed, batch.events()) << "seed " << seed;
    EXPECT_EQ(reader.report().complete, batch_report.complete)
        << "seed " << seed;
    EXPECT_EQ(reader.report().events_recovered, batch_report.events_recovered)
        << "seed " << seed;
    EXPECT_EQ(reader.report().detail, batch_report.detail) << "seed " << seed;
  }
}

TEST(ChunkReader, RejectsUnframedV1) {
  // A v1 header: magic + version 1.  v1 has no chunk frames, so the
  // streaming reader refuses it outright (batch readers still accept it).
  std::string bytes = "PTRC";
  bytes.append(4, '\0');
  bytes[4] = 1;
  ChunkReader reader(bytes.data(), bytes.size(), /*salvage=*/true);
  std::vector<Event> chunk;
  EXPECT_THROW(reader.next(chunk), trace::MalformedTraceError);
}

// ---- IncrementalTraceIndex ------------------------------------------------

/// Compares every query the index answers on the two builds.
void expect_index_equal(const trace::TraceIndex& a, const trace::TraceIndex& b,
                        const Trace& t) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.num_procs(), b.num_procs());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.prev_on_proc(i), b.prev_on_proc(i)) << "event " << i;
    EXPECT_EQ(a.fork_dep(i), b.fork_dep(i)) << "event " << i;
    EXPECT_EQ(a.lock_dep(i), b.lock_dep(i)) << "event " << i;
    EXPECT_EQ(a.sem_ordinal(i), b.sem_ordinal(i)) << "event " << i;
  }
  for (std::size_t p = 0; p < a.num_procs(); ++p) {
    const auto proc = static_cast<trace::ProcId>(p);
    EXPECT_EQ(a.events_of(proc), b.events_of(proc)) << "proc " << p;
  }
  EXPECT_EQ(a.duplicate_advances(), b.duplicate_advances());

  ASSERT_EQ(a.loops().size(), b.loops().size());
  for (std::size_t i = 0; i < a.loops().size(); ++i) {
    EXPECT_EQ(a.loops()[i].begin_index, b.loops()[i].begin_index);
    EXPECT_EQ(a.loops()[i].end_index, b.loops()[i].end_index);
    EXPECT_EQ(a.loops()[i].object, b.loops()[i].object);
    EXPECT_EQ(a.loops()[i].proc, b.loops()[i].proc);
  }
  ASSERT_EQ(a.iterations().size(), b.iterations().size());
  for (std::size_t i = 0; i < a.iterations().size(); ++i) {
    EXPECT_EQ(a.iterations()[i].begin_index, b.iterations()[i].begin_index);
    EXPECT_EQ(a.iterations()[i].end_index, b.iterations()[i].end_index);
    EXPECT_EQ(a.iterations()[i].iteration, b.iterations()[i].iteration);
  }

  // Sync tables, probed through every event's key.
  for (const Event& e : t) {
    const trace::SyncKey key{e.object, e.payload};
    const auto ar = a.advances(key);
    const auto br = b.advances(key);
    EXPECT_EQ(std::vector<std::size_t>(ar.begin(), ar.end()),
              std::vector<std::size_t>(br.begin(), br.end()));
    const auto aw = a.await_begins(key, e.proc);
    const auto bw = b.await_begins(key, e.proc);
    EXPECT_EQ(std::vector<std::size_t>(aw.begin(), aw.end()),
              std::vector<std::size_t>(bw.begin(), bw.end()));
    EXPECT_EQ(a.sem_releases(e.object), b.sem_releases(e.object));
  }

  ASSERT_EQ(a.barrier_episodes().size(), b.barrier_episodes().size());
  for (std::size_t i = 0; i < a.barrier_episodes().size(); ++i) {
    EXPECT_EQ(a.barrier_episodes()[i].key, b.barrier_episodes()[i].key);
    EXPECT_EQ(a.barrier_episodes()[i].arrivals,
              b.barrier_episodes()[i].arrivals);
    EXPECT_EQ(a.barrier_episodes()[i].departs, b.barrier_episodes()[i].departs);
  }
}

TEST(IncrementalTraceIndex, SealMatchesBatchAndReference) {
  const Trace& t = loop17().measured;
  trace::IncrementalTraceIndex builder;
  // Append in uneven slices, crossing no particular boundary.
  std::size_t off = 0;
  std::size_t piece = 1;
  while (off < t.size()) {
    const std::size_t n = std::min(piece, t.size() - off);
    builder.append(t.events().data() + off, n);
    off += n;
    piece = piece * 2 + 1;
  }
  EXPECT_EQ(builder.size(), t.size());
  const trace::TraceIndex sealed = std::move(builder).seal(t);

  const trace::TraceIndex batch(t);
  const trace::TraceIndex reference(trace::TraceIndex::ReferenceBuild{}, t);
  expect_index_equal(sealed, batch, t);
  expect_index_equal(sealed, reference, t);
}

// ---- StreamingReconstructor ----------------------------------------------

/// Batch oracle: the event-based approximation of `measured`.
Trace batch_approx(const Trace& measured) {
  return core::event_based_approximation(measured, overheads()).approx;
}

/// Streams `measured` through a windowed reconstructor in `push_size`-event
/// pushes and returns the collected approximation.
Trace stream_approx(const Trace& measured, std::size_t window,
                    std::size_t push_size) {
  CollectSink sink;
  StreamingReconstructor recon(overheads(), EventBasedOptions{}, window, sink);
  std::size_t off = 0;
  while (off < measured.size()) {
    const std::size_t n = std::min(push_size, measured.size() - off);
    recon.push(measured.events().data() + off, n);
    off += n;
  }
  recon.finish();
  return sink.take(measured.info());
}

TEST(StreamingReconstructor, WindowBoundarySplitsAdvanceAwaitPairs) {
  // Tiny windows and single-event pushes force every advance/await pair that
  // spans a drain boundary through the blocked-event path: the await is
  // resident while its partner advance arrives windows later.
  const Trace& measured = loop17().measured;
  const Trace oracle = batch_approx(measured);
  for (const std::size_t window : {std::size_t{4}, std::size_t{64},
                                   std::size_t{1024}}) {
    const Trace streamed = stream_approx(measured, window, 1);
    EXPECT_EQ(streamed.events(), oracle.events()) << "window " << window;
    EXPECT_EQ(streamed.info().name, oracle.info().name);
  }
}

TEST(StreamingReconstructor, ReportsWindowAndResidencyStats) {
  const Trace& measured = loop17().measured;
  CollectSink sink;
  StreamingReconstructor recon(overheads(), EventBasedOptions{}, 256, sink);
  recon.push(measured.events().data(), measured.size());
  recon.finish();
  EXPECT_EQ(recon.events_pushed(), measured.size());
  EXPECT_GT(recon.windows_processed(), 0u);
  EXPECT_GT(recon.segments_spilled(), 0u);
  EXPECT_GT(recon.resident_high_water(), 0u);
}

TEST(StreamingReconstructor, MatchesBatchAcrossLivermoreGrid) {
  for (const int loop : {3, 4, 17}) {
    for (const std::uint32_t procs : {1u, 2u, 8u}) {
      experiments::Setup setup;
      setup.machine.num_procs = procs;
      const auto run = experiments::run_concurrent_experiment(
          loop, 300, setup, experiments::PlanKind::kFull);
      const AnalysisOverheads oh = experiments::overheads_for(
          experiments::make_plan(experiments::PlanKind::kFull, setup),
          setup.machine);

      const Trace oracle =
          core::event_based_approximation(run.measured, oh).approx;
      CollectSink sink;
      StreamingReconstructor recon(oh, EventBasedOptions{},
                                   trace::kStreamChunkEvents, sink);
      recon.push(run.measured.events().data(), run.measured.size());
      recon.finish();
      const Trace streamed = sink.take(run.measured.info());
      EXPECT_EQ(streamed.events(), oracle.events())
          << "loop " << loop << " procs " << procs;
    }
  }
}

TEST(StreamingReconstructor, CriticalPathMatchesBatchAcrossLivermoreGrid) {
  // PR 7 checked totals-only parity; the critical path exercises the full
  // dependency structure of the reconstruction, so run it on both the
  // streamed and the batch approximations and require bit-identical paths.
  for (const int loop : {3, 4, 17}) {
    for (const std::uint32_t procs : {1u, 2u, 8u}) {
      experiments::Setup setup;
      setup.machine.num_procs = procs;
      const auto run = experiments::run_concurrent_experiment(
          loop, 300, setup, experiments::PlanKind::kFull);
      const AnalysisOverheads oh = experiments::overheads_for(
          experiments::make_plan(experiments::PlanKind::kFull, setup),
          setup.machine);

      const Trace oracle =
          core::event_based_approximation(run.measured, oh).approx;
      CollectSink sink;
      StreamingReconstructor recon(oh, EventBasedOptions{},
                                   trace::kStreamChunkEvents, sink);
      recon.push(run.measured.events().data(), run.measured.size());
      recon.finish();
      const Trace streamed = sink.take(run.measured.info());

      const analysis::CriticalPathStats batch_cp =
          analysis::critical_path(oracle);
      const analysis::CriticalPathStats stream_cp =
          analysis::critical_path(streamed);
      EXPECT_EQ(stream_cp.path, batch_cp.path)
          << "loop " << loop << " procs " << procs;
      EXPECT_EQ(stream_cp.length, batch_cp.length);
      EXPECT_EQ(stream_cp.time_by_kind, batch_cp.time_by_kind);
      EXPECT_EQ(stream_cp.time_by_proc, batch_cp.time_by_proc);
      EXPECT_EQ(stream_cp.cross_processor_links,
                batch_cp.cross_processor_links);
    }
  }
}

TEST(StreamingReconstructor, MatchesBatchOnFaultInjectedTraces) {
  // 30 seeds of byte-level corruption: whatever prefix salvage recovers,
  // streaming and batch reconstruction of that prefix must agree exactly.
  const std::string clean = image_of(loop17().measured);
  const AnalysisOverheads oh = overheads();
  std::size_t compared = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    std::string bytes = clean;
    if (seed % 2 == 0)
      bytes = trace::truncate_bytes(bytes,
                                    0.5 + 0.015 * static_cast<double>(seed));
    else
      trace::flip_bits(bytes, 1, seed * 7919);

    ChunkReader reader(bytes.data(), bytes.size(), /*salvage=*/true);
    Trace salvaged(trace::TraceInfo{});
    CollectSink sink;
    StreamingReconstructor recon(oh, EventBasedOptions{},
                                 trace::kStreamChunkEvents, sink);
    try {
      std::vector<Event> chunk;
      bool have_info = false;
      while (reader.next(chunk) == ChunkReader::Status::kChunk) {
        if (!have_info) {
          salvaged = Trace(reader.info());
          have_info = true;
        }
        for (const Event& e : chunk) salvaged.append(e);
        recon.push(chunk);
      }
      if (!have_info) continue;  // header corrupted away; nothing to compare
    } catch (const CheckError&) {
      continue;  // unsalvageable image; strict/salvage parity covered above
    }
    if (salvaged.size() == 0) continue;
    recon.finish();
    const Trace streamed = sink.take(salvaged.info());
    const Trace oracle = core::event_based_approximation(salvaged, oh).approx;
    EXPECT_EQ(streamed.events(), oracle.events()) << "seed " << seed;
    ++compared;
  }
  // The corruption schedule must leave a healthy number of comparable runs.
  EXPECT_GE(compared, 15u);
}

// ---- pipeline entry points ------------------------------------------------

std::string temp_trace_path() {
  static std::atomic<int> counter{0};
  return "/tmp/perturb_stream_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".bin";
}

core::PipelineOptions pipeline_options() {
  experiments::Setup setup;
  core::PipelineOptions options;
  options.overheads = overheads();
  options.machine = setup.machine;
  options.sync_slack = 130;
  return options;
}

TEST(AnalysisPipeline, StreamFileMatchesBatchEventBased) {
  const std::string path = temp_trace_path();
  trace::save(path, loop17().measured);

  core::AnalysisPipeline pipeline(pipeline_options());
  pipeline.add(core::AnalyzerKind::kEventBased);
  const core::PipelineResult batch = pipeline.run_file(path);
  ASSERT_TRUE(batch.acquire.ok);
  const core::AnalyzerOutput* eb = batch.output("event-based");
  ASSERT_NE(eb, nullptr);

  support::Metrics::enable(true);
  support::Metrics::reset();
  const core::StreamOutcome streamed =
      pipeline.run_stream_file(path, /*collect=*/true);
  ASSERT_TRUE(streamed.ok);
  EXPECT_EQ(streamed.event_stats.approx.events(), eb->approx.events());
  EXPECT_EQ(streamed.measured_events, loop17().measured.size());
  EXPECT_EQ(streamed.measured_span, loop17().measured.span());
  EXPECT_EQ(streamed.measured_total, loop17().measured.total_time());
  EXPECT_EQ(streamed.approx_span, eb->approx.span());
  EXPECT_EQ(streamed.approx_total, eb->approx.total_time());
  EXPECT_EQ(streamed.event_stats.awaits_total,
            eb->event_stats->awaits_total);
  EXPECT_EQ(streamed.event_stats.waits_removed,
            eb->event_stats->waits_removed);
  EXPECT_GT(streamed.chunks, 0u);
  EXPECT_GT(streamed.windows, 0u);

  // The streaming run publishes its observability metrics.
  const support::MetricsSnapshot snap = support::Metrics::snapshot();
  support::Metrics::enable(false);
  EXPECT_EQ(snap.counters.at("pipeline.stream.chunks"), streamed.chunks);
  EXPECT_EQ(snap.counters.at("pipeline.stream.windows"), streamed.windows);
  EXPECT_EQ(snap.counters.at("pipeline.stream.spills"), streamed.spills);
  EXPECT_EQ(
      static_cast<std::size_t>(
          snap.gauges.at("pipeline.stream.resident_events.hwm")),
      streamed.resident_high_water);

  // Summary mode (collect=false) reports the same totals without the trace.
  const core::StreamOutcome summary =
      pipeline.run_stream_file(path, /*collect=*/false);
  ASSERT_TRUE(summary.ok);
  EXPECT_EQ(summary.approx_span, streamed.approx_span);
  EXPECT_EQ(summary.approx_total, streamed.approx_total);
  EXPECT_EQ(summary.event_stats.approx.size(), 0u);

  std::remove(path.c_str());
}

TEST(AnalysisPipeline, StreamFileBoundsResidencyByWindow) {
  const std::string path = temp_trace_path();
  trace::save(path, loop17().measured);
  core::PipelineOptions options = pipeline_options();
  options.stream_window = trace::kStreamChunkEvents;
  const core::AnalysisPipeline pipeline(options);
  const core::StreamOutcome out =
      pipeline.run_stream_file(path, /*collect=*/false);
  ASSERT_TRUE(out.ok);
  ASSERT_GT(loop17().measured.size(), 4 * trace::kStreamChunkEvents)
      << "workload too small to exercise windowing";
  // The drain threshold is soft (blocked events may ride past it), but on a
  // consistent trace residency stays well below the full trace.
  EXPECT_LT(out.resident_high_water, loop17().measured.size() / 2);
  std::remove(path.c_str());
}

TEST(AnalysisPipeline, StreamFileRejectsTextTraces) {
  const std::string path = temp_trace_path() + ".ptt";
  trace::save(path, loop17().measured);
  const core::AnalysisPipeline pipeline(pipeline_options());
  EXPECT_THROW(pipeline.run_stream_file(path, false),
               trace::MalformedTraceError);
  std::remove(path.c_str());
}

TEST(AnalysisPipeline, StreamFileSalvagesTornInputWhenRepairing) {
  const std::string full = image_of(loop17().measured);
  const std::string torn = full.substr(0, full.size() - 100);
  const std::string path = temp_trace_path();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(torn.data(), 1, torn.size(), f);
    std::fclose(f);
  }

  // Strict mode refuses the torn tail like trace::load.
  const core::AnalysisPipeline strict(pipeline_options());
  EXPECT_THROW(strict.run_stream_file(path, false), trace::IoError);

  // Salvage mode analyzes the valid prefix and says so.
  core::PipelineOptions options = pipeline_options();
  options.repair = core::RepairMode::kConservative;
  const core::AnalysisPipeline salvaging(options);
  const core::StreamOutcome out = salvaging.run_stream_file(path, false);
  ASSERT_TRUE(out.ok);
  EXPECT_TRUE(out.salvaged);
  EXPECT_FALSE(out.salvage.complete);
  EXPECT_LT(out.measured_events, loop17().measured.size());
  std::remove(path.c_str());
}

TEST(AnalysisPipeline, RunSealedMatchesRun) {
  const Trace& measured = loop17().measured;
  core::AnalysisPipeline pipeline(pipeline_options());
  pipeline.add(core::AnalyzerKind::kTimeBased);
  pipeline.add(core::AnalyzerKind::kEventBased);

  const core::PipelineResult batch = pipeline.run(measured);
  ASSERT_TRUE(batch.acquire.ok);

  trace::IncrementalTraceIndex builder;
  builder.append(measured.events().data(), measured.size());
  const core::PipelineResult sealed =
      pipeline.run_sealed(measured, std::move(builder));
  ASSERT_TRUE(sealed.acquire.ok);
  ASSERT_EQ(sealed.outputs.size(), batch.outputs.size());
  for (std::size_t i = 0; i < batch.outputs.size(); ++i) {
    EXPECT_EQ(sealed.outputs[i].analyzer, batch.outputs[i].analyzer);
    EXPECT_EQ(sealed.outputs[i].approx.events(),
              batch.outputs[i].approx.events());
  }
}

}  // namespace
}  // namespace perturb
