// Tests for the unified analysis pipeline (core/pipeline.hpp) and the
// shared TraceIndex contract underneath it.
//
// The load-bearing guarantees:
//   * every analyzer run through AnalysisPipeline produces byte-identical
//     traces and quality metrics to calling the analysis directly on the
//     same measured trace (the refactor changed plumbing, not results);
//   * acquisition matches the standalone triage/repair path on
//     fault-injected traces;
//   * the Monte-Carlo explorer is bit-identical at 1, 2, and 8 worker
//     threads;
//   * TraceIndex answers structural queries exactly as a linear scan would.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/eventbased.hpp"
#include "core/liberal.hpp"
#include "core/likely.hpp"
#include "core/pipeline.hpp"
#include "core/timebased.hpp"
#include "experiments/experiments.hpp"
#include "trace/faults.hpp"
#include "trace/index.hpp"
#include "trace/io.hpp"
#include "trace/repair.hpp"
#include "trace/validate.hpp"

namespace perturb::core {
namespace {

// Measured traces carry probe-cost timing noise; this slack covers it (the
// same value the repair and fuzz tests use).
constexpr trace::Tick kSlack = 130;

struct Fixture {
  trace::Trace actual;
  trace::Trace measured;
  AnalysisOverheads ov;
  sim::MachineConfig machine;
};

Fixture make_fixture(int loop, std::int64_t n = 200) {
  experiments::Setup setup;
  const auto run = experiments::run_concurrent_experiment(
      loop, n, setup, experiments::PlanKind::kFull);
  const auto plan =
      experiments::make_plan(experiments::PlanKind::kFull, setup);
  return Fixture{run.actual, run.measured,
                 experiments::overheads_for(plan, setup.machine),
                 setup.machine};
}

bool same_trace(const trace::Trace& a, const trace::Trace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a[i] == b[i])) return false;
  return true;
}

PipelineOptions options_for(const Fixture& f) {
  PipelineOptions options;
  options.overheads = f.ov;
  options.machine = f.machine;
  options.sync_slack = kSlack;
  options.likely_samples = 16;
  return options;
}

// ---- pipeline == direct analysis, per loop -------------------------------

class PipelineEquivalence : public testing::TestWithParam<int> {};

TEST_P(PipelineEquivalence, MatchesDirectAnalyses) {
  const Fixture f = make_fixture(GetParam());
  AnalysisPipeline pipeline(options_for(f));
  pipeline.add(AnalyzerKind::kTimeBased)
      .add(AnalyzerKind::kEventBased)
      .add(AnalyzerKind::kLiberal);
  const PipelineResult result = pipeline.run(f.measured, &f.actual);
  ASSERT_TRUE(result.acquire.ok) << result.acquire.diagnosis;
  ASSERT_EQ(result.outputs.size(), 3u);

  // Time-based: identical trace and quality to the direct call.
  const trace::Trace tb = time_based_approximation(f.measured, f.ov);
  EXPECT_TRUE(same_trace(result.outputs[0].approx, tb));
  const auto tb_q = assess(f.measured, tb, f.actual);
  ASSERT_TRUE(result.outputs[0].quality.has_value());
  EXPECT_DOUBLE_EQ(result.outputs[0].quality->approx_over_actual,
                   tb_q.approx_over_actual);
  EXPECT_DOUBLE_EQ(result.outputs[0].quality->measured_over_actual,
                   tb_q.measured_over_actual);

  // Event-based: identical trace and wait counters.
  const EventBasedResult eb = event_based_approximation(f.measured, f.ov);
  EXPECT_TRUE(same_trace(result.outputs[1].approx, eb.approx));
  ASSERT_TRUE(result.outputs[1].event_stats.has_value());
  EXPECT_EQ(result.outputs[1].event_stats->awaits_total, eb.awaits_total);
  EXPECT_EQ(result.outputs[1].event_stats->waits_measured, eb.waits_measured);
  EXPECT_EQ(result.outputs[1].event_stats->waits_approx, eb.waits_approx);
  EXPECT_EQ(result.outputs[1].event_stats->waits_removed, eb.waits_removed);
  EXPECT_EQ(result.outputs[1].event_stats->waits_introduced,
            eb.waits_introduced);

  // Liberal: identical replayed trace.
  const DoacrossShape shape = extract_doacross_shape(f.measured, f.ov);
  LiberalOptions lib;
  lib.machine = f.machine;
  const LiberalResult direct = liberal_approximation(shape, lib);
  EXPECT_TRUE(same_trace(result.outputs[2].approx, direct.approx));
}

INSTANTIATE_TEST_SUITE_P(SeedLoops, PipelineEquivalence,
                         testing::Values(3, 4, 17));

// ---- determinism across worker counts ------------------------------------

TEST(Pipeline, ThreadCountDoesNotChangeResults) {
  const Fixture f = make_fixture(17);
  std::vector<PipelineResult> results;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    PipelineOptions options = options_for(f);
    options.threads = threads;
    AnalysisPipeline pipeline(std::move(options));
    pipeline.add(AnalyzerKind::kTimeBased)
        .add(AnalyzerKind::kEventBased)
        .add(AnalyzerKind::kLikely);
    results.push_back(pipeline.run(f.measured, &f.actual));
    ASSERT_TRUE(results.back().acquire.ok);
  }
  const PipelineResult& a = results[0];
  const PipelineResult& b = results[1];
  EXPECT_TRUE(same_trace(a.outputs[0].approx, b.outputs[0].approx));
  EXPECT_TRUE(same_trace(a.outputs[1].approx, b.outputs[1].approx));
  ASSERT_TRUE(a.outputs[2].distribution.has_value());
  ASSERT_TRUE(b.outputs[2].distribution.has_value());
  EXPECT_EQ(a.outputs[2].distribution->loop_times,
            b.outputs[2].distribution->loop_times);
}

TEST(Pipeline, LikelyExecutionsBitIdenticalAt1And2And8Threads) {
  const Fixture f = make_fixture(17);
  const DoacrossShape shape = extract_doacross_shape(f.measured, f.ov);
  std::vector<std::vector<trace::Tick>> samples;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    LikelyOptions opt;
    opt.machine = f.machine;
    opt.samples = 64;
    opt.threads = threads;
    samples.push_back(likely_executions(shape, opt).loop_times);
  }
  EXPECT_EQ(samples[0], samples[1]);
  EXPECT_EQ(samples[0], samples[2]);
}

// ---- batched driver: run_many == run_file, at every thread count ---------

TEST(Pipeline, RunManyMatchesRunFileAtOneTwoAndEightThreads) {
  const std::vector<int> loops = {3, 4, 17};
  std::vector<std::string> paths;
  Fixture f = make_fixture(loops[0]);
  for (const int loop : loops) {
    const Fixture item = loop == loops[0] ? f : make_fixture(loop);
    const std::string path =
        "/tmp/perturb_test_run_many_" + std::to_string(loop) + ".bin";
    trace::save(path, item.measured);
    paths.push_back(path);
  }
  // A missing file must come back !ok with a diagnosis, not abort the batch.
  paths.push_back("/tmp/perturb_test_run_many_missing.bin");

  AnalysisPipeline reference(options_for(f));
  reference.add(AnalyzerKind::kTimeBased).add(AnalyzerKind::kEventBased);
  std::vector<PipelineResult> expected;
  for (std::size_t i = 0; i < loops.size(); ++i)
    expected.push_back(reference.run_file(paths[i]));

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    PipelineOptions options = options_for(f);
    options.threads = threads;
    AnalysisPipeline pipeline(std::move(options));
    pipeline.add(AnalyzerKind::kTimeBased).add(AnalyzerKind::kEventBased);
    const std::vector<PipelineResult> results = pipeline.run_many(paths);
    ASSERT_EQ(results.size(), paths.size());
    for (std::size_t i = 0; i < loops.size(); ++i) {
      ASSERT_TRUE(results[i].acquire.ok) << results[i].acquire.diagnosis;
      ASSERT_EQ(results[i].outputs.size(), expected[i].outputs.size());
      for (std::size_t k = 0; k < expected[i].outputs.size(); ++k) {
        EXPECT_TRUE(same_trace(results[i].outputs[k].approx,
                               expected[i].outputs[k].approx))
            << "file " << i << " analyzer " << k << " at " << threads
            << " threads";
      }
      ASSERT_TRUE(results[i].outputs[1].event_stats.has_value());
      ASSERT_TRUE(expected[i].outputs[1].event_stats.has_value());
      EXPECT_EQ(results[i].outputs[1].event_stats->waits_removed,
                expected[i].outputs[1].event_stats->waits_removed);
    }
    EXPECT_FALSE(results.back().acquire.ok);
    EXPECT_FALSE(results.back().acquire.diagnosis.empty());
    EXPECT_TRUE(results.back().outputs.empty());
  }
  for (std::size_t i = 0; i < loops.size(); ++i)
    std::remove(paths[i].c_str());
}

// ---- acquisition: triage, repair, trust ----------------------------------

TEST(Pipeline, RejectsFaultyTraceWithoutRepair) {
  const Fixture f = make_fixture(3);
  const trace::Trace injected =
      trace::inject_violation(f.measured, trace::ViolationKind::kDuplicateAdvance);
  AnalysisPipeline pipeline(options_for(f));
  pipeline.add(AnalyzerKind::kEventBased);
  const PipelineResult result = pipeline.run(injected);
  EXPECT_FALSE(result.acquire.ok);
  EXPECT_FALSE(result.acquire.diagnosis.empty());
  EXPECT_FALSE(result.acquire.violations.empty());
  EXPECT_TRUE(result.outputs.empty());
}

TEST(Pipeline, RepairedAcquisitionMatchesManualRepair) {
  const Fixture f = make_fixture(3);
  trace::Trace injected =
      trace::inject_violation(f.measured, trace::ViolationKind::kLockUnbalanced);
  injected = trace::inject_violation(injected,
                                     trace::ViolationKind::kDuplicateAdvance);

  PipelineOptions options = options_for(f);
  options.repair = RepairMode::kConservative;
  AnalysisPipeline pipeline(std::move(options));
  pipeline.add(AnalyzerKind::kEventBased);
  const PipelineResult result = pipeline.run(injected, &f.actual);
  ASSERT_TRUE(result.acquire.ok) << result.acquire.diagnosis;
  EXPECT_TRUE(result.acquire.repaired);
  EXPECT_FALSE(result.acquire.manifest.actions.empty());

  trace::RepairOptions ropts;
  ropts.sync_slack = kSlack;
  const auto manual = trace::repair(injected, ropts);
  ASSERT_TRUE(same_trace(result.acquire.measured, manual.repaired));
  const EventBasedResult direct =
      event_based_approximation(manual.repaired, f.ov);
  EXPECT_TRUE(same_trace(result.outputs[0].approx, direct.approx));
  // Quality is scored against the repaired measured trace.
  ASSERT_TRUE(result.outputs[0].quality.has_value());
  const auto direct_q = assess(manual.repaired, direct.approx, f.actual);
  EXPECT_DOUBLE_EQ(result.outputs[0].quality->approx_over_actual,
                   direct_q.approx_over_actual);
}

TEST(Pipeline, TrustedAcquireSkipsValidation) {
  const Fixture f = make_fixture(3);
  const trace::Trace injected =
      trace::inject_violation(f.measured, trace::ViolationKind::kDuplicateAdvance);
  const AcquireOutcome outcome = trusted_acquire(injected);
  EXPECT_TRUE(outcome.ok);
  EXPECT_FALSE(outcome.repaired);
  EXPECT_TRUE(same_trace(outcome.measured, injected));
}

TEST(Pipeline, OutputLookupByName) {
  const Fixture f = make_fixture(3);
  AnalysisPipeline pipeline(options_for(f));
  pipeline.add(AnalyzerKind::kTimeBased).add(AnalyzerKind::kEventBased);
  const PipelineResult result = pipeline.run(f.measured);
  ASSERT_TRUE(result.acquire.ok);
  ASSERT_NE(result.output("time-based"), nullptr);
  ASSERT_NE(result.output("event-based"), nullptr);
  EXPECT_EQ(result.output("event-based")->analyzer, "event-based");
  EXPECT_EQ(result.output("liberal"), nullptr);
}

TEST(Pipeline, ReportRendersAllSections) {
  const Fixture f = make_fixture(17);
  const PipelineOptions options = options_for(f);
  AnalysisPipeline pipeline(options);
  pipeline.add(AnalyzerKind::kEventBased);
  const PipelineResult result = pipeline.run(f.measured);
  ASSERT_TRUE(result.acquire.ok);
  const std::string report =
      render_pipeline_report(result.outputs[0].approx, options);
  EXPECT_NE(report.find("-- waiting --"), std::string::npos);
  EXPECT_NE(report.find("-- parallelism --"), std::string::npos);
  EXPECT_NE(report.find("-- critical path --"), std::string::npos);
}

// ---- TraceIndex invariants ------------------------------------------------

TEST(TraceIndexContract, PerProcessorChainsPartitionTheTrace) {
  const Fixture f = make_fixture(17);
  const trace::TraceIndex idx(f.measured);
  ASSERT_EQ(idx.size(), f.measured.size());

  std::size_t covered = 0;
  for (std::size_t p = 0; p < idx.num_procs(); ++p) {
    const auto& events = idx.events_of(static_cast<trace::ProcId>(p));
    covered += events.size();
    for (std::size_t k = 0; k < events.size(); ++k) {
      EXPECT_EQ(f.measured[events[k]].proc, p);
      EXPECT_EQ(idx.prev_on_proc(events[k]),
                k == 0 ? trace::TraceIndex::npos : events[k - 1]);
      if (k > 0) {
        EXPECT_LT(events[k - 1], events[k]);
      }
    }
  }
  EXPECT_EQ(covered, f.measured.size());
}

TEST(TraceIndexContract, AdvanceLookupsMatchLinearScan) {
  const Fixture f = make_fixture(17);
  const trace::TraceIndex idx(f.measured);

  std::map<trace::SyncKey, std::vector<std::size_t>> scan;
  for (std::size_t i = 0; i < f.measured.size(); ++i) {
    const auto& e = f.measured[i];
    if (e.kind == trace::EventKind::kAdvance)
      scan[{e.object, e.payload}].push_back(i);
  }
  ASSERT_FALSE(scan.empty());
  for (const auto& [key, occurrences] : scan) {
    EXPECT_EQ(idx.first_advance(key), occurrences.front());
    EXPECT_EQ(idx.last_advance(key), occurrences.back());
    const auto range = idx.advances(key);
    ASSERT_EQ(range.size(), occurrences.size());
    EXPECT_TRUE(std::equal(range.begin(), range.end(), occurrences.begin()));
    // Streaming variant: strictly-before semantics.
    EXPECT_EQ(idx.last_advance_before(key, occurrences.front()),
              trace::TraceIndex::npos);
    EXPECT_EQ(idx.last_advance_before(key, occurrences.back() + 1),
              occurrences.back());
  }
  // A key that never occurs misses cleanly.
  EXPECT_EQ(idx.last_advance({0xDEAD, -42}), trace::TraceIndex::npos);
  EXPECT_EQ(idx.first_advance({0xDEAD, -42}), trace::TraceIndex::npos);
}

TEST(TraceIndexContract, BarrierEpisodesSortedAndInTraceOrder) {
  const Fixture f = make_fixture(17);
  const trace::TraceIndex idx(f.measured);
  const auto& episodes = idx.barrier_episodes();
  ASSERT_FALSE(episodes.empty());
  for (std::size_t k = 1; k < episodes.size(); ++k)
    EXPECT_TRUE(episodes[k - 1].key < episodes[k].key);
  for (const auto& ep : episodes) {
    EXPECT_TRUE(std::is_sorted(ep.arrivals.begin(), ep.arrivals.end()));
    EXPECT_TRUE(std::is_sorted(ep.departs.begin(), ep.departs.end()));
    for (const std::size_t i : ep.arrivals)
      EXPECT_EQ(f.measured[i].kind, trace::EventKind::kBarrierArrive);
    for (const std::size_t i : ep.departs)
      EXPECT_EQ(f.measured[i].kind, trace::EventKind::kBarrierDepart);
    EXPECT_NE(idx.barrier_episode(ep.key.object, ep.key.index), nullptr);
  }
}

TEST(TraceIndexContract, LoopAndIterationSpansAreWellFormed) {
  const Fixture f = make_fixture(17);
  const trace::TraceIndex idx(f.measured);
  ASSERT_EQ(idx.loops().size(), 1u);
  const auto& loop = idx.loops().front();
  EXPECT_EQ(f.measured[loop.begin_index].kind, trace::EventKind::kLoopBegin);
  ASSERT_NE(loop.end_index, trace::TraceIndex::npos);
  EXPECT_EQ(f.measured[loop.end_index].kind, trace::EventKind::kLoopEnd);
  EXPECT_LT(loop.begin_index, loop.end_index);

  ASSERT_FALSE(idx.iterations().empty());
  for (const auto& iter : idx.iterations()) {
    EXPECT_EQ(f.measured[iter.begin_index].kind,
              trace::EventKind::kIterBegin);
    ASSERT_NE(iter.end_index, trace::TraceIndex::npos);
    EXPECT_EQ(f.measured[iter.end_index].kind, trace::EventKind::kIterEnd);
    EXPECT_EQ(f.measured[iter.begin_index].proc,
              f.measured[iter.end_index].proc);
  }
}

}  // namespace
}  // namespace perturb::core
