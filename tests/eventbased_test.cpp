// Tests for event-based perturbation analysis (§4): the advance/await
// formulae, the Figure 2 wait-removal/introduction corrections, barrier and
// lock models, feasibility of the approximation, and recovery accuracy on
// the dependent-loop scenarios that defeat time-based analysis.
#include <gtest/gtest.h>

#include <map>

#include "core/eventbased.hpp"
#include "core/timebased.hpp"
#include "instr/plan.hpp"
#include "sim/engine.hpp"
#include "trace/trace_stats.hpp"
#include "trace/validate.hpp"

namespace perturb::core {
namespace {

using trace::EventKind;
using trace::Tick;
using trace::Trace;

AnalysisOverheads overheads_from_plan(const instr::InstrumentationPlan& plan,
                                      const sim::MachineConfig& cfg) {
  AnalysisOverheads ov;
  for (std::uint8_t k = 0; k < trace::kNumEventKinds; ++k)
    ov.probe[k] = plan.mean_cost(static_cast<EventKind>(k));
  ov.s_nowait = cfg.await_check_cost;
  ov.s_wait = cfg.await_resume_cost;
  ov.lock_acquire = cfg.lock_acquire_cost;
  ov.barrier_depart = cfg.barrier_depart_cost;
  return ov;
}

sim::Program chain_program(std::int64_t trip, sim::Cycles pre,
                           sim::Cycles guarded, bool traced_guarded = false) {
  sim::Program p;
  const auto var = p.declare_sync_var("S");
  sim::Block body;
  if (pre > 0) body.nodes.push_back(sim::compute("pre", pre));
  body.nodes.push_back(sim::await(var, {1, -1}));
  if (traced_guarded)
    body.nodes.push_back(sim::compute("upd", guarded));
  else
    body.nodes.push_back(sim::raw_compute("upd", guarded));
  body.nodes.push_back(sim::advance(var, {1, 0}));
  p.root().nodes.push_back(sim::par_loop("l", sim::LoopKind::kDoacross,
                                         sim::Schedule::kCyclic, trip,
                                         std::move(body)));
  p.finalize();
  return p;
}

struct Pipeline {
  Trace actual;
  Trace measured;
  EventBasedResult result;
  AnalysisOverheads ov;
};

Pipeline run(const sim::Program& prog, const sim::MachineConfig& cfg,
             const instr::InstrumentationPlan& plan,
             const EventBasedOptions& opt = {}) {
  Pipeline p;
  p.actual = sim::simulate_actual(cfg, prog, "a");
  p.measured = sim::simulate(cfg, prog, plan, "m");
  p.ov = overheads_from_plan(plan, cfg);
  p.result = event_based_approximation(p.measured, p.ov, opt);
  return p;
}

double total_ratio(const Trace& approx, const Trace& actual) {
  return static_cast<double>(approx.total_time()) /
         static_cast<double>(actual.total_time());
}

// ---- exactness and feasibility ------------------------------------------

TEST(EventBased, IdentityWithZeroOverheads) {
  // A zero-cost "measurement" is the actual trace; the analysis must return
  // it unchanged (up to the modelled sync processing costs, which match).
  const sim::MachineConfig cfg{.num_procs = 4};
  const auto prog = chain_program(32, 50, 10);
  const auto actual = sim::simulate_actual(cfg, prog, "a");
  AnalysisOverheads ov;
  ov.s_nowait = cfg.await_check_cost;
  ov.s_wait = cfg.await_resume_cost;
  ov.lock_acquire = cfg.lock_acquire_cost;
  ov.barrier_depart = cfg.barrier_depart_cost;
  const auto result = event_based_approximation(actual, ov);
  const auto cmp = trace::compare(result.approx, actual);
  EXPECT_EQ(cmp.matched_events, actual.size());
  EXPECT_EQ(cmp.max_abs_time_error, 0);
}

TEST(EventBased, ApproximationIsFeasible) {
  // The reconstructed trace must satisfy every causality rule a real trace
  // does (§4.1's conservative-approximation guarantee).
  const sim::MachineConfig cfg{.num_procs = 8};
  const auto prog = chain_program(64, 40, 12);
  const auto plan = instr::InstrumentationPlan::full({175.0, 0.05},
                                                     {90.0, 0.05},
                                                     {60.0, 0.05}, 5);
  const auto p = run(prog, cfg, plan);
  const auto violations = trace::validate(p.result.approx);
  EXPECT_TRUE(violations.empty()) << trace::describe(violations);
}

TEST(EventBased, RecoversChainBoundLoop) {
  // Loop-3 scenario: actual is chain-bound, instrumentation removes the
  // blocking; event-based analysis must restore it.
  const sim::MachineConfig cfg{.num_procs = 8};
  const auto prog = chain_program(256, 36, 6);
  const auto plan = instr::InstrumentationPlan::full({175.0, 0.0}, {90.0, 0.0},
                                                     {60.0, 0.0}, 1);
  const auto p = run(prog, cfg, plan);
  EXPECT_GT(total_ratio(p.measured, p.actual), 1.5);  // heavily perturbed
  EXPECT_NEAR(total_ratio(p.result.approx, p.actual), 1.0, 0.08);

  // Time-based analysis of the Table 1 instrumentation (statements only —
  // without sync probes the chain's blocking disappears entirely in the
  // measurement) misses badly.
  const auto t1_plan =
      instr::InstrumentationPlan::statements_only({175.0, 0.0}, 1);
  const auto t1_measured = sim::simulate(cfg, prog, t1_plan, "m1");
  const auto tb = time_based_approximation(
      t1_measured, overheads_from_plan(t1_plan, cfg));
  EXPECT_LT(total_ratio(tb, p.actual), 0.7);
}

TEST(EventBased, RecoversContendedCriticalRegion) {
  // Loop-17 scenario: probes inside the guarded region inflate contention.
  const sim::MachineConfig cfg{.num_procs = 8};
  const auto prog = chain_program(256, 700, 30, /*traced_guarded=*/true);
  const auto plan = instr::InstrumentationPlan::full({175.0, 0.0}, {90.0, 0.0},
                                                     {60.0, 0.0}, 1);
  const auto p = run(prog, cfg, plan);
  EXPECT_GT(total_ratio(p.measured, p.actual), 2.0);
  EXPECT_NEAR(total_ratio(p.result.approx, p.actual), 1.0, 0.08);

  const auto tb = time_based_approximation(p.measured, p.ov);
  EXPECT_GT(total_ratio(tb, p.actual), 1.5);  // over-approximates
}

// ---- the Figure 2 corrections ------------------------------------------

TEST(EventBased, RemovesInstrumentationInducedWaiting) {
  // Probes inside the guarded region slow the chain: the measured run
  // blocks where the actual run does not.
  const sim::MachineConfig cfg{.num_procs = 4};
  const auto prog = chain_program(64, 600, 10, /*traced_guarded=*/true);
  const auto plan = instr::InstrumentationPlan::full({250.0, 0.0}, {90.0, 0.0},
                                                     {60.0, 0.0}, 1);
  const auto p = run(prog, cfg, plan);
  EXPECT_GT(p.result.waits_measured, 0u);
  EXPECT_GT(p.result.waits_removed, 0u);
  EXPECT_LT(p.result.waits_approx, p.result.waits_measured);
}

TEST(EventBased, IntroducesMaskedWaiting) {
  // The awaitB probe delays the awaiting processor past the advance: the
  // measured run shows no waiting where the actual run waits.
  const sim::MachineConfig cfg{.num_procs = 2};
  const auto prog = chain_program(16, 30, 60);
  const auto plan = instr::InstrumentationPlan::full({60.0, 0.0}, {500.0, 0.0},
                                                     {60.0, 0.0}, 1);
  const auto p = run(prog, cfg, plan);
  EXPECT_GT(p.result.waits_introduced, 0u);
  EXPECT_GT(p.result.waits_approx, p.result.waits_measured);
}

TEST(EventBased, AwaitFormulaNoWaitCase) {
  // Hand-built measured trace: advance long before awaitB.
  Trace m({"m", 2, 1.0});
  auto ev = [&](Tick t, trace::ProcId proc, EventKind k, std::int64_t pay) {
    trace::Event e;
    e.time = t;
    e.proc = proc;
    e.kind = k;
    e.object = 1;
    e.payload = pay;
    e.id = 1;
    m.append(e);
  };
  ev(10, 0, EventKind::kAdvance, 0);
  ev(100, 1, EventKind::kAwaitBegin, 0);
  ev(140, 1, EventKind::kAwaitEnd, 0);
  AnalysisOverheads ov;
  ov.s_nowait = 4;
  const auto r = event_based_approximation(m, ov);
  // t_a(awaitE) = t_a(awaitB) + s_nowait = 100 + 4.
  EXPECT_EQ(r.approx.events()[2].time, 104);
  EXPECT_EQ(r.waits_approx, 0u);
}

TEST(EventBased, AwaitFormulaWaitCase) {
  Trace m({"m", 2, 1.0});
  auto ev = [&](Tick t, trace::ProcId proc, EventKind k, std::int64_t pay) {
    trace::Event e;
    e.time = t;
    e.proc = proc;
    e.kind = k;
    e.object = 1;
    e.payload = pay;
    e.id = 1;
    m.append(e);
  };
  ev(10, 1, EventKind::kAwaitBegin, 0);
  ev(200, 0, EventKind::kAdvance, 0);
  ev(215, 1, EventKind::kAwaitEnd, 0);
  AnalysisOverheads ov;
  ov.s_wait = 8;
  const auto r = event_based_approximation(m, ov);
  // t_a(awaitE) = t_a(advance) + s_wait = 200 + 8.
  const auto& events = r.approx.events();
  for (const auto& e : events) {
    if (e.kind == EventKind::kAwaitEnd) {
      EXPECT_EQ(e.time, 208);
    }
  }
  EXPECT_EQ(r.waits_approx, 1u);
}

TEST(EventBased, DegenerateAwaitWithoutPartnerFallsBack) {
  Trace m({"m", 1, 1.0});
  trace::Event e;
  e.time = 50;
  e.kind = EventKind::kAwaitEnd;
  e.object = 1;
  e.payload = 3;
  m.append(e);
  AnalysisOverheads ov;
  const auto r = event_based_approximation(m, ov);
  EXPECT_EQ(r.approx.events()[0].time, 50);  // base rule, no crash
}

// ---- barrier model ----------------------------------------------------

TEST(EventBased, BarrierDepartsFromApproximatedArrivals) {
  Trace m({"m", 2, 1.0});
  auto ev = [&](Tick t, trace::ProcId proc, EventKind k) {
    trace::Event e;
    e.time = t;
    e.proc = proc;
    e.kind = k;
    e.object = 7;
    e.payload = 0;
    m.append(e);
  };
  ev(100, 0, EventKind::kBarrierArrive);
  ev(300, 1, EventKind::kBarrierArrive);
  ev(310, 0, EventKind::kBarrierDepart);
  ev(310, 1, EventKind::kBarrierDepart);
  AnalysisOverheads ov;
  ov.barrier_depart = 10;
  const auto r = event_based_approximation(m, ov);
  for (const auto& e : r.approx) {
    if (e.kind == EventKind::kBarrierDepart) {
      EXPECT_EQ(e.time, 310);  // max(100, 300) + 10
    }
  }
}

TEST(EventBased, BarrierModelCanBeDisabled) {
  Trace m({"m", 1, 1.0});
  auto ev = [&](Tick t, EventKind k) {
    trace::Event e;
    e.time = t;
    e.kind = k;
    e.object = 7;
    m.append(e);
  };
  ev(100, EventKind::kBarrierArrive);
  ev(150, EventKind::kBarrierDepart);
  AnalysisOverheads ov;
  ov.barrier_depart = 10;
  EventBasedOptions opt;
  opt.model_barriers = false;
  const auto r = event_based_approximation(m, ov, opt);
  EXPECT_EQ(r.approx.events()[1].time, 150);  // untouched (base rule)
}

// ---- lock model ----------------------------------------------------------

TEST(EventBased, LockHandoffPreservesMeasuredOrder) {
  Trace m({"m", 2, 1.0});
  auto ev = [&](Tick t, trace::ProcId proc, EventKind k) {
    trace::Event e;
    e.time = t;
    e.proc = proc;
    e.kind = k;
    e.object = 5;
    m.append(e);
  };
  // proc0 holds [10, 110]; proc1 requests early but acquires after release.
  ev(10, 0, EventKind::kLockAcquire);
  ev(110, 0, EventKind::kLockRelease);
  ev(120, 1, EventKind::kLockAcquire);
  ev(200, 1, EventKind::kLockRelease);
  AnalysisOverheads ov;
  ov.lock_acquire = 6;
  const auto r = event_based_approximation(m, ov);
  const auto& out = r.approx.events();
  // proc0's acquire is re-timed to its (absent) request time plus the
  // acquire cost (6); its release follows the measured hold time (100);
  // proc1's acquire lands at that release plus the acquire cost (112).
  for (const auto& e : out) {
    if (e.kind == EventKind::kLockAcquire && e.proc == 0) {
      EXPECT_EQ(e.time, 6);
    }
    if (e.kind == EventKind::kLockRelease && e.proc == 0) {
      EXPECT_EQ(e.time, 106);
    }
    if (e.kind == EventKind::kLockAcquire && e.proc == 1) {
      EXPECT_EQ(e.time, 112);
    }
  }
  EXPECT_TRUE(trace::validate(r.approx).empty());
}

TEST(EventBased, LockContentionFromProbesRemoved) {
  // DOALL with a critical section: probes inside the section stretch the
  // serialized region in the measurement; the lock model must rebuild the
  // hand-off chain with probes removed.
  sim::Program p;
  const auto lock = p.declare_lock("L");
  sim::Block body;
  body.nodes.push_back(sim::compute("pre", 50));
  body.nodes.push_back(sim::critical(lock, sim::block(sim::compute("cs", 40))));
  p.root().nodes.push_back(sim::par_loop("l", sim::LoopKind::kDoall,
                                         sim::Schedule::kCyclic, 64,
                                         std::move(body)));
  p.finalize();
  const sim::MachineConfig cfg{.num_procs = 8};
  const auto plan = instr::InstrumentationPlan::full({175.0, 0.0}, {90.0, 0.0},
                                                     {60.0, 0.0}, 1);
  const auto run_result = run(p, cfg, plan);
  EXPECT_GT(total_ratio(run_result.measured, run_result.actual), 1.5);
  EXPECT_NEAR(total_ratio(run_result.result.approx, run_result.actual), 1.0,
              0.15);
  EXPECT_TRUE(trace::validate(run_result.result.approx).empty());
}

// ---- error handling ----------------------------------------------------

TEST(EventBased, EventSetAndMetadataPreserved) {
  const sim::MachineConfig cfg{.num_procs = 4};
  const auto prog = chain_program(16, 30, 10);
  const auto plan = instr::InstrumentationPlan::full({100.0, 0.0}, {50.0, 0.0},
                                                     {25.0, 0.0}, 1);
  const auto p = run(prog, cfg, plan);
  EXPECT_EQ(p.result.approx.size(), p.measured.size());
  EXPECT_NE(p.result.approx.info().name.find("event-based"),
            std::string::npos);
  // Same multiset of (proc, kind, id, payload): only times changed.
  const auto cmp = trace::compare(p.result.approx, p.measured);
  EXPECT_EQ(cmp.unmatched_a, 0u);
  EXPECT_EQ(cmp.unmatched_b, 0u);
}

}  // namespace
}  // namespace perturb::core
