// Unit tests for the trace library: event model, container operations,
// merging, serialization round-trips, and trace comparison.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <sstream>

#include "support/check.hpp"
#include "trace/event.hpp"
#include "trace/io.hpp"
#include "trace/trace.hpp"
#include "trace/trace_stats.hpp"

namespace perturb::trace {
namespace {

Event make_event(Tick time, ProcId proc, EventKind kind, EventId id = 1,
                 ObjectId object = 0, std::int64_t payload = 0) {
  Event e;
  e.time = time;
  e.proc = proc;
  e.kind = kind;
  e.id = id;
  e.object = object;
  e.payload = payload;
  return e;
}

// ---- event ------------------------------------------------------------

TEST(Event, KindNamesRoundTrip) {
  for (std::uint8_t k = 0; k < kNumEventKinds; ++k) {
    const auto kind = static_cast<EventKind>(k);
    EXPECT_EQ(event_kind_from_name(event_kind_name(kind)), kind);
  }
}

TEST(Event, UnknownKindNameThrows) {
  EXPECT_THROW(event_kind_from_name("bogus"), CheckError);
}

TEST(Event, SyncKindClassification) {
  EXPECT_TRUE(is_sync_kind(EventKind::kAdvance));
  EXPECT_TRUE(is_sync_kind(EventKind::kAwaitBegin));
  EXPECT_TRUE(is_sync_kind(EventKind::kAwaitEnd));
  EXPECT_TRUE(is_sync_kind(EventKind::kLockAcquire));
  EXPECT_TRUE(is_sync_kind(EventKind::kBarrierDepart));
  EXPECT_FALSE(is_sync_kind(EventKind::kStmtEnter));
  EXPECT_FALSE(is_sync_kind(EventKind::kIterBegin));
  EXPECT_FALSE(is_sync_kind(EventKind::kProgramEnd));
}

TEST(Event, SyncKeyOrderingAndHash) {
  const SyncKey a{1, 5};
  const SyncKey b{1, 6};
  const SyncKey c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (SyncKey{1, 5}));
  SyncKeyHash h;
  EXPECT_EQ(h(a), h(SyncKey{1, 5}));
  EXPECT_NE(h(a), h(b));
}

// ---- trace container ---------------------------------------------------

TEST(Trace, AppendAndAccess) {
  Trace t({"test", 2, 1.0});
  EXPECT_TRUE(t.empty());
  t.append(make_event(10, 0, EventKind::kStmtEnter));
  t.append(make_event(20, 1, EventKind::kStmtExit));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].time, 10);
  EXPECT_EQ(t[1].proc, 1);
}

TEST(Trace, SortCanonicalIsStableOnTies) {
  Trace t({"test", 2, 1.0});
  t.append(make_event(10, 0, EventKind::kAdvance, 1));
  t.append(make_event(10, 1, EventKind::kAwaitEnd, 2));
  t.append(make_event(5, 0, EventKind::kStmtEnter, 3));
  t.sort_canonical();
  EXPECT_EQ(t[0].id, 3u);
  EXPECT_EQ(t[1].id, 1u);  // tie preserved in append order
  EXPECT_EQ(t[2].id, 2u);
  EXPECT_TRUE(t.is_time_ordered());
}

TEST(Trace, SpanAndTotalTime) {
  Trace t({"test", 1, 1.0});
  t.append(make_event(100, 0, EventKind::kProgramBegin));
  t.append(make_event(150, 0, EventKind::kStmtEnter));
  t.append(make_event(400, 0, EventKind::kProgramEnd));
  EXPECT_EQ(t.start_time(), 100);
  EXPECT_EQ(t.end_time(), 400);
  EXPECT_EQ(t.span(), 300);
  EXPECT_EQ(t.total_time(), 300);
}

TEST(Trace, TotalTimeFallsBackToSpan) {
  Trace t({"test", 1, 1.0});
  t.append(make_event(100, 0, EventKind::kStmtEnter));
  t.append(make_event(250, 0, EventKind::kStmtExit));
  EXPECT_EQ(t.total_time(), 150);
}

TEST(Trace, EmptyTraceTimesAreZero) {
  Trace t;
  EXPECT_EQ(t.start_time(), 0);
  EXPECT_EQ(t.end_time(), 0);
  EXPECT_EQ(t.total_time(), 0);
}

TEST(Trace, ByProcessorSplits) {
  Trace t({"test", 3, 1.0});
  t.append(make_event(1, 0, EventKind::kStmtEnter));
  t.append(make_event(2, 2, EventKind::kStmtEnter));
  t.append(make_event(3, 0, EventKind::kStmtExit));
  const auto parts = t.by_processor();
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(parts[1], (std::vector<std::size_t>{}));
  EXPECT_EQ(parts[2], (std::vector<std::size_t>{1}));
  EXPECT_EQ(t[parts[0][1]].kind, EventKind::kStmtExit);
}

TEST(Trace, ByProcessorRejectsOutOfRange) {
  Trace t({"test", 1, 1.0});
  t.append(make_event(1, 5, EventKind::kStmtEnter));
  EXPECT_THROW(t.by_processor(), CheckError);
}

TEST(Trace, ProcessorEventIndices) {
  Trace t({"test", 2, 1.0});
  t.append(make_event(1, 0, EventKind::kStmtEnter));
  t.append(make_event(2, 1, EventKind::kStmtEnter));
  t.append(make_event(3, 0, EventKind::kStmtExit));
  const auto idx = t.processor_events(0);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 2u);
}

TEST(Trace, MergeInterleavesByTime) {
  Trace a({"a", 1, 1.0});
  a.append(make_event(1, 0, EventKind::kStmtEnter));
  a.append(make_event(5, 0, EventKind::kStmtExit));
  Trace b({"b", 1, 1.0});
  b.append(make_event(3, 1, EventKind::kStmtEnter));
  const auto merged = Trace::merge({"m", 2, 1.0}, {a, b});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].time, 1);
  EXPECT_EQ(merged[1].time, 3);
  EXPECT_EQ(merged[2].time, 5);
  EXPECT_TRUE(merged.is_time_ordered());
}

TEST(Trace, MergeBreaksTiesByPartIndex) {
  Trace a({"a", 1, 1.0});
  a.append(make_event(7, 0, EventKind::kStmtEnter, 1));
  Trace b({"b", 1, 1.0});
  b.append(make_event(7, 1, EventKind::kStmtEnter, 2));
  const auto merged = Trace::merge({"m", 2, 1.0}, {a, b});
  EXPECT_EQ(merged[0].id, 1u);
  EXPECT_EQ(merged[1].id, 2u);
}

TEST(Trace, MergeRejectsUnsortedInput) {
  Trace a({"a", 1, 1.0});
  a.append(make_event(5, 0, EventKind::kStmtEnter));
  a.append(make_event(1, 0, EventKind::kStmtExit));
  EXPECT_THROW(Trace::merge({"m", 1, 1.0}, {a}), CheckError);
}

// ---- io ----------------------------------------------------------------

Trace sample_trace() {
  Trace t({"sample run", 2, 5.9});
  t.append(make_event(0, 0, EventKind::kProgramBegin));
  t.append(make_event(10, 0, EventKind::kStmtEnter, 3, 0, 7));
  t.append(make_event(15, 1, EventKind::kAdvance, 4, 2, 123456789));
  t.append(make_event(20, 1, EventKind::kAwaitEnd, 5, 2, -1));
  t.append(make_event(99, 0, EventKind::kProgramEnd));
  return t;
}

TEST(TraceIo, TextRoundTrip) {
  const Trace t = sample_trace();
  std::stringstream ss;
  write_text(ss, t);
  const Trace back = read_text(ss);
  EXPECT_EQ(back.info().name, t.info().name);
  EXPECT_EQ(back.info().num_procs, t.info().num_procs);
  EXPECT_DOUBLE_EQ(back.info().ticks_per_us, t.info().ticks_per_us);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(back[i], t[i]);
}

TEST(TraceIo, BinaryRoundTrip) {
  const Trace t = sample_trace();
  std::stringstream ss;
  write_binary(ss, t);
  const Trace back = read_binary(ss);
  EXPECT_EQ(back.info().name, t.info().name);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(back[i], t[i]);
}

TEST(TraceIo, TextRejectsBadHeader) {
  std::stringstream ss("not a trace\n");
  EXPECT_THROW(read_text(ss), CheckError);
}

TEST(TraceIo, TextRejectsMalformedLine) {
  std::stringstream ss("#perturb-trace v1\n#procs 1\n1 2 3\n");
  EXPECT_THROW(read_text(ss), CheckError);
}

TEST(TraceIo, TextIgnoresUnknownDirectives) {
  std::stringstream ss(
      "#perturb-trace v1\n#procs 1\n#future stuff\n5 stmt_enter 0 1 0 0\n");
  const Trace t = read_text(ss);
  EXPECT_EQ(t.size(), 1u);
}

TEST(TraceIo, BinaryRejectsBadMagic) {
  std::stringstream ss("XXXXgarbage");
  EXPECT_THROW(read_binary(ss), CheckError);
}

TEST(TraceIo, BinaryRejectsTruncation) {
  const Trace t = sample_trace();
  std::stringstream ss;
  write_binary(ss, t);
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(read_binary(truncated), CheckError);
}

TEST(TraceIo, BufferReaderMatchesStreamReader) {
  // Multi-chunk trace (crosses the 1024-event chunk boundary) read through
  // the zero-copy buffer path and the retained istream path: byte-identical
  // header fields and events.
  Trace t({"multi-chunk", 3, 2.5});
  for (int i = 0; i < 3000; ++i)
    t.append(make_event(i, static_cast<ProcId>(i % 3), EventKind::kStmtEnter,
                        static_cast<EventId>(i), static_cast<ObjectId>(i % 7),
                        i * 11));
  std::stringstream ss;
  write_binary(ss, t);
  const std::string bytes = ss.str();

  const Trace via_buffer = read_binary(bytes.data(), bytes.size());
  std::stringstream in(bytes);
  const Trace via_stream = read_binary(in);

  EXPECT_EQ(via_buffer.info().name, t.info().name);
  EXPECT_EQ(via_buffer.info().num_procs, t.info().num_procs);
  EXPECT_DOUBLE_EQ(via_buffer.info().ticks_per_us, t.info().ticks_per_us);
  ASSERT_EQ(via_buffer.size(), t.size());
  ASSERT_EQ(via_stream.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(via_buffer[i], t[i]);
    EXPECT_EQ(via_buffer[i], via_stream[i]);
  }
}

TEST(TraceIo, BufferReaderRejectsBadMagic) {
  const std::string bytes = "XXXXgarbage";
  EXPECT_THROW(read_binary(bytes.data(), bytes.size()), CheckError);
}

TEST(TraceIo, BufferReaderRejectsTruncation) {
  const Trace t = sample_trace();
  std::stringstream ss;
  write_binary(ss, t);
  std::string bytes = ss.str();
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(read_binary(bytes.data(), bytes.size()), CheckError);
}

TEST(TraceIo, BufferReaderRejectsCorruptChunk) {
  const Trace t = sample_trace();
  std::stringstream ss;
  write_binary(ss, t);
  std::string bytes = ss.str();
  bytes[bytes.size() - 10] ^= 0x40;  // rot inside the last chunk's payload
  EXPECT_THROW(read_binary(bytes.data(), bytes.size()), CheckError);
  // Salvage accepts the same image and reports the loss instead.
  SalvageReport report;
  const Trace salvaged =
      read_binary_salvage(bytes.data(), bytes.size(), report);
  EXPECT_FALSE(report.complete);
  EXPECT_LE(salvaged.size(), t.size());
  EXPECT_EQ(report.events_recovered, salvaged.size());
}

TEST(TraceIo, ArenaLoadMatchesPlainLoad) {
  Trace t({"arena", 2, 1.0});
  for (int i = 0; i < 2500; ++i)
    t.append(make_event(i, static_cast<ProcId>(i % 2), EventKind::kStmtExit,
                        static_cast<EventId>(i)));
  const std::string path = "/tmp/perturb_test_arena.bin";
  save(path, t);
  IoArena arena;
  const Trace first = load(path, arena);
  const Trace second = load(path, arena);  // reused buffer, same result
  const Trace plain = load(path);
  ASSERT_EQ(first.size(), t.size());
  ASSERT_EQ(second.size(), t.size());
  ASSERT_EQ(plain.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(first[i], t[i]);
    EXPECT_EQ(second[i], t[i]);
    EXPECT_EQ(plain[i], t[i]);
  }
  std::remove(path.c_str());
}

TEST(Trace, SortCanonicalFastPathKeepsTimeOrderedTraceIntact) {
  // Already time-ordered input takes the is_time_ordered() early return;
  // ties must keep append order exactly as the full stable sort would.
  Trace t({"ordered", 2, 1.0});
  t.append(make_event(5, 0, EventKind::kStmtEnter, 1));
  t.append(make_event(10, 0, EventKind::kAdvance, 2));
  t.append(make_event(10, 1, EventKind::kAwaitEnd, 3));
  t.append(make_event(12, 1, EventKind::kStmtExit, 4));
  t.sort_canonical();
  EXPECT_EQ(t[0].id, 1u);
  EXPECT_EQ(t[1].id, 2u);
  EXPECT_EQ(t[2].id, 3u);
  EXPECT_EQ(t[3].id, 4u);
  EXPECT_TRUE(t.is_time_ordered());
}

TEST(TraceIo, SaveToUnwritablePathThrows) {
  EXPECT_THROW(save("/nonexistent-dir/x.ptt", sample_trace()), CheckError);
  EXPECT_THROW(load("/nonexistent-dir/x.ptt"), CheckError);
}

TEST(TraceIo, SemaphoreEventsRoundTrip) {
  Trace t({"sems", 1, 1.0});
  t.append(make_event(5, 0, EventKind::kSemAcquire, 9, 4, 2));
  t.append(make_event(9, 0, EventKind::kSemRelease, 9, 4, 2));
  std::stringstream ss;
  write_text(ss, t);
  const Trace back = read_text(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], t[0]);
  EXPECT_EQ(back[1], t[1]);
}

TEST(TraceIo, FileSaveLoadByExtension) {
  const Trace t = sample_trace();
  const std::string text_path = "/tmp/perturb_test_trace.ptt";
  const std::string bin_path = "/tmp/perturb_test_trace.bin";
  save(text_path, t);
  save(bin_path, t);
  EXPECT_EQ(load(text_path).size(), t.size());
  EXPECT_EQ(load(bin_path).size(), t.size());
}

// ---- stats / compare ----------------------------------------------------

TEST(TraceStats, CountsKindsAndProcs) {
  const auto s = compute_stats(sample_trace());
  EXPECT_EQ(s.total_events, 5u);
  EXPECT_EQ(s.kind_counts[static_cast<std::size_t>(EventKind::kAdvance)], 1u);
  EXPECT_EQ(s.per_proc_events[0], 3u);
  EXPECT_EQ(s.per_proc_events[1], 2u);
  EXPECT_EQ(s.total_time, 99);
  const auto rendered = render_stats(s);
  EXPECT_NE(rendered.find("advance"), std::string::npos);
}

TEST(TraceCompare, IdenticalTracesHaveZeroError) {
  const Trace t = sample_trace();
  const auto c = compare(t, t);
  EXPECT_EQ(c.matched_events, t.size());
  EXPECT_EQ(c.unmatched_a, 0u);
  EXPECT_EQ(c.unmatched_b, 0u);
  EXPECT_DOUBLE_EQ(c.mean_abs_time_error, 0.0);
  EXPECT_DOUBLE_EQ(c.total_time_ratio, 1.0);
}

TEST(TraceCompare, TimeShiftMeasured) {
  const Trace t = sample_trace();
  Trace shifted = t;
  for (auto& e : shifted.events()) e.time += 5;
  const auto c = compare(shifted, t);
  EXPECT_EQ(c.matched_events, t.size());
  EXPECT_DOUBLE_EQ(c.mean_abs_time_error, 5.0);
  EXPECT_EQ(c.max_abs_time_error, 5);
}

TEST(TraceCompare, RepeatedEventsMatchByOrdinal) {
  Trace a({"a", 1, 1.0});
  Trace b({"b", 1, 1.0});
  // The same statement executes twice; occurrences pair up in order.
  a.append(make_event(10, 0, EventKind::kStmtEnter, 1));
  a.append(make_event(20, 0, EventKind::kStmtEnter, 1));
  b.append(make_event(11, 0, EventKind::kStmtEnter, 1));
  b.append(make_event(23, 0, EventKind::kStmtEnter, 1));
  const auto c = compare(a, b);
  EXPECT_EQ(c.matched_events, 2u);
  EXPECT_DOUBLE_EQ(c.mean_abs_time_error, 2.0);
}

TEST(TraceCompare, UnmatchedEventsCounted) {
  Trace a({"a", 1, 1.0});
  Trace b({"b", 1, 1.0});
  a.append(make_event(1, 0, EventKind::kStmtEnter, 1));
  a.append(make_event(2, 0, EventKind::kStmtEnter, 2));
  b.append(make_event(1, 0, EventKind::kStmtEnter, 1));
  b.append(make_event(2, 0, EventKind::kStmtEnter, 3));
  const auto c = compare(a, b);
  EXPECT_EQ(c.matched_events, 1u);
  EXPECT_EQ(c.unmatched_a, 1u);
  EXPECT_EQ(c.unmatched_b, 1u);
}

// Regression for the optimized comparator's packed MatchKey: boundary-valued
// ids/objects/procs/payloads must neither alias each other nor collide with
// the table's empty-slot sentinel.  The ordered-map reference implementation
// keys on the unpacked tuple, so any packing bug shows up as a disagreement.
TEST(TraceCompare, PackedKeyBoundariesAgreeWithReference) {
  constexpr EventId kMaxId = std::numeric_limits<EventId>::max();
  constexpr ObjectId kMaxObject = std::numeric_limits<ObjectId>::max();
  constexpr ProcId kMaxProc = std::numeric_limits<ProcId>::max();
  constexpr std::int64_t kMinPayload = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMaxPayload = std::numeric_limits<std::int64_t>::max();

  Trace a({"a", std::uint32_t{kMaxProc} + 1, 1.0});
  Trace b({"b", std::uint32_t{kMaxProc} + 1, 1.0});
  const auto both = [&](Tick ta, Tick tb, ProcId proc, EventKind kind,
                        EventId id, ObjectId object, std::int64_t payload) {
    a.append(make_event(ta, proc, kind, id, object, payload));
    b.append(make_event(tb, proc, kind, id, object, payload));
  };

  // All fields simultaneously at their maxima (proc_kind = 0xffffff).
  both(10, 13, kMaxProc, EventKind::kSemRelease, kMaxId, kMaxObject,
       kMaxPayload);
  // Extreme payloads with otherwise-identical identity must stay distinct.
  both(20, 20, 0, EventKind::kStmtEnter, 1, 0, kMinPayload);
  both(30, 36, 0, EventKind::kStmtEnter, 1, 0, kMaxPayload);
  // (id, object) pairs that would alias under a mis-shifted 32-bit pack.
  both(40, 41, 1, EventKind::kAdvance, 1, 2, 7);
  both(50, 53, 1, EventKind::kAdvance, 2, 1, 7);
  both(60, 60, 1, EventKind::kAdvance, 0, kMaxObject, 7);
  both(70, 79, 1, EventKind::kAdvance, 1, 0, 7);
  // (proc, kind) pairs that would alias under a mis-shifted 8-bit pack.
  both(80, 82, 1, EventKind::kStmtEnter, 5, 0, 0);
  both(90, 95, 0, EventKind::kStmtExit, 5, 0, 0);
  // Unmatched on both sides, with boundary identities.
  a.append(make_event(100, kMaxProc, EventKind::kUser, kMaxId, 0, -1));
  b.append(make_event(100, kMaxProc, EventKind::kUser, kMaxId, 1, -1));
  // Repeats of a boundary key: occurrence ordinals pair in order.
  both(110, 111, kMaxProc, EventKind::kSemRelease, kMaxId, kMaxObject,
       kMaxPayload);

  const TraceComparison fast = compare(a, b);
  const TraceComparison ref = compare_reference(a, b);
  EXPECT_EQ(fast.matched_events, ref.matched_events);
  EXPECT_EQ(fast.unmatched_a, ref.unmatched_a);
  EXPECT_EQ(fast.unmatched_b, ref.unmatched_b);
  EXPECT_EQ(fast.max_abs_time_error, ref.max_abs_time_error);
  EXPECT_DOUBLE_EQ(fast.mean_abs_time_error, ref.mean_abs_time_error);
  EXPECT_DOUBLE_EQ(fast.rms_time_error, ref.rms_time_error);
  EXPECT_DOUBLE_EQ(fast.p50_abs_time_error, ref.p50_abs_time_error);
  EXPECT_DOUBLE_EQ(fast.p95_abs_time_error, ref.p95_abs_time_error);
  EXPECT_DOUBLE_EQ(fast.total_time_ratio, ref.total_time_ratio);
  // Sanity: the boundary events genuinely participate.
  EXPECT_EQ(fast.matched_events, 10u);
  EXPECT_EQ(fast.unmatched_a, 1u);
  EXPECT_EQ(fast.unmatched_b, 1u);
}

}  // namespace
}  // namespace perturb::trace
