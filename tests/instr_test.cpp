// Tests for the instrumentation layer: plan presets, recording filters,
// deterministic jitter, mean-cost reporting, and sync-overhead calibration.
#include <gtest/gtest.h>

#include "instr/calibrate.hpp"
#include "instr/plan.hpp"
#include "sim/engine.hpp"

namespace perturb::instr {
namespace {

using trace::EventKind;

TEST(ProbeCategory, PartitionsAllKinds) {
  for (std::uint8_t k = 0; k < trace::kNumEventKinds; ++k) {
    const auto kind = static_cast<EventKind>(k);
    const auto cat = category_of(kind);
    EXPECT_TRUE(cat == ProbeCategory::kStatement ||
                cat == ProbeCategory::kSync || cat == ProbeCategory::kControl);
    if (trace::is_sync_kind(kind)) {
      EXPECT_EQ(cat, ProbeCategory::kSync);
    }
  }
}

TEST(Plan, StatementsOnlyRecordsStatementsAndMarkers) {
  const auto p = InstrumentationPlan::statements_only({100.0, 0.0}, 1);
  EXPECT_TRUE(p.records(EventKind::kStmtEnter, 1));
  EXPECT_TRUE(p.records(EventKind::kStmtExit, 1));
  EXPECT_FALSE(p.records(EventKind::kAdvance, 1));
  EXPECT_FALSE(p.records(EventKind::kAwaitBegin, 1));
  EXPECT_FALSE(p.records(EventKind::kIterBegin, 1));
  EXPECT_TRUE(p.records(EventKind::kProgramBegin, 0));
  EXPECT_TRUE(p.records(EventKind::kProgramEnd, 0));
  // Program markers cost nothing.
  EXPECT_EQ(p.mean_cost(EventKind::kProgramBegin), 0);
  EXPECT_EQ(p.mean_cost(EventKind::kStmtEnter), 100);
  EXPECT_EQ(p.mean_cost(EventKind::kAdvance), 0);
}

TEST(Plan, FullRecordsEverything) {
  const auto p = InstrumentationPlan::full({100.0, 0.0}, {50.0, 0.0},
                                           {25.0, 0.0}, 1);
  for (std::uint8_t k = 0; k < trace::kNumEventKinds; ++k)
    EXPECT_TRUE(p.records(static_cast<EventKind>(k), 1));
  EXPECT_EQ(p.mean_cost(EventKind::kStmtEnter), 100);
  EXPECT_EQ(p.mean_cost(EventKind::kAdvance), 50);
  EXPECT_EQ(p.mean_cost(EventKind::kAwaitEnd), 50);
  EXPECT_EQ(p.mean_cost(EventKind::kIterBegin), 25);
  EXPECT_EQ(p.mean_cost(EventKind::kProgramBegin), 0);
}

TEST(Plan, SyncOnlyRecordsSyncAndMarkers) {
  const auto p = InstrumentationPlan::sync_only({50.0, 0.0}, 1);
  EXPECT_FALSE(p.records(EventKind::kStmtEnter, 1));
  EXPECT_TRUE(p.records(EventKind::kAdvance, 1));
  EXPECT_TRUE(p.records(EventKind::kLockAcquire, 1));
  EXPECT_TRUE(p.records(EventKind::kProgramEnd, 0));
}

TEST(Plan, StmtExitCanBeDisabled) {
  auto p = InstrumentationPlan::statements_only({100.0, 0.0}, 1);
  p.set_record_stmt_exit(false);
  EXPECT_TRUE(p.records(EventKind::kStmtEnter, 1));
  EXPECT_FALSE(p.records(EventKind::kStmtExit, 1));
}

TEST(Plan, SiteFilterRestrictsStatements) {
  auto p = InstrumentationPlan::full({100.0, 0.0}, {50.0, 0.0}, {25.0, 0.0}, 1);
  p.set_site_filter({false, false, true});  // only site 2
  EXPECT_FALSE(p.records(EventKind::kStmtEnter, 1));
  EXPECT_TRUE(p.records(EventKind::kStmtEnter, 2));
  EXPECT_FALSE(p.records(EventKind::kStmtEnter, 3));  // beyond the vector
  // Non-statement events unaffected.
  EXPECT_TRUE(p.records(EventKind::kAdvance, 1));
}

TEST(Plan, ProbeCostWithoutJitterIsMean) {
  const auto p = InstrumentationPlan::statements_only({100.0, 0.0}, 1);
  for (std::uint64_t i = 0; i < 10; ++i)
    EXPECT_EQ(p.probe_cost(EventKind::kStmtEnter, 1, 0, i), 100);
}

TEST(Plan, JitterIsDeterministicBoundedAndVarying) {
  const auto p = InstrumentationPlan::statements_only({100.0, 0.10}, 42);
  bool varied = false;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto c = p.probe_cost(EventKind::kStmtEnter, 1, 3, i);
    EXPECT_EQ(c, p.probe_cost(EventKind::kStmtEnter, 1, 3, i));
    EXPECT_GE(c, 90);
    EXPECT_LE(c, 110);
    if (c != 100) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(Plan, JitterDependsOnSeedAndProcessor) {
  const auto p1 = InstrumentationPlan::statements_only({100.0, 0.10}, 1);
  const auto p2 = InstrumentationPlan::statements_only({100.0, 0.10}, 2);
  int differ_seed = 0;
  int differ_proc = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    differ_seed += p1.probe_cost(EventKind::kStmtEnter, 1, 0, i) !=
                           p2.probe_cost(EventKind::kStmtEnter, 1, 0, i)
                       ? 1
                       : 0;
    differ_proc += p1.probe_cost(EventKind::kStmtEnter, 1, 0, i) !=
                           p1.probe_cost(EventKind::kStmtEnter, 1, 1, i)
                       ? 1
                       : 0;
  }
  EXPECT_GT(differ_seed, 50);
  EXPECT_GT(differ_proc, 50);
}

TEST(Plan, ZeroMeanCostsNothing) {
  const auto p = InstrumentationPlan::full({0.0, 0.5}, {0.0, 0.0}, {0.0, 0.0}, 1);
  EXPECT_EQ(p.probe_cost(EventKind::kStmtEnter, 1, 0, 0), 0);
}

// ---- calibration ----------------------------------------------------------

TEST(Calibrate, RecoversMachineSyncCosts) {
  sim::MachineConfig cfg;
  cfg.advance_cost = 11;
  cfg.await_check_cost = 7;
  cfg.await_resume_cost = 13;
  const auto sync = calibrate_sync(cfg);
  EXPECT_EQ(sync.advance_op, 11);
  EXPECT_EQ(sync.await_nowait, 7);
  EXPECT_EQ(sync.await_wait, 13);
}

TEST(Calibrate, DefaultConfigIsConsistent) {
  const sim::MachineConfig cfg;
  const auto sync = calibrate_sync(cfg);
  EXPECT_EQ(sync.advance_op, cfg.advance_cost);
  EXPECT_EQ(sync.await_nowait, cfg.await_check_cost);
  EXPECT_EQ(sync.await_wait, cfg.await_resume_cost);
}

}  // namespace
}  // namespace perturb::instr
