// Unit tests for the self-observability metrics registry: handle interning,
// log2 bucketing, merge determinism across thread shards, snapshot/JSON
// stability, and the disabled-path cost contract (no allocation, no shard
// creation).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>

#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"

// ---- allocation counting ------------------------------------------------
//
// Replacing the global allocator lets DisabledModeAllocatesNothing assert
// the registry's cost model directly.  Counting is gated on a flag so the
// rest of the binary (gtest internals included) pays one relaxed load.

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_calls{0};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace perturb::support {
namespace {

/// Every test starts from a clean, enabled registry and leaves it disabled
/// (the process-wide default) so tests compose in any order.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Metrics::enable(true);
    Metrics::reset();
  }
  void TearDown() override {
    Metrics::reset();
    Metrics::enable(false);
  }
};

TEST_F(MetricsTest, CounterAccumulatesAndInternsByName) {
  const Counter a("test.counter.a");
  const Counter a_again("test.counter.a");
  a.add();
  a.add(41);
  a_again.add(100);
  const auto snap = Metrics::snapshot();
  ASSERT_TRUE(snap.counters.contains("test.counter.a"));
  EXPECT_EQ(snap.counters.at("test.counter.a"), 142u);
}

TEST_F(MetricsTest, GaugeMergesByMaxAndUnsetReadsZero) {
  const Gauge peak("test.gauge.peak");
  const Gauge untouched("test.gauge.untouched");
  peak.record_max(7);
  peak.record_max(300);
  peak.record_max(12);
  peak.record_max(-5);
  const auto snap = Metrics::snapshot();
  EXPECT_EQ(snap.gauges.at("test.gauge.peak"), 300);
  EXPECT_EQ(snap.gauges.at("test.gauge.untouched"), 0);
}

TEST_F(MetricsTest, HistogramBucketBoundaries) {
  const HistogramMetric h("test.hist.buckets");
  h.observe(0);  // zero shares bucket 0 with one
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(4);
  h.observe(std::uint64_t{1} << 40);
  const auto snap = Metrics::snapshot();
  const HistogramSnapshot& hs = snap.histograms.at("test.hist.buckets");
  EXPECT_EQ(hs.count, 6u);
  EXPECT_EQ(hs.sum, 10u + (std::uint64_t{1} << 40));
  EXPECT_EQ(hs.min, 0u);
  EXPECT_EQ(hs.max, std::uint64_t{1} << 40);
  EXPECT_EQ(hs.buckets[0], 2u);  // 0, 1
  EXPECT_EQ(hs.buckets[1], 2u);  // 2, 3
  EXPECT_EQ(hs.buckets[2], 1u);  // 4
  EXPECT_EQ(hs.buckets[40], 1u);
  std::uint64_t total = 0;
  for (const auto b : hs.buckets) total += b;
  EXPECT_EQ(total, hs.count);
}

TEST_F(MetricsTest, EmptyNameAndJsonHostileNamesRejected) {
  EXPECT_THROW(Counter(""), CheckError);
  EXPECT_THROW(Counter("bad\"quote"), CheckError);
  EXPECT_THROW(Gauge("bad\nnewline"), CheckError);
  EXPECT_THROW(HistogramMetric("bad\\slash"), CheckError);
}

// The core determinism contract: the same multiset of recorded values must
// snapshot bit-identically no matter how the work was sharded over threads.
TEST_F(MetricsTest, MergeIsDeterministicAcrossShardCounts) {
  const auto run_sharded = [](std::size_t threads) -> std::string {
    Metrics::reset();
    const Counter ticks("test.merge.ticks");
    const Counter bytes("test.merge.bytes");
    const Gauge peak("test.merge.peak");
    const HistogramMetric spans("test.merge.spans");
    TaskPool pool(threads);
    pool.parallel_for(1000, [&](std::size_t i) {
      ticks.add();
      bytes.add(i);
      peak.record_max(static_cast<std::int64_t>(i % 613));
      spans.observe(i % 97 + 1);
    });
    return Metrics::snapshot().to_json();
  };

  const std::string one = run_sharded(1);
  const std::string two = run_sharded(2);
  const std::string eight = run_sharded(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  EXPECT_NE(one.find("\"test.merge.ticks\": 1000"), std::string::npos);
  // sum over [0, 1000) = 499500
  EXPECT_NE(one.find("\"test.merge.bytes\": 499500"), std::string::npos);
  EXPECT_NE(one.find("\"test.merge.peak\": 612"), std::string::npos);
}

TEST_F(MetricsTest, SnapshotJsonIsStableAcrossIdenticalRuns) {
  const Counter c("test.stable.c");
  const HistogramMetric h("test.stable.h");
  c.add(3);
  h.observe(17);
  const std::string first = Metrics::snapshot().to_json();
  const std::string again = Metrics::snapshot().to_json();
  EXPECT_EQ(first, again);
  // Same values after a reset produce the same bytes: the key set comes from
  // registrations, the numbers from the recorded multiset.
  Metrics::reset();
  c.add(3);
  h.observe(17);
  EXPECT_EQ(Metrics::snapshot().to_json(), first);
}

TEST_F(MetricsTest, ResetZeroesValuesButKeepsRegistrations) {
  const Counter c("test.reset.c");
  c.add(9);
  Metrics::reset();
  const auto snap = Metrics::snapshot();
  ASSERT_TRUE(snap.counters.contains("test.reset.c"));
  EXPECT_EQ(snap.counters.at("test.reset.c"), 0u);
}

TEST_F(MetricsTest, PhaseTimerRecordsOneSpanWhenEnabled) {
  const HistogramMetric span("test.timer.span");
  {
    const PhaseTimer timer(span);
  }
  const auto snap = Metrics::snapshot();
  EXPECT_EQ(snap.histograms.at("test.timer.span").count, 1u);
}

TEST_F(MetricsTest, PhaseTimerArmedAtConstructionNotDestruction) {
  const HistogramMetric span("test.timer.late");
  Metrics::enable(false);
  {
    const PhaseTimer timer(span);
    Metrics::enable(true);  // too late: the timer was built disarmed
  }
  EXPECT_EQ(Metrics::snapshot().histograms.at("test.timer.late").count, 0u);
}

// The disabled path's cost contract: record operations allocate nothing and
// never create a shard.  (Handle *construction* may allocate — interning —
// which is why the handles are built before counting starts.)
TEST(MetricsDisabled, RecordPathAllocatesNothing) {
  Metrics::enable(false);
  const Counter c("test.disabled.c");
  const Gauge g("test.disabled.g");
  const HistogramMetric h("test.disabled.h");
  const std::size_t shards_before = Metrics::shard_count();

  g_alloc_calls.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    c.add(7);
    g.record_max(i);
    h.observe(static_cast<std::uint64_t>(i));
    const PhaseTimer timer(h);
  }
  g_count_allocs.store(false, std::memory_order_relaxed);

  EXPECT_EQ(g_alloc_calls.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(Metrics::shard_count(), shards_before);
}

}  // namespace
}  // namespace perturb::support
