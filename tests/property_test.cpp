// Property-based tests: invariants of perturbation analysis swept across
// workloads, processor counts, probe costs, and seeds (parameterized gtest).
//
// Invariants:
//   P1  the event-based approximation is a feasible execution (causally valid)
//   P2  its total-time error stays bounded across the sweep
//   P3  the pipeline is deterministic in the seed
//   P4  measured perturbation grows monotonically with probe cost
//   P5  removing instrumentation entirely reproduces the actual trace
//   P6  per-event approximated times are never later than measured times
#include <gtest/gtest.h>

#include <tuple>

#include "experiments/experiments.hpp"
#include "loops/kernels.hpp"
#include "trace/validate.hpp"

namespace perturb::experiments {
namespace {

using Params = std::tuple<int /*loop*/, std::uint32_t /*procs*/,
                          double /*stmt probe*/, std::uint64_t /*seed*/>;

class PipelineProperty : public ::testing::TestWithParam<Params> {
 protected:
  ::perturb::experiments::Setup setup_for(const Params& p) const {
    ::perturb::experiments::Setup s;
    s.machine.num_procs = std::get<1>(p);
    s.stmt.mean = std::get<2>(p);
    s.seed = std::get<3>(p);
    return s;
  }
};

TEST_P(PipelineProperty, ApproximationIsFeasibleAndBounded) {
  const auto& p = GetParam();
  const int loop = std::get<0>(p);
  const auto setup = setup_for(p);
  const auto run = run_concurrent_experiment(loop, 400, setup, PlanKind::kFull);

  // P1: feasibility.
  const auto violations = trace::validate(run.event_based.approx);
  EXPECT_TRUE(violations.empty()) << trace::describe(violations);

  // P2: bounded error even under order-of-magnitude perturbations.  The
  // bound is loose enough to cover near-critical configurations (chain rate
  // close to the parallel rate, e.g. loop 3 on 2 processors) where probe
  // jitter of the same magnitude as the dependence margins makes the
  // conservative approximation legitimately noisier (§4.1: conservative
  // approximations carry no error bound in general).
  EXPECT_NEAR(run.eb_quality.approx_over_actual, 1.0, 0.25)
      << "loop " << loop << " procs " << std::get<1>(p) << " probe "
      << std::get<2>(p);
}

TEST_P(PipelineProperty, DeterministicInSeed) {
  const auto& p = GetParam();
  const auto setup = setup_for(p);
  const int loop = std::get<0>(p);
  const auto a = run_concurrent_experiment(loop, 200, setup, PlanKind::kFull);
  const auto b = run_concurrent_experiment(loop, 200, setup, PlanKind::kFull);
  ASSERT_EQ(a.measured.size(), b.measured.size());
  for (std::size_t i = 0; i < a.measured.size(); ++i)
    EXPECT_EQ(a.measured[i], b.measured[i]);
  EXPECT_EQ(a.event_based.approx.total_time(),
            b.event_based.approx.total_time());
}

TEST_P(PipelineProperty, ApproximatedTimesNeverExceedMeasured) {
  const auto& p = GetParam();
  const auto setup = setup_for(p);
  const int loop = std::get<0>(p);
  const auto run = run_concurrent_experiment(loop, 200, setup, PlanKind::kFull);
  // P6: analysis only removes overhead; with nonnegative probes the
  // reconstructed run can never take longer than the measured one.
  EXPECT_LE(run.event_based.approx.total_time(), run.measured.total_time());
  EXPECT_LE(run.time_based.total_time(), run.measured.total_time());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineProperty,
    ::testing::Combine(::testing::Values(3, 4, 17),
                       ::testing::Values(2u, 4u, 8u),
                       ::testing::Values(60.0, 175.0, 400.0),
                       ::testing::Values(1991ull, 7ull)),
    [](const ::testing::TestParamInfo<Params>& param_info) {
      return "loop" + std::to_string(std::get<0>(param_info.param)) + "_p" +
             std::to_string(std::get<1>(param_info.param)) + "_c" +
             std::to_string(static_cast<int>(std::get<2>(param_info.param))) +
             "_s" + std::to_string(std::get<3>(param_info.param));
    });

// ---- P4: monotonicity in probe cost -----------------------------------------

class ProbeMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(ProbeMonotonicity, MeasuredSlowdownGrowsWithProbeCost) {
  const int loop = GetParam();
  double prev = 0.0;
  for (const double probe : {50.0, 150.0, 450.0}) {
    ::perturb::experiments::Setup setup;
    setup.stmt.mean = probe;
    const auto run =
        run_concurrent_experiment(loop, 300, setup, PlanKind::kFull);
    EXPECT_GT(run.eb_quality.measured_over_actual, prev) << "probe " << probe;
    prev = run.eb_quality.measured_over_actual;
  }
}

INSTANTIATE_TEST_SUITE_P(Loops, ProbeMonotonicity,
                         ::testing::Values(1, 3, 4, 17));

// ---- P5: zero instrumentation is the identity ----------------------------

class ZeroOverheadIdentity : public ::testing::TestWithParam<int> {};

TEST_P(ZeroOverheadIdentity, ZeroCostProbesChangeNothing) {
  const int loop = GetParam();
  ::perturb::experiments::Setup setup;
  setup.stmt = {0.0, 0.0};
  setup.sync = {0.0, 0.0};
  setup.control = {0.0, 0.0};
  const auto run = run_concurrent_experiment(loop, 300, setup, PlanKind::kFull);
  EXPECT_EQ(run.measured.total_time(), run.actual.total_time());
  EXPECT_EQ(run.event_based.approx.total_time(), run.actual.total_time());
  EXPECT_DOUBLE_EQ(run.eb_quality.measured_over_actual, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Loops, ZeroOverheadIdentity,
                         ::testing::Values(1, 3, 17));

// ---- sequential sweep -------------------------------------------------------

class SequentialProperty : public ::testing::TestWithParam<int> {};

TEST_P(SequentialProperty, TimeBasedIsAccurateSequentially) {
  const int loop = GetParam();
  ::perturb::experiments::Setup setup;
  const auto run = run_sequential_experiment(loop, 300, setup);
  EXPECT_NEAR(run.tb_quality.approx_over_actual, 1.0, 0.05) << "loop " << loop;
  EXPECT_TRUE(trace::validate(run.time_based).empty());
}

INSTANTIATE_TEST_SUITE_P(AllSequentialLoops, SequentialProperty,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace perturb::experiments
