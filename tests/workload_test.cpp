// Tests for seeded scenario synthesis (src/workload): descriptor parsing,
// bit-reproducibility of synthesized programs and full pipeline runs at any
// thread count, memo-key soundness in the experiment grid, interference-hook
// determinism, and analytic screening over workload cells.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "experiments/experiments.hpp"
#include "experiments/grid.hpp"
#include "instr/plan.hpp"
#include "sim/engine.hpp"
#include "sim/hooks.hpp"
#include "sim/ir.hpp"
#include "trace/event.hpp"
#include "workload/workload.hpp"

namespace perturb::workload {
namespace {

WorkloadSpec spec_of(Family f, std::uint64_t seed) {
  WorkloadSpec s;
  s.family = f;
  s.seed = seed;
  s.params = default_params(f);
  s.params.trip = 200;  // keep the suite fast; structure is trip-independent
  return s;
}

const std::vector<Family>& all_families() {
  static const std::vector<Family> fams = {
      Family::kPareto, Family::kLognormal, Family::kContention,
      Family::kIrregular, Family::kBursty};
  return fams;
}

experiments::Scenario cell_of(const WorkloadSpec& spec) {
  experiments::Scenario s;
  s.plan = experiments::PlanKind::kFull;
  s.workload = spec;
  return s;
}

bool traces_equal(const trace::Trace& a, const trace::Trace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a[i] == b[i])) return false;
  return true;
}

bool runs_equal(const experiments::LoopRun& a, const experiments::LoopRun& b) {
  return traces_equal(a.actual, b.actual) &&
         traces_equal(a.measured, b.measured) &&
         traces_equal(a.event_based.approx, b.event_based.approx) &&
         a.eb_quality.percent_error == b.eb_quality.percent_error;
}

TEST(ParseWorkload, AcceptsFamilySeedAndKnobs) {
  std::string error;
  const auto plain = parse_workload("pareto:7", &error);
  ASSERT_TRUE(plain.has_value()) << error;
  EXPECT_EQ(plain->family, Family::kPareto);
  EXPECT_EQ(plain->seed, 7u);
  EXPECT_EQ(plain->params.trip, default_params(Family::kPareto).trip);

  const auto knobbed = parse_workload(
      "contention:12:trip=128,stmts=6,crit=0.4,sem=0.1,cap=3,sched=block",
      &error);
  ASSERT_TRUE(knobbed.has_value()) << error;
  EXPECT_EQ(knobbed->family, Family::kContention);
  EXPECT_EQ(knobbed->seed, 12u);
  EXPECT_EQ(knobbed->params.trip, 128);
  EXPECT_EQ(knobbed->params.statements, 6);
  EXPECT_DOUBLE_EQ(knobbed->params.critical_density, 0.4);
  EXPECT_DOUBLE_EQ(knobbed->params.sem_density, 0.1);
  EXPECT_EQ(knobbed->params.sem_capacity, 3);
  EXPECT_EQ(knobbed->params.schedule, sim::Schedule::kBlock);
}

TEST(ParseWorkload, RejectsMalformedDescriptors) {
  for (const char* bad :
       {"", "pareto", "zipf:1", "pareto:notaseed", "pareto:-1", "pareto:1:",
        "pareto:1:alpha", "pareto:1:alpha=", "pareto:1:alpha=0.5",
        "pareto:1:alpha=banana", "pareto:1:tailiness=2", "pareto:1:trip=0",
        "pareto:1:trip=9999999999", "bursty:1:burst=1.5",
        "irregular:1:phases=99", "pareto:1:sched=fifo"}) {
    std::string error;
    EXPECT_FALSE(parse_workload(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(ParseWorkload, RoundTripsThroughWorkloadKey) {
  // Parsing a descriptor and re-rendering its key is stable, and any knob
  // change produces a distinct key (the grid memoization contract).
  std::string error;
  std::set<std::string> keys;
  for (const char* text :
       {"pareto:1", "pareto:2", "lognormal:1", "pareto:1:alpha=2.0",
        "pareto:1:trip=100", "pareto:1:chain=0.5", "bursty:1",
        "bursty:1:burstcy=999", "contention:1:crit=0.3",
        "contention:1:sem=0.3", "irregular:1:phases=4"}) {
    const auto spec = parse_workload(text, &error);
    ASSERT_TRUE(spec.has_value()) << text << ": " << error;
    const auto [it, inserted] = keys.insert(workload_key(*spec));
    EXPECT_TRUE(inserted) << "key collision for " << text << ": " << *it;
  }
}

TEST(Synthesis, ProgramIsAPureFunctionOfTheSpec) {
  for (const Family f : all_families()) {
    const auto spec = spec_of(f, 42);
    const sim::Program a = make_program(spec);
    const sim::Program b = make_program(spec);
    // Structural equality via the engine: identical programs produce
    // identical traces under identical machines.
    sim::MachineConfig machine;
    machine.num_procs = 4;
    const auto ta =
        sim::simulate(machine, a, sim::NullInstrumentation(), "wl-a");
    const auto tb =
        sim::simulate(machine, b, sim::NullInstrumentation(), "wl-b");
    ASSERT_EQ(ta.size(), tb.size()) << family_name(f);
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].time, tb[i].time) << family_name(f);
      EXPECT_EQ(ta[i].kind, tb[i].kind) << family_name(f);
      EXPECT_EQ(ta[i].proc, tb[i].proc) << family_name(f);
    }
  }
}

TEST(Synthesis, SeedsChangeStructureAndFamiliesDiffer) {
  // Different seeds draw different programs (statement costs at minimum),
  // and the loop features reflect per-family structure.
  const auto base = synthesize_loop(spec_of(Family::kPareto, 1));
  const auto other = synthesize_loop(spec_of(Family::kPareto, 2));
  EXPECT_NE(workload_key(spec_of(Family::kPareto, 1)),
            workload_key(spec_of(Family::kPareto, 2)));
  bool any_diff = base.pre.size() != other.pre.size() ||
                  base.guarded.size() != other.guarded.size();
  for (std::size_t i = 0; !any_diff && i < base.pre.size() &&
                          i < other.pre.size(); ++i)
    any_diff = base.pre[i].cost != other.pre[i].cost;
  EXPECT_TRUE(any_diff);

  const auto contended = spec_of(Family::kContention, 1);
  const sim::Program p = make_program(contended);
  EXPECT_GT(p.num_locks() + p.num_semaphores(), 0u);
  const auto caps = semaphore_capacities(p);
  EXPECT_EQ(caps.size(), p.num_semaphores());
  for (const auto& [id, cap] : caps) {
    EXPECT_GE(id, 1u);  // object ids are 1-based
    EXPECT_EQ(cap, contended.params.sem_capacity);
  }
}

TEST(Synthesis, InterferenceHookIsDeterministicAndAdditive) {
  const auto spec = spec_of(Family::kBursty, 9);
  ASSERT_TRUE(has_interference(spec));
  EXPECT_FALSE(has_interference(spec_of(Family::kPareto, 9)));
  const experiments::Setup setup;
  const instr::InstrumentationPlan plan = instr::InstrumentationPlan::full(
      setup.stmt, setup.sync, setup.control, setup.seed);
  const InterferenceHook hook(plan, spec);
  for (const trace::EventKind k :
       {trace::EventKind::kStmtEnter, trace::EventKind::kAdvance}) {
    EXPECT_EQ(hook.records(k, 1), plan.records(k, 1));
    std::uint64_t bursty_windows = 0;
    for (std::uint64_t idx = 0; idx < 64 * 64; ++idx) {
      const auto inner = plan.probe_cost(k, 1, 0, idx);
      const auto outer = hook.probe_cost(k, 1, 0, idx);
      EXPECT_EQ(outer, hook.probe_cost(k, 1, 0, idx));  // pure function
      EXPECT_GE(outer, inner);
      if (outer > inner) {
        EXPECT_EQ(outer - inner, spec.params.burst_cycles);
        ++bursty_windows;
      }
    }
    // Bursts hit a nonzero fraction of windows, and not all of them.
    EXPECT_GT(bursty_windows, 0u);
    EXPECT_LT(bursty_windows, 64u * 64u);
  }
}

TEST(Grid, WorkloadCellsAreThreadCountAndMemoizationInvariant) {
  std::vector<experiments::Scenario> grid;
  for (const Family f : all_families()) grid.push_back(cell_of(spec_of(f, 5)));
  // Duplicate the first cell so memoization actually shares an actual run.
  grid.push_back(cell_of(spec_of(all_families().front(), 5)));

  std::vector<experiments::LoopRun> serial;
  for (const auto& s : grid) serial.push_back(experiments::run_scenario(s));

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const bool memoize : {false, true}) {
      experiments::GridOptions options;
      options.threads = threads;
      options.memoize_actual = memoize;
      const auto runs = experiments::run_grid(grid, options);
      ASSERT_EQ(runs.size(), serial.size());
      for (std::size_t i = 0; i < runs.size(); ++i)
        EXPECT_TRUE(runs_equal(runs[i], serial[i]))
            << "cell " << i << " threads " << threads << " memoize "
            << memoize;
    }
  }
  EXPECT_TRUE(runs_equal(serial.front(), serial.back()));  // duplicate cell
}

TEST(Grid, MemoKeysKeepDistinctWorkloadsApart) {
  // Two specs that differ in one knob must not share a memoized actual run:
  // same family/seed, different alpha, run in one memoizing grid.
  auto heavy = spec_of(Family::kPareto, 3);
  heavy.params.alpha = 1.2;
  auto light = spec_of(Family::kPareto, 3);
  light.params.alpha = 8.0;
  experiments::GridOptions options;
  options.threads = 2;
  options.memoize_actual = true;
  const auto runs =
      experiments::run_grid({cell_of(heavy), cell_of(light)}, options);
  EXPECT_TRUE(
      runs_equal(runs[0], experiments::run_scenario(cell_of(heavy))));
  EXPECT_TRUE(
      runs_equal(runs[1], experiments::run_scenario(cell_of(light))));
  EXPECT_FALSE(traces_equal(runs[0].actual, runs[1].actual));
}

TEST(Grid, ScenarioNamesAndScreeningCoverWorkloads) {
  const auto cell = cell_of(spec_of(Family::kPareto, 7));
  EXPECT_EQ(experiments::scenario_name(cell), "wl-pareto-7");

  // Screening must never take the model's answer for an interference cell
  // (the hook is invisible to the closed form), and fall-through results
  // stay bit-identical to the unscreened grid.
  std::vector<experiments::Scenario> grid = {
      cell, cell_of(spec_of(Family::kBursty, 7))};
  const auto screened = experiments::run_grid_screened(grid);
  ASSERT_EQ(screened.cells.size(), grid.size());
  const auto& bursty_cell = screened.cells[1];
  EXPECT_EQ(bursty_cell.prediction.uncertainty, 1.0);
  EXPECT_FALSE(bursty_cell.screened);
  const auto unscreened = experiments::run_grid(grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!screened.cells[i].screened) {
      EXPECT_TRUE(runs_equal(screened.cells[i].run, unscreened[i]));
    }
  }
}

}  // namespace
}  // namespace perturb::workload