// Robustness suite for the perturbation-analysis daemon (src/server).
//
// What must hold, per the server's contract:
//   * overload is shed with structured kRejectedOverload replies — the
//     admission path answers immediately instead of blocking the client;
//   * a job whose deadline passes while it waits is cancelled at a pipeline
//     checkpoint and answered kDeadlineExceeded;
//   * a poisonous job (worker throws) costs exactly one structured error
//     reply; the same worker then serves healthy jobs;
//   * graceful drain finishes in-flight work, sheds what the drain budget
//     cannot cover, and answers kShuttingDown to late arrivals;
//   * replies for deadline-free jobs are bit-identical whether the daemon
//     runs 1, 2, or 8 workers (fault injection keyed on job id, not on
//     scheduling);
//   * transient faults are retried with backoff and succeed within the
//     attempt budget.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "experiments/experiments.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/socket.hpp"
#include "trace/io.hpp"

namespace perturb::server {
namespace {

using Clock = std::chrono::steady_clock;

/// Unique socket path per test (ctest runs suites in parallel processes).
std::string test_socket() {
  static std::atomic<int> counter{0};
  return "/tmp/perturb_srv_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// The shared workload image: the standard loop-17 measured trace.
const std::string& payload() {
  static const std::string image = [] {
    experiments::Setup setup;
    const auto run = experiments::run_concurrent_experiment(
        17, 200, setup, experiments::PlanKind::kFull);
    std::ostringstream out;
    trace::write_binary(out, run.measured);
    return out.str();
  }();
  return image;
}

ServerConfig base_config(const std::string& socket_path,
                         std::size_t workers) {
  ServerConfig config;
  config.socket_path = socket_path;
  config.workers = workers;
  experiments::Setup setup;
  config.pipeline.overheads = experiments::overheads_for(
      experiments::make_plan(experiments::PlanKind::kFull, setup),
      setup.machine);
  config.pipeline.machine = setup.machine;
  config.pipeline.sync_slack = 130;
  return config;
}

JobRequest job(std::uint64_t id, std::uint8_t analyzers = kMaskTimeBased) {
  JobRequest request;
  request.job_id = id;
  request.analyzers = analyzers;
  request.payload = payload();
  return request;
}

/// A job that holds a worker for roughly `samples/6600` seconds (calibrated:
/// 2000 Monte-Carlo samples of the loop-17 workload ≈ 300 ms).
JobRequest slow_job(std::uint64_t id, std::uint32_t samples) {
  JobRequest request = job(id, kMaskLikely);
  request.likely_samples = samples;
  return request;
}

TEST(Server, AnalyzesInlineTraceAndFilePath) {
  const std::string socket_path = test_socket();
  PerturbServer daemon(base_config(socket_path, 2));
  daemon.start();
  Client client(socket_path);

  const JobReply inline_reply = client.call(job(1, kMaskTimeBased | kMaskEventBased));
  EXPECT_EQ(inline_reply.status, JobStatus::kOk);
  EXPECT_EQ(inline_reply.attempts, 1u);
  EXPECT_NE(inline_reply.detail.find("analyzer=time-based"),
            std::string::npos);
  EXPECT_NE(inline_reply.detail.find("analyzer=event-based"),
            std::string::npos);

  // Path jobs load server-side through the worker's arena.
  const std::string path = test_socket() + ".trace.bin";
  {
    std::ostringstream unused;
    trace::Trace t = trace::read_binary(payload().data(), payload().size());
    trace::save(path, t);
  }
  JobRequest by_path;
  by_path.job_id = 2;
  by_path.flags = kFlagPayloadIsPath;
  by_path.payload = path;
  const JobReply path_reply = client.call(by_path);
  EXPECT_EQ(path_reply.status, JobStatus::kOk);
  EXPECT_EQ(path_reply.detail, inline_reply.detail);
  ::unlink(path.c_str());
  daemon.shutdown();
}

TEST(Server, MalformedAndEmptyPayloadsAreInvalidTraceNotCrash) {
  const std::string socket_path = test_socket();
  PerturbServer daemon(base_config(socket_path, 1));
  daemon.start();
  Client client(socket_path);

  JobRequest empty = job(1);
  empty.payload.clear();
  const JobReply empty_reply = client.call(empty);
  EXPECT_EQ(empty_reply.status, JobStatus::kInvalidTrace);
  EXPECT_NE(empty_reply.detail.find("empty trace file"), std::string::npos);

  JobRequest garbage = job(2);
  garbage.payload = "this is not a trace";
  const JobReply garbage_reply = client.call(garbage);
  EXPECT_EQ(garbage_reply.status, JobStatus::kInvalidTrace);

  // Missing file: an I/O error, structurally reported.
  JobRequest missing;
  missing.job_id = 3;
  missing.flags = kFlagPayloadIsPath;
  missing.payload = "/nonexistent/trace.bin";
  const JobReply missing_reply = client.call(missing);
  EXPECT_EQ(missing_reply.status, JobStatus::kIoError);

  // The worker survived all three; a healthy job still completes.
  EXPECT_EQ(client.call(job(4)).status, JobStatus::kOk);
  daemon.shutdown();
}

TEST(Server, BadRequestsAreRejectedStructurally) {
  const std::string socket_path = test_socket();
  PerturbServer daemon(base_config(socket_path, 1));
  daemon.start();
  Client client(socket_path);

  JobRequest no_analyzers = job(1);
  no_analyzers.analyzers = 0;
  EXPECT_EQ(client.call(no_analyzers).status, JobStatus::kBadRequest);

  JobRequest poison = job(2);
  poison.flags |= kFlagPoison;  // allow_poison is off in base_config
  EXPECT_EQ(client.call(poison).status, JobStatus::kBadRequest);

  EXPECT_EQ(client.call(job(3)).status, JobStatus::kOk);
  daemon.shutdown();
}

TEST(Server, OverloadShedsWithStructuredRejection) {
  const std::string socket_path = test_socket();
  ServerConfig config = base_config(socket_path, 1);
  config.queue_depth = 1;
  PerturbServer daemon(std::move(config));
  daemon.start();

  // Saturate the single worker and the one queue slot with two slow jobs
  // (~1.2 s each), and give them time to be admitted before probing — the
  // shed contract is about jobs arriving at a *full* server.
  std::vector<std::thread> holders;
  std::vector<JobStatus> held_status(2);
  for (int k = 0; k < 2; ++k) {
    holders.emplace_back([&, k] {
      Client holder(socket_path);
      held_status[static_cast<std::size_t>(k)] =
          holder.call(slow_job(10 + static_cast<std::uint64_t>(k), 10000))
              .status;
    });
    // Stagger: let the worker pop the first job before the second arrives,
    // so one runs and one queues (rather than racing for the queue slot).
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Worker busy + queue at cap: the probe must be rejected immediately, not
  // blocked for the >1 s the in-flight job still has to run.
  Client prober(socket_path);
  const auto start = Clock::now();
  const JobReply reply = prober.call(job(100));
  const double rejection_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          Clock::now() - start)
          .count();
  EXPECT_EQ(reply.status, JobStatus::kRejectedOverload);
  EXPECT_NE(reply.detail.find("cap"), std::string::npos) << reply.detail;
  EXPECT_LT(rejection_ms, 500.0);

  // Both slow jobs were admitted (one running, one queued) and finish fine:
  // shedding protects admitted work instead of cancelling it.
  for (auto& holder : holders) holder.join();
  for (const JobStatus status : held_status)
    EXPECT_EQ(status, JobStatus::kOk) << status_name(status);
  daemon.shutdown();
}

TEST(Server, DeadlinePassedInQueueCancelsAtCheckpoint) {
  const std::string socket_path = test_socket();
  PerturbServer daemon(base_config(socket_path, 1));
  daemon.start();

  // Hold the only worker for ~1.5 s...
  std::thread holder([&] {
    Client client(socket_path);
    EXPECT_EQ(client.call(slow_job(1, 10000)).status, JobStatus::kOk);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // ...so this job's 50 ms deadline expires while it queues; the worker
  // must cancel it at the first pipeline checkpoint.
  Client client(socket_path);
  JobRequest doomed = job(2);
  doomed.deadline_ms = 50;
  const JobReply reply = client.call(doomed);
  EXPECT_EQ(reply.status, JobStatus::kDeadlineExceeded);
  EXPECT_NE(reply.detail.find("deadline exceeded before"), std::string::npos)
      << reply.detail;
  holder.join();

  // The worker that cancelled is still healthy.
  EXPECT_EQ(client.call(job(3)).status, JobStatus::kOk);
  daemon.shutdown();
}

TEST(Server, PoisonJobCostsOneReplyNotAWorker) {
  const std::string socket_path = test_socket();
  ServerConfig config = base_config(socket_path, 1);
  config.allow_poison = true;
  PerturbServer daemon(std::move(config));
  daemon.start();
  Client client(socket_path);

  JobRequest poison = job(1);
  poison.flags |= kFlagPoison;
  const JobReply reply = client.call(poison);
  EXPECT_EQ(reply.status, JobStatus::kInternalError);
  EXPECT_NE(reply.detail.find("poison"), std::string::npos);

  // The sole worker just caught an unexpected exception; it must keep
  // serving healthy jobs.
  for (std::uint64_t id = 2; id < 6; ++id)
    EXPECT_EQ(client.call(job(id)).status, JobStatus::kOk) << id;
  daemon.shutdown();
}

TEST(Server, GracefulDrainFinishesInFlightAndRefusesNewJobs) {
  const std::string socket_path = test_socket();
  ServerConfig config = base_config(socket_path, 1);
  config.drain_timeout_ms = 30000;  // ample: the in-flight job must finish
  PerturbServer daemon(std::move(config));
  daemon.start();

  JobStatus slow_status = JobStatus::kInternalError;
  std::thread holder([&] {
    Client client(socket_path);
    slow_status = client.call(slow_job(1, 4000)).status;
  });
  // Late client connects before the drain begins; its frames during the
  // drain must get kShuttingDown.
  Client late(socket_path);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::atomic<bool> drained{false};
  std::thread drainer([&] {
    daemon.shutdown();
    drained.store(true);
  });
  // Give shutdown() a head start to flip the draining flag: a probe that
  // wins the race is admitted and then queues behind the slow job for the
  // whole drain window, leaving no frame to see kShuttingDown with.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  bool saw_shutting_down = false;
  for (std::uint64_t id = 10; id < 300 && !drained.load(); ++id) {
    JobReply reply;
    try {
      reply = late.call(job(id));
    } catch (const trace::IoError&) {
      break;  // drain tore the connection down after the grace period
    }
    if (reply.status == JobStatus::kShuttingDown) {
      saw_shutting_down = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  drainer.join();
  holder.join();
  // Graceful: the in-flight job finished despite the shutdown racing it.
  EXPECT_EQ(slow_status, JobStatus::kOk);
  EXPECT_TRUE(saw_shutting_down);
}

TEST(Server, DrainTimeoutShedsQueuedJobsAsCancelled) {
  const std::string socket_path = test_socket();
  ServerConfig config = base_config(socket_path, 1);
  config.queue_depth = 16;
  config.drain_timeout_ms = 50;  // far less than the queued work
  PerturbServer daemon(std::move(config));
  daemon.start();

  // One running job (~600 ms) plus several queued behind it.
  std::vector<std::thread> senders;
  std::vector<JobStatus> statuses(5, JobStatus::kInternalError);
  for (std::size_t k = 0; k < statuses.size(); ++k)
    senders.emplace_back([&, k] {
      Client client(socket_path);
      statuses[k] =
          client.call(slow_job(1 + static_cast<std::uint64_t>(k), 4000))
              .status;
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  daemon.shutdown();
  for (auto& sender : senders) sender.join();

  std::size_t ok = 0;
  std::size_t cancelled = 0;
  for (const JobStatus status : statuses) {
    if (status == JobStatus::kOk) ++ok;
    if (status == JobStatus::kCancelledDrain) ++cancelled;
  }
  // The drain budget (50 ms) covers at most the running job; the queue
  // behind it must be shed as kCancelledDrain, not silently dropped.
  EXPECT_GE(ok, 1u);
  EXPECT_GE(cancelled, 1u);
  EXPECT_EQ(ok + cancelled, statuses.size());
}

TEST(Server, RetryRecoversTransientFaultDeterministically) {
  // Choose a job id that faults on attempt 1 but not attempt 2 under the
  // test seed — the retry must recover it with attempts == 2.
  const std::uint64_t seed = 42;
  const double rate = 0.5;
  std::uint64_t flaky_id = 0;
  std::uint64_t stable_id = 0;
  for (std::uint64_t id = 1; id < 1000; ++id) {
    const bool first = PerturbServer::fault_fires(seed, id, 1, rate);
    const bool second = PerturbServer::fault_fires(seed, id, 2, rate);
    if (flaky_id == 0 && first && !second) flaky_id = id;
    if (stable_id == 0 && !first) stable_id = id;
    if (flaky_id != 0 && stable_id != 0) break;
  }
  ASSERT_NE(flaky_id, 0u);
  ASSERT_NE(stable_id, 0u);

  const std::string socket_path = test_socket();
  ServerConfig config = base_config(socket_path, 1);
  config.fault_seed = seed;
  config.fault_rate = rate;
  config.max_attempts = 3;
  config.retry_backoff_us = 100;
  PerturbServer daemon(std::move(config));
  daemon.start();
  Client client(socket_path);

  const JobReply flaky = client.call(job(flaky_id));
  EXPECT_EQ(flaky.status, JobStatus::kOk);
  EXPECT_EQ(flaky.attempts, 2u);

  const JobReply stable = client.call(job(stable_id));
  EXPECT_EQ(stable.status, JobStatus::kOk);
  EXPECT_EQ(stable.attempts, 1u);

  // An id that faults on every attempt within the budget fails with a
  // structured I/O error naming the attempt count.
  std::uint64_t doomed_id = 0;
  for (std::uint64_t id = 1; id < 100000; ++id)
    if (PerturbServer::fault_fires(seed, id, 1, rate) &&
        PerturbServer::fault_fires(seed, id, 2, rate) &&
        PerturbServer::fault_fires(seed, id, 3, rate)) {
      doomed_id = id;
      break;
    }
  ASSERT_NE(doomed_id, 0u);
  const JobReply doomed = client.call(job(doomed_id));
  EXPECT_EQ(doomed.status, JobStatus::kIoError);
  EXPECT_EQ(doomed.attempts, 3u);
  EXPECT_NE(doomed.detail.find("after 3 attempts"), std::string::npos);
  daemon.shutdown();
}

/// Runs the same deadline-free job mix at a given worker count and returns
/// the encoded reply bytes per job id.
std::map<std::uint64_t, std::string> replies_at(std::size_t workers) {
  const std::string socket_path = test_socket();
  ServerConfig config = base_config(socket_path, workers);
  config.fault_seed = 7;
  config.fault_rate = 0.3;  // some jobs retry — keyed on id, not scheduling
  PerturbServer daemon(std::move(config));
  daemon.start();

  std::vector<JobRequest> mix;
  for (std::uint64_t id = 1; id <= 12; ++id)
    mix.push_back(job(id, kMaskTimeBased | kMaskEventBased));
  for (std::uint64_t id = 13; id <= 16; ++id) {
    JobRequest with_likely = job(id, kMaskTimeBased | kMaskLikely);
    with_likely.likely_samples = 32;
    mix.push_back(with_likely);
  }
  {
    JobRequest malformed = job(17);
    malformed.payload = "garbage bytes, not a trace";
    mix.push_back(malformed);
    JobRequest empty = job(18);
    empty.payload.clear();
    mix.push_back(empty);
  }

  // Concurrent submission from 4 clients so multi-worker runs genuinely
  // interleave jobs across workers.
  std::mutex mutex;
  std::map<std::uint64_t, std::string> replies;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 4; ++c)
    clients.emplace_back([&, c] {
      Client client(socket_path);
      for (std::size_t k = c; k < mix.size(); k += 4) {
        const JobReply reply = client.call(mix[k]);
        const std::lock_guard<std::mutex> lock(mutex);
        replies[mix[k].job_id] = encode_reply(reply);
      }
    });
  for (auto& client : clients) client.join();
  daemon.shutdown();
  return replies;
}

TEST(Server, RepliesBitIdenticalAt1And2And8Workers) {
  const auto one = replies_at(1);
  const auto two = replies_at(2);
  const auto eight = replies_at(8);
  ASSERT_EQ(one.size(), 18u);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

// ---- chunked (streamed) jobs ---------------------------------------------

TEST(Server, ChunkedJobReplyMatchesInline) {
  const std::string socket_path = test_socket();
  PerturbServer daemon(base_config(socket_path, 2));
  daemon.start();
  Client client(socket_path);

  const JobRequest request = job(1, kMaskTimeBased | kMaskEventBased);
  const JobReply inline_reply = client.call(request);
  ASSERT_EQ(inline_reply.status, JobStatus::kOk);

  // The same trace in 4 KiB chunks: one reply, bit-identical result text.
  JobRequest chunked = request;
  chunked.job_id = 2;
  const JobReply stream_reply = client.call_stream(chunked, 4096);
  EXPECT_EQ(stream_reply.status, JobStatus::kOk);
  EXPECT_EQ(stream_reply.attempts, 1u);
  EXPECT_EQ(stream_reply.detail, inline_reply.detail);

  // Tiny chunks stress reassembly; the reply must not change.
  chunked.job_id = 3;
  const JobReply tiny_reply = client.call_stream(chunked, 101);
  EXPECT_EQ(tiny_reply.status, JobStatus::kOk);
  EXPECT_EQ(tiny_reply.detail, inline_reply.detail);
  daemon.shutdown();
}

TEST(Server, ChunkedJobDecodeFailureRepliesAtTheFailingFrame) {
  const std::string socket_path = test_socket();
  PerturbServer daemon(base_config(socket_path, 1));
  daemon.start();
  Client client(socket_path);

  // A torn image in strict mode (repair off) dies inside the reader-side
  // decode with a structured I/O error; no worker ever sees the job.
  JobRequest torn = job(10);
  torn.payload.resize(torn.payload.size() - 50);
  const JobReply strict = client.call_stream(torn, 4096);
  EXPECT_EQ(strict.status, JobStatus::kIoError);

  // With a repair mode set, the reader-side decode salvages the valid
  // prefix (the streaming analogue of acquire_file's salvage load) and the
  // job runs over it, flagged degraded.
  JobRequest salvaged = torn;
  salvaged.job_id = 11;
  salvaged.repair =
      static_cast<std::uint8_t>(core::RepairMode::kConservative);
  const JobReply repaired = client.call_stream(salvaged, 4096);
  EXPECT_EQ(repaired.status, JobStatus::kOk);
  EXPECT_NE(repaired.detail.find("salvaged=1"), std::string::npos);
  EXPECT_NE(repaired.detail.find("degraded=1"), std::string::npos);
  daemon.shutdown();
}

/// Raw-frame client for protocol-edge tests the Client API cannot express.
struct RawClient {
  Fd fd;
  explicit RawClient(const std::string& socket_path) {
    std::string error;
    fd = connect_unix(socket_path, error);
    EXPECT_TRUE(fd.valid()) << error;
  }
  void send(const JobRequest& request) {
    ASSERT_TRUE(send_frame(fd.get(), encode_request(request)));
  }
  JobReply recv() {
    std::string payload;
    EXPECT_EQ(recv_frame(fd.get(), payload), FrameResult::kOk);
    JobReply reply;
    EXPECT_TRUE(decode_reply(payload.data(), payload.size(), reply));
    return reply;
  }
};

TEST(Server, OrphanChunkIsDroppedOrphanCloseIsBadRequest) {
  const std::string socket_path = test_socket();
  PerturbServer daemon(base_config(socket_path, 1));
  daemon.start();
  RawClient raw(socket_path);

  // A CHUNK for a stream that was never opened: silently dropped (it is the
  // tail of an already-terminated stream).  The orphan CLOSE that follows is
  // answered kBadRequest — proving the CHUNK produced no reply, since
  // replies on one connection come back in order.
  JobRequest chunk;
  chunk.job_id = 77;
  chunk.flags = kFlagStreamChunk;
  chunk.payload = "some bytes";
  raw.send(chunk);
  JobRequest orphan_close = chunk;
  orphan_close.flags = kFlagStreamClose;
  orphan_close.payload.clear();
  raw.send(orphan_close);
  const JobReply reply = raw.recv();
  EXPECT_EQ(reply.job_id, 77u);
  EXPECT_EQ(reply.status, JobStatus::kBadRequest);

  // The connection survives: a normal inline job still runs.
  JobRequest healthy = job(78);
  raw.send(healthy);
  const JobReply ok = raw.recv();
  EXPECT_EQ(ok.status, JobStatus::kOk);
  daemon.shutdown();
}

TEST(Server, StreamFlagMisuseIsRejected) {
  const std::string socket_path = test_socket();
  PerturbServer daemon(base_config(socket_path, 1));
  daemon.start();
  RawClient raw(socket_path);

  // More than one stream bit on a frame.
  JobRequest both;
  both.job_id = 1;
  both.flags = kFlagStreamOpen | kFlagStreamClose;
  raw.send(both);
  EXPECT_EQ(raw.recv().status, JobStatus::kBadRequest);

  // A stream frame cannot carry a path payload.
  JobRequest path_open;
  path_open.job_id = 2;
  path_open.flags = kFlagStreamOpen | kFlagPayloadIsPath;
  path_open.payload = "/tmp/nope";
  raw.send(path_open);
  EXPECT_EQ(raw.recv().status, JobStatus::kBadRequest);

  // Opening the same job id twice is a bad request for the second OPEN.
  JobRequest open;
  open.job_id = 3;
  open.flags = kFlagStreamOpen;
  raw.send(open);
  raw.send(open);
  EXPECT_EQ(raw.recv().status, JobStatus::kBadRequest);
  daemon.shutdown();
}

TEST(Server, MidStreamOverloadShedsTheStream) {
  const std::string socket_path = test_socket();
  ServerConfig config = base_config(socket_path, 1);
  config.max_inflight_bytes = 8 * 1024;
  PerturbServer daemon(std::move(config));
  daemon.start();
  RawClient raw(socket_path);

  JobRequest open;
  open.job_id = 5;
  open.flags = kFlagStreamOpen;
  raw.send(open);

  // A chunk that blows the byte budget terminates the stream with a
  // structured rejection; its charge is refunded.
  JobRequest big;
  big.job_id = 5;
  big.flags = kFlagStreamChunk;
  big.payload.assign(16 * 1024, 'x');
  raw.send(big);
  const JobReply shed = raw.recv();
  EXPECT_EQ(shed.job_id, 5u);
  EXPECT_EQ(shed.status, JobStatus::kRejectedOverload);

  // The CLOSE behind it is now an orphan.
  JobRequest late_close;
  late_close.job_id = 5;
  late_close.flags = kFlagStreamClose;
  raw.send(late_close);
  EXPECT_EQ(raw.recv().status, JobStatus::kBadRequest);

  // The refund restored the budget: a small inline job fits again.
  JobRequest small = job(6);
  small.payload = small.payload.substr(0, 1024);  // corrupt but admitted
  raw.send(small);
  const JobReply after = raw.recv();
  EXPECT_NE(after.status, JobStatus::kRejectedOverload);
  daemon.shutdown();
}

TEST(Server, StreamDeadlineAnchorsAtOpen) {
  const std::string socket_path = test_socket();
  ServerConfig config = base_config(socket_path, 1);
  config.default_deadline_ms = 150;
  PerturbServer daemon(std::move(config));
  daemon.start();
  RawClient raw(socket_path);

  // Transfer time counts against the deadline: OPEN, dawdle past it, CLOSE.
  JobRequest open;
  open.job_id = 9;
  open.flags = kFlagStreamOpen;
  raw.send(open);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  JobRequest slow_close;
  slow_close.job_id = 9;
  slow_close.flags = kFlagStreamClose;
  slow_close.payload = payload();
  raw.send(slow_close);
  const JobReply reply = raw.recv();
  EXPECT_EQ(reply.status, JobStatus::kDeadlineExceeded);
  daemon.shutdown();
}

TEST(Server, FaultInjectionIsAPureFunctionOfSeedIdAttempt) {
  EXPECT_FALSE(PerturbServer::fault_fires(1, 1, 1, 0.0));
  EXPECT_TRUE(PerturbServer::fault_fires(1, 1, 1, 1.0));
  int fires = 0;
  const int trials = 20000;
  for (std::uint64_t id = 0; id < trials; ++id)
    fires += PerturbServer::fault_fires(99, id, 1, 0.25) ? 1 : 0;
  // Binomial(20000, 0.25): ±6 sigma ≈ ±367.
  EXPECT_NEAR(fires, trials / 4, 400);
  // Stable across calls (no hidden state).
  for (std::uint64_t id = 0; id < 100; ++id)
    EXPECT_EQ(PerturbServer::fault_fires(5, id, 2, 0.5),
              PerturbServer::fault_fires(5, id, 2, 0.5));
}

}  // namespace
}  // namespace perturb::server
