// Tests for the trace triage & repair pipeline (trace/repair.hpp) and the
// checksummed v2 binary format's salvage path (trace/io.hpp).
//
// The core contract, exercised per ViolationKind: inject a minimal instance
// of the violation with the fault library, confirm the validator flags it,
// repair, confirm the validator is clean afterwards, and confirm the
// event-based analysis completes on the repaired trace.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/eventbased.hpp"
#include "experiments/experiments.hpp"
#include "support/check.hpp"
#include "trace/faults.hpp"
#include "trace/io.hpp"
#include "trace/repair.hpp"
#include "trace/validate.hpp"

namespace perturb::trace {
namespace {

using core::event_based_approximation;

// Measured traces carry probe-cost timing noise; this slack covers it (the
// same value the fuzz tests use).
constexpr Tick kSlack = 130;

struct Fixture {
  Trace measured;
  core::AnalysisOverheads ov;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    experiments::Setup setup;
    setup.machine.num_procs = 4;
    const auto run = experiments::run_concurrent_experiment(
        3, 200, setup, experiments::PlanKind::kFull);
    const auto plan =
        experiments::make_plan(experiments::PlanKind::kFull, setup);
    return Fixture{run.measured,
                   experiments::overheads_for(plan, setup.machine)};
  }();
  return f;
}

bool has_kind(const std::vector<Violation>& violations, ViolationKind kind) {
  for (const auto& v : violations)
    if (v.kind == kind) return true;
  return false;
}

// ---- per-ViolationKind inject → flag → repair → clean → analyze ----------

class RepairPerKind : public testing::TestWithParam<ViolationKind> {};

TEST_P(RepairPerKind, InjectRepairAnalyze) {
  const ViolationKind kind = GetParam();
  const Fixture& f = fixture();
  ValidateOptions vopts;
  vopts.sync_slack = kSlack;
  ASSERT_TRUE(validate(f.measured, vopts).empty())
      << "fixture trace must start clean";

  const Trace injected = inject_violation(f.measured, kind);
  ASSERT_TRUE(has_kind(validate(injected, vopts), kind))
      << "injection failed to produce " << violation_kind_name(kind);

  RepairOptions ropts;
  ropts.sync_slack = kSlack;
  const auto result = repair(injected, ropts);
  EXPECT_NE(result.manifest.severity, RepairSeverity::kUnsalvageable)
      << render_manifest(result.manifest);
  const auto after = validate(result.repaired, vopts);
  EXPECT_TRUE(after.empty()) << describe(after);

  // The manifest must be populated: at least one action, counted passes.
  EXPECT_FALSE(result.manifest.actions.empty());
  EXPECT_GE(result.manifest.passes, 1u);
  EXPECT_NE(result.manifest.severity, RepairSeverity::kClean);

  // And the repaired trace must be analyzable end to end.
  const auto eb = event_based_approximation(result.repaired, f.ov);
  EXPECT_GT(eb.approx.size(), 0u);
  EXPECT_GT(eb.approx.total_time(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, RepairPerKind,
    testing::Values(ViolationKind::kNonMonotoneProcessorTime,
                    ViolationKind::kAwaitEndBeforeAdvance,
                    ViolationKind::kAwaitEndWithoutAdvance,
                    ViolationKind::kAwaitEndWithoutBegin,
                    ViolationKind::kDuplicateAdvance,
                    ViolationKind::kLockOverlap,
                    ViolationKind::kLockUnbalanced,
                    ViolationKind::kBarrierOrder,
                    ViolationKind::kBarrierIncomplete,
                    ViolationKind::kSemaphoreUnbalanced),
    [](const testing::TestParamInfo<ViolationKind>& param_info) {
      // gtest test names must be alphanumeric; the kind names are kebab-case.
      std::string name = violation_kind_name(param_info.param);
      std::erase_if(name, [](char c) { return !std::isalnum(
                                           static_cast<unsigned char>(c)); });
      return name;
    });

// ---- repair semantics ----------------------------------------------------

TEST(Repair, CleanTraceUntouched) {
  const Fixture& f = fixture();
  RepairOptions opts;
  opts.sync_slack = kSlack;
  const auto result = repair(f.measured, opts);
  EXPECT_EQ(result.manifest.severity, RepairSeverity::kClean);
  EXPECT_TRUE(result.manifest.actions.empty());
  EXPECT_EQ(result.repaired.size(), f.measured.size());
}

TEST(Repair, SkewedClocksAreCosmetic) {
  const Fixture& f = fixture();
  const Trace skewed = skew_timestamps(f.measured, 400, 0.05, 17);
  RepairOptions opts;
  opts.sync_slack = kSlack;
  const auto result = repair(skewed, opts);
  ASSERT_NE(result.manifest.severity, RepairSeverity::kUnsalvageable)
      << render_manifest(result.manifest);
  EXPECT_EQ(result.repaired.size(), skewed.size())
      << "clamping must not drop events";
  ValidateOptions vopts;
  vopts.sync_slack = kSlack;
  EXPECT_TRUE(validate(result.repaired, vopts).empty());
}

TEST(Repair, CompoundDamageRepairs) {
  // Several independent violation classes at once.
  const Fixture& f = fixture();
  Trace damaged = inject_violation(f.measured, ViolationKind::kLockUnbalanced);
  damaged = inject_violation(damaged, ViolationKind::kDuplicateAdvance);
  damaged = inject_violation(damaged, ViolationKind::kBarrierIncomplete);
  RepairOptions opts;
  opts.sync_slack = kSlack;
  const auto result = repair(damaged, opts);
  ASSERT_NE(result.manifest.severity, RepairSeverity::kUnsalvageable)
      << render_manifest(result.manifest);
  ValidateOptions vopts;
  vopts.sync_slack = kSlack;
  const auto after = validate(result.repaired, vopts);
  EXPECT_TRUE(after.empty()) << describe(after);
  EXPECT_GE(result.manifest.actions.size(), 3u);
}

TEST(Repair, TornCaptureRepairsLossy) {
  // A trace cut mid-run: open critical sections, half-finished barrier
  // episodes, awaits without advances.  Repair must close them all.
  const Fixture& f = fixture();
  const Trace torn = truncate_trace(f.measured, 0.6);
  RepairOptions opts;
  opts.sync_slack = kSlack;
  const auto result = repair(torn, opts);
  ASSERT_NE(result.manifest.severity, RepairSeverity::kUnsalvageable)
      << render_manifest(result.manifest);
  ValidateOptions vopts;
  vopts.sync_slack = kSlack;
  EXPECT_TRUE(validate(result.repaired, vopts).empty());
  const auto eb = event_based_approximation(result.repaired, f.ov);
  EXPECT_GT(eb.approx.size(), 0u);
}

TEST(Repair, ManifestRendersAndCounts) {
  const Fixture& f = fixture();
  const Trace injected =
      inject_violation(f.measured, ViolationKind::kSemaphoreUnbalanced);
  RepairOptions opts;
  opts.sync_slack = kSlack;
  const auto result = repair(injected, opts);
  const std::string text = render_manifest(result.manifest);
  EXPECT_NE(text.find("repair:"), std::string::npos);
  EXPECT_GT(result.manifest.events_dropped +
                result.manifest.events_synthesized +
                result.manifest.events_adjusted,
            0u);
}

// ---- v2 binary format: checksums, salvage, back-compat -------------------

std::string to_bytes(const Trace& t) {
  std::ostringstream out(std::ios::binary);
  write_binary(out, t);
  return out.str();
}

TEST(Salvage, TruncatedBinarySalvagesNonEmptyPrefix) {
  const Fixture& f = fixture();
  ASSERT_GT(f.measured.size(), 1100u) << "need >1 chunk for this test";
  const std::string whole = to_bytes(f.measured);
  // Cut inside the final chunk: the whole-chunk prefix before it survives.
  const std::string torn = truncate_bytes(whole, 0.9);

  // Strict read refuses.
  std::istringstream strict(torn, std::ios::binary);
  EXPECT_THROW(read_binary(strict), CheckError);

  // Salvage recovers the longest valid chunk prefix.
  std::istringstream in(torn, std::ios::binary);
  SalvageReport report;
  const Trace salvaged = read_binary_salvage(in, report);
  EXPECT_FALSE(report.complete);
  EXPECT_GT(salvaged.size(), 0u);
  EXPECT_LT(salvaged.size(), f.measured.size());
  EXPECT_EQ(report.events_recovered, salvaged.size());
  EXPECT_EQ(report.events_declared, f.measured.size());
  EXPECT_LT(report.chunks_recovered, report.chunks_total);
  // The prefix is bytewise-faithful: every salvaged event matches.
  for (std::size_t i = 0; i < salvaged.size(); ++i) {
    EXPECT_EQ(salvaged[i].time, f.measured[i].time);
    EXPECT_EQ(salvaged[i].kind, f.measured[i].kind);
    EXPECT_EQ(salvaged[i].proc, f.measured[i].proc);
  }
}

TEST(Salvage, IntactFileRoundTripsComplete) {
  const Fixture& f = fixture();
  std::istringstream in(to_bytes(f.measured), std::ios::binary);
  SalvageReport report;
  const Trace back = read_binary_salvage(in, report);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(back.size(), f.measured.size());
  EXPECT_EQ(back.info().name, f.measured.info().name);
}

TEST(Salvage, FlippedChunkDetectedByChecksum) {
  const Fixture& f = fixture();
  std::string bytes = to_bytes(f.measured);
  // Flip one bit well past the header, inside event payload data.
  bytes[bytes.size() - 100] =
      static_cast<char>(static_cast<unsigned char>(bytes[bytes.size() - 100]) ^
                        0x10);
  std::istringstream strict(bytes, std::ios::binary);
  EXPECT_THROW(read_binary(strict), CheckError);
  std::istringstream in(bytes, std::ios::binary);
  SalvageReport report;
  const Trace salvaged = read_binary_salvage(in, report);
  EXPECT_FALSE(report.complete);
  EXPECT_LT(salvaged.size(), f.measured.size());
  EXPECT_NE(report.detail.find("checksum"), std::string::npos)
      << report.detail;
}

namespace v1 {

// Hand-rolled legacy v1 writer (unframed, no checksums) for back-compat
// testing — matches the format the seed revision of io.cpp produced.
template <typename T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

std::string encode(const Trace& t) {
  std::ostringstream out(std::ios::binary);
  out.write("PTRC", 4);
  put<std::uint32_t>(out, 1);  // version
  put<std::uint32_t>(out, static_cast<std::uint32_t>(t.info().name.size()));
  out.write(t.info().name.data(),
            static_cast<std::streamsize>(t.info().name.size()));
  put<std::uint32_t>(out, t.info().num_procs);
  put<double>(out, t.info().ticks_per_us);
  put<std::uint64_t>(out, t.size());
  for (const auto& e : t) {
    put<Tick>(out, e.time);
    put<std::int64_t>(out, e.payload);
    put<EventId>(out, e.id);
    put<ObjectId>(out, e.object);
    put<ProcId>(out, e.proc);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(e.kind));
  }
  return out.str();
}

}  // namespace v1

TEST(Salvage, ReadsLegacyV1Transparently) {
  const Fixture& f = fixture();
  std::istringstream in(v1::encode(f.measured), std::ios::binary);
  const Trace back = read_binary(in);
  ASSERT_EQ(back.size(), f.measured.size());
  EXPECT_EQ(back.info().num_procs, f.measured.info().num_procs);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].time, f.measured[i].time);
    EXPECT_EQ(back[i].kind, f.measured[i].kind);
  }
}

TEST(Salvage, TruncatedV1SalvagesPrefix) {
  const Fixture& f = fixture();
  const std::string torn = truncate_bytes(v1::encode(f.measured), 0.5);
  std::istringstream in(torn, std::ios::binary);
  SalvageReport report;
  const Trace salvaged = read_binary_salvage(in, report);
  EXPECT_FALSE(report.complete);
  EXPECT_GT(salvaged.size(), 0u);
  EXPECT_LT(salvaged.size(), f.measured.size());
  EXPECT_EQ(report.version, 1u);
}

TEST(Salvage, AllocationBombRejectedByName) {
  // A header declaring an absurd event count must be rejected up front —
  // naming the offending field — instead of attempting the allocation.
  std::ostringstream out(std::ios::binary);
  out.write("PTRC", 4);
  v1::put<std::uint32_t>(out, 1);  // v1: the count is entirely unprotected
  v1::put<std::uint32_t>(out, 1);  // name_len
  out.write("m", 1);
  v1::put<std::uint32_t>(out, 2);    // procs
  v1::put<double>(out, 1.0);         // ticks_per_us
  v1::put<std::uint64_t>(out, 1ull << 60);  // declared count: ~30 exabytes
  std::istringstream in(out.str(), std::ios::binary);
  try {
    read_binary(in);
    FAIL() << "absurd #count must be rejected";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("#count"), std::string::npos)
        << e.what();
  }
}

TEST(Salvage, TextProcsBombRejectedByName) {
  std::istringstream in(
      "#perturb-trace v1\n#name m\n#procs 4294967295\n#ticks_per_us 1\n");
  try {
    read_text(in);
    FAIL() << "absurd #procs must be rejected";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("#procs"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace perturb::trace
