// Tests for the program IR: builders, finalization (id assignment and
// structural validation), site lookup, and the structural dump.
#include <gtest/gtest.h>

#include "sim/ir.hpp"
#include "support/check.hpp"

namespace perturb::sim {
namespace {

TEST(IndexExpr, EvaluatesAffineForm) {
  const IndexExpr e{2, -3};
  EXPECT_EQ(e.eval(0), -3);
  EXPECT_EQ(e.eval(5), 7);
  const IndexExpr identity{};
  EXPECT_EQ(identity.eval(9), 9);
}

TEST(IrBuilders, ComputeNode) {
  const auto n = compute("stmt", 42);
  EXPECT_EQ(n->kind, NodeKind::kCompute);
  EXPECT_EQ(n->cost, 42);
  EXPECT_TRUE(n->traced);
  EXPECT_FALSE(n->cost_fn);
}

TEST(IrBuilders, RawComputeIsUntraced) {
  const auto n = raw_compute("hidden", 10);
  EXPECT_FALSE(n->traced);
}

TEST(IrBuilders, ComputeFnEvaluates) {
  const auto n = compute_fn("var", [](std::int64_t i) { return i * 2; });
  ASSERT_TRUE(n->cost_fn);
  EXPECT_EQ(n->cost_fn(21), 42);
}

TEST(IrBuilders, NegativeCostRejected) {
  EXPECT_THROW(compute("bad", -1), CheckError);
  EXPECT_THROW(seq_loop("bad", -1, {}), CheckError);
}

TEST(Program, DeclareResourcesAssignsIdsFromOne) {
  Program p;
  EXPECT_EQ(p.declare_sync_var("A"), 1u);
  EXPECT_EQ(p.declare_sync_var("B"), 2u);
  EXPECT_EQ(p.declare_lock("L"), 1u);
  EXPECT_EQ(p.num_sync_vars(), 2u);
  EXPECT_EQ(p.num_locks(), 1u);
  EXPECT_EQ(p.sync_var_name(2), "B");
  EXPECT_EQ(p.lock_name(1), "L");
  EXPECT_THROW(p.sync_var_name(3), CheckError);
}

Program valid_program() {
  Program p;
  const auto var = p.declare_sync_var("S");
  const auto lock = p.declare_lock("L");
  Block body;
  body.nodes.push_back(compute("a", 5));
  body.nodes.push_back(await(var, {1, -1}));
  body.nodes.push_back(critical(lock, block(compute("c", 2))));
  body.nodes.push_back(advance(var, {1, 0}));
  p.root().nodes.push_back(compute("head", 10));
  p.root().nodes.push_back(par_loop("loop", LoopKind::kDoacross,
                                    Schedule::kCyclic, 8, std::move(body)));
  return p;
}

TEST(Program, FinalizeAssignsPreOrderIds) {
  Program p = valid_program();
  p.finalize();
  EXPECT_TRUE(p.finalized());
  // head=1, loop=2, a=3, await=4, critical=5, c=6, advance=7.
  EXPECT_EQ(p.num_sites(), 8u);
  const Node* head = p.find_site(1);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->label, "head");
  const Node* c = p.find_site(6);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->label, "c");
  EXPECT_EQ(p.find_site(99), nullptr);
}

TEST(Program, FinalizeIsIdempotent) {
  Program p = valid_program();
  p.finalize();
  const auto sites = p.num_sites();
  p.finalize();
  EXPECT_EQ(p.num_sites(), sites);
}

TEST(Program, RejectsNestedParallelLoops) {
  Program p;
  Block inner;
  inner.nodes.push_back(compute("x", 1));
  Block outer;
  outer.nodes.push_back(par_loop("inner", LoopKind::kDoall, Schedule::kCyclic,
                                 4, std::move(inner)));
  p.root().nodes.push_back(par_loop("outer", LoopKind::kDoall,
                                    Schedule::kCyclic, 4, std::move(outer)));
  EXPECT_THROW(p.finalize(), CheckError);
}

TEST(Program, RejectsSyncOutsideParallelLoop) {
  {
    Program p;
    const auto var = p.declare_sync_var("S");
    p.root().nodes.push_back(advance(var, {1, 0}));
    EXPECT_THROW(p.finalize(), CheckError);
  }
  {
    Program p;
    const auto var = p.declare_sync_var("S");
    p.root().nodes.push_back(await(var, {1, 0}));
    EXPECT_THROW(p.finalize(), CheckError);
  }
}

TEST(Program, RejectsCriticalOutsideParallelLoop) {
  Program p;
  const auto lock = p.declare_lock("L");
  p.root().nodes.push_back(critical(lock, block(compute("x", 1))));
  EXPECT_THROW(p.finalize(), CheckError);
}

TEST(Program, RejectsUndeclaredResources) {
  {
    Program p;
    Block body;
    body.nodes.push_back(advance(5, {1, 0}));  // never declared
    p.root().nodes.push_back(par_loop("l", LoopKind::kDoacross,
                                      Schedule::kCyclic, 2, std::move(body)));
    EXPECT_THROW(p.finalize(), CheckError);
  }
  {
    Program p;
    Block body;
    body.nodes.push_back(critical(9, block(compute("x", 1))));
    p.root().nodes.push_back(par_loop("l", LoopKind::kDoall, Schedule::kCyclic,
                                      2, std::move(body)));
    EXPECT_THROW(p.finalize(), CheckError);
  }
}

TEST(Program, SeqLoopInsideParLoopIsAllowed) {
  Program p;
  Block inner;
  inner.nodes.push_back(compute("x", 1));
  Block body;
  body.nodes.push_back(seq_loop("inner", 3, std::move(inner)));
  p.root().nodes.push_back(par_loop("outer", LoopKind::kDoall,
                                    Schedule::kBlock, 4, std::move(body)));
  EXPECT_NO_THROW(p.finalize());
}

TEST(Program, DumpShowsStructure) {
  Program p = valid_program();
  p.finalize();
  const auto dump = p.dump();
  EXPECT_NE(dump.find("doacross"), std::string::npos);
  EXPECT_NE(dump.find("await(S"), std::string::npos);
  EXPECT_NE(dump.find("advance(S"), std::string::npos);
  EXPECT_NE(dump.find("critical (L)"), std::string::npos);
  EXPECT_NE(dump.find("sched=cyclic"), std::string::npos);
}

TEST(Names, ScheduleAndLoopKindNames) {
  EXPECT_STREQ(schedule_name(Schedule::kCyclic), "cyclic");
  EXPECT_STREQ(schedule_name(Schedule::kBlock), "block");
  EXPECT_STREQ(schedule_name(Schedule::kSelf), "self");
  EXPECT_STREQ(loop_kind_name(LoopKind::kDoall), "doall");
  EXPECT_STREQ(loop_kind_name(LoopKind::kDoacross), "doacross");
}

}  // namespace
}  // namespace perturb::sim
