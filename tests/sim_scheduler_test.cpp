// Tests for the iteration schedulers: assignment policies, dispatch costs,
// and the self-scheduler's serialization.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/scheduler.hpp"

namespace perturb::sim {
namespace {

MachineConfig config() {
  MachineConfig cfg;
  cfg.iter_dispatch_cost = 3;
  cfg.self_sched_fetch_cost = 6;
  cfg.self_sched_serialize = 2;
  return cfg;
}

std::vector<std::int64_t> drain(IterationScheduler& s, ProcId proc, Tick now) {
  std::vector<std::int64_t> iters;
  Tick ready = 0;
  for (std::int64_t i = s.next(proc, now, &ready); i >= 0;
       i = s.next(proc, now, &ready))
    iters.push_back(i);
  return iters;
}

TEST(CyclicScheduler, AssignsStrides) {
  const auto s = make_scheduler(Schedule::kCyclic, 10, 4, config());
  EXPECT_EQ(drain(*s, 0, 0), (std::vector<std::int64_t>{0, 4, 8}));
  EXPECT_EQ(drain(*s, 1, 0), (std::vector<std::int64_t>{1, 5, 9}));
  EXPECT_EQ(drain(*s, 3, 0), (std::vector<std::int64_t>{3, 7}));
}

TEST(CyclicScheduler, DispatchCostApplied) {
  const auto s = make_scheduler(Schedule::kCyclic, 4, 2, config());
  Tick ready = 0;
  EXPECT_EQ(s->next(0, 100, &ready), 0);
  EXPECT_EQ(ready, 103);
}

TEST(CyclicScheduler, EmptyTrip) {
  const auto s = make_scheduler(Schedule::kCyclic, 0, 2, config());
  Tick ready = 0;
  EXPECT_EQ(s->next(0, 0, &ready), -1);
}

TEST(BlockScheduler, AssignsContiguousChunks) {
  const auto s = make_scheduler(Schedule::kBlock, 10, 4, config());
  EXPECT_EQ(drain(*s, 0, 0), (std::vector<std::int64_t>{0, 1, 2}));
  EXPECT_EQ(drain(*s, 1, 0), (std::vector<std::int64_t>{3, 4, 5}));
  EXPECT_EQ(drain(*s, 3, 0), (std::vector<std::int64_t>{9}));
}

TEST(BlockScheduler, CoversAllIterationsExactlyOnce) {
  const auto s = make_scheduler(Schedule::kBlock, 23, 5, config());
  std::multiset<std::int64_t> seen;
  for (ProcId p = 0; p < 5; ++p)
    for (const auto i : drain(*s, p, 0)) seen.insert(i);
  EXPECT_EQ(seen.size(), 23u);
  for (std::int64_t i = 0; i < 23; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(SelfScheduler, HandsOutInFetchOrder) {
  const auto s = make_scheduler(Schedule::kSelf, 4, 2, config());
  Tick ready = 0;
  EXPECT_EQ(s->next(1, 10, &ready), 0);  // whoever asks first gets 0
  EXPECT_EQ(s->next(0, 11, &ready), 1);
  EXPECT_EQ(s->next(1, 12, &ready), 2);
  EXPECT_EQ(s->next(0, 13, &ready), 3);
  EXPECT_EQ(s->next(0, 14, &ready), -1);
}

TEST(SelfScheduler, SerializesConcurrentFetches) {
  const auto s = make_scheduler(Schedule::kSelf, 3, 3, config());
  Tick r0 = 0;
  Tick r1 = 0;
  Tick r2 = 0;
  // Three fetches at the same instant serialize on the shared counter.
  EXPECT_EQ(s->next(0, 100, &r0), 0);
  EXPECT_EQ(s->next(1, 100, &r1), 1);
  EXPECT_EQ(s->next(2, 100, &r2), 2);
  EXPECT_EQ(r0, 106);  // grant 100 + fetch 6
  EXPECT_EQ(r1, 108);  // grant 102 + fetch 6
  EXPECT_EQ(r2, 110);  // grant 104 + fetch 6
}

TEST(SelfScheduler, LateFetchNotPenalized) {
  const auto s = make_scheduler(Schedule::kSelf, 2, 2, config());
  Tick ready = 0;
  s->next(0, 0, &ready);
  EXPECT_EQ(s->next(1, 1000, &ready), 1);
  EXPECT_EQ(ready, 1006);  // counter long free: only the fetch cost
}

}  // namespace
}  // namespace perturb::sim
