// Tests for the combined report renderer and the per-event error percentile
// metrics that feed it.
#include <gtest/gtest.h>

#include "analysis/report.hpp"
#include "experiments/experiments.hpp"
#include "trace/trace_stats.hpp"

namespace perturb::analysis {
namespace {

TEST(Report, ContainsAllSections) {
  experiments::Setup setup;
  setup.machine.num_procs = 4;
  const auto run = experiments::run_concurrent_experiment(
      17, 120, setup, experiments::PlanKind::kFull);
  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  const auto ov = experiments::overheads_for(plan, setup.machine);

  ReportOptions options;
  options.classifier.await_nowait = ov.s_nowait;
  options.classifier.lock_acquire = ov.lock_acquire;
  options.classifier.barrier_depart = ov.barrier_depart;
  options.classifier.tolerance = 2;

  const auto report =
      render_report(run.event_based.approx, &run.eb_quality, options);
  EXPECT_NE(report.find("performance report"), std::string::npos);
  EXPECT_NE(report.find("recovery:"), std::string::npos);
  EXPECT_NE(report.find("per-event |error|"), std::string::npos);
  EXPECT_NE(report.find("-- waiting --"), std::string::npos);
  EXPECT_NE(report.find("-- parallelism --"), std::string::npos);
  EXPECT_NE(report.find("-- critical path --"), std::string::npos);
}

TEST(Report, SectionsCanBeDisabled) {
  experiments::Setup setup;
  setup.machine.num_procs = 2;
  const auto run = experiments::run_concurrent_experiment(
      3, 40, setup, experiments::PlanKind::kFull);
  ReportOptions options;
  options.include_timeline = false;
  options.include_parallelism_plot = false;
  options.include_critical_path = false;
  const auto report =
      render_report(run.event_based.approx, nullptr, options);
  EXPECT_EQ(report.find("recovery:"), std::string::npos);
  EXPECT_EQ(report.find("-- critical path --"), std::string::npos);
  EXPECT_NE(report.find("-- waiting --"), std::string::npos);
}

TEST(ErrorPercentiles, OrderedAndConsistent) {
  experiments::Setup setup;
  const auto run = experiments::run_concurrent_experiment(
      17, 240, setup, experiments::PlanKind::kFull);
  const auto& q = run.eb_quality;
  EXPECT_GT(q.matched_events, 0u);
  EXPECT_LE(q.p50_event_error, q.p95_event_error);
  EXPECT_LE(q.p50_event_error, q.mean_abs_event_error * 2 + 1);
  EXPECT_GE(q.rms_event_error, q.mean_abs_event_error - 1e-9);
}

TEST(ErrorPercentiles, ZeroForIdenticalTraces) {
  experiments::Setup setup;
  const auto run = experiments::run_sequential_experiment(1, 60, setup);
  const auto cmp = trace::compare(run.actual, run.actual);
  EXPECT_DOUBLE_EQ(cmp.p50_abs_time_error, 0.0);
  EXPECT_DOUBLE_EQ(cmp.p95_abs_time_error, 0.0);
}

}  // namespace
}  // namespace perturb::analysis
