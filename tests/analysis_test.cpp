// Tests for the analysis library: waiting-time extraction, parallelism
// profiles, and the timeline/plot renderings.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/parallelism.hpp"
#include "analysis/sites.hpp"
#include "analysis/timeline.hpp"
#include "analysis/waiting.hpp"
#include "support/prng.hpp"
#include "trace/index.hpp"

namespace perturb::analysis {
namespace {

using trace::Event;
using trace::EventKind;
using trace::Trace;

Event ev(Tick t, trace::ProcId proc, EventKind k, trace::ObjectId obj = 1,
         std::int64_t payload = 0) {
  Event e;
  e.time = t;
  e.proc = proc;
  e.kind = k;
  e.object = obj;
  e.payload = payload;
  return e;
}

/// Two processors; proc 1 waits 80 ticks in an await, proc 0 never waits.
Trace waiting_trace() {
  Trace t({"t", 2, 1.0});
  t.append(ev(0, 0, EventKind::kProgramBegin, 0));
  t.append(ev(10, 1, EventKind::kAwaitBegin, 1, 5));
  t.append(ev(70, 0, EventKind::kAdvance, 1, 5));
  t.append(ev(90, 1, EventKind::kAwaitEnd, 1, 5));
  t.append(ev(100, 1, EventKind::kAwaitBegin, 1, 6));
  t.append(ev(104, 1, EventKind::kAwaitEnd, 1, 6));  // satisfied: 4 ticks
  t.append(ev(200, 0, EventKind::kProgramEnd, 0));
  return t;
}

TEST(Waiting, ClassifiesAwaitDurations) {
  WaitClassifier c;
  c.await_nowait = 4;
  c.tolerance = 1;
  const auto stats = waiting_analysis(waiting_trace(), c);
  ASSERT_EQ(stats.intervals.size(), 1u);
  EXPECT_EQ(stats.intervals[0].proc, 1);
  EXPECT_EQ(stats.intervals[0].begin, 10);
  EXPECT_EQ(stats.intervals[0].end, 90);
  EXPECT_EQ(stats.waiting_time[0], 0);
  EXPECT_EQ(stats.waiting_time[1], 80);
  EXPECT_DOUBLE_EQ(stats.waiting_percent[1], 40.0);  // 80 of 200
}

TEST(Waiting, LockWaitAttributedFromPreviousEvent) {
  Trace t({"t", 2, 1.0});
  t.append(ev(0, 1, EventKind::kStmtEnter, 0));
  t.append(ev(10, 1, EventKind::kStmtExit, 0));
  t.append(ev(100, 1, EventKind::kLockAcquire, 3));
  t.append(ev(120, 1, EventKind::kLockRelease, 3));
  WaitClassifier c;
  c.lock_acquire = 6;
  const auto stats = waiting_analysis(t, c);
  ASSERT_EQ(stats.intervals.size(), 1u);
  EXPECT_EQ(stats.intervals[0].begin, 10);
  EXPECT_EQ(stats.intervals[0].end, 100);
  EXPECT_EQ(stats.intervals[0].cause, EventKind::kLockAcquire);
}

TEST(Waiting, UncontendedLockNotCounted) {
  Trace t({"t", 1, 1.0});
  t.append(ev(0, 0, EventKind::kStmtExit, 0));
  t.append(ev(6, 0, EventKind::kLockAcquire, 3));
  WaitClassifier c;
  c.lock_acquire = 6;
  EXPECT_TRUE(waiting_analysis(t, c).intervals.empty());
}

TEST(Waiting, BarrierWaitCounted) {
  Trace t({"t", 2, 1.0});
  t.append(ev(10, 0, EventKind::kBarrierArrive, 9));
  t.append(ev(100, 1, EventKind::kBarrierArrive, 9));
  t.append(ev(110, 0, EventKind::kBarrierDepart, 9));
  t.append(ev(110, 1, EventKind::kBarrierDepart, 9));
  WaitClassifier c;
  c.barrier_depart = 10;
  const auto stats = waiting_analysis(t, c);
  // proc0 waited 100 ticks at the barrier; proc1 departed at cost.
  ASSERT_EQ(stats.intervals.size(), 1u);
  EXPECT_EQ(stats.intervals[0].proc, 0);
  EXPECT_EQ(stats.intervals[0].cause, EventKind::kBarrierDepart);
}

TEST(Waiting, RenderedTableShowsPercentages) {
  WaitClassifier c;
  c.await_nowait = 4;
  const auto stats = waiting_analysis(waiting_trace(), c);
  const auto table = render_waiting_table(stats);
  EXPECT_NE(table.find("Processor"), std::string::npos);
  EXPECT_NE(table.find("40.00%"), std::string::npos);
}

TEST(Parallelism, FullyParallelTrace) {
  Trace t({"t", 2, 1.0});
  t.append(ev(0, 0, EventKind::kStmtEnter, 0));
  t.append(ev(0, 1, EventKind::kStmtEnter, 0));
  t.append(ev(100, 0, EventKind::kStmtExit, 0));
  t.append(ev(100, 1, EventKind::kStmtExit, 0));
  const auto profile = parallelism_profile(t, {});
  EXPECT_DOUBLE_EQ(profile.average, 2.0);
  EXPECT_DOUBLE_EQ(profile.average_parallel, 2.0);
}

TEST(Parallelism, SequentialHeadAndTailExcludedFromParallelAverage) {
  Trace t({"t", 2, 1.0});
  // proc0 active [0, 300]; proc1 active only [100, 200].
  t.append(ev(0, 0, EventKind::kStmtEnter, 0));
  t.append(ev(100, 1, EventKind::kStmtEnter, 0));
  t.append(ev(200, 1, EventKind::kStmtExit, 0));
  t.append(ev(300, 0, EventKind::kStmtExit, 0));
  const auto profile = parallelism_profile(t, {});
  EXPECT_NEAR(profile.average, (100 + 200 + 100) / 300.0, 1e-9);
  EXPECT_DOUBLE_EQ(profile.average_parallel, 2.0);
  EXPECT_EQ(profile.span_begin, 0);
  EXPECT_EQ(profile.span_end, 300);
}

TEST(Parallelism, WaitingReducesLevel) {
  Trace t({"t", 2, 1.0});
  t.append(ev(0, 0, EventKind::kStmtEnter, 0));
  t.append(ev(0, 1, EventKind::kStmtEnter, 0));
  // proc1 waits [100, 200] inside an await.
  t.append(ev(100, 1, EventKind::kAwaitBegin, 1, 3));
  t.append(ev(150, 0, EventKind::kAdvance, 1, 3));
  t.append(ev(200, 1, EventKind::kAwaitEnd, 1, 3));
  t.append(ev(400, 0, EventKind::kStmtExit, 0));
  t.append(ev(400, 1, EventKind::kStmtExit, 0));
  WaitClassifier c;
  c.await_nowait = 4;
  const auto profile = parallelism_profile(t, c);
  // 400 ticks at level 2 minus 100 waiting => average 2 - 100/400.
  EXPECT_NEAR(profile.average, 1.75, 1e-9);
}

TEST(Parallelism, EmptyTrace) {
  const auto profile = parallelism_profile(Trace({"t", 2, 1.0}), {});
  EXPECT_EQ(profile.average, 0.0);
  EXPECT_TRUE(profile.steps.empty());
}

TEST(Timeline, RenderingsContainExpectedMarks) {
  WaitClassifier c;
  c.await_nowait = 4;
  const auto t = waiting_trace();
  const auto stats = waiting_analysis(t, c);
  const auto timeline = render_waiting_timeline(t, stats, 40, false);
  EXPECT_NE(timeline.find("Processor 1"), std::string::npos);
  EXPECT_NE(timeline.find('#'), std::string::npos);
  EXPECT_NE(timeline.find("Time (ticks)"), std::string::npos);

  const auto profile = parallelism_profile(t, c);
  const auto plot = render_parallelism_plot(t, profile, 40, 4, false);
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(Timeline, MicrosecondConversionUsesTraceMetadata) {
  Trace t({"t", 1, 10.0});  // 10 ticks per microsecond
  t.append(ev(0, 0, EventKind::kStmtEnter, 0));
  t.append(ev(1000, 0, EventKind::kStmtExit, 0));
  WaitingStats stats;
  stats.waiting_time.assign(1, 0);
  stats.waiting_percent.assign(1, 0.0);
  const auto timeline = render_waiting_timeline(t, stats, 40, true);
  EXPECT_NE(timeline.find("100"), std::string::npos);  // 1000 ticks = 100 us
  EXPECT_NE(timeline.find("Time (microseconds)"), std::string::npos);
}

TEST(Timeline, CsvDumps) {
  WaitClassifier c;
  c.await_nowait = 4;
  const auto t = waiting_trace();
  const auto stats = waiting_analysis(t, c);
  std::ostringstream waiting_csv;
  write_waiting_csv(waiting_csv, stats);
  EXPECT_NE(waiting_csv.str().find("proc,begin,end,cause"), std::string::npos);
  EXPECT_NE(waiting_csv.str().find("1,10,90,awaitE"), std::string::npos);

  std::ostringstream par_csv;
  write_parallelism_csv(par_csv, parallelism_profile(t, c));
  EXPECT_NE(par_csv.str().find("time,level"), std::string::npos);
}

/// A trace mentioning every site kind, with ids spanning the full uint32
/// range (statement ids live in EventId, object ids in ObjectId).
Trace all_kinds_trace() {
  Trace t({"sites", 2, 1.0});
  t.append(ev(0, 0, EventKind::kProgramBegin, 0));
  auto stmt = [&](Tick at, trace::EventId id) {
    Event e = ev(at, 0, EventKind::kStmtEnter, 0);
    e.id = id;
    t.append(e);
    e = ev(at + 1, 0, EventKind::kStmtExit, 0);
    e.id = id;
    t.append(e);
  };
  stmt(1, 1);
  stmt(3, 17);
  stmt(5, 4294967295u);  // UINT32_MAX is a legal statement id
  t.append(ev(10, 0, EventKind::kLoopBegin, 2));
  t.append(ev(11, 1, EventKind::kAwaitBegin, 3, 1));
  t.append(ev(12, 0, EventKind::kAdvance, 3, 1));
  t.append(ev(13, 1, EventKind::kAwaitEnd, 3, 1));
  t.append(ev(14, 0, EventKind::kLockAcquire, 4));
  t.append(ev(15, 0, EventKind::kLockRelease, 4));
  t.append(ev(16, 1, EventKind::kSemAcquire, 5));
  t.append(ev(17, 1, EventKind::kSemRelease, 5));
  t.append(ev(18, 0, EventKind::kBarrierArrive, 6));
  t.append(ev(19, 0, EventKind::kBarrierDepart, 6));
  t.append(ev(20, 0, EventKind::kLoopEnd, 2));
  t.append(ev(30, 0, EventKind::kProgramEnd, 0));
  return t;
}

TEST(SiteRegistry, NameParseRoundTripsEverySite) {
  const auto t = all_kinds_trace();
  const trace::TraceIndex index(t);
  const SiteRegistry sites(index);
  ASSERT_GE(sites.size(), 7u);  // 3 stmts + loop + sync + lock + sem + barrier
  for (SiteId s = 0; s < sites.size(); ++s) {
    const auto parsed = sites.parse(sites.name(s));
    ASSERT_TRUE(parsed.has_value()) << sites.name(s);
    EXPECT_EQ(*parsed, s) << sites.name(s);
  }
}

TEST(SiteRegistry, ParseRejectsOverflowAndNonCanonicalNames) {
  const auto t = all_kinds_trace();
  const SiteRegistry sites{trace::TraceIndex(t)};
  // One past UINT32_MAX: a parse failure, not a wrap onto stmt#0.
  EXPECT_FALSE(sites.parse("stmt#4294967296").has_value());
  EXPECT_FALSE(sites.parse("stmt#18446744073709551617").has_value());
  // UINT32_MAX itself is canonical, and this trace mentions it.
  const auto max_site = sites.parse("stmt#4294967295");
  ASSERT_TRUE(max_site.has_value());
  EXPECT_NE(*max_site, SiteRegistry::npos);
  // Canonical shape, region absent from the trace: npos, not nullopt.
  const auto absent = sites.parse("stmt#999");
  ASSERT_TRUE(absent.has_value());
  EXPECT_EQ(*absent, SiteRegistry::npos);
  for (const char* bad : {"", "stmt", "stmt#", "stmt#-1", "stmt#1x", "#5",
                          "stmt#01e", "mutex#1", "stmt#4 ", " stmt#4"})
    EXPECT_FALSE(sites.parse(bad).has_value()) << '"' << bad << '"';
}

TEST(SiteRegistry, FuzzedNamesNeverCrashAndRoundTripWhenCanonical) {
  const auto t = all_kinds_trace();
  const SiteRegistry sites{trace::TraceIndex(t)};
  support::Xoshiro256 rng(1991);
  const std::string alphabet = "stmlockbarrierym#0123456789 -_";
  for (int i = 0; i < 20000; ++i) {
    std::string name;
    const auto len = rng.below(12);
    for (std::uint64_t c = 0; c < len; ++c)
      name += alphabet[static_cast<std::size_t>(rng.below(alphabet.size()))];
    const auto parsed = sites.parse(name);  // must never throw or wrap
    if (parsed.has_value() && *parsed != SiteRegistry::npos) {
      // Anything that resolves must agree with the canonical name and the
      // structural lookup ("stmt#01" may resolve, but only to stmt#1).
      EXPECT_EQ(sites.parse(sites.name(*parsed)), parsed);
      EXPECT_EQ(sites.find(sites.site(*parsed)), *parsed);
    }
  }
}

}  // namespace
}  // namespace perturb::analysis
