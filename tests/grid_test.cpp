// Tests for experiments::run_grid: bit-identical results at any thread
// count, with memoization on or off, against the serial per-scenario
// drivers — including under repair modes, fault injection, and file-based
// measured traces — plus equivalence of run_grid_reference.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "experiments/grid.hpp"
#include "loops/programs.hpp"
#include "trace/faults.hpp"
#include "trace/io.hpp"

namespace perturb::experiments {
namespace {

using trace::Event;
using trace::Trace;

bool same_event(const Event& x, const Event& y) {
  return x.time == y.time && x.payload == y.payload && x.id == y.id &&
         x.object == y.object && x.proc == y.proc && x.kind == y.kind;
}

void expect_traces_identical(const Trace& a, const Trace& b,
                             const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_TRUE(same_event(a.events()[i], b.events()[i]))
        << label << " event " << i;
}

void expect_quality_identical(const core::ApproximationQuality& a,
                              const core::ApproximationQuality& b,
                              const std::string& label) {
  EXPECT_EQ(a.measured_over_actual, b.measured_over_actual) << label;
  EXPECT_EQ(a.approx_over_actual, b.approx_over_actual) << label;
  EXPECT_EQ(a.percent_error, b.percent_error) << label;
  EXPECT_EQ(a.mean_abs_event_error, b.mean_abs_event_error) << label;
  EXPECT_EQ(a.rms_event_error, b.rms_event_error) << label;
  EXPECT_EQ(a.p50_event_error, b.p50_event_error) << label;
  EXPECT_EQ(a.p95_event_error, b.p95_event_error) << label;
  EXPECT_EQ(a.matched_events, b.matched_events) << label;
  EXPECT_EQ(a.degraded_input, b.degraded_input) << label;
}

void expect_runs_identical(const LoopRun& a, const LoopRun& b,
                           const std::string& label) {
  expect_traces_identical(a.actual, b.actual, label + "/actual");
  expect_traces_identical(a.measured, b.measured, label + "/measured");
  expect_traces_identical(a.time_based, b.time_based, label + "/tb");
  expect_traces_identical(a.event_based.approx, b.event_based.approx,
                          label + "/eb");
  expect_quality_identical(a.tb_quality, b.tb_quality, label + "/tbq");
  expect_quality_identical(a.eb_quality, b.eb_quality, label + "/ebq");
}

Scenario concurrent(int loop, std::int64_t n, PlanKind plan,
                    std::uint32_t procs = 8) {
  Scenario s;
  s.loop = loop;
  s.n = n;
  s.mode = ExecMode::kConcurrent;
  s.setup.machine.num_procs = procs;
  s.plan = plan;
  return s;
}

/// A mixed grid: shared actuals (same loop under different plans), distinct
/// machines, all three execution modes.
std::vector<Scenario> mixed_grid() {
  std::vector<Scenario> grid;
  grid.push_back(concurrent(3, 120, PlanKind::kFull));
  grid.push_back(concurrent(3, 120, PlanKind::kStatementsOnly));
  grid.push_back(concurrent(3, 120, PlanKind::kSyncOnly));
  grid.push_back(concurrent(17, 100, PlanKind::kFull));
  grid.push_back(concurrent(17, 100, PlanKind::kFull, 4));
  Scenario seq;
  seq.loop = 7;
  seq.n = 150;
  seq.mode = ExecMode::kSequential;
  grid.push_back(seq);
  Scenario vec;
  vec.loop = 12;
  vec.n = 150;
  vec.mode = ExecMode::kVector;
  grid.push_back(vec);
  Scenario self_sched = concurrent(4, 120, PlanKind::kFull);
  self_sched.schedule = sim::Schedule::kSelf;
  grid.push_back(self_sched);
  return grid;
}

TEST(Grid, MatchesSerialScenarioLoop) {
  const auto grid = mixed_grid();
  const auto runs = run_grid(grid, {.threads = 1, .memoize_actual = true});
  ASSERT_EQ(runs.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i)
    expect_runs_identical(runs[i], run_scenario(grid[i]),
                          "cell " + std::to_string(i));
}

TEST(Grid, MatchesSerialExperimentDrivers) {
  const Scenario s = concurrent(17, 100, PlanKind::kFull);
  const auto grid_run = run_grid({s}, {})[0];
  experiments::Setup setup;
  setup.machine.num_procs = 8;
  const auto serial_run =
      run_concurrent_experiment(17, 100, setup, PlanKind::kFull);
  expect_runs_identical(grid_run, serial_run, "vs run_concurrent_experiment");
}

TEST(Grid, ThreadCountInvariant) {
  const auto grid = mixed_grid();
  const auto at1 = run_grid(grid, {.threads = 1, .memoize_actual = true});
  const auto at2 = run_grid(grid, {.threads = 2, .memoize_actual = true});
  const auto at8 = run_grid(grid, {.threads = 8, .memoize_actual = true});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    expect_runs_identical(at1[i], at2[i], "1v2 cell " + std::to_string(i));
    expect_runs_identical(at1[i], at8[i], "1v8 cell " + std::to_string(i));
  }
}

TEST(Grid, MemoizationInvariant) {
  const auto grid = mixed_grid();
  const auto memo = run_grid(grid, {.threads = 2, .memoize_actual = true});
  const auto no_memo = run_grid(grid, {.threads = 2, .memoize_actual = false});
  for (std::size_t i = 0; i < grid.size(); ++i)
    expect_runs_identical(memo[i], no_memo[i], "cell " + std::to_string(i));
}

TEST(Grid, RepairModesWithFaultInjection) {
  std::vector<Scenario> grid;
  for (const auto repair :
       {core::RepairMode::kConservative, core::RepairMode::kAggressive}) {
    Scenario skewed = concurrent(3, 120, PlanKind::kFull);
    skewed.repair = repair;
    skewed.mutate_measured = [](Trace& t) {
      t = trace::skew_timestamps(t, 40, 0.3, 11);
    };
    grid.push_back(skewed);
    Scenario dropped = concurrent(17, 100, PlanKind::kFull);
    dropped.repair = repair;
    dropped.mutate_measured = [](Trace& t) {
      t = trace::drop_events(t, trace::EventKind::kAdvance, 3, 5);
    };
    grid.push_back(dropped);
  }
  const auto at1 = run_grid(grid, {.threads = 1, .memoize_actual = true});
  const auto at8 = run_grid(grid, {.threads = 8, .memoize_actual = true});
  ASSERT_EQ(at1.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    expect_runs_identical(at1[i], run_scenario(grid[i]),
                          "serial cell " + std::to_string(i));
    expect_runs_identical(at1[i], at8[i], "1v8 cell " + std::to_string(i));
  }
}

TEST(Grid, MeasuredFromFileMatchesSimulated) {
  const Scenario simulated = concurrent(3, 120, PlanKind::kFull);
  // Capture the exact measured trace the simulating scenario would produce,
  // write it to disk, and feed it back through the file path.
  const auto plan = make_plan(simulated.plan, simulated.setup);
  const auto program = loops::make_concurrent_ir(simulated.loop, simulated.n);
  const auto measured = sim::simulate(simulated.setup.machine, program, plan,
                                      scenario_name(simulated) + "/measured");
  const std::string path =
      testing::TempDir() + "grid_test_measured.perturb";
  trace::save(path, measured);

  Scenario from_file = simulated;
  from_file.measured_path = path;
  const auto runs = run_grid({simulated, from_file}, {.threads = 2});
  expect_runs_identical(runs[0], runs[1], "file vs simulated");
}

TEST(Grid, ReferenceDriverIdentical) {
  std::vector<Scenario> grid;
  grid.push_back(concurrent(3, 120, PlanKind::kFull));
  grid.push_back(concurrent(17, 100, PlanKind::kStatementsOnly));
  const auto fast = run_grid(grid, {.threads = 2, .memoize_actual = true});
  const auto ref = run_grid_reference(grid);
  ASSERT_EQ(ref.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i)
    expect_runs_identical(fast[i], ref[i], "cell " + std::to_string(i));
}

TEST(Grid, EmptyGrid) {
  EXPECT_TRUE(run_grid({}, {.threads = 4}).empty());
}

}  // namespace
}  // namespace perturb::experiments
