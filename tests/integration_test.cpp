// Integration tests: the full measurement → analysis pipeline on the
// paper's workloads, asserting the qualitative results of Figure 1 and
// Tables 1–3 hold on the reproduction.
#include <gtest/gtest.h>

#include "analysis/parallelism.hpp"
#include "analysis/waiting.hpp"
#include "experiments/experiments.hpp"
#include "loops/kernels.hpp"
#include "trace/validate.hpp"

namespace perturb::experiments {
namespace {

::perturb::experiments::Setup default_setup() { return Setup{}; }

TEST(Integration, Figure1SequentialApproximationsAccurate) {
  const auto setup = default_setup();
  for (const int loop : loops::sequential_study_loops()) {
    const auto run = run_sequential_experiment(loop, 500, setup);
    // Heavy perturbation...
    EXPECT_GT(run.tb_quality.measured_over_actual, 3.0) << "loop " << loop;
    // ...but approximations within the paper's fifteen percent.
    EXPECT_NEAR(run.tb_quality.approx_over_actual, 1.0, 0.15)
        << "loop " << loop;
  }
}

TEST(Integration, Figure1SlowdownSpreadIsWide) {
  const auto setup = default_setup();
  double lo = 1e9;
  double hi = 0.0;
  for (const int loop : loops::sequential_study_loops()) {
    const auto run = run_sequential_experiment(loop, 500, setup);
    lo = std::min(lo, run.tb_quality.measured_over_actual);
    hi = std::max(hi, run.tb_quality.measured_over_actual);
  }
  EXPECT_LT(lo, 6.0);   // some loops only mildly perturbed
  EXPECT_GT(hi, 12.0);  // others an order of magnitude
}

TEST(Integration, Table1TimeBasedFailsOnDoacrossLoops) {
  const auto setup = default_setup();
  // Loops 3 and 4: under-approximation (blocking removed by probes).
  for (const int loop : {3, 4}) {
    const auto run = run_concurrent_experiment(loop, 1001, setup,
                                               PlanKind::kStatementsOnly);
    EXPECT_GT(run.tb_quality.measured_over_actual, 1.8) << "loop " << loop;
    EXPECT_LT(run.tb_quality.approx_over_actual, 0.75) << "loop " << loop;
  }
  // Loop 17: over-approximation (contention added inside the region).
  const auto run17 = run_concurrent_experiment(17, 1001, setup,
                                               PlanKind::kStatementsOnly);
  EXPECT_GT(run17.tb_quality.measured_over_actual, 5.0);
  EXPECT_GT(run17.tb_quality.approx_over_actual, 4.0);
}

TEST(Integration, Table2EventBasedRecoversDoacrossLoops) {
  const auto setup = default_setup();
  for (const int loop : loops::doacross_study_loops()) {
    const auto run =
        run_concurrent_experiment(loop, 1001, setup, PlanKind::kFull);
    // Heavier instrumentation than Table 1...
    EXPECT_GT(run.eb_quality.measured_over_actual, 2.5) << "loop " << loop;
    // ...yet within a few percent, as in Table 2.
    EXPECT_NEAR(run.eb_quality.approx_over_actual, 1.0, 0.10)
        << "loop " << loop;
  }
}

TEST(Integration, EventBasedBeatsTimeBasedOnDependentLoops) {
  const auto setup = default_setup();
  for (const int loop : loops::doacross_study_loops()) {
    const auto run =
        run_concurrent_experiment(loop, 1001, setup, PlanKind::kFull);
    const double tb_err = std::abs(run.tb_quality.percent_error);
    const double eb_err = std::abs(run.eb_quality.percent_error);
    EXPECT_LT(eb_err * 3, tb_err) << "loop " << loop;
  }
}

TEST(Integration, Table3WaitingPercentagesMatchGroundTruth) {
  const auto setup = default_setup();
  const auto run = run_concurrent_experiment(17, 1001, setup, PlanKind::kFull);
  const auto plan = make_plan(PlanKind::kFull, setup);
  const auto ov = overheads_for(plan, setup.machine);
  analysis::WaitClassifier c;
  c.await_nowait = ov.s_nowait;
  c.lock_acquire = ov.lock_acquire;
  c.barrier_depart = ov.barrier_depart;
  c.tolerance = 2;

  const auto approx = analysis::waiting_analysis(run.event_based.approx, c);
  const auto actual = analysis::waiting_analysis(run.actual, c);
  ASSERT_EQ(approx.waiting_percent.size(), 8u);
  for (std::size_t p = 0; p < 8; ++p) {
    // Paper band: a few percent of waiting per processor.
    EXPECT_GT(approx.waiting_percent[p], 0.5) << "proc " << p;
    EXPECT_LT(approx.waiting_percent[p], 15.0) << "proc " << p;
    EXPECT_NEAR(approx.waiting_percent[p], actual.waiting_percent[p], 4.0);
  }
}

TEST(Integration, Figure5AverageParallelismNearPaperValue) {
  const auto setup = default_setup();
  const auto run = run_concurrent_experiment(17, 1001, setup, PlanKind::kFull);
  const auto plan = make_plan(PlanKind::kFull, setup);
  const auto ov = overheads_for(plan, setup.machine);
  analysis::WaitClassifier c;
  c.await_nowait = ov.s_nowait;
  c.lock_acquire = ov.lock_acquire;
  c.barrier_depart = ov.barrier_depart;
  c.tolerance = 2;
  const auto profile =
      analysis::parallelism_profile(run.event_based.approx, c);
  EXPECT_NEAR(profile.average_parallel, 7.5, 0.5);  // paper: 7.5 of 8
}

TEST(Integration, OverheadsForMirrorsPlanAndCalibration) {
  const auto setup = default_setup();
  const auto plan = make_plan(PlanKind::kFull, setup);
  const auto ov = overheads_for(plan, setup.machine);
  EXPECT_EQ(ov.probe[static_cast<std::size_t>(trace::EventKind::kStmtEnter)],
            175);
  EXPECT_EQ(ov.probe[static_cast<std::size_t>(trace::EventKind::kAdvance)], 90);
  EXPECT_EQ(ov.s_nowait, setup.machine.await_check_cost);
  EXPECT_EQ(ov.s_wait, setup.machine.await_resume_cost);
}

TEST(Integration, AllTracesOfARunAreCausallyValid) {
  const auto setup = default_setup();
  const auto run = run_concurrent_experiment(17, 500, setup, PlanKind::kFull);
  EXPECT_TRUE(trace::validate(run.actual).empty());
  EXPECT_TRUE(trace::validate(run.measured).empty());
  EXPECT_TRUE(trace::validate(run.event_based.approx).empty());
}

TEST(Integration, PlanKindsProduceDifferentVolumes) {
  const auto setup = default_setup();
  const auto sync_only =
      run_concurrent_experiment(3, 200, setup, PlanKind::kSyncOnly);
  const auto stmts =
      run_concurrent_experiment(3, 200, setup, PlanKind::kStatementsOnly);
  const auto full = run_concurrent_experiment(3, 200, setup, PlanKind::kFull);
  EXPECT_LT(stmts.measured.size(), full.measured.size());
  EXPECT_LT(sync_only.measured.size(), full.measured.size());
}

}  // namespace
}  // namespace perturb::experiments
