// Tests for the likely-executions explorer (§4.1 operationalized).
#include <gtest/gtest.h>

#include "core/likely.hpp"
#include "experiments/experiments.hpp"
#include "support/check.hpp"

namespace perturb::core {
namespace {

struct Fixture {
  DoacrossShape shape;
  trace::Tick actual_loop_time = 0;
  sim::MachineConfig machine;
};

Fixture make_fixture(int loop = 17, std::int64_t n = 200) {
  experiments::Setup setup;
  const auto run = experiments::run_concurrent_experiment(
      loop, n, setup, experiments::PlanKind::kFull);
  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  const auto ov = experiments::overheads_for(plan, setup.machine);
  Fixture f;
  f.shape = extract_doacross_shape(run.measured, ov);
  f.machine = setup.machine;
  for (const auto& e : run.actual) {
    if (e.kind == trace::EventKind::kLoopBegin) f.actual_loop_time = -e.time;
    if (e.kind == trace::EventKind::kLoopEnd) f.actual_loop_time += e.time;
  }
  return f;
}

TEST(Likely, DistributionIsSortedAndSummarized) {
  const Fixture f = make_fixture();
  LikelyOptions opt;
  opt.machine = f.machine;
  opt.samples = 32;
  const auto dist = likely_executions(f.shape, opt);
  ASSERT_EQ(dist.loop_times.size(), 32u);
  EXPECT_TRUE(std::is_sorted(dist.loop_times.begin(), dist.loop_times.end()));
  EXPECT_LE(dist.min, dist.median);
  EXPECT_LE(dist.median, dist.p95);
  EXPECT_LE(dist.p95, dist.max);
}

TEST(Likely, ZeroUncertaintyCollapsesToAPoint) {
  const Fixture f = make_fixture(3, 100);
  LikelyOptions opt;
  opt.machine = f.machine;
  opt.samples = 8;
  opt.cost_uncertainty = 0.0;
  const auto dist = likely_executions(f.shape, opt);
  EXPECT_EQ(dist.min, dist.max);
}

TEST(Likely, ActualExecutionIsLikely) {
  // The actual run's loop time must fall inside (not at the extreme tails
  // of) the sampled distribution — it IS a likely execution.
  const Fixture f = make_fixture();
  LikelyOptions opt;
  opt.machine = f.machine;
  opt.samples = 64;
  opt.cost_uncertainty = 0.08;
  const auto dist = likely_executions(f.shape, opt);
  const double pct = dist.percentile_of(f.actual_loop_time);
  EXPECT_GT(pct, 0.02);
  EXPECT_LT(pct, 0.98);
}

TEST(Likely, PercentileOfExtremes) {
  const Fixture f = make_fixture(3, 100);
  LikelyOptions opt;
  opt.machine = f.machine;
  opt.samples = 16;
  const auto dist = likely_executions(f.shape, opt);
  EXPECT_DOUBLE_EQ(dist.percentile_of(dist.min - 1), 0.0);
  EXPECT_DOUBLE_EQ(dist.percentile_of(dist.max + 1), 1.0);
}

TEST(Likely, DeterministicInSeed) {
  const Fixture f = make_fixture(3, 100);
  LikelyOptions opt;
  opt.machine = f.machine;
  opt.samples = 8;
  const auto a = likely_executions(f.shape, opt);
  const auto b = likely_executions(f.shape, opt);
  EXPECT_EQ(a.loop_times, b.loop_times);
  opt.seed = 7;
  const auto c = likely_executions(f.shape, opt);
  EXPECT_NE(a.loop_times, c.loop_times);
}

TEST(Likely, RejectsBadOptions) {
  const Fixture f = make_fixture(3, 100);
  LikelyOptions opt;
  opt.machine = f.machine;
  opt.samples = 0;
  EXPECT_THROW(likely_executions(f.shape, opt), CheckError);
  opt.samples = 4;
  opt.cost_uncertainty = 1.5;
  EXPECT_THROW(likely_executions(f.shape, opt), CheckError);
}

}  // namespace
}  // namespace perturb::core
