// Tests for the analytical performance model (src/model): tick-exactness
// against the discrete-event simulator on supported shapes, steady-state
// extrapolation equivalence, uncertainty behavior on the features the closed
// form cannot capture, and determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/analytic.hpp"
#include "core/liberal.hpp"
#include "core/pipeline.hpp"
#include "experiments/grid.hpp"
#include "instr/plan.hpp"
#include "loops/programs.hpp"
#include "model/model.hpp"
#include "sim/engine.hpp"
#include "sim/ir.hpp"
#include "sim/machine.hpp"
#include "support/metrics.hpp"
#include "trace/event.hpp"

namespace perturb {
namespace {

using model::ModelOptions;
using model::Prediction;
using model::ProbeTable;
using sim::Block;
using sim::LoopKind;
using sim::MachineConfig;
using sim::Program;
using sim::Schedule;
using trace::EventKind;

ProbeTable table_of(const instr::InstrumentationPlan& plan) {
  ProbeTable t{};
  for (std::uint8_t k = 0; k < trace::kNumEventKinds; ++k)
    t[k] = plan.mean_cost(static_cast<EventKind>(k));
  return t;
}

/// A uniform-cost DOACROSS: pre / awaited chain / post around distance d.
Program make_doacross(std::int64_t trip, std::int64_t d, Schedule sched,
                      sim::Cycles pre, sim::Cycles chain, sim::Cycles post) {
  Program p;
  const auto var = p.declare_sync_var("A");
  Block body;
  if (pre > 0) body.nodes.push_back(sim::compute("pre", pre));
  body.nodes.push_back(sim::await(var, {1, -d}));
  body.nodes.push_back(sim::compute("chain", chain));
  body.nodes.push_back(sim::advance(var, {1, 0}));
  if (post > 0) body.nodes.push_back(sim::compute("post", post));
  p.root().nodes.push_back(
      sim::par_loop("doacross", LoopKind::kDoacross, sched, trip,
                    std::move(body)));
  p.finalize();
  return p;
}

Program make_doall(std::int64_t trip, Schedule sched, sim::Cycles cost) {
  Program p;
  Block body;
  body.nodes.push_back(sim::compute("work", cost));
  p.root().nodes.push_back(
      sim::par_loop("doall", LoopKind::kDoall, sched, trip, std::move(body)));
  p.finalize();
  return p;
}

void expect_exact_actual(const Program& program, const MachineConfig& machine,
                         const char* what) {
  const auto actual = sim::simulate_actual(machine, program, "actual");
  const auto pred =
      model::predict_program(program, machine, model::no_probes());
  EXPECT_EQ(pred.total, actual.total_time()) << what;
}

// ---- exactness: every Livermore kernel, every mode and schedule ----------

TEST(ModelExactness, LivermoreActualAllModes) {
  MachineConfig machine;
  for (int k = 1; k <= 24; ++k) {
    for (const std::int64_t n : {std::int64_t{1}, std::int64_t{5},
                                 std::int64_t{97}}) {
      {
        const auto p = loops::make_sequential_ir(k, n);
        expect_exact_actual(p, machine, "sequential");
      }
      {
        const auto p = loops::make_vector_ir(k, n);
        expect_exact_actual(p, machine, "vector");
      }
      for (const Schedule sched :
           {Schedule::kCyclic, Schedule::kBlock, Schedule::kSelf}) {
        const auto p = loops::make_concurrent_ir(k, n, sched);
        expect_exact_actual(p, machine, "concurrent");
      }
    }
  }
}

TEST(ModelExactness, LivermoreMeasuredZeroJitter) {
  MachineConfig machine;
  const std::uint64_t seed = 1991;
  const auto plans = {
      instr::InstrumentationPlan::statements_only({175.0, 0.0}, seed),
      instr::InstrumentationPlan::full({175.0, 0.0}, {90.0, 0.0}, {60.0, 0.0},
                                       seed),
      instr::InstrumentationPlan::sync_only({90.0, 0.0}, seed),
  };
  for (const int k : {1, 3, 4, 17}) {
    for (const auto& plan : plans) {
      const ProbeTable probes = table_of(plan);
      for (const Schedule sched :
           {Schedule::kCyclic, Schedule::kBlock, Schedule::kSelf}) {
        const auto p = loops::make_concurrent_ir(k, 64, sched);
        const auto measured = sim::simulate(machine, p, plan, "measured");
        const auto pred = model::predict_program(p, machine, probes);
        EXPECT_EQ(pred.total, measured.total_time())
            << "loop " << k << " sched " << static_cast<int>(sched);
      }
    }
  }
}

// ---- property: uniform-cost DOALL / DOACROSS are exact -------------------

TEST(ModelExactness, UniformDoallAllSchedules) {
  MachineConfig machine;
  for (const Schedule sched :
       {Schedule::kCyclic, Schedule::kBlock, Schedule::kSelf}) {
    for (const std::int64_t trip : {std::int64_t{1}, std::int64_t{7},
                                    std::int64_t{8}, std::int64_t{64},
                                    std::int64_t{1000}}) {
      const auto p = make_doall(trip, sched, 120);
      expect_exact_actual(p, machine, "uniform doall");
    }
  }
}

TEST(ModelExactness, UniformDoacrossDistancesAndSchedules) {
  MachineConfig machine;
  for (const Schedule sched :
       {Schedule::kCyclic, Schedule::kBlock, Schedule::kSelf}) {
    for (const std::int64_t d : {std::int64_t{1}, std::int64_t{3}}) {
      for (const std::int64_t trip : {std::int64_t{1}, std::int64_t{7},
                                      std::int64_t{8}, std::int64_t{64},
                                      std::int64_t{1000}}) {
        // Both a serialized chain (chain dominates) and a parallel one.
        for (const sim::Cycles chain : {sim::Cycles{400}, sim::Cycles{5}}) {
          const auto p = make_doacross(trip, d, sched, 50, chain, 20);
          expect_exact_actual(p, machine, "uniform doacross");
        }
      }
    }
  }
}

TEST(ModelExactness, DoacrossUnderProbesZeroJitter) {
  MachineConfig machine;
  const auto plan = instr::InstrumentationPlan::full({150.0, 0.0}, {80.0, 0.0},
                                                     {40.0, 0.0}, 7);
  const ProbeTable probes = table_of(plan);
  for (const Schedule sched :
       {Schedule::kCyclic, Schedule::kBlock, Schedule::kSelf}) {
    const auto p = make_doacross(200, 1, sched, 60, 30, 10);
    const auto measured = sim::simulate(machine, p, plan, "measured");
    const auto pred = model::predict_program(p, machine, probes);
    EXPECT_EQ(pred.total, measured.total_time());
  }
}

// ---- steady-state extrapolation ------------------------------------------

TEST(ModelExtrapolation, MatchesUnrolledRecurrenceAndSimulator) {
  MachineConfig machine;
  ModelOptions unrolled;
  unrolled.extrapolate = false;
  for (const std::int64_t d : {std::int64_t{1}, std::int64_t{3}}) {
    for (const std::int64_t trip :
         {std::int64_t{64}, std::int64_t{1001}, std::int64_t{5000}}) {
      for (const sim::Cycles chain : {sim::Cycles{400}, sim::Cycles{5}}) {
        const auto p =
            make_doacross(trip, d, Schedule::kCyclic, 50, chain, 20);
        const auto fast =
            model::predict_program(p, machine, model::no_probes());
        const auto slow =
            model::predict_program(p, machine, model::no_probes(), unrolled);
        EXPECT_EQ(fast.total, slow.total) << "trip " << trip << " d " << d;
        expect_exact_actual(p, machine, "extrapolated doacross");
      }
    }
  }
}

TEST(ModelExtrapolation, LivermoreLongTrips) {
  MachineConfig machine;
  ModelOptions unrolled;
  unrolled.extrapolate = false;
  for (const int k : {3, 4, 17}) {
    const auto p = loops::make_concurrent_ir(k, 4000, Schedule::kCyclic);
    const auto fast = model::predict_program(p, machine, model::no_probes());
    const auto slow =
        model::predict_program(p, machine, model::no_probes(), unrolled);
    EXPECT_EQ(fast.total, slow.total) << "loop " << k;
  }
}

// ---- uncertainty features ------------------------------------------------

TEST(ModelUncertainty, ExactShapesAreConfident) {
  MachineConfig machine;
  const auto doall = make_doall(200, Schedule::kCyclic, 100);
  const auto pa = model::predict_program(doall, machine, model::no_probes());
  EXPECT_DOUBLE_EQ(pa.uncertainty, 0.0);
  EXPECT_TRUE(pa.caveats.empty());

  // A clearly serialized chain sits far from the rho = 1 boundary.
  const auto ser = make_doacross(200, 1, Schedule::kCyclic, 10, 500, 0);
  const auto ps = model::predict_program(ser, machine, model::no_probes());
  EXPECT_LT(ps.uncertainty, 0.25);
}

TEST(ModelUncertainty, MarginalChainRaisesUncertainty) {
  MachineConfig machine;
  // Tune the chain so P * serial ~= per-iteration work (rho near 1).
  // serial = resume 8 + chain + advance 6; per-iter = dispatch 3 + pre +
  // check 4 + chain + advance 6.  With chain = 20, serial = 34; rho = 1 at
  // pre = 8*34 - 33 = 239.
  const auto p = make_doacross(200, 1, Schedule::kCyclic, 239, 20, 0);
  const auto pred = model::predict_program(p, machine, model::no_probes());
  EXPECT_GT(pred.uncertainty, 0.3);
  EXPECT_FALSE(pred.caveats.empty());
}

TEST(ModelUncertainty, ProbeJitterFeedsUncertainty) {
  MachineConfig machine;
  const auto p = make_doall(100, Schedule::kCyclic, 100);
  ModelOptions opt;
  opt.probe_jitter = 0.05;
  const auto pred =
      model::predict_program(p, machine, model::no_probes(), opt);
  EXPECT_NEAR(pred.uncertainty, 0.06, 1e-9);
  ASSERT_EQ(pred.caveats.size(), 1u);
}

TEST(ModelUncertainty, SelfScheduleJitterSensitive) {
  MachineConfig machine;
  const auto p = make_doall(100, Schedule::kSelf, 100);
  ModelOptions opt;
  opt.probe_jitter = 0.05;
  const auto pred =
      model::predict_program(p, machine, model::no_probes(), opt);
  EXPECT_GT(pred.uncertainty, 0.3);
}

TEST(ModelUncertainty, CriticalSectionBoundedNotReplayed) {
  MachineConfig machine;
  Program p;
  const auto lock = p.declare_lock("L");
  Block inner;
  inner.nodes.push_back(sim::compute("update", 80));
  Block body;
  body.nodes.push_back(sim::compute("work", 100));
  body.nodes.push_back(sim::critical(lock, std::move(inner)));
  p.root().nodes.push_back(sim::par_loop("locked", LoopKind::kDoall,
                                         Schedule::kCyclic, 200,
                                         std::move(body)));
  p.finalize();

  const auto actual = sim::simulate_actual(machine, p, "actual");
  const auto pred = model::predict_program(p, machine, model::no_probes());
  EXPECT_GT(pred.uncertainty, 0.3);
  EXPECT_FALSE(pred.caveats.empty());
  // The serialization bound must not undershoot the real contended run by
  // more than the busy-period approximation allows; sanity-band it.
  EXPECT_GT(pred.total, actual.total_time() / 2);
  EXPECT_LT(pred.total, actual.total_time() * 2);
}

TEST(ModelUncertainty, UnsupportedShapeFallsBack) {
  MachineConfig machine;
  Program p;
  const auto var = p.declare_sync_var("A");
  Block body;
  body.nodes.push_back(sim::await(var, {1, -1}));
  body.nodes.push_back(sim::await(var, {1, -2}));  // second await: fallback
  body.nodes.push_back(sim::compute("work", 50));
  body.nodes.push_back(sim::advance(var, {1, 0}));
  p.root().nodes.push_back(sim::par_loop("odd", LoopKind::kDoacross,
                                         Schedule::kCyclic, 50,
                                         std::move(body)));
  p.finalize();
  const auto pred = model::predict_program(p, machine, model::no_probes());
  EXPECT_GE(pred.uncertainty, 0.9);
  EXPECT_FALSE(pred.caveats.empty());
}

// ---- determinism ---------------------------------------------------------

TEST(ModelDeterminism, RepeatedPredictionsBitIdentical) {
  MachineConfig machine;
  const auto plan = instr::InstrumentationPlan::full({175.0, 0.05}, {90.0, 0.05},
                                                     {60.0, 0.05}, 1991);
  const ProbeTable probes = table_of(plan);
  ModelOptions opt;
  opt.probe_jitter = 0.05;
  for (const int k : {3, 17}) {
    const auto p = loops::make_concurrent_ir(k, 500, Schedule::kCyclic);
    const auto a = model::predict_program(p, machine, probes, opt);
    const auto b = model::predict_program(p, machine, probes, opt);
    EXPECT_EQ(a.total, b.total);
    EXPECT_EQ(a.uncertainty, b.uncertainty);
    EXPECT_EQ(a.caveats, b.caveats);
  }
}

// ---- the analytic analyzer vs the liberal re-simulation ------------------

TEST(AnalyticAnalyzer, BitIdenticalToLiberalLoopTime) {
  experiments::Setup setup;
  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  const auto overheads = experiments::overheads_for(plan, setup.machine);
  for (const int k : {3, 4, 17}) {
    const auto program = loops::make_concurrent_ir(k, 300, Schedule::kCyclic);
    const auto measured = sim::simulate(setup.machine, program, plan, "m");
    const auto shape = core::extract_doacross_shape(measured, overheads);
    for (const Schedule sched :
         {Schedule::kCyclic, Schedule::kBlock, Schedule::kSelf}) {
      core::LiberalOptions options;
      options.machine = setup.machine;
      options.schedule = sched;
      const auto liberal = core::liberal_approximation(shape, options);
      const auto analytic = core::analytic_approximation(shape, options);
      EXPECT_EQ(analytic.loop_time, liberal.loop_time)
          << "loop " << k << " sched " << static_cast<int>(sched);
    }
  }
}

TEST(AnalyticAnalyzer, RegisteredInPipeline) {
  experiments::Setup setup;
  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  const auto program = loops::make_concurrent_ir(3, 200, Schedule::kCyclic);
  const auto measured = sim::simulate(setup.machine, program, plan, "m");

  core::PipelineOptions options;
  options.overheads = experiments::overheads_for(plan, setup.machine);
  options.machine = setup.machine;
  core::AnalysisPipeline pipeline(options);
  pipeline.add(core::AnalyzerKind::kLiberal)
      .add(core::AnalyzerKind::kAnalytic);
  const auto result = pipeline.run(measured);
  ASSERT_TRUE(result.acquire.ok);

  const auto* liberal = result.output("liberal");
  const auto* analytic = result.output("analytic");
  ASSERT_NE(liberal, nullptr);
  ASSERT_NE(analytic, nullptr);
  ASSERT_TRUE(liberal->liberal.has_value());
  ASSERT_TRUE(analytic->analytic.has_value());
  EXPECT_EQ(analytic->analytic->loop_time, liberal->liberal->loop_time);
  EXPECT_TRUE(analytic->approx.events().empty());  // produces no trace
}

// ---- grid screening ------------------------------------------------------

experiments::Scenario cell(int loop, experiments::PlanKind plan,
                           std::int64_t n = 200) {
  experiments::Scenario s;
  s.loop = loop;
  s.n = n;
  s.plan = plan;
  return s;
}

std::vector<experiments::Scenario> mixed_grid() {
  using experiments::PlanKind;
  std::vector<experiments::Scenario> cells;
  cells.push_back(cell(1, PlanKind::kStatementsOnly));   // DOALL: confident
  cells.push_back(cell(3, PlanKind::kStatementsOnly));   // confident
  cells.push_back(cell(3, PlanKind::kFull));             // marginal chain
  cells.push_back(cell(17, PlanKind::kStatementsOnly));  // saturated + spread
  cells.push_back(cell(12, PlanKind::kFull));            // DOALL: confident
  experiments::Scenario mutated = cell(1, PlanKind::kFull);
  mutated.mutate_measured = [](trace::Trace&) {};  // opaque to the model
  cells.push_back(mutated);
  return cells;
}

TEST(GridScreening, PartitionMatchesModelUncertainty) {
  const auto cells = mixed_grid();
  const auto screened = experiments::run_grid_screened(cells);
  ASSERT_EQ(screened.cells.size(), cells.size());
  EXPECT_EQ(screened.confident, 3u);
  EXPECT_EQ(screened.fallthrough, 3u);
  EXPECT_TRUE(screened.cells[0].screened);
  EXPECT_TRUE(screened.cells[1].screened);
  EXPECT_FALSE(screened.cells[2].screened);  // lfk3 full: rho near 1
  EXPECT_FALSE(screened.cells[3].screened);  // lfk17: saturated chain
  EXPECT_TRUE(screened.cells[4].screened);
  EXPECT_FALSE(screened.cells[5].screened);  // mutate_measured: forced 1.0
  EXPECT_DOUBLE_EQ(screened.cells[5].prediction.uncertainty, 1.0);
  // Confident cells carry no simulation artifacts, only the prediction.
  EXPECT_TRUE(screened.cells[0].run.actual.events().empty());
  EXPECT_GT(screened.cells[0].prediction.actual.total, 0);
}

TEST(GridScreening, FallthroughBitIdenticalToUnscreened) {
  const auto cells = mixed_grid();
  const auto screened = experiments::run_grid_screened(cells);
  const auto unscreened = experiments::run_grid(cells);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (screened.cells[i].screened) continue;
    const auto& a = screened.cells[i].run;
    const auto& b = unscreened[i];
    EXPECT_EQ(a.actual.events(), b.actual.events()) << "cell " << i;
    EXPECT_EQ(a.measured.events(), b.measured.events()) << "cell " << i;
    EXPECT_EQ(a.time_based.events(), b.time_based.events()) << "cell " << i;
    EXPECT_EQ(a.event_based.approx.events(), b.event_based.approx.events())
        << "cell " << i;
    EXPECT_EQ(a.eb_quality.percent_error, b.eb_quality.percent_error);
    EXPECT_EQ(a.tb_quality.percent_error, b.tb_quality.percent_error);
  }
}

TEST(GridScreening, DeterministicAcrossThreadCounts) {
  const auto cells = mixed_grid();
  experiments::ScreenOptions options;
  options.grid.threads = 1;
  const auto one = experiments::run_grid_screened(cells, options);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    options.grid.threads = threads;
    const auto many = experiments::run_grid_screened(cells, options);
    ASSERT_EQ(many.cells.size(), one.cells.size());
    EXPECT_EQ(many.confident, one.confident);
    EXPECT_EQ(many.fallthrough, one.fallthrough);
    for (std::size_t i = 0; i < one.cells.size(); ++i) {
      EXPECT_EQ(many.cells[i].screened, one.cells[i].screened);
      EXPECT_EQ(many.cells[i].prediction.actual.total,
                one.cells[i].prediction.actual.total);
      EXPECT_EQ(many.cells[i].prediction.measured.total,
                one.cells[i].prediction.measured.total);
      EXPECT_EQ(many.cells[i].prediction.uncertainty,
                one.cells[i].prediction.uncertainty);
      EXPECT_EQ(many.cells[i].run.event_based.approx.events(),
                one.cells[i].run.event_based.approx.events());
    }
  }
}

TEST(GridScreening, ConfidentSweepRunsNoSimulation) {
  using experiments::PlanKind;
  std::vector<experiments::Scenario> cells;
  for (const int loop : {1, 7, 9, 12})
    for (const auto plan : {PlanKind::kStatementsOnly, PlanKind::kFull})
      cells.push_back(cell(loop, plan, 400));
  const auto screened = experiments::run_grid_screened(cells);
  EXPECT_EQ(screened.confident, cells.size());
  EXPECT_EQ(screened.fallthrough, 0u);
  for (const auto& c : screened.cells) {
    EXPECT_TRUE(c.run.actual.events().empty());
    EXPECT_TRUE(c.run.measured.events().empty());
  }
}

TEST(GridScreening, MetricsCountersAndErrorHistogram) {
  support::Metrics::enable(true);
  support::Metrics::reset();
  const auto screened = experiments::run_grid_screened(mixed_grid());
  const auto snap = support::Metrics::snapshot();
  support::Metrics::enable(false);
  ASSERT_TRUE(snap.counters.contains("grid.screen.confident"));
  EXPECT_EQ(snap.counters.at("grid.screen.confident"), screened.confident);
  EXPECT_EQ(snap.counters.at("grid.screen.fallthrough"),
            screened.fallthrough);
  // lfk3-full and lfk17 predict real totals, so both score the model against
  // the event-based reconstruction; the mutated cell has no prediction.
  EXPECT_EQ(snap.histograms.at("grid.model.error").count, 2u);
}

// ---- loop feature extraction ---------------------------------------------

TEST(LoopFeatures, SummarizesStatementShape) {
  const auto f1 = loops::loop_features(1);
  EXPECT_TRUE(f1.parallelizable);
  EXPECT_EQ(f1.distance, 0);
  EXPECT_FALSE(f1.data_dependent);

  const auto f3 = loops::loop_features(3);
  EXPECT_EQ(f3.distance, 1);
  EXPECT_FALSE(f3.guarded_traced);  // compiler-generated guarded update
  EXPECT_GT(f3.pre_cost, 0);
  EXPECT_GT(f3.guarded_cost, 0);

  const auto f17 = loops::loop_features(17);
  EXPECT_EQ(f17.distance, 1);
  EXPECT_TRUE(f17.guarded_traced);  // source-level guarded statements
  EXPECT_TRUE(f17.data_dependent);  // implicit-conditional cost spread
  EXPECT_GT(f17.post_cost, 0);
}

}  // namespace
}  // namespace perturb
