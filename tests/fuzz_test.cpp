// Randomized program fuzzing: generate seeded random (but structurally
// valid) programs mixing computation, sequential loops, DOACROSS chains,
// critical sections, and semaphore regions; run the full measurement +
// analysis pipeline; and assert the system-wide invariants:
//
//   I1  the simulator terminates and produces a causally valid trace
//   I2  the measured trace is causally valid
//   I3  event-based reconstruction resolves (no false deadlock) and its
//       approximation is causally valid
//   I4  the approximation never takes longer than the measurement
//   I5  with the dependency models enabled, total-time error stays within a
//       generous bound
//
// Plus byte-level fuzzing of the binary trace format:
//
//   I6  random bit flips and truncations of a serialized trace never crash,
//       hang, or over-allocate the reader — every outcome is either a
//       salvaged (prefix-bounded) trace or a CheckError
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/eventbased.hpp"
#include "core/pipeline.hpp"
#include "instr/plan.hpp"
#include "sim/engine.hpp"
#include "support/prng.hpp"
#include "trace/faults.hpp"
#include "trace/io.hpp"
#include "trace/validate.hpp"

namespace perturb::sim {
namespace {

using support::Xoshiro256;

/// Builds a random parallel-loop body.  Structure probabilities keep the
/// programs deadlock-free by construction: awaits always target i-d with
/// d >= 1 and an advance always follows in the same body.
struct RandomProgram {
  Program program;
  ObjectId sem = 0;
  std::int64_t sem_capacity = 0;
};

RandomProgram make_random_program(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  RandomProgram out;
  Program& p = out.program;

  auto rand_cost = [&](Cycles lo, Cycles hi) {
    return lo + static_cast<Cycles>(rng.below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  };

  Block body;
  // Independent prefix: 1-3 statements, possibly a small sequential loop.
  const auto pre_stmts = 1 + rng.below(3);
  for (std::uint64_t s = 0; s < pre_stmts; ++s)
    body.nodes.push_back(compute("pre", rand_cost(5, 300)));
  if (rng.below(2) == 0) {
    Block inner;
    inner.nodes.push_back(compute("inner", rand_cost(5, 40)));
    body.nodes.push_back(seq_loop("seq", 1 + static_cast<std::int64_t>(
                                              rng.below(4)),
                                  std::move(inner)));
  }

  // Optional DOACROSS chain.
  const bool chained = rng.below(3) != 0;
  if (chained) {
    const auto var = p.declare_sync_var("S");
    const auto d = 1 + static_cast<std::int64_t>(rng.below(3));
    body.nodes.push_back(await(var, {1, -d}));
    if (rng.below(2) == 0)
      body.nodes.push_back(compute("guarded stmt", rand_cost(5, 60)));
    else
      body.nodes.push_back(raw_compute("guarded raw", rand_cost(5, 60)));
    body.nodes.push_back(advance(var, {1, 0}));
  }

  // Optional critical section or semaphore region.
  const auto region_kind = rng.below(3);
  if (region_kind == 1) {
    const auto lock = p.declare_lock("L");
    body.nodes.push_back(
        critical(lock, block(compute("cs", rand_cost(5, 80)))));
  } else if (region_kind == 2) {
    out.sem_capacity = 1 + static_cast<std::int64_t>(rng.below(3));
    out.sem = p.declare_semaphore("M", out.sem_capacity);
    body.nodes.push_back(
        semaphore_region(out.sem, block(compute("sem cs", rand_cost(5, 80)))));
  }

  if (rng.below(2) == 0)
    body.nodes.push_back(compute("post", rand_cost(5, 150)));

  const Schedule scheds[] = {Schedule::kCyclic, Schedule::kBlock,
                             Schedule::kSelf};
  // Self-scheduling would reorder a DOACROSS chain's dispatch only; all
  // schedules are safe, so pick freely.
  const auto sched = scheds[rng.below(3)];
  const auto trip = 16 + static_cast<std::int64_t>(rng.below(100));

  p.root().nodes.push_back(compute("head", rand_cost(10, 100)));
  p.root().nodes.push_back(par_loop(
      "fuzz", chained ? LoopKind::kDoacross : LoopKind::kDoall, sched, trip,
      std::move(body)));
  p.root().nodes.push_back(compute("tail", rand_cost(10, 100)));
  p.finalize();
  return out;
}

core::AnalysisOverheads overheads_from(const instr::InstrumentationPlan& plan,
                                       const MachineConfig& cfg) {
  core::AnalysisOverheads ov;
  for (std::uint8_t k = 0; k < trace::kNumEventKinds; ++k)
    ov.probe[k] = plan.mean_cost(static_cast<trace::EventKind>(k));
  ov.s_nowait = cfg.await_check_cost;
  ov.s_wait = cfg.await_resume_cost;
  ov.lock_acquire = cfg.lock_acquire_cost;
  ov.sem_acquire = cfg.sem_acquire_cost;
  ov.barrier_depart = cfg.barrier_depart_cost;
  return ov;
}

class FuzzPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzPipeline, InvariantsHold) {
  const std::uint64_t seed = GetParam();
  const auto rp = make_random_program(seed);

  MachineConfig cfg;
  cfg.num_procs = 2 + static_cast<std::uint32_t>(seed % 7);

  // I1: actual run valid.
  const auto actual = simulate_actual(cfg, rp.program, "fuzz-actual");
  auto violations = trace::validate(actual);
  ASSERT_TRUE(violations.empty())
      << "seed " << seed << ": " << trace::describe(violations);

  // I2: measured run valid.  Producer-side records (advance, release,
  // arrive) are inflated by their own probes, so ordering checks get one
  // max-probe of slack (see ValidateOptions::sync_slack).
  const auto plan = instr::InstrumentationPlan::full(
      {120.0, 0.05}, {70.0, 0.05}, {40.0, 0.05}, seed);
  const auto measured = simulate(cfg, rp.program, plan, "fuzz-measured");
  trace::ValidateOptions measured_opts;
  measured_opts.sync_slack = 130;  // max probe cost incl. jitter
  violations = trace::validate(measured, measured_opts);
  ASSERT_TRUE(violations.empty())
      << "seed " << seed << ": " << trace::describe(violations);

  // I3: reconstruction resolves and stays feasible.
  core::EventBasedOptions opt;
  if (rp.sem != 0) opt.semaphore_capacity[rp.sem] = rp.sem_capacity;
  const auto result = core::event_based_approximation(
      measured, overheads_from(plan, cfg), opt);
  violations = trace::validate(result.approx);
  EXPECT_TRUE(violations.empty())
      << "seed " << seed << ": " << trace::describe(violations);

  // I4: analysis only removes overhead.
  EXPECT_LE(result.approx.total_time(), measured.total_time())
      << "seed " << seed;

  // I5: bounded recovery error.
  const double ratio = static_cast<double>(result.approx.total_time()) /
                       static_cast<double>(actual.total_time());
  EXPECT_GT(ratio, 0.75) << "seed " << seed;
  EXPECT_LT(ratio, 1.35) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Range<std::uint64_t>(1, 41));

// ---- I6: binary-format byte fuzzing --------------------------------------

struct BaseImage {
  std::string bytes;        ///< intact v2 serialization
  std::size_t num_events;   ///< event count of the source trace
};

const BaseImage& base_image() {
  static const BaseImage image = [] {
    const auto rp = make_random_program(1);
    MachineConfig cfg;
    cfg.num_procs = 4;
    const auto t = simulate_actual(cfg, rp.program, "fuzz-bytes");
    std::ostringstream out(std::ios::binary);
    trace::write_binary(out, t);
    return BaseImage{out.str(), t.size()};
  }();
  return image;
}

class FuzzBinaryBytes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzBinaryBytes, MutatedImageSalvagesOrFailsLoudly) {
  const std::uint64_t seed = GetParam();
  const BaseImage& base = base_image();
  Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ull + 1);

  std::string bytes = base.bytes;
  switch (rng.below(3)) {
    case 0:
      trace::flip_bits(bytes, 1 + rng.below(16), seed);
      break;
    case 1:
      bytes = trace::truncate_bytes(bytes, 0.02 + 0.96 * rng.uniform01());
      break;
    default:  // both: torn file that also rotted on disk
      bytes = trace::truncate_bytes(bytes, 0.3 + 0.6 * rng.uniform01());
      trace::flip_bits(bytes, 1 + rng.below(8), seed);
      break;
  }

  // Strict read: success (bounded by the source) or CheckError.  Anything
  // else — crash, hang, bad_alloc from a corrupt count — is a bug.
  try {
    std::istringstream in(bytes, std::ios::binary);
    const auto t = trace::read_binary(in);
    EXPECT_LE(t.size(), base.num_events) << "seed " << seed;
  } catch (const CheckError&) {
    // rejected loudly: fine
  }

  // Salvage read: same contract, plus a coherent report when it succeeds.
  try {
    std::istringstream in(bytes, std::ios::binary);
    trace::SalvageReport report;
    const auto t = trace::read_binary_salvage(in, report);
    EXPECT_LE(t.size(), base.num_events) << "seed " << seed;
    EXPECT_EQ(report.events_recovered, t.size()) << "seed " << seed;
    if (report.complete) {
      EXPECT_EQ(t.size(), base.num_events);
    }
  } catch (const CheckError&) {
    // header unsalvageable: fine, reported as an error rather than garbage
  }
}

TEST_P(FuzzBinaryBytes, StreamAndBufferReadersAgree) {
  // The zero-copy buffer reader and the retained istream reader must be
  // interchangeable on every input: same trace, same SalvageReport, same
  // accept/reject decision — even for corrupted or torn images.
  const std::uint64_t seed = GetParam();
  const BaseImage& base = base_image();
  Xoshiro256 rng(seed * 0xD1B54A32D192ED03ull + 1);

  std::string bytes = base.bytes;
  switch (rng.below(4)) {
    case 0:
      trace::flip_bits(bytes, 1 + rng.below(16), seed);
      break;
    case 1:
      bytes = trace::truncate_bytes(bytes, 0.02 + 0.96 * rng.uniform01());
      break;
    case 2:
      bytes = trace::truncate_bytes(bytes, 0.3 + 0.6 * rng.uniform01());
      trace::flip_bits(bytes, 1 + rng.below(8), seed);
      break;
    default:
      break;  // intact image: both paths must agree on the clean case too
  }

  // Strict read.
  bool stream_ok = false;
  trace::Trace via_stream;
  try {
    std::istringstream in(bytes, std::ios::binary);
    via_stream = trace::read_binary(in);
    stream_ok = true;
  } catch (const CheckError&) {
  }
  bool buffer_ok = false;
  trace::Trace via_buffer;
  try {
    via_buffer = trace::read_binary(bytes.data(), bytes.size());
    buffer_ok = true;
  } catch (const CheckError&) {
  }
  EXPECT_EQ(stream_ok, buffer_ok) << "seed " << seed;
  if (stream_ok && buffer_ok) {
    ASSERT_EQ(via_stream.size(), via_buffer.size()) << "seed " << seed;
    for (std::size_t i = 0; i < via_stream.size(); ++i)
      ASSERT_TRUE(via_stream[i] == via_buffer[i]) << "seed " << seed
                                                  << " event " << i;
  }

  // Salvage read: traces and reports must match field for field.
  bool stream_salvage_ok = false;
  trace::SalvageReport stream_report;
  trace::Trace stream_salvaged;
  try {
    std::istringstream in(bytes, std::ios::binary);
    stream_salvaged = trace::read_binary_salvage(in, stream_report);
    stream_salvage_ok = true;
  } catch (const CheckError&) {
  }
  bool buffer_salvage_ok = false;
  trace::SalvageReport buffer_report;
  trace::Trace buffer_salvaged;
  try {
    buffer_salvaged =
        trace::read_binary_salvage(bytes.data(), bytes.size(), buffer_report);
    buffer_salvage_ok = true;
  } catch (const CheckError&) {
  }
  EXPECT_EQ(stream_salvage_ok, buffer_salvage_ok) << "seed " << seed;
  if (stream_salvage_ok && buffer_salvage_ok) {
    ASSERT_EQ(stream_salvaged.size(), buffer_salvaged.size())
        << "seed " << seed;
    for (std::size_t i = 0; i < stream_salvaged.size(); ++i)
      ASSERT_TRUE(stream_salvaged[i] == buffer_salvaged[i])
          << "seed " << seed << " event " << i;
    EXPECT_EQ(stream_report.complete, buffer_report.complete)
        << "seed " << seed;
    EXPECT_EQ(stream_report.version, buffer_report.version) << "seed " << seed;
    EXPECT_EQ(stream_report.events_declared, buffer_report.events_declared)
        << "seed " << seed;
    EXPECT_EQ(stream_report.events_recovered, buffer_report.events_recovered)
        << "seed " << seed;
    EXPECT_EQ(stream_report.chunks_total, buffer_report.chunks_total)
        << "seed " << seed;
    EXPECT_EQ(stream_report.chunks_recovered, buffer_report.chunks_recovered)
        << "seed " << seed;
    EXPECT_EQ(stream_report.detail, buffer_report.detail) << "seed " << seed;
  }
}

TEST(FuzzBinaryBytes, PureTruncationAlwaysSalvages) {
  // With no bit rot, any cut past the header must salvage cleanly: the
  // recovered prefix grows monotonically with the kept fraction.
  const BaseImage& base = base_image();
  std::size_t prev = 0;
  for (int i = 1; i <= 10; ++i) {
    const std::string torn =
        trace::truncate_bytes(base.bytes, static_cast<double>(i) / 10.0);
    std::istringstream in(torn, std::ios::binary);
    trace::SalvageReport report;
    const auto t = trace::read_binary_salvage(in, report);
    EXPECT_GE(t.size(), prev);
    prev = t.size();
  }
  EXPECT_EQ(prev, base.num_events);
}

// ---- degenerate inputs: the header edge cases random mutation rarely hits.
// These are *content* defects, not I/O failures: the file read fine, its
// bytes are unusable.  Both readers must reject with MalformedTraceError
// (the exit-2 class) and the same message.

/// Strict-reads `bytes` through the stream and buffer paths; both must throw
/// MalformedTraceError, and with identical messages.
void expect_malformed(const std::string& bytes, const std::string& what) {
  std::string stream_msg;
  try {
    std::istringstream in(bytes, std::ios::binary);
    trace::read_binary(in);
    FAIL() << what << ": stream reader accepted degenerate input";
  } catch (const trace::MalformedTraceError& e) {
    stream_msg = e.what();
  }
  std::string buffer_msg;
  try {
    trace::read_binary(bytes.data(), bytes.size());
    FAIL() << what << ": buffer reader accepted degenerate input";
  } catch (const trace::MalformedTraceError& e) {
    buffer_msg = e.what();
  }
  EXPECT_EQ(stream_msg, buffer_msg) << what;

  // Salvage cannot rescue a file with no usable header either; it must
  // reject just as loudly rather than return an empty "recovered" trace.
  try {
    std::istringstream in(bytes, std::ios::binary);
    trace::SalvageReport report;
    trace::read_binary_salvage(in, report);
    FAIL() << what << ": stream salvage accepted degenerate input";
  } catch (const trace::MalformedTraceError&) {
  }
  try {
    trace::SalvageReport report;
    trace::read_binary_salvage(bytes.data(), bytes.size(), report);
    FAIL() << what << ": buffer salvage accepted degenerate input";
  } catch (const trace::MalformedTraceError&) {
  }
}

TEST(FuzzBinaryBytes, ZeroByteImageIsMalformedNotCrash) {
  expect_malformed(std::string(), "zero-byte");
  // The diagnosis names the actual defect.
  try {
    trace::read_binary(nullptr, 0);
    FAIL();
  } catch (const trace::MalformedTraceError& e) {
    EXPECT_NE(std::string(e.what()).find("empty trace file"),
              std::string::npos);
  }
}

TEST(FuzzBinaryBytes, TruncationInsideHeaderIsMalformedAtEveryCut) {
  // Cuts before the first event record leave no declared-event prefix to
  // salvage: every one must be a loud MalformedTraceError, never a crash,
  // over-read, or silently empty trace.  (Cuts past the header are the
  // salvageable case covered by PureTruncationAlwaysSalvages.)
  const BaseImage& base = base_image();
  std::size_t header_end = base.bytes.size();
  for (std::size_t cut = 1; cut < base.bytes.size(); ++cut) {
    const std::string torn = base.bytes.substr(0, cut);
    try {
      std::istringstream in(torn, std::ios::binary);
      trace::SalvageReport report;
      trace::read_binary_salvage(in, report);
      header_end = cut;  // first cut the salvage reader survives
      break;
    } catch (const trace::MalformedTraceError&) {
    }
  }
  ASSERT_LT(header_end, base.bytes.size());
  for (std::size_t cut = 1; cut < header_end; ++cut)
    expect_malformed(base.bytes.substr(0, cut),
                     "cut at byte " + std::to_string(cut));
}

TEST(FuzzBinaryBytes, BadMagicAndBadVersionAreMalformed) {
  std::string wrong_magic = base_image().bytes;
  wrong_magic[0] = static_cast<char>(wrong_magic[0] ^ 0x55);
  expect_malformed(wrong_magic, "bad magic");

  std::string bad_version = base_image().bytes;
  bad_version[4] = char(0x7F);  // version byte follows the 4-byte magic
  expect_malformed(bad_version, "unsupported version");
}

TEST(FuzzBinaryBytes, EmptyTraceFailsPipelineStructurally) {
  // A syntactically valid image declaring zero events parses, but analysis
  // must fail acquisition with a diagnosis instead of emitting NaNs.
  std::ostringstream out(std::ios::binary);
  trace::write_binary(out, trace::Trace{});
  const std::string image = out.str();
  const trace::Trace empty =
      trace::read_binary(image.data(), image.size());
  EXPECT_EQ(empty.size(), 0u);

  core::PipelineOptions options;
  core::AnalysisPipeline pipeline(std::move(options));
  pipeline.add(core::AnalyzerKind::kTimeBased);
  const auto acquired = pipeline.acquire(trace::Trace{empty});
  EXPECT_FALSE(acquired.ok);
  EXPECT_NE(acquired.diagnosis.find("no events"), std::string::npos)
      << acquired.diagnosis;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzBinaryBytes,
                         ::testing::Range<std::uint64_t>(1, 121));

}  // namespace
}  // namespace perturb::sim
