// Tests for the real-threads runtime: tracer buffers, SyncVar/SpinBarrier
// semantics, and traced DOACROSS execution (correct results, causally valid
// traces, analysis compatibility).  Thread counts stay small so the suite
// behaves on single-core machines.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "core/eventbased.hpp"
#include "rt/doacross.hpp"
#include "rt/sync.hpp"
#include "rt/tracer.hpp"
#include "trace/validate.hpp"

namespace perturb::rt {
namespace {

using trace::EventKind;

// ---- tracer ------------------------------------------------------------

TEST(Tracer, RecordsAndHarvestsInTimeOrder) {
  Tracer tracer(2, 64);
  tracer.record(0, EventKind::kStmtEnter, 1, 0, 10);
  tracer.record(1, EventKind::kStmtEnter, 2, 0, 20);
  tracer.record(0, EventKind::kStmtExit, 1, 0, 10);
  const auto t = tracer.harvest("run");
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.is_time_ordered());
  EXPECT_EQ(t.info().num_procs, 2u);
  EXPECT_DOUBLE_EQ(t.info().ticks_per_us, 1000.0);
  EXPECT_EQ(t.info().name, "run");
}

TEST(Tracer, TimestampsAreMonotonePerThread) {
  Tracer tracer(1, 1024);
  for (int i = 0; i < 500; ++i)
    tracer.record(0, EventKind::kStmtEnter, 1, 0, i);
  const auto t = tracer.harvest("run");
  for (std::size_t i = 1; i < t.size(); ++i)
    EXPECT_GE(t[i].time, t[i - 1].time);
}

TEST(Tracer, DropsBeyondCapacityWithoutReallocating) {
  Tracer tracer(1, 4);
  for (int i = 0; i < 10; ++i)
    tracer.record(0, EventKind::kStmtEnter, 1, 0, i);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto t = tracer.harvest("run");
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 0u);  // reset by harvest
}

TEST(Tracer, HarvestClearsBuffers) {
  Tracer tracer(1, 16);
  tracer.record(0, EventKind::kStmtEnter, 1, 0, 0);
  EXPECT_EQ(tracer.harvest("a").size(), 1u);
  EXPECT_EQ(tracer.harvest("b").size(), 0u);
}

// ---- sync primitives ------------------------------------------------------

TEST(SyncVar, AdvanceThenAwaitDoesNotBlock) {
  SyncVar v(8);
  v.advance(3);
  EXPECT_TRUE(v.poll(3));
  EXPECT_FALSE(v.poll(4));
  EXPECT_FALSE(v.await(3));  // no waiting needed
}

TEST(SyncVar, NegativeIndexIsDependenceFree) {
  SyncVar v(8);
  EXPECT_FALSE(v.await(-1));
  EXPECT_FALSE(v.await(-100));
}

TEST(SyncVar, ResetClearsHistory) {
  SyncVar v(4);
  v.advance(0);
  v.reset();
  EXPECT_FALSE(v.poll(0));
}

TEST(SyncVar, CrossThreadHandoff) {
  SyncVar v(2);
  std::atomic<int> value{0};
  std::thread producer([&] {
    value.store(42, std::memory_order_relaxed);
    v.advance(0);
  });
  const bool waited = v.await(0);
  (void)waited;  // may or may not wait depending on scheduling
  EXPECT_EQ(value.load(std::memory_order_relaxed), 42);  // release/acquire
  producer.join();
}

TEST(CountingSemaphore, CapacityBoundsConcurrency) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  CountingSemaphore sem(2);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        sem.acquire();
        const int now = inside.fetch_add(1, std::memory_order_acq_rel) + 1;
        int old = peak.load(std::memory_order_relaxed);
        while (now > old &&
               !peak.compare_exchange_weak(old, now, std::memory_order_relaxed)) {
        }
        std::this_thread::yield();
        inside.fetch_sub(1, std::memory_order_acq_rel);
        sem.release();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(peak.load(), 2);
  EXPECT_EQ(inside.load(), 0);
}

TEST(CountingSemaphore, TryAcquireRespectsPermits) {
  CountingSemaphore sem(2);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
}

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr int kThreads = 3;
  constexpr int kPhases = 20;
  SpinBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::vector<int> observed(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int phase = 0; phase < kPhases; ++phase) {
        counter.fetch_add(1, std::memory_order_relaxed);
        barrier.arrive_and_wait();
        // After the barrier, all kThreads increments of this phase are in.
        const int c = counter.load(std::memory_order_relaxed);
        if (c < (phase + 1) * kThreads) observed[static_cast<std::size_t>(t)]++;
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const int misses : observed) EXPECT_EQ(misses, 0);
}

// ---- doacross executor -------------------------------------------------------

TEST(Doacross, ComputesChainedResultCorrectly) {
  // Prefix-sum style dependence: iteration i adds to a shared accumulator in
  // the guarded section.  Any violation of the advance/await order would
  // produce a torn or reordered (hence wrong) result with high probability;
  // the ordered chain makes it deterministic.
  constexpr std::int64_t kN = 500;
  std::vector<double> values(kN);
  std::iota(values.begin(), values.end(), 1.0);
  std::vector<double> partial(kN, 0.0);
  double acc = 0.0;

  DoacrossBody body;
  body.guarded = [&](std::int64_t i) {
    acc += values[static_cast<std::size_t>(i)];
    partial[static_cast<std::size_t>(i)] = acc;
  };
  DoacrossOptions opts;
  opts.iterations = kN;
  opts.distance = 1;
  opts.num_threads = 3;
  run_doacross(body, opts);

  double expected = 0.0;
  for (std::int64_t i = 0; i < kN; ++i) {
    expected += values[static_cast<std::size_t>(i)];
    EXPECT_DOUBLE_EQ(partial[static_cast<std::size_t>(i)], expected);
  }
}

TEST(Doacross, DoallModeRunsAllIterations) {
  std::vector<std::atomic<int>> hits(64);
  DoacrossBody body;
  body.pre = [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  };
  DoacrossOptions opts;
  opts.iterations = 64;
  opts.distance = 0;
  opts.num_threads = 4;
  run_doacross(body, opts);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Doacross, ZeroIterationsIsANoop) {
  DoacrossOptions opts;
  opts.iterations = 0;
  opts.num_threads = 2;
  EXPECT_NO_THROW(run_doacross({}, opts));
}

TEST(Doacross, TracedRunProducesValidTrace) {
  DoacrossBody body;
  body.pre = [](std::int64_t) {};
  body.guarded = [](std::int64_t) {};
  DoacrossOptions opts;
  opts.iterations = 100;
  opts.distance = 1;
  opts.num_threads = 2;
  const auto t = run_doacross_traced(body, opts, "rt");
  const auto violations = trace::validate(t);
  EXPECT_TRUE(violations.empty()) << trace::describe(violations);

  std::size_t advances = 0;
  std::size_t iter_begins = 0;
  for (const auto& e : t) {
    advances += e.kind == EventKind::kAdvance ? 1 : 0;
    iter_begins += e.kind == EventKind::kIterBegin ? 1 : 0;
  }
  EXPECT_EQ(advances, 100u);
  EXPECT_EQ(iter_begins, 100u);
  EXPECT_EQ(t.total_time(), t.span());
}

TEST(Doacross, TracedRunFeedsEventBasedAnalysis) {
  DoacrossBody body;
  body.pre = [](std::int64_t) {};
  body.guarded = [](std::int64_t) {};
  DoacrossOptions opts;
  opts.iterations = 60;
  opts.distance = 1;
  opts.num_threads = 2;
  const auto measured = run_doacross_traced(body, opts, "rt");

  core::AnalysisOverheads ov;
  for (std::uint8_t k = 0; k < trace::kNumEventKinds; ++k) ov.probe[k] = 30;
  ov.s_nowait = 20;
  ov.s_wait = 40;
  const auto result = core::event_based_approximation(measured, ov);
  EXPECT_EQ(result.approx.size(), measured.size());
  EXPECT_EQ(result.awaits_total, 59u);
  const auto violations = trace::validate(result.approx);
  EXPECT_TRUE(violations.empty()) << trace::describe(violations);
  EXPECT_LE(result.approx.total_time(), measured.total_time());
}

TEST(Doacross, CyclicAssignmentInTrace) {
  DoacrossBody body;
  body.pre = [](std::int64_t) {};
  DoacrossOptions opts;
  opts.iterations = 20;
  opts.distance = 0;
  opts.num_threads = 2;
  const auto t = run_doacross_traced(body, opts, "rt");
  for (const auto& e : t) {
    if (e.kind == EventKind::kIterBegin) {
      EXPECT_EQ(e.proc, e.payload % 2);
    }
  }
}

TEST(Doacross, SelfSchedulingRunsAllIterationsOnce) {
  std::vector<std::atomic<int>> hits(100);
  DoacrossBody body;
  body.pre = [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  };
  DoacrossOptions opts;
  opts.iterations = 100;
  opts.distance = 0;
  opts.num_threads = 3;
  opts.schedule = RtSchedule::kSelf;
  run_doacross(body, opts);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Doacross, SelfSchedulingChainIsCorrect) {
  // The ordered-dispatch property makes self-scheduled DOACROSS chains
  // deadlock-free; verify the serialized result is still exact.
  constexpr std::int64_t kN = 300;
  double acc = 0.0;
  std::vector<double> partial(kN, 0.0);
  DoacrossBody body;
  body.guarded = [&](std::int64_t i) {
    acc += static_cast<double>(i + 1);
    partial[static_cast<std::size_t>(i)] = acc;
  };
  DoacrossOptions opts;
  opts.iterations = kN;
  opts.distance = 1;
  opts.num_threads = 3;
  opts.schedule = RtSchedule::kSelf;
  run_doacross(body, opts);
  double expected = 0.0;
  for (std::int64_t i = 0; i < kN; ++i) {
    expected += static_cast<double>(i + 1);
    EXPECT_DOUBLE_EQ(partial[static_cast<std::size_t>(i)], expected);
  }
}

TEST(Doacross, SelfSchedulingTracedTraceIsValid) {
  DoacrossBody body;
  body.pre = [](std::int64_t) {};
  DoacrossOptions opts;
  opts.iterations = 50;
  opts.distance = 1;
  opts.num_threads = 2;
  opts.schedule = RtSchedule::kSelf;
  const auto t = run_doacross_traced(body, opts, "rt-self");
  const auto violations = trace::validate(t);
  EXPECT_TRUE(violations.empty()) << trace::describe(violations);
  std::size_t iters = 0;
  for (const auto& e : t) iters += e.kind == EventKind::kIterBegin ? 1 : 0;
  EXPECT_EQ(iters, 50u);
}

}  // namespace
}  // namespace perturb::rt
