// Failure-injection tests: how the analyses behave on degraded or corrupted
// measured traces.  A production analysis tool must either recover
// gracefully (documented fallbacks) or fail loudly — never silently produce
// garbage for structurally broken input.
#include <gtest/gtest.h>

#include <algorithm>

#include <new>
#include <stdexcept>

#include "../tools/tool_util.hpp"
#include "core/eventbased.hpp"
#include "core/timebased.hpp"
#include "experiments/experiments.hpp"
#include "support/check.hpp"
#include "trace/faults.hpp"
#include "trace/io.hpp"
#include "trace/validate.hpp"

namespace perturb::core {
namespace {

using trace::Event;
using trace::EventKind;
using trace::Trace;

struct Fixture {
  Trace actual;
  Trace measured;
  AnalysisOverheads ov;
};

Fixture make_fixture() {
  experiments::Setup setup;
  setup.machine.num_procs = 4;
  const auto run = experiments::run_concurrent_experiment(
      3, 200, setup, experiments::PlanKind::kFull);
  const auto plan = experiments::make_plan(experiments::PlanKind::kFull, setup);
  Fixture f;
  f.actual = run.actual;
  f.measured = run.measured;
  f.ov = experiments::overheads_for(plan, setup.machine);
  return f;
}

using trace::drop_events;  // fault-injection library (trace/faults.hpp)

TEST(Robustness, MissingAdvancesFallBackGracefully) {
  // Dropped advance events (e.g. a lost trace buffer): the awaitE loses its
  // pairing and falls back to the time-based rule — no crash, bounded drift.
  const Fixture f = make_fixture();
  const Trace degraded = drop_events(f.measured, EventKind::kAdvance, 2);
  const auto result = event_based_approximation(degraded, f.ov);
  EXPECT_EQ(result.approx.size(), degraded.size());
  EXPECT_GT(result.approx.total_time(), 0);
}

TEST(Robustness, MissingAwaitEventsStillResolve) {
  const Fixture f = make_fixture();
  Trace degraded = drop_events(f.measured, EventKind::kAwaitBegin, 2);
  const auto result = event_based_approximation(degraded, f.ov);
  EXPECT_EQ(result.approx.size(), degraded.size());
}

TEST(Robustness, StatementOnlyTraceDegradesToTimeBased) {
  // A trace with no sync events at all: event-based analysis must equal
  // time-based analysis (there is nothing to model).
  const Fixture f = make_fixture();
  Trace stripped(f.measured.info());
  for (const auto& e : f.measured) {
    if (trace::is_sync_kind(e.kind)) continue;
    stripped.append(e);
  }
  const auto eb = event_based_approximation(stripped, f.ov);
  const auto tb = time_based_approximation(stripped, f.ov);
  ASSERT_EQ(eb.approx.size(), tb.size());
  EXPECT_EQ(eb.awaits_total, 0u);
  EXPECT_EQ(eb.approx.total_time(), tb.total_time());
}

TEST(Robustness, CrossedAwaitPairingDeadlockDetected) {
  // Two awaits whose advances appear only after both awaitEs on the *other*
  // processor create a dependency cycle that cannot be resolved; the
  // analysis must fail loudly rather than loop or emit garbage.
  Trace m({"m", 2, 1.0});
  auto ev = [&](trace::Tick t, trace::ProcId proc, EventKind k,
                std::int64_t pay) {
    Event e;
    e.time = t;
    e.proc = proc;
    e.kind = k;
    e.object = 1;
    e.payload = pay;
    m.append(e);
  };
  ev(10, 0, EventKind::kAwaitBegin, 1);
  ev(10, 1, EventKind::kAwaitBegin, 0);
  ev(50, 0, EventKind::kAwaitEnd, 1);   // depends on advance(1) below
  ev(50, 1, EventKind::kAwaitEnd, 0);   // depends on advance(0) below
  ev(60, 0, EventKind::kAdvance, 0);    // after the awaitE that needs it
  ev(60, 1, EventKind::kAdvance, 1);
  EXPECT_THROW(event_based_approximation(m, {}), CheckError);
}

TEST(Robustness, ZeroLengthTrace) {
  const Trace empty({"m", 2, 1.0});
  const auto eb = event_based_approximation(empty, {});
  EXPECT_TRUE(eb.approx.empty());
  const auto tb = time_based_approximation(empty, {});
  EXPECT_TRUE(tb.empty());
}

TEST(Robustness, SingleEventTrace) {
  Trace m({"m", 1, 1.0});
  Event e;
  e.time = 100;
  e.kind = EventKind::kStmtEnter;
  m.append(e);
  AnalysisOverheads ov;
  ov.probe[static_cast<std::size_t>(EventKind::kStmtEnter)] = 30;
  const auto eb = event_based_approximation(m, ov);
  ASSERT_EQ(eb.approx.size(), 1u);
  EXPECT_EQ(eb.approx[0].time, 70);
}

TEST(Robustness, OverheadsLargerThanGapsStayMonotone) {
  // Grossly over-estimated probe costs: reconstruction must clamp, stay
  // monotone per processor, and produce a causally valid trace.
  const Fixture f = make_fixture();
  AnalysisOverheads inflated = f.ov;
  for (auto& alpha : inflated.probe) alpha *= 10;
  const auto result = event_based_approximation(f.measured, inflated);
  std::vector<trace::Tick> last(4, -1);
  for (const auto& e : result.approx) {
    EXPECT_GE(e.time, last[e.proc]);
    last[e.proc] = e.time;
  }
  const auto violations = trace::validate(result.approx);
  EXPECT_TRUE(violations.empty()) << trace::describe(violations);
}

TEST(Robustness, ForeignProcessorIdsHandled) {
  // Events on processors beyond info().num_procs (malformed metadata) must
  // not crash the analyses.
  Trace m({"m", 1, 1.0});
  Event e;
  e.time = 10;
  e.proc = 5;
  e.kind = EventKind::kStmtEnter;
  m.append(e);
  const auto eb = event_based_approximation(m, {});
  EXPECT_EQ(eb.approx.size(), 1u);
  const auto tb = time_based_approximation(m, {});
  EXPECT_EQ(tb.size(), 1u);
}

// ---- tool exit-code mapping -------------------------------------------

// run_tool must translate every escape path into the documented exit codes;
// before the std::exception/... handlers were added, anything outside the
// CheckError hierarchy escaped and aborted the process.
TEST(ToolExitCodes, SuccessPassesThrough) {
  EXPECT_EQ(tools::run_tool([] { return tools::kExitOk; }), tools::kExitOk);
  EXPECT_EQ(tools::run_tool([] { return 7; }), 7);
}

TEST(ToolExitCodes, IoErrorMapsToThree) {
  const int code = tools::run_tool(
      []() -> int { throw trace::IoError("disk on fire"); });
  EXPECT_EQ(code, tools::kExitIoError);
}

TEST(ToolExitCodes, CheckErrorMapsToTwo) {
  // IoError derives from CheckError, so ordering matters; a plain CheckError
  // must still land on the bad-trace code, not the I/O one.
  const int code =
      tools::run_tool([]() -> int { throw CheckError("bad trace"); });
  EXPECT_EQ(code, tools::kExitBadTrace);
}

TEST(ToolExitCodes, UnexpectedStdExceptionMapsToInternal) {
  const int code = tools::run_tool(
      []() -> int { throw std::runtime_error("logic slipped"); });
  EXPECT_EQ(code, tools::kExitInternal);
}

TEST(ToolExitCodes, BadAllocMapsToInternal) {
  const int code = tools::run_tool([]() -> int { throw std::bad_alloc(); });
  EXPECT_EQ(code, tools::kExitInternal);
}

TEST(ToolExitCodes, NonExceptionThrowMapsToInternal) {
  const int code = tools::run_tool([]() -> int { throw 42; });
  EXPECT_EQ(code, tools::kExitInternal);
}

}  // namespace
}  // namespace perturb::core
