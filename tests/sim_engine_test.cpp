// Tests for the discrete-event engine: timing conventions, parallel-loop
// orchestration, advance/await and lock semantics, barriers, determinism,
// and deadlock detection.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/ready_queue.hpp"
#include "support/check.hpp"
#include "trace/validate.hpp"

namespace perturb::sim {
namespace {

using trace::Event;
using trace::EventKind;
using trace::Tick;
using trace::Trace;

MachineConfig config(std::uint32_t procs = 4) {
  MachineConfig cfg;
  cfg.num_procs = procs;
  return cfg;
}

/// Instrumentation with a flat probe cost on every event.
class FlatProbe final : public InstrumentationHook {
 public:
  explicit FlatProbe(Cycles cost) : cost_(cost) {}
  bool records(EventKind, trace::EventId) const override { return true; }
  Cycles probe_cost(EventKind, trace::EventId, trace::ProcId,
                    std::uint64_t) const override {
    return cost_;
  }

 private:
  Cycles cost_;
};

std::vector<Event> events_of_kind(const Trace& t, EventKind kind) {
  std::vector<Event> out;
  for (const auto& e : t)
    if (e.kind == kind) out.push_back(e);
  return out;
}

const Event* find_first(const Trace& t, EventKind kind) {
  for (const auto& e : t)
    if (e.kind == kind) return &e;
  return nullptr;
}

Program two_statements() {
  Program p;
  p.root().nodes.push_back(compute("a", 10));
  p.root().nodes.push_back(compute("b", 20));
  p.finalize();
  return p;
}

// ---- sequential timing ---------------------------------------------------

TEST(Engine, SequentialStatementTiming) {
  const auto t = simulate_actual(config(1), two_statements(), "t");
  ASSERT_EQ(t.size(), 6u);  // prog begin/end + 2x enter/exit
  EXPECT_EQ(t[0].kind, EventKind::kProgramBegin);
  EXPECT_EQ(t[0].time, 0);
  EXPECT_EQ(t[1].time, 0);   // a enter
  EXPECT_EQ(t[2].time, 10);  // a exit
  EXPECT_EQ(t[3].time, 10);  // b enter
  EXPECT_EQ(t[4].time, 30);  // b exit
  EXPECT_EQ(t[5].kind, EventKind::kProgramEnd);
  EXPECT_EQ(t.total_time(), 30);
}

TEST(Engine, RequiresFinalizedProgram) {
  Program p;
  p.root().nodes.push_back(compute("a", 1));
  EXPECT_THROW(simulate_actual(config(1), p, "t"), CheckError);
}

TEST(Engine, SeqLoopChargesIterationOverhead) {
  Program p;
  Block body;
  body.nodes.push_back(compute("x", 10));
  p.root().nodes.push_back(seq_loop("l", 3, std::move(body)));
  p.finalize();
  const auto t = simulate_actual(config(1), p, "t");
  // 3 * (loop bookkeeping 1 + stmt 10).
  EXPECT_EQ(t.total_time(), 33);
}

TEST(Engine, ZeroTripSeqLoop) {
  Program p;
  Block body;
  body.nodes.push_back(compute("x", 10));
  p.root().nodes.push_back(seq_loop("l", 0, std::move(body)));
  p.finalize();
  EXPECT_EQ(simulate_actual(config(1), p, "t").total_time(), 0);
}

TEST(Engine, ProbeCostChargedBeforeTimestamp) {
  const FlatProbe probe(5);
  const auto t = simulate(config(1), two_statements(), probe, "t");
  // begin@5, a.enter@10, a.exit@25 (probe 5 + cost 10 + probe 5), ...
  EXPECT_EQ(t[0].time, 5);
  EXPECT_EQ(t[1].time, 10);
  EXPECT_EQ(t[2].time, 25);
  EXPECT_EQ(t[3].time, 30);
  EXPECT_EQ(t[4].time, 55);
  // total = work 30 + 6 probes(30) - begin/end asymmetry handled by markers
  EXPECT_EQ(t.total_time(), 55);
}

TEST(Engine, UnrecordedKindsCostNothing) {
  /// Records nothing at all: timing must match the uninstrumented run.
  class Silent final : public InstrumentationHook {
   public:
    bool records(EventKind, trace::EventId) const override { return false; }
    Cycles probe_cost(EventKind, trace::EventId, trace::ProcId,
                      std::uint64_t) const override {
      return 1000000;  // must never be charged
    }
  };
  const Silent hook;
  const auto t = simulate(config(1), two_statements(), hook, "t");
  EXPECT_TRUE(t.empty());
}

TEST(Engine, RawComputeConsumesTimeWithoutEvents) {
  Program p;
  p.root().nodes.push_back(raw_compute("hidden", 40));
  p.root().nodes.push_back(compute("seen", 10));
  p.finalize();
  const auto t = simulate_actual(config(1), p, "t");
  const auto enters = events_of_kind(t, EventKind::kStmtEnter);
  ASSERT_EQ(enters.size(), 1u);
  EXPECT_EQ(enters[0].time, 40);  // delayed by the hidden work
  EXPECT_EQ(t.total_time(), 50);
}

// ---- parallel loop orchestration -------------------------------------------

Program doall(std::int64_t trip, Cycles cost, Schedule sched,
              std::uint32_t = 0) {
  Program p;
  Block body;
  body.nodes.push_back(compute("w", cost));
  p.root().nodes.push_back(
      par_loop("l", LoopKind::kDoall, sched, trip, std::move(body)));
  p.finalize();
  return p;
}

TEST(Engine, CyclicAssignment) {
  const auto t = simulate_actual(config(4), doall(8, 10, Schedule::kCyclic), "t");
  for (const auto& e : events_of_kind(t, EventKind::kIterBegin))
    EXPECT_EQ(e.proc, e.payload % 4);
}

TEST(Engine, BlockAssignment) {
  const auto t = simulate_actual(config(4), doall(8, 10, Schedule::kBlock), "t");
  for (const auto& e : events_of_kind(t, EventKind::kIterBegin))
    EXPECT_EQ(e.proc, e.payload / 2);
}

TEST(Engine, AllIterationsExecuteExactlyOnce) {
  for (const auto sched :
       {Schedule::kCyclic, Schedule::kBlock, Schedule::kSelf}) {
    const auto t = simulate_actual(config(4), doall(13, 7, sched), "t");
    std::multiset<std::int64_t> begun;
    std::multiset<std::int64_t> ended;
    for (const auto& e : t) {
      if (e.kind == EventKind::kIterBegin) begun.insert(e.payload);
      if (e.kind == EventKind::kIterEnd) ended.insert(e.payload);
    }
    EXPECT_EQ(begun.size(), 13u) << schedule_name(sched);
    EXPECT_EQ(ended.size(), 13u);
    for (std::int64_t i = 0; i < 13; ++i) {
      EXPECT_EQ(begun.count(i), 1u);
      EXPECT_EQ(ended.count(i), 1u);
    }
  }
}

TEST(Engine, BarrierClosesLoop) {
  const auto t = simulate_actual(config(4), doall(8, 10, Schedule::kCyclic), "t");
  const auto arrives = events_of_kind(t, EventKind::kBarrierArrive);
  const auto departs = events_of_kind(t, EventKind::kBarrierDepart);
  ASSERT_EQ(arrives.size(), 4u);
  ASSERT_EQ(departs.size(), 4u);
  Tick max_arrival = 0;
  for (const auto& e : arrives) max_arrival = std::max(max_arrival, e.time);
  for (const auto& e : departs)
    EXPECT_EQ(e.time, max_arrival + config().barrier_depart_cost);
}

TEST(Engine, LoopMarkersOnMaster) {
  const auto t = simulate_actual(config(4), doall(8, 10, Schedule::kCyclic), "t");
  const Event* begin = find_first(t, EventKind::kLoopBegin);
  const Event* end = find_first(t, EventKind::kLoopEnd);
  ASSERT_NE(begin, nullptr);
  ASSERT_NE(end, nullptr);
  EXPECT_EQ(begin->proc, 0);
  EXPECT_EQ(end->proc, 0);
  EXPECT_GT(end->time, begin->time);
}

TEST(Engine, SequentialTailRunsAfterLoopOnMaster) {
  Program p;
  Block body;
  body.nodes.push_back(compute("w", 10));
  p.root().nodes.push_back(
      par_loop("l", LoopKind::kDoall, Schedule::kCyclic, 4, std::move(body)));
  p.root().nodes.push_back(compute("tail", 5));
  p.finalize();
  const auto t = simulate_actual(config(2), p, "t");
  const Event* loop_end = find_first(t, EventKind::kLoopEnd);
  ASSERT_NE(loop_end, nullptr);
  bool found_tail = false;
  for (const auto& e : t) {
    if (e.kind == EventKind::kStmtEnter && e.time >= loop_end->time) {
      EXPECT_EQ(e.proc, 0);
      found_tail = true;
    }
  }
  EXPECT_TRUE(found_tail);
}

TEST(Engine, ZeroTripParallelLoop) {
  const auto t = simulate_actual(config(4), doall(0, 10, Schedule::kCyclic), "t");
  EXPECT_EQ(events_of_kind(t, EventKind::kIterBegin).size(), 0u);
  EXPECT_EQ(events_of_kind(t, EventKind::kBarrierDepart).size(), 4u);
  EXPECT_TRUE(trace::validate(t).empty());
}

TEST(Engine, FewerIterationsThanProcessors) {
  const auto t = simulate_actual(config(8), doall(3, 10, Schedule::kCyclic), "t");
  EXPECT_EQ(events_of_kind(t, EventKind::kIterBegin).size(), 3u);
  EXPECT_EQ(events_of_kind(t, EventKind::kBarrierDepart).size(), 8u);
}

TEST(Engine, DoallSpeedsUpWithProcessors) {
  const auto t1 = simulate_actual(config(1), doall(8, 100, Schedule::kCyclic), "t");
  const auto t8 = simulate_actual(config(8), doall(8, 100, Schedule::kCyclic), "t");
  EXPECT_GT(t1.total_time(), 6 * t8.total_time() / 2);
  EXPECT_LT(t8.total_time(), t1.total_time());
}

TEST(Engine, CostFnReceivesParallelIteration) {
  Program p;
  Block body;
  body.nodes.push_back(compute_fn("w", [](std::int64_t i) { return 10 * i; }));
  p.root().nodes.push_back(
      par_loop("l", LoopKind::kDoall, Schedule::kCyclic, 6, std::move(body)));
  p.finalize();
  const auto t = simulate_actual(config(2), p, "t");
  std::map<std::int64_t, Tick> enter;
  for (const auto& e : t) {
    if (e.kind == EventKind::kStmtEnter) enter[e.payload] = e.time;
    if (e.kind == EventKind::kStmtExit) {
      EXPECT_EQ(e.time - enter[e.payload], 10 * e.payload);
    }
  }
}

TEST(Engine, CostFnReceivesSeqIterationOutsideParLoops) {
  Program p;
  Block body;
  body.nodes.push_back(compute_fn("w", [](std::int64_t i) { return 5 + i; }));
  p.root().nodes.push_back(seq_loop("l", 3, std::move(body)));
  p.finalize();
  const auto t = simulate_actual(config(1), p, "t");
  std::vector<Tick> durations;
  Tick enter = 0;
  for (const auto& e : t) {
    if (e.kind == EventKind::kStmtEnter) enter = e.time;
    if (e.kind == EventKind::kStmtExit) durations.push_back(e.time - enter);
  }
  EXPECT_EQ(durations, (std::vector<Tick>{5, 6, 7}));
}

// ---- advance / await -----------------------------------------------------

Program chain(std::int64_t trip, Cycles pre, Cycles guarded,
              std::int64_t distance = 1, std::uint32_t = 0) {
  Program p;
  const auto var = p.declare_sync_var("S");
  Block body;
  if (pre > 0) body.nodes.push_back(compute("pre", pre));
  body.nodes.push_back(await(var, {1, -distance}));
  body.nodes.push_back(raw_compute("upd", guarded));
  body.nodes.push_back(advance(var, {1, 0}));
  p.root().nodes.push_back(par_loop("l", LoopKind::kDoacross,
                                    Schedule::kCyclic, trip, std::move(body)));
  p.finalize();
  return p;
}

TEST(Engine, ChainSerializesAdvances) {
  const auto cfg = config(4);
  const auto t = simulate_actual(cfg, chain(8, 0, 50), "t");
  const auto advances = events_of_kind(t, EventKind::kAdvance);
  ASSERT_EQ(advances.size(), 8u);
  // Advance times strictly increase along the chain: dependent execution.
  for (std::size_t i = 1; i < advances.size(); ++i)
    EXPECT_GT(advances[i].time, advances[i - 1].time);
  EXPECT_TRUE(trace::validate(t).empty());
}

TEST(Engine, FirstIterationsOfChainSkipAwait) {
  const auto t = simulate_actual(config(4), chain(8, 10, 10, 3), "t");
  // distance 3: iterations 0..2 have no await events.
  EXPECT_EQ(events_of_kind(t, EventKind::kAwaitBegin).size(), 5u);
  EXPECT_EQ(events_of_kind(t, EventKind::kAwaitEnd).size(), 5u);
}

TEST(Engine, AwaitThatWaitsResumesAfterAdvance) {
  const auto cfg = config(2);
  const auto t = simulate_actual(cfg, chain(4, 0, 100), "t");
  std::map<std::int64_t, Tick> advance_time;
  for (const auto& e : t)
    if (e.kind == EventKind::kAdvance) advance_time[e.payload] = e.time;
  std::map<std::int64_t, Tick> await_b;
  for (const auto& e : t) {
    if (e.kind == EventKind::kAwaitBegin) await_b[e.payload] = e.time;
    if (e.kind == EventKind::kAwaitEnd) {
      const Tick adv = advance_time.at(e.payload);
      if (adv > await_b.at(e.payload)) {
        // waited: resumes a fixed latency after the advance
        EXPECT_EQ(e.time, adv + cfg.await_resume_cost);
      }
    }
  }
}

TEST(Engine, AwaitWithoutWaitingIsCheap) {
  // Pre-work increasing steeply with the iteration index means every
  // dependence is satisfied long before the await executes.
  Program p;
  const auto var = p.declare_sync_var("S");
  Block body;
  body.nodes.push_back(
      compute_fn("pre", [](std::int64_t i) { return 100 + 1000 * i; }));
  body.nodes.push_back(await(var, {1, -1}));
  body.nodes.push_back(raw_compute("upd", 10));
  body.nodes.push_back(advance(var, {1, 0}));
  p.root().nodes.push_back(par_loop("l", LoopKind::kDoacross,
                                    Schedule::kCyclic, 4, std::move(body)));
  p.finalize();
  const auto cfg = config(2);
  const auto t = simulate_actual(cfg, p, "t");
  std::map<std::int64_t, Tick> await_b;
  std::size_t checked = 0;
  for (const auto& e : t) {
    if (e.kind == EventKind::kAwaitBegin) await_b[e.payload] = e.time;
    if (e.kind == EventKind::kAwaitEnd) {
      EXPECT_EQ(e.time - await_b.at(e.payload), cfg.await_check_cost);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(Engine, AdvanceVisibleBeforeItsProbe) {
  // With a huge probe on the advance event, the chain must still progress at
  // the un-probed advance rate plus the probe on the awaitE side only.
  class AdvanceProbe final : public InstrumentationHook {
   public:
    bool records(EventKind kind, trace::EventId) const override {
      return kind == EventKind::kAdvance;
    }
    Cycles probe_cost(EventKind, trace::EventId, trace::ProcId,
                      std::uint64_t) const override {
      return 10000;
    }
  };
  const AdvanceProbe hook;
  const auto cfg = config(2);
  const auto actual = simulate_actual(cfg, chain(4, 0, 100), "t");
  const auto measured = simulate(cfg, chain(4, 0, 100), hook, "t");
  // The probe delays each processor's *next* iteration but not the advance
  // visibility itself: with 2 procs and 4 iterations, iteration 2 (proc 0)
  // starts late, so some slowdown occurs — but far less than 4 x 10000.
  EXPECT_LT(measured.span(), actual.total_time() + 2 * 10000 + 1000);
}

TEST(Engine, DeadlockDetected) {
  Program p;
  const auto var = p.declare_sync_var("S");
  Block body;
  body.nodes.push_back(await(var, {1, 0}));  // waits for its own advance
  body.nodes.push_back(advance(var, {1, 0}));
  p.root().nodes.push_back(
      par_loop("l", LoopKind::kDoacross, Schedule::kCyclic, 2, std::move(body)));
  p.finalize();
  EXPECT_THROW(simulate_actual(config(2), p, "t"), CheckError);
}

TEST(Engine, RepeatedLoopExecutionGetsDistinctEpisodes) {
  Program p;
  const auto var = p.declare_sync_var("S");
  Block body;
  body.nodes.push_back(await(var, {1, -1}));
  body.nodes.push_back(advance(var, {1, 0}));
  Block outer;
  outer.nodes.push_back(
      par_loop("l", LoopKind::kDoacross, Schedule::kCyclic, 4, std::move(body)));
  p.root().nodes.push_back(seq_loop("rep", 3, std::move(outer)));
  p.finalize();
  const auto t = simulate_actual(config(2), p, "t");
  // 3 episodes x 4 advances, all payloads unique (episode-stamped).
  const auto advances = events_of_kind(t, EventKind::kAdvance);
  ASSERT_EQ(advances.size(), 12u);
  std::set<std::int64_t> payloads;
  for (const auto& e : advances) payloads.insert(e.payload);
  EXPECT_EQ(payloads.size(), 12u);
  EXPECT_TRUE(trace::validate(t).empty());
}

TEST(Engine, ScaledAwaitIndexExpressions) {
  // Wavefront-style dependence: iteration i awaits index 2i-20, produced by
  // iteration 2i-20 (always an earlier iteration for i < 20, and skipped
  // while 2i-20 < 0 or >= trip).
  Program p;
  const auto var = p.declare_sync_var("S");
  Block body;
  body.nodes.push_back(compute("w", 20));
  body.nodes.push_back(await(var, {2, -20}));
  body.nodes.push_back(advance(var, {1, 0}));
  p.root().nodes.push_back(par_loop("l", LoopKind::kDoacross,
                                    Schedule::kCyclic, 16, std::move(body)));
  p.finalize();
  const auto t = simulate_actual(config(4), p, "t");
  const auto violations = trace::validate(t);
  EXPECT_TRUE(violations.empty()) << trace::describe(violations);
  // Awaits only for iterations with 0 <= 2i-20 < 16, i.e. i in [10, 15].
  EXPECT_EQ(events_of_kind(t, EventKind::kAwaitEnd).size(), 6u);
}

TEST(Engine, MultipleLocksAreIndependent) {
  Program p;
  const auto lock_a = p.declare_lock("A");
  const auto lock_b = p.declare_lock("B");
  Block body;
  body.nodes.push_back(critical(lock_a, block(compute("a", 40))));
  body.nodes.push_back(critical(lock_b, block(compute("b", 40))));
  p.root().nodes.push_back(par_loop("l", LoopKind::kDoall, Schedule::kCyclic,
                                    16, std::move(body)));
  p.finalize();
  const auto one_lock_time = [&] {
    Program q;
    const auto lock = q.declare_lock("A");
    Block b;
    b.nodes.push_back(critical(lock, block(compute("a", 40))));
    b.nodes.push_back(critical(lock, block(compute("b", 40))));
    q.root().nodes.push_back(par_loop("l", LoopKind::kDoall, Schedule::kCyclic,
                                      16, std::move(b)));
    q.finalize();
    return simulate_actual(config(4), q, "q").total_time();
  }();
  const auto two_locks = simulate_actual(config(4), p, "t");
  EXPECT_TRUE(trace::validate(two_locks).empty());
  // Two independent locks pipeline the two sections; one shared lock
  // serializes them all.
  EXPECT_LT(two_locks.total_time(), one_lock_time);
}

// ---- critical sections ------------------------------------------------------

Program critical_loop(std::int64_t trip, Cycles pre, Cycles inside) {
  Program p;
  const auto lock = p.declare_lock("L");
  Block body;
  body.nodes.push_back(compute("pre", pre));
  body.nodes.push_back(critical(lock, block(compute("cs", inside))));
  p.root().nodes.push_back(par_loop("l", LoopKind::kDoall, Schedule::kCyclic,
                                    trip, std::move(body)));
  p.finalize();
  return p;
}

TEST(Engine, CriticalSectionsMutuallyExclusive) {
  const auto t = simulate_actual(config(4), critical_loop(8, 10, 50), "t");
  EXPECT_TRUE(trace::validate(t).empty());  // includes lock-overlap checks
  EXPECT_EQ(events_of_kind(t, EventKind::kLockAcquire).size(), 8u);
  EXPECT_EQ(events_of_kind(t, EventKind::kLockRelease).size(), 8u);
}

TEST(Engine, ContendedLockSerializes) {
  // All processors hit the critical section at once; the loop time must be
  // at least trip * inside.
  const auto t = simulate_actual(config(4), critical_loop(8, 0, 100), "t");
  EXPECT_GE(t.total_time(), 800);
}

TEST(Engine, UncontendedLockIsCheap) {
  const auto cfg = config(1);
  const auto t = simulate_actual(cfg, critical_loop(2, 0, 10), "t");
  std::size_t acquires = 0;
  Tick prev = 0;
  for (const auto& e : t) {
    if (e.kind == EventKind::kLockAcquire) {
      // The preceding event is the zero-cost "pre" statement's exit; an
      // uncontended acquire costs exactly the acquire latency.
      EXPECT_EQ(e.time - prev, cfg.lock_acquire_cost);
      ++acquires;
    }
    prev = e.time;
  }
  EXPECT_EQ(acquires, 2u);
}

// ---- determinism -------------------------------------------------------------

TEST(Engine, DeterministicAcrossRuns) {
  for (const auto sched :
       {Schedule::kCyclic, Schedule::kBlock, Schedule::kSelf}) {
    const auto a = simulate_actual(config(4), doall(16, 30, sched), "t");
    const auto b = simulate_actual(config(4), doall(16, 30, sched), "t");
    ASSERT_EQ(a.size(), b.size()) << schedule_name(sched);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Engine, TraceMetadataPropagates) {
  auto cfg = config(4);
  cfg.ticks_per_us = 42.0;
  const auto t = simulate_actual(cfg, two_statements(), "my-run");
  EXPECT_EQ(t.info().name, "my-run");
  EXPECT_EQ(t.info().num_procs, 4u);
  EXPECT_DOUBLE_EQ(t.info().ticks_per_us, 42.0);
}

TEST(Engine, TraceIsTimeOrderedAndValid) {
  const auto t = simulate_actual(config(4), chain(16, 20, 10), "t");
  EXPECT_TRUE(t.is_time_ordered());
  const auto violations = trace::validate(t);
  EXPECT_TRUE(violations.empty()) << trace::describe(violations);
}

// ---- ReadyQueue: the engine's indexed min-heap ---------------------------

TEST(ReadyQueue, PopsInTickThenPidOrder) {
  ReadyQueue q;
  q.reset(6);
  q.push(30, 0);
  q.push(10, 4);
  q.push(20, 2);
  q.push(10, 1);  // ties on tick resolve to the lower pid
  q.push(25, 5);
  std::vector<std::pair<trace::Tick, trace::ProcId>> popped;
  while (!q.empty()) {
    popped.push_back(q.top());
    q.pop();
  }
  const std::vector<std::pair<trace::Tick, trace::ProcId>> want = {
      {10, 1}, {10, 4}, {20, 2}, {25, 5}, {30, 0}};
  EXPECT_EQ(popped, want);
}

TEST(ReadyQueue, UpdateReKeysInBothDirections) {
  ReadyQueue q;
  q.reset(4);
  q.push(10, 0);
  q.push(20, 1);
  q.push(30, 2);
  q.update(2, 5);  // decrease-key: jumps to the front
  EXPECT_EQ(q.top(), (std::pair<trace::Tick, trace::ProcId>{5, 2}));
  q.update(2, 40);  // increase-key: sinks to the back
  EXPECT_EQ(q.top(), (std::pair<trace::Tick, trace::ProcId>{10, 0}));
  q.pop();
  q.pop();
  EXPECT_EQ(q.top(), (std::pair<trace::Tick, trace::ProcId>{40, 2}));
}

TEST(ReadyQueue, TracksMembershipAcrossReset) {
  ReadyQueue q;
  q.reset(3);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.contains(1));
  q.push(7, 1);
  EXPECT_TRUE(q.contains(1));
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_FALSE(q.contains(1));
  q.push(9, 1);  // a popped processor may be queued again
  EXPECT_TRUE(q.contains(1));
  q.reset(3);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.contains(1));
}

}  // namespace
}  // namespace perturb::sim
