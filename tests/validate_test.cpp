// Tests for the trace causality validator: each violation kind is triggered
// by a minimal bad trace, and representative good traces pass.
#include <gtest/gtest.h>

#include "trace/validate.hpp"

namespace perturb::trace {
namespace {

Event ev(Tick time, ProcId proc, EventKind kind, ObjectId object = 0,
         std::int64_t payload = 0) {
  Event e;
  e.time = time;
  e.proc = proc;
  e.kind = kind;
  e.object = object;
  e.payload = payload;
  e.id = 1;
  return e;
}

bool has_violation(const std::vector<Violation>& vs, ViolationKind kind) {
  for (const auto& v : vs)
    if (v.kind == kind) return true;
  return false;
}

TEST(Validate, EmptyTraceIsValid) { EXPECT_TRUE(is_valid(Trace({"t", 1, 1.0}))); }

TEST(Validate, WellFormedAdvanceAwaitIsValid) {
  Trace t({"t", 2, 1.0});
  t.append(ev(5, 0, EventKind::kAdvance, 1, 0));
  t.append(ev(6, 1, EventKind::kAwaitBegin, 1, 0));
  t.append(ev(8, 1, EventKind::kAwaitEnd, 1, 0));
  EXPECT_TRUE(is_valid(t));
}

TEST(Validate, AwaitThatWaitedIsValid) {
  Trace t({"t", 2, 1.0});
  t.append(ev(1, 1, EventKind::kAwaitBegin, 1, 0));
  t.append(ev(9, 0, EventKind::kAdvance, 1, 0));
  t.append(ev(12, 1, EventKind::kAwaitEnd, 1, 0));
  EXPECT_TRUE(is_valid(t));
}

TEST(Validate, DetectsNonMonotoneProcessorTime) {
  Trace t({"t", 1, 1.0});
  t.append(ev(10, 0, EventKind::kStmtEnter));
  t.append(ev(5, 0, EventKind::kStmtExit));
  const auto vs = validate(t);
  EXPECT_TRUE(has_violation(vs, ViolationKind::kNonMonotoneProcessorTime));
  EXPECT_FALSE(describe(vs).empty());
}

TEST(Validate, CrossProcessorTimesMayInterleave) {
  Trace t({"t", 2, 1.0});
  t.append(ev(10, 0, EventKind::kStmtEnter));
  t.append(ev(5, 1, EventKind::kStmtEnter));  // different processor: fine
  EXPECT_TRUE(is_valid(t));
}

TEST(Validate, DetectsAwaitEndBeforeAdvance) {
  Trace t({"t", 2, 1.0});
  t.append(ev(1, 1, EventKind::kAwaitBegin, 1, 0));
  t.append(ev(3, 1, EventKind::kAwaitEnd, 1, 0));
  t.append(ev(9, 0, EventKind::kAdvance, 1, 0));
  EXPECT_TRUE(
      has_violation(validate(t), ViolationKind::kAwaitEndBeforeAdvance));
}

TEST(Validate, DetectsAwaitEndWithoutAdvance) {
  Trace t({"t", 1, 1.0});
  t.append(ev(1, 0, EventKind::kAwaitBegin, 1, 0));
  t.append(ev(3, 0, EventKind::kAwaitEnd, 1, 0));
  EXPECT_TRUE(
      has_violation(validate(t), ViolationKind::kAwaitEndWithoutAdvance));
}

TEST(Validate, DetectsAwaitEndWithoutBegin) {
  Trace t({"t", 1, 1.0});
  t.append(ev(1, 0, EventKind::kAdvance, 1, 0));
  t.append(ev(3, 0, EventKind::kAwaitEnd, 1, 0));
  EXPECT_TRUE(has_violation(validate(t), ViolationKind::kAwaitEndWithoutBegin));
}

TEST(Validate, DetectsDuplicateAdvance) {
  Trace t({"t", 1, 1.0});
  t.append(ev(1, 0, EventKind::kAdvance, 1, 7));
  t.append(ev(3, 0, EventKind::kAdvance, 1, 7));
  EXPECT_TRUE(has_violation(validate(t), ViolationKind::kDuplicateAdvance));
}

TEST(Validate, DistinctIndicesAreNotDuplicates) {
  Trace t({"t", 1, 1.0});
  t.append(ev(1, 0, EventKind::kAdvance, 1, 7));
  t.append(ev(3, 0, EventKind::kAdvance, 1, 8));
  t.append(ev(5, 0, EventKind::kAdvance, 2, 7));  // other variable
  EXPECT_TRUE(is_valid(t));
}

TEST(Validate, WellFormedLockSequenceIsValid) {
  Trace t({"t", 2, 1.0});
  t.append(ev(1, 0, EventKind::kLockAcquire, 3));
  t.append(ev(5, 0, EventKind::kLockRelease, 3));
  t.append(ev(6, 1, EventKind::kLockAcquire, 3));
  t.append(ev(9, 1, EventKind::kLockRelease, 3));
  EXPECT_TRUE(is_valid(t));
}

TEST(Validate, DetectsLockOverlap) {
  Trace t({"t", 2, 1.0});
  t.append(ev(1, 0, EventKind::kLockAcquire, 3));
  t.append(ev(5, 0, EventKind::kLockRelease, 3));
  t.append(ev(4, 1, EventKind::kLockAcquire, 3));  // before previous release
  t.append(ev(9, 1, EventKind::kLockRelease, 3));
  EXPECT_TRUE(has_violation(validate(t), ViolationKind::kLockOverlap));
}

TEST(Validate, DetectsDoubleAcquire) {
  Trace t({"t", 2, 1.0});
  t.append(ev(1, 0, EventKind::kLockAcquire, 3));
  t.append(ev(2, 1, EventKind::kLockAcquire, 3));
  const auto vs = validate(t);
  EXPECT_TRUE(has_violation(vs, ViolationKind::kLockUnbalanced));
}

TEST(Validate, DetectsReleaseWithoutAcquire) {
  Trace t({"t", 1, 1.0});
  t.append(ev(1, 0, EventKind::kLockRelease, 3));
  EXPECT_TRUE(has_violation(validate(t), ViolationKind::kLockUnbalanced));
}

TEST(Validate, DetectsReleaseByWrongProcessor) {
  Trace t({"t", 2, 1.0});
  t.append(ev(1, 0, EventKind::kLockAcquire, 3));
  t.append(ev(2, 1, EventKind::kLockRelease, 3));
  EXPECT_TRUE(has_violation(validate(t), ViolationKind::kLockUnbalanced));
}

TEST(Validate, DetectsLockNeverReleased) {
  Trace t({"t", 1, 1.0});
  t.append(ev(1, 0, EventKind::kLockAcquire, 3));
  EXPECT_TRUE(has_violation(validate(t), ViolationKind::kLockUnbalanced));
}

// In measured traces a release makes the lock visible to waiters before the
// release probe runs, so the hand-off acquire can be recorded up to one
// probe cost before the release that granted it.  With slack the validator
// must read this as instrumentation reordering, not corruption.
TEST(Validate, SlackAcceptsProbeReorderedLockHandoff) {
  Trace t({"t", 2, 1.0});
  t.append(ev(10, 0, EventKind::kLockAcquire, 3));
  t.append(ev(100, 1, EventKind::kLockAcquire, 3));  // granted pre-probe
  t.append(ev(120, 0, EventKind::kLockRelease, 3));  // recorded post-probe
  t.append(ev(200, 1, EventKind::kLockRelease, 3));
  EXPECT_EQ(validate(t).size(), 3u);  // strict: overlap cascade
  ValidateOptions opts;
  opts.sync_slack = 20;
  EXPECT_TRUE(validate(t, opts).empty());
  opts.sync_slack = 19;  // one tick short of the 20-tick overlap
  EXPECT_TRUE(has_violation(validate(t, opts), ViolationKind::kLockUnbalanced));
}

TEST(Validate, SlackAcceptsCriticalSectionInsideDelayedRelease) {
  // The hand-off acquirer finishes its whole critical section before the
  // previous holder's delayed release event appears, and the lock passes on
  // to a third processor explained by that inner release.
  Trace t({"t", 3, 1.0});
  t.append(ev(10, 0, EventKind::kLockAcquire, 3));
  t.append(ev(100, 1, EventKind::kLockAcquire, 3));
  t.append(ev(105, 1, EventKind::kLockRelease, 3));
  t.append(ev(110, 2, EventKind::kLockAcquire, 3));
  t.append(ev(120, 0, EventKind::kLockRelease, 3));
  t.append(ev(130, 2, EventKind::kLockRelease, 3));
  ValidateOptions opts;
  opts.sync_slack = 20;
  EXPECT_TRUE(validate(t, opts).empty());
}

TEST(Validate, SlackStillDetectsGenuineLockViolations) {
  ValidateOptions opts;
  opts.sync_slack = 200;
  {
    Trace t({"t", 2, 1.0});  // double acquire, no release ever explains it
    t.append(ev(1, 0, EventKind::kLockAcquire, 3));
    t.append(ev(2, 1, EventKind::kLockAcquire, 3));
    EXPECT_TRUE(
        has_violation(validate(t, opts), ViolationKind::kLockUnbalanced));
  }
  {
    Trace t({"t", 2, 1.0});  // release by a proc that never acquired
    t.append(ev(1, 0, EventKind::kLockAcquire, 3));
    t.append(ev(5, 1, EventKind::kLockRelease, 3));
    EXPECT_TRUE(
        has_violation(validate(t, opts), ViolationKind::kLockUnbalanced));
  }
  {
    Trace t({"t", 1, 1.0});  // held at end
    t.append(ev(1, 0, EventKind::kLockAcquire, 3));
    EXPECT_TRUE(
        has_violation(validate(t, opts), ViolationKind::kLockUnbalanced));
  }
}

TEST(Validate, WellFormedBarrierIsValid) {
  Trace t({"t", 2, 1.0});
  t.append(ev(1, 0, EventKind::kBarrierArrive, 9, 0));
  t.append(ev(4, 1, EventKind::kBarrierArrive, 9, 0));
  t.append(ev(6, 0, EventKind::kBarrierDepart, 9, 0));
  t.append(ev(6, 1, EventKind::kBarrierDepart, 9, 0));
  EXPECT_TRUE(is_valid(t));
}

TEST(Validate, DetectsDepartBeforeLastArrive) {
  Trace t({"t", 2, 1.0});
  t.append(ev(1, 0, EventKind::kBarrierArrive, 9, 0));
  t.append(ev(2, 0, EventKind::kBarrierDepart, 9, 0));
  t.append(ev(5, 1, EventKind::kBarrierArrive, 9, 0));
  t.append(ev(6, 1, EventKind::kBarrierDepart, 9, 0));
  const auto vs = validate(t);
  EXPECT_TRUE(has_violation(vs, ViolationKind::kBarrierOrder));
}

TEST(Validate, DetectsIncompleteBarrier) {
  Trace t({"t", 2, 1.0});
  t.append(ev(1, 0, EventKind::kBarrierArrive, 9, 0));
  t.append(ev(2, 1, EventKind::kBarrierArrive, 9, 0));
  t.append(ev(5, 0, EventKind::kBarrierDepart, 9, 0));
  EXPECT_TRUE(has_violation(validate(t), ViolationKind::kBarrierIncomplete));
}

TEST(Validate, SeparateBarrierEpisodesAreIndependent) {
  Trace t({"t", 1, 1.0});
  t.append(ev(1, 0, EventKind::kBarrierArrive, 9, 0));
  t.append(ev(2, 0, EventKind::kBarrierDepart, 9, 0));
  t.append(ev(5, 0, EventKind::kBarrierArrive, 9, 1));  // next episode
  t.append(ev(6, 0, EventKind::kBarrierDepart, 9, 1));
  EXPECT_TRUE(is_valid(t));
}

TEST(Validate, SyncSlackForgivesProbeInflatedProducers) {
  // Measured-trace artifact: the advance's record is inflated by its probe,
  // so a satisfied awaitE can be recorded slightly earlier.
  Trace t({"t", 2, 1.0});
  t.append(ev(1, 1, EventKind::kAwaitBegin, 1, 0));
  t.append(ev(8, 1, EventKind::kAwaitEnd, 1, 0));
  t.append(ev(12, 0, EventKind::kAdvance, 1, 0));  // record 4 ticks late
  EXPECT_TRUE(has_violation(validate(t), ViolationKind::kAwaitEndBeforeAdvance));
  ValidateOptions opts;
  opts.sync_slack = 5;
  EXPECT_TRUE(validate(t, opts).empty());
  opts.sync_slack = 3;  // not enough slack
  EXPECT_TRUE(
      has_violation(validate(t, opts), ViolationKind::kAwaitEndBeforeAdvance));
}

TEST(Validate, SyncSlackAppliesToLocksAndBarriers) {
  {
    Trace t({"t", 2, 1.0});
    t.append(ev(1, 0, EventKind::kLockAcquire, 3));
    t.append(ev(10, 0, EventKind::kLockRelease, 3));
    t.append(ev(7, 1, EventKind::kLockAcquire, 3));  // 3 ticks early
    t.append(ev(20, 1, EventKind::kLockRelease, 3));
    ValidateOptions opts;
    opts.sync_slack = 4;
    EXPECT_TRUE(validate(t, opts).empty());
  }
  {
    Trace t({"t", 2, 1.0});
    t.append(ev(1, 0, EventKind::kBarrierArrive, 9, 0));
    t.append(ev(10, 1, EventKind::kBarrierArrive, 9, 0));
    t.append(ev(8, 0, EventKind::kBarrierDepart, 9, 0));  // 2 ticks early
    t.append(ev(11, 1, EventKind::kBarrierDepart, 9, 0));
    ValidateOptions opts;
    opts.sync_slack = 3;
    EXPECT_TRUE(validate(t, opts).empty());
  }
}

TEST(Validate, ViolationKindNamesAreDistinct) {
  EXPECT_STRNE(violation_kind_name(ViolationKind::kLockOverlap),
               violation_kind_name(ViolationKind::kLockUnbalanced));
  EXPECT_STRNE(violation_kind_name(ViolationKind::kBarrierOrder),
               violation_kind_name(ViolationKind::kBarrierIncomplete));
}

}  // namespace
}  // namespace perturb::trace
