// Tests for the Livermore workload suite: native kernels (determinism,
// checksum stability, recurrence behaviour) and the IR lowerings (structure,
// Figure 3 synchronization placement, execution on the simulator).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "loops/kernels.hpp"
#include "loops/programs.hpp"
#include "sim/engine.hpp"
#include "support/check.hpp"
#include "trace/validate.hpp"

namespace perturb::loops {
namespace {

TEST(Kernels, AllKernelsRunAndProduceFiniteChecksums) {
  LfkData data(1001);
  for (int k = 1; k <= kNumKernels; ++k) {
    data.reset();
    const double checksum = run_kernel(k, data);
    EXPECT_TRUE(std::isfinite(checksum)) << "kernel " << k;
  }
}

TEST(Kernels, DeterministicAcrossRuns) {
  LfkData a(1001, 42);
  LfkData b(1001, 42);
  for (int k = 1; k <= kNumKernels; ++k) {
    a.reset();
    b.reset();
    EXPECT_DOUBLE_EQ(run_kernel(k, a), run_kernel(k, b)) << "kernel " << k;
  }
}

TEST(Kernels, SeedChangesData) {
  LfkData a(1001, 1);
  LfkData b(1001, 2);
  EXPECT_NE(run_kernel(3, a), run_kernel(3, b));
}

TEST(Kernels, InnerProductMatchesDirectComputation) {
  LfkData d(256);
  double expected = 0.0;
  for (std::int64_t i = 0; i < 256; ++i)
    expected += d.z[static_cast<std::size_t>(i)] *
                d.x[static_cast<std::size_t>(i)];
  EXPECT_DOUBLE_EQ(run_kernel(3, d), expected);
}

TEST(Kernels, FirstSumIsPrefixSum) {
  LfkData d(128);
  const auto y = d.y;
  run_kernel(11, d);
  double acc = 0.0;
  for (std::int64_t i = 0; i < 128; ++i) {
    acc += y[static_cast<std::size_t>(i)];
    EXPECT_NEAR(d.x[static_cast<std::size_t>(i)], acc, 1e-9);
  }
}

TEST(Kernels, FirstDifference) {
  LfkData d(128);
  const auto y = d.y;
  run_kernel(12, d);
  for (std::int64_t i = 0; i < 128; ++i)
    EXPECT_DOUBLE_EQ(d.x[static_cast<std::size_t>(i)],
                     y[static_cast<std::size_t>(i + 1)] -
                         y[static_cast<std::size_t>(i)]);
}

TEST(Kernels, FirstMinimumFindsPlantedMinimum) {
  LfkData d(512);
  // run_kernel(24) plants -1e10 at n/2 and must find it.
  EXPECT_DOUBLE_EQ(run_kernel(24, d), 256.0);
}

TEST(Kernels, RejectsUnknownKernel) {
  LfkData d(64);
  EXPECT_THROW(run_kernel(0, d), CheckError);
  EXPECT_THROW(run_kernel(25, d), CheckError);
}

TEST(Kernels, RejectsTinyWorkspace) {
  EXPECT_THROW(LfkData(8), CheckError);
}

TEST(Kernels, NamesAndStudySets) {
  EXPECT_STREQ(kernel_name(3), "Inner Product");
  EXPECT_STREQ(kernel_name(17), "Implicit, Conditional Computation");
  EXPECT_TRUE(is_doacross_kernel(3));
  EXPECT_TRUE(is_doacross_kernel(4));
  EXPECT_TRUE(is_doacross_kernel(17));
  EXPECT_FALSE(is_doacross_kernel(1));
  EXPECT_EQ(doacross_study_loops(), (std::vector<int>{3, 4, 17}));
  EXPECT_EQ(sequential_study_loops().size(), 9u);
}

// ---- IR specs ---------------------------------------------------------

TEST(LoopIr, EveryKernelHasASpec) {
  for (int k = 1; k <= kNumKernels; ++k) {
    const auto& spec = loop_ir_spec(k);
    EXPECT_EQ(spec.number, k);
    EXPECT_FALSE(spec.pre.empty()) << "kernel " << k;
    EXPECT_GT(default_trip(k), 0);
  }
  EXPECT_THROW(loop_ir_spec(0), CheckError);
  EXPECT_THROW(loop_ir_spec(25), CheckError);
}

TEST(LoopIr, DoacrossLoopsHaveFigure3Structure) {
  for (const int k : {3, 4, 17}) {
    const auto& spec = loop_ir_spec(k);
    EXPECT_EQ(spec.distance, 1) << "kernel " << k;
    EXPECT_FALSE(spec.guarded.empty());
  }
  // Loops 3 and 4: the guarded update is compiler-generated (untraced);
  // loop 17's guarded region contains source statements (traced).
  EXPECT_FALSE(loop_ir_spec(3).guarded[0].traced);
  EXPECT_FALSE(loop_ir_spec(4).guarded[0].traced);
  for (const auto& s : loop_ir_spec(17).guarded) EXPECT_TRUE(s.traced);
  EXPECT_GE(loop_ir_spec(17).guarded.size(), 3u);
}

TEST(LoopIr, SequentialProgramsSimulateCleanly) {
  const sim::MachineConfig cfg{.num_procs = 1};
  for (int k = 1; k <= kNumKernels; ++k) {
    const auto prog = make_sequential_ir(k, 64);
    const auto t = sim::simulate_actual(cfg, prog, "t");
    EXPECT_GT(t.total_time(), 0) << "kernel " << k;
    EXPECT_TRUE(trace::validate(t).empty()) << "kernel " << k;
  }
}

TEST(LoopIr, ConcurrentProgramsSimulateCleanly) {
  const sim::MachineConfig cfg{.num_procs = 4};
  for (int k = 1; k <= kNumKernels; ++k) {
    const auto prog = make_concurrent_ir(k, 64);
    const auto t = sim::simulate_actual(cfg, prog, "t");
    const auto violations = trace::validate(t);
    EXPECT_TRUE(violations.empty())
        << "kernel " << k << ": " << trace::describe(violations);
  }
}

TEST(LoopIr, DoacrossProgramsEmitSyncEvents) {
  const sim::MachineConfig cfg{.num_procs = 4};
  for (const int k : {3, 4, 17}) {
    const auto prog = make_concurrent_ir(k, 32);
    const auto t = sim::simulate_actual(cfg, prog, "t");
    std::size_t advances = 0;
    std::size_t awaits = 0;
    for (const auto& e : t) {
      advances += e.kind == trace::EventKind::kAdvance ? 1 : 0;
      awaits += e.kind == trace::EventKind::kAwaitEnd ? 1 : 0;
    }
    EXPECT_EQ(advances, 32u) << "kernel " << k;
    EXPECT_EQ(awaits, 31u);  // distance 1: first iteration skips
  }
}

TEST(LoopIr, ConcurrentSpeedsUpParallelizableKernels) {
  const auto prog = make_concurrent_ir(1, 128);
  const auto seq = make_sequential_ir(1, 128);
  const sim::MachineConfig cfg8{.num_procs = 8};
  const sim::MachineConfig cfg1{.num_procs = 1};
  const auto t_par = sim::simulate_actual(cfg8, prog, "par");
  const auto t_seq = sim::simulate_actual(cfg1, seq, "seq");
  EXPECT_LT(t_par.total_time() * 4, t_seq.total_time());
}

TEST(LoopIr, UnparallelizableKernelFallsBackToSequential) {
  // Kernel 5 (tri-diagonal) is marked neither parallelizable nor DOACROSS.
  const auto prog = make_concurrent_ir(5, 64);
  const sim::MachineConfig cfg{.num_procs = 4};
  const auto t = sim::simulate_actual(cfg, prog, "t");
  for (const auto& e : t) EXPECT_EQ(e.proc, 0);  // runs on the master only
}

TEST(LoopIr, SpreadVariesIterationCostsDeterministically) {
  // Loop 17's statements have spread > 0: per-iteration costs differ but are
  // identical across runs.
  const auto p1 = make_concurrent_ir(17, 32);
  const auto p2 = make_concurrent_ir(17, 32);
  const sim::MachineConfig cfg{.num_procs = 2};
  const auto t1 = sim::simulate_actual(cfg, p1, "t");
  const auto t2 = sim::simulate_actual(cfg, p2, "t");
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) EXPECT_EQ(t1[i], t2[i]);

  // And the costs genuinely vary across iterations.
  std::set<trace::Tick> durations;
  trace::Tick enter = 0;
  for (const auto& e : t1) {
    if (e.kind == trace::EventKind::kStmtEnter && e.id == 3) enter = e.time;
    if (e.kind == trace::EventKind::kStmtExit && e.id == 3)
      durations.insert(e.time - enter);
  }
  EXPECT_GT(durations.size(), 4u);
}

}  // namespace
}  // namespace perturb::loops
