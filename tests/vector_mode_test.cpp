// Tests for vector-mode lowering (§3's vector executions): strip-mining,
// event volume, speedup, and analysis accuracy.
#include <gtest/gtest.h>

#include "experiments/experiments.hpp"
#include "loops/kernels.hpp"
#include "loops/programs.hpp"
#include "sim/engine.hpp"
#include "support/check.hpp"
#include "trace/validate.hpp"

namespace perturb::loops {
namespace {

TEST(VectorMode, StripMinesIntoVectorOps) {
  const auto prog = make_vector_ir(1, 100, {.vector_length = 32});
  const sim::MachineConfig cfg{.num_procs = 1};
  const auto t = sim::simulate_actual(cfg, prog, "t");
  // ceil(100/32) = 4 strips, 1 statement each => 4 enter/exit pairs.
  std::size_t enters = 0;
  for (const auto& e : t)
    enters += e.kind == trace::EventKind::kStmtEnter ? 1 : 0;
  EXPECT_EQ(enters, 4u);
  EXPECT_TRUE(trace::validate(t).empty());
}

TEST(VectorMode, PartialLastStripCostsLess) {
  const VectorParams params{.vector_length = 32, .element_speedup = 4.0,
                            .startup = 10};
  const auto prog = make_vector_ir(1, 40, params);  // strips of 32 and 8
  const sim::MachineConfig cfg{.num_procs = 1};
  const auto t = sim::simulate_actual(cfg, prog, "t");
  std::vector<trace::Tick> durations;
  trace::Tick enter = 0;
  for (const auto& e : t) {
    if (e.kind == trace::EventKind::kStmtEnter) enter = e.time;
    if (e.kind == trace::EventKind::kStmtExit)
      durations.push_back(e.time - enter);
  }
  ASSERT_EQ(durations.size(), 2u);
  // 22 cycles/element: full strip 10 + 22*32/4 = 186; partial 10 + 22*8/4 = 54.
  EXPECT_EQ(durations[0], 186);
  EXPECT_EQ(durations[1], 54);
}

TEST(VectorMode, FasterThanScalar) {
  const sim::MachineConfig cfg{.num_procs = 1};
  for (const int k : {1, 7, 12, 22}) {
    const auto scalar = sim::simulate_actual(cfg, make_sequential_ir(k, 512), "s");
    const auto vec = sim::simulate_actual(cfg, make_vector_ir(k, 512), "v");
    EXPECT_LT(vec.total_time() * 2, scalar.total_time()) << "kernel " << k;
    EXPECT_LT(vec.size(), scalar.size() / 4) << "kernel " << k;
  }
}

TEST(VectorMode, UnvectorizableKernelFallsBackToSequential) {
  // Kernel 5 carries a recurrence: vector lowering must match sequential.
  const sim::MachineConfig cfg{.num_procs = 1};
  const auto seq = sim::simulate_actual(cfg, make_sequential_ir(5, 128), "s");
  const auto vec = sim::simulate_actual(cfg, make_vector_ir(5, 128), "v");
  EXPECT_EQ(seq.total_time(), vec.total_time());
  EXPECT_EQ(seq.size(), vec.size());
}

TEST(VectorMode, RejectsBadParameters) {
  EXPECT_THROW(make_vector_ir(1, 64, {.vector_length = 0}), CheckError);
  EXPECT_THROW(make_vector_ir(1, 64, {.element_speedup = 0.0}), CheckError);
}

TEST(VectorMode, TimeBasedAnalysisAccurate) {
  // §3: vector-mode approximations were "extremely accurate".
  experiments::Setup setup;
  for (const int k : {1, 7, 22}) {
    const auto run = experiments::run_vector_experiment(k, 1001, setup);
    EXPECT_GT(run.tb_quality.measured_over_actual, 1.2) << "kernel " << k;
    EXPECT_NEAR(run.tb_quality.approx_over_actual, 1.0, 0.03) << "kernel " << k;
  }
}

TEST(VectorMode, LessPerturbedThanScalar) {
  experiments::Setup setup;
  const auto scalar = experiments::run_sequential_experiment(7, 1001, setup);
  const auto vec = experiments::run_vector_experiment(7, 1001, setup);
  EXPECT_LT(vec.tb_quality.measured_over_actual,
            scalar.tb_quality.measured_over_actual);
  EXPECT_LT(vec.measured.size(), scalar.measured.size() / 8);
}

}  // namespace
}  // namespace perturb::loops
