// Tests for counting-semaphore support across the stack: IR declaration and
// validation, engine semantics (capacity-bounded concurrency, FIFO grants),
// trace validation, waiting analysis, and the event-based dependency model
// (the k-th P() waits for the (k-capacity)-th V()).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/waiting.hpp"
#include "core/eventbased.hpp"
#include "instr/plan.hpp"
#include "sim/engine.hpp"
#include "support/check.hpp"
#include "trace/validate.hpp"

namespace perturb::sim {
namespace {

using trace::Event;
using trace::EventKind;
using trace::Tick;
using trace::Trace;

/// DOALL over `trip` iterations: `pre` cycles of independent work, then
/// `inside` cycles under a semaphore of `capacity`.
Program sem_program(std::int64_t trip, std::int64_t capacity, Cycles pre,
                    Cycles inside, bool traced_inside = false) {
  Program p;
  const auto sem = p.declare_semaphore("S", capacity);
  Block body;
  if (pre > 0) body.nodes.push_back(compute("pre", pre));
  Block region;
  region.nodes.push_back(traced_inside ? compute("inside", inside)
                                       : raw_compute("inside", inside));
  body.nodes.push_back(semaphore_region(sem, std::move(region)));
  p.root().nodes.push_back(par_loop("l", LoopKind::kDoall, Schedule::kCyclic,
                                    trip, std::move(body)));
  p.finalize();
  return p;
}

/// Maximum number of processors simultaneously inside the region, from the
/// acquire/release interleaving.
std::int64_t max_inside(const Trace& t) {
  std::int64_t inside = 0;
  std::int64_t peak = 0;
  for (const auto& e : t) {
    if (e.kind == EventKind::kSemAcquire) peak = std::max(peak, ++inside);
    if (e.kind == EventKind::kSemRelease) --inside;
  }
  return peak;
}

TEST(SemaphoreIr, DeclarationAndDump) {
  Program p;
  const auto sem = p.declare_semaphore("pool", 3);
  EXPECT_EQ(p.num_semaphores(), 1u);
  EXPECT_EQ(p.semaphore_name(sem), "pool");
  EXPECT_EQ(p.semaphore_capacity(sem), 3);
  Block body;
  body.nodes.push_back(semaphore_region(sem, block(compute("x", 1))));
  p.root().nodes.push_back(
      par_loop("l", LoopKind::kDoall, Schedule::kCyclic, 4, std::move(body)));
  p.finalize();
  EXPECT_NE(p.dump().find("semaphore (pool, capacity=3)"), std::string::npos);
}

TEST(SemaphoreIr, RejectsBadDeclarations) {
  Program p;
  EXPECT_THROW(p.declare_semaphore("bad", 0), CheckError);
  p.root().nodes.push_back(
      semaphore_region(1, block(compute("x", 1))));  // undeclared, top level
  EXPECT_THROW(p.finalize(), CheckError);
}

TEST(SemaphoreEngine, CapacityBoundsConcurrency) {
  for (const std::int64_t capacity : {1, 2, 3}) {
    const auto prog = sem_program(16, capacity, 0, 100);
    const MachineConfig cfg{.num_procs = 8};
    const auto t = simulate_actual(cfg, prog, "t");
    EXPECT_LE(max_inside(t), capacity) << "capacity " << capacity;
    EXPECT_EQ(max_inside(t), capacity);  // contention saturates it
    EXPECT_TRUE(trace::validate(t).empty());
  }
}

TEST(SemaphoreEngine, HigherCapacityIsFaster) {
  const MachineConfig cfg{.num_procs = 8};
  const auto t1 = simulate_actual(cfg, sem_program(32, 1, 0, 100), "c1");
  const auto t4 = simulate_actual(cfg, sem_program(32, 4, 0, 100), "c4");
  EXPECT_GT(t1.total_time(), 2 * t4.total_time());
}

TEST(SemaphoreEngine, CapacityOneBehavesLikeALock) {
  const MachineConfig cfg{.num_procs = 4};
  const auto t = simulate_actual(cfg, sem_program(16, 1, 10, 50), "t");
  // Regions serialized: total at least trip * inside.
  EXPECT_GE(t.total_time(), 16 * 50);
  EXPECT_EQ(max_inside(t), 1);
}

TEST(SemaphoreEngine, UncontendedAcquireIsCheap) {
  const MachineConfig cfg{.num_procs = 1};
  const auto t = simulate_actual(cfg, sem_program(2, 4, 0, 10), "t");
  Tick prev = 0;
  std::size_t acquires = 0;
  for (const auto& e : t) {
    if (e.kind == EventKind::kSemAcquire) {
      EXPECT_EQ(e.time - prev, cfg.sem_acquire_cost);
      ++acquires;
    }
    prev = e.time;
  }
  EXPECT_EQ(acquires, 2u);
}

TEST(SemaphoreEngine, DeterministicAndSelfSchedulable) {
  const MachineConfig cfg{.num_procs = 4};
  Program a = sem_program(24, 2, 30, 60);
  Program b = sem_program(24, 2, 30, 60);
  const auto ta = simulate_actual(cfg, a, "t");
  const auto tb = simulate_actual(cfg, b, "t");
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(ta[i], tb[i]);
}

// ---- validator --------------------------------------------------------

TEST(SemaphoreValidate, BalancedTraceIsValid) {
  Trace t({"t", 2, 1.0});
  auto ev = [&](Tick time, trace::ProcId proc, EventKind k) {
    Event e;
    e.time = time;
    e.proc = proc;
    e.kind = k;
    e.object = 3;
    t.append(e);
  };
  ev(1, 0, EventKind::kSemAcquire);
  ev(2, 1, EventKind::kSemAcquire);  // capacity >= 2: overlap is legal
  ev(5, 0, EventKind::kSemRelease);
  ev(6, 1, EventKind::kSemRelease);
  EXPECT_TRUE(trace::validate(t).empty());
}

TEST(SemaphoreValidate, DetectsReleaseWithoutAcquire) {
  Trace t({"t", 1, 1.0});
  Event e;
  e.time = 1;
  e.kind = EventKind::kSemRelease;
  e.object = 3;
  t.append(e);
  const auto vs = trace::validate(t);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].kind, trace::ViolationKind::kSemaphoreUnbalanced);
}

TEST(SemaphoreValidate, DetectsLeakedPermit) {
  Trace t({"t", 1, 1.0});
  Event e;
  e.time = 1;
  e.kind = EventKind::kSemAcquire;
  e.object = 3;
  t.append(e);
  const auto vs = trace::validate(t);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].kind, trace::ViolationKind::kSemaphoreUnbalanced);
}

// ---- event-based model ------------------------------------------------------

core::AnalysisOverheads overheads_from(const instr::InstrumentationPlan& plan,
                                       const MachineConfig& cfg) {
  core::AnalysisOverheads ov;
  for (std::uint8_t k = 0; k < trace::kNumEventKinds; ++k)
    ov.probe[k] = plan.mean_cost(static_cast<EventKind>(k));
  ov.s_nowait = cfg.await_check_cost;
  ov.s_wait = cfg.await_resume_cost;
  ov.lock_acquire = cfg.lock_acquire_cost;
  ov.sem_acquire = cfg.sem_acquire_cost;
  ov.barrier_depart = cfg.barrier_depart_cost;
  return ov;
}

TEST(SemaphoreEventBased, RecoversContendedRegion) {
  // Probes inside the region stretch it in the measurement; the semaphore
  // model rebuilds the permit hand-off chain with probes removed.
  const MachineConfig cfg{.num_procs = 8};
  const auto prog = sem_program(64, 2, 60, 50, /*traced_inside=*/true);
  const auto plan = instr::InstrumentationPlan::full({175.0, 0.0}, {90.0, 0.0},
                                                     {60.0, 0.0}, 1);
  const auto actual = simulate_actual(cfg, prog, "a");
  const auto measured = simulate(cfg, prog, plan, "m");
  ASSERT_GT(measured.total_time(), 2 * actual.total_time());

  core::EventBasedOptions opt;
  opt.semaphore_capacity[1] = 2;  // the asserted external knowledge
  const auto result = core::event_based_approximation(
      measured, overheads_from(plan, cfg), opt);
  const double ratio = static_cast<double>(result.approx.total_time()) /
                       static_cast<double>(actual.total_time());
  EXPECT_NEAR(ratio, 1.0, 0.12);
  const auto violations = trace::validate(result.approx);
  EXPECT_TRUE(violations.empty()) << trace::describe(violations);
}

TEST(SemaphoreEventBased, WithoutCapacityFallsBackToTimeBased) {
  const MachineConfig cfg{.num_procs = 8};
  const auto prog = sem_program(64, 2, 60, 50, /*traced_inside=*/true);
  const auto plan = instr::InstrumentationPlan::full({175.0, 0.0}, {90.0, 0.0},
                                                     {60.0, 0.0}, 1);
  const auto actual = simulate_actual(cfg, prog, "a");
  const auto measured = simulate(cfg, prog, plan, "m");
  const auto result = core::event_based_approximation(
      measured, overheads_from(plan, cfg), {});  // no capacity knowledge
  const double ratio = static_cast<double>(result.approx.total_time()) /
                       static_cast<double>(actual.total_time());
  // Without the model, the measured contention stays in the approximation.
  EXPECT_GT(ratio, 1.3);
}

// ---- waiting analysis -----------------------------------------------------

TEST(SemaphoreWaiting, ContentionShowsAsWaiting) {
  const MachineConfig cfg{.num_procs = 8};
  const auto t = simulate_actual(cfg, sem_program(32, 1, 0, 100), "t");
  analysis::WaitClassifier c;
  c.sem_acquire = cfg.sem_acquire_cost;
  c.tolerance = 2;
  const auto stats = analysis::waiting_analysis(t, c);
  bool saw_sem_wait = false;
  for (const auto& w : stats.intervals)
    saw_sem_wait |= w.cause == EventKind::kSemAcquire;
  EXPECT_TRUE(saw_sem_wait);
}

}  // namespace
}  // namespace perturb::sim
