// Tests for time-based perturbation analysis (§3): exact recovery on
// independent execution, per-event accuracy, clamping, and its documented
// failure mode on dependent execution.
#include <gtest/gtest.h>

#include "core/timebased.hpp"
#include "instr/plan.hpp"
#include "sim/engine.hpp"
#include "trace/trace_stats.hpp"
#include "trace/validate.hpp"

namespace perturb::core {
namespace {

using trace::EventKind;
using trace::Trace;

AnalysisOverheads overheads_from_plan(const instr::InstrumentationPlan& plan,
                                      const sim::MachineConfig& cfg) {
  AnalysisOverheads ov;
  for (std::uint8_t k = 0; k < trace::kNumEventKinds; ++k)
    ov.probe[k] = plan.mean_cost(static_cast<EventKind>(k));
  ov.s_nowait = cfg.await_check_cost;
  ov.s_wait = cfg.await_resume_cost;
  ov.lock_acquire = cfg.lock_acquire_cost;
  ov.barrier_depart = cfg.barrier_depart_cost;
  return ov;
}

sim::Program sequential_program(std::int64_t trip = 50) {
  sim::Program p;
  sim::Block body;
  body.nodes.push_back(sim::compute("a", 20));
  body.nodes.push_back(sim::compute("b", 35));
  p.root().nodes.push_back(sim::seq_loop("l", trip, std::move(body)));
  p.finalize();
  return p;
}

TEST(TimeBased, ExactRecoveryWithoutJitter) {
  const sim::MachineConfig cfg{.num_procs = 1};
  const auto prog = sequential_program();
  const auto plan = instr::InstrumentationPlan::statements_only({150.0, 0.0}, 1);
  const auto actual = sim::simulate_actual(cfg, prog, "a");
  const auto measured = sim::simulate(cfg, prog, plan, "m");
  ASSERT_GT(measured.total_time(), 2 * actual.total_time());

  const auto approx =
      time_based_approximation(measured, overheads_from_plan(plan, cfg));
  // Total time recovered exactly.
  EXPECT_EQ(approx.total_time(), actual.total_time());
  // Every event time recovered exactly.
  const auto cmp = trace::compare(approx, actual);
  EXPECT_EQ(cmp.matched_events, actual.size());
  EXPECT_EQ(cmp.max_abs_time_error, 0);
}

TEST(TimeBased, NearExactRecoveryWithJitter) {
  // Cumulative-subtraction residual is a zero-mean random walk: relative
  // error shrinks as 1/sqrt(n), so a longer loop keeps the bound tight.
  const sim::MachineConfig cfg{.num_procs = 1};
  const auto prog = sequential_program(500);
  const auto plan = instr::InstrumentationPlan::statements_only({150.0, 0.10}, 7);
  const auto actual = sim::simulate_actual(cfg, prog, "a");
  const auto measured = sim::simulate(cfg, prog, plan, "m");
  const auto approx =
      time_based_approximation(measured, overheads_from_plan(plan, cfg));
  const double ratio = static_cast<double>(approx.total_time()) /
                       static_cast<double>(actual.total_time());
  EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(TimeBased, IndependentForkJoinRecovered) {
  // DOALL: no inter-processor dependencies beyond the closing barrier; the
  // time-based model is expected to be accurate (§3).
  sim::Program p;
  sim::Block body;
  body.nodes.push_back(sim::compute("w", 200));
  p.root().nodes.push_back(sim::par_loop("l", sim::LoopKind::kDoall,
                                         sim::Schedule::kCyclic, 32,
                                         std::move(body)));
  p.finalize();
  const sim::MachineConfig cfg{.num_procs = 4};
  const auto plan = instr::InstrumentationPlan::statements_only({150.0, 0.0}, 1);
  const auto actual = sim::simulate_actual(cfg, p, "a");
  const auto measured = sim::simulate(cfg, p, plan, "m");
  const auto approx =
      time_based_approximation(measured, overheads_from_plan(plan, cfg));
  const double ratio = static_cast<double>(approx.total_time()) /
                       static_cast<double>(actual.total_time());
  // Probes shift barrier arrivals uniformly; recovery is near exact.
  EXPECT_NEAR(ratio, 1.0, 0.02);
}

TEST(TimeBased, PreservesEventOrderPerProcessor) {
  const sim::MachineConfig cfg{.num_procs = 2};
  sim::Program p;
  sim::Block body;
  body.nodes.push_back(sim::compute("w", 10));
  p.root().nodes.push_back(sim::par_loop("l", sim::LoopKind::kDoall,
                                         sim::Schedule::kCyclic, 8,
                                         std::move(body)));
  p.finalize();
  const auto plan = instr::InstrumentationPlan::full({80.0, 0.3}, {40.0, 0.3},
                                                     {40.0, 0.3}, 3);
  const auto measured = sim::simulate(cfg, p, plan, "m");
  const auto approx =
      time_based_approximation(measured, overheads_from_plan(plan, cfg));
  // Per-processor monotonicity survives aggressive jitter.
  std::vector<trace::Tick> last(cfg.num_procs, -1);
  for (const auto& e : approx) {
    EXPECT_GE(e.time, last[e.proc]);
    last[e.proc] = e.time;
  }
  EXPECT_TRUE(approx.is_time_ordered());
}

TEST(TimeBased, NoNegativeTimes) {
  // First event carries a probe larger than its measured time should clamp.
  Trace measured({"m", 1, 1.0});
  trace::Event e;
  e.time = 5;
  e.kind = EventKind::kStmtEnter;
  measured.append(e);
  AnalysisOverheads ov;
  ov.probe[static_cast<std::size_t>(EventKind::kStmtEnter)] = 50;
  const auto approx = time_based_approximation(measured, ov);
  EXPECT_EQ(approx[0].time, 0);
}

TEST(TimeBased, FailsOnDependentExecution) {
  // The documented §3 limitation: a DOACROSS chain whose waiting disappears
  // under instrumentation is under-approximated.
  sim::Program p;
  const auto var = p.declare_sync_var("S");
  sim::Block body;
  body.nodes.push_back(sim::compute("pre", 30));
  body.nodes.push_back(sim::await(var, {1, -1}));
  body.nodes.push_back(sim::raw_compute("upd", 10));
  body.nodes.push_back(sim::advance(var, {1, 0}));
  p.root().nodes.push_back(sim::par_loop("l", sim::LoopKind::kDoacross,
                                         sim::Schedule::kCyclic, 256,
                                         std::move(body)));
  p.finalize();
  const sim::MachineConfig cfg{.num_procs = 8};
  const auto plan = instr::InstrumentationPlan::statements_only({200.0, 0.0}, 1);
  const auto actual = sim::simulate_actual(cfg, p, "a");
  const auto measured = sim::simulate(cfg, p, plan, "m");
  const auto approx =
      time_based_approximation(measured, overheads_from_plan(plan, cfg));
  const double ratio = static_cast<double>(approx.total_time()) /
                       static_cast<double>(actual.total_time());
  EXPECT_LT(ratio, 0.8);  // severe under-approximation, as in Table 1
}

TEST(TimeBased, MetadataAndEventSetPreserved) {
  const sim::MachineConfig cfg{.num_procs = 1};
  const auto prog = sequential_program();
  const auto plan = instr::InstrumentationPlan::statements_only({100.0, 0.0}, 1);
  const auto measured = sim::simulate(cfg, prog, plan, "m");
  const auto approx =
      time_based_approximation(measured, overheads_from_plan(plan, cfg));
  EXPECT_EQ(approx.size(), measured.size());
  EXPECT_EQ(approx.info().num_procs, measured.info().num_procs);
  EXPECT_NE(approx.info().name.find("time-based"), std::string::npos);
}

}  // namespace
}  // namespace perturb::core
