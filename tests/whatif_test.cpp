// What-if engine suite: the delta-propagation engine must be bit-identical
// to the rewrite-and-resimulate reference oracle on every trace we can
// produce — the full Livermore kernel suite at 1/2/8 processors, and
// fault-injected/repaired traces — at any TaskPool thread count, with the
// (site, pct) memo transparent to results.  Also covers the shared site
// registry and the --whatif spec parser.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/critical_path.hpp"
#include "analysis/sites.hpp"
#include "analysis/waiting.hpp"
#include "experiments/experiments.hpp"
#include "loops/kernels.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "trace/faults.hpp"
#include "trace/index.hpp"
#include "trace/repair.hpp"
#include "whatif/whatif.hpp"

namespace perturb {
namespace {

using analysis::SiteRegistry;
using trace::Tick;
using trace::Trace;
using trace::TraceIndex;
using whatif::WhatIfDag;
using whatif::WhatIfEngine;
using whatif::WhatIfPlan;
using whatif::WhatIfResult;

Trace recovered_trace(int loop, std::uint32_t procs, std::int64_t n) {
  experiments::Setup setup;
  setup.machine.num_procs = procs;
  const auto run = experiments::run_concurrent_experiment(
      loop, n, setup, experiments::PlanKind::kFull);
  return run.event_based.approx;
}

/// A deterministic batch of >= `count` (site, pct) plans cycling over every
/// site of the registry and a spread of speedups.
std::vector<WhatIfPlan> make_plans(const SiteRegistry& sites,
                                   std::size_t count) {
  static constexpr std::int64_t kPcts[] = {5, 10, 20, 25, 50, 75, 100};
  std::vector<WhatIfPlan> plans;
  for (std::size_t k = 0; k < count; ++k)
    plans.push_back(
        {static_cast<analysis::SiteId>(k % sites.size()),
         kPcts[k % (sizeof(kPcts) / sizeof(kPcts[0]))]});
  return plans;
}

void expect_engine_matches_reference(const Trace& t,
                                     const std::string& label,
                                     std::size_t plan_count = 20) {
  const TraceIndex index(t);
  const SiteRegistry sites(index);
  if (sites.size() == 0) return;
  const WhatIfDag dag(index, sites);
  WhatIfEngine engine(dag);
  for (const WhatIfPlan& plan : make_plans(sites, plan_count)) {
    const WhatIfResult& fast = engine.run(plan);
    const WhatIfResult slow = whatif_reference(index, sites, plan);
    ASSERT_EQ(fast, slow) << label << " site "
                          << sites.name(plan.site) << " pct " << plan.pct;
  }
}

// ---- spec parsing ---------------------------------------------------------

TEST(WhatIfSpec, ParsesWellFormedSpecs) {
  std::string error;
  const auto spec = whatif::parse_whatif_spec("stmt#5:40", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->site, "stmt#5");
  EXPECT_EQ(spec->pct, 40);
  EXPECT_EQ(whatif::parse_whatif_spec("lock#2:100", &error)->pct, 100);
  EXPECT_EQ(whatif::parse_whatif_spec("loop#1:1", &error)->site, "loop#1");
}

TEST(WhatIfSpec, RejectsMalformedSpecs) {
  for (const char* bad : {"no-colon", "stmt#5:", ":50", "stmt#5:0",
                          "stmt#5:101", "stmt#5:abc", "stmt#5:-3",
                          "stmt#5:1e2", ""}) {
    std::string error;
    EXPECT_FALSE(whatif::parse_whatif_spec(bad, &error).has_value())
        << "'" << bad << "' should be rejected";
    EXPECT_FALSE(error.empty()) << bad;
  }
}

// ---- shared site registry -------------------------------------------------

TEST(SiteRegistry, InternsAndParsesCanonicalNames) {
  const Trace t = recovered_trace(17, 8, 500);
  const TraceIndex index(t);
  const SiteRegistry sites(index);
  ASSERT_GT(sites.size(), 0u);
  std::set<std::string> seen;
  for (analysis::SiteId s = 0; s < sites.size(); ++s) {
    const std::string& name = sites.name(s);
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    // parse() is the exact inverse of name().
    const auto parsed = sites.parse(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, s) << name;
  }
  EXPECT_FALSE(sites.parse("bogus#1").has_value());
  EXPECT_FALSE(sites.parse("stmt5").has_value());
  EXPECT_EQ(sites.parse("stmt#4294967295").value_or(SiteRegistry::npos),
            SiteRegistry::npos);
}

TEST(SiteRegistry, WaitingAndCriticalPathShareSiteNames) {
  const Trace t = recovered_trace(17, 8, 500);
  const TraceIndex index(t);
  const SiteRegistry sites(index);

  const auto waits = analysis::waiting_analysis(index, {});
  const std::vector<Tick> by_site = analysis::waiting_by_site(waits, sites);
  ASSERT_EQ(by_site.size(), sites.size());
  Tick attributed = 0, total = 0;
  for (const Tick w : by_site) {
    EXPECT_GE(w, 0);
    attributed += w;
  }
  for (const Tick w : waits.waiting_time) total += w;
  EXPECT_EQ(attributed, total);  // every interval names a sync object

  const auto cp = analysis::critical_path(index);
  const std::vector<Tick> cp_site = analysis::path_time_by_site(cp, t, sites);
  ASSERT_EQ(cp_site.size(), sites.size());
  Tick cp_attr = 0;
  for (const Tick w : cp_site) cp_attr += w;
  EXPECT_GT(cp_attr, 0);
  EXPECT_LE(cp_attr, cp.length);

  // Both renderings draw names from the same registry.
  const std::string wr = analysis::render_waiting_by_site(waits, sites);
  const std::string cr = analysis::render_critical_path_sites(cp, t, sites);
  for (analysis::SiteId s = 0; s < sites.size(); ++s) {
    if (by_site[s] > 0) {
      EXPECT_NE(wr.find(sites.name(s)), std::string::npos);
    }
    if (cp_site[s] > 0) {
      EXPECT_NE(cr.find(sites.name(s)), std::string::npos);
    }
  }
}

// ---- engine vs reference oracle -------------------------------------------

TEST(WhatIfEngine, MatchesReferenceAcrossLivermoreSuite) {
  // Every kernel of the suite at 1, 2 and 8 processors, >= 20 plans each.
  for (int loop = 1; loop <= loops::kNumKernels; ++loop) {
    for (const std::uint32_t procs : {1u, 2u, 8u}) {
      const Trace t = recovered_trace(loop, procs, 100);
      expect_engine_matches_reference(
          t, "loop " + std::to_string(loop) + " procs " +
                 std::to_string(procs));
    }
  }
}

TEST(WhatIfEngine, MatchesReferenceOnFaultInjectedRepairedTraces) {
  experiments::Setup setup;
  const auto run = experiments::run_concurrent_experiment(
      17, 400, setup, experiments::PlanKind::kFull);
  for (const auto kind :
       {trace::ViolationKind::kNonMonotoneProcessorTime,
        trace::ViolationKind::kAwaitEndBeforeAdvance,
        trace::ViolationKind::kDuplicateAdvance,
        trace::ViolationKind::kLockOverlap,
        trace::ViolationKind::kBarrierOrder}) {
    const Trace faulted = trace::inject_violation(run.measured, kind);
    const trace::RepairResult repaired = trace::repair(faulted);
    expect_engine_matches_reference(
        repaired.repaired,
        std::string("repaired ") + trace::violation_kind_name(kind));
    // The raw (unrepaired) faulted trace must agree too: the engine and the
    // oracle share the degenerate-case arithmetic, not just the happy path.
    expect_engine_matches_reference(
        faulted, std::string("faulted ") + trace::violation_kind_name(kind),
        8);
  }
  // Degraded capture: dropped events and skewed clocks.
  const Trace dropped = trace::drop_random_events(run.measured, 0.05, 1991);
  expect_engine_matches_reference(dropped, "dropped", 8);
  const Trace skewed = trace::skew_timestamps(run.measured, 40, 0.2, 7);
  expect_engine_matches_reference(skewed, "skewed", 8);
}

// ---- determinism, memoization, batching -----------------------------------

TEST(WhatIfEngine, BitIdenticalAtAnyThreadCount) {
  const Trace t = recovered_trace(17, 8, 1000);
  const TraceIndex index(t);
  const SiteRegistry sites(index);
  const WhatIfDag dag(index, sites);
  const std::vector<WhatIfPlan> plans = make_plans(sites, 24);

  std::vector<std::vector<WhatIfResult>> by_threads;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    support::TaskPool pool(threads);
    WhatIfEngine engine(dag);  // fresh engine: no memo carry-over
    by_threads.push_back(engine.run_many(plans, pool));
  }
  EXPECT_EQ(by_threads[0], by_threads[1]);
  EXPECT_EQ(by_threads[0], by_threads[2]);

  // And the serial run() path agrees with the batched path.
  WhatIfEngine serial(dag);
  for (std::size_t i = 0; i < plans.size(); ++i)
    EXPECT_EQ(serial.run(plans[i]), by_threads[0][i]) << i;
}

TEST(WhatIfEngine, MemoizesPerSitePctCell) {
  const Trace t = recovered_trace(17, 2, 300);
  const TraceIndex index(t);
  const SiteRegistry sites(index);
  support::Metrics::enable(true);  // before the DAG: its edge gauge records
  support::Metrics::reset();       // at construction time
  const WhatIfDag dag(index, sites);
  WhatIfEngine engine(dag);
  const WhatIfPlan plan{0, 50};
  const WhatIfResult& first = engine.run(plan);
  const WhatIfResult& again = engine.run(plan);
  EXPECT_EQ(&first, &again);  // served from the memo, not recomputed
  auto snap = support::Metrics::snapshot();
  EXPECT_EQ(snap.counters.at("whatif.experiments"), 1u);
  EXPECT_EQ(snap.counters.at("whatif.memo.hits"), 1u);
  EXPECT_GT(snap.counters.at("whatif.frontier.events"), 0u);
  EXPECT_GT(snap.gauges.at("whatif.dag.edges"), 0);

  // A batch with duplicates evaluates each distinct cell exactly once.
  support::Metrics::reset();
  support::TaskPool pool(2);
  std::vector<WhatIfPlan> plans = {{1, 25}, {1, 25}, {1, 25}, {2, 25}};
  const auto results = engine.run_many(plans, pool);
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
  snap = support::Metrics::snapshot();
  EXPECT_EQ(snap.counters.at("whatif.experiments"), 2u);
  support::Metrics::enable(false);
}

TEST(WhatIfEngine, SpeedupNeverIncreasesMakespanOnRecoveredTraces) {
  // Recovered traces are causally consistent, so every local cost is
  // nonnegative and a virtual speedup can only shrink the execution.
  const Trace t = recovered_trace(17, 8, 500);
  const TraceIndex index(t);
  const SiteRegistry sites(index);
  const WhatIfDag dag(index, sites);
  WhatIfEngine engine(dag);
  for (const WhatIfPlan& plan : make_plans(sites, 20)) {
    const WhatIfResult& r = engine.run(plan);
    EXPECT_LE(r.makespan, dag.baseline_makespan()) << sites.name(plan.site);
    EXPECT_LE(r.critical_path, dag.baseline_critical_path())
        << sites.name(plan.site);
  }
}

TEST(WhatIfEngine, RankOrdersSitesByMakespanSavings) {
  const Trace t = recovered_trace(17, 8, 500);
  const TraceIndex index(t);
  const SiteRegistry sites(index);
  const WhatIfDag dag(index, sites);
  WhatIfEngine engine(dag);
  support::TaskPool pool(2);

  const auto top = engine.rank(50, pool, 5);
  ASSERT_LE(top.size(), 5u);
  ASSERT_GT(top.size(), 0u);
  for (std::size_t i = 1; i < top.size(); ++i)
    EXPECT_GE(top[i - 1].savings, top[i].savings);
  for (const auto& e : top) {
    EXPECT_EQ(e.savings, dag.baseline_makespan() - e.result.makespan);
    EXPECT_EQ(engine.run({e.site, 50}), e.result);
  }
  // Deterministic: a second sweep (fully memoized) ranks identically.
  const auto again = engine.rank(50, pool, 5);
  ASSERT_EQ(again.size(), top.size());
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(again[i].site, top[i].site);
    EXPECT_EQ(again[i].savings, top[i].savings);
  }

  // The rendering names sites through the shared registry.
  const std::string table = whatif::render_whatif_ranking(dag, 50, top);
  for (const auto& e : top)
    EXPECT_NE(table.find(sites.name(e.site)), std::string::npos);
}

TEST(WhatIfEngine, RejectsInvalidPlans) {
  const Trace t = recovered_trace(3, 2, 100);
  const TraceIndex index(t);
  const SiteRegistry sites(index);
  const WhatIfDag dag(index, sites);
  WhatIfEngine engine(dag);
  EXPECT_THROW(engine.run({static_cast<analysis::SiteId>(sites.size()), 50}),
               std::invalid_argument);
  EXPECT_THROW(engine.run({0, 0}), std::invalid_argument);
  EXPECT_THROW(engine.run({0, 101}), std::invalid_argument);
}

TEST(WhatIfDag, BaselineMatchesRecoveredTrace) {
  for (const std::uint32_t procs : {1u, 2u, 8u}) {
    const Trace t = recovered_trace(4, procs, 300);
    const TraceIndex index(t);
    const SiteRegistry sites(index);
    const WhatIfDag dag(index, sites);
    // The DAG's baseline evaluation reproduces the recovered execution: its
    // makespan spans the per-processor chain endpoints, and its critical
    // path equals the critical-path analysis on the same trace.
    Tick lo = 0, hi = 0;
    bool seen = false;
    for (std::size_t p = 0; p < index.num_procs(); ++p) {
      const auto& evs = index.events_of(static_cast<trace::ProcId>(p));
      if (evs.empty()) continue;
      if (!seen || t[evs.front()].time < lo) lo = t[evs.front()].time;
      if (!seen || t[evs.back()].time > hi) hi = t[evs.back()].time;
      seen = true;
    }
    EXPECT_EQ(dag.baseline_makespan(), seen ? hi - lo : 0);
    EXPECT_EQ(dag.baseline_critical_path(),
              analysis::critical_path(index).length)
        << "procs " << procs;
  }
}

}  // namespace
}  // namespace perturb
