// Shared conventions for the perturb command-line tools.
//
// Exit codes (uniform across perturb-trace, perturb-analyze, and
// perturb-experiment):
//   0  success
//   1  usage error (bad command line)
//   2  unsalvageable or invalid trace / failed check
//   3  I/O error (unreadable/unwritable file, corrupt serialization)
//   4  internal error (unexpected exception; bug or resource exhaustion)
#pragma once

#include <cstdint>
#include <cstdio>
#include <exception>
#include <optional>
#include <string>
#include <utility>

#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/fsio.hpp"
#include "support/metrics.hpp"
#include "trace/io.hpp"

namespace perturb::tools {

inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 1;
inline constexpr int kExitBadTrace = 2;
inline constexpr int kExitIoError = 3;
inline constexpr int kExitInternal = 4;

inline constexpr const char* kExitCodeHelp =
    "exit codes: 0 success, 1 usage error, 2 unsalvageable/invalid trace, "
    "3 I/O error, 4 internal error\n";

/// Strict decimal parse for CLI integer operands: digits only, no sign, no
/// leading/trailing garbage, result in [min, max].  strtoull alone is not
/// enough at an option boundary — it silently wraps "-1" to ULLONG_MAX and
/// accepts trailing junk, so "--whatif-rank=-3" would become a gigantic
/// rank instead of a usage error.
inline std::optional<std::uint64_t> parse_uint(const std::string& text,
                                               std::uint64_t min,
                                               std::uint64_t max) {
  if (text.empty() || text.size() > 19) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (value < min || value > max) return std::nullopt;
  return value;
}

/// Runs a tool body, reporting failures on stderr and mapping them onto the
/// standard exit codes above.  Catch order matters: IoError derives from
/// CheckError, and the trailing std::exception/... handlers turn anything
/// unexpected (std::bad_alloc, filesystem errors, a bug) into a clean
/// kExitInternal instead of an unhandled-exception abort.
template <typename Fn>
int run_tool(Fn&& body) {
  try {
    return std::forward<Fn>(body)();
  } catch (const trace::IoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitIoError;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitBadTrace;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return kExitInternal;
  } catch (...) {
    std::fprintf(stderr, "internal error: unknown exception\n");
    return kExitInternal;
  }
}

/// Shared handling of the `--metrics[=FILE]` flag: construct before the tool
/// body runs (turns the registry on when requested), then route the exit
/// code through finish() to emit the snapshot — to FILE, or to stdout when
/// the flag was given bare.  Use the `--metrics=FILE` form for files: the
/// parser's space form (`--metrics FILE`) would swallow the next positional
/// argument.
class MetricsFlag {
 public:
  explicit MetricsFlag(const support::Cli& cli)
      : requested_(cli.has("metrics")), path_(cli.get("metrics", "")) {
    if (path_ == "true") path_.clear();  // bare --metrics parses as "true"
    if (requested_) support::Metrics::enable(true);
  }

  bool requested() const noexcept { return requested_; }

  /// Writes the snapshot and returns the final exit code: `code` unchanged,
  /// except that a snapshot-file write failure turns an otherwise-successful
  /// run into kExitIoError.  The snapshot is emitted even when the tool
  /// failed — partial-run metrics are exactly what a failure investigation
  /// wants.
  int finish(int code) const {
    if (!requested_) return code;
    const std::string json = support::Metrics::snapshot().to_json();
    if (path_.empty()) {
      std::fputs(json.c_str(), stdout);
      return code;
    }
    // Atomic (temp + rename): a crash or full disk mid-write must not leave
    // a truncated snapshot where a previous complete one stood.
    std::string error;
    if (!support::write_file_atomic(path_, json, &error)) {
      std::fprintf(stderr, "error: cannot write metrics snapshot to %s: %s\n",
                   path_.c_str(), error.c_str());
      return code == kExitOk ? kExitIoError : code;
    }
    return code;
  }

 private:
  bool requested_;
  std::string path_;
};

}  // namespace perturb::tools
