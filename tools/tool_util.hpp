// Shared conventions for the perturb command-line tools.
//
// Exit codes (uniform across perturb-trace, perturb-analyze, and
// perturb-experiment):
//   0  success
//   1  usage error (bad command line)
//   2  unsalvageable or invalid trace / failed check
//   3  I/O error (unreadable/unwritable file, corrupt serialization)
#pragma once

#include <cstdio>
#include <utility>

#include "support/check.hpp"
#include "trace/io.hpp"

namespace perturb::tools {

inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 1;
inline constexpr int kExitBadTrace = 2;
inline constexpr int kExitIoError = 3;

inline constexpr const char* kExitCodeHelp =
    "exit codes: 0 success, 1 usage error, 2 unsalvageable/invalid trace, "
    "3 I/O error\n";

/// Runs a tool body, reporting failures on stderr and mapping them onto the
/// standard exit codes above.
template <typename Fn>
int run_tool(Fn&& body) {
  try {
    return std::forward<Fn>(body)();
  } catch (const trace::IoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitIoError;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitBadTrace;
  }
}

}  // namespace perturb::tools
