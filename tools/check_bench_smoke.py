#!/usr/bin/env python3
"""Smoke tests for tools/check_bench.py.

Runs the checker as a subprocess against small synthetic bench files and
asserts on exit codes and the shape of its diagnostics — in particular that
malformed inputs and missing keys produce a clear one-line error on stderr,
never a traceback.  Works under pytest and as a plain script (ctest runs it
via unittest).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

CHECK_BENCH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "check_bench.py")


def run_check(result, baseline, *extra):
    return subprocess.run(
        [sys.executable, CHECK_BENCH, result, "--baseline", baseline, *extra],
        capture_output=True, text=True)


class CheckBenchSmoke(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, payload):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            if isinstance(payload, str):
                f.write(payload)
            else:
                json.dump(payload, f)
        return path

    def assert_one_line_error(self, proc, *needles):
        self.assertNotEqual(proc.returncode, 0)
        self.assertNotIn("Traceback", proc.stderr)
        err = proc.stderr.strip()
        self.assertEqual(len(err.splitlines()), 1, err)
        for needle in needles:
            self.assertIn(needle, err)

    def test_passes_on_matching_files(self):
        base = self.write("base.json", {
            "speedups": {"a": 4.0, "b": 2.0},
            "floors": {"a": 3.0}})
        res = self.write("res.json", {"speedups": {"a": 4.5, "b": 1.9}})
        proc = run_check(res, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("bench check passed", proc.stdout)

    def test_missing_baseline_key_is_one_line(self):
        base = self.write("base.json", {"speedups": {"a": 4.0, "b": 2.0}})
        res = self.write("res.json", {"speedups": {"a": 4.0}})
        proc = run_check(res, base)
        self.assert_one_line_error(proc, "baseline key 'b' missing")

    def test_regression_fails(self):
        base = self.write("base.json", {"speedups": {"a": 4.0}})
        res = self.write("res.json", {"speedups": {"a": 2.0}})
        proc = run_check(res, base)
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("REGRESSION", proc.stdout)

    def test_below_floor_fails(self):
        base = self.write("base.json", {
            "speedups": {"a": 3.0}, "floors": {"a": 3.0}})
        res = self.write("res.json", {"speedups": {"a": 2.9}})
        proc = run_check(res, base)
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("floor", proc.stderr)

    def test_missing_file_is_one_line(self):
        base = self.write("base.json", {"speedups": {}})
        proc = run_check(os.path.join(self.dir.name, "nope.json"), base)
        self.assert_one_line_error(proc, "nope.json", "cannot read")

    def test_invalid_json_is_one_line(self):
        base = self.write("base.json", {"speedups": {}})
        res = self.write("res.json", "{not json")
        proc = run_check(res, base)
        self.assert_one_line_error(proc, "not valid JSON")

    def test_non_object_speedups_is_one_line(self):
        base = self.write("base.json", {"speedups": {}})
        res = self.write("res.json", {"speedups": [1, 2]})
        proc = run_check(res, base)
        self.assert_one_line_error(proc, "'speedups' is not an object")

    def test_non_numeric_speedup_is_one_line(self):
        base = self.write("base.json", {"speedups": {"a": 1.0}})
        res = self.write("res.json", {"speedups": {"a": "fast"}})
        proc = run_check(res, base)
        self.assert_one_line_error(proc, "speedup 'a' is not a number")

    def test_non_numeric_floor_is_one_line(self):
        base = self.write("base.json", {
            "speedups": {"a": 1.0}, "floors": {"a": None}})
        res = self.write("res.json", {"speedups": {"a": 1.0}})
        proc = run_check(res, base)
        self.assert_one_line_error(proc, "floor 'a' is not a number")


if __name__ == "__main__":
    unittest.main()
