#!/usr/bin/env python3
"""Gate a fast-vs-reference bench run against its committed baseline.

The hotpath and simulator benches measure the optimized and
retained-reference implementations in the same process, so their speedup
ratios are machine-relative and comparable across hosts (absolute
events/sec are not).  This script therefore checks ratios, not rates:

  * keys with an absolute floor must stay at or above it.  Floors come
    from the baseline file's "floors" object when present (the simulator
    bench emits one); otherwise the legacy hotpath keys (binary_load,
    end_to_end) are floored at --floor (2.0, the bar the hot-path
    overhaul was built to clear);
  * no speedup may regress more than --tolerance (default 20%) below
    the committed baseline's value for the same key.

Unfloored speedups are reported and regression-checked only: on small
CI boxes some ratios are noise-dominated.

Usage:
  tools/check_bench.py BENCH_hotpath.json --baseline bench/baseline/BENCH_hotpath.json
  tools/check_bench.py BENCH_sim.json --baseline bench/baseline/BENCH_sim.json
"""

import argparse
import json
import sys

LEGACY_FLOOR_KEYS = ("binary_load", "end_to_end")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except OSError as e:
        sys.exit(f"{path}: cannot read bench file: {e.strerror or e}")
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: not valid JSON: {e}")
    if not isinstance(data, dict) or "speedups" not in data:
        sys.exit(f"{path}: no 'speedups' object (not a speedup bench file?)")
    speedups = data["speedups"]
    if not isinstance(speedups, dict):
        sys.exit(f"{path}: 'speedups' is not an object")
    for key, value in speedups.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            sys.exit(f"{path}: speedup '{key}' is not a number: {value!r}")
    floors = data.get("floors")
    if floors is not None:
        if not isinstance(floors, dict):
            sys.exit(f"{path}: 'floors' is not an object")
        for key, value in floors.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                sys.exit(f"{path}: floor '{key}' is not a number: {value!r}")
    return data


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("result", help="bench JSON from this run")
    ap.add_argument("--baseline", required=True,
                    help="committed baseline bench JSON")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional regression vs baseline")
    ap.add_argument("--floor", type=float, default=2.0,
                    help="absolute minimum for the legacy floor keys, used "
                         "when the baseline has no 'floors' object")
    args = ap.parse_args()

    result = load(args.result)
    baseline = load(args.baseline)
    floors = baseline.get("floors")
    if floors is None:
        floors = {key: args.floor for key in LEGACY_FLOOR_KEYS}

    failures = []
    for key, base in sorted(baseline["speedups"].items()):
        got = result["speedups"].get(key)
        if got is None:
            sys.exit(f"{args.result}: baseline key '{key}' missing from "
                     f"'speedups' (did the bench emit all keys?)")
        allowed = base * (1.0 - args.tolerance)
        verdict = "ok"
        if got < allowed:
            verdict = f"REGRESSION (>{args.tolerance:.0%} below baseline)"
            failures.append(f"{key}: {got:.2f}x < {allowed:.2f}x allowed "
                            f"(baseline {base:.2f}x)")
        floor = floors.get(key)
        if floor is not None and got < floor:
            verdict = f"BELOW FLOOR ({floor:.1f}x)"
            failures.append(f"{key}: {got:.2f}x < {floor:.1f}x floor")
        print(f"  {key:20s} {got:6.2f}x  (baseline {base:.2f}x) {verdict}")

    if failures:
        print("\nbench check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    floors_desc = ", ".join(f"{k}>={v:.1f}x" for k, v in sorted(floors.items()))
    print("\nbench check passed "
          f"(tolerance {args.tolerance:.0%}; floors: {floors_desc})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
