#!/usr/bin/env python3
"""Gate a BENCH_hotpath.json run against the committed baseline.

The hotpath bench measures the optimized and retained-reference
implementations in the same process, so its speedup ratios are
machine-relative and comparable across hosts (absolute events/sec are
not).  This script therefore checks ratios, not rates:

  * the binary-load and end-to-end speedups must stay >= --floor (2.0,
    the bar the hot-path overhaul was built to clear);
  * no speedup may regress more than --tolerance (default 20%) below
    the committed baseline's value for the same key.

The index-build speedup is reported and regression-checked but has no
absolute floor: on small CI boxes its ratio is noise-dominated.

Usage:
  tools/check_bench.py BENCH_hotpath.json --baseline bench/baseline/BENCH_hotpath.json
"""

import argparse
import json
import sys

FLOOR_KEYS = ("binary_load", "end_to_end")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if "speedups" not in data:
        sys.exit(f"{path}: no 'speedups' object (not a hotpath bench file?)")
    return data


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("result", help="BENCH_hotpath.json from this run")
    ap.add_argument("--baseline", required=True,
                    help="committed baseline BENCH_hotpath.json")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional regression vs baseline")
    ap.add_argument("--floor", type=float, default=2.0,
                    help="absolute minimum for binary_load and end_to_end")
    args = ap.parse_args()

    result = load(args.result)
    baseline = load(args.baseline)

    failures = []
    for key, base in sorted(baseline["speedups"].items()):
        got = result["speedups"].get(key)
        if got is None:
            failures.append(f"{key}: missing from {args.result}")
            continue
        allowed = base * (1.0 - args.tolerance)
        verdict = "ok"
        if got < allowed:
            verdict = f"REGRESSION (>{args.tolerance:.0%} below baseline)"
            failures.append(f"{key}: {got:.2f}x < {allowed:.2f}x allowed "
                            f"(baseline {base:.2f}x)")
        if key in FLOOR_KEYS and got < args.floor:
            verdict = f"BELOW FLOOR ({args.floor:.1f}x)"
            failures.append(f"{key}: {got:.2f}x < {args.floor:.1f}x floor")
        print(f"  {key:12s} {got:6.2f}x  (baseline {base:.2f}x) {verdict}")

    if failures:
        print("\nbench check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nbench check passed "
          f"({result.get('events', '?')} events, tolerance "
          f"{args.tolerance:.0%}, floor {args.floor:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
