// perturb-trace — trace file inspector.
//
//   perturb-trace info <file>            metadata + per-kind/per-proc counts
//   perturb-trace stats <file>           same numbers, but v2 binary files
//                                        are decoded chunk by chunk (O(chunk)
//                                        resident memory, torn files reported
//                                        and summarized to their valid
//                                        prefix); text/v1 inputs fall back to
//                                        a full load
//   perturb-trace validate <file>        causality checks; exit 2 on violations
//   perturb-trace dump <file> [--limit N] print events as text
//   perturb-trace convert <in> <out>     convert between text (.ptt) / binary
//   perturb-trace merge <out> <in...>    merge per-processor trace files
//   perturb-trace critical-path <file>   critical-path breakdown
//   perturb-trace repair <in> <out> [--aggressive] [--sync-slack N]
//                                        salvage + repair a degraded trace
//
// All commands accept --metrics[=FILE]: emit a self-observability snapshot
// (JSON) to stdout or FILE after the command runs.
//
// Exit codes: 0 success, 1 usage error, 2 unsalvageable/invalid trace,
// 3 I/O error, 4 internal error.
//
// Trace files are written by trace::save (text when the path ends in .ptt,
// binary otherwise); the simulator, the rt runtime, and perturb-analyze all
// produce them.
#include <cstdio>
#include <algorithm>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/critical_path.hpp"
#include "core/pipeline.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "tool_util.hpp"
#include "trace/chunk_reader.hpp"
#include "trace/io.hpp"
#include "trace/trace_stats.hpp"
#include "trace/validate.hpp"

namespace {

using namespace perturb;

int usage() {
  std::fprintf(stderr,
               "usage: perturb-trace <info|stats|validate|dump|convert|merge|"
               "critical-path|repair> <file> [args]\n"
               "  repair <in> <out> [--aggressive] [--sync-slack N]\n"
               "%s",
               tools::kExitCodeHelp);
  return tools::kExitUsage;
}

int cmd_info(const trace::Trace& t) {
  std::printf("name:          %s\n", t.info().name.c_str());
  std::printf("processors:    %u\n", t.info().num_procs);
  std::printf("ticks per us:  %.3f\n", t.info().ticks_per_us);
  std::printf("%s", trace::render_stats(trace::compute_stats(t)).c_str());
  return tools::kExitOk;
}

/// stats <file>: cmd_info's numbers without cmd_info's memory.  v2 binary
/// files are decoded chunk by chunk through trace::ChunkReader into a
/// StatsBuilder — O(chunk) resident instead of the whole trace — and torn
/// files are summarized to their recovered prefix with the salvage report
/// printed.  Text and v1 inputs (no chunk framing) take the batch loader.
int cmd_stats(const std::string& path) {
  std::vector<char> fallback;
  const trace::FileImage image(path, fallback);
  const char* data = image.data();
  std::uint32_t version = 0;
  if (image.size() >= 8) std::memcpy(&version, data + 4, 4);
  if (image.size() < 8 || std::memcmp(data, "PTRC", 4) != 0 || version != 2) {
    // Not a framed v2 file; load whole (text traces, v1, or malformed —
    // the loader produces the canonical diagnosis for the latter).
    return cmd_info(trace::load(path));
  }

  trace::ChunkReader reader(data, image.size(), /*salvage=*/true);
  std::optional<trace::StatsBuilder> builder;
  std::vector<trace::Event> chunk;
  while (reader.next(chunk) == trace::ChunkReader::Status::kChunk) {
    if (!builder) builder.emplace(reader.info().num_procs);
    builder->add(chunk.data(), chunk.size());
  }
  if (!builder) builder.emplace(reader.info().num_procs);
  const trace::TraceInfo& info = reader.info();
  std::printf("name:          %s\n", info.name.c_str());
  std::printf("processors:    %u\n", info.num_procs);
  std::printf("ticks per us:  %.3f\n", info.ticks_per_us);
  std::printf("%s", trace::render_stats(builder->build()).c_str());
  if (!reader.report().complete)
    std::printf("salvage: %s\n", reader.report().describe().c_str());
  return tools::kExitOk;
}

int cmd_validate(const trace::Trace& t, trace::Tick slack) {
  trace::ValidateOptions opts;
  opts.sync_slack = slack;
  const auto violations = trace::validate(t, opts);
  if (violations.empty()) {
    std::printf("OK: %zu events, no causality violations\n", t.size());
    return tools::kExitOk;
  }
  std::printf("%zu violation(s):\n%s", violations.size(),
              trace::describe(violations).c_str());
  return tools::kExitBadTrace;
}

int cmd_dump(const trace::Trace& t, std::int64_t limit) {
  std::int64_t shown = 0;
  for (const auto& e : t) {
    std::printf("%12lld  p%-3u %-11s id=%-5u obj=%-4u payload=%lld\n",
                static_cast<long long>(e.time), unsigned(e.proc),
                trace::event_kind_name(e.kind), unsigned(e.id),
                unsigned(e.object), static_cast<long long>(e.payload));
    if (limit > 0 && ++shown >= limit) {
      std::printf("... (%zu events total)\n", t.size());
      break;
    }
  }
  return tools::kExitOk;
}

/// repair <in> <out>: salvage what a torn file still holds, repair causality
/// violations, report the manifest, and write the repaired trace.  The heavy
/// lifting is the pipeline's acquisition stage.
int cmd_repair(const support::Cli& cli, const std::string& in_path,
               const std::string& out_path) {
  core::PipelineOptions options;
  options.repair = cli.get_bool("aggressive", false)
                       ? core::RepairMode::kAggressive
                       : core::RepairMode::kConservative;
  options.sync_slack = cli.get_int("sync-slack", 0);
  const core::AnalysisPipeline pipeline(options);
  const core::AcquireOutcome outcome = pipeline.acquire_file(in_path);
  std::printf("%s", core::render_acquire(outcome).c_str());
  if (!outcome.ok) {
    std::fprintf(stderr, "%s%s\n", outcome.diagnosis.c_str(),
                 options.repair == core::RepairMode::kAggressive
                     ? ""
                     : " (try --aggressive)");
    return tools::kExitBadTrace;
  }
  trace::save(out_path, outcome.measured);
  std::printf("repaired trace written to %s (%zu events)\n", out_path.c_str(),
              outcome.measured.size());
  return tools::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace perturb;
  std::optional<support::Cli> parsed;
  try {
    parsed.emplace(argc, argv);
  } catch (const CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();
  }
  const support::Cli& cli = *parsed;
  const auto& args = cli.positional();
  if (args.size() < 2) return usage();
  const std::string& command = args[0];
  const tools::MetricsFlag metrics(cli);
  const int code = tools::run_tool([&]() -> int {
    // Undocumented regression hook: forces the internal-error path so the
    // test suite can assert a clean kExitInternal instead of an abort.
    if (command == "selftest-internal-error")
      throw std::runtime_error("forced internal error");
    if (command == "merge") {
      // args: merge <out> <in...> — merge time-ordered per-processor (or
      // per-buffer) traces into one; metadata comes from the first input.
      if (args.size() < 3) return usage();
      std::vector<trace::Trace> parts;
      std::uint32_t procs = 0;
      for (std::size_t i = 2; i < args.size(); ++i) {
        parts.push_back(trace::load(args[i]));
        procs = std::max(procs, parts.back().info().num_procs);
      }
      trace::TraceInfo info = parts.front().info();
      info.num_procs = procs;
      const auto merged = trace::Trace::merge(info, parts);
      trace::save(args[1], merged);
      std::printf("merged %zu traces into %s (%zu events)\n", parts.size(),
                  args[1].c_str(), merged.size());
      return tools::kExitOk;
    }
    if (command == "repair") {
      if (args.size() < 3) return usage();
      return cmd_repair(cli, args[1], args[2]);
    }
    if (command == "stats") return cmd_stats(args[1]);
    const trace::Trace t = trace::load(args[1]);
    if (command == "info") return cmd_info(t);
    if (command == "validate")
      return cmd_validate(t, cli.get_int("sync-slack", 0));
    if (command == "dump") return cmd_dump(t, cli.get_int("limit", 0));
    if (command == "critical-path") {
      std::printf("%s",
                  analysis::render_critical_path(analysis::critical_path(t))
                      .c_str());
      return tools::kExitOk;
    }
    if (command == "convert") {
      if (args.size() < 3) return usage();
      trace::save(args[2], t);
      std::printf("wrote %zu events to %s\n", t.size(), args[2].c_str());
      return tools::kExitOk;
    }
    return usage();
  });
  return metrics.finish(code);
}
