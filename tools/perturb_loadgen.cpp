// perturb-loadgen — load generator and smoke driver for perturb-server.
//
//   perturb-loadgen --socket /tmp/perturb.sock --jobs 200 --concurrency 8
//   perturb-loadgen --socket /tmp/s.sock --rate 500 --jobs 1000   # open loop
//   perturb-loadgen --launch ./perturb-server --jobs 50           # smoke
//
// Generates a deterministic workload (a measured trace from the standard
// loop-17 experiment, serialized once and sent inline with every job),
// drives the daemon closed-loop (a fixed number of in-flight jobs: measures
// capacity) or open-loop (jobs dispatched on a fixed schedule regardless of
// completions: measures behavior past saturation, where the server must
// shed rather than stall), and reports client-observed latency — p50, p99,
// p99.9 computed exactly from every sample, not from histogram buckets —
// plus a per-status breakdown.
//
// With --launch, the loadgen forks the given server binary, waits for its
// socket, runs the load, then SIGTERMs it and propagates a failed drain as
// its own exit code — the ctest smoke test of the daemon lifecycle.
//
// Options:
//   --socket <path>      server socket (default /tmp/perturb-loadgen.sock)
//   --launch <binary>    spawn `binary --socket PATH` first, SIGTERM after
//   --launch-args <s>    extra args for --launch, space-separated
//   --jobs <n>           total jobs (default 100)
//   --concurrency <c>    closed-loop in-flight jobs / open-loop senders
//   --rate <r>           open-loop dispatch rate, jobs/sec; 0 = closed loop
//   --deadline-ms <t>    per-job deadline (0 = server default)
//   --analyzers <list>   comma list: time,event,liberal,likely (default
//                        time,event)
//   --likely-samples <n> per-job Monte-Carlo cost knob (0 = server default)
//   --loop <k> --n <t>   workload trace shape (default loop 17, n 200)
//   --summary=FILE       write the JSON summary to FILE (atomic) instead of
//                        stdout
//
// Exit codes: 0 success, 1 usage error, 3 connection failure or failed
// server drain, 4 internal error.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "experiments/experiments.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "support/cli.hpp"
#include "support/fsio.hpp"
#include "support/stats.hpp"
#include "support/text.hpp"
#include "tool_util.hpp"
#include "trace/io.hpp"

namespace {

using namespace perturb;
using Clock = std::chrono::steady_clock;

int usage(const std::string& what) {
  std::fprintf(stderr,
               "error: %s\n"
               "usage: perturb-loadgen [--socket PATH] [--launch BIN] "
               "[--jobs n] [--concurrency c]\n"
               "  [--rate r] [--deadline-ms t] [--analyzers list] "
               "[--likely-samples n]\n"
               "  [--loop k] [--n trip] [--summary=FILE]\n"
               "%s",
               what.c_str(), tools::kExitCodeHelp);
  return tools::kExitUsage;
}

/// One measurement: job latency by terminal status.
struct Sample {
  server::JobStatus status;
  double latency_us;
};

struct Shared {
  std::mutex mutex;
  std::vector<Sample> samples;
  std::atomic<std::uint64_t> next_job{1};
};

std::uint8_t analyzers_from(const std::string& list, bool& ok) {
  std::uint8_t mask = 0;
  ok = true;
  for (const auto& name : support::split(list, ',')) {
    if (name == "time") mask |= server::kMaskTimeBased;
    else if (name == "event") mask |= server::kMaskEventBased;
    else if (name == "liberal") mask |= server::kMaskLiberal;
    else if (name == "likely") mask |= server::kMaskLikely;
    else ok = false;
  }
  if (mask == 0) ok = false;
  return mask;
}

/// The workload payload: the measured trace of the standard experiment,
/// serialized to the binary format once and shared by every job.
std::string make_payload(int loop, std::int64_t n) {
  experiments::Setup setup;
  const auto run = experiments::run_concurrent_experiment(
      loop, n, setup, experiments::PlanKind::kFull);
  std::ostringstream image;
  trace::write_binary(image, run.measured);
  return image.str();
}

/// Sends `count` jobs sequentially over one connection, recording each
/// reply's client-observed latency.  Closed-loop worker body; the open loop
/// adds a dispatch schedule on top.
void run_sender(const std::string& socket_path, const server::JobRequest& base,
                std::size_t count, std::uint64_t period_us, Shared& shared) {
  server::Client client(socket_path);
  std::vector<Sample> local;
  local.reserve(count);
  const auto t0 = Clock::now();
  for (std::size_t k = 0; k < count; ++k) {
    if (period_us > 0) {
      // Open loop: dispatch at the scheduled instant even if the previous
      // reply was slow — the schedule, not the server, paces the offered
      // load (a saturated server must shed to keep us on schedule).
      const auto due = t0 + std::chrono::microseconds(period_us * k);
      std::this_thread::sleep_until(due);
    }
    server::JobRequest request = base;
    request.job_id = shared.next_job.fetch_add(1);
    const auto start = Clock::now();
    const server::JobReply reply = client.call(request);
    const double us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            Clock::now() - start)
            .count();
    local.push_back(Sample{reply.status, us});
  }
  const std::lock_guard<std::mutex> lock(shared.mutex);
  shared.samples.insert(shared.samples.end(), local.begin(), local.end());
}

/// Forks `binary --socket PATH <extra args>`; returns the child pid.
pid_t launch_server(const std::string& binary, const std::string& socket_path,
                    const std::string& extra) {
  std::vector<std::string> args{binary, "--socket=" + socket_path};
  for (const auto& a : support::split(extra, ' '))
    if (!a.empty()) args.push_back(a);
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  std::perror("execv");
  ::_exit(127);
}

bool wait_for_socket(const std::string& socket_path, int timeout_ms) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    try {
      server::Client probe(socket_path);
      return true;
    } catch (const trace::IoError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  const std::string socket_path =
      cli.get("socket", "/tmp/perturb-loadgen.sock");
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs", 100));
  const auto concurrency =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   cli.get_int("concurrency", 4)));
  const double rate = cli.get_double("rate", 0.0);
  bool mask_ok = false;
  const std::uint8_t analyzers =
      analyzers_from(cli.get("analyzers", "time,event"), mask_ok);
  if (!mask_ok) return usage("bad --analyzers list");
  if (jobs == 0) return usage("--jobs must be positive");

  return tools::run_tool([&]() -> int {
    pid_t server_pid = -1;
    if (cli.has("launch")) {
      server_pid = launch_server(cli.get("launch", ""), socket_path,
                                 cli.get("launch-args", ""));
      if (!wait_for_socket(socket_path, 10000)) {
        std::fprintf(stderr, "error: server socket never appeared\n");
        ::kill(server_pid, SIGKILL);
        return tools::kExitIoError;
      }
    }

    server::JobRequest base;
    base.analyzers = analyzers;
    base.deadline_ms =
        static_cast<std::uint32_t>(cli.get_int("deadline-ms", 0));
    base.likely_samples =
        static_cast<std::uint32_t>(cli.get_int("likely-samples", 0));
    base.payload =
        make_payload(static_cast<int>(cli.get_int("loop", 17)),
                     cli.get_int("n", 200));

    // Open loop: `concurrency` senders share the target rate; each follows
    // its own schedule.  Closed loop: each sender issues back to back.
    const std::uint64_t period_us =
        rate > 0.0 ? static_cast<std::uint64_t>(
                         1e6 * double(concurrency) / rate)
                   : 0;
    Shared shared;
    const auto wall_start = Clock::now();
    std::vector<std::thread> senders;
    for (std::size_t c = 0; c < concurrency; ++c) {
      const std::size_t count =
          jobs / concurrency + (c < jobs % concurrency ? 1 : 0);
      if (count == 0) continue;
      senders.emplace_back([&, count] {
        run_sender(socket_path, base, count, period_us, shared);
      });
    }
    for (auto& sender : senders) sender.join();
    const double wall_s =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            Clock::now() - wall_start)
            .count();

    // Per-status counts + exact latency percentiles over accepted jobs.
    std::size_t counts[9] = {};
    std::vector<double> ok_latency;
    for (const auto& sample : shared.samples) {
      counts[static_cast<std::size_t>(sample.status)]++;
      if (sample.status == server::JobStatus::kOk)
        ok_latency.push_back(sample.latency_us);
    }
    const double p50 = support::percentile(ok_latency, 0.50);
    const double p99 = support::percentile(ok_latency, 0.99);
    const double p999 = support::percentile(ok_latency, 0.999);

    std::string json = "{\n";
    json += support::strf("  \"jobs\": %zu,\n", shared.samples.size());
    json += support::strf("  \"wall_seconds\": %.3f,\n", wall_s);
    json += support::strf("  \"throughput_per_sec\": %.1f,\n",
                          wall_s > 0 ? double(shared.samples.size()) / wall_s
                                     : 0.0);
    json += "  \"status_counts\": {";
    bool first = true;
    for (std::size_t s = 0; s < 9; ++s) {
      if (counts[s] == 0) continue;
      if (!first) json += ", ";
      first = false;
      json += support::strf(
          "\"%s\": %zu",
          server::status_name(static_cast<server::JobStatus>(s)), counts[s]);
    }
    json += "},\n";
    json += support::strf(
        "  \"ok_latency_us\": {\"p50\": %.1f, \"p99\": %.1f, "
        "\"p999\": %.1f}\n}\n",
        p50, p99, p999);

    if (cli.has("summary") && cli.get("summary", "") != "true") {
      std::string werr;
      if (!support::write_file_atomic(cli.get("summary", ""), json, &werr)) {
        std::fprintf(stderr, "error: cannot write summary: %s\n",
                     werr.c_str());
        return tools::kExitIoError;
      }
    } else {
      std::fputs(json.c_str(), stdout);
    }

    if (server_pid > 0) {
      // The lifecycle half of the smoke test: SIGTERM must drain cleanly.
      ::kill(server_pid, SIGTERM);
      int status = 0;
      if (::waitpid(server_pid, &status, 0) != server_pid ||
          !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::fprintf(stderr, "error: server did not drain cleanly (%d)\n",
                     status);
        return tools::kExitIoError;
      }
      std::printf("server drained cleanly\n");
    }
    return tools::kExitOk;
  });
}
