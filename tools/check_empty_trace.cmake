# Exit-code contract for invalid trace content: a zero-byte file and a
# truncated binary header are *invalid traces* (exit 2), not I/O errors
# (exit 3) — the file was read fine; its content is unusable.
#
# Invoked by ctest with -DTOOL=<perturb-trace> -DWORK_DIR=<scratch dir>.

set(empty "${WORK_DIR}/empty_trace.bin")
file(WRITE "${empty}" "")
execute_process(COMMAND "${TOOL}" info "${empty}" RESULT_VARIABLE code
  OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT code EQUAL 2)
  message(FATAL_ERROR
    "zero-byte trace: expected exit 2, got ${code} (stderr: ${err})")
endif()
if(NOT err MATCHES "empty trace file")
  message(FATAL_ERROR "zero-byte trace: unhelpful diagnosis: ${err}")
endif()

# Magic only — the header is cut off before the version field (CMake strings
# cannot hold NUL bytes, so the 4 magic bytes are as deep as this script can
# write; the gtest fuzz suite covers deeper truncation points).
set(truncated "${WORK_DIR}/truncated_trace.bin")
file(WRITE "${truncated}" "PTRC")
execute_process(COMMAND "${TOOL}" info "${truncated}" RESULT_VARIABLE code
  OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT code EQUAL 2)
  message(FATAL_ERROR
    "truncated header: expected exit 2, got ${code} (stderr: ${err})")
endif()
if(NOT err MATCHES "header truncated")
  message(FATAL_ERROR "truncated header: unhelpful diagnosis: ${err}")
endif()

# A genuinely unreadable file stays an I/O error (exit 3).
execute_process(COMMAND "${TOOL}" info "${WORK_DIR}/no_such_trace.bin"
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 3)
  message(FATAL_ERROR "missing file: expected exit 3, got ${code}")
endif()
