// perturb-server — the perturbation-analysis daemon.
//
//   perturb-server --socket /tmp/perturb.sock --workers 4
//       --queue-depth 64 --deadline-ms 2000 --metrics=/tmp/perturb.metrics
//
// Accepts trace-analysis jobs over an AF_UNIX socket (length-prefixed binary
// protocol; see src/server/protocol.hpp) and shards them across a worker
// pool running the standard analysis pipeline.  Overload is shed with
// explicit rejections, per-job deadlines cancel cooperatively at pipeline
// phase boundaries, a poisonous job costs one reply rather than a worker,
// and SIGTERM/SIGINT drain gracefully: admission stops, in-flight jobs
// finish (or are cancelled after --drain-timeout-ms), and the final metrics
// snapshot is flushed before exit.
//
// Options:
//   --socket <path>        AF_UNIX socket path (required)
//   --workers <n>          worker threads (default 1)
//   --queue-depth <n>      max queued jobs before shedding (default 64)
//   --max-inflight-mb <n>  payload-byte budget, queued + running (default 64)
//   --deadline-ms <t>      default per-job deadline from admission; 0 = none
//   --drain-timeout-ms <t> graceful-drain budget on SIGTERM (default 5000)
//   --fault-rate <p>       injected transient-fault probability (default 0)
//   --fault-seed <s>       fault-injection seed (deterministic per job id)
//   --max-attempts <n>     execution attempts per job (default 3)
//   --allow-poison         honor the kFlagPoison chaos hook (drills only)
//   --likely-samples <n>   default Monte-Carlo sample count (default 64)
//   --stmt-probe / --sync-probe / --control-probe <c>
//                          probe mean costs (defaults match perturb-experiment)
//   --sync-slack <t>       validation slack for measured traces (default 130)
//   --seed <s>             analysis seed (default 1991)
//   --metrics[=FILE]       flush a metrics snapshot on exit (atomic write)
//
// Exit codes: 0 clean drain, 1 usage error, 3 socket/bind failure,
// 4 internal error.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "experiments/experiments.hpp"
#include "server/server.hpp"
#include "support/cli.hpp"
#include "tool_util.hpp"

namespace {

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig); }

int usage(const std::string& what) {
  std::fprintf(stderr,
               "error: %s\n"
               "usage: perturb-server --socket PATH [--workers n] "
               "[--queue-depth n] [--max-inflight-mb n]\n"
               "  [--deadline-ms t] [--drain-timeout-ms t] [--fault-rate p] "
               "[--fault-seed s]\n"
               "  [--max-attempts n] [--allow-poison] [--likely-samples n] "
               "[--sync-slack t]\n"
               "  [--stmt-probe c] [--sync-probe c] [--control-probe c] "
               "[--seed s] [--metrics[=FILE]]\n"
               "%s",
               what.c_str(), perturb::tools::kExitCodeHelp);
  return perturb::tools::kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  const std::string socket_path = cli.get("socket", "");
  if (socket_path.empty()) return usage("--socket is required");

  server::ServerConfig config;
  config.socket_path = socket_path;
  config.workers = static_cast<std::size_t>(cli.get_int("workers", 1));
  config.queue_depth =
      static_cast<std::size_t>(cli.get_int("queue-depth", 64));
  config.max_inflight_bytes =
      static_cast<std::size_t>(cli.get_int("max-inflight-mb", 64)) << 20;
  config.default_deadline_ms =
      static_cast<std::uint32_t>(cli.get_int("deadline-ms", 0));
  config.drain_timeout_ms =
      static_cast<std::uint32_t>(cli.get_int("drain-timeout-ms", 5000));
  config.fault_rate = cli.get_double("fault-rate", 0.0);
  config.fault_seed =
      static_cast<std::uint64_t>(cli.get_int("fault-seed", 0x70657254));
  config.max_attempts =
      static_cast<std::uint32_t>(cli.get_int("max-attempts", 3));
  config.allow_poison = cli.get_bool("allow-poison", false);

  // Analysis defaults mirror the perturb-experiment full plan, so traces
  // produced there analyze sensibly here without per-job tuning.
  experiments::Setup setup;
  setup.stmt.mean = cli.get_double("stmt-probe", setup.stmt.mean);
  setup.sync.mean = cli.get_double("sync-probe", setup.sync.mean);
  setup.control.mean = cli.get_double("control-probe", setup.control.mean);
  config.pipeline.overheads = experiments::overheads_for(
      experiments::make_plan(experiments::PlanKind::kFull, setup),
      setup.machine);
  config.pipeline.machine = setup.machine;
  config.pipeline.sync_slack = cli.get_int("sync-slack", 130);
  config.pipeline.likely_samples =
      static_cast<std::size_t>(cli.get_int("likely-samples", 64));
  config.pipeline.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1991));

  const tools::MetricsFlag metrics(cli);
  const int code = tools::run_tool([&]() -> int {
    server::PerturbServer daemon(std::move(config));
    daemon.start();
    std::printf("perturb-server listening on %s\n", socket_path.c_str());
    std::fflush(stdout);

    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    while (g_signal.load() == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::printf("signal %d: draining\n", g_signal.load());
    std::fflush(stdout);
    daemon.shutdown();
    return tools::kExitOk;
  });
  // The final snapshot is flushed after the drain, so it reflects the whole
  // run (atomic write: a snapshot reader never sees a torn file).
  return metrics.finish(code);
}
