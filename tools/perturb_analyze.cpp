// perturb-analyze — offline perturbation analysis of a measured trace file.
//
//   perturb-analyze <measured-trace> [options]
//
// Options:
//   --mode event|time          analysis to run (default: event)
//   --output <file>            write the approximated trace
//   --actual <file>            score the approximation against this trace
//   --stmt-probe <c>           mean statement probe cost (cycles/ticks)
//   --sync-probe <c>           mean synchronization probe cost
//   --control-probe <c>        mean loop/iteration marker probe cost
//   --s-nowait <c>             await processing cost without waiting
//   --s-wait <c>               await resume cost after waiting
//   --lock-acquire <c>         uncontended lock acquisition cost
//   --barrier-depart <c>       barrier departure latency
//   --no-locks / --no-barriers disable those dependency models
//   --sem-capacity <obj>:<cap> declare a counting semaphore's capacity
//                              (repeatable via comma: "1:2,3:4")
//   --sync-slack <t>           timing slack for validating measured traces
//   --repair[=aggressive]      triage and repair a degraded trace instead of
//                              rejecting it: binary input is salvaged (longest
//                              valid prefix of a torn file), causality
//                              violations are repaired per-kind, and the
//                              repair manifest is printed; "aggressive"
//                              additionally drops whatever cannot be repaired
//   --report                   print waiting/parallelism/critical-path report
//
// Exit codes: 0 success, 1 usage error, 2 unsalvageable/invalid trace,
// 3 I/O error.
//
// This is the paper's workflow as a command-line tool: capture a measured
// trace (simulator, rt runtime, or your own producer writing the trace
// format), then recover the approximated actual execution offline.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>

#include "analysis/critical_path.hpp"
#include "analysis/parallelism.hpp"
#include "analysis/timeline.hpp"
#include "analysis/waiting.hpp"
#include "core/eventbased.hpp"
#include "core/quality.hpp"
#include "core/timebased.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/text.hpp"
#include "tool_util.hpp"
#include "trace/io.hpp"
#include "trace/repair.hpp"
#include "trace/validate.hpp"

namespace {

using namespace perturb;

int usage() {
  std::fprintf(stderr,
               "usage: perturb-analyze <measured-trace> [options]\n"
               "  --mode event|time  --repair[=aggressive]  --sync-slack <t>\n"
               "  --output <f>  --actual <f>  --report  (see header for all)\n"
               "%s",
               tools::kExitCodeHelp);
  return tools::kExitUsage;
}

core::AnalysisOverheads overheads_from_cli(const support::Cli& cli) {
  core::AnalysisOverheads ov;
  const auto stmt = cli.get_int("stmt-probe", 0);
  const auto sync = cli.get_int("sync-probe", 0);
  const auto control = cli.get_int("control-probe", 0);
  for (std::uint8_t k = 0; k < trace::kNumEventKinds; ++k) {
    const auto kind = static_cast<trace::EventKind>(k);
    if (trace::is_sync_kind(kind)) {
      ov.probe[k] = sync;
    } else if (kind == trace::EventKind::kStmtEnter ||
               kind == trace::EventKind::kStmtExit ||
               kind == trace::EventKind::kUser) {
      ov.probe[k] = stmt;
    } else {
      ov.probe[k] = control;
    }
  }
  ov.probe[static_cast<std::size_t>(trace::EventKind::kProgramBegin)] = 0;
  ov.probe[static_cast<std::size_t>(trace::EventKind::kProgramEnd)] = 0;
  ov.s_nowait = cli.get_int("s-nowait", 0);
  ov.s_wait = cli.get_int("s-wait", 0);
  ov.lock_acquire = cli.get_int("lock-acquire", 0);
  ov.sem_acquire = cli.get_int("sem-acquire", 0);
  ov.barrier_depart = cli.get_int("barrier-depart", 0);
  return ov;
}

/// Parses "1:2,3:4" into {object: capacity}.
std::map<trace::ObjectId, std::int64_t> capacities_from_cli(
    const support::Cli& cli) {
  std::map<trace::ObjectId, std::int64_t> caps;
  for (const auto& entry :
       support::split(cli.get("sem-capacity", ""), ',')) {
    if (entry.empty()) continue;
    const auto parts = support::split(entry, ':');
    PERTURB_CHECK_MSG(parts.size() == 2,
                      "--sem-capacity expects obj:cap entries");
    caps[static_cast<trace::ObjectId>(
        std::strtoul(parts[0].c_str(), nullptr, 10))] =
        std::strtoll(parts[1].c_str(), nullptr, 10);
  }
  return caps;
}

void print_report(const trace::Trace& approx,
                  const core::AnalysisOverheads& ov) {
  analysis::WaitClassifier classifier;
  classifier.await_nowait = ov.s_nowait;
  classifier.lock_acquire = ov.lock_acquire;
  classifier.barrier_depart = ov.barrier_depart;
  classifier.tolerance = 2;

  const auto waits = analysis::waiting_analysis(approx, classifier);
  std::printf("\n-- waiting --\n%s",
              analysis::render_waiting_table(waits).c_str());
  const auto profile = analysis::parallelism_profile(approx, classifier);
  std::printf("\n-- parallelism --\naverage %.2f (parallel region %.2f)\n",
              profile.average, profile.average_parallel);
  std::printf("\n-- critical path --\n%s",
              analysis::render_critical_path(analysis::critical_path(approx))
                  .c_str());
}

/// Loads (salvaging when repairing), triages, and repairs the input trace.
/// Returns nullopt — after printing a diagnosis — when the trace cannot be
/// made analyzable.
std::optional<trace::Trace> acquire_input(const support::Cli& cli,
                                          bool repair_mode, bool aggressive,
                                          bool& degraded) {
  const std::string& path = cli.positional()[0];
  trace::ValidateOptions validate_opts;
  validate_opts.sync_slack = cli.get_int("sync-slack", 0);

  trace::Trace measured;
  if (repair_mode) {
    trace::SalvageReport salvage;
    measured = trace::load_salvage(path, salvage);
    if (!salvage.complete) {
      std::printf("salvage: %s\n", salvage.describe().c_str());
      degraded = true;
    }
    if (measured.empty()) {
      std::fprintf(stderr,
                   "trace is unsalvageable: no events recovered from %s\n",
                   path.c_str());
      return std::nullopt;
    }
  } else {
    measured = trace::load(path);
  }

  const auto violations = trace::validate(measured, validate_opts);
  if (violations.empty()) return measured;

  if (!repair_mode) {
    std::fprintf(stderr,
                 "input trace has %zu causality violation(s); analysis "
                 "requires a happened-before-consistent trace (rerun with "
                 "--repair to triage):\n%s",
                 violations.size(), trace::describe(violations).c_str());
    return std::nullopt;
  }

  trace::RepairOptions repair_opts;
  repair_opts.aggressive = aggressive;
  repair_opts.sync_slack = validate_opts.sync_slack;
  auto result = trace::repair(measured, repair_opts);
  std::printf("%s", trace::render_manifest(result.manifest).c_str());
  if (result.manifest.severity == trace::RepairSeverity::kUnsalvageable) {
    std::fprintf(stderr,
                 "trace is unsalvageable: %zu violation(s) survived repair:\n"
                 "%s",
                 result.manifest.remaining.size(),
                 trace::describe(result.manifest.remaining).c_str());
    return std::nullopt;
  }
  degraded |= result.manifest.severity >= trace::RepairSeverity::kLossy;
  return std::move(result.repaired);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace perturb;
  std::optional<support::Cli> cli;
  try {
    cli.emplace(argc, argv);
  } catch (const CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();
  }
  if (cli->positional().empty()) return usage();
  const std::string repair_arg = cli->get("repair", "");
  if (cli->has("repair") && repair_arg != "true" &&
      repair_arg != "aggressive") {
    std::fprintf(stderr, "bad --repair value '%s' (use --repair or "
                         "--repair=aggressive)\n",
                 repair_arg.c_str());
    return usage();
  }
  const std::string mode = cli->get("mode", "event");
  if (mode != "event" && mode != "time") {
    std::fprintf(stderr, "unknown --mode %s (use event|time)\n", mode.c_str());
    return usage();
  }

  return tools::run_tool([&]() -> int {
    bool degraded = false;
    auto measured = acquire_input(*cli, cli->has("repair"),
                                  repair_arg == "aggressive", degraded);
    if (!measured) return tools::kExitBadTrace;

    const core::AnalysisOverheads ov = overheads_from_cli(*cli);

    trace::Trace approx;
    if (mode == "time") {
      approx = core::time_based_approximation(*measured, ov);
    } else {
      core::EventBasedOptions opt;
      opt.model_locks = !cli->get_bool("no-locks", false);
      opt.model_barriers = !cli->get_bool("no-barriers", false);
      opt.semaphore_capacity = capacities_from_cli(*cli);
      auto result = core::event_based_approximation(*measured, ov, opt);
      std::printf("awaits: %zu, measured waits: %zu, approximated waits: %zu "
                  "(removed %zu, introduced %zu)\n",
                  result.awaits_total, result.waits_measured,
                  result.waits_approx, result.waits_removed,
                  result.waits_introduced);
      approx = std::move(result.approx);
    }

    std::printf("measured total time: %lld%s\n",
                static_cast<long long>(measured->total_time()),
                degraded ? "  (degraded input)" : "");
    std::printf("approximated total:  %lld  (%.3fx of measured)\n",
                static_cast<long long>(approx.total_time()),
                static_cast<double>(approx.total_time()) /
                    static_cast<double>(measured->total_time()));

    if (cli->has("actual")) {
      const trace::Trace actual = trace::load(cli->get("actual", ""));
      auto q = core::assess(*measured, approx, actual);
      q.degraded_input = degraded;
      std::printf("vs actual: measured %.3fx, approximated %.3fx "
                  "(%+.1f%% error)%s\n",
                  q.measured_over_actual, q.approx_over_actual,
                  q.percent_error,
                  q.degraded_input ? "  [degraded: repaired input]" : "");
    }

    if (cli->has("output")) {
      const std::string path = cli->get("output", "");
      trace::save(path, approx);
      std::printf("approximated trace written to %s\n", path.c_str());
    }
    if (cli->get_bool("report", false)) print_report(approx, ov);
    return tools::kExitOk;
  });
}
