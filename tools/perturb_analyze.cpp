// perturb-analyze — offline perturbation analysis of a measured trace file.
//
//   perturb-analyze <measured-trace> [options]
//
// Options:
//   --mode event|time|analytic analysis to run (default: event).  analytic
//                              extracts the loop shape like the liberal mode
//                              but predicts the de-instrumented run with the
//                              closed-form model (src/model) instead of
//                              simulating — it prints the predicted loop
//                              time with an uncertainty estimate and caveats,
//                              produces no approximated trace (--output and
//                              --report do not apply), and asserts a cyclic
//                              schedule on the default machine model
//   --output <file>            write the approximated trace
//   --actual <file>            score the approximation against this trace
//   --stmt-probe <c>           mean statement probe cost (cycles/ticks)
//   --sync-probe <c>           mean synchronization probe cost
//   --control-probe <c>        mean loop/iteration marker probe cost
//   --s-nowait <c>             await processing cost without waiting
//   --s-wait <c>               await resume cost after waiting
//   --lock-acquire <c>         uncontended lock acquisition cost
//   --barrier-depart <c>       barrier departure latency
//   --no-locks / --no-barriers disable those dependency models
//   --sem-capacity <obj>:<cap> declare a counting semaphore's capacity
//                              (repeatable via comma: "1:2,3:4")
//   --sync-slack <t>           timing slack for validating measured traces
//   --repair[=aggressive]      triage and repair a degraded trace instead of
//                              rejecting it: binary input is salvaged (longest
//                              valid prefix of a torn file), causality
//                              violations are repaired per-kind, and the
//                              repair manifest is printed; "aggressive"
//                              additionally drops whatever cannot be repaired
//   --stream[=WINDOW]          stream the trace: decode chunk by chunk and
//                              re-time with the windowed event-based
//                              reconstructor holding ~WINDOW resident events
//                              (default 8192; must hold at least one chunk,
//                              1024 events — smaller values are a usage
//                              error, never a silent fall back to batch).
//                              Requires --mode event; incompatible with
//                              --actual (scoring needs the full traces).
//                              With --repair, torn input is salvaged to its
//                              valid prefix, but repair passes do not run —
//                              use batch mode to repair causality violations.
//                              --output/--report still work: they collect
//                              the merged approximated trace (O(trace)
//                              memory), bit-identical to batch output.
//   --whatif=<site>:<pct>      causal what-if experiment on the recovered
//                              execution: virtually speed up one interned
//                              site ("stmt#5", "loop#2", "lock#1", "sync#3",
//                              "sem#4", "barrier#6") by <pct> percent (an
//                              integer in (0,100]) and report the resulting
//                              makespan, critical path, and waiting.
//                              Requires --mode event and the batch path
//                              (incompatible with --stream).  A malformed
//                              spec or unknown site is a usage error — the
//                              tool never silently analyzes without the
//                              what-if.
//   --whatif-rank[=N]          sweep every site at a fixed 50%% speedup and
//                              print the top-N (default 10) regions by
//                              end-to-end makespan savings
//   --report                   print waiting/parallelism/critical-path report
//   --metrics[=FILE]           emit a self-observability snapshot (JSON) to
//                              stdout or FILE: per-stage pipeline timings,
//                              I/O byte counts, repair tallies (use the
//                              `=FILE` form; a space-separated value would
//                              be taken as the positional trace argument)
//
// Exit codes: 0 success, 1 usage error, 2 unsalvageable/invalid trace,
// 3 I/O error, 4 internal error.
//
// This is the paper's workflow as a command-line tool: capture a measured
// trace (simulator, rt runtime, or your own producer writing the trace
// format), then recover the approximated actual execution offline.  The tool
// itself is a thin shell over core::AnalysisPipeline.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>

#include "analysis/sites.hpp"
#include "core/pipeline.hpp"
#include "support/check.hpp"
#include "support/parallel.hpp"
#include "support/cli.hpp"
#include "support/metrics.hpp"
#include "support/text.hpp"
#include "tool_util.hpp"
#include "trace/chunk_reader.hpp"
#include "trace/index.hpp"
#include "trace/io.hpp"
#include "whatif/whatif.hpp"

namespace {

using namespace perturb;

int usage() {
  std::fprintf(stderr,
               "usage: perturb-analyze <measured-trace> [options]\n"
               "  --mode event|time|analytic  --repair[=aggressive]\n"
               "  --sync-slack <t>\n"
               "  --stream[=WINDOW]  --output <f>  --actual <f>  --report\n"
               "  --whatif=<site>:<pct>  --whatif-rank[=N]  --metrics[=FILE]\n"
               "  (see header for all)\n"
               "%s",
               tools::kExitCodeHelp);
  return tools::kExitUsage;
}

/// Builds the analysis overheads from the CLI, rejecting negative costs: a
/// negative probe cost would flow into the reconstruction as a time *bonus*
/// per event, which is never what the flag means.  Returns std::nullopt
/// after printing a one-line usage error.
std::optional<core::AnalysisOverheads> overheads_from_cli(
    const support::Cli& cli) {
  for (const char* name :
       {"stmt-probe", "sync-probe", "control-probe", "s-nowait", "s-wait",
        "lock-acquire", "sem-acquire", "barrier-depart"}) {
    if (cli.get_int(name, 0) < 0) {
      std::fprintf(stderr,
                   "--%s must be a non-negative cost (got %lld)\n", name,
                   static_cast<long long>(cli.get_int(name, 0)));
      return std::nullopt;
    }
  }
  core::AnalysisOverheads ov;
  const auto stmt = cli.get_int("stmt-probe", 0);
  const auto sync = cli.get_int("sync-probe", 0);
  const auto control = cli.get_int("control-probe", 0);
  for (std::uint8_t k = 0; k < trace::kNumEventKinds; ++k) {
    const auto kind = static_cast<trace::EventKind>(k);
    if (trace::is_sync_kind(kind)) {
      ov.probe[k] = sync;
    } else if (kind == trace::EventKind::kStmtEnter ||
               kind == trace::EventKind::kStmtExit ||
               kind == trace::EventKind::kUser) {
      ov.probe[k] = stmt;
    } else {
      ov.probe[k] = control;
    }
  }
  ov.probe[static_cast<std::size_t>(trace::EventKind::kProgramBegin)] = 0;
  ov.probe[static_cast<std::size_t>(trace::EventKind::kProgramEnd)] = 0;
  ov.s_nowait = cli.get_int("s-nowait", 0);
  ov.s_wait = cli.get_int("s-wait", 0);
  ov.lock_acquire = cli.get_int("lock-acquire", 0);
  ov.sem_acquire = cli.get_int("sem-acquire", 0);
  ov.barrier_depart = cli.get_int("barrier-depart", 0);
  return ov;
}

/// Parses "1:2,3:4" into {object: capacity}.
std::map<trace::ObjectId, std::int64_t> capacities_from_cli(
    const support::Cli& cli) {
  std::map<trace::ObjectId, std::int64_t> caps;
  for (const auto& entry :
       support::split(cli.get("sem-capacity", ""), ',')) {
    if (entry.empty()) continue;
    const auto parts = support::split(entry, ':');
    PERTURB_CHECK_MSG(parts.size() == 2,
                      "--sem-capacity expects obj:cap entries");
    caps[static_cast<trace::ObjectId>(
        std::strtoul(parts[0].c_str(), nullptr, 10))] =
        std::strtoll(parts[1].c_str(), nullptr, 10);
  }
  return caps;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace perturb;
  std::optional<support::Cli> cli;
  try {
    cli.emplace(argc, argv);
  } catch (const CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();
  }
  if (cli->positional().empty()) return usage();
  const std::string repair_arg = cli->get("repair", "");
  if (cli->has("repair") && repair_arg != "true" &&
      repair_arg != "aggressive") {
    std::fprintf(stderr, "bad --repair value '%s' (use --repair or "
                         "--repair=aggressive)\n",
                 repair_arg.c_str());
    return usage();
  }
  const std::string mode = cli->get("mode", "event");
  if (mode != "event" && mode != "time" && mode != "analytic") {
    std::fprintf(stderr, "unknown --mode %s (use event|time|analytic)\n",
                 mode.c_str());
    return usage();
  }
  if (mode == "analytic" &&
      (cli->has("output") || cli->get_bool("report", false))) {
    std::fprintf(stderr, "--mode analytic produces no approximated trace; "
                         "--output/--report do not apply\n");
    return usage();
  }

  // --stream[=WINDOW]: 0 keeps the batch path.  An unusable window is a hard
  // usage error — silently analyzing in batch mode would defeat the memory
  // bound the flag asks for.
  std::size_t stream_window = 0;
  if (cli->has("stream")) {
    if (mode != "event") {
      std::fprintf(stderr, "--stream requires --mode event\n");
      return usage();
    }
    if (cli->has("actual")) {
      std::fprintf(stderr, "--stream cannot score against --actual (scoring "
                           "needs the full traces); run batch mode\n");
      return usage();
    }
    const std::string window_arg = cli->get("stream", "");
    if (window_arg == "true") {  // bare --stream
      stream_window = 8192;
    } else {
      const auto n = tools::parse_uint(window_arg, trace::kStreamChunkEvents,
                                       std::uint64_t{1} << 40);
      if (!n) {
        std::fprintf(stderr,
                     "bad --stream window '%s': the window must hold at "
                     "least one chunk (%zu events); refusing to fall back "
                     "to batch mode\n",
                     window_arg.c_str(), trace::kStreamChunkEvents);
        return usage();
      }
      stream_window = static_cast<std::size_t>(*n);
    }
  }

  // --whatif / --whatif-rank: validate the specs up front — a malformed
  // spec must never degrade into a plain analysis (mirrors the --stream
  // window rule).  The site name resolves later, against the recovered
  // trace's registry.
  std::optional<whatif::WhatIfSpec> whatif_spec;
  std::size_t whatif_rank = 0;  // 0 = off
  if (cli->has("whatif")) {
    std::string error;
    whatif_spec = whatif::parse_whatif_spec(cli->get("whatif", ""), &error);
    if (!whatif_spec) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return usage();
    }
  }
  if (cli->has("whatif-rank")) {
    const std::string arg = cli->get("whatif-rank", "");
    if (arg == "true") {  // bare --whatif-rank
      whatif_rank = 10;
    } else {
      // parse_uint, not strtoull: "-3" must be a usage error, not a wrap
      // to an 18-quintillion-site ranking.
      const auto n = tools::parse_uint(arg, 1, 1u << 20);
      if (!n) {
        std::fprintf(stderr,
                     "bad --whatif-rank value '%s': expected a positive "
                     "site count\n",
                     arg.c_str());
        return usage();
      }
      whatif_rank = static_cast<std::size_t>(*n);
    }
  }
  if (whatif_spec || whatif_rank != 0) {
    if (mode != "event") {
      std::fprintf(stderr, "--whatif requires --mode event\n");
      return usage();
    }
    if (stream_window != 0) {
      std::fprintf(stderr,
                   "--whatif needs the batch path; it is incompatible with "
                   "--stream\n");
      return usage();
    }
  }

  const auto overheads = overheads_from_cli(*cli);
  if (!overheads) return usage();

  const tools::MetricsFlag metrics(*cli);
  const int code = tools::run_tool([&]() -> int {
    core::PipelineOptions options;
    options.overheads = *overheads;
    options.event_based.model_locks = !cli->get_bool("no-locks", false);
    options.event_based.model_barriers = !cli->get_bool("no-barriers", false);
    options.event_based.semaphore_capacity = capacities_from_cli(*cli);
    options.sync_slack = cli->get_int("sync-slack", 0);
    if (cli->has("repair"))
      options.repair = repair_arg == "aggressive"
                           ? core::RepairMode::kAggressive
                           : core::RepairMode::kConservative;
    if (stream_window != 0) options.stream_window = stream_window;

    core::AnalysisPipeline pipeline(options);
    pipeline.add(mode == "time"       ? core::AnalyzerKind::kTimeBased
                 : mode == "analytic" ? core::AnalyzerKind::kAnalytic
                                      : core::AnalyzerKind::kEventBased);

    // End-to-end span around the pipeline; a metrics snapshot can relate the
    // per-stage timings to this to see what the stage timers fail to cover.
    static const support::HistogramMetric run_span("tool.run.ns");

    if (stream_window != 0) {
      // Writing the approximated trace or reporting on it needs the full
      // merge; summaries stay O(window).
      const bool collect =
          cli->has("output") || cli->get_bool("report", false);
      const core::StreamOutcome out = [&] {
        const support::PhaseTimer timer(run_span);
        return pipeline.run_stream_file(cli->positional()[0], collect);
      }();
      if (out.salvaged)
        std::printf("salvage: %s\n", out.salvage.describe().c_str());
      if (!out.ok) {
        std::fprintf(stderr, "%s\n", out.diagnosis.c_str());
        return tools::kExitBadTrace;
      }
      std::printf("awaits: %zu, measured waits: %zu, approximated waits: %zu "
                  "(removed %zu, introduced %zu)\n",
                  out.event_stats.awaits_total, out.event_stats.waits_measured,
                  out.event_stats.waits_approx, out.event_stats.waits_removed,
                  out.event_stats.waits_introduced);
      std::printf("measured total time: %lld%s\n",
                  static_cast<long long>(out.measured_total),
                  out.salvaged ? "  (degraded input)" : "");
      std::printf("approximated total:  %lld  (%.3fx of measured)\n",
                  static_cast<long long>(out.approx_total),
                  static_cast<double>(out.approx_total) /
                      static_cast<double>(out.measured_total));
      std::printf("streaming: %zu events in %zu chunks, %llu windows, "
                  "%llu spills, resident high-water %zu events\n",
                  out.measured_events, out.chunks,
                  static_cast<unsigned long long>(out.windows),
                  static_cast<unsigned long long>(out.spills),
                  out.resident_high_water);
      if (cli->has("output")) {
        const std::string path = cli->get("output", "");
        trace::save(path, out.event_stats.approx);
        std::printf("approximated trace written to %s\n", path.c_str());
      }
      if (cli->get_bool("report", false))
        std::printf(
            "%s",
            core::render_pipeline_report(out.event_stats.approx, options)
                .c_str());
      return tools::kExitOk;
    }

    std::optional<trace::Trace> actual;
    if (cli->has("actual")) actual = trace::load(cli->get("actual", ""));

    const auto result = [&] {
      const support::PhaseTimer timer(run_span);
      return pipeline.run_file(cli->positional()[0],
                               actual ? &*actual : nullptr);
    }();
    std::printf("%s", core::render_acquire(result.acquire).c_str());
    if (!result.acquire.ok) {
      std::fprintf(stderr, "%s\n", result.acquire.diagnosis.c_str());
      return tools::kExitBadTrace;
    }

    const core::AnalyzerOutput& out = result.outputs.front();
    if (out.analytic) {
      const trace::Trace& m = result.acquire.measured;
      std::printf("measured total time: %lld%s\n",
                  static_cast<long long>(m.total_time()),
                  result.acquire.degraded ? "  (degraded input)" : "");
      std::printf("predicted loop time: %lld  (model, no simulation)\n",
                  static_cast<long long>(out.analytic->loop_time));
      std::printf("model uncertainty:   %.2f%s\n",
                  out.analytic->uncertainty,
                  out.analytic->caveats.empty() ? "" : "  caveats:");
      for (const auto& caveat : out.analytic->caveats)
        std::printf("  - %s\n", caveat.c_str());
      return tools::kExitOk;
    }
    if (out.event_stats) {
      std::printf("awaits: %zu, measured waits: %zu, approximated waits: %zu "
                  "(removed %zu, introduced %zu)\n",
                  out.event_stats->awaits_total,
                  out.event_stats->waits_measured,
                  out.event_stats->waits_approx,
                  out.event_stats->waits_removed,
                  out.event_stats->waits_introduced);
    }

    const trace::Trace& measured = result.acquire.measured;
    std::printf("measured total time: %lld%s\n",
                static_cast<long long>(measured.total_time()),
                result.acquire.degraded ? "  (degraded input)" : "");
    std::printf("approximated total:  %lld  (%.3fx of measured)\n",
                static_cast<long long>(out.approx.total_time()),
                static_cast<double>(out.approx.total_time()) /
                    static_cast<double>(measured.total_time()));

    if (out.quality) {
      std::printf("vs actual: measured %.3fx, approximated %.3fx "
                  "(%+.1f%% error)%s\n",
                  out.quality->measured_over_actual,
                  out.quality->approx_over_actual, out.quality->percent_error,
                  out.quality->degraded_input
                      ? "  [degraded: repaired input]"
                      : "");
    }

    if (cli->has("output")) {
      const std::string path = cli->get("output", "");
      trace::save(path, out.approx);
      std::printf("approximated trace written to %s\n", path.c_str());
    }
    if (cli->get_bool("report", false))
      std::printf("%s",
                  core::render_pipeline_report(out.approx, options).c_str());

    if (whatif_spec || whatif_rank != 0) {
      const trace::TraceIndex index(out.approx);
      const analysis::SiteRegistry sites(index);
      std::optional<whatif::WhatIfPlan> plan;
      if (whatif_spec) {
        const auto site = sites.parse(whatif_spec->site);
        if (!site || *site == analysis::SiteRegistry::npos) {
          std::fprintf(stderr,
                       "--whatif names unknown site '%s' (not present in "
                       "this trace)\n",
                       whatif_spec->site.c_str());
          return tools::kExitUsage;
        }
        plan = whatif::WhatIfPlan{*site, whatif_spec->pct};
      }
      const whatif::WhatIfDag dag(index, sites);
      whatif::WhatIfEngine engine(dag);
      if (plan)
        std::printf("%s",
                    whatif::render_whatif(dag, *plan, engine.run(*plan))
                        .c_str());
      if (whatif_rank != 0) {
        support::TaskPool pool;
        std::printf("%s",
                    whatif::render_whatif_ranking(
                        dag, 50, engine.rank(50, pool, whatif_rank))
                        .c_str());
      }
    }
    return tools::kExitOk;
  });
  return metrics.finish(code);
}
