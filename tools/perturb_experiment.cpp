// perturb-experiment — run a Livermore loop through the full measurement
// pipeline and write the three traces (actual, measured, approximated) as
// files for offline work with perturb-analyze / perturb-trace.
//
//   perturb-experiment --loop 17 --n 1001 --mode concurrent
//       --plan full --out-prefix /tmp/lfk17
//
// Options:
//   --loop <k>        kernel number, 1..24 (default 17)
//   --n <trip>        iteration count (default 1001)
//   --mode <m>        sequential | vector | concurrent (default concurrent)
//   --workload <w>    <family>:<seed>[:k=v,...] — run a synthesized workload
//                     (pareto|lognormal|contention|irregular|bursty) instead
//                     of a Livermore kernel; overrides --loop/--n/--mode
//   --plan <p>        statements | sync | full (default full)
//   --schedule <s>    cyclic | block | self (concurrent mode; default cyclic)
//   --procs <p>       processor count (default 8)
//   --stmt-probe <c>  statement probe mean cost (default 175)
//   --seed <s>        jitter seed (default 1991)
//   --repair[=aggressive]  triage/repair the measured trace before analysis
//                     (matters with fault injection or degraded capture)
//   --out-prefix <p>  write <p>.actual.ptt / <p>.measured.ptt / <p>.approx.ptt
//   --metrics[=FILE]  emit a self-observability snapshot (JSON) to stdout or
//                     FILE: simulator tallies, pipeline stage timings
//
// Exit codes: 0 success, 1 usage error, 2 unsalvageable/invalid trace,
// 3 I/O error, 4 internal error.
#include <cstdio>
#include <string>

#include "experiments/experiments.hpp"
#include "experiments/grid.hpp"
#include "loops/kernels.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "tool_util.hpp"
#include "trace/io.hpp"
#include "workload/workload.hpp"

namespace {

int usage(const std::string& what) {
  std::fprintf(stderr,
               "error: %s\n"
               "usage: perturb-experiment [--loop k] [--n trip] "
               "[--mode sequential|vector|concurrent]\n"
               "  [--workload family:seed[:k=v,...]] "
               "[--plan statements|sync|full]\n"
               "  [--schedule cyclic|block|self] [--procs p]\n"
               "  [--stmt-probe c] [--seed s] [--repair[=aggressive]] "
               "[--out-prefix p] [--metrics[=FILE]]\n"
               "%s",
               what.c_str(), perturb::tools::kExitCodeHelp);
  return perturb::tools::kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace perturb;
  const support::Cli cli(argc, argv);
  const int loop = static_cast<int>(cli.get_int("loop", 17));
  const auto n = cli.get_int("n", 1001);
  const std::string mode = cli.get("mode", "concurrent");
  const std::string plan_name = cli.get("plan", "full");
  const std::string sched_name = cli.get("schedule", "cyclic");

  experiments::PlanKind plan = experiments::PlanKind::kFull;
  if (plan_name == "statements")
    plan = experiments::PlanKind::kStatementsOnly;
  else if (plan_name == "sync")
    plan = experiments::PlanKind::kSyncOnly;
  else if (plan_name != "full")
    return usage("unknown --plan " + plan_name);

  sim::Schedule schedule = sim::Schedule::kCyclic;
  if (sched_name == "block") schedule = sim::Schedule::kBlock;
  else if (sched_name == "self") schedule = sim::Schedule::kSelf;
  else if (sched_name != "cyclic")
    return usage("unknown --schedule " + sched_name);

  if (mode != "sequential" && mode != "vector" && mode != "concurrent")
    return usage("unknown --mode " + mode);

  std::optional<workload::WorkloadSpec> wl;
  if (cli.has("workload")) {
    std::string error;
    wl = workload::parse_workload(cli.get("workload", ""), &error);
    if (!wl) return usage(error);
  }

  const std::string repair_arg = cli.get("repair", "");
  if (cli.has("repair") && repair_arg != "true" && repair_arg != "aggressive")
    return usage("bad --repair value '" + repair_arg +
                 "' (use --repair or --repair=aggressive)");
  core::RepairMode repair = core::RepairMode::kOff;
  if (cli.has("repair"))
    repair = repair_arg == "aggressive" ? core::RepairMode::kAggressive
                                        : core::RepairMode::kConservative;

  const tools::MetricsFlag metrics(cli);
  const int code = tools::run_tool([&]() -> int {
    experiments::Setup setup;
    setup.machine.num_procs =
        static_cast<std::uint32_t>(cli.get_int("procs", 8));
    setup.stmt.mean = cli.get_double("stmt-probe", setup.stmt.mean);
    setup.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1991));

    experiments::LoopRun run;
    if (wl) {
      experiments::Scenario cell;
      cell.setup = setup;
      cell.plan = plan;
      cell.repair = repair;
      cell.workload = wl;
      run = experiments::run_scenario(cell);
      std::printf("%s (synthesized %s workload, seed %llu), %s plan\n",
                  workload::workload_name(*wl).c_str(),
                  workload::family_name(wl->family),
                  static_cast<unsigned long long>(wl->seed),
                  plan_name.c_str());
    } else if (mode == "sequential") {
      run = experiments::run_sequential_experiment(loop, n, setup, plan,
                                                   repair);
    } else if (mode == "vector") {
      run = experiments::run_vector_experiment(loop, n, setup, plan, repair);
    } else {
      run = experiments::run_concurrent_experiment(loop, n, setup, plan,
                                                   schedule, repair);
    }

    if (!wl)
      std::printf("lfk%d (%s), %s mode, %s plan\n", loop,
                  loops::kernel_name(loop), mode.c_str(), plan_name.c_str());
    std::printf("  measured/actual: %.3f\n",
                run.eb_quality.measured_over_actual);
    std::printf("  time-based approx/actual:  %.3f (%+.1f%%)\n",
                run.tb_quality.approx_over_actual,
                run.tb_quality.percent_error);
    std::printf("  event-based approx/actual: %.3f (%+.1f%%)\n",
                run.eb_quality.approx_over_actual,
                run.eb_quality.percent_error);

    if (cli.has("out-prefix")) {
      const std::string prefix = cli.get("out-prefix", "");
      trace::save(prefix + ".actual.ptt", run.actual);
      trace::save(prefix + ".measured.ptt", run.measured);
      trace::save(prefix + ".approx.ptt", run.event_based.approx);
      std::printf("traces written to %s.{actual,measured,approx}.ptt\n",
                  prefix.c_str());
    }
    return tools::kExitOk;
  });
  return metrics.finish(code);
}
