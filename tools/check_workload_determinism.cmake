# Cross-process determinism for synthesized workloads: the same
# (family, seed, params) descriptor must produce byte-identical actual,
# measured, and approximated traces in two separate tool processes.  This is
# the strongest form of the reproducibility claim in DESIGN.md §14 — no
# hidden global state (ASLR-dependent hashing, static RNG seeding, iteration
# order of unordered containers) may leak into synthesis.
#
# Invoked by ctest with -DEXPERIMENT=<perturb-experiment>
# -DWORK_DIR=<scratch dir>.

set(spec "bursty:11:trip=256,burst=0.4")
foreach(run a b)
  execute_process(
    COMMAND "${EXPERIMENT}" --workload=${spec}
            --out-prefix ${WORK_DIR}/wdet_${run}
    RESULT_VARIABLE code OUTPUT_QUIET ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "workload run ${run} failed (${code}): ${err}")
  endif()
endforeach()

foreach(kind actual measured approx)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORK_DIR}/wdet_a.${kind}.ptt ${WORK_DIR}/wdet_b.${kind}.ptt
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
      "workload ${spec}: ${kind} trace differs between two processes")
  endif()
endforeach()
