# Usage-error contract for the analysis CLIs: every malformed or
# out-of-contract flag value must be rejected up front with the usage exit
# code (1) — never clamped, never silently ignored, and never deferred until
# after a partial analysis has run.
#
# Regression matrix (each bug here shipped or nearly shipped once):
#   * --whatif site numbers that overflow uint32 ("stmt#4294967296") used to
#     wrap modulo 2^32 and speed up an unrelated statement;
#   * --whatif percentages outside (0, 100] used to be accepted and produce
#     nonsense negative or zero costs;
#   * --whatif-rank 0 / negative used to be clamped to a huge unsigned value;
#   * negative probe costs used to flow into the overhead model as credits.
#
# Invoked by ctest with -DANALYZE=<perturb-analyze>
# -DEXPERIMENT=<perturb-experiment> -DTRACE_FILE=<any valid .ptt>.

function(expect_usage_error)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE code
    OUTPUT_QUIET ERROR_VARIABLE err)
  if(NOT code EQUAL 1)
    message(FATAL_ERROR
      "expected usage exit 1 from '${ARGN}', got ${code} (stderr: ${err})")
  endif()
  if(NOT err MATCHES "error:|usage:")
    message(FATAL_ERROR "no diagnostic from '${ARGN}': ${err}")
  endif()
endfunction()

# Site number one past UINT32_MAX: must be an unknown-site rejection, not a
# wrap onto whatever statement 0 happens to be.  Unlike the spec-syntax cases
# below this one is only reachable after a real analysis (site resolution
# runs against the recovered trace), hence the probe flags.
execute_process(COMMAND "${ANALYZE}" "${TRACE_FILE}"
  --stmt-probe 175 --sync-probe 90 --control-probe 60
  "--whatif=stmt#4294967296:50"
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT code EQUAL 1)
  message(FATAL_ERROR
    "overflowing site number: expected usage exit 1, got ${code}: ${err}")
endif()
if(NOT err MATCHES "unknown site")
  message(FATAL_ERROR "overflowing site number: unhelpful diagnosis: ${err}")
endif()

# What-if percentages: contract is 0 < pct <= 100.
expect_usage_error("${ANALYZE}" "${TRACE_FILE}" "--whatif=stmt#1:0")
expect_usage_error("${ANALYZE}" "${TRACE_FILE}" "--whatif=stmt#1:101")
expect_usage_error("${ANALYZE}" "${TRACE_FILE}" "--whatif=stmt#1:-5")
expect_usage_error("${ANALYZE}" "${TRACE_FILE}" "--whatif=stmt#1:banana")

# Ranked what-if counts: 0 and negatives are meaningless, not "all".
expect_usage_error("${ANALYZE}" "${TRACE_FILE}" --whatif-rank=0)
expect_usage_error("${ANALYZE}" "${TRACE_FILE}" --whatif-rank=-3)

# Negative probe costs are not credits.
expect_usage_error("${ANALYZE}" "${TRACE_FILE}" --stmt-probe=-175)
expect_usage_error("${ANALYZE}" "${TRACE_FILE}" --lock-acquire=-1)

# Workload descriptors: unknown family, malformed seed, unknown knob.
expect_usage_error("${EXPERIMENT}" --workload=zipf:7)
expect_usage_error("${EXPERIMENT}" --workload=pareto:notaseed)
expect_usage_error("${EXPERIMENT}" --workload=pareto:7:tailiness=2.0)
expect_usage_error("${EXPERIMENT}" --workload=pareto:7:alpha=0.5)
