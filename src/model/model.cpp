#include "model/model.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/text.hpp"

namespace perturb::model {

namespace {

using sim::Block;
using sim::MachineConfig;
using sim::Node;
using sim::NodeKind;
using sim::Schedule;
using trace::EventKind;

// Uncertainty feature weights (DESIGN.md §12).  Calibrated against the
// model-vs-event-based cross-validation sweep in bench/bench_model.cpp: every
// term that can push a cell past the screening threshold corresponds to a
// feature that measurably widens the reconstruction error.
constexpr double kJitterWeight = 1.2;      ///< per unit of probe jitter frac
constexpr double kChainPeakWeight = 0.6;   ///< near-saturated DOACROSS chain
constexpr double kChainPeakWidth = 0.35;   ///< half-width of the rho=1 peak
constexpr double kSpreadWeight = 0.5;      ///< data-dependent costs + sync
constexpr double kRegionBase = 0.35;       ///< any critical/semaphore region
constexpr double kRegionContention = 0.3;  ///< scaled by serialization ratio
constexpr double kSelfJitter = 0.3;        ///< self-sched mapping brittleness
constexpr double kZeroAdvance = 0.3;       ///< same-tick await races
constexpr double kUnsupported = 0.9;       ///< coarse-bound fallback

/// Sample points for per-iteration cost statistics on non-uniform loops.
constexpr std::int64_t kCostSamples = 8;

// ---- structural queries --------------------------------------------------

bool subtree_has_cost_fn(const Node& n) {
  if (n.kind == NodeKind::kCompute && n.cost_fn) return true;
  for (const auto& child : n.body.nodes)
    if (subtree_has_cost_fn(*child)) return true;
  return false;
}

bool subtree_has_sync(const Node& n) {
  if (n.kind == NodeKind::kAdvance || n.kind == NodeKind::kAwait) return true;
  for (const auto& child : n.body.nodes)
    if (subtree_has_sync(*child)) return true;
  return false;
}

bool subtree_has_region(const Node& n) {
  if (n.kind == NodeKind::kCritical || n.kind == NodeKind::kSemRegion)
    return true;
  for (const auto& child : n.body.nodes)
    if (subtree_has_region(*child)) return true;
  return false;
}

/// Only constant-cost computation and sequential loops: a block whose master
/// walk collapses to one closed-form cost.
bool block_is_static(const Block& b) {
  for (const auto& n : b.nodes) {
    switch (n->kind) {
      case NodeKind::kCompute:
        if (n->cost_fn) return false;
        break;
      case NodeKind::kSeqLoop:
        if (!block_is_static(n->body)) return false;
        break;
      default:
        return false;
    }
  }
  return true;
}

/// Structure of one parallel-loop body, segmented around the (single)
/// await/advance pair the exact recurrence supports.
struct LoopShape {
  std::vector<const Node*> pre;    ///< before the await
  std::vector<const Node*> chain;  ///< between await and advance
  std::vector<const Node*> post;   ///< after the advance
  const Node* await_node = nullptr;
  const Node* advance_node = nullptr;
  std::int64_t distance = 0;  ///< await(i) reads the advance of i - distance
  bool exact = true;          ///< recurrence-supported shape
  bool has_region = false;    ///< critical/semaphore regions anywhere
  bool has_cost_fn = false;   ///< per-iteration cost functions anywhere
};

LoopShape classify_body(const Block& body) {
  LoopShape s;
  int seg = 0;  // 0 = pre, 1 = chain, 2 = post
  auto push = [&](const Node* n) {
    (seg == 0 ? s.pre : seg == 1 ? s.chain : s.post).push_back(n);
  };
  for (const auto& np : body.nodes) {
    const Node& n = *np;
    s.has_cost_fn = s.has_cost_fn || subtree_has_cost_fn(n);
    switch (n.kind) {
      case NodeKind::kCompute:
      case NodeKind::kSeqLoop:
      case NodeKind::kCritical:
      case NodeKind::kSemRegion:
        // Sync operations hidden below the top level escape the segment
        // model; regions are costed (approximately) in place.
        if (subtree_has_sync(n)) s.exact = false;
        s.has_region = s.has_region || subtree_has_region(n);
        push(&n);
        break;
      case NodeKind::kAwait:
        if (s.await_node != nullptr || s.advance_node != nullptr ||
            n.index.scale != 1 || n.index.offset >= 0) {
          s.exact = false;
          break;
        }
        s.await_node = &n;
        seg = 1;
        break;
      case NodeKind::kAdvance:
        if (s.advance_node != nullptr) {
          s.exact = false;
          break;
        }
        s.advance_node = &n;
        if (s.await_node != nullptr &&
            (n.object != s.await_node->object || n.index.scale != 1 ||
             n.index.offset != 0)) {
          s.exact = false;
        }
        seg = 2;
        break;
      case NodeKind::kParLoop:
        s.exact = false;  // the IR forbids this; stay defensive
        break;
    }
  }
  if (s.await_node != nullptr) {
    if (s.advance_node == nullptr) {
      s.exact = false;  // an await nothing ever advances
    } else {
      s.distance = -s.await_node->index.offset;
      if (s.distance < 1) s.exact = false;
    }
  }
  return s;
}

// ---- the evaluator -------------------------------------------------------

class Evaluator {
 public:
  Evaluator(const sim::Program& program, const MachineConfig& machine,
            const ProbeTable& probes, const ModelOptions& options)
      : prog_(program), m_(machine), probes_(probes), opt_(options) {
    PERTURB_CHECK(m_.num_procs > 0);
    clocks_.assign(m_.num_procs, 0);
  }

  Prediction run() {
    if (opt_.probe_jitter > 0.0)
      raise(std::min(1.0, kJitterWeight * opt_.probe_jitter),
            "probe costs jitter around the modeled means");
    clocks_[0] += probe(EventKind::kProgramBegin);
    const Tick begin = clocks_[0];
    eval_block_master(prog_.root());
    clocks_[0] += probe(EventKind::kProgramEnd);
    Prediction out;
    out.total = clocks_[0] - begin;
    out.uncertainty = std::min(1.0, uncertainty_);
    out.caveats = std::move(caveats_);
    return out;
  }

 private:
  Tick probe(EventKind kind) const {
    return probes_[static_cast<std::size_t>(kind)];
  }

  void raise(double amount, std::string caveat) {
    uncertainty_ += amount;
    for (const auto& c : caveats_)
      if (c == caveat) return;
    caveats_.push_back(std::move(caveat));
  }

  // ---- master (sequential) timeline ----

  std::int64_t seq_context() const {
    return seq_iters_.empty() ? 0 : seq_iters_.back();
  }

  /// Constant cost of a static block on the master path (no context needed).
  Tick static_block_cost(const Block& b) const {
    Tick c = 0;
    for (const auto& n : b.nodes) {
      if (n->kind == NodeKind::kCompute) {
        c += n->cost;
        if (n->traced)
          c += probe(EventKind::kStmtEnter) + probe(EventKind::kStmtExit);
      } else {  // kSeqLoop (block_is_static admits nothing else)
        c += n->trip * (m_.seq_loop_iter_cost + static_block_cost(n->body));
      }
    }
    return c;
  }

  void eval_block_master(const Block& b) {
    for (const auto& n : b.nodes) eval_node_master(*n);
  }

  void eval_node_master(const Node& n) {
    switch (n.kind) {
      case NodeKind::kCompute: {
        if (n.traced) clocks_[0] += probe(EventKind::kStmtEnter);
        const Tick cost = n.cost_fn ? n.cost_fn(seq_context()) : n.cost;
        clocks_[0] += cost;
        if (n.traced) clocks_[0] += probe(EventKind::kStmtExit);
        return;
      }
      case NodeKind::kSeqLoop: {
        if (block_is_static(n.body)) {
          clocks_[0] +=
              n.trip * (m_.seq_loop_iter_cost + static_block_cost(n.body));
          return;
        }
        for (std::int64_t i = 0; i < n.trip; ++i) {
          clocks_[0] += m_.seq_loop_iter_cost;
          seq_iters_.push_back(i);
          eval_block_master(n.body);
          seq_iters_.pop_back();
        }
        return;
      }
      case NodeKind::kParLoop:
        eval_par_loop(n);
        return;
      default:
        // Sync/region nodes outside parallel loops are rejected by
        // Program::finalize; cover the path defensively.
        raise(kUnsupported, "synchronization outside a parallel loop");
        return;
    }
  }

  // ---- per-iteration body costs (inside a parallel loop) ----

  /// Cost a body node contributes to iteration `iter`'s processor path.
  /// Regions are priced uncontended here; contention is bounded separately.
  Tick body_node_cost(const Node& n, std::int64_t iter) const {
    switch (n.kind) {
      case NodeKind::kCompute: {
        Tick c = n.cost_fn ? n.cost_fn(iter) : n.cost;
        if (n.traced)
          c += probe(EventKind::kStmtEnter) + probe(EventKind::kStmtExit);
        return c;
      }
      case NodeKind::kSeqLoop: {
        // Nested sequential iterations all evaluate cost functions with the
        // governing parallel iteration, so the body cost is constant across
        // them.
        Tick inner = 0;
        for (const auto& child : n.body.nodes)
          inner += body_node_cost(*child, iter);
        return n.trip * (m_.seq_loop_iter_cost + inner);
      }
      case NodeKind::kCritical: {
        Tick inner = 0;
        for (const auto& child : n.body.nodes)
          inner += body_node_cost(*child, iter);
        return m_.lock_acquire_cost + probe(EventKind::kLockAcquire) + inner +
               m_.lock_release_cost + probe(EventKind::kLockRelease);
      }
      case NodeKind::kSemRegion: {
        Tick inner = 0;
        for (const auto& child : n.body.nodes)
          inner += body_node_cost(*child, iter);
        return m_.sem_acquire_cost + probe(EventKind::kSemAcquire) + inner +
               m_.sem_release_cost + probe(EventKind::kSemRelease);
      }
      default:
        return 0;  // sync nodes priced by the caller
    }
  }

  Tick segment_cost(const std::vector<const Node*>& nodes,
                    std::int64_t iter) const {
    Tick c = 0;
    for (const Node* n : nodes) c += body_node_cost(*n, iter);
    return c;
  }

  /// Fallback per-iteration cost for unsupported shapes: every node priced
  /// as local work, synchronization as its uncontended operation cost.
  Tick fallback_iteration_cost(const Block& body, std::int64_t iter,
                               std::int64_t trip) const {
    Tick c = 0;
    for (const auto& np : body.nodes) {
      const Node& n = *np;
      switch (n.kind) {
        case NodeKind::kAwait: {
          const std::int64_t idx = n.index.eval(iter);
          if (idx >= 0 && idx < trip)
            c += probe(EventKind::kAwaitBegin) + m_.await_check_cost +
                 probe(EventKind::kAwaitEnd);
          break;
        }
        case NodeKind::kAdvance:
          c += m_.advance_cost + probe(EventKind::kAdvance);
          break;
        default:
          c += body_node_cost(n, iter);
          break;
      }
    }
    return c;
  }

  // ---- parallel loops ----

  /// Iterations processor q receives under a static schedule.
  std::int64_t static_count(Schedule schedule, std::int64_t trip,
                            std::size_t q) const {
    const auto p = static_cast<std::int64_t>(m_.num_procs);
    const auto qi = static_cast<std::int64_t>(q);
    if (trip <= 0) return 0;
    if (schedule == Schedule::kCyclic)
      return qi >= trip ? 0 : (trip - qi + p - 1) / p;
    const std::int64_t chunk = (trip + p - 1) / p;
    const std::int64_t lo = chunk * qi;
    const std::int64_t hi = std::min(trip, chunk * (qi + 1));
    return std::max<std::int64_t>(0, hi - lo);
  }

  void eval_par_loop(const Node& loop) {
    clocks_[0] += probe(EventKind::kLoopBegin) + m_.loop_spawn_cost;
    const Tick start = clocks_[0];
    for (std::size_t q = 1; q < clocks_.size(); ++q)
      clocks_[q] = std::max(clocks_[q], start);

    const LoopShape shape = classify_body(loop.body);
    const bool uniform = !shape.has_cost_fn;

    if (!shape.exact) {
      run_fallback(loop);
      raise(kUnsupported,
            "loop structure outside the analytical model (" + loop.label +
                ")");
    } else if (shape.await_node == nullptr && uniform &&
               loop.schedule != Schedule::kSelf) {
      run_doall_closed_form(loop, shape);
    } else if (loop.schedule == Schedule::kSelf) {
      run_self_scheduled(loop, shape, uniform);
    } else {
      run_static_recurrence(loop, shape, uniform);
    }

    if (shape.exact) assess_loop_uncertainty(loop, shape);
    Tick serial_arrival = 0;
    if (shape.exact && shape.has_region)
      serial_arrival = region_serialization_bound(loop, start);

    // Barrier: max-plus composition of the per-processor arrivals.
    for (Tick& c : clocks_) c += probe(EventKind::kBarrierArrive);
    Tick release = serial_arrival;
    for (const Tick c : clocks_) release = std::max(release, c);
    for (Tick& c : clocks_)
      c = release + m_.barrier_depart_cost + probe(EventKind::kBarrierDepart);
    clocks_[0] += probe(EventKind::kLoopEnd);
  }

  /// DOALL with uniform costs under a static schedule: pure max over the
  /// per-processor partition sums — O(P).
  void run_doall_closed_form(const Node& loop, const LoopShape& shape) {
    Tick per_iter = m_.iter_dispatch_cost + probe(EventKind::kIterBegin) +
                    segment_cost(shape.pre, 0) + segment_cost(shape.chain, 0) +
                    segment_cost(shape.post, 0) + probe(EventKind::kIterEnd);
    if (shape.advance_node != nullptr)
      per_iter += m_.advance_cost + probe(EventKind::kAdvance);
    for (std::size_t q = 0; q < clocks_.size(); ++q)
      clocks_[q] += static_count(loop.schedule, loop.trip, q) * per_iter;
  }

  /// The exact blocking recurrence for cyclic/block schedules, processed in
  /// ascending iteration order (a topological order of the dependence
  /// chain).  Term-for-term the engine's arithmetic: dispatch, IterBegin
  /// probe, pre work, await begin + check, visibility test (resume when the
  /// advance lands in this processor's future), chain work, advance
  /// visibility before its probe, post work, IterEnd probe.
  void run_static_recurrence(const Node& loop, const LoopShape& shape,
                             bool uniform) {
    const std::int64_t trip = loop.trip;
    if (trip <= 0) return;
    const auto p = static_cast<std::int64_t>(m_.num_procs);
    const std::int64_t chunk = (trip + p - 1) / p;
    const bool has_await = shape.await_node != nullptr;
    const bool has_advance = shape.advance_node != nullptr;
    const std::int64_t d = shape.distance;

    std::vector<Tick> adv;
    if (has_advance) adv.assign(static_cast<std::size_t>(trip), 0);

    Tick upre = 0, uchain = 0, upost = 0;
    if (uniform) {
      upre = segment_cost(shape.pre, 0);
      uchain = segment_cost(shape.chain, 0);
      upost = segment_cost(shape.post, 0);
    }
    const Tick iter_head = m_.iter_dispatch_cost + probe(EventKind::kIterBegin);
    const Tick await_head =
        probe(EventKind::kAwaitBegin) + m_.await_check_cost;

    // Steady-state extrapolation: once two consecutive rounds of P
    // iterations shift every processor clock and the advance window by one
    // common delta, the recurrence (max/+ with constant terms, hence
    // shift-invariant) repeats that delta for every following round.
    bool extrapolate = opt_.extrapolate && uniform && has_await &&
                       has_advance && loop.schedule == Schedule::kCyclic &&
                       d < trip;
    std::vector<Tick> prev_state;
    bool have_prev = false;
    const auto snapshot = [&](std::int64_t i) {
      std::vector<Tick> state(clocks_);
      for (std::int64_t w = 1; w <= d; ++w)
        state.push_back(adv[static_cast<std::size_t>(i - w)]);
      return state;
    };

    std::int64_t i = 0;
    while (i < trip) {
      if (extrapolate && i % p == 0 && i >= d && i + p <= trip) {
        std::vector<Tick> state = snapshot(i);
        if (have_prev) {
          const Tick delta = state[0] - prev_state[0];
          bool steady = true;
          for (std::size_t k = 1; k < state.size(); ++k)
            if (state[k] - prev_state[k] != delta) {
              steady = false;
              break;
            }
          const std::int64_t jump = (trip - i) / p - 1;
          if (steady && jump > 0) {
            for (Tick& c : clocks_) c += jump * delta;
            for (std::int64_t w = 1; w <= d; ++w)
              adv[static_cast<std::size_t>(i + jump * p - w)] =
                  adv[static_cast<std::size_t>(i - w)] + jump * delta;
            i += jump * p;
            extrapolate = false;  // tail runs the exact recurrence
            continue;
          }
        }
        prev_state = std::move(state);
        have_prev = true;
      }

      const auto q = static_cast<std::size_t>(
          loop.schedule == Schedule::kCyclic ? i % p : i / chunk);
      Tick t = clocks_[q] + iter_head;
      t += uniform ? upre : segment_cost(shape.pre, i);
      if (has_await && i >= d) {
        t += await_head;
        const Tick vis = adv[static_cast<std::size_t>(i - d)];
        if (vis > t) t = vis + m_.await_resume_cost;
        t += probe(EventKind::kAwaitEnd);
      }
      t += uniform ? uchain : segment_cost(shape.chain, i);
      if (has_advance) {
        t += m_.advance_cost;
        adv[static_cast<std::size_t>(i)] = t;
        t += probe(EventKind::kAdvance);
      }
      t += uniform ? upost : segment_cost(shape.post, i);
      t += probe(EventKind::kIterEnd);
      clocks_[q] = t;
      ++i;
    }
  }

  /// Self-scheduling: replay the shared counter's grant order exactly.  A
  /// dispatch is granted to the queued processor with the minimal (clock,
  /// id) — the engine's conservative pop order — and counter serialization
  /// back-pressures exactly like sim::SelfScheduler.
  void run_self_scheduled(const Node& loop, const LoopShape& shape,
                          bool uniform) {
    const std::int64_t trip = loop.trip;
    const bool has_await = shape.await_node != nullptr;
    const bool has_advance = shape.advance_node != nullptr;
    const std::int64_t d = shape.distance;

    std::vector<Tick> adv;
    if (has_advance) adv.assign(static_cast<std::size_t>(std::max<std::int64_t>(trip, 0)), 0);
    Tick upre = 0, uchain = 0, upost = 0;
    if (uniform) {
      upre = segment_cost(shape.pre, 0);
      uchain = segment_cost(shape.chain, 0);
      upost = segment_cost(shape.post, 0);
    }
    const Tick await_head =
        probe(EventKind::kAwaitBegin) + m_.await_check_cost;

    using Entry = std::pair<Tick, std::uint32_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
    for (std::uint32_t q = 0; q < m_.num_procs; ++q)
      heap.push({clocks_[q], q});
    Tick available = 0;
    std::int64_t next = 0;
    while (!heap.empty()) {
      const auto [c, q] = heap.top();
      heap.pop();
      if (next >= trip) continue;  // exhausted: this processor arrives
      const Tick grant = std::max(c, available);
      available = grant + m_.self_sched_serialize;
      const std::int64_t i = next++;
      Tick t = grant + m_.self_sched_fetch_cost;
      t += probe(EventKind::kIterBegin);
      t += uniform ? upre : segment_cost(shape.pre, i);
      if (has_await && i >= d) {
        t += await_head;
        const Tick vis = adv[static_cast<std::size_t>(i - d)];
        if (vis > t) t = vis + m_.await_resume_cost;
        t += probe(EventKind::kAwaitEnd);
      }
      t += uniform ? uchain : segment_cost(shape.chain, i);
      if (has_advance) {
        t += m_.advance_cost;
        adv[static_cast<std::size_t>(i)] = t;
        t += probe(EventKind::kAdvance);
      }
      t += uniform ? upost : segment_cost(shape.post, i);
      t += probe(EventKind::kIterEnd);
      clocks_[q] = t;
      heap.push({t, q});
    }
  }

  /// Coarse bound for unsupported shapes: every iteration priced as local
  /// work (synchronization at its uncontended cost), no blocking modeled.
  void run_fallback(const Node& loop) {
    const std::int64_t trip = loop.trip;
    if (trip <= 0) return;
    const Tick iter_head = m_.iter_dispatch_cost + probe(EventKind::kIterBegin);
    if (loop.schedule == Schedule::kSelf) {
      // Approximate the counter round-robin as a cyclic assignment.
      for (std::int64_t i = 0; i < trip; ++i) {
        const auto q = static_cast<std::size_t>(
            i % static_cast<std::int64_t>(m_.num_procs));
        clocks_[q] += m_.self_sched_fetch_cost + probe(EventKind::kIterBegin) +
                      fallback_iteration_cost(loop.body, i, trip) +
                      probe(EventKind::kIterEnd);
      }
      return;
    }
    const auto p = static_cast<std::int64_t>(m_.num_procs);
    const std::int64_t chunk = (trip + p - 1) / p;
    for (std::int64_t i = 0; i < trip; ++i) {
      const auto q = static_cast<std::size_t>(
          loop.schedule == Schedule::kCyclic ? i % p : i / chunk);
      clocks_[q] += iter_head + fallback_iteration_cost(loop.body, i, trip) +
                    probe(EventKind::kIterEnd);
    }
  }

  // ---- critical-section serialization bound ----

  /// Accumulates each region's per-holder demand (the serial busy period a
  /// holder contributes: acquire + body + release-visibility) per object.
  void accumulate_region_demand(const Node& n, std::int64_t iter,
                                std::unordered_map<std::uint64_t, Tick>& demand,
                                std::int64_t multiplier) const {
    switch (n.kind) {
      case NodeKind::kCritical:
      case NodeKind::kSemRegion: {
        Tick inner = 0;
        for (const auto& child : n.body.nodes)
          inner += body_node_cost(*child, iter);
        Tick hold;
        std::uint64_t key;
        if (n.kind == NodeKind::kCritical) {
          hold = m_.lock_acquire_cost + probe(EventKind::kLockAcquire) +
                 inner + m_.lock_release_cost;
          key = n.object;
        } else {
          hold = m_.sem_acquire_cost + probe(EventKind::kSemAcquire) + inner +
                 m_.sem_release_cost;
          key = (std::uint64_t{1} << 32) | n.object;
        }
        demand[key] += multiplier * hold;
        return;
      }
      case NodeKind::kSeqLoop:
        for (const auto& child : n.body.nodes)
          accumulate_region_demand(*child, iter, demand,
                                   multiplier * n.trip);
        return;
      default:
        return;
    }
  }

  /// M/D/1-style serialization term: the busiest lock's total demand D,
  /// started at the earliest possible entry, bounds the last holder's exit;
  /// the loop cannot release its barrier before that exit plus the holder's
  /// trailing work.  Returns the serial arrival bound (pre-arrival-probe)
  /// and raises uncertainty with the serialization ratio.
  Tick region_serialization_bound(const Node& loop, Tick start) {
    const std::int64_t trip = loop.trip;
    std::unordered_map<std::uint64_t, Tick> demand;
    for (std::int64_t i = 0; i < trip; ++i)
      for (const auto& np : loop.body.nodes)
        accumulate_region_demand(*np, i, demand, 1);
    Tick busiest = 0;
    for (const auto& [key, total] : demand) {
      Tick scaled = total;
      if ((key >> 32) != 0) {
        const auto capacity = prog_.semaphore_capacity(
            static_cast<trace::ObjectId>(key & 0xffffffffu));
        scaled = (total + capacity - 1) / capacity;
      }
      busiest = std::max(busiest, scaled);
    }
    if (busiest == 0) return 0;

    // Earliest entry: first iteration's path up to the first region; exit
    // tail: the first iteration's work after it (iteration 0 stands in for
    // the mean — this is a bound, not the recurrence).
    Tick before = m_.iter_dispatch_cost + probe(EventKind::kIterBegin);
    Tick after = probe(EventKind::kIterEnd);
    bool seen_region = false;
    for (const auto& np : loop.body.nodes) {
      const bool is_region = subtree_has_region(*np);
      if (!seen_region && is_region) {
        seen_region = true;
        continue;
      }
      (seen_region ? after : before) += body_node_cost(*np, 0);
    }
    const Tick serial_arrival = start + before + busiest + after;

    Tick parallel_arrival = start;
    for (const Tick c : clocks_) parallel_arrival = std::max(parallel_arrival, c);
    const double ratio =
        static_cast<double>(busiest) /
        std::max(1.0, static_cast<double>(parallel_arrival - start));
    raise(kRegionBase + kRegionContention * std::min(1.0, ratio),
          support::strf("critical-section contention bounded, not replayed "
                        "(serialization ratio %.2f)",
                        ratio));
    return serial_arrival;
  }

  // ---- uncertainty features ----

  void assess_loop_uncertainty(const Node& loop, const LoopShape& shape) {
    const std::int64_t trip = loop.trip;
    if (trip <= 0) return;

    // Sampled per-iteration segment statistics (exact when uniform).
    double pre_m = 0, chain_m = 0, post_m = 0;
    double total_min = 0, total_max = 0;
    const std::int64_t samples = shape.has_cost_fn
                                     ? std::min<std::int64_t>(kCostSamples, trip)
                                     : 1;
    for (std::int64_t k = 0; k < samples; ++k) {
      const std::int64_t i =
          samples == 1 ? 0 : k * (trip - 1) / (samples - 1);
      const auto pre = static_cast<double>(segment_cost(shape.pre, i));
      const auto chain = static_cast<double>(segment_cost(shape.chain, i));
      const auto post = static_cast<double>(segment_cost(shape.post, i));
      pre_m += pre;
      chain_m += chain;
      post_m += post;
      const double total = pre + chain + post;
      if (k == 0 || total < total_min) total_min = total;
      if (k == 0 || total > total_max) total_max = total;
    }
    const auto ns = static_cast<double>(samples);
    pre_m /= ns;
    chain_m /= ns;
    post_m /= ns;

    const bool has_chain =
        shape.await_node != nullptr && shape.advance_node != nullptr;
    if (has_chain) {
      // Chain utilization: serial token hold per link versus the parallel
      // iteration supply.  rho near 1 means blocking flips on marginal cost
      // changes — exactly where probe jitter (and hence reconstruction)
      // turns unpredictable; far from 1 the loop is stably parallel or
      // stably serial.
      const double serial =
          static_cast<double>(m_.await_resume_cost +
                              probe(EventKind::kAwaitEnd) + m_.advance_cost) +
          chain_m;
      const double per_iter =
          static_cast<double>(m_.iter_dispatch_cost +
                              probe(EventKind::kIterBegin) +
                              probe(EventKind::kAwaitBegin) +
                              m_.await_check_cost + probe(EventKind::kAwaitEnd) +
                              m_.advance_cost + probe(EventKind::kAdvance) +
                              probe(EventKind::kIterEnd)) +
          pre_m + chain_m + post_m;
      const double procs = std::min<double>(m_.num_procs,
                                            static_cast<double>(trip));
      const double rho = procs * serial /
                         std::max(1.0, static_cast<double>(shape.distance) *
                                           per_iter);
      const double peak =
          std::max(0.0, 1.0 - std::abs(rho - 1.0) / kChainPeakWidth);
      if (peak > 0.0)
        raise(kChainPeakWeight * peak,
              support::strf("dependence chain near saturation (rho %.2f)",
                            rho));
      if (m_.advance_cost == 0)
        raise(kZeroAdvance,
              "zero-cost advance leaves same-tick await races unresolved");
    }

    if (shape.has_cost_fn && (has_chain || shape.has_region)) {
      const double rel = (total_max - total_min) /
                         std::max(1.0, pre_m + chain_m + post_m);
      if (rel > 0.0)
        raise(kSpreadWeight * std::min(1.0, rel),
              "data-dependent statement costs feed the dependence chain");
    }

    if (loop.schedule == Schedule::kSelf && opt_.probe_jitter > 0.0)
      raise(kSelfJitter,
            "self-scheduled iteration mapping is probe-jitter sensitive");
  }

  const sim::Program& prog_;
  const MachineConfig& m_;
  const ProbeTable& probes_;
  const ModelOptions& opt_;
  std::vector<Tick> clocks_;
  std::vector<std::int64_t> seq_iters_;
  double uncertainty_ = 0.0;
  std::vector<std::string> caveats_;
};

}  // namespace

Prediction predict_program(const sim::Program& program,
                           const sim::MachineConfig& machine,
                           const ProbeTable& probes,
                           const ModelOptions& options) {
  PERTURB_CHECK_MSG(program.finalized(), "predict_program needs a finalized program");
  Evaluator evaluator(program, machine, probes, options);
  return evaluator.run();
}

}  // namespace perturb::model
