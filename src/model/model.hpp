// Compositional analytical performance model over the loop IR.
//
// Where the rest of the repo *executes* a program (simulator) or *replays*
// its measured events (event-based analysis), this module predicts run time
// directly from program structure, composing closed forms the way extra-p
// composes parallel patterns:
//
//  - DOALL loops: max over per-processor partitions of the summed statement
//    costs (an O(P) closed form when costs are uniform),
//  - DOACROSS loops: the blocking recurrence unrolled over the dependence
//    distance, with the loop-spawn fill and barrier drain terms composed
//    max-plus around it (plus a steady-state extrapolation that makes long
//    uniform cyclic loops O(P + d)),
//  - critical sections: a serialization (M/D/1-style busy-period) bound on
//    the lock's total demand,
//  - barriers / program phases: max-plus composition across phases on
//    per-processor clocks.
//
// The recurrence mirrors the discrete-event engine's cost arithmetic term
// for term (probe charged before each recorded event's timestamp, advance
// visibility before its probe, dispatch costs from the scheduler), so for
// the supported loop shapes the prediction is *tick-exact* against
// sim::simulate with a zero-jitter hook — property-tested in
// tests/model_test.cpp.  What the closed form cannot capture is reported as
// an uncertainty estimate in [0, 1]: structural features (near-saturated
// dependence chains, data-dependent statement costs, critical-section
// density, jitter-sensitive self-scheduled mappings) that make the *real*
// measured execution — and hence event-based reconstruction of it — drift
// from the mean-cost prediction.  The experiment grid uses that estimate to
// screen cells: confident cells take the model's answer, uncertain ones
// fall through to simulate + reconstruct (experiments::run_grid_screened).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/ir.hpp"
#include "sim/machine.hpp"
#include "trace/event.hpp"

namespace perturb::model {

using sim::Cycles;
using trace::Tick;

/// Mean probe charge the model assumes per event kind, mirroring
/// instr::InstrumentationPlan::mean_cost: 0 for kinds the plan does not
/// record.  An all-zero table models the uninstrumented (actual) run.
using ProbeTable = std::array<Cycles, trace::kNumEventKinds>;

/// The uninstrumented parameterization: no probes anywhere.
constexpr ProbeTable no_probes() { return ProbeTable{}; }

struct ModelOptions {
  /// Steady-state extrapolation for long uniform-cost cyclic loops: once two
  /// consecutive rounds of P iterations advance every processor clock and
  /// the advance-visibility window by the same delta, the remaining full
  /// rounds are jumped in O(1).  Exact (the recurrence is shift-invariant);
  /// switchable only so tests can compare against the unrolled recurrence.
  bool extrapolate = true;
  /// Maximum probe-cost jitter fraction of the instrumentation the probe
  /// table was taken from; feeds the uncertainty estimate (the model itself
  /// always uses the means).  0 for the uninstrumented run.
  double probe_jitter = 0.0;
};

struct Prediction {
  /// Predicted end-to-end run time: ProgramEnd - ProgramBegin of the
  /// equivalent simulation.
  Tick total = 0;
  /// Structural confidence estimate in [0, 1]: 0 = the closed form captures
  /// this program exactly, 1 = the prediction is a coarse bound.  See
  /// DESIGN.md §12 for the feature terms.
  double uncertainty = 0.0;
  /// Why uncertainty is elevated, one human-readable reason per feature.
  std::vector<std::string> caveats;
};

/// Predicts the run time of `program` (which must be finalized) on
/// `machine` under the given probe charges.  Deterministic: identical
/// inputs produce identical predictions, on any host and at any thread
/// count (the evaluation is single-threaded arithmetic).
Prediction predict_program(const sim::Program& program,
                           const sim::MachineConfig& machine,
                           const ProbeTable& probes,
                           const ModelOptions& options = {});

}  // namespace perturb::model
