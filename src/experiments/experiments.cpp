#include "experiments/experiments.hpp"

#include "instr/calibrate.hpp"
#include "loops/programs.hpp"
#include "support/check.hpp"

namespace perturb::experiments {

instr::InstrumentationPlan make_plan(PlanKind kind, const Setup& setup) {
  switch (kind) {
    case PlanKind::kStatementsOnly:
      return instr::InstrumentationPlan::statements_only(setup.stmt, setup.seed);
    case PlanKind::kFull:
      return instr::InstrumentationPlan::full(setup.stmt, setup.sync,
                                              setup.control, setup.seed);
    case PlanKind::kSyncOnly:
      return instr::InstrumentationPlan::sync_only(setup.sync, setup.seed);
  }
  PERTURB_CHECK_MSG(false, "unknown plan kind");
  return instr::InstrumentationPlan::sync_only({}, 0);
}

core::AnalysisOverheads overheads_for(const instr::InstrumentationPlan& plan,
                                      const sim::MachineConfig& machine) {
  core::AnalysisOverheads ov;
  for (std::uint8_t k = 0; k < trace::kNumEventKinds; ++k)
    ov.probe[k] = plan.mean_cost(static_cast<trace::EventKind>(k));
  const instr::SyncOverheads sync = instr::calibrate_sync(machine);
  ov.s_nowait = sync.await_nowait;
  ov.s_wait = sync.await_wait;
  ov.lock_acquire = machine.lock_acquire_cost;
  // Livermore kernels declare no semaphores, so this was historically left
  // unset; synthesized contention workloads do, and the reconstruction must
  // price their acquires like every other sync operation.
  ov.sem_acquire = machine.sem_acquire_cost;
  ov.barrier_depart = machine.barrier_depart_cost;
  return ov;
}

LoopRun analyze_pair(trace::Trace actual, trace::Trace measured,
                     const instr::InstrumentationPlan& plan,
                     const sim::MachineConfig& machine,
                     core::RepairMode repair,
                     const std::map<trace::ObjectId, std::int64_t>& sem_capacity) {
  LoopRun run;
  run.actual = std::move(actual);
  run.measured = std::move(measured);

  core::PipelineOptions options;
  options.overheads = overheads_for(plan, machine);
  options.event_based.semaphore_capacity = sem_capacity;
  options.repair = repair;
  core::AnalysisPipeline pipeline(std::move(options));
  pipeline.add(core::AnalyzerKind::kTimeBased)
      .add(core::AnalyzerKind::kEventBased);

  // Fresh simulator output needs no triage unless the caller asked for the
  // repair path.
  auto acquired = repair == core::RepairMode::kOff
                      ? core::trusted_acquire(run.measured)
                      : pipeline.acquire(run.measured);
  auto result = pipeline.run(std::move(acquired), &run.actual);
  PERTURB_CHECK_MSG(result.acquire.ok, result.acquire.diagnosis);

  run.time_based = std::move(result.outputs[0].approx);
  run.event_based = std::move(*result.outputs[1].event_stats);
  run.event_based.approx = std::move(result.outputs[1].approx);
  run.tb_quality = *result.outputs[0].quality;
  run.eb_quality = *result.outputs[1].quality;
  return run;
}

LoopRun run_program_experiment(const sim::Program& program, const Setup& setup,
                               PlanKind plan_kind, const std::string& name,
                               core::RepairMode repair) {
  const instr::InstrumentationPlan plan = make_plan(plan_kind, setup);
  trace::Trace actual =
      sim::simulate_actual(setup.machine, program, name + "/actual");
  trace::Trace measured =
      sim::simulate(setup.machine, program, plan, name + "/measured");
  return analyze_pair(std::move(actual), std::move(measured), plan,
                      setup.machine, repair);
}

LoopRun run_sequential_experiment(int loop, std::int64_t n, const Setup& setup,
                                  PlanKind plan_kind, core::RepairMode repair) {
  const auto program = loops::make_sequential_ir(loop, n);
  return run_program_experiment(program, setup, plan_kind,
                                "lfk" + std::to_string(loop) + "-seq", repair);
}

LoopRun run_concurrent_experiment(int loop, std::int64_t n, const Setup& setup,
                                  PlanKind plan_kind, sim::Schedule schedule,
                                  core::RepairMode repair) {
  const auto program = loops::make_concurrent_ir(loop, n, schedule);
  return run_program_experiment(program, setup, plan_kind,
                                "lfk" + std::to_string(loop) + "-con", repair);
}

LoopRun run_vector_experiment(int loop, std::int64_t n, const Setup& setup,
                              PlanKind plan_kind, core::RepairMode repair) {
  const auto program = loops::make_vector_ir(loop, n);
  return run_program_experiment(program, setup, plan_kind,
                                "lfk" + std::to_string(loop) + "-vec", repair);
}

}  // namespace perturb::experiments
