// Parallel experiment grids.
//
// The paper's tables and this repo's ablations are all sweeps: the same loop
// experiment repeated across processor counts, probe costs, plans, or
// execution modes.  A Scenario captures one cell of such a sweep as data;
// run_grid fans a vector of them across a deterministic task pool, with two
// structural optimizations the serial drivers cannot express:
//
//  1. Actual-run memoization.  The uninstrumented ("actual") simulation
//     depends only on the program and the machine — not on probe costs,
//     plans, or repair modes — so variant sweeps share one actual run per
//     (mode, loop, n, schedule, machine) key instead of re-simulating it
//     per cell.
//  2. Per-worker I/O arenas.  Scenarios that analyze captured trace files
//     load them through one reusable buffer per worker.
//
// Results are bit-identical to running each scenario alone, at any thread
// count and with memoization on or off.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "experiments/experiments.hpp"
#include "model/model.hpp"
#include "workload/workload.hpp"

namespace perturb::experiments {

/// How a scenario lowers its Livermore loop to IR (§3 ran the suite in
/// scalar, vector, and concurrent modes).
enum class ExecMode : std::uint8_t { kSequential, kConcurrent, kVector };

/// "seq", "con", or "vec" — the suffix used in canonical run names.
const char* exec_mode_name(ExecMode mode) noexcept;

/// One cell of an experiment grid.  Every field is data (no hidden state),
/// so a scenario can be hashed, compared, and dispatched to any worker.
struct Scenario {
  int loop = 3;
  std::int64_t n = 1001;
  ExecMode mode = ExecMode::kConcurrent;
  sim::Schedule schedule = sim::Schedule::kCyclic;  ///< concurrent mode only
  Setup setup;
  PlanKind plan = PlanKind::kStatementsOnly;
  core::RepairMode repair = core::RepairMode::kOff;
  /// When set, the measured trace is loaded from this file (through the
  /// worker's I/O arena) instead of simulated — the degraded-capture path.
  std::string measured_path;
  /// Optional fault injection applied to the measured trace before
  /// acquisition.  Must be a pure function of the trace for the grid's
  /// determinism guarantee to hold.
  std::function<void(trace::Trace&)> mutate_measured;
  /// When set, the cell runs a synthesized workload instead of a Livermore
  /// kernel: loop/n/mode/schedule are ignored (the spec carries its own trip
  /// and schedule), the actual-run memo key incorporates the full workload
  /// descriptor, and interference specs wrap the measured run's plan in a
  /// workload::InterferenceHook.
  std::optional<workload::WorkloadSpec> workload;
};

/// Canonical run name, e.g. "lfk17-con"; matches the serial
/// run_{sequential,concurrent,vector}_experiment drivers so traces are
/// byte-identical between the two paths.
std::string scenario_name(const Scenario& s);

/// Runs one scenario through the full pipeline — the canonical serial
/// semantics that run_grid reproduces bit-identically.
LoopRun run_scenario(const Scenario& s);

struct GridOptions {
  std::size_t threads = 1;     ///< task-pool workers; 0 = hardware concurrency
  bool memoize_actual = true;  ///< share actual runs across matching cells
};

/// Runs every scenario across a support::TaskPool.  result[i] is
/// bit-identical to run_scenario(scenarios[i]) for every thread count and
/// memoization setting.
std::vector<LoopRun> run_grid(const std::vector<Scenario>& scenarios,
                              const GridOptions& options = {});

/// The pre-optimization grid driver, kept verbatim in spirit: one scenario
/// at a time, no actual-run memoization, simulate_reference for both runs
/// and compare_reference for quality scoring.  Produces results identical
/// to run_grid; exists as the reference timing in bench/bench_sim.
std::vector<LoopRun> run_grid_reference(const std::vector<Scenario>& scenarios);

// ---- analytical screening (ROADMAP item 2) -------------------------------

/// Analytical verdict for one grid cell: the model evaluated under both of
/// the cell's parameterizations.  Screening must trust the prediction of the
/// *actual* run AND the prediction of the *measured* run (the reconstruction
/// a fall-through cell would be scored against), so the screening-relevant
/// uncertainty is the max over both — e.g. Livermore 17's chain is nearly
/// saturated uninstrumented but firmly saturated instrumented: either
/// parameterization alone would miss half the risk.
struct CellPrediction {
  model::Prediction actual;    ///< uninstrumented run, no probes
  model::Prediction measured;  ///< instrumented run, plan probe means
  /// max(actual.uncertainty, measured.uncertainty); forced to 1.0 for cells
  /// the model cannot see (file-loaded traces, fault injection, repair).
  double uncertainty = 1.0;
};

/// Evaluates one cell analytically — no simulation, microseconds per cell.
CellPrediction predict_scenario(const Scenario& s);

/// Screening threshold calibrated by the bench_model cross-validation sweep
/// over the full Livermore grid (see DESIGN.md §12): at 0.25 every cell
/// whose model error exceeds the confident-cell accuracy gate carries a
/// higher uncertainty than this, with margin on both sides.
inline constexpr double kDefaultScreenThreshold = 0.25;

struct ScreenOptions {
  GridOptions grid;  ///< fall-through execution options
  double uncertainty_threshold = kDefaultScreenThreshold;
};

/// One screened cell: `prediction` is always filled; `run` only when the
/// cell fell through (screened == false).
struct ScreenedCell {
  bool screened = false;
  CellPrediction prediction;
  LoopRun run;
};

struct ScreenedGrid {
  std::vector<ScreenedCell> cells;  ///< one per scenario, same order
  std::size_t confident = 0;        ///< cells answered by the model alone
  std::size_t fallthrough = 0;      ///< cells that paid simulate + analyze
};

/// The screened sweep: every scenario is first evaluated analytically; cells
/// with prediction uncertainty <= the threshold take the model's answer in
/// O(model) time, the rest run through run_grid.  Fall-through results are
/// bit-identical to run_grid over the full list (same per-cell semantics,
/// any thread count); a sweep of model-confident cells costs near-O(1)
/// simulation work regardless of grid size.
ScreenedGrid run_grid_screened(const std::vector<Scenario>& scenarios,
                               const ScreenOptions& options = {});

}  // namespace perturb::experiments
