#include "experiments/grid.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <unordered_map>
#include <utility>

#include "loops/programs.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/text.hpp"
#include "trace/io.hpp"

namespace perturb::experiments {

const char* exec_mode_name(ExecMode mode) noexcept {
  switch (mode) {
    case ExecMode::kSequential: return "seq";
    case ExecMode::kConcurrent: return "con";
    case ExecMode::kVector: return "vec";
  }
  return "?";
}

std::string scenario_name(const Scenario& s) {
  if (s.workload) return workload::workload_name(*s.workload);
  return "lfk" + std::to_string(s.loop) + "-" + exec_mode_name(s.mode);
}

namespace {

sim::Program make_program(const Scenario& s) {
  if (s.workload) return workload::make_program(*s.workload);
  switch (s.mode) {
    case ExecMode::kSequential: return loops::make_sequential_ir(s.loop, s.n);
    case ExecMode::kConcurrent:
      return loops::make_concurrent_ir(s.loop, s.n, s.schedule);
    case ExecMode::kVector: return loops::make_vector_ir(s.loop, s.n);
  }
  PERTURB_CHECK_MSG(false, "unknown execution mode");
  return loops::make_sequential_ir(s.loop, s.n);
}

/// Memo key of the uninstrumented run: everything the actual trace depends
/// on — program identity (mode, loop, trip, schedule) and every machine
/// parameter.  Probe costs, plan kind, and repair mode are deliberately
/// absent: variant sweeps over those share one actual simulation.  The
/// schedule only shapes concurrent IR, so other modes collapse it.
std::string actual_key(const Scenario& s) {
  const sim::MachineConfig& m = s.setup.machine;
  std::string key = support::strf(
      "%d|%d|%lld|%d|%u|%a", static_cast<int>(s.mode), s.loop,
      static_cast<long long>(s.n),
      s.mode == ExecMode::kConcurrent ? static_cast<int>(s.schedule) : -1,
      m.num_procs, m.ticks_per_us);
  for (const sim::Cycles c :
       {m.advance_cost, m.await_check_cost, m.await_resume_cost,
        m.lock_acquire_cost, m.lock_release_cost, m.sem_acquire_cost,
        m.sem_release_cost, m.barrier_depart_cost, m.loop_spawn_cost,
        m.iter_dispatch_cost, m.self_sched_fetch_cost, m.self_sched_serialize,
        m.seq_loop_iter_cost})
    key += support::strf("|%lld", static_cast<long long>(c));
  // Synthesized cells derive their program from the workload descriptor, so
  // the key must carry every knob of it: equal keys must imply bit-identical
  // actual runs.  (The loop/n/schedule fields above are inert for workload
  // cells but harmless — at worst they split a shareable key.)
  if (s.workload) {
    key += '|';
    key += workload::workload_key(*s.workload);
  }
  return key;
}

trace::Trace simulate_actual_for(const Scenario& s) {
  const sim::Program program = make_program(s);
  return sim::simulate_actual(s.setup.machine, program,
                              scenario_name(s) + "/actual");
}

trace::Trace measured_for(const Scenario& s,
                          const instr::InstrumentationPlan& plan,
                          trace::IoArena& arena) {
  if (s.measured_path.empty()) {
    if (s.workload && workload::has_interference(*s.workload)) {
      // Interference perturbs the *measurement*, never the actual run: the
      // wrapped hook inflates probe costs inside deterministic bursts.
      const workload::InterferenceHook hook(plan, *s.workload);
      return sim::simulate(s.setup.machine, make_program(s), hook,
                           scenario_name(s) + "/measured");
    }
    return sim::simulate(s.setup.machine, make_program(s), plan,
                         scenario_name(s) + "/measured");
  }
  if (s.repair == core::RepairMode::kOff)
    return trace::load(s.measured_path, arena);
  // Repairing scenarios tolerate truncated captures the way the pipeline's
  // own file path does: salvage what the file still holds, then let
  // acquisition triage it.
  trace::SalvageReport report;
  return trace::load_salvage(s.measured_path, report, arena);
}

/// Semaphore capacities the event-based analyzer needs as external
/// knowledge.  Only synthesized workloads declare semaphores; rebuilding the
/// program just for its declarations is cheap next to simulating it.
std::map<trace::ObjectId, std::int64_t> sem_capacities_for(const Scenario& s) {
  if (!s.workload) return {};
  return workload::semaphore_capacities(make_program(s));
}

/// One grid cell, given its (possibly shared) actual trace.
LoopRun run_cell(const Scenario& s, trace::Trace actual,
                 trace::IoArena& arena) {
  const instr::InstrumentationPlan plan = make_plan(s.plan, s.setup);
  trace::Trace measured = measured_for(s, plan, arena);
  if (s.mutate_measured) s.mutate_measured(measured);
  return analyze_pair(std::move(actual), std::move(measured), plan,
                      s.setup.machine, s.repair, sem_capacities_for(s));
}

// Self-observability: grid volume, actual-run memoization effectiveness
// (hits = cells that reused another cell's simulated actual), and the static
// per-worker cell partition as a balance histogram.
const support::Counter kGridCells("grid.cells");
const support::Counter kGridMemoHits("grid.memo.hits");
const support::Counter kGridMemoMisses("grid.memo.misses");
const support::HistogramMetric kGridWorkerCells("grid.worker.cells");
// Screening effectiveness: cells answered by the model alone vs cells that
// paid the simulate+reconstruct path, and the model's observed accuracy on
// fall-through cells (|model - event-based| relative error in basis points;
// confident cells never simulate, so only fall-through cells can report it).
const support::Counter kScreenConfident("grid.screen.confident");
const support::Counter kScreenFallthrough("grid.screen.fallthrough");
const support::HistogramMetric kModelError("grid.model.error");

void record_grid_metrics(std::size_t cells, std::size_t unique,
                         const support::TaskPool& pool) {
  if (!support::Metrics::enabled()) return;
  kGridCells.add(cells);
  kGridMemoMisses.add(unique);
  kGridMemoHits.add(cells - unique);
  // parallel_for assigns worker w the block [w*n/W, (w+1)*n/W); the block
  // sizes describe the fan-out without any per-cell recording.
  for (std::size_t w = 0; w < pool.size(); ++w)
    kGridWorkerCells.observe(static_cast<std::uint64_t>(
        (w + 1) * cells / pool.size() - w * cells / pool.size()));
}

}  // namespace

LoopRun run_scenario(const Scenario& s) {
  trace::IoArena arena;
  return run_cell(s, simulate_actual_for(s), arena);
}

std::vector<LoopRun> run_grid(const std::vector<Scenario>& scenarios,
                              const GridOptions& options) {
  std::vector<LoopRun> runs(scenarios.size());
  if (scenarios.empty()) return runs;
  // Group cells by actual-run key.  The grouping runs serially so the
  // unique-key order — and hence which worker simulates which actual —
  // depends only on the scenario list, never on timing.
  std::vector<std::size_t> actual_of(scenarios.size());
  std::vector<std::size_t> owner;  ///< first scenario using each unique key
  if (options.memoize_actual) {
    std::unordered_map<std::string, std::size_t> key_index;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const auto [it, fresh] =
          key_index.try_emplace(actual_key(scenarios[i]), owner.size());
      if (fresh) owner.push_back(i);
      actual_of[i] = it->second;
    }
  }

  support::TaskPool pool(options.threads);
  std::vector<trace::IoArena> arenas(pool.size());
  record_grid_metrics(scenarios.size(),
                      options.memoize_actual ? owner.size()
                                             : scenarios.size(),
                      pool);

  // No sharing to exploit (memoization off, or every key unique): one fused
  // pass with cell-local actual runs instead of a pre-pass plus a barrier.
  if (!options.memoize_actual || owner.size() == scenarios.size()) {
    // Each cell is self-contained; worker w is the sole user of arenas[w]
    // and each result slot is written by exactly one cell.
    pool.parallel_for(scenarios.size(),
                      [&](std::size_t worker, std::size_t i) {
                        runs[i] = run_cell(scenarios[i],
                                           simulate_actual_for(scenarios[i]),
                                           arenas[worker]);
                      });
    return runs;
  }

  // Simulate each unique actual once; every cell then analyzes its own copy
  // (LoopRun owns its traces, and simulation is deterministic, so sharing
  // versus re-simulating is observationally identical).
  std::vector<trace::Trace> actuals(owner.size());
  pool.parallel_for(owner.size(), [&](std::size_t k) {
    actuals[k] = simulate_actual_for(scenarios[owner[k]]);
  });
  pool.parallel_for(scenarios.size(), [&](std::size_t worker, std::size_t i) {
    runs[i] = run_cell(scenarios[i], trace::Trace(actuals[actual_of[i]]),
                       arenas[worker]);
  });
  return runs;
}

namespace {

model::ProbeTable probe_table_for(const instr::InstrumentationPlan& plan) {
  model::ProbeTable table{};
  for (std::uint8_t k = 0; k < trace::kNumEventKinds; ++k)
    table[k] = plan.mean_cost(static_cast<trace::EventKind>(k));
  return table;
}

/// Largest probe-jitter fraction the plan's recorded categories carry; the
/// model predicts with the means, so this is pure uncertainty input.
double plan_jitter(const Scenario& s) {
  switch (s.plan) {
    case PlanKind::kStatementsOnly: return s.setup.stmt.jitter_frac;
    case PlanKind::kSyncOnly: return s.setup.sync.jitter_frac;
    case PlanKind::kFull:
      return std::max({s.setup.stmt.jitter_frac, s.setup.sync.jitter_frac,
                       s.setup.control.jitter_frac});
  }
  return 0.0;
}

}  // namespace

CellPrediction predict_scenario(const Scenario& s) {
  CellPrediction out;
  if (!s.measured_path.empty() || s.mutate_measured ||
      s.repair != core::RepairMode::kOff ||
      (s.workload && workload::has_interference(*s.workload))) {
    // The model sees program structure; a cell whose measured trace comes
    // from a file, gets mutated, needs repair, or is inflated by a
    // measurement-time interference hook is opaque to it.
    out.uncertainty = 1.0;
    out.actual.uncertainty = 1.0;
    out.measured.uncertainty = 1.0;
    out.actual.caveats.push_back(
        "cell input is not a pure simulation (file/fault/repair/interference)");
    out.measured.caveats = out.actual.caveats;
    return out;
  }
  const sim::Program program = make_program(s);
  out.actual = model::predict_program(program, s.setup.machine,
                                      model::no_probes());
  const instr::InstrumentationPlan plan = make_plan(s.plan, s.setup);
  model::ModelOptions measured_opts;
  measured_opts.probe_jitter = plan_jitter(s);
  out.measured = model::predict_program(program, s.setup.machine,
                                        probe_table_for(plan), measured_opts);
  out.uncertainty =
      std::max(out.actual.uncertainty, out.measured.uncertainty);
  return out;
}

ScreenedGrid run_grid_screened(const std::vector<Scenario>& scenarios,
                               const ScreenOptions& options) {
  ScreenedGrid grid;
  grid.cells.resize(scenarios.size());

  // Screen serially: each prediction is microseconds of arithmetic, and a
  // timing-independent partition keeps the whole sweep deterministic.
  std::vector<std::size_t> fallthrough_index;
  std::vector<Scenario> fallthrough_cells;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    ScreenedCell& cell = grid.cells[i];
    cell.prediction = predict_scenario(scenarios[i]);
    cell.screened = cell.prediction.uncertainty <= options.uncertainty_threshold;
    if (!cell.screened) {
      fallthrough_index.push_back(i);
      fallthrough_cells.push_back(scenarios[i]);
    }
  }
  grid.fallthrough = fallthrough_cells.size();
  grid.confident = scenarios.size() - grid.fallthrough;

  std::vector<LoopRun> runs = run_grid(fallthrough_cells, options.grid);
  for (std::size_t k = 0; k < runs.size(); ++k)
    grid.cells[fallthrough_index[k]].run = std::move(runs[k]);

  if (support::Metrics::enabled()) {
    kScreenConfident.add(grid.confident);
    kScreenFallthrough.add(grid.fallthrough);
    // Fall-through cells ran both paths, so they can score the model against
    // the event-based reconstruction it would have replaced.
    for (const std::size_t i : fallthrough_index) {
      const ScreenedCell& cell = grid.cells[i];
      const trace::Tick eb = cell.run.event_based.approx.total_time();
      const trace::Tick predicted = cell.prediction.actual.total;
      if (eb <= 0 || predicted <= 0) continue;
      const double rel = std::abs(static_cast<double>(predicted - eb)) /
                         static_cast<double>(eb);
      kModelError.observe(static_cast<std::uint64_t>(rel * 10000.0));
    }
  }
  return grid;
}

std::vector<LoopRun> run_grid_reference(
    const std::vector<Scenario>& scenarios) {
  std::vector<LoopRun> runs;
  runs.reserve(scenarios.size());
  trace::IoArena arena;
  const sim::NullInstrumentation null_hook;
  for (const Scenario& s : scenarios) {
    const sim::Program program = make_program(s);
    const std::string name = scenario_name(s);
    const instr::InstrumentationPlan plan = make_plan(s.plan, s.setup);

    LoopRun run;
    run.actual = sim::simulate_reference(s.setup.machine, program, null_hook,
                                         name + "/actual");
    if (s.measured_path.empty()) {
      if (s.workload && workload::has_interference(*s.workload)) {
        const workload::InterferenceHook hook(plan, *s.workload);
        run.measured = sim::simulate_reference(s.setup.machine, program, hook,
                                               name + "/measured");
      } else {
        run.measured = sim::simulate_reference(s.setup.machine, program, plan,
                                               name + "/measured");
      }
    } else {
      run.measured = measured_for(s, plan, arena);
    }
    if (s.mutate_measured) s.mutate_measured(run.measured);

    core::PipelineOptions options;
    options.overheads = overheads_for(plan, s.setup.machine);
    options.event_based.semaphore_capacity = sem_capacities_for(s);
    options.repair = s.repair;
    core::AnalysisPipeline pipeline(std::move(options));
    pipeline.add(core::AnalyzerKind::kTimeBased)
        .add(core::AnalyzerKind::kEventBased);
    auto acquired = s.repair == core::RepairMode::kOff
                        ? core::trusted_acquire(run.measured)
                        : pipeline.acquire(run.measured);
    // Run without an actual trace so the pipeline skips its (optimized)
    // quality scoring; score below through the reference comparator.
    auto result = pipeline.run(std::move(acquired), nullptr);
    PERTURB_CHECK_MSG(result.acquire.ok, result.acquire.diagnosis);

    run.tb_quality = core::assess_reference(
        result.acquire.measured, result.outputs[0].approx, run.actual);
    run.eb_quality = core::assess_reference(
        result.acquire.measured, result.outputs[1].approx, run.actual);
    run.tb_quality.degraded_input = result.acquire.degraded;
    run.eb_quality.degraded_input = result.acquire.degraded;

    run.time_based = std::move(result.outputs[0].approx);
    run.event_based = std::move(*result.outputs[1].event_stats);
    run.event_based.approx = std::move(result.outputs[1].approx);
    runs.push_back(std::move(run));
  }
  return runs;
}

}  // namespace perturb::experiments
