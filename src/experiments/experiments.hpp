// End-to-end experiment driver: the paper's measurement pipeline.
//
// For a chosen Livermore loop and instrumentation plan:
//   1. simulate the uninstrumented program         → actual trace
//   2. simulate under the instrumentation plan     → measured trace
//   3. run time-based perturbation analysis  (§3)  → time-based approximation
//   4. run event-based perturbation analysis (§4)  → event-based approximation
//   5. score both against the actual trace         → Table 1/2 ratios
//
// Analysis inputs (mean probe costs, s_wait/s_nowait) are assembled the way
// the paper's tooling obtained them: probe means from the instrumentation
// plan, synchronization overheads from empirical calibration runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/eventbased.hpp"
#include "core/overheads.hpp"
#include "core/pipeline.hpp"
#include "core/quality.hpp"
#include "core/timebased.hpp"
#include "instr/plan.hpp"
#include "sim/engine.hpp"
#include "sim/machine.hpp"

namespace perturb::experiments {

/// Experiment-wide knobs; defaults reproduce the paper-scale setup
/// (8 processors, software probes costing tens of microseconds at CE speed,
/// 5 percent probe-cost jitter).
struct Setup {
  sim::MachineConfig machine;  ///< 8 processors by default
  instr::ProbeCost stmt{175.0, 0.05};
  instr::ProbeCost sync{90.0, 0.05};
  instr::ProbeCost control{60.0, 0.05};
  std::uint64_t seed = 1991;
};

enum class PlanKind : std::uint8_t {
  kStatementsOnly,  ///< §3 instrumentation (Table 1, Figure 1)
  kFull,            ///< §5 instrumentation with sync events (Table 2)
  kSyncOnly,        ///< minimal-volume plan (ablations)
};

instr::InstrumentationPlan make_plan(PlanKind kind, const Setup& setup);

/// Builds the analysis inputs: probe means from the plan, await overheads
/// from calibration micro-runs on the machine model.
core::AnalysisOverheads overheads_for(const instr::InstrumentationPlan& plan,
                                      const sim::MachineConfig& machine);

/// Complete artifact set of one loop experiment.
struct LoopRun {
  trace::Trace actual;
  trace::Trace measured;
  trace::Trace time_based;
  core::EventBasedResult event_based;
  core::ApproximationQuality tb_quality;  ///< time-based vs actual
  core::ApproximationQuality eb_quality;  ///< event-based vs actual
};

/// Analysis tail shared by every experiment driver: runs the time-based and
/// event-based pipeline over an already-simulated (actual, measured) pair
/// and scores both approximations.  With a repair mode other than kOff the
/// measured trace is triaged and repaired before analysis.  `sem_capacity`
/// is the event-based analyzer's external semaphore knowledge (synthesized
/// contention workloads declare semaphores; the Livermore suite never does,
/// so the default empty map preserves its behavior bit for bit).
LoopRun analyze_pair(
    trace::Trace actual, trace::Trace measured,
    const instr::InstrumentationPlan& plan, const sim::MachineConfig& machine,
    core::RepairMode repair = core::RepairMode::kOff,
    const std::map<trace::ObjectId, std::int64_t>& sem_capacity = {});

/// Runs the full pipeline on an arbitrary finalized program.  With a repair
/// mode other than kOff the measured trace is triaged and repaired before
/// analysis (the simulator's output is normally clean; the path matters when
/// fault injection or degraded capture is in play).
LoopRun run_program_experiment(const sim::Program& program,
                               const Setup& setup, PlanKind plan_kind,
                               const std::string& name,
                               core::RepairMode repair = core::RepairMode::kOff);

/// Sequential-mode Livermore loop experiment (Figure 1 rows).
LoopRun run_sequential_experiment(int loop, std::int64_t n, const Setup& setup,
                                  PlanKind plan_kind = PlanKind::kStatementsOnly,
                                  core::RepairMode repair = core::RepairMode::kOff);

/// Concurrent-mode Livermore loop experiment (Tables 1 and 2 rows).
LoopRun run_concurrent_experiment(
    int loop, std::int64_t n, const Setup& setup, PlanKind plan_kind,
    sim::Schedule schedule = sim::Schedule::kCyclic,
    core::RepairMode repair = core::RepairMode::kOff);

/// Vector-mode Livermore loop experiment (§3 ran the suite in scalar, vector
/// and concurrent modes; vector instrumentation records one event per strip).
LoopRun run_vector_experiment(int loop, std::int64_t n, const Setup& setup,
                              PlanKind plan_kind = PlanKind::kStatementsOnly,
                              core::RepairMode repair = core::RepairMode::kOff);

}  // namespace perturb::experiments
