// Causal what-if engine: virtual-speedup experiments over recovered traces.
//
// The paper recovers the approximated true execution from a perturbed event
// trace; this module answers the next question — *what would have happened
// if this site were faster?* — without re-running the program or the
// reconstruction.  A `WhatIfPlan{site, pct}` virtually speeds up one
// interned region (statement, loop body, lock-guarded critical section,
// sync/probe cost) by `pct` percent, and the engine recomputes the
// resulting makespan, critical-path length, and per-processor dependency
// waiting on the recovered execution.
//
// Cost model.  Every event i owns a local cost
//     d_i = t0[i] - max over predecessors p of t0[p]        (0-max if none)
// where the predecessors are the same-processor chain plus the
// cross-processor dependencies the critical-path analysis uses (the advance
// an awaitE waited for, the release a lock acquisition waited for, every
// arrival a barrier departure waited for, the spawning LoopBegin of a
// processor's first event in a loop episode).  Re-evaluating
//     t'[i] = max over predecessors p of t'[p] + d'_i
// with unscaled costs reproduces the recovered times exactly; scaling the
// costs of one site's member events (d' = d - (d * pct) / 100, truncating
// integer division applied per event) yields the virtual execution.
//
// Perf core.  The dependency DAG is built ONCE per trace (`WhatIfDag`),
// compressed to *anchors* — events that carry cross dependencies, feed
// them, or bound a processor's chain.  Runs of plain chain-only events
// between anchors collapse into gap sums, so an experiment evaluates by
// forward delta propagation over the anchor graph from the perturbed site
// only: a min-heap frontier pops anchors in trace (= topological) order and
// pushes successors only when a time actually changed.  Small speedups
// touch a small cone.  `whatif_reference` rewrites every event's cost and
// re-simulates the full trace — the equivalence oracle: both paths are
// bit-identical by construction (same arithmetic, same rules).
//
// Sweeps batch further: run_many evaluates distinct plans in lane blocks —
// one dense forward pass over the anchor arrays computes kLaneWidth
// experiments at once (lane-minor time rows), so the chain and
// cross-predecessor loads are paid once per anchor, not once per
// experiment.  Blocks fan out across a support::TaskPool with per-worker
// scratch arenas and results are memoized per (site, pct) like
// experiments::run_grid memoizes actual runs; results are bit-identical at
// any thread count and identical between the sparse and batched paths.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/sites.hpp"
#include "support/parallel.hpp"
#include "trace/index.hpp"
#include "trace/trace.hpp"

namespace perturb::whatif {

using analysis::SiteId;
using analysis::SiteRegistry;
using trace::Tick;

/// One virtual-speedup experiment: scale every member event of `site` by
/// `pct` percent (pct in (0, 100]; 100 removes the site's cost entirely).
struct WhatIfPlan {
  SiteId site = 0;
  std::int64_t pct = 0;

  friend bool operator==(const WhatIfPlan&, const WhatIfPlan&) = default;
};

/// Outcome of one experiment on the virtual execution.
struct WhatIfResult {
  Tick makespan = 0;       ///< span between first and last per-proc events
  Tick critical_path = 0;  ///< length of the binding dependency chain
  /// Per-processor dependency waiting: time each processor's chain sat
  /// stalled on a cross dependency (the DAG-model analogue of the waiting
  /// analysis, exact under re-evaluation).
  std::vector<Tick> waiting;

  friend bool operator==(const WhatIfResult&, const WhatIfResult&) = default;
};

/// Syntactic half of a `--whatif=<site>:<pct>` spec: the site name is not
/// resolved yet (that needs a trace's registry).  pct has been validated to
/// be an integer in (0, 100].
struct WhatIfSpec {
  std::string site;
  std::int64_t pct = 0;
};

/// Parses "<site>:<pct>".  Returns std::nullopt and sets `error` to a
/// one-line message when the spec is malformed (missing colon, empty site,
/// non-integer pct, pct outside (0, 100]).
std::optional<WhatIfSpec> parse_whatif_spec(std::string_view spec,
                                            std::string* error);

/// Member events of one site, ascending trace indices.  The single source
/// of site-membership semantics, shared by the DAG builder and the
/// reference oracle:
///   stmt#id    every kStmtExit carrying that statement id (the exit owns
///              the statement's duration in the cost model),
///   loop#obj   every event strictly inside a loop episode (begin, end] of
///              that loop object (all processors; a truncated episode runs
///              to the end of the trace),
///   lock#obj   every event strictly after a kLockAcquire of that object
///              through the matching kLockRelease inclusive, per processor
///              (the acquire itself is excluded so its waiting time is not
///              scaled away),
///   sync#obj   every kAdvance / kAwaitBegin / kAwaitEnd on that object
///              (scales synchronization processing cost, not waiting),
///   sem#obj    every kSemAcquire / kSemRelease on that object,
///   barrier#obj every kBarrierArrive / kBarrierDepart on that object.
std::vector<std::size_t> site_member_events(const trace::TraceIndex& index,
                                            const SiteRegistry& sites,
                                            SiteId site);

/// The per-trace dependency DAG, anchor-compressed, with per-site member
/// tables and baseline metrics.  Built once; immutable afterwards.  Holds
/// references to the index and registry: both must outlive the DAG.
class WhatIfDag {
 public:
  static constexpr std::uint32_t knone = static_cast<std::uint32_t>(-1);

  WhatIfDag(const trace::TraceIndex& index, const SiteRegistry& sites);

  const trace::TraceIndex& index() const noexcept { return *index_; }
  const SiteRegistry& sites() const noexcept { return *sites_; }

  std::size_t num_anchors() const noexcept { return event_of_.size(); }
  std::size_t num_edges() const noexcept { return edges_; }

  Tick baseline_makespan() const noexcept { return baseline_.makespan; }
  Tick baseline_critical_path() const noexcept {
    return baseline_.critical_path;
  }
  const WhatIfResult& baseline() const noexcept { return baseline_; }

 private:
  friend class WhatIfEngine;
  friend WhatIfResult whatif_reference(const trace::TraceIndex&,
                                       const SiteRegistry&, const WhatIfPlan&);

  struct SiteMembers {
    /// Member anchors (slots): their own cost is scaled.
    std::vector<std::uint32_t> anchors;
    /// Plain members folded into the gap before their owning anchor:
    /// (owner slot, local cost d).
    std::vector<std::pair<std::uint32_t, Tick>> plain;
  };

  /// Critical-path walk over the anchor graph under an experiment's time
  /// view: `time_of(slot)` is the anchor's (possibly re-evaluated) time,
  /// `gap_removal(slot)` the cost removed from the plain run before it.
  /// The binding predecessor is the latest one; ties prefer the
  /// same-processor chain, and among cross predecessors the earliest in
  /// trace order.  Returns the path length in ticks.
  template <typename TimeFn, typename GapFn>
  Tick walk_critical_path(TimeFn&& time_of, GapFn&& gap_removal) const;

  const trace::TraceIndex* index_;
  const SiteRegistry* sites_;

  // Per anchor, slot order == ascending trace index (a topological order).
  std::vector<std::size_t> event_of_;   ///< slot -> trace index
  std::vector<std::uint32_t> chain_;    ///< previous same-proc anchor, knone
  std::vector<Tick> gap_;               ///< plain-run cost between chain_ and
                                        ///< this anchor (telescoped t0 sum)
  std::vector<Tick> d_;                 ///< the anchor's own local cost
  std::vector<Tick> t0_;                ///< baseline (recovered) time
  std::vector<Tick> w0_;                ///< baseline waiting at this anchor
  std::vector<trace::ProcId> proc_;
  std::vector<std::uint32_t> pred_off_;  ///< cross preds, flat [off, off+1)
  std::vector<std::uint32_t> pred_;
  std::vector<std::uint32_t> succ_off_;  ///< dependents, flat
  std::vector<std::uint32_t> succ_;

  std::vector<std::uint32_t> first_slot_;  ///< per proc, knone if no events
  std::vector<std::uint32_t> last_slot_;

  std::vector<SiteMembers> members_;  ///< by SiteId
  std::size_t edges_ = 0;
  WhatIfResult baseline_;
};

/// Ranked outcome of a one-site experiment within a sweep.
struct SiteImpact {
  SiteId site = 0;
  Tick savings = 0;  ///< baseline makespan - virtual makespan
  WhatIfResult result;
};

/// Runs experiments against one WhatIfDag by forward delta propagation,
/// memoizing per (site, pct).  Not thread-safe across calls: use one engine
/// per thread; `run_many` parallelizes internally (bit-identical results at
/// any pool size).  The DAG must outlive the engine.
class WhatIfEngine {
 public:
  explicit WhatIfEngine(const WhatIfDag& dag);
  ~WhatIfEngine();

  /// One experiment.  Throws std::invalid_argument for a plan with an
  /// out-of-range site or pct outside (0, 100].
  const WhatIfResult& run(const WhatIfPlan& plan);

  /// A batch of experiments, memo-deduplicated then fanned out across
  /// `pool` with per-worker scratch arenas.  results[i] corresponds to
  /// plans[i].  Distinct plans evaluate in lane-batched blocks: one dense
  /// forward pass over the anchor arrays computes up to kLaneWidth
  /// experiments at once (lane-minor time rows), amortizing the chain and
  /// cross-predecessor traversal that dominates a single sparse evaluation.
  /// Bit-identical to run() — both paths share the same arithmetic.
  std::vector<WhatIfResult> run_many(const std::vector<WhatIfPlan>& plans,
                                     support::TaskPool& pool);

  /// Experiments evaluated together by one dense sweep block in run_many.
  static constexpr std::size_t kLaneWidth = 8;

  /// Sweeps every site at the same speedup and returns the `top_n` regions
  /// by makespan savings (ties broken toward the smaller site id).
  std::vector<SiteImpact> rank(std::int64_t pct, support::TaskPool& pool,
                               std::size_t top_n);

  const WhatIfDag& dag() const noexcept { return *dag_; }

 private:
  struct Scratch;
  struct BatchScratch;

  WhatIfResult evaluate(const WhatIfPlan& plan, Scratch& scratch) const;
  /// Dense lane-batched evaluation: `lanes` (<= kLaneWidth) plans in one
  /// forward pass over every anchor, writing out[0..lanes).
  void evaluate_block(const WhatIfPlan* plans, std::size_t lanes,
                      BatchScratch& scratch, WhatIfResult* out) const;
  void validate(const WhatIfPlan& plan) const;

  const WhatIfDag* dag_;
  std::vector<Scratch> serial_scratch_;  ///< lazily sized, for run()
  std::map<std::pair<SiteId, std::int64_t>, WhatIfResult> memo_;
};

/// The equivalence oracle: rewrites every event's local cost (scaling the
/// plan's site members) and re-simulates the full trace event by event —
/// no anchor compression, no delta propagation, no memoization.  Slow by
/// design; bit-identical to WhatIfEngine::run on every trace.
WhatIfResult whatif_reference(const trace::TraceIndex& index,
                              const SiteRegistry& sites,
                              const WhatIfPlan& plan);

/// Renders one experiment next to the baseline.
std::string render_whatif(const WhatIfDag& dag, const WhatIfPlan& plan,
                          const WhatIfResult& result);

/// Renders a ranking table (site, savings, virtual makespan, % of
/// baseline) for `rank`'s output.
std::string render_whatif_ranking(const WhatIfDag& dag, std::int64_t pct,
                                  const std::vector<SiteImpact>& ranking);

}  // namespace perturb::whatif
