#include "whatif/whatif.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "support/metrics.hpp"
#include "support/text.hpp"
#include "trace/event.hpp"

namespace perturb::whatif {

namespace {

using trace::Event;
using trace::EventKind;
using trace::ObjectId;
using trace::ProcId;
using trace::SyncKey;
using trace::Trace;
using trace::TraceIndex;

constexpr std::size_t kNone = TraceIndex::npos;

const support::Counter& experiments_counter() {
  static const support::Counter c("whatif.experiments");
  return c;
}
const support::Counter& frontier_counter() {
  static const support::Counter c("whatif.frontier.events");
  return c;
}
const support::Counter& memo_counter() {
  static const support::Counter c("whatif.memo.hits");
  return c;
}
const support::Gauge& edges_gauge() {
  static const support::Gauge g("whatif.dag.edges");
  return g;
}

/// Enumerates event i's cross-processor dependencies, mirroring the
/// critical-path predecessor rules: the advance an awaitE waited for, the
/// hand-off release of a lock acquisition, every episode arrival a barrier
/// departure waited for (all of them, since re-evaluation can reorder which
/// one is latest), and otherwise the spawning LoopBegin (fork dependency).
/// Emission order is deterministic (arrivals in trace order), which both
/// evaluation paths rely on for identical tie-breaks.
template <typename Fn>
void for_each_cross_pred(const TraceIndex& idx, std::size_t i, Fn&& fn) {
  const Trace& t = idx.trace();
  const Event& e = t[i];
  switch (e.kind) {
    case EventKind::kAwaitEnd: {
      const std::size_t adv =
          idx.last_advance_before(SyncKey{e.object, e.payload}, i);
      if (adv != kNone) {
        fn(adv);
        return;
      }
      break;
    }
    case EventKind::kLockAcquire: {
      const std::size_t dep = idx.lock_dep(i);
      if (dep != kNone) {
        fn(dep);
        return;
      }
      break;
    }
    case EventKind::kBarrierDepart: {
      const auto* ep = idx.barrier_episode(e.object, e.payload);
      if (ep != nullptr) {
        bool any = false;
        for (const std::size_t a : ep->arrivals) {
          if (a >= i) break;
          fn(a);
          any = true;
        }
        if (any) return;
      }
      break;
    }
    default:
      break;
  }
  const std::size_t fork = idx.fork_dep(i);
  if (fork != kNone) fn(fork);
}

/// Events whose times other events' evaluations read: they must keep an
/// individually tracked time (be anchors) even without cross deps of their
/// own.
bool is_dependency_source(EventKind kind) {
  return kind == EventKind::kAdvance || kind == EventKind::kLockRelease ||
         kind == EventKind::kBarrierArrive || kind == EventKind::kLoopBegin;
}

/// Cost removed from `d` by a `pct`-percent virtual speedup.  Truncating
/// integer division, applied per event — the one arithmetic both the engine
/// and the reference must share for bit-identity.
Tick removal_of(Tick d, std::int64_t pct) { return (d * pct) / 100; }

}  // namespace

std::optional<WhatIfSpec> parse_whatif_spec(std::string_view spec,
                                            std::string* error) {
  const auto fail = [&](std::string msg) -> std::optional<WhatIfSpec> {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos)
    return fail(support::strf("--whatif expects <site>:<pct>, got '%.*s'",
                              static_cast<int>(spec.size()), spec.data()));
  const std::string_view site = spec.substr(0, colon);
  const std::string_view pct = spec.substr(colon + 1);
  if (site.empty())
    return fail(support::strf("--whatif site name is empty in '%.*s'",
                              static_cast<int>(spec.size()), spec.data()));
  if (pct.empty())
    return fail(support::strf("--whatif pct is empty in '%.*s'",
                              static_cast<int>(spec.size()), spec.data()));
  std::int64_t value = 0;
  for (const char c : pct) {
    if (c < '0' || c > '9')
      return fail(
          support::strf("--whatif pct must be an integer, got '%.*s'",
                        static_cast<int>(pct.size()), pct.data()));
    value = value * 10 + (c - '0');
    if (value > 1000) break;  // avoid overflow on absurd digit strings
  }
  if (value < 1 || value > 100)
    return fail(support::strf("--whatif pct must be in (0,100], got '%.*s'",
                              static_cast<int>(pct.size()), pct.data()));
  return WhatIfSpec{std::string(site), value};
}

std::vector<std::size_t> site_member_events(const TraceIndex& idx,
                                            const SiteRegistry& sites,
                                            SiteId site) {
  const Trace& t = idx.trace();
  const analysis::Site s = sites.site(site);
  std::vector<std::size_t> members;
  switch (s.kind) {
    case analysis::SiteKind::kStatement:
      for (std::size_t i = 0; i < t.size(); ++i)
        if (t[i].kind == EventKind::kStmtExit && t[i].id == s.id)
          members.push_back(i);
      break;
    case analysis::SiteKind::kLoop:
      for (const auto& span : idx.loops()) {
        if (span.object != s.id || span.begin_index == kNone) continue;
        const std::size_t last =
            span.end_index == kNone ? t.size() - 1 : span.end_index;
        for (std::size_t i = span.begin_index + 1; i <= last; ++i)
          members.push_back(i);
      }
      std::sort(members.begin(), members.end());
      members.erase(std::unique(members.begin(), members.end()),
                    members.end());
      break;
    case analysis::SiteKind::kLock:
      for (std::size_t p = 0; p < idx.num_procs(); ++p) {
        bool holding = false;
        for (const std::size_t i : idx.events_of(static_cast<ProcId>(p))) {
          if (holding) members.push_back(i);
          if (t[i].object == s.id) {
            if (t[i].kind == EventKind::kLockAcquire) holding = true;
            if (t[i].kind == EventKind::kLockRelease) holding = false;
          }
        }
      }
      std::sort(members.begin(), members.end());
      break;
    case analysis::SiteKind::kSync:
      for (std::size_t i = 0; i < t.size(); ++i) {
        const EventKind k = t[i].kind;
        if ((k == EventKind::kAdvance || k == EventKind::kAwaitBegin ||
             k == EventKind::kAwaitEnd) &&
            t[i].object == s.id)
          members.push_back(i);
      }
      break;
    case analysis::SiteKind::kSemaphore:
      for (std::size_t i = 0; i < t.size(); ++i) {
        const EventKind k = t[i].kind;
        if ((k == EventKind::kSemAcquire || k == EventKind::kSemRelease) &&
            t[i].object == s.id)
          members.push_back(i);
      }
      break;
    case analysis::SiteKind::kBarrier:
      for (std::size_t i = 0; i < t.size(); ++i) {
        const EventKind k = t[i].kind;
        if ((k == EventKind::kBarrierArrive ||
             k == EventKind::kBarrierDepart) &&
            t[i].object == s.id)
          members.push_back(i);
      }
      break;
  }
  return members;
}

WhatIfDag::WhatIfDag(const TraceIndex& idx, const SiteRegistry& sites)
    : index_(&idx), sites_(&sites) {
  const Trace& t = idx.trace();
  const std::size_t n = t.size();

  // -- classify anchors ----------------------------------------------------
  // Anchors: events with cross dependencies, dependency sources, and each
  // processor's chain endpoints.  Everything else is a plain chain-only
  // event that folds into a gap.
  std::vector<std::size_t> cross_off(n + 1, 0);
  std::vector<std::size_t> cross_flat;
  std::vector<char> anchor(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    cross_off[i] = cross_flat.size();
    for_each_cross_pred(idx, i,
                        [&](std::size_t p) { cross_flat.push_back(p); });
    if (cross_flat.size() > cross_off[i] || is_dependency_source(t[i].kind))
      anchor[i] = 1;
  }
  cross_off[n] = cross_flat.size();
  for (std::size_t p = 0; p < idx.num_procs(); ++p) {
    const auto& evs = idx.events_of(static_cast<ProcId>(p));
    if (evs.empty()) continue;
    anchor[evs.front()] = 1;
    anchor[evs.back()] = 1;
  }

  // -- per-event local costs ----------------------------------------------
  // d_i = t0[i] - max over predecessors of t0; baseline re-evaluation then
  // reproduces the recovered times exactly (telescoping).
  std::vector<Tick> event_d(n, 0);
  std::vector<char> has_pred(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    Tick base = 0;
    bool any = false;
    const std::size_t prev = idx.prev_on_proc(i);
    if (prev != kNone) {
      base = t[prev].time;
      any = true;
    }
    for (std::size_t c = cross_off[i]; c < cross_off[i + 1]; ++c) {
      const Tick pt = t[cross_flat[c]].time;
      if (!any || pt > base) base = pt;
      any = true;
    }
    event_d[i] = t[i].time - (any ? base : 0);
    has_pred[i] = any ? 1 : 0;
  }

  // -- anchor slots (trace order == topological order) ---------------------
  std::vector<std::uint32_t> slot_of(n, knone);
  for (std::size_t i = 0; i < n; ++i) {
    if (!anchor[i]) continue;
    slot_of[i] = static_cast<std::uint32_t>(event_of_.size());
    event_of_.push_back(i);
  }
  const std::size_t a_n = event_of_.size();
  chain_.assign(a_n, knone);
  gap_.assign(a_n, 0);
  d_.assign(a_n, 0);
  t0_.assign(a_n, 0);
  w0_.assign(a_n, 0);
  proc_.assign(a_n, 0);
  for (std::size_t s = 0; s < a_n; ++s) {
    const std::size_t i = event_of_[s];
    d_[s] = event_d[i];
    t0_[s] = t[i].time;
    proc_[s] = t[i].proc;
  }

  // Chains and gaps: walk each processor's event list; the gap before an
  // anchor telescopes to t0[immediate predecessor] - t0[previous anchor].
  std::vector<std::uint32_t> owner_of(n, knone);
  for (std::size_t p = 0; p < idx.num_procs(); ++p) {
    const auto& evs = idx.events_of(static_cast<ProcId>(p));
    std::uint32_t prev_anchor = knone;
    std::size_t prev_event = kNone;
    for (const std::size_t i : evs) {
      if (anchor[i]) {
        const std::uint32_t s = slot_of[i];
        chain_[s] = prev_anchor;
        gap_[s] = (prev_anchor != knone && prev_event != event_of_[prev_anchor])
                      ? t[prev_event].time - t0_[prev_anchor]
                      : 0;
        prev_anchor = s;
      } else {
        // Owner = the next anchor on this processor; filled below in the
        // reverse pass.
      }
      prev_event = i;
    }
    // Reverse pass: each plain event's owner is the next anchor downstream.
    std::uint32_t next_anchor = knone;
    for (std::size_t k = evs.size(); k-- > 0;) {
      const std::size_t i = evs[k];
      if (anchor[i])
        next_anchor = slot_of[i];
      else
        owner_of[i] = next_anchor;
    }
  }

  // -- cross predecessor / successor tables --------------------------------
  pred_off_.assign(a_n + 1, 0);
  for (std::size_t s = 0; s < a_n; ++s) {
    const std::size_t i = event_of_[s];
    pred_off_[s + 1] =
        pred_off_[s] +
        static_cast<std::uint32_t>(cross_off[i + 1] - cross_off[i]);
  }
  pred_.assign(pred_off_[a_n], knone);
  for (std::size_t s = 0; s < a_n; ++s) {
    const std::size_t i = event_of_[s];
    std::uint32_t out = pred_off_[s];
    for (std::size_t c = cross_off[i]; c < cross_off[i + 1]; ++c)
      pred_[out++] = slot_of[cross_flat[c]];
  }
  std::vector<std::uint32_t> succ_count(a_n, 0);
  for (std::size_t s = 0; s < a_n; ++s) {
    if (chain_[s] != knone) ++succ_count[chain_[s]];
    for (std::uint32_t c = pred_off_[s]; c < pred_off_[s + 1]; ++c)
      ++succ_count[pred_[c]];
  }
  succ_off_.assign(a_n + 1, 0);
  for (std::size_t s = 0; s < a_n; ++s)
    succ_off_[s + 1] = succ_off_[s] + succ_count[s];
  succ_.assign(succ_off_[a_n], knone);
  std::vector<std::uint32_t> fill(succ_off_.begin(), succ_off_.end() - 1);
  for (std::size_t s = 0; s < a_n; ++s) {
    const std::uint32_t me = static_cast<std::uint32_t>(s);
    if (chain_[s] != knone) succ_[fill[chain_[s]]++] = me;
    for (std::uint32_t c = pred_off_[s]; c < pred_off_[s + 1]; ++c)
      succ_[fill[pred_[c]]++] = me;
  }
  edges_ = succ_.size();

  // -- baseline waiting ----------------------------------------------------
  // w = (t0 - d) - chain candidate: how long the chain stalled on a cross
  // dependency before this anchor.  Plain events wait 0 by construction.
  for (std::size_t s = 0; s < a_n; ++s) {
    if (chain_[s] == knone || !has_pred[event_of_[s]]) continue;
    w0_[s] = (t0_[s] - d_[s]) - (t0_[chain_[s]] + gap_[s]);
  }

  // -- per-processor endpoints and baseline metrics ------------------------
  first_slot_.assign(idx.num_procs(), knone);
  last_slot_.assign(idx.num_procs(), knone);
  for (std::size_t p = 0; p < idx.num_procs(); ++p) {
    const auto& evs = idx.events_of(static_cast<ProcId>(p));
    if (evs.empty()) continue;
    first_slot_[p] = slot_of[evs.front()];
    last_slot_[p] = slot_of[evs.back()];
  }
  Tick lo = 0, hi = 0;
  bool seen = false;
  for (std::size_t p = 0; p < first_slot_.size(); ++p) {
    if (first_slot_[p] == knone) continue;
    const Tick f = t0_[first_slot_[p]];
    const Tick l = t0_[last_slot_[p]];
    if (!seen || f < lo) lo = f;
    if (!seen || l > hi) hi = l;
    seen = true;
  }
  baseline_.makespan = seen ? hi - lo : 0;
  baseline_.waiting.assign(t.info().num_procs, 0);
  for (std::size_t s = 0; s < a_n; ++s)
    if (proc_[s] < baseline_.waiting.size())
      baseline_.waiting[proc_[s]] += w0_[s];
  baseline_.critical_path = walk_critical_path(
      [&](std::uint32_t s) { return t0_[s]; },
      [](std::uint32_t) -> Tick { return 0; });

  // -- site membership -----------------------------------------------------
  members_.resize(sites.size());
  for (SiteId site = 0; site < sites.size(); ++site) {
    SiteMembers& m = members_[static_cast<std::size_t>(site)];
    for (const std::size_t i : site_member_events(idx, sites, site)) {
      if (slot_of[i] != knone)
        m.anchors.push_back(slot_of[i]);
      else if (owner_of[i] != knone)
        m.plain.emplace_back(owner_of[i], event_d[i]);
    }
  }

  edges_gauge().record_max(static_cast<std::int64_t>(edges_));
}

template <typename TimeFn, typename GapFn>
Tick WhatIfDag::walk_critical_path(TimeFn&& time_of,
                                   GapFn&& gap_removal) const {
  // End anchor: the latest per-processor chain endpoint; ties go to the
  // larger trace index (mirrors critical_path's argmax scan).
  std::uint32_t end = knone;
  for (std::size_t p = 0; p < last_slot_.size(); ++p) {
    const std::uint32_t s = last_slot_[p];
    if (s == knone) continue;
    if (end == knone || time_of(s) > time_of(end) ||
        (time_of(s) == time_of(end) && event_of_[s] > event_of_[end]))
      end = s;
  }
  if (end == knone) return 0;

  std::uint32_t cur = end;
  while (true) {
    const std::uint32_t q = chain_[cur];
    bool has_chain = q != knone;
    Tick chain_t = 0;
    if (has_chain) chain_t = time_of(q) + gap_[cur] - gap_removal(cur);
    std::uint32_t best = knone;
    Tick best_t = 0;
    for (std::uint32_t c = pred_off_[cur]; c < pred_off_[cur + 1]; ++c) {
      const Tick pt = time_of(pred_[c]);
      if (best == knone || pt > best_t) {
        best = pred_[c];
        best_t = pt;
      }
    }
    if (has_chain && (best == knone || chain_t >= best_t))
      cur = q;
    else if (best != knone)
      cur = best;
    else
      break;
  }
  return time_of(end) - time_of(cur);
}

struct WhatIfEngine::Scratch {
  std::vector<Tick> time, gapdel, removal, wait;
  std::vector<std::uint32_t> time_ep, gapdel_ep, removal_ep, queued_ep;
  std::vector<std::uint32_t> heap;
  std::uint32_t epoch = 0;

  void ensure(std::size_t anchors, std::size_t procs) {
    if (time.size() != anchors) {
      time.assign(anchors, 0);
      gapdel.assign(anchors, 0);
      removal.assign(anchors, 0);
      time_ep.assign(anchors, 0);
      gapdel_ep.assign(anchors, 0);
      removal_ep.assign(anchors, 0);
      queued_ep.assign(anchors, 0);
      epoch = 0;
    }
    wait.assign(procs, 0);
  }
};

/// Scratch for one dense sweep block: lane-minor rows (slot s, lane l at
/// index s * kLaneWidth + l), so the per-anchor chain and predecessor loads
/// are shared by all lanes of a cache line.  The removal and gapdel arrays
/// hold the all-zero invariant between blocks — evaluate_block re-zeroes
/// exactly the member entries it seeded, never the whole arena.
struct WhatIfEngine::BatchScratch {
  std::vector<Tick> time, removal, gapdel, wait;

  void ensure(std::size_t anchors, std::size_t procs) {
    if (time.size() != anchors * kLaneWidth) {
      time.assign(anchors * kLaneWidth, 0);
      removal.assign(anchors * kLaneWidth, 0);
      gapdel.assign(anchors * kLaneWidth, 0);
    }
    wait.assign(procs * kLaneWidth, 0);
  }
};

WhatIfEngine::WhatIfEngine(const WhatIfDag& dag) : dag_(&dag) {}
WhatIfEngine::~WhatIfEngine() = default;

void WhatIfEngine::evaluate_block(const WhatIfPlan* plans, std::size_t lanes,
                                  BatchScratch& sc, WhatIfResult* out) const {
  const WhatIfDag& g = *dag_;
  constexpr std::size_t kW = kLaneWidth;
  const std::size_t anchors = g.num_anchors();
  const std::size_t procs = g.baseline_.waiting.size();
  sc.ensure(anchors, procs);

  // Seed every lane's removals: member anchors scale their own cost, plain
  // members fold into the gap before their owning anchor — the same
  // arithmetic the sparse path applies, just written into lane columns.
  for (std::size_t l = 0; l < lanes; ++l) {
    const WhatIfDag::SiteMembers& m =
        g.members_[static_cast<std::size_t>(plans[l].site)];
    for (const auto& [owner, d] : m.plain)
      sc.gapdel[owner * kW + l] += removal_of(d, plans[l].pct);
    for (const std::uint32_t s : m.anchors)
      sc.removal[s * kW + l] = removal_of(g.d_[s], plans[l].pct);
  }

  // One dense forward pass in slot (= topological) order.  Anchors the
  // experiment does not touch re-evaluate to their baseline times exactly
  // (telescoping), so no frontier bookkeeping is needed — each anchor's
  // shared fields are loaded once and applied row-wise to every lane (the
  // lane loops are branch-free over contiguous rows, so they vectorize).
  // All kW columns are computed even on a partial block: unseeded columns
  // have zero removals and just reproduce the baseline, and ensure() /
  // the end-of-block re-zeroing keep their state well defined.
  for (std::size_t s = 0; s < anchors; ++s) {
    const std::uint32_t q = g.chain_[s];
    const Tick gap = g.gap_[s];
    const Tick d0 = g.d_[s];
    const Tick w0 = g.w0_[s];
    const std::uint32_t p0 = g.pred_off_[s];
    const std::uint32_t p1 = g.pred_off_[s + 1];
    const trace::ProcId proc = g.proc_[s];
    Tick* row = &sc.time[s * kW];
    const Tick* rem = &sc.removal[s * kW];
    const Tick* gde = &sc.gapdel[s * kW];
    Tick base[kW];
    if (q != WhatIfDag::knone) {
      Tick chain_t[kW];
      const Tick* qrow = &sc.time[q * kW];
      for (std::size_t l = 0; l < kW; ++l) {
        chain_t[l] = qrow[l] + gap - gde[l];
        base[l] = chain_t[l];
      }
      for (std::uint32_t c = p0; c < p1; ++c) {
        const Tick* prow = &sc.time[g.pred_[c] * kW];
        for (std::size_t l = 0; l < kW; ++l)
          if (prow[l] > base[l]) base[l] = prow[l];
      }
      for (std::size_t l = 0; l < kW; ++l) row[l] = base[l] + d0 - rem[l];
      if (proc < procs) {
        Tick* wrow = &sc.wait[proc * kW];
        for (std::size_t l = 0; l < kW; ++l)
          wrow[l] += (base[l] - chain_t[l]) - w0;
      }
    } else if (p1 > p0) {
      const Tick* first = &sc.time[g.pred_[p0] * kW];
      for (std::size_t l = 0; l < kW; ++l) base[l] = first[l];
      for (std::uint32_t c = p0 + 1; c < p1; ++c) {
        const Tick* prow = &sc.time[g.pred_[c] * kW];
        for (std::size_t l = 0; l < kW; ++l)
          if (prow[l] > base[l]) base[l] = prow[l];
      }
      // No chain: the anchor waits on nothing the model charges (w == 0,
      // and w0 is 0 for chainless anchors by construction).
      for (std::size_t l = 0; l < kW; ++l) row[l] = base[l] + d0 - rem[l];
    } else {
      for (std::size_t l = 0; l < kW; ++l) row[l] = d0 - rem[l];
    }
  }
  frontier_counter().add(anchors * lanes);

  for (std::size_t l = 0; l < lanes; ++l) {
    WhatIfResult& r = out[l];
    Tick lo = 0, hi = 0;
    bool seen = false;
    for (std::size_t p = 0; p < g.first_slot_.size(); ++p) {
      if (g.first_slot_[p] == WhatIfDag::knone) continue;
      const Tick f = sc.time[g.first_slot_[p] * kW + l];
      const Tick t = sc.time[g.last_slot_[p] * kW + l];
      if (!seen || f < lo) lo = f;
      if (!seen || t > hi) hi = t;
      seen = true;
    }
    r.makespan = seen ? hi - lo : 0;
    r.waiting.resize(procs);
    for (std::size_t p = 0; p < procs; ++p)
      r.waiting[p] = g.baseline_.waiting[p] + sc.wait[p * kW + l];
    r.critical_path = g.walk_critical_path(
        [&](std::uint32_t s) { return sc.time[s * kW + l]; },
        [&](std::uint32_t s) { return sc.gapdel[s * kW + l]; });
    experiments_counter().add();
  }

  // Restore the all-zero invariant for the next block on this scratch.
  for (std::size_t l = 0; l < lanes; ++l) {
    const WhatIfDag::SiteMembers& m =
        g.members_[static_cast<std::size_t>(plans[l].site)];
    for (const auto& [owner, d] : m.plain) sc.gapdel[owner * kW + l] = 0;
    for (const std::uint32_t s : m.anchors) sc.removal[s * kW + l] = 0;
  }
}

void WhatIfEngine::validate(const WhatIfPlan& plan) const {
  if (plan.site >= dag_->sites().size())
    throw std::invalid_argument(
        support::strf("what-if plan names unknown site id %u", plan.site));
  if (plan.pct < 1 || plan.pct > 100)
    throw std::invalid_argument(
        support::strf("what-if pct must be in (0,100], got %lld",
                      static_cast<long long>(plan.pct)));
}

WhatIfResult WhatIfEngine::evaluate(const WhatIfPlan& plan,
                                    Scratch& sc) const {
  const WhatIfDag& g = *dag_;
  const std::size_t procs = g.baseline_.waiting.size();
  sc.ensure(g.num_anchors(), procs);
  const std::uint32_t ep = ++sc.epoch;
  sc.heap.clear();

  const auto push = [&](std::uint32_t s) {
    if (sc.queued_ep[s] == ep) return;
    sc.queued_ep[s] = ep;
    sc.heap.push_back(s);
    std::push_heap(sc.heap.begin(), sc.heap.end(),
                   std::greater<std::uint32_t>());
  };
  const auto time_of = [&](std::uint32_t s) {
    return sc.time_ep[s] == ep ? sc.time[s] : g.t0_[s];
  };
  const auto gap_removal = [&](std::uint32_t s) -> Tick {
    return sc.gapdel_ep[s] == ep ? sc.gapdel[s] : 0;
  };

  // Seed: member anchors scale their own cost; plain members fold their
  // removals into the gap before their owning anchor.  Zero removals change
  // nothing and are skipped, keeping the frontier cone tight.
  const WhatIfDag::SiteMembers& m =
      g.members_[static_cast<std::size_t>(plan.site)];
  for (const auto& [owner, d] : m.plain) {
    const Tick r = removal_of(d, plan.pct);
    if (r == 0) continue;
    if (sc.gapdel_ep[owner] != ep) {
      sc.gapdel_ep[owner] = ep;
      sc.gapdel[owner] = 0;
    }
    sc.gapdel[owner] += r;
    push(owner);
  }
  for (const std::uint32_t s : m.anchors) {
    const Tick r = removal_of(g.d_[s], plan.pct);
    if (r == 0) continue;
    sc.removal_ep[s] = ep;
    sc.removal[s] = r;
    push(s);
  }

  // Forward delta propagation: anchors pop in ascending slot (= trace =
  // topological) order, so every predecessor is final when read.
  // Successors are pushed only when a time actually changed.
  std::uint64_t evaluated = 0;
  while (!sc.heap.empty()) {
    std::pop_heap(sc.heap.begin(), sc.heap.end(),
                  std::greater<std::uint32_t>());
    const std::uint32_t s = sc.heap.back();
    sc.heap.pop_back();
    ++evaluated;

    const std::uint32_t q = g.chain_[s];
    bool any = false;
    Tick base = 0;
    Tick chain_t = 0;
    if (q != WhatIfDag::knone) {
      chain_t = time_of(q) + g.gap_[s] - gap_removal(s);
      base = chain_t;
      any = true;
    }
    for (std::uint32_t c = g.pred_off_[s]; c < g.pred_off_[s + 1]; ++c) {
      const Tick pt = time_of(g.pred_[c]);
      if (!any || pt > base) base = pt;
      any = true;
    }
    const Tick d =
        g.d_[s] - (sc.removal_ep[s] == ep ? sc.removal[s] : 0);
    const Tick t = (any ? base : 0) + d;
    const Tick w = (q != WhatIfDag::knone && any) ? base - chain_t : 0;
    if (g.proc_[s] < sc.wait.size())
      sc.wait[g.proc_[s]] += w - g.w0_[s];

    const Tick old = g.t0_[s];
    sc.time_ep[s] = ep;
    sc.time[s] = t;
    if (t != old)
      for (std::uint32_t c = g.succ_off_[s]; c < g.succ_off_[s + 1]; ++c)
        push(g.succ_[c]);
  }
  frontier_counter().add(evaluated);
  experiments_counter().add();

  WhatIfResult out;
  Tick lo = 0, hi = 0;
  bool seen = false;
  for (std::size_t p = 0; p < g.first_slot_.size(); ++p) {
    if (g.first_slot_[p] == WhatIfDag::knone) continue;
    const Tick f = time_of(g.first_slot_[p]);
    const Tick l = time_of(g.last_slot_[p]);
    if (!seen || f < lo) lo = f;
    if (!seen || l > hi) hi = l;
    seen = true;
  }
  out.makespan = seen ? hi - lo : 0;
  out.waiting.resize(procs);
  for (std::size_t p = 0; p < procs; ++p)
    out.waiting[p] = g.baseline_.waiting[p] + sc.wait[p];
  out.critical_path = g.walk_critical_path(time_of, gap_removal);
  return out;
}

const WhatIfResult& WhatIfEngine::run(const WhatIfPlan& plan) {
  validate(plan);
  const auto key = std::make_pair(plan.site, plan.pct);
  const auto it = memo_.find(key);
  if (it != memo_.end()) {
    memo_counter().add();
    return it->second;
  }
  if (serial_scratch_.empty()) serial_scratch_.resize(1);
  return memo_.emplace(key, evaluate(plan, serial_scratch_[0]))
      .first->second;
}

std::vector<WhatIfResult> WhatIfEngine::run_many(
    const std::vector<WhatIfPlan>& plans, support::TaskPool& pool) {
  for (const WhatIfPlan& plan : plans) validate(plan);
  std::vector<WhatIfResult> results(plans.size());
  std::vector<char> filled(plans.size(), 0);

  // Serial dedupe against the memo and within the batch, so the parallel
  // section sees each distinct (site, pct) exactly once — results are then
  // independent of the worker count by construction.
  std::vector<std::size_t> miss;
  std::map<std::pair<SiteId, std::int64_t>, std::size_t> first_of;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const auto key = std::make_pair(plans[i].site, plans[i].pct);
    const auto it = memo_.find(key);
    if (it != memo_.end()) {
      memo_counter().add();
      results[i] = it->second;
      filled[i] = 1;
      continue;
    }
    if (first_of.emplace(key, i).second) miss.push_back(i);
  }

  // Lane-batched fan-out: consecutive kLaneWidth-wide blocks of the missed
  // plans, each block one dense sweep.  The block partition depends only on
  // the (serially built) miss order, and lanes write disjoint columns, so
  // results are identical at any worker count.
  const std::size_t blocks = (miss.size() + kLaneWidth - 1) / kLaneWidth;
  std::vector<BatchScratch> scratch(pool.size());
  pool.parallel_for(blocks, [&](std::size_t worker, std::size_t b) {
    const std::size_t begin = b * kLaneWidth;
    const std::size_t lanes = std::min(kLaneWidth, miss.size() - begin);
    WhatIfPlan lane_plans[kLaneWidth];
    WhatIfResult lane_out[kLaneWidth];
    for (std::size_t l = 0; l < lanes; ++l)
      lane_plans[l] = plans[miss[begin + l]];
    evaluate_block(lane_plans, lanes, scratch[worker], lane_out);
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::size_t i = miss[begin + l];
      results[i] = std::move(lane_out[l]);
      filled[i] = 1;
    }
  });

  for (const std::size_t i : miss)
    memo_.emplace(std::make_pair(plans[i].site, plans[i].pct), results[i]);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    if (filled[i]) continue;
    memo_counter().add();
    results[i] = memo_.at(std::make_pair(plans[i].site, plans[i].pct));
  }
  return results;
}

std::vector<SiteImpact> WhatIfEngine::rank(std::int64_t pct,
                                           support::TaskPool& pool,
                                           std::size_t top_n) {
  std::vector<WhatIfPlan> plans;
  plans.reserve(dag_->sites().size());
  for (SiteId s = 0; s < dag_->sites().size(); ++s)
    plans.push_back({s, pct});
  const std::vector<WhatIfResult> results = run_many(plans, pool);
  std::vector<SiteImpact> ranking(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    ranking[i].site = plans[i].site;
    ranking[i].savings = dag_->baseline_makespan() - results[i].makespan;
    ranking[i].result = results[i];
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const SiteImpact& a, const SiteImpact& b) {
                     if (a.savings != b.savings) return a.savings > b.savings;
                     return a.site < b.site;
                   });
  if (ranking.size() > top_n) ranking.resize(top_n);
  return ranking;
}

WhatIfResult whatif_reference(const TraceIndex& idx, const SiteRegistry& sites,
                              const WhatIfPlan& plan) {
  const Trace& t = idx.trace();
  const std::size_t n = t.size();
  std::vector<char> member(n, 0);
  for (const std::size_t i : site_member_events(idx, sites, plan.site))
    member[i] = 1;

  // Full per-event re-simulation with rewritten costs.
  std::vector<Tick> tp(n, 0);
  WhatIfResult out;
  out.waiting.assign(t.info().num_procs, 0);
  std::vector<std::size_t> cross;
  for (std::size_t i = 0; i < n; ++i) {
    cross.clear();
    for_each_cross_pred(idx, i,
                        [&](std::size_t p) { cross.push_back(p); });
    const std::size_t prev = idx.prev_on_proc(i);
    // Baseline local cost from the recovered times.
    Tick base0 = 0;
    bool any = false;
    if (prev != kNone) {
      base0 = t[prev].time;
      any = true;
    }
    for (const std::size_t c : cross) {
      if (!any || t[c].time > base0) base0 = t[c].time;
      any = true;
    }
    Tick d = t[i].time - (any ? base0 : 0);
    if (member[i]) d -= removal_of(d, plan.pct);
    // Virtual time under the rewritten cost: same predecessor max as the
    // baseline pass, over the virtual times.
    Tick base = 0;
    bool anyp = false;
    if (prev != kNone) {
      base = tp[prev];
      anyp = true;
    }
    for (const std::size_t c : cross) {
      if (!anyp || tp[c] > base) base = tp[c];
      anyp = true;
    }
    tp[i] = (anyp ? base : 0) + d;
    if (prev != kNone && t[i].proc < out.waiting.size())
      out.waiting[t[i].proc] += base - tp[prev];
  }

  // Makespan over per-processor chain endpoints.
  Tick lo = 0, hi = 0;
  bool seen = false;
  std::size_t end = kNone;
  for (std::size_t p = 0; p < idx.num_procs(); ++p) {
    const auto& evs = idx.events_of(static_cast<ProcId>(p));
    if (evs.empty()) continue;
    const Tick f = tp[evs.front()];
    const Tick l = tp[evs.back()];
    if (!seen || f < lo) lo = f;
    if (!seen || l > hi) hi = l;
    seen = true;
    if (end == kNone || l > tp[end] || (l == tp[end] && evs.back() > end))
      end = evs.back();
  }
  out.makespan = seen ? hi - lo : 0;

  // Per-event critical-path walk: binding predecessor is the latest; ties
  // prefer the same-processor chain, then the earliest cross dependency.
  if (end != kNone) {
    std::size_t cur = end;
    while (true) {
      const std::size_t prev = idx.prev_on_proc(cur);
      cross.clear();
      for_each_cross_pred(idx, cur,
                          [&](std::size_t p) { cross.push_back(p); });
      std::size_t best = kNone;
      for (const std::size_t c : cross)
        if (best == kNone || tp[c] > tp[best]) best = c;
      if (prev != kNone && (best == kNone || tp[prev] >= tp[best]))
        cur = prev;
      else if (best != kNone)
        cur = best;
      else
        break;
    }
    out.critical_path = tp[end] - tp[cur];
  }
  return out;
}

std::string render_whatif(const WhatIfDag& dag, const WhatIfPlan& plan,
                          const WhatIfResult& result) {
  const WhatIfResult& b = dag.baseline();
  const auto pct_of = [](Tick now, Tick was) {
    return was > 0 ? 100.0 * static_cast<double>(now) /
                         static_cast<double>(was)
                   : 0.0;
  };
  std::string out = support::strf(
      "what-if %s at %lld%% speedup\n",
      dag.sites().name(plan.site).c_str(), static_cast<long long>(plan.pct));
  out += support::strf("  makespan      %12lld -> %12lld  (%.1f%%)\n",
                       static_cast<long long>(b.makespan),
                       static_cast<long long>(result.makespan),
                       pct_of(result.makespan, b.makespan));
  out += support::strf("  critical path %12lld -> %12lld  (%.1f%%)\n",
                       static_cast<long long>(b.critical_path),
                       static_cast<long long>(result.critical_path),
                       pct_of(result.critical_path, b.critical_path));
  Tick w0 = 0, w1 = 0;
  for (const Tick w : b.waiting) w0 += w;
  for (const Tick w : result.waiting) w1 += w;
  out += support::strf("  waiting (sum) %12lld -> %12lld\n",
                       static_cast<long long>(w0),
                       static_cast<long long>(w1));
  return out;
}

std::string render_whatif_ranking(const WhatIfDag& dag, std::int64_t pct,
                                  const std::vector<SiteImpact>& ranking) {
  std::string out = support::strf(
      "what-if ranking at %lld%% speedup (baseline makespan %lld)\n",
      static_cast<long long>(pct),
      static_cast<long long>(dag.baseline_makespan()));
  out += "  rank  site            savings      makespan   of baseline\n";
  std::size_t rank = 1;
  for (const SiteImpact& e : ranking) {
    const double of = dag.baseline_makespan() > 0
                          ? 100.0 *
                                static_cast<double>(e.result.makespan) /
                                static_cast<double>(dag.baseline_makespan())
                          : 0.0;
    out += support::strf("  %-4zu  %-14s %10lld  %12lld  %10.1f%%\n", rank++,
                         dag.sites().name(e.site).c_str(),
                         static_cast<long long>(e.savings),
                         static_cast<long long>(e.result.makespan), of);
  }
  return out;
}

}  // namespace perturb::whatif
