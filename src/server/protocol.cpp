#include "server/protocol.hpp"

#include <cstring>

namespace perturb::server {

namespace {

// Payload magics ("QREP"/"QREQ" reversed in memory on little-endian, but the
// value is what matters — both sides memcpy the u32).
constexpr std::uint32_t kRequestMagic = 0x51455250u;  // "PREQ"
constexpr std::uint32_t kReplyMagic = 0x50455250u;    // "PREP"

template <typename T>
void put(std::string& out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(bytes, sizeof(T));
}

/// Bounds-checked POD read; false once the buffer runs out.
template <typename T>
bool get(const char*& p, const char* end, T& value) {
  if (static_cast<std::size_t>(end - p) < sizeof(T)) return false;
  std::memcpy(&value, p, sizeof(T));
  p += sizeof(T);
  return true;
}

bool get_bytes(const char*& p, const char* end, std::uint32_t len,
               std::string& out) {
  if (static_cast<std::size_t>(end - p) < len) return false;
  out.assign(p, len);
  p += len;
  return true;
}

}  // namespace

const char* status_name(JobStatus status) noexcept {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kRejectedOverload: return "rejected_overload";
    case JobStatus::kDeadlineExceeded: return "deadline_exceeded";
    case JobStatus::kCancelledDrain: return "cancelled_drain";
    case JobStatus::kInvalidTrace: return "invalid_trace";
    case JobStatus::kIoError: return "io_error";
    case JobStatus::kInternalError: return "internal_error";
    case JobStatus::kShuttingDown: return "shutting_down";
    case JobStatus::kBadRequest: return "bad_request";
  }
  return "unknown";
}

std::string encode_request(const JobRequest& request) {
  std::string out;
  out.reserve(28 + request.payload.size());
  put(out, kRequestMagic);
  put(out, request.job_id);
  put(out, request.flags);
  put(out, request.analyzers);
  put(out, request.repair);
  put<std::uint8_t>(out, 0);  // reserved
  put(out, request.deadline_ms);
  put(out, request.likely_samples);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(request.payload.size()));
  out += request.payload;
  return out;
}

std::string encode_reply(const JobReply& reply) {
  std::string out;
  out.reserve(24 + reply.detail.size());
  put(out, kReplyMagic);
  put(out, reply.job_id);
  put(out, static_cast<std::uint8_t>(reply.status));
  put<std::uint8_t>(out, 0);  // reserved
  put<std::uint16_t>(out, 0);
  put(out, reply.attempts);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(reply.detail.size()));
  out += reply.detail;
  return out;
}

bool decode_request(const char* data, std::size_t size, JobRequest& out) {
  const char* p = data;
  const char* end = data + size;
  std::uint32_t magic = 0;
  std::uint8_t reserved = 0;
  std::uint32_t payload_len = 0;
  if (!get(p, end, magic) || magic != kRequestMagic) return false;
  if (!get(p, end, out.job_id) || !get(p, end, out.flags) ||
      !get(p, end, out.analyzers) || !get(p, end, out.repair) ||
      !get(p, end, reserved) || !get(p, end, out.deadline_ms) ||
      !get(p, end, out.likely_samples) || !get(p, end, payload_len))
    return false;
  if (!get_bytes(p, end, payload_len, out.payload)) return false;
  return p == end;  // trailing garbage is a decode failure, not slack
}

bool decode_reply(const char* data, std::size_t size, JobReply& out) {
  const char* p = data;
  const char* end = data + size;
  std::uint32_t magic = 0;
  std::uint8_t status = 0;
  std::uint8_t r8 = 0;
  std::uint16_t r16 = 0;
  std::uint32_t detail_len = 0;
  if (!get(p, end, magic) || magic != kReplyMagic) return false;
  if (!get(p, end, out.job_id) || !get(p, end, status) || !get(p, end, r8) ||
      !get(p, end, r16) || !get(p, end, out.attempts) ||
      !get(p, end, detail_len))
    return false;
  if (status > static_cast<std::uint8_t>(JobStatus::kBadRequest)) return false;
  out.status = static_cast<JobStatus>(status);
  if (!get_bytes(p, end, detail_len, out.detail)) return false;
  return p == end;
}

}  // namespace perturb::server
