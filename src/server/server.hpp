// perturb-server: a fault-tolerant perturbation-analysis daemon.
//
// The server accepts trace-analysis jobs over an AF_UNIX stream socket
// (length-prefixed frames; see server/protocol.hpp) and shards them across a
// pool of worker threads, each running the same core::AnalysisPipeline the
// command-line tools use, with one reusable trace::IoArena per worker.
//
// Robustness model — the interesting part:
//
//   * Bounded admission.  Jobs queue up to `queue_depth` entries and
//     `max_inflight_bytes` of payload (queued + running).  Past either
//     budget the connection reader replies kRejectedOverload immediately —
//     explicit backpressure, never an unbounded queue or a blocked client.
//   * Deadlines.  Each job carries (or inherits) a deadline measured from
//     admission, so queue wait counts against it.  The worker arms a
//     support::CancelToken; the pipeline polls it at phase boundaries and
//     the job unwinds cooperatively with kDeadlineExceeded.
//   * Crash isolation.  A worker catches everything a job throws, maps it
//     onto a structured status (invalid trace / I/O / internal), replies,
//     and moves on.  One poisonous job cannot take a worker — let alone the
//     daemon — down.
//   * Bounded retry.  Transient I/O faults (deterministically injectable
//     for tests and drills via `fault_rate`) are retried up to
//     `max_attempts` with exponential backoff before the job fails with
//     kIoError.
//   * Graceful drain.  shutdown() stops admitting (new frames get
//     kShuttingDown), lets in-flight jobs finish within `drain_timeout_ms`,
//     then cancels stragglers via their tokens, and finally tears down
//     connections and the socket file.  Call it from a SIGTERM handler's
//     main-loop check; it is idempotent.
//   * Chunked jobs.  A client can stream a trace in pieces (OPEN → CHUNK* →
//     CLOSE frames; see protocol.hpp) instead of one inline payload.  The
//     reader decodes each chunk on arrival (trace::ChunkReader) and feeds an
//     incremental index (trace::IncrementalTraceIndex), so the worker starts
//     from a prebuilt index; admission, byte budgets, deadlines (anchored at
//     OPEN), and cancellation behave exactly as for inline jobs.
//
// Determinism: a reply is a pure function of the request and the server
// configuration.  Replies carry no timestamps, fault injection is keyed on
// (seed, job_id, attempt) rather than on scheduling, and each job runs
// single-threaded inside its worker — so the set of replies is bit-identical
// whether the server runs 1, 2, or 8 workers.  Latency lives in metrics
// (support/metrics.hpp histograms) and in the client's own clock, never in
// the reply bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/pipeline.hpp"

namespace perturb::server {

struct JobReply;
struct JobRequest;

struct ServerConfig {
  std::string socket_path;
  std::size_t workers = 1;
  /// Admission budgets: queued-job count and queued+running payload bytes.
  std::size_t queue_depth = 64;
  std::size_t max_inflight_bytes = 64u << 20;
  /// Default per-job deadline, measured from admission; 0 = none.  A request
  /// with deadline_ms != 0 overrides it.
  std::uint32_t default_deadline_ms = 0;
  /// Graceful-drain budget before in-flight jobs are cancelled.
  std::uint32_t drain_timeout_ms = 5000;
  /// Deterministic transient-fault injection: each (job_id, attempt) pair
  /// faults with this probability, keyed on fault_seed — independent of
  /// worker count and scheduling.
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 0x70657254u;
  /// Execution attempts per job (1 = no retry).
  std::uint32_t max_attempts = 3;
  /// Backoff before retry k is retry_backoff_us << (k - 1) microseconds.
  std::uint32_t retry_backoff_us = 200;
  /// Honor the kFlagPoison chaos hook (tests / fault drills only).
  bool allow_poison = false;
  /// Analysis defaults (overheads, machine, likely samples, repair, seed);
  /// per-job options override analyzers/repair/likely_samples.  `threads`
  /// and `cancel` are server-managed and ignored here.
  core::PipelineOptions pipeline;
};

/// The daemon.  start() spawns the listener and worker threads and returns;
/// shutdown() drains and joins everything.  The destructor calls shutdown().
class PerturbServer {
 public:
  explicit PerturbServer(ServerConfig config);
  ~PerturbServer();

  PerturbServer(const PerturbServer&) = delete;
  PerturbServer& operator=(const PerturbServer&) = delete;

  /// Binds the socket and starts serving.  Throws trace::IoError when the
  /// socket cannot be bound.
  void start();

  /// Graceful drain (see file comment).  Idempotent; safe to call from any
  /// thread except a worker or reader.
  void shutdown();

  const ServerConfig& config() const noexcept;

  /// The deterministic fault-injection predicate: true when execution
  /// attempt `attempt` of job `job_id` suffers an injected transient fault
  /// at rate `rate` under `seed`.  Exposed so tests can choose job ids that
  /// fault on the first attempt but not the second.
  static bool fault_fires(std::uint64_t seed, std::uint64_t job_id,
                          std::uint32_t attempt, double rate) noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Blocking client: one connection, one outstanding job at a time (callers
/// wanting concurrency open more clients).  Methods throw trace::IoError on
/// connection/protocol failures.
class Client {
 public:
  explicit Client(const std::string& socket_path);
  ~Client();
  Client(Client&&) noexcept;
  Client& operator=(Client&&) noexcept;

  /// Sends one job and waits for its reply.
  JobReply call(const JobRequest& request);

  /// Streams one job as OPEN → CHUNK* → CLOSE frames and waits for the
  /// single reply.  `request.payload` is the complete v2 binary trace image
  /// (kFlagPayloadIsPath is invalid here); it is cut into `chunk_bytes`-sized
  /// CHUNK payloads.  Options (analyzers, repair, deadline, ...) ride on the
  /// OPEN frame.
  JobReply call_stream(const JobRequest& request,
                       std::size_t chunk_bytes = 64 * 1024);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace perturb::server
