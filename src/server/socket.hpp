// Minimal AF_UNIX stream-socket layer: RAII fds, length-prefixed frame
// send/receive, a polling listener.  POSIX-only, like the daemon itself
// (the library is compiled only on UNIX; see src/server/CMakeLists.txt).
//
// Framing: a 4-byte little-endian payload length, then the payload.  recv
// and send loop over partial transfers; a peer that closes mid-frame yields
// a clean "connection closed" result, never a torn payload.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace perturb::server {

/// Owning file descriptor.  Move-only; close() is idempotent.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { close(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;
  /// shutdown(2) both directions: unblocks any thread parked in recv/send on
  /// this fd (used by the drain path); the fd itself stays open until close.
  void shutdown_both() noexcept;

 private:
  int fd_ = -1;
};

enum class FrameResult : std::uint8_t {
  kOk = 0,
  kClosed,    ///< orderly EOF at a frame boundary
  kError,     ///< I/O error, torn frame, or oversized length prefix
};

/// Sends one length-prefixed frame; false on any send failure.  Safe for
/// concurrent frames on the same fd only under an external lock (the server
/// serializes replies per connection).
bool send_frame(int fd, const std::string& payload);

/// Receives one length-prefixed frame.
FrameResult recv_frame(int fd, std::string& payload);

/// Binds and listens on an AF_UNIX socket at `path`, replacing a stale
/// socket file.  Returns an invalid Fd and fills `error` on failure.
Fd listen_unix(const std::string& path, std::string& error);

/// Accepts one connection, waiting up to `timeout_ms`.  Returns an invalid
/// Fd on timeout or error (the listener polls so a stop flag can be checked
/// between waits).
Fd accept_unix(int listen_fd, int timeout_ms);

/// Connects to the AF_UNIX socket at `path`.  Returns an invalid Fd and
/// fills `error` on failure.
Fd connect_unix(const std::string& path, std::string& error);

}  // namespace perturb::server
