#include "server/socket.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "server/protocol.hpp"

namespace perturb::server {

namespace {

std::string errno_text() { return std::strerror(errno); }

/// Fills sockaddr_un; false when the path does not fit (sun_path is ~108
/// bytes on Linux).
bool fill_addr(const std::string& path, sockaddr_un& addr) {
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) return false;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ::ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += sent;
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

/// 0 = EOF before any byte, 1 = got everything, -1 = error/torn.
int recv_all(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ::ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return got == 0 ? 0 : -1;
    got += static_cast<std::size_t>(n);
  }
  return 1;
}

}  // namespace

void Fd::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Fd::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool send_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  const auto len = static_cast<std::uint32_t>(payload.size());
  char prefix[4];
  std::memcpy(prefix, &len, sizeof(len));
  return send_all(fd, prefix, sizeof(prefix)) &&
         send_all(fd, payload.data(), payload.size());
}

FrameResult recv_frame(int fd, std::string& payload) {
  char prefix[4];
  const int head = recv_all(fd, prefix, sizeof(prefix));
  if (head == 0) return FrameResult::kClosed;
  if (head < 0) return FrameResult::kError;
  std::uint32_t len = 0;
  std::memcpy(&len, prefix, sizeof(len));
  if (len > kMaxFrameBytes) return FrameResult::kError;
  payload.resize(len);
  if (len > 0 && recv_all(fd, payload.data(), len) != 1)
    return FrameResult::kError;
  return FrameResult::kOk;
}

Fd listen_unix(const std::string& path, std::string& error) {
  sockaddr_un addr{};
  if (!fill_addr(path, addr)) {
    error = "socket path empty or too long: " + path;
    return Fd();
  }
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    error = "socket: " + errno_text();
    return Fd();
  }
  // A previous instance that crashed leaves its socket file behind; binding
  // over it needs the unlink.  A *live* instance is not detected here — the
  // daemon's pid/lock handling is out of scope for this layer.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    error = "bind " + path + ": " + errno_text();
    return Fd();
  }
  if (::listen(fd.get(), 64) != 0) {
    error = "listen " + path + ": " + errno_text();
    return Fd();
  }
  return fd;
}

Fd accept_unix(int listen_fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = listen_fd;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return Fd();
  return Fd(::accept(listen_fd, nullptr, nullptr));
}

Fd connect_unix(const std::string& path, std::string& error) {
  sockaddr_un addr{};
  if (!fill_addr(path, addr)) {
    error = "socket path empty or too long: " + path;
    return Fd();
  }
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    error = "socket: " + errno_text();
    return Fd();
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    error = "connect " + path + ": " + errno_text();
    return Fd();
  }
  return fd;
}

}  // namespace perturb::server
