// Wire protocol of the perturbation-analysis daemon.
//
// Transport framing is a 4-byte little-endian payload length followed by the
// payload; the payload is a fixed-layout little-endian header plus one
// variable-length field.  Two payload kinds exist: a job request (client →
// server) and a job reply (server → client).  The protocol is deliberately
// content-addressed and clock-free: a reply is a pure function of the
// request and the server's configuration, never of wall-clock time or worker
// scheduling, so replies are bit-identical across runs and worker counts
// (the determinism contract the server tests pin down).
//
// Every decode is strict: unknown magic, short buffers, or trailing garbage
// fail decoding rather than being guessed at, and the frame layer caps
// payload sizes so a corrupt length prefix cannot trigger a giant
// allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace perturb::server {

/// Frames (and therefore inline trace payloads) are capped well below any
/// plausible job size; a corrupt length prefix fails fast instead of
/// allocating gigabytes.
inline constexpr std::uint32_t kMaxFrameBytes = 256u << 20;

/// Terminal status of one job.
enum class JobStatus : std::uint8_t {
  kOk = 0,
  kRejectedOverload = 1,   ///< admission queue or byte budget full; not run
  kDeadlineExceeded = 2,   ///< cancelled at a pipeline checkpoint
  kCancelledDrain = 3,     ///< shutdown drain timed out while job queued/ran
  kInvalidTrace = 4,       ///< malformed payload or failed acquisition
  kIoError = 5,            ///< unreadable path / persistent transient fault
  kInternalError = 6,      ///< worker caught an unexpected exception
  kShuttingDown = 7,       ///< server draining; job was never admitted
  kBadRequest = 8,         ///< undecodable or semantically invalid request
};

/// Human-readable status name ("ok", "rejected_overload", ...).
const char* status_name(JobStatus status) noexcept;

/// Which built-in analyzers a job runs, as a bitmask.
enum AnalyzerMask : std::uint8_t {
  kMaskTimeBased = 1u << 0,
  kMaskEventBased = 1u << 1,
  kMaskLiberal = 1u << 2,
  kMaskLikely = 1u << 3,
};
inline constexpr std::uint8_t kAllAnalyzers =
    kMaskTimeBased | kMaskEventBased | kMaskLiberal | kMaskLikely;

/// Request flag bits.
enum RequestFlags : std::uint8_t {
  /// Payload is a filesystem path the server loads, instead of an inline
  /// binary trace image.
  kFlagPayloadIsPath = 1u << 0,
  /// Chaos hook: the worker throws an unexpected exception instead of
  /// running the job.  Only honored when the server was configured with
  /// allow_poison (tests / fault drills); otherwise rejected as a bad
  /// request.  Exists so worker crash isolation is exercised at the real
  /// catch boundary, not a simulation of it.
  kFlagPoison = 1u << 1,
  /// Streamed-job framing: a chunked job is OPEN, zero or more CHUNK frames,
  /// then CLOSE, all carrying the same job_id on one connection.  OPEN fixes
  /// the job's options (analyzers, repair, deadline — anchored at OPEN
  /// admission, so transfer time counts against it) and makes the admission
  /// decision; CHUNK/CLOSE payloads append successive bytes of a v2 binary
  /// trace image, decoded and indexed as they arrive and charged against the
  /// in-flight byte budget (over budget mid-stream → kRejectedOverload and
  /// the stream is dropped).  Exactly one reply is sent per stream, at CLOSE
  /// or at the frame that failed it.  Exactly one of the three bits must be
  /// set on a stream frame, never combined with kFlagPayloadIsPath.  A CHUNK
  /// for an unknown stream is dropped silently (the tail of an
  /// already-terminated stream); an orphan CLOSE gets kBadRequest.
  kFlagStreamOpen = 1u << 2,
  kFlagStreamChunk = 1u << 3,
  kFlagStreamClose = 1u << 4,
};

struct JobRequest {
  std::uint64_t job_id = 0;
  std::uint8_t flags = 0;               ///< RequestFlags
  std::uint8_t analyzers = kMaskTimeBased | kMaskEventBased;
  std::uint8_t repair = 0;              ///< core::RepairMode as integer
  std::uint32_t deadline_ms = 0;        ///< 0: server default
  std::uint32_t likely_samples = 0;     ///< 0: server default (job cost knob)
  /// Inline binary trace image, or a path when kFlagPayloadIsPath is set.
  std::string payload;
};

struct JobReply {
  std::uint64_t job_id = 0;
  JobStatus status = JobStatus::kInternalError;
  std::uint32_t attempts = 0;  ///< execution attempts (retries + 1); 0 if not run
  /// OK: deterministic result summary.  Failure: diagnosis text.
  std::string detail;
};

/// Payload encoders (framing is the socket layer's job).
std::string encode_request(const JobRequest& request);
std::string encode_reply(const JobReply& reply);

/// Strict decoders; false on any malformed payload (wrong magic, short
/// buffer, length fields that disagree with the payload size).
bool decode_request(const char* data, std::size_t size, JobRequest& out);
bool decode_reply(const char* data, std::size_t size, JobReply& out);

}  // namespace perturb::server
