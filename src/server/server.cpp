#include "server/server.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <unistd.h>

#include "server/protocol.hpp"
#include "server/socket.hpp"
#include "support/cancel.hpp"
#include "support/metrics.hpp"
#include "support/prng.hpp"
#include "support/text.hpp"
#include "trace/chunk_reader.hpp"
#include "trace/io.hpp"

namespace perturb::server {

namespace {

using Clock = std::chrono::steady_clock;
using support::strf;

// Self-observability: the daemon's health at a glance.  Counters tally every
// terminal status; histograms split a job's life into queue wait and service
// time so saturation (wait grows, service flat) is distinguishable from slow
// jobs (service grows).
const support::Counter kJobsReceived("server.jobs.received");
const support::Counter kJobsAccepted("server.jobs.accepted");
const support::Counter kJobsOk("server.jobs.ok");
const support::Counter kShedOverload("server.shed.overload");
const support::Counter kShedShutdown("server.shed.shutdown");
const support::Counter kDeadlineExceeded("server.jobs.deadline_exceeded");
const support::Counter kCancelledDrain("server.jobs.cancelled_drain");
const support::Counter kInvalidTrace("server.jobs.invalid_trace");
const support::Counter kJobIoError("server.jobs.io_error");
const support::Counter kInternalErrors("server.jobs.internal_error");
const support::Counter kBadRequests("server.jobs.bad_request");
const support::Counter kRetries("server.retries");
const support::Counter kFaultsInjected("server.faults.injected");
const support::Counter kStreamsOpened("server.streams.opened");
const support::Counter kStreamChunks("server.streams.chunks");
const support::HistogramMetric kQueueWaitNs("server.queue_wait.ns");
const support::HistogramMetric kServiceNs("server.service.ns");
const support::Gauge kQueueDepthMax("server.queue.depth.max");
const support::Gauge kInflightBytesMax("server.inflight.bytes.max");

std::uint64_t elapsed_ns(Clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           since)
          .count());
}

/// One accepted connection.  Replies are serialized under `write_mutex`; the
/// fd is closed only once the reader has exited AND no in-flight job still
/// needs to reply (release()), so a worker never writes into a recycled fd.
struct Connection {
  Fd fd;
  std::mutex write_mutex;
  std::atomic<std::size_t> pending{0};  ///< admitted jobs not yet replied
  std::atomic<bool> reader_done{false};

  explicit Connection(Fd sock) : fd(std::move(sock)) {}

  void send_reply(const JobReply& reply) {
    const std::string payload = encode_reply(reply);
    const std::lock_guard<std::mutex> lock(write_mutex);
    if (fd.valid()) send_frame(fd.get(), payload);
    // A send failure means the client went away; the job's work is done
    // either way and the reader will observe the closed peer.
  }

  /// Closes the fd once both the reader and all in-flight jobs are done.
  void release() {
    const std::lock_guard<std::mutex> lock(write_mutex);
    if (reader_done.load(std::memory_order_acquire) &&
        pending.load(std::memory_order_acquire) == 0)
      fd.close();
  }
};

/// Prebuilt state of a chunked job, assembled by the reader as CHUNK frames
/// arrived: the decoded events, the incrementally built index, and the
/// chunk-level salvage provenance.  The worker seals the builder into the
/// shared TraceIndex instead of re-indexing from scratch.
struct StreamJobState {
  trace::TraceInfo info;
  std::vector<trace::Event> events;
  trace::IncrementalTraceIndex builder;
  bool salvaged = false;
  trace::SalvageReport report;
};

struct Job {
  JobRequest request;
  std::shared_ptr<Connection> conn;
  Clock::time_point admitted;
  std::size_t charged_bytes = 0;  ///< in-flight byte refund at completion
  std::unique_ptr<StreamJobState> stream;  ///< chunked job; null for inline
};

/// One stream the reader is accumulating between OPEN and CLOSE.
struct OpenStream {
  JobRequest open;             ///< options frame; its flags/payload ride here
  Clock::time_point admitted;  ///< deadline anchor (transfer time counts)
  trace::ChunkReader reader;
  std::unique_ptr<StreamJobState> state;
  std::size_t charged = 0;  ///< bytes charged against the in-flight budget

  OpenStream(JobRequest request, bool salvage)
      : open(std::move(request)),
        admitted(Clock::now()),
        reader(salvage),
        state(std::make_unique<StreamJobState>()) {}
};

/// Per-worker reusable state; jobs never share any of it.
struct WorkerState {
  support::CancelToken token;
  trace::IoArena arena;
};

constexpr std::uint8_t kKnownRequestFlags = kFlagPayloadIsPath | kFlagPoison |
                                            kFlagStreamOpen | kFlagStreamChunk |
                                            kFlagStreamClose;
constexpr std::uint8_t kStreamFlags =
    kFlagStreamOpen | kFlagStreamChunk | kFlagStreamClose;

}  // namespace

struct PerturbServer::Impl {
  ServerConfig config;

  Fd listen_fd;
  std::thread listener;
  std::vector<std::thread> workers;
  std::vector<std::unique_ptr<WorkerState>> worker_states;

  std::mutex conn_mutex;
  std::vector<std::shared_ptr<Connection>> connections;
  std::vector<std::thread> readers;

  std::mutex queue_mutex;
  std::condition_variable queue_cv;    ///< workers wait for jobs
  std::condition_variable drained_cv;  ///< shutdown waits for quiescence
  std::deque<Job> queue;
  std::size_t inflight_bytes = 0;  ///< queued + running payload bytes
  std::size_t busy_workers = 0;

  std::atomic<bool> started{false};
  std::atomic<bool> draining{false};     ///< stop admitting
  std::atomic<bool> hard_cancel{false};  ///< drain budget spent: shed queue
  std::atomic<bool> stopping{false};     ///< workers exit once queue empties

  explicit Impl(ServerConfig cfg) : config(std::move(cfg)) {}

  // ---- job execution (worker side) ---------------------------------------

  /// Deterministic result summary: depends only on the request and the
  /// pipeline output, never on timing or worker identity.
  static std::string render_summary(const core::PipelineResult& result) {
    std::string out = strf(
        "acquire events=%zu salvaged=%d repaired=%d degraded=%d\n",
        result.acquire.measured.size(), int(result.acquire.salvaged),
        int(result.acquire.repaired), int(result.acquire.degraded));
    for (const auto& output : result.outputs) {
      out += strf("analyzer=%s events=%zu span=%lld\n", output.analyzer.c_str(),
                  output.approx.size(),
                  static_cast<long long>(output.approx.span()));
      if (output.distribution.has_value())
        out += strf("  likely samples=%zu median=%lld p95=%lld\n",
                    output.distribution->loop_times.size(),
                    static_cast<long long>(output.distribution->median),
                    static_cast<long long>(output.distribution->p95));
    }
    return out;
  }

  core::AnalysisPipeline build_pipeline(const JobRequest& request,
                                        WorkerState& state) const {
    core::PipelineOptions options = config.pipeline;
    options.threads = 1;  // parallelism comes from sharding jobs, not phases
    options.cancel = &state.token;
    options.repair = static_cast<core::RepairMode>(request.repair);
    if (request.likely_samples != 0)
      options.likely_samples = request.likely_samples;
    core::AnalysisPipeline pipeline(std::move(options));
    // Fixed registration order keeps output order (and thus reply bytes)
    // independent of everything but the mask.
    if (request.analyzers & kMaskTimeBased)
      pipeline.add(core::AnalyzerKind::kTimeBased);
    if (request.analyzers & kMaskEventBased)
      pipeline.add(core::AnalyzerKind::kEventBased);
    if (request.analyzers & kMaskLiberal)
      pipeline.add(core::AnalyzerKind::kLiberal);
    if (request.analyzers & kMaskLikely)
      pipeline.add(core::AnalyzerKind::kLikely);
    return pipeline;
  }

  core::PipelineResult run_job(const Job& job, WorkerState& state) const {
    const JobRequest& request = job.request;
    const core::AnalysisPipeline pipeline = build_pipeline(request, state);
    if (job.stream != nullptr) {
      // Chunked job: the reader already decoded the trace and built the
      // incremental index; seal and analyze.  Copies (not moves) the state,
      // since execute() may retry this job after an injected fault.
      StreamJobState& s = *job.stream;
      trace::Trace measured(s.info);
      measured.events() = s.events;
      core::PipelineResult result =
          pipeline.run_sealed(std::move(measured), s.builder);
      // Salvage provenance comes from the reader's chunk decode, which the
      // worker's acquisition path never saw.
      result.acquire.salvaged = s.salvaged;
      result.acquire.salvage = s.report;
      result.acquire.degraded |= s.salvaged;
      return result;
    }
    if (request.flags & kFlagPayloadIsPath)
      return pipeline.run(pipeline.acquire_file(request.payload, state.arena));
    // Inline payloads are binary trace images (the compact format clients
    // already have on disk or produce from the simulator).
    return pipeline.run(
        trace::read_binary(request.payload.data(), request.payload.size()));
  }

  JobReply execute(const Job& job, WorkerState& state) const {
    const JobRequest& request = job.request;
    JobReply reply;
    reply.job_id = request.job_id;
    const std::uint32_t max_attempts = std::max(1u, config.max_attempts);
    for (std::uint32_t attempt = 1;; ++attempt) {
      reply.attempts = attempt;
      try {
        if (request.flags & kFlagPoison)
          throw std::runtime_error("poison job (chaos hook)");
        if (fault_fires(config.fault_seed, request.job_id, attempt,
                        config.fault_rate)) {
          kFaultsInjected.add();
          throw trace::IoError(
              strf("injected transient I/O fault (attempt %u)", attempt));
        }
        const core::PipelineResult result = run_job(job, state);
        if (!result.acquire.ok) {
          reply.status = JobStatus::kInvalidTrace;
          reply.detail = result.acquire.diagnosis;
          kInvalidTrace.add();
          return reply;
        }
        reply.status = JobStatus::kOk;
        reply.detail = render_summary(result);
        kJobsOk.add();
        return reply;
      } catch (const support::CancelledError& e) {
        const bool deadline = e.reason() == support::CancelReason::kDeadline;
        reply.status = deadline ? JobStatus::kDeadlineExceeded
                                : JobStatus::kCancelledDrain;
        reply.detail = e.what();
        (deadline ? kDeadlineExceeded : kCancelledDrain).add();
        return reply;
      } catch (const trace::MalformedTraceError& e) {
        reply.status = JobStatus::kInvalidTrace;
        reply.detail = e.what();
        kInvalidTrace.add();
        return reply;
      } catch (const trace::IoError& e) {
        // Possibly transient (and always transient when injected): retry
        // with exponential backoff until the attempt budget is spent.
        if (attempt < max_attempts) {
          kRetries.add();
          std::this_thread::sleep_for(std::chrono::microseconds(
              std::uint64_t(config.retry_backoff_us) << (attempt - 1)));
          continue;
        }
        reply.status = JobStatus::kIoError;
        reply.detail =
            strf("%s (after %u attempts)", e.what(), unsigned(attempt));
        kJobIoError.add();
        return reply;
      } catch (const CheckError& e) {
        reply.status = JobStatus::kInvalidTrace;
        reply.detail = e.what();
        kInvalidTrace.add();
        return reply;
      } catch (const std::exception& e) {
        reply.status = JobStatus::kInternalError;
        reply.detail = e.what();
        kInternalErrors.add();
        return reply;
      } catch (...) {
        reply.status = JobStatus::kInternalError;
        reply.detail = "unknown exception";
        kInternalErrors.add();
        return reply;
      }
    }
  }

  void worker_loop(WorkerState& state) {
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(queue_mutex);
        queue_cv.wait(lock, [&] {
          return !queue.empty() || stopping.load(std::memory_order_acquire);
        });
        if (queue.empty()) return;  // stopping and drained
        job = std::move(queue.front());
        queue.pop_front();
        ++busy_workers;
      }
      kQueueWaitNs.observe(elapsed_ns(job.admitted));

      JobReply reply;
      if (hard_cancel.load(std::memory_order_acquire)) {
        // Drain budget spent: shed the rest of the queue without running it.
        reply.job_id = job.request.job_id;
        reply.status = JobStatus::kCancelledDrain;
        reply.detail = "server drain timeout; job cancelled before running";
        kCancelledDrain.add();
      } else {
        state.token.reset();
        const std::uint32_t deadline_ms = job.request.deadline_ms != 0
                                              ? job.request.deadline_ms
                                              : config.default_deadline_ms;
        if (deadline_ms != 0)
          state.token.set_deadline(job.admitted +
                                   std::chrono::milliseconds(deadline_ms));
        const auto service_start = Clock::now();
        reply = execute(job, state);
        kServiceNs.observe(elapsed_ns(service_start));
      }
      job.conn->send_reply(reply);
      job.conn->pending.fetch_sub(1, std::memory_order_acq_rel);
      job.conn->release();
      {
        const std::lock_guard<std::mutex> lock(queue_mutex);
        inflight_bytes -= job.charged_bytes;
        --busy_workers;
      }
      drained_cv.notify_all();
    }
  }

  // ---- admission (reader side) -------------------------------------------

  /// Decodes whatever complete chunks the stream's buffer now holds into the
  /// job state.  Returns false and fills `error` when the decode failed
  /// terminally (strict-mode defect or malformed header); the caller replies
  /// and drops the stream.
  static bool pump_stream(OpenStream& os, JobReply& error) {
    try {
      std::vector<trace::Event> chunk;
      while (os.reader.next(chunk) == trace::ChunkReader::Status::kChunk) {
        os.state->builder.append(chunk.data(), chunk.size());
        os.state->events.insert(os.state->events.end(), chunk.begin(),
                                chunk.end());
      }
      return true;
    } catch (const trace::MalformedTraceError& e) {
      error.status = JobStatus::kInvalidTrace;
      error.detail = e.what();
      kInvalidTrace.add();
    } catch (const trace::IoError& e) {
      // A decode defect in strict mode is content corruption, not a
      // transient fault: no retry budget applies, the stream is dead.
      error.status = JobStatus::kIoError;
      error.detail = e.what();
      kJobIoError.add();
    } catch (const CheckError& e) {
      error.status = JobStatus::kInvalidTrace;
      error.detail = e.what();
      kInvalidTrace.add();
    }
    error.job_id = os.open.job_id;
    return false;
  }

  void reader_loop(const std::shared_ptr<Connection>& conn) {
    // Streams being accumulated on this connection, by job id.  The reader
    // thread is their only owner; bytes charged to the in-flight budget are
    // the one piece of shared state (refunded on any terminal outcome).
    std::unordered_map<std::uint64_t, std::unique_ptr<OpenStream>> streams;
    const auto refund = [&](std::size_t bytes) {
      if (bytes == 0) return;
      const std::lock_guard<std::mutex> lock(queue_mutex);
      inflight_bytes -= bytes;
    };
    /// Charges `bytes` against the in-flight budget; false (with the shed
    /// reason) when over.
    const auto charge = [&](std::size_t bytes, std::string& shed) {
      const std::lock_guard<std::mutex> lock(queue_mutex);
      if (inflight_bytes + bytes > config.max_inflight_bytes) {
        shed = strf("in-flight bytes %zu + %zu over budget %zu",
                    inflight_bytes, bytes, config.max_inflight_bytes);
        return false;
      }
      inflight_bytes += bytes;
      kInflightBytesMax.record_max(static_cast<std::int64_t>(inflight_bytes));
      return true;
    };

    std::string payload;
    for (;;) {
      const FrameResult got = recv_frame(conn->fd.get(), payload);
      if (got != FrameResult::kOk) break;
      kJobsReceived.add();

      JobRequest request;
      if (!decode_request(payload.data(), payload.size(), request)) {
        JobReply reply;
        reply.status = JobStatus::kBadRequest;
        reply.detail = "undecodable request frame";
        kBadRequests.add();
        conn->send_reply(reply);
        continue;
      }
      const std::uint8_t stream_bits = request.flags & kStreamFlags;
      if ((request.flags & ~kKnownRequestFlags) != 0 ||
          (request.analyzers & ~kAllAnalyzers) != 0 ||
          request.analyzers == 0 ||
          request.repair > static_cast<std::uint8_t>(
                               core::RepairMode::kAggressive) ||
          ((request.flags & kFlagPoison) && !config.allow_poison) ||
          // Stream frames: exactly one of OPEN/CHUNK/CLOSE, never a path.
          (stream_bits & (stream_bits - 1)) != 0 ||
          (stream_bits != 0 && (request.flags & kFlagPayloadIsPath) != 0)) {
        JobReply reply;
        reply.job_id = request.job_id;
        reply.status = JobStatus::kBadRequest;
        reply.detail = "invalid flags, analyzer mask, or repair mode";
        kBadRequests.add();
        conn->send_reply(reply);
        continue;
      }
      if (draining.load(std::memory_order_acquire)) {
        // A mid-stream frame during drain terminates its stream; a CHUNK
        // whose stream is already gone stays silent so the stream's one
        // terminal reply is not followed by more.
        const auto it = streams.find(request.job_id);
        if (stream_bits == kFlagStreamChunk && it == streams.end()) continue;
        if (it != streams.end()) {
          refund(it->second->charged);
          streams.erase(it);
        }
        JobReply reply;
        reply.job_id = request.job_id;
        reply.status = JobStatus::kShuttingDown;
        reply.detail = "server is draining";
        kShedShutdown.add();
        conn->send_reply(reply);
        continue;
      }

      if (stream_bits == kFlagStreamOpen) {
        if (streams.find(request.job_id) != streams.end()) {
          JobReply reply;
          reply.job_id = request.job_id;
          reply.status = JobStatus::kBadRequest;
          reply.detail = "stream already open for this job id";
          kBadRequests.add();
          conn->send_reply(reply);
          continue;
        }
        // Admission decision happens at OPEN, like an inline job's enqueue:
        // the queue must have room and the first bytes must fit the budget.
        const std::size_t bytes = request.payload.size();
        bool at_depth = false;
        {
          const std::lock_guard<std::mutex> lock(queue_mutex);
          at_depth = queue.size() >= config.queue_depth;
        }
        std::string shed_detail =
            at_depth ? strf("queue depth at cap") : std::string();
        if (at_depth || !charge(bytes, shed_detail)) {
          JobReply reply;
          reply.job_id = request.job_id;
          reply.status = JobStatus::kRejectedOverload;
          reply.detail = shed_detail;
          kShedOverload.add();
          conn->send_reply(reply);
          continue;
        }
        kStreamsOpened.add();
        const bool salvage = static_cast<core::RepairMode>(request.repair) !=
                             core::RepairMode::kOff;
        auto os = std::make_unique<OpenStream>(std::move(request), salvage);
        os->charged = bytes;
        if (!os->open.payload.empty()) {
          os->reader.feed(os->open.payload.data(), os->open.payload.size());
          os->open.payload.clear();
          os->open.payload.shrink_to_fit();
        }
        JobReply error;
        if (!pump_stream(*os, error)) {
          refund(os->charged);
          conn->send_reply(error);
          continue;
        }
        streams.emplace(os->open.job_id, std::move(os));
        continue;
      }

      if (stream_bits == kFlagStreamChunk || stream_bits == kFlagStreamClose) {
        const auto it = streams.find(request.job_id);
        if (it == streams.end()) {
          if (stream_bits == kFlagStreamChunk) continue;  // terminated tail
          JobReply reply;
          reply.job_id = request.job_id;
          reply.status = JobStatus::kBadRequest;
          reply.detail = "close for a stream that is not open";
          kBadRequests.add();
          conn->send_reply(reply);
          continue;
        }
        OpenStream& os = *it->second;
        std::string shed_detail;
        if (!charge(request.payload.size(), shed_detail)) {
          JobReply reply;
          reply.job_id = request.job_id;
          reply.status = JobStatus::kRejectedOverload;
          reply.detail = shed_detail;
          kShedOverload.add();
          conn->send_reply(reply);
          refund(os.charged);
          streams.erase(it);
          continue;
        }
        os.charged += request.payload.size();
        if (!request.payload.empty())
          os.reader.feed(request.payload.data(), request.payload.size());
        if (stream_bits == kFlagStreamChunk) kStreamChunks.add();
        if (stream_bits == kFlagStreamClose) os.reader.finish();
        JobReply error;
        if (!pump_stream(os, error)) {
          refund(os.charged);
          conn->send_reply(error);
          streams.erase(it);
          continue;
        }
        if (stream_bits == kFlagStreamChunk) continue;

        // CLOSE: package the prebuilt state and enqueue like an inline job
        // (the deadline anchor stays at OPEN admission).
        os.state->info = os.reader.info();
        os.state->report = os.reader.report();
        os.state->salvaged = !os.reader.report().complete;
        bool admitted = false;
        std::string shed;
        {
          const std::lock_guard<std::mutex> lock(queue_mutex);
          if (queue.size() >= config.queue_depth) {
            shed = strf("queue depth %zu at cap", queue.size());
          } else {
            kQueueDepthMax.record_max(
                static_cast<std::int64_t>(queue.size() + 1));
            conn->pending.fetch_add(1, std::memory_order_acq_rel);
            Job job;
            job.request = std::move(os.open);
            job.conn = conn;
            job.admitted = os.admitted;
            job.charged_bytes = os.charged;
            job.stream = std::move(os.state);
            queue.push_back(std::move(job));
            admitted = true;
          }
        }
        if (admitted) {
          kJobsAccepted.add();
          queue_cv.notify_one();
        } else {
          JobReply reply;
          reply.job_id = request.job_id;
          reply.status = JobStatus::kRejectedOverload;
          reply.detail = shed;
          kShedOverload.add();
          conn->send_reply(reply);
          refund(os.charged);
        }
        streams.erase(it);
        continue;
      }

      // Admission control: explicit rejection the moment either budget is
      // exceeded.  The reader never blocks on a full queue — backpressure is
      // a reply, not a stall.
      const std::size_t bytes = request.payload.size();
      bool admitted = false;
      std::string shed_detail;
      {
        const std::lock_guard<std::mutex> lock(queue_mutex);
        if (queue.size() >= config.queue_depth) {
          shed_detail = strf("queue depth %zu at cap", queue.size());
        } else if (inflight_bytes + bytes > config.max_inflight_bytes) {
          shed_detail =
              strf("in-flight bytes %zu + %zu over budget %zu",
                   inflight_bytes, bytes, config.max_inflight_bytes);
        } else {
          inflight_bytes += bytes;
          kQueueDepthMax.record_max(
              static_cast<std::int64_t>(queue.size() + 1));
          kInflightBytesMax.record_max(
              static_cast<std::int64_t>(inflight_bytes));
          conn->pending.fetch_add(1, std::memory_order_acq_rel);
          Job job;
          job.request = std::move(request);
          job.conn = conn;
          job.admitted = Clock::now();
          job.charged_bytes = bytes;
          queue.push_back(std::move(job));
          admitted = true;
        }
      }
      if (admitted) {
        kJobsAccepted.add();
        queue_cv.notify_one();
      } else {
        JobReply reply;
        reply.job_id = request.job_id;
        reply.status = JobStatus::kRejectedOverload;
        reply.detail = shed_detail;
        kShedOverload.add();
        conn->send_reply(reply);
      }
    }
    // Streams the client abandoned (connection closed mid-stream) give their
    // budget back; their jobs were never enqueued, so nothing else holds it.
    for (auto& entry : streams) refund(entry.second->charged);
    streams.clear();
    conn->reader_done.store(true, std::memory_order_release);
    conn->release();
  }

  void listener_loop() {
    while (!draining.load(std::memory_order_acquire)) {
      Fd sock = accept_unix(listen_fd.get(), /*timeout_ms=*/100);
      if (!sock.valid()) continue;
      auto conn = std::make_shared<Connection>(std::move(sock));
      const std::lock_guard<std::mutex> lock(conn_mutex);
      connections.push_back(conn);
      readers.emplace_back([this, conn] { reader_loop(conn); });
    }
  }

  // ---- lifecycle ---------------------------------------------------------

  void start() {
    std::string error;
    listen_fd = listen_unix(config.socket_path, error);
    if (!listen_fd.valid()) throw trace::IoError(error);
    worker_states.reserve(config.workers);
    workers.reserve(config.workers);
    for (std::size_t w = 0; w < std::max<std::size_t>(1, config.workers);
         ++w) {
      worker_states.push_back(std::make_unique<WorkerState>());
      workers.emplace_back(
          [this, state = worker_states.back().get()] { worker_loop(*state); });
    }
    listener = std::thread([this] { listener_loop(); });
    started.store(true, std::memory_order_release);
  }

  void shutdown() {
    if (!started.load(std::memory_order_acquire)) return;
    bool expected = false;
    if (!draining.compare_exchange_strong(expected, true)) return;
    listener.join();

    // Grace period: let queued and running jobs finish.
    {
      std::unique_lock<std::mutex> lock(queue_mutex);
      const bool drained = drained_cv.wait_for(
          lock, std::chrono::milliseconds(config.drain_timeout_ms),
          [&] { return queue.empty() && busy_workers == 0; });
      if (!drained) {
        // Budget spent: cancel in-flight work at its next checkpoint and
        // have workers shed whatever is still queued.
        hard_cancel.store(true, std::memory_order_release);
        for (auto& state : worker_states) state->token.cancel();
        queue_cv.notify_all();
        drained_cv.wait(lock,
                        [&] { return queue.empty() && busy_workers == 0; });
      }
    }

    stopping.store(true, std::memory_order_release);
    queue_cv.notify_all();
    for (auto& worker : workers) worker.join();

    // Unblock readers parked in recv and join them; connection fds close
    // with the Connection objects.
    {
      const std::lock_guard<std::mutex> lock(conn_mutex);
      for (auto& conn : connections) {
        const std::lock_guard<std::mutex> wlock(conn->write_mutex);
        conn->fd.shutdown_both();
      }
    }
    for (auto& reader : readers) reader.join();
    readers.clear();
    connections.clear();

    listen_fd.close();
    ::unlink(config.socket_path.c_str());
    started.store(false, std::memory_order_release);
  }
};

PerturbServer::PerturbServer(ServerConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

PerturbServer::~PerturbServer() {
  if (impl_ != nullptr) impl_->shutdown();
}

void PerturbServer::start() { impl_->start(); }
void PerturbServer::shutdown() { impl_->shutdown(); }

const ServerConfig& PerturbServer::config() const noexcept {
  return impl_->config;
}

bool PerturbServer::fault_fires(std::uint64_t seed, std::uint64_t job_id,
                                std::uint32_t attempt, double rate) noexcept {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // splitmix64 of the (seed, job_id, attempt) triple → uniform in [0, 1).
  std::uint64_t key = seed;
  key = support::splitmix64(key ^ (job_id * 0x9e3779b97f4a7c15ull));
  key = support::splitmix64(key ^ attempt);
  const double u =
      static_cast<double>(key >> 11) * (1.0 / 9007199254740992.0);  // 2^53
  return u < rate;
}

// ---- client ---------------------------------------------------------------

struct Client::Impl {
  Fd fd;
};

Client::Client(const std::string& socket_path)
    : impl_(std::make_unique<Impl>()) {
  std::string error;
  impl_->fd = connect_unix(socket_path, error);
  if (!impl_->fd.valid()) throw trace::IoError(error);
}

Client::~Client() = default;
Client::Client(Client&&) noexcept = default;
Client& Client::operator=(Client&&) noexcept = default;

namespace {

JobReply recv_reply_checked(int fd, std::uint64_t job_id) {
  std::string payload;
  const FrameResult got = recv_frame(fd, payload);
  if (got != FrameResult::kOk)
    throw trace::IoError("server connection closed before reply");
  JobReply reply;
  if (!decode_reply(payload.data(), payload.size(), reply))
    throw trace::IoError("undecodable reply frame from server");
  if (reply.job_id != job_id && reply.job_id != 0)
    throw trace::IoError("reply job id does not match request");
  return reply;
}

}  // namespace

JobReply Client::call(const JobRequest& request) {
  if (!send_frame(impl_->fd.get(), encode_request(request)))
    throw trace::IoError("server connection lost while sending job");
  return recv_reply_checked(impl_->fd.get(), request.job_id);
}

JobReply Client::call_stream(const JobRequest& request,
                             std::size_t chunk_bytes) {
  PERTURB_CHECK_MSG(chunk_bytes > 0, "chunk_bytes must be positive");
  PERTURB_CHECK_MSG((request.flags & kFlagPayloadIsPath) == 0,
                    "streamed jobs carry inline trace bytes, not a path");
  constexpr std::uint8_t kAnyStream =
      kFlagStreamOpen | kFlagStreamChunk | kFlagStreamClose;

  // OPEN carries the options and no payload; the trace bytes follow in
  // CHUNK frames with the final piece riding CLOSE.
  JobRequest open = request;
  open.flags = static_cast<std::uint8_t>((request.flags & ~kAnyStream) |
                                         kFlagStreamOpen);
  open.payload.clear();
  if (!send_frame(impl_->fd.get(), encode_request(open)))
    throw trace::IoError("server connection lost while opening stream");

  JobRequest piece;
  piece.job_id = request.job_id;
  piece.analyzers = request.analyzers;
  piece.repair = request.repair;
  const std::string& image = request.payload;
  std::size_t offset = 0;
  while (image.size() - offset > chunk_bytes) {
    piece.flags = kFlagStreamChunk;
    piece.payload.assign(image, offset, chunk_bytes);
    offset += chunk_bytes;
    if (!send_frame(impl_->fd.get(), encode_request(piece)))
      throw trace::IoError("server connection lost while streaming chunks");
  }
  piece.flags = kFlagStreamClose;
  piece.payload.assign(image, offset, image.size() - offset);
  if (!send_frame(impl_->fd.get(), encode_request(piece)))
    throw trace::IoError("server connection lost while closing stream");
  return recv_reply_checked(impl_->fd.get(), request.job_id);
}

}  // namespace perturb::server
