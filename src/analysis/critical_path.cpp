#include "analysis/critical_path.hpp"

#include <algorithm>
#include <limits>

#include "support/text.hpp"
#include "trace/event.hpp"

namespace perturb::analysis {

namespace {

using trace::Event;
using trace::EventKind;
using trace::SyncKey;
using trace::Trace;
using trace::TraceIndex;

constexpr std::size_t kNone = TraceIndex::npos;

/// Cross-processor critical dependency of event i (mirrors the
/// reconstruction's model): the last advance before an awaitE, the previous
/// release before a lock acquisition, the latest arrival before a barrier
/// departure, or — for a processor's first event inside a parallel-loop
/// episode — the loop's spawn.  kNone when the event has none.
std::size_t cross_dep(const TraceIndex& idx, std::size_t i) {
  const Trace& t = idx.trace();
  const Event& e = t[i];
  switch (e.kind) {
    case EventKind::kAwaitEnd: {
      const std::size_t adv =
          idx.last_advance_before(SyncKey{e.object, e.payload}, i);
      if (adv != kNone) return adv;
      break;
    }
    case EventKind::kLockAcquire: {
      const std::size_t dep = idx.lock_dep(i);
      if (dep != kNone) return dep;
      break;
    }
    case EventKind::kBarrierDepart: {
      const auto* ep = idx.barrier_episode(e.object, e.payload);
      if (ep != nullptr) {
        // Latest-by-time arrival before the depart; ties keep the earlier
        // arrival in trace order.
        std::size_t best = kNone;
        for (const std::size_t a : ep->arrivals) {
          if (a >= i) break;
          if (best == kNone || t[best].time < t[a].time) best = a;
        }
        if (best != kNone) return best;
      }
      break;
    }
    default:
      break;
  }
  return idx.fork_dep(i);
}

}  // namespace

CriticalPathStats critical_path(const TraceIndex& idx) {
  const Trace& t = idx.trace();
  CriticalPathStats stats;
  stats.time_by_proc.assign(t.info().num_procs, 0);
  if (t.empty()) return stats;

  const std::size_t n = t.size();

  // Start from the latest event and walk critical predecessors backwards.
  // Only events on the path need their dependencies, so they are resolved
  // on demand from the index rather than via a full indexing pass.
  std::size_t cur = 0;
  for (std::size_t i = 1; i < n; ++i)
    if (t[i].time >= t[cur].time) cur = i;

  std::vector<std::size_t> reversed;
  while (cur != kNone) {
    reversed.push_back(cur);
    const std::size_t same = idx.prev_on_proc(cur);
    const std::size_t cross = cross_dep(idx, cur);
    std::size_t pred = same;
    // The critical predecessor is the dependency that completed last; ties
    // resolve toward the same-processor chain.
    if (cross != kNone && (same == kNone || t[cross].time > t[same].time))
      pred = cross;
    if (pred != kNone) {
      const Tick link = t[cur].time - t[pred].time;
      stats.time_by_kind[static_cast<std::size_t>(t[cur].kind)] += link;
      if (t[cur].proc < stats.time_by_proc.size())
        stats.time_by_proc[t[cur].proc] += link;
      if (t[pred].proc != t[cur].proc) ++stats.cross_processor_links;
    }
    cur = pred;
  }
  stats.path.assign(reversed.rbegin(), reversed.rend());
  stats.length = t[stats.path.back()].time - t[stats.path.front()].time;
  return stats;
}

CriticalPathStats critical_path(const Trace& t) {
  if (t.empty()) {
    CriticalPathStats stats;
    stats.time_by_proc.assign(t.info().num_procs, 0);
    return stats;
  }
  const TraceIndex index(t);
  return critical_path(index);
}

std::string render_critical_path(const CriticalPathStats& stats) {
  std::string out = support::strf(
      "critical path: %zu events, %lld ticks, %zu cross-processor links\n",
      stats.path.size(), static_cast<long long>(stats.length),
      stats.cross_processor_links);
  for (std::size_t k = 0; k < trace::kNumEventKinds; ++k) {
    if (stats.time_by_kind[k] == 0) continue;
    const double pct =
        stats.length > 0 ? 100.0 * static_cast<double>(stats.time_by_kind[k]) /
                               static_cast<double>(stats.length)
                         : 0.0;
    out += support::strf("  %-12s %10lld  (%5.1f%%)\n",
                         trace::event_kind_name(static_cast<EventKind>(k)),
                         static_cast<long long>(stats.time_by_kind[k]), pct);
  }
  return out;
}

std::vector<Tick> path_time_by_site(const CriticalPathStats& stats,
                                    const Trace& t,
                                    const SiteRegistry& sites) {
  std::vector<Tick> total(sites.size(), 0);
  for (std::size_t k = 1; k < stats.path.size(); ++k) {
    const std::size_t cur = stats.path[k];
    const std::size_t pred = stats.path[k - 1];
    const SiteId s = sites.site_of_event(t[cur]);
    if (s != SiteRegistry::npos) total[s] += t[cur].time - t[pred].time;
  }
  return total;
}

std::string render_critical_path_sites(const CriticalPathStats& stats,
                                       const Trace& t,
                                       const SiteRegistry& sites) {
  const std::vector<Tick> total = path_time_by_site(stats, t, sites);
  std::vector<SiteId> order;
  for (SiteId s = 0; s < total.size(); ++s)
    if (total[s] > 0) order.push_back(s);
  std::stable_sort(order.begin(), order.end(),
                   [&](SiteId a, SiteId b) { return total[a] > total[b]; });
  std::string out = "Critical path by site\n";
  if (order.empty()) return out + "  (none)\n";
  for (const SiteId s : order) {
    const double pct =
        stats.length > 0 ? 100.0 * static_cast<double>(total[s]) /
                               static_cast<double>(stats.length)
                         : 0.0;
    out += support::strf("  %-12s %10lld  (%5.1f%%)\n", sites.name(s).c_str(),
                         static_cast<long long>(total[s]), pct);
  }
  return out;
}

}  // namespace perturb::analysis
