#include "analysis/critical_path.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>

#include "support/text.hpp"
#include "trace/event.hpp"

namespace perturb::analysis {

namespace {

using trace::Event;
using trace::EventKind;
using trace::ObjectId;
using trace::ProcId;
using trace::SyncKey;
using trace::SyncKeyHash;

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

}  // namespace

CriticalPathStats critical_path(const trace::Trace& t) {
  CriticalPathStats stats;
  stats.time_by_proc.assign(t.info().num_procs, 0);
  if (t.empty()) return stats;

  const std::size_t n = t.size();

  // Dependency indexing (mirrors the reconstruction's model).
  std::vector<std::size_t> prev_on_proc(n, kNone);
  std::vector<std::size_t> cross_dep(n, kNone);
  {
    std::unordered_map<ProcId, std::size_t> last_on_proc;
    std::unordered_map<SyncKey, std::size_t, SyncKeyHash> advance_of;
    std::unordered_map<ObjectId, std::size_t> last_release;
    std::map<std::pair<ObjectId, std::int64_t>, std::size_t> last_arrival;
    // A processor's first event inside a parallel loop is caused by the
    // loop's spawn (fork), so the path can trace back through the master.
    std::size_t current_loop_begin = kNone;
    std::unordered_map<ProcId, bool> joined;

    for (std::size_t i = 0; i < n; ++i) {
      const Event& e = t[i];
      if (e.kind == EventKind::kLoopBegin) {
        current_loop_begin = i;
        joined.clear();
        joined[e.proc] = true;
      } else if (e.kind == EventKind::kLoopEnd) {
        current_loop_begin = kNone;
      } else if (current_loop_begin != kNone && !joined[e.proc]) {
        joined[e.proc] = true;
        if (cross_dep[i] == kNone) cross_dep[i] = current_loop_begin;
      }
      const auto lp = last_on_proc.find(e.proc);
      if (lp != last_on_proc.end()) prev_on_proc[i] = lp->second;
      last_on_proc[e.proc] = i;

      switch (e.kind) {
        case EventKind::kAdvance:
          advance_of[{e.object, e.payload}] = i;
          break;
        case EventKind::kAwaitEnd: {
          const auto adv = advance_of.find({e.object, e.payload});
          if (adv != advance_of.end()) cross_dep[i] = adv->second;
          break;
        }
        case EventKind::kLockAcquire: {
          const auto lr = last_release.find(e.object);
          if (lr != last_release.end()) cross_dep[i] = lr->second;
          break;
        }
        case EventKind::kLockRelease:
          last_release[e.object] = i;
          break;
        case EventKind::kBarrierArrive: {
          const auto key = std::make_pair(e.object, e.payload);
          const auto it = last_arrival.find(key);
          if (it == last_arrival.end() || t[it->second].time < e.time)
            last_arrival[key] = i;
          break;
        }
        case EventKind::kBarrierDepart: {
          const auto it = last_arrival.find({e.object, e.payload});
          if (it != last_arrival.end()) cross_dep[i] = it->second;
          break;
        }
        default:
          break;
      }
    }
  }

  // Start from the latest event and walk critical predecessors backwards.
  std::size_t cur = 0;
  for (std::size_t i = 1; i < n; ++i)
    if (t[i].time >= t[cur].time) cur = i;

  std::vector<std::size_t> reversed;
  while (cur != kNone) {
    reversed.push_back(cur);
    const std::size_t same = prev_on_proc[cur];
    const std::size_t cross = cross_dep[cur];
    std::size_t pred = same;
    // The critical predecessor is the dependency that completed last; ties
    // resolve toward the same-processor chain.
    if (cross != kNone && (same == kNone || t[cross].time > t[same].time))
      pred = cross;
    if (pred != kNone) {
      const Tick link = t[cur].time - t[pred].time;
      stats.time_by_kind[static_cast<std::size_t>(t[cur].kind)] += link;
      if (t[cur].proc < stats.time_by_proc.size())
        stats.time_by_proc[t[cur].proc] += link;
      if (t[pred].proc != t[cur].proc) ++stats.cross_processor_links;
    }
    cur = pred;
  }
  stats.path.assign(reversed.rbegin(), reversed.rend());
  stats.length = t[stats.path.back()].time - t[stats.path.front()].time;
  return stats;
}

std::string render_critical_path(const CriticalPathStats& stats) {
  std::string out = support::strf(
      "critical path: %zu events, %lld ticks, %zu cross-processor links\n",
      stats.path.size(), static_cast<long long>(stats.length),
      stats.cross_processor_links);
  for (std::size_t k = 0; k < trace::kNumEventKinds; ++k) {
    if (stats.time_by_kind[k] == 0) continue;
    const double pct = stats.length > 0
                           ? 100.0 * static_cast<double>(stats.time_by_kind[k]) /
                                 static_cast<double>(stats.length)
                           : 0.0;
    out += support::strf("  %-12s %10lld  (%5.1f%%)\n",
                         trace::event_kind_name(static_cast<EventKind>(k)),
                         static_cast<long long>(stats.time_by_kind[k]), pct);
  }
  return out;
}

}  // namespace perturb::analysis
