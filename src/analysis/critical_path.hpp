// Critical-path analysis of event traces.
//
// The makespan of a parallel execution is realized by a chain of dependent
// events: each event's *critical predecessor* is whichever dependency
// completed last — the same-processor predecessor, the advance an awaitE
// waited for, the release a lock acquisition waited for, or the last arrival
// a barrier departure waited for.  Walking that chain back from the final
// event yields the critical path; attributing each link's duration to the
// kind of event it ends at shows where the bottleneck time went (compute,
// synchronization waiting, barrier skew).
//
// Works on any trace — actual, measured, or approximated — so it can show
// *how instrumentation moved the critical path* (e.g. loop 17's path
// shifting from compute onto the advance/await chain when probes inflate the
// guarded region).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/sites.hpp"
#include "trace/index.hpp"
#include "trace/trace.hpp"

namespace perturb::analysis {

using trace::Tick;

struct CriticalPathStats {
  /// Event indices (into the analyzed trace) along the path, start → end.
  std::vector<std::size_t> path;
  /// Total path duration: time of the last event minus time of the first.
  Tick length = 0;
  /// Path time attributed to the kind of the event each link arrives at.
  std::array<Tick, trace::kNumEventKinds> time_by_kind{};
  /// Path time spent on each processor (attributed to the arriving event's
  /// processor).
  std::vector<Tick> time_by_proc;
  /// Number of links that cross processors (dependency hand-offs).
  std::size_t cross_processor_links = 0;
};

/// Computes the critical path ending at the trace's last event.  The trace
/// must be happened-before consistent; ties between candidate predecessors
/// resolve toward the same-processor chain.
CriticalPathStats critical_path(const trace::Trace& trace);

/// Same analysis over a pre-built index; dependencies of path events are
/// resolved on demand instead of via a full indexing pass.
CriticalPathStats critical_path(const trace::TraceIndex& index);

/// Renders a per-kind breakdown table of the path time.
std::string render_critical_path(const CriticalPathStats& stats);

/// Path time attributed to the interned site of the event each link arrives
/// at, indexed by SiteId (registry order).  Links arriving at events that
/// name no region (program markers, user events) are dropped.
std::vector<Tick> path_time_by_site(const CriticalPathStats& stats,
                                    const trace::Trace& trace,
                                    const SiteRegistry& sites);

/// Renders the nonzero per-site path-time totals, worst first, using the
/// registry's canonical names (shared with waiting and what-if reports).
std::string render_critical_path_sites(const CriticalPathStats& stats,
                                       const trace::Trace& trace,
                                       const SiteRegistry& sites);

}  // namespace perturb::analysis
