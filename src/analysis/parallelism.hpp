// Parallelism-over-time analysis (§5.3, Figure 5).
//
// A processor is *active* between its first and last trace event and *useful*
// while active and not inside a synchronization-waiting interval.  The
// parallelism level at time t is the number of useful processors; the paper
// reports its time history and the average over the parallel region
// (loop 17: 7.5 on 8 processors).
#pragma once

#include <utility>
#include <vector>

#include "analysis/waiting.hpp"
#include "trace/trace.hpp"

namespace perturb::analysis {

struct ParallelismProfile {
  /// Step function: (time, level) change points, level held until the next.
  std::vector<std::pair<Tick, double>> steps;
  /// Time-weighted average level over the whole trace span.
  double average = 0.0;
  /// Average over the parallel region only (level >= 2), the figure the
  /// paper quotes; 0 when the trace never goes parallel.
  double average_parallel = 0.0;
  Tick span_begin = 0;
  Tick span_end = 0;
};

ParallelismProfile parallelism_profile(const trace::Trace& trace,
                                       const WaitClassifier& classifier);

/// Same analysis over a pre-built index of the trace.
ParallelismProfile parallelism_profile(const trace::TraceIndex& index,
                                       const WaitClassifier& classifier);

}  // namespace perturb::analysis
