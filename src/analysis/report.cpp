#include "analysis/report.hpp"

#include "analysis/critical_path.hpp"
#include "analysis/parallelism.hpp"
#include "analysis/sites.hpp"
#include "analysis/timeline.hpp"
#include <algorithm>

#include "support/stats.hpp"
#include "support/text.hpp"

namespace perturb::analysis {

std::string render_report(const trace::Trace& approx,
                          const core::ApproximationQuality* quality,
                          const ReportOptions& options) {
  std::string out;
  out += support::strf("=== performance report: %s ===\n",
                       approx.info().name.c_str());
  out += support::strf("events: %zu   processors: %u   total time: %lld\n",
                       approx.size(), approx.info().num_procs,
                       static_cast<long long>(approx.total_time()));
  if (quality) {
    out += support::strf(
        "recovery: measured %.2fx of actual, approximated %.3fx "
        "(%+.1f%% error)\n",
        quality->measured_over_actual, quality->approx_over_actual,
        quality->percent_error);
    out += support::strf(
        "per-event |error|: mean %.1f, median %.1f, p95 %.1f ticks over %zu "
        "events\n",
        quality->mean_abs_event_error, quality->p50_event_error,
        quality->p95_event_error, quality->matched_events);
  }

  // One index + site registry shared by every per-region section, so the
  // same region is named identically in waiting and critical-path output.
  const trace::TraceIndex index(approx);
  const SiteRegistry sites(index);

  const auto waits = waiting_analysis(index, options.classifier);
  out += "\n-- waiting --\n";
  out += render_waiting_table(waits);
  if (!waits.intervals.empty()) out += render_waiting_by_site(waits, sites);
  if (!waits.intervals.empty()) {
    // Duration histogram: distinguishes many short stalls from few long ones.
    Tick longest = 0;
    for (const auto& w : waits.intervals)
      longest = std::max(longest, w.end - w.begin);
    support::Histogram hist(0.0, static_cast<double>(longest) + 1.0, 8);
    for (const auto& w : waits.intervals)
      hist.add(static_cast<double>(w.end - w.begin));
    out += support::strf("wait durations (%zu intervals):", 
                         waits.intervals.size());
    for (std::size_t b = 0; b < hist.bins(); ++b)
      out += support::strf(" [%.0f,%.0f):%zu", hist.bin_lo(b), hist.bin_hi(b),
                           hist.bin_count(b));
    out += '\n';
  }
  if (options.include_timeline && !waits.intervals.empty())
    out += render_waiting_timeline(approx, waits, options.timeline_width);

  const auto profile = parallelism_profile(approx, options.classifier);
  out += support::strf(
      "\n-- parallelism --\naverage %.2f (parallel region %.2f)\n",
      profile.average, profile.average_parallel);
  if (options.include_parallelism_plot && !profile.steps.empty())
    out += render_parallelism_plot(approx, profile, options.timeline_width);

  if (options.include_critical_path) {
    const auto cp = critical_path(index);
    out += "\n-- critical path --\n";
    out += render_critical_path(cp);
    out += render_critical_path_sites(cp, approx, sites);
  }
  return out;
}

}  // namespace perturb::analysis
