// Waiting-time analysis (§5.3, Table 3, Figure 4).
//
// Extracts per-processor synchronization-waiting intervals from a trace
// (actual, measured, or approximated — the paper computes them from the
// event-based approximation) and summarizes waiting as a percentage of total
// execution time per processor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/index.hpp"
#include "trace/trace.hpp"

namespace perturb::analysis {

using trace::Tick;

/// Costs used to distinguish waiting from mere synchronization processing:
/// an await (lock, barrier) is classified as *waiting* when its observed
/// duration exceeds the no-wait processing cost by more than `tolerance`.
struct WaitClassifier {
  std::int64_t await_nowait = 0;   ///< awaitE-awaitB cost without waiting
  std::int64_t lock_acquire = 0;   ///< uncontended acquire cost
  std::int64_t sem_acquire = 0;    ///< uncontended semaphore P() cost
  std::int64_t barrier_depart = 0; ///< depart-arrive cost when last to arrive
  std::int64_t tolerance = 0;
};

struct WaitInterval {
  trace::ProcId proc = 0;
  Tick begin = 0;
  Tick end = 0;
  trace::EventKind cause = trace::EventKind::kAwaitEnd;
};

struct WaitingStats {
  std::vector<Tick> waiting_time;       ///< per processor
  std::vector<double> waiting_percent;  ///< per processor, of total time
  Tick total_time = 0;
  std::vector<WaitInterval> intervals;  ///< in trace order
};

WaitingStats waiting_analysis(const trace::Trace& trace,
                              const WaitClassifier& classifier);

/// Same analysis over a pre-built index of the trace.
WaitingStats waiting_analysis(const trace::TraceIndex& index,
                              const WaitClassifier& classifier);

/// Renders the per-processor waiting percentages as a one-row table
/// (Table 3's layout).
std::string render_waiting_table(const WaitingStats& stats);

}  // namespace perturb::analysis
