// Waiting-time analysis (§5.3, Table 3, Figure 4).
//
// Extracts per-processor synchronization-waiting intervals from a trace
// (actual, measured, or approximated — the paper computes them from the
// event-based approximation) and summarizes waiting as a percentage of total
// execution time per processor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/sites.hpp"
#include "trace/index.hpp"
#include "trace/trace.hpp"

namespace perturb::analysis {

using trace::Tick;

/// Costs used to distinguish waiting from mere synchronization processing:
/// an await (lock, barrier) is classified as *waiting* when its observed
/// duration exceeds the no-wait processing cost by more than `tolerance`.
struct WaitClassifier {
  std::int64_t await_nowait = 0;   ///< awaitE-awaitB cost without waiting
  std::int64_t lock_acquire = 0;   ///< uncontended acquire cost
  std::int64_t sem_acquire = 0;    ///< uncontended semaphore P() cost
  std::int64_t barrier_depart = 0; ///< depart-arrive cost when last to arrive
  std::int64_t tolerance = 0;
};

struct WaitInterval {
  trace::ProcId proc = 0;
  Tick begin = 0;
  Tick end = 0;
  trace::EventKind cause = trace::EventKind::kAwaitEnd;
  /// Synchronization object waited on (sync var, lock, semaphore, barrier);
  /// names the interval's region through the shared SiteRegistry.
  trace::ObjectId object = 0;
};

struct WaitingStats {
  std::vector<Tick> waiting_time;       ///< per processor
  std::vector<double> waiting_percent;  ///< per processor, of total time
  Tick total_time = 0;
  std::vector<WaitInterval> intervals;  ///< in trace order
};

WaitingStats waiting_analysis(const trace::Trace& trace,
                              const WaitClassifier& classifier);

/// Same analysis over a pre-built index of the trace.
WaitingStats waiting_analysis(const trace::TraceIndex& index,
                              const WaitClassifier& classifier);

/// Renders the per-processor waiting percentages as a one-row table
/// (Table 3's layout).
std::string render_waiting_table(const WaitingStats& stats);

/// Waiting time attributed to the interned site of each interval's
/// synchronization object, indexed by SiteId (registry order).
std::vector<Tick> waiting_by_site(const WaitingStats& stats,
                                  const SiteRegistry& sites);

/// Renders the nonzero per-site waiting totals, worst first, using the
/// registry's canonical names (shared with critical-path and what-if
/// reports).
std::string render_waiting_by_site(const WaitingStats& stats,
                                   const SiteRegistry& sites);

}  // namespace perturb::analysis
