#include "analysis/parallelism.hpp"

#include <algorithm>
#include <map>

namespace perturb::analysis {

ParallelismProfile parallelism_profile(const trace::TraceIndex& index,
                                       const WaitClassifier& classifier) {
  const trace::Trace& t = index.trace();
  ParallelismProfile profile;
  if (t.empty()) return profile;

  // Active spans per processor: first event (trace order) to latest time.
  struct Span {
    Tick first = 0;
    Tick last = 0;
    bool seen = false;
  };
  std::vector<Span> spans(t.info().num_procs);
  for (std::size_t p = 0; p < spans.size() && p < index.num_procs(); ++p) {
    const auto& evs = index.events_of(static_cast<trace::ProcId>(p));
    if (evs.empty()) continue;
    Span& s = spans[p];
    s.seen = true;
    s.first = t[evs.front()].time;
    s.last = s.first;
    for (const std::size_t i : evs) s.last = std::max(s.last, t[i].time);
  }

  // Delta sweep: +1 at active begin, -1 at active end; -1/+1 around waiting.
  std::map<Tick, int> deltas;
  for (const Span& s : spans) {
    if (!s.seen || s.last <= s.first) continue;
    deltas[s.first] += 1;
    deltas[s.last] -= 1;
  }
  const WaitingStats waits = waiting_analysis(index, classifier);
  for (const auto& w : waits.intervals) {
    if (w.proc >= spans.size() || !spans[w.proc].seen) continue;
    const Tick b = std::clamp(w.begin, spans[w.proc].first, spans[w.proc].last);
    const Tick e = std::clamp(w.end, spans[w.proc].first, spans[w.proc].last);
    if (e <= b) continue;
    deltas[b] -= 1;
    deltas[e] += 1;
  }
  if (deltas.empty()) return profile;

  profile.span_begin = deltas.begin()->first;
  profile.span_end = deltas.rbegin()->first;

  int level = 0;
  Tick prev = profile.span_begin;
  double integral = 0.0;
  double parallel_integral = 0.0;
  Tick parallel_span = 0;
  for (const auto& [time, delta] : deltas) {
    const Tick dt = time - prev;
    if (dt > 0) {
      integral += static_cast<double>(level) * static_cast<double>(dt);
      if (level >= 2) {
        parallel_integral += static_cast<double>(level) *
                             static_cast<double>(dt);
        parallel_span += dt;
      }
    }
    level += delta;
    profile.steps.emplace_back(time, static_cast<double>(level));
    prev = time;
  }
  const Tick span = profile.span_end - profile.span_begin;
  if (span > 0) profile.average = integral / static_cast<double>(span);
  if (parallel_span > 0)
    profile.average_parallel =
        parallel_integral / static_cast<double>(parallel_span);
  return profile;
}

ParallelismProfile parallelism_profile(const trace::Trace& t,
                                       const WaitClassifier& classifier) {
  if (t.empty()) return {};
  const trace::TraceIndex index(t);
  return parallelism_profile(index, classifier);
}

}  // namespace perturb::analysis
