#include "analysis/sites.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/text.hpp"
#include "trace/trace.hpp"

namespace perturb::analysis {

namespace {

using trace::Event;
using trace::EventKind;

/// Classifies one event into the region class it names; false when the event
/// names no region.  The single source of the event → site mapping: the
/// registry builder and site_of_event must agree event for event.
bool classify(const Event& e, Site& out) noexcept {
  switch (e.kind) {
    case EventKind::kStmtEnter:
    case EventKind::kStmtExit:
      if (e.id == 0) return false;  // synthesized/unknown provenance
      out = {SiteKind::kStatement, e.id};
      return true;
    case EventKind::kLoopBegin:
    case EventKind::kLoopEnd:
    case EventKind::kIterBegin:
    case EventKind::kIterEnd:
      out = {SiteKind::kLoop, e.object};
      return true;
    case EventKind::kLockAcquire:
    case EventKind::kLockRelease:
      out = {SiteKind::kLock, e.object};
      return true;
    case EventKind::kAdvance:
    case EventKind::kAwaitBegin:
    case EventKind::kAwaitEnd:
      out = {SiteKind::kSync, e.object};
      return true;
    case EventKind::kSemAcquire:
    case EventKind::kSemRelease:
      out = {SiteKind::kSemaphore, e.object};
      return true;
    case EventKind::kBarrierArrive:
    case EventKind::kBarrierDepart:
      out = {SiteKind::kBarrier, e.object};
      return true;
    default:
      return false;
  }
}

bool site_less(const Site& a, const Site& b) noexcept {
  if (a.kind != b.kind) return a.kind < b.kind;
  return a.id < b.id;
}

}  // namespace

const char* site_kind_name(SiteKind kind) noexcept {
  switch (kind) {
    case SiteKind::kStatement:
      return "stmt";
    case SiteKind::kLoop:
      return "loop";
    case SiteKind::kLock:
      return "lock";
    case SiteKind::kSync:
      return "sync";
    case SiteKind::kSemaphore:
      return "sem";
    case SiteKind::kBarrier:
      return "barrier";
  }
  return "?";
}

SiteRegistry::SiteRegistry(const trace::TraceIndex& index) {
  const trace::Trace& t = index.trace();
  sites_.reserve(64);
  Site site;
  for (const Event& e : t)
    if (classify(e, site)) sites_.push_back(site);
  std::sort(sites_.begin(), sites_.end(), site_less);
  sites_.erase(std::unique(sites_.begin(), sites_.end()), sites_.end());
  names_.reserve(sites_.size());
  for (const Site& s : sites_)
    names_.push_back(
        support::strf("%s#%u", site_kind_name(s.kind), s.id));
}

SiteId SiteRegistry::find(Site site) const noexcept {
  const auto it =
      std::lower_bound(sites_.begin(), sites_.end(), site, site_less);
  if (it == sites_.end() || !(*it == site)) return npos;
  return static_cast<SiteId>(it - sites_.begin());
}

std::optional<SiteId> SiteRegistry::parse(std::string_view name) const {
  const std::size_t hash = name.find('#');
  if (hash == std::string_view::npos || hash + 1 >= name.size())
    return std::nullopt;
  const std::string_view prefix = name.substr(0, hash);
  SiteKind kind;
  if (prefix == "stmt") {
    kind = SiteKind::kStatement;
  } else if (prefix == "loop") {
    kind = SiteKind::kLoop;
  } else if (prefix == "lock") {
    kind = SiteKind::kLock;
  } else if (prefix == "sync") {
    kind = SiteKind::kSync;
  } else if (prefix == "sem") {
    kind = SiteKind::kSemaphore;
  } else if (prefix == "barrier") {
    kind = SiteKind::kBarrier;
  } else {
    return std::nullopt;
  }
  // Accumulate in 64 bits and reject anything above UINT32_MAX: a wrapped
  // id ("stmt#4294967297" → stmt#1) would silently resolve to the wrong
  // site.  The length cap bounds the loop on absurd digit strings (10
  // digits already covers every representable id).
  const std::string_view digits = name.substr(hash + 1);
  if (digits.size() > 10) return std::nullopt;
  std::uint64_t id = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    id = id * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (id > 0xffffffffULL) return std::nullopt;
  return find({kind, static_cast<std::uint32_t>(id)});
}

SiteId SiteRegistry::site_of_event(
    const trace::Event& e) const noexcept {
  Site site;
  if (!classify(e, site)) return npos;
  return find(site);
}

}  // namespace perturb::analysis
