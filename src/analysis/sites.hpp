// Shared site registry: one canonical name per code region.
//
// Every report that attributes time to a code region — critical-path
// breakdowns, per-site waiting, what-if rankings — needs to name the region
// it is talking about.  Events only carry numeric identities (the statement
// site id of stmt events, the object id of synchronization events), and each
// report used to format those numbers independently, so the same region
// could appear as three different strings.  The registry interns every
// (kind, numeric id) region of a trace once, in a deterministic order, and
// hands out one canonical name per region ("stmt#5", "loop#2", "lock#1",
// "sync#3", "sem#4", "barrier#6") that every consumer shares.
//
// Site ids are dense indices into the registry (stable for a given trace),
// so per-site accumulators are plain vectors.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/event.hpp"
#include "trace/index.hpp"

namespace perturb::analysis {

/// The region classes a trace can name.
enum class SiteKind : std::uint8_t {
  kStatement,  ///< an instrumented statement (EventId of stmt events)
  kLoop,       ///< a parallel loop body (loop marker object)
  kLock,       ///< a lock-guarded critical section (lock object)
  kSync,       ///< an advance/await synchronization variable (sync object)
  kSemaphore,  ///< a counting semaphore (sem object)
  kBarrier,    ///< a barrier (barrier object)
};

constexpr std::size_t kNumSiteKinds = 6;

/// Canonical name prefix of a kind ("stmt", "loop", ...).
const char* site_kind_name(SiteKind kind) noexcept;

/// One interned region: its class plus the numeric identity events carry
/// (EventId for statements, ObjectId for everything else).
struct Site {
  SiteKind kind = SiteKind::kStatement;
  std::uint32_t id = 0;

  friend bool operator==(const Site&, const Site&) = default;
};

/// Dense site index within a registry.
using SiteId = std::uint32_t;

class SiteRegistry {
 public:
  /// "No site": returned by lookups that can miss.
  static constexpr SiteId npos = static_cast<SiteId>(-1);

  SiteRegistry() = default;

  /// Interns every region the indexed trace mentions: statement ids of
  /// stmt events, loop objects of loop/iteration markers, lock objects,
  /// advance/await sync variables, semaphore and barrier objects.  Sites
  /// are ordered by (kind, numeric id), so equal traces produce equal
  /// registries.
  explicit SiteRegistry(const trace::TraceIndex& index);

  std::size_t size() const noexcept { return sites_.size(); }
  const Site& site(SiteId s) const { return sites_[s]; }
  const std::string& name(SiteId s) const { return names_[s]; }

  /// Dense id of an interned region; npos when the trace never mentions it.
  SiteId find(Site site) const noexcept;
  /// Parses a canonical name ("stmt#5"); npos for unknown regions and
  /// std::nullopt for strings that are not canonical site names at all.
  std::optional<SiteId> parse(std::string_view name) const;

  /// The region an event belongs to for attribution purposes: stmt events
  /// map to their statement site, sync/loop-marker events to their object's
  /// site; npos for events that name no region (program markers, user
  /// events, events synthesized by repair with id 0).
  SiteId site_of_event(const trace::Event& e) const noexcept;

 private:
  std::vector<Site> sites_;         ///< sorted by (kind, id)
  std::vector<std::string> names_;  ///< canonical names, same order
};

}  // namespace perturb::analysis
