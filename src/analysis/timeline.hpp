// Figure 4 / Figure 5 renderings: per-processor waiting timelines and the
// parallelism step plot, in both ASCII and CSV forms.
#pragma once

#include <ostream>
#include <string>

#include "analysis/parallelism.hpp"
#include "analysis/waiting.hpp"

namespace perturb::analysis {

/// ASCII timeline with one row per processor; '#' cells mark waiting
/// intervals (Figure 4's "waiting" rows).  Times are rescaled to
/// microseconds using the trace's ticks_per_us when `in_microseconds`.
std::string render_waiting_timeline(const trace::Trace& trace,
                                    const WaitingStats& stats,
                                    std::size_t width = 80,
                                    bool in_microseconds = true);

/// ASCII step plot of the parallelism level over time (Figure 5).
std::string render_parallelism_plot(const trace::Trace& trace,
                                    const ParallelismProfile& profile,
                                    std::size_t width = 80,
                                    std::size_t height = 8,
                                    bool in_microseconds = true);

/// CSV dumps of the same series: (proc,begin,end,cause) and (time,level).
void write_waiting_csv(std::ostream& out, const WaitingStats& stats);
void write_parallelism_csv(std::ostream& out,
                           const ParallelismProfile& profile);

}  // namespace perturb::analysis
