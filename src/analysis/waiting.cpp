#include "analysis/waiting.hpp"

#include <map>
#include <unordered_map>

#include "support/text.hpp"

namespace perturb::analysis {

using trace::Event;
using trace::EventKind;
using trace::ProcId;
using trace::SyncKey;

WaitingStats waiting_analysis(const trace::Trace& t,
                              const WaitClassifier& c) {
  WaitingStats stats;
  stats.waiting_time.assign(t.info().num_procs, 0);
  stats.waiting_percent.assign(t.info().num_procs, 0.0);
  stats.total_time = t.total_time();

  // Per-processor previous event time (for lock-wait attribution) and the
  // per-(key, proc) awaitB / barrier-arrive times.
  std::unordered_map<ProcId, Tick> prev_time;
  std::map<std::pair<SyncKey, ProcId>, Tick> await_b;
  std::map<std::pair<SyncKey, ProcId>, Tick> arrive;

  auto add = [&](ProcId proc, Tick begin, Tick end, EventKind cause) {
    if (end <= begin) return;
    if (proc < stats.waiting_time.size())
      stats.waiting_time[proc] += end - begin;
    stats.intervals.push_back({proc, begin, end, cause});
  };

  for (const Event& e : t) {
    const SyncKey key{e.object, e.payload};
    switch (e.kind) {
      case EventKind::kAwaitBegin:
        await_b[{key, e.proc}] = e.time;
        break;
      case EventKind::kAwaitEnd: {
        const auto it = await_b.find({key, e.proc});
        if (it != await_b.end()) {
          const Tick duration = e.time - it->second;
          if (duration > c.await_nowait + c.tolerance)
            add(e.proc, it->second, e.time, EventKind::kAwaitEnd);
          await_b.erase(it);
        }
        break;
      }
      case EventKind::kLockAcquire: {
        const auto pt = prev_time.find(e.proc);
        if (pt != prev_time.end()) {
          const Tick duration = e.time - pt->second;
          if (duration > c.lock_acquire + c.tolerance)
            add(e.proc, pt->second, e.time, EventKind::kLockAcquire);
        }
        break;
      }
      case EventKind::kSemAcquire: {
        const auto pt = prev_time.find(e.proc);
        if (pt != prev_time.end()) {
          const Tick duration = e.time - pt->second;
          if (duration > c.sem_acquire + c.tolerance)
            add(e.proc, pt->second, e.time, EventKind::kSemAcquire);
        }
        break;
      }
      case EventKind::kBarrierArrive:
        arrive[{key, e.proc}] = e.time;
        break;
      case EventKind::kBarrierDepart: {
        const auto it = arrive.find({key, e.proc});
        if (it != arrive.end()) {
          const Tick duration = e.time - it->second;
          if (duration > c.barrier_depart + c.tolerance)
            add(e.proc, it->second, e.time, EventKind::kBarrierDepart);
          arrive.erase(it);
        }
        break;
      }
      default:
        break;
    }
    prev_time[e.proc] = e.time;
  }

  if (stats.total_time > 0) {
    for (std::size_t p = 0; p < stats.waiting_time.size(); ++p)
      stats.waiting_percent[p] = 100.0 *
                                 static_cast<double>(stats.waiting_time[p]) /
                                 static_cast<double>(stats.total_time);
  }
  return stats;
}

std::string render_waiting_table(const WaitingStats& stats) {
  std::string head = "Processor ";
  std::string row = "Waiting   ";
  for (std::size_t p = 0; p < stats.waiting_percent.size(); ++p) {
    head += support::strf("%8zu", p);
    row += support::strf("%7.2f%%", stats.waiting_percent[p]);
  }
  return head + "\n" + row + "\n";
}

}  // namespace perturb::analysis
