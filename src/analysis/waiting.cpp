#include "analysis/waiting.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "support/text.hpp"

namespace perturb::analysis {

using trace::Event;
using trace::EventKind;
using trace::ProcId;
using trace::SyncKey;
using trace::TraceIndex;

WaitingStats waiting_analysis(const TraceIndex& index,
                              const WaitClassifier& c) {
  const trace::Trace& t = index.trace();
  WaitingStats stats;
  stats.waiting_time.assign(t.info().num_procs, 0);
  stats.waiting_percent.assign(t.info().num_procs, 0.0);
  stats.total_time = t.total_time();

  // A begin-marker (awaitB, barrier arrive) is consumed by the first end
  // event that matches it; subsequent ends without a fresh begin find
  // nothing.  The index supplies the candidates, this map the consumption.
  std::map<std::pair<SyncKey, ProcId>, std::size_t> consumed;

  auto add = [&](ProcId proc, Tick begin, Tick end, EventKind cause,
                 trace::ObjectId object) {
    if (end <= begin) return;
    if (proc < stats.waiting_time.size())
      stats.waiting_time[proc] += end - begin;
    stats.intervals.push_back({proc, begin, end, cause, object});
  };

  // Latest unconsumed begin-marker index for (key, proc) before trace
  // index i; TraceIndex::npos when none.  Marks the result consumed.
  auto take_begin = [&](SyncKey key, ProcId proc,
                        std::size_t candidate) -> std::size_t {
    if (candidate == TraceIndex::npos) return TraceIndex::npos;
    const auto [it, inserted] =
        consumed.insert({{key, proc}, candidate});
    if (!inserted) {
      if (it->second >= candidate) return TraceIndex::npos;
      it->second = candidate;
    }
    return candidate;
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Event& e = t[i];
    const SyncKey key{e.object, e.payload};
    switch (e.kind) {
      case EventKind::kAwaitEnd: {
        const std::size_t ab = take_begin(
            key, e.proc, index.last_await_begin_before(key, e.proc, i));
        if (ab != TraceIndex::npos) {
          const Tick begin = t[ab].time;
          if (e.time - begin > c.await_nowait + c.tolerance)
            add(e.proc, begin, e.time, EventKind::kAwaitEnd, e.object);
        }
        break;
      }
      case EventKind::kLockAcquire: {
        const std::size_t prev = index.prev_on_proc(i);
        if (prev != TraceIndex::npos) {
          const Tick begin = t[prev].time;
          if (e.time - begin > c.lock_acquire + c.tolerance)
            add(e.proc, begin, e.time, EventKind::kLockAcquire, e.object);
        }
        break;
      }
      case EventKind::kSemAcquire: {
        const std::size_t prev = index.prev_on_proc(i);
        if (prev != TraceIndex::npos) {
          const Tick begin = t[prev].time;
          if (e.time - begin > c.sem_acquire + c.tolerance)
            add(e.proc, begin, e.time, EventKind::kSemAcquire, e.object);
        }
        break;
      }
      case EventKind::kBarrierDepart: {
        // Latest same-processor arrival in this episode before the depart.
        const auto* ep = index.barrier_episode(e.object, e.payload);
        std::size_t arrive = TraceIndex::npos;
        if (ep != nullptr) {
          for (const std::size_t a : ep->arrivals) {
            if (a >= i) break;
            if (t[a].proc == e.proc) arrive = a;
          }
        }
        arrive = take_begin(key, e.proc, arrive);
        if (arrive != TraceIndex::npos) {
          const Tick begin = t[arrive].time;
          if (e.time - begin > c.barrier_depart + c.tolerance)
            add(e.proc, begin, e.time, EventKind::kBarrierDepart, e.object);
        }
        break;
      }
      default:
        break;
    }
  }

  if (stats.total_time > 0) {
    for (std::size_t p = 0; p < stats.waiting_time.size(); ++p)
      stats.waiting_percent[p] = 100.0 *
                                 static_cast<double>(stats.waiting_time[p]) /
                                 static_cast<double>(stats.total_time);
  }
  return stats;
}

WaitingStats waiting_analysis(const trace::Trace& t,
                              const WaitClassifier& c) {
  const TraceIndex index(t);
  return waiting_analysis(index, c);
}

std::vector<Tick> waiting_by_site(const WaitingStats& stats,
                                  const SiteRegistry& sites) {
  std::vector<Tick> total(sites.size(), 0);
  for (const WaitInterval& w : stats.intervals) {
    Event probe;
    probe.object = w.object;
    probe.kind = w.cause;
    const SiteId s = sites.site_of_event(probe);
    if (s != SiteRegistry::npos) total[s] += w.end - w.begin;
  }
  return total;
}

std::string render_waiting_by_site(const WaitingStats& stats,
                                   const SiteRegistry& sites) {
  const std::vector<Tick> total = waiting_by_site(stats, sites);
  std::vector<SiteId> order;
  for (SiteId s = 0; s < total.size(); ++s)
    if (total[s] > 0) order.push_back(s);
  std::stable_sort(order.begin(), order.end(),
                   [&](SiteId a, SiteId b) { return total[a] > total[b]; });
  std::string out = "Waiting by site\n";
  if (order.empty()) return out + "  (none)\n";
  for (const SiteId s : order)
    out += support::strf("  %-12s %12lld\n", sites.name(s).c_str(),
                         static_cast<long long>(total[s]));
  return out;
}

std::string render_waiting_table(const WaitingStats& stats) {
  std::string head = "Processor ";
  std::string row = "Waiting   ";
  for (std::size_t p = 0; p < stats.waiting_percent.size(); ++p) {
    head += support::strf("%8zu", p);
    row += support::strf("%7.2f%%", stats.waiting_percent[p]);
  }
  return head + "\n" + row + "\n";
}

}  // namespace perturb::analysis
