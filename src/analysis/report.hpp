// Combined loop performance report: the §5.3-style summary the paper derives
// from an event-based approximation — execution-time recovery, waiting,
// parallelism, and critical-path breakdown in one text block.
#pragma once

#include <string>

#include "analysis/waiting.hpp"
#include "core/quality.hpp"
#include "trace/trace.hpp"

namespace perturb::analysis {

struct ReportOptions {
  WaitClassifier classifier;  ///< thresholds for waiting classification
  std::size_t timeline_width = 80;
  bool include_timeline = true;
  bool include_parallelism_plot = true;
  bool include_critical_path = true;
};

/// Renders a full performance report of `approx` (typically the event-based
/// approximation).  When `quality` is non-null its recovery ratios are
/// included at the top.
std::string render_report(const trace::Trace& approx,
                          const core::ApproximationQuality* quality,
                          const ReportOptions& options);

}  // namespace perturb::analysis
