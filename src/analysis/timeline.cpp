#include "analysis/timeline.hpp"

#include <algorithm>
#include <cmath>

#include "support/ascii_chart.hpp"
#include "support/csv.hpp"
#include "support/text.hpp"
#include "trace/event.hpp"

namespace perturb::analysis {

namespace {

std::int64_t to_us(Tick t, double ticks_per_us, bool convert) {
  if (!convert || ticks_per_us <= 0.0) return t;
  return static_cast<std::int64_t>(
      std::llround(static_cast<double>(t) / ticks_per_us));
}

}  // namespace

std::string render_waiting_timeline(const trace::Trace& t,
                                    const WaitingStats& stats,
                                    std::size_t width,
                                    bool in_microseconds) {
  const double scale = t.info().ticks_per_us;
  const std::int64_t t0 = to_us(t.start_time(), scale, in_microseconds);
  std::int64_t t1 = to_us(t.end_time(), scale, in_microseconds);
  if (t1 <= t0) t1 = t0 + 1;

  std::vector<support::TimelineRow> rows(t.info().num_procs);
  for (std::size_t p = 0; p < rows.size(); ++p)
    rows[p].label = support::strf("Processor %zu waiting", p);
  for (const auto& w : stats.intervals) {
    if (w.proc >= rows.size()) continue;
    rows[w.proc].intervals.push_back({to_us(w.begin, scale, in_microseconds),
                                      to_us(w.end, scale, in_microseconds)});
  }
  std::string out = support::render_timeline(rows, t0, t1, width);
  out += in_microseconds ? "Time (microseconds)\n" : "Time (ticks)\n";
  return out;
}

std::string render_parallelism_plot(const trace::Trace& t,
                                    const ParallelismProfile& profile,
                                    std::size_t width, std::size_t height,
                                    bool in_microseconds) {
  const double scale = t.info().ticks_per_us;
  std::vector<std::pair<std::int64_t, double>> steps;
  steps.reserve(profile.steps.size());
  double vmax = 1.0;
  for (const auto& [time, level] : profile.steps) {
    steps.emplace_back(to_us(time, scale, in_microseconds), level);
    vmax = std::max(vmax, level);
  }
  const std::int64_t t0 = to_us(profile.span_begin, scale, in_microseconds);
  std::int64_t t1 = to_us(profile.span_end, scale, in_microseconds);
  if (t1 <= t0) t1 = t0 + 1;
  std::string out =
      support::render_step_plot(steps, t0, t1, vmax, width, height);
  out += in_microseconds ? "Time (microseconds)\n" : "Time (ticks)\n";
  return out;
}

void write_waiting_csv(std::ostream& out, const WaitingStats& stats) {
  support::CsvWriter csv(out);
  csv.rowv("proc", "begin", "end", "cause");
  for (const auto& w : stats.intervals)
    csv.rowv(static_cast<unsigned>(w.proc), static_cast<long long>(w.begin),
             static_cast<long long>(w.end), trace::event_kind_name(w.cause));
}

void write_parallelism_csv(std::ostream& out,
                           const ParallelismProfile& profile) {
  support::CsvWriter csv(out);
  csv.rowv("time", "level");
  for (const auto& [time, level] : profile.steps)
    csv.rowv(static_cast<long long>(time), level);
}

}  // namespace perturb::analysis
