// Instrumentation budgeting: choose which statement sites to instrument
// under an event-count budget.
//
// The Instrumentation Uncertainty Principle (§1) forces a measurement to
// trade volume against accuracy.  Given a program and a target event count,
// this planner dry-runs the *uninstrumented* program once, counts how many
// events each statement site would generate, and selects sites greedily —
// cheapest (least-executed) first, so the measurement covers as many
// distinct program locations as the budget allows.  The result is a site
// filter for an InstrumentationPlan.
#pragma once

#include <cstdint>
#include <vector>

#include "instr/plan.hpp"
#include "sim/engine.hpp"
#include "sim/ir.hpp"
#include "sim/machine.hpp"

namespace perturb::instr {

struct SiteProfile {
  trace::EventId site = 0;
  std::uint64_t events = 0;  ///< statement events the site generates per run
};

struct BudgetPlan {
  /// Site filter (indexed by site id) enabling the selected sites.
  std::vector<bool> enabled;
  /// Profiles of all statement sites, most frequent first.
  std::vector<SiteProfile> profiles;
  /// Statement events the selected sites will generate.
  std::uint64_t selected_events = 0;
};

/// Profiles `program` on `machine` (one uninstrumented run) and selects the
/// largest set of statement sites whose combined event count fits
/// `max_statement_events`, preferring less-frequent sites (breadth of
/// coverage over depth).  Sync/control events are not budgeted here — they
/// are governed by the plan kind.
BudgetPlan plan_for_budget(const sim::MachineConfig& machine,
                           const sim::Program& program,
                           std::uint64_t max_statement_events);

}  // namespace perturb::instr
