// Empirical calibration of synchronization overheads.
//
// The paper's perturbation analysis takes the await overheads s_nowait and
// s_wait as *empirically determined* inputs (§4.2.3).  This module plays that
// role: it runs tiny uninstrumented micro-programs on the simulator and
// derives the overheads from the resulting traces — never by peeking at the
// MachineConfig fields directly — so the analysis consumes calibrated values
// exactly as the paper's tooling did.
#pragma once

#include "sim/machine.hpp"
#include "trace/event.hpp"

namespace perturb::instr {

struct SyncOverheads {
  /// Cost of the advance operation (event time minus preceding event).
  sim::Cycles advance_op = 0;
  /// awaitE - awaitB when the await is satisfied on arrival (s_nowait).
  sim::Cycles await_nowait = 0;
  /// awaitE - advance when the await had to wait (s_wait).
  sim::Cycles await_wait = 0;
};

/// Calibrates by running two micro-programs: a distance-1 DOACROSS chain
/// whose awaits always wait (yields s_wait and the advance cost) and one
/// whose awaits never wait (yields s_nowait).
SyncOverheads calibrate_sync(const sim::MachineConfig& config);

}  // namespace perturb::instr
