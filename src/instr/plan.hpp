// Instrumentation plans: which events a measurement records, and what each
// probe costs.
//
// A plan implements the simulator's InstrumentationHook.  Probe costs are
// mean cycles plus deterministic per-event jitter (keyed on seed, processor,
// and the processor's event ordinal).  The *analysis* is only ever given the
// mean (see mean_cost()) — the jitter is the physical source of residual
// approximation error, standing in for the real probe-cost variance of the
// paper's software tracer.
//
// Presets mirror the paper's experiments:
//  - statements_only: §3's full statement-level tracing (Table 1 / Figure 1),
//  - full: §5's heavier instrumentation that additionally records
//    synchronization operations (Table 2) and loop/iteration markers,
//  - sync_only: minimal-volume plan used by the volume/accuracy ablation.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/hooks.hpp"
#include "trace/event.hpp"

namespace perturb::instr {

using sim::Cycles;
using trace::EventId;
using trace::EventKind;
using trace::ProcId;

/// Probe cost specification for one event category.
struct ProbeCost {
  double mean = 0.0;         ///< mean probe cost in cycles
  double jitter_frac = 0.0;  ///< uniform jitter amplitude, fraction of mean
};

/// Event categories a plan prices separately.
enum class ProbeCategory : std::uint8_t {
  kStatement,  ///< stmt enter/exit
  kSync,       ///< advance, awaitB/E, lock acquire/release, barrier events
  kControl,    ///< loop/iteration markers, program begin/end
};

ProbeCategory category_of(EventKind kind) noexcept;

class InstrumentationPlan final : public sim::InstrumentationHook {
 public:
  /// Statement events only (plus zero-cost program markers so total time is
  /// well defined) — the paper's §3 instrumentation.
  static InstrumentationPlan statements_only(ProbeCost stmt,
                                             std::uint64_t seed);

  /// Statements + synchronization + loop markers — the §5 instrumentation.
  static InstrumentationPlan full(ProbeCost stmt, ProbeCost sync,
                                  ProbeCost control, std::uint64_t seed);

  /// Synchronization events only.
  static InstrumentationPlan sync_only(ProbeCost sync, std::uint64_t seed);

  /// Enables/disables recording of kStmtExit events (the paper records one
  /// event per statement; enter+exit pairs are the richer default).
  void set_record_stmt_exit(bool on) noexcept { record_stmt_exit_ = on; }

  /// Restricts statement probes to sites for which `enabled[id]` is true
  /// (ids beyond the vector are disabled).  Sync/control events unaffected.
  void set_site_filter(std::vector<bool> enabled) {
    site_filter_ = std::move(enabled);
  }

  /// Mean probe cost the analysis should assume for this kind (0 when the
  /// kind is not recorded).
  Cycles mean_cost(EventKind kind) const noexcept;

  // sim::InstrumentationHook:
  bool records(EventKind kind, EventId id) const override;
  Cycles probe_cost(EventKind kind, EventId id, ProcId proc,
                    std::uint64_t proc_event_index) const override;

 private:
  InstrumentationPlan() = default;

  std::array<bool, trace::kNumEventKinds> record_{};
  std::array<ProbeCost, trace::kNumEventKinds> cost_{};
  bool record_stmt_exit_ = true;
  std::optional<std::vector<bool>> site_filter_;
  std::uint64_t seed_ = 0;
};

}  // namespace perturb::instr
