// Instrumentation plans: which events a measurement records, and what each
// probe costs.
//
// A plan implements the simulator's InstrumentationHook through
// sim::CostTableHook — the sealed table-driven hook the engine's fast path
// dispatches to statically.  Probe costs are mean cycles plus deterministic
// per-event jitter (keyed on seed, processor, and the processor's event
// ordinal).  The *analysis* is only ever given the mean (see mean_cost()) —
// the jitter is the physical source of residual approximation error,
// standing in for the real probe-cost variance of the paper's software
// tracer.
//
// Presets mirror the paper's experiments:
//  - statements_only: §3's full statement-level tracing (Table 1 / Figure 1),
//  - full: §5's heavier instrumentation that additionally records
//    synchronization operations (Table 2) and loop/iteration markers,
//  - sync_only: minimal-volume plan used by the volume/accuracy ablation.
#pragma once

#include <cstdint>

#include "sim/hooks.hpp"
#include "trace/event.hpp"

namespace perturb::instr {

using sim::Cycles;
using trace::EventId;
using trace::EventKind;
using trace::ProcId;

/// Probe cost specification for one event category (the simulator's table
/// entry type; re-exported under the historical name).
using ProbeCost = sim::ProbeCost;

/// Event categories a plan prices separately.
enum class ProbeCategory : std::uint8_t {
  kStatement,  ///< stmt enter/exit
  kSync,       ///< advance, awaitB/E, lock acquire/release, barrier events
  kControl,    ///< loop/iteration markers, program begin/end
};

ProbeCategory category_of(EventKind kind) noexcept;

class InstrumentationPlan final : public sim::CostTableHook {
 public:
  /// Statement events only (plus zero-cost program markers so total time is
  /// well defined) — the paper's §3 instrumentation.
  static InstrumentationPlan statements_only(ProbeCost stmt,
                                             std::uint64_t seed);

  /// Statements + synchronization + loop markers — the §5 instrumentation.
  static InstrumentationPlan full(ProbeCost stmt, ProbeCost sync,
                                  ProbeCost control, std::uint64_t seed);

  /// Synchronization events only.
  static InstrumentationPlan sync_only(ProbeCost sync, std::uint64_t seed);

  /// Mean probe cost the analysis should assume for this kind (0 when the
  /// kind is not recorded).
  Cycles mean_cost(EventKind kind) const noexcept;

 private:
  InstrumentationPlan() = default;
};

}  // namespace perturb::instr
