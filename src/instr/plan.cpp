#include "instr/plan.hpp"

#include <cmath>

namespace perturb::instr {

ProbeCategory category_of(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kStmtEnter:
    case EventKind::kStmtExit:
    case EventKind::kUser:
      return ProbeCategory::kStatement;
    case EventKind::kAdvance:
    case EventKind::kAwaitBegin:
    case EventKind::kAwaitEnd:
    case EventKind::kLockAcquire:
    case EventKind::kLockRelease:
    case EventKind::kBarrierArrive:
    case EventKind::kBarrierDepart:
    case EventKind::kSemAcquire:
    case EventKind::kSemRelease:
      return ProbeCategory::kSync;
    case EventKind::kLoopBegin:
    case EventKind::kLoopEnd:
    case EventKind::kIterBegin:
    case EventKind::kIterEnd:
    case EventKind::kProgramBegin:
    case EventKind::kProgramEnd:
      return ProbeCategory::kControl;
  }
  return ProbeCategory::kControl;
}

InstrumentationPlan InstrumentationPlan::statements_only(ProbeCost stmt,
                                                         std::uint64_t seed) {
  InstrumentationPlan p;
  p.seed_ = seed;
  for (std::uint8_t k = 0; k < trace::kNumEventKinds; ++k) {
    const auto kind = static_cast<EventKind>(k);
    switch (category_of(kind)) {
      case ProbeCategory::kStatement:
        p.record_[k] = true;
        p.cost_[k] = stmt;
        break;
      case ProbeCategory::kControl:
        // Program markers are kept (zero cost) so measured total time is
        // well defined; loop/iteration markers are not recorded.
        if (kind == EventKind::kProgramBegin || kind == EventKind::kProgramEnd)
          p.record_[k] = true;
        break;
      case ProbeCategory::kSync:
        break;
    }
  }
  return p;
}

InstrumentationPlan InstrumentationPlan::full(ProbeCost stmt, ProbeCost sync,
                                              ProbeCost control,
                                              std::uint64_t seed) {
  InstrumentationPlan p;
  p.seed_ = seed;
  for (std::uint8_t k = 0; k < trace::kNumEventKinds; ++k) {
    const auto kind = static_cast<EventKind>(k);
    p.record_[k] = true;
    switch (category_of(kind)) {
      case ProbeCategory::kStatement: p.cost_[k] = stmt; break;
      case ProbeCategory::kSync: p.cost_[k] = sync; break;
      case ProbeCategory::kControl: p.cost_[k] = control; break;
    }
  }
  // Program markers delimit the run; they carry no probe cost so measured
  // and actual runs agree on where time zero is.
  p.cost_[static_cast<std::size_t>(EventKind::kProgramBegin)] = {};
  p.cost_[static_cast<std::size_t>(EventKind::kProgramEnd)] = {};
  return p;
}

InstrumentationPlan InstrumentationPlan::sync_only(ProbeCost sync,
                                                   std::uint64_t seed) {
  InstrumentationPlan p;
  p.seed_ = seed;
  for (std::uint8_t k = 0; k < trace::kNumEventKinds; ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (category_of(kind) == ProbeCategory::kSync) {
      p.record_[k] = true;
      p.cost_[k] = sync;
    } else if (kind == EventKind::kProgramBegin ||
               kind == EventKind::kProgramEnd) {
      p.record_[k] = true;
    }
  }
  return p;
}

Cycles InstrumentationPlan::mean_cost(EventKind kind) const noexcept {
  const auto k = static_cast<std::size_t>(kind);
  if (!record_[k]) return 0;
  return static_cast<Cycles>(std::llround(cost_[k].mean));
}

}  // namespace perturb::instr
