#include "instr/calibrate.hpp"

#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/ir.hpp"
#include "support/check.hpp"
#include "trace/trace.hpp"

namespace perturb::instr {

namespace {

using sim::Cycles;
using trace::Event;
using trace::EventKind;
using trace::Tick;

/// Builds: doacross i in [0, trip):  work(cost); await(A, i-1); body(small);
/// advance(A, i).  With a large `work` the awaits always wait; with work = 0
/// and a long pre-advance gap they never do (dependence satisfied long ago).
sim::Program make_chain(std::int64_t trip, Cycles independent_work,
                        Cycles chain_work) {
  sim::Program prog;
  const auto var = prog.declare_sync_var("A");
  sim::Block body;
  if (independent_work > 0)
    body.nodes.push_back(sim::compute("work", independent_work));
  body.nodes.push_back(sim::await(var, {1, -1}));
  body.nodes.push_back(sim::compute("chain", chain_work));
  body.nodes.push_back(sim::advance(var, {1, 0}));
  prog.root().nodes.push_back(
      sim::par_loop("cal", sim::LoopKind::kDoacross, sim::Schedule::kCyclic,
                    trip, std::move(body)));
  prog.finalize();
  return prog;
}

struct AwaitObservation {
  Tick await_b = 0;
  Tick await_e = 0;
  Tick advance = 0;
  bool waited = false;
};

/// Extracts per-pair await observations from an actual trace.
std::vector<AwaitObservation> observe(const trace::Trace& t) {
  std::unordered_map<std::int64_t, AwaitObservation> by_pair;
  for (const Event& e : t) {
    switch (e.kind) {
      case EventKind::kAdvance:
        by_pair[e.payload].advance = e.time;
        break;
      case EventKind::kAwaitBegin:
        by_pair[e.payload].await_b = e.time;
        break;
      case EventKind::kAwaitEnd:
        by_pair[e.payload].await_e = e.time;
        break;
      default:
        break;
    }
  }
  std::vector<AwaitObservation> out;
  for (auto& [pair, obs] : by_pair) {
    if (obs.await_e == 0) continue;  // advance with no awaiter
    obs.waited = obs.advance > obs.await_b;
    out.push_back(obs);
  }
  return out;
}

}  // namespace

SyncOverheads calibrate_sync(const sim::MachineConfig& config) {
  sim::MachineConfig cfg = config;
  cfg.num_procs = 2;

  SyncOverheads result;

  // Waiting chain: no independent work, so every await on the second
  // processor waits for its predecessor.
  {
    const auto prog = make_chain(/*trip=*/8, /*independent_work=*/0,
                                 /*chain_work=*/200);
    const auto t = sim::simulate_actual(cfg, prog, "calibrate-wait");
    bool found = false;
    for (const auto& obs : observe(t)) {
      if (!obs.waited) continue;
      result.await_wait = obs.await_e - obs.advance;
      found = true;
      break;
    }
    PERTURB_CHECK_MSG(found, "calibration: no waiting await observed");

    // Advance cost: advance event minus the preceding chain-statement exit on
    // the same processor.
    Tick prev_exit = -1;
    bool adv_found = false;
    for (const Event& e : t) {
      if (e.kind == EventKind::kStmtExit && e.proc == 0) prev_exit = e.time;
      if (e.kind == EventKind::kAdvance && e.proc == 0 && prev_exit >= 0) {
        result.advance_op = e.time - prev_exit;
        adv_found = true;
        break;
      }
    }
    PERTURB_CHECK_MSG(adv_found, "calibration: no advance observed");
  }

  // Non-waiting chain: a large independent prefix means every dependence is
  // satisfied long before the await executes.
  {
    const auto prog = make_chain(/*trip=*/8, /*independent_work=*/5000,
                                 /*chain_work=*/10);
    const auto t = sim::simulate_actual(cfg, prog, "calibrate-nowait");
    bool found = false;
    for (const auto& obs : observe(t)) {
      if (obs.waited) continue;
      result.await_nowait = obs.await_e - obs.await_b;
      found = true;
      break;
    }
    PERTURB_CHECK_MSG(found, "calibration: no waitless await observed");
  }

  return result;
}

}  // namespace perturb::instr
