#include "instr/budget.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/check.hpp"

namespace perturb::instr {

BudgetPlan plan_for_budget(const sim::MachineConfig& machine,
                           const sim::Program& program,
                           std::uint64_t max_statement_events) {
  PERTURB_CHECK_MSG(program.finalized(), "program must be finalized");

  // Profile: one zero-perturbation run, counting statement events per site.
  const auto t = sim::simulate_actual(machine, program, "budget-profile");
  std::unordered_map<trace::EventId, std::uint64_t> counts;
  for (const auto& e : t) {
    if (e.kind == trace::EventKind::kStmtEnter ||
        e.kind == trace::EventKind::kStmtExit)
      ++counts[e.id];
  }

  BudgetPlan plan;
  plan.profiles.reserve(counts.size());
  for (const auto& [site, events] : counts)
    plan.profiles.push_back({site, events});
  std::sort(plan.profiles.begin(), plan.profiles.end(),
            [](const SiteProfile& a, const SiteProfile& b) {
              if (a.events != b.events) return a.events > b.events;
              return a.site < b.site;
            });

  plan.enabled.assign(program.num_sites(), false);
  // Greedy selection, least-frequent sites first: maximizes the number of
  // distinct instrumented locations under the budget.
  for (auto it = plan.profiles.rbegin(); it != plan.profiles.rend(); ++it) {
    if (plan.selected_events + it->events > max_statement_events) continue;
    plan.enabled[it->site] = true;
    plan.selected_events += it->events;
  }
  return plan;
}

}  // namespace perturb::instr
