// Event-based perturbation analysis (§4).
//
// Conservative constructive reconstruction: events are resolved per
// processor in measured order, but synchronization events are re-timed from
// their *dependency* sources rather than from elapsed measured time, using
// the paper's advance/await formulae (§4.2.3):
//
//   t_a(advance) = t_a(u) + t_m(advance) - t_m(u) - alpha
//   t_a(awaitB)  = t_a(v) + t_m(awaitB)  - t_m(v) - beta
//   t_a(awaitE)  = t_a(awaitB) + s_nowait          if t_a(advance) <= t_a(awaitB)
//   t_a(awaitE)  = t_a(advance) + s_wait           otherwise
//
// plus the analogous barrier model (departure = max approximated arrival +
// overhead) and a conservative lock model that preserves the measured
// acquisition order.  Synchronization waiting that existed only because of
// instrumentation intrusion disappears in the approximation, and waiting
// that instrumentation masked reappears (Figure 2) — the two corrections
// time-based analysis cannot make.
//
// The result is a *conservative approximation*: a feasible execution whose
// total order of dependent events matches the measured one (§4.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/overheads.hpp"
#include "trace/index.hpp"
#include "trace/trace.hpp"

namespace perturb::core {

struct EventBasedOptions {
  /// Re-time lock acquisitions with the conservative hand-off model
  /// (preserving measured acquisition order).  When false, lock events are
  /// treated like ordinary statements (time-based).
  bool model_locks = true;
  /// Re-time barrier departures from approximated arrivals.
  bool model_barriers = true;
  /// Counting-semaphore capacities by object id (external knowledge, like
  /// the paper's scheduling information): the k-th acquisition of a
  /// capacity-c semaphore depends on the (k-c)-th release in measured order.
  /// Semaphores without an entry fall back to the time-based rule.
  std::map<trace::ObjectId, std::int64_t> semaphore_capacity;
};

struct EventBasedResult {
  trace::Trace approx;

  // Waiting classification across the awaitE events (Figure 2's two cases).
  std::size_t awaits_total = 0;
  std::size_t waits_measured = 0;    ///< awaits that waited in the measurement
  std::size_t waits_approx = 0;      ///< awaits that wait in the approximation
  std::size_t waits_removed = 0;     ///< measured wait, approximated no-wait
  std::size_t waits_introduced = 0;  ///< measured no-wait, approximated wait
};

/// Runs event-based perturbation analysis on a measured trace.  The trace
/// must be happened-before consistent (see trace::validate); throws
/// CheckError if the dependency resolution cannot make progress.
EventBasedResult event_based_approximation(const trace::Trace& measured,
                                           const AnalysisOverheads& overheads,
                                           const EventBasedOptions& options = {});

/// Same analysis over a pre-built index of the measured trace (the pipeline
/// builds the TraceIndex once and shares it across all analyzers).
EventBasedResult event_based_approximation(const trace::TraceIndex& index,
                                           const AnalysisOverheads& overheads,
                                           const EventBasedOptions& options = {});

// ---- streaming (windowed) reconstruction ---------------------------------

/// One re-timed event spilled by the streaming reconstructor: the measured
/// event with its time replaced by the approximated time, plus its index in
/// the measured trace (the merge tie-breaker).
struct RetimedEvent {
  trace::Event event;
  std::size_t index = 0;
};

/// Receives completed per-processor segments as the streaming reconstructor
/// retires events.  Within one processor, segments arrive in trace order
/// with nondecreasing times; across processors, no order is guaranteed.
class StreamSink {
 public:
  virtual ~StreamSink() = default;
  virtual void on_segment(trace::ProcId proc, const RetimedEvent* events,
                          std::size_t n) = 0;
};

/// Sink that keeps every segment and merges the per-processor chains into a
/// full approximated trace — the same (t_a, measured index) k-way merge the
/// batch reconstructor performs, so the result is bit-identical to it.
class CollectSink final : public StreamSink {
 public:
  void on_segment(trace::ProcId proc, const RetimedEvent* events,
                  std::size_t n) override;

  /// Events collected so far.
  std::size_t size() const noexcept;

  /// Merges into the approximated trace ("<name>/event-based", like the
  /// batch reconstructor) and resets the sink.
  trace::Trace take(const trace::TraceInfo& measured_info);

 private:
  std::vector<std::vector<RetimedEvent>> chains_;  ///< by processor
};

/// Windowed event-based reconstructor: consumes the measured trace in
/// chunks, resolves the same dependency models as the batch Reconstructor
/// retire-as-you-go, and spills completed per-processor segments to a
/// StreamSink with O(window + live sync state) resident events.
///
/// Equivalence contract: on a happened-before-consistent trace — at most
/// one advance per sync key, await-begins preceding their await-ends, and
/// barrier arrivals preceding the episode's departures, all guaranteed by
/// trace::validate and preserved under prefix truncation — the spilled
/// events carry exactly the approximated times the batch reconstructor
/// assigns, and CollectSink::take reproduces its output trace bit for bit.
/// Missing partner events (a truncated advance, an over-capacity semaphore
/// release that never arrives) resolve at finish() with the batch
/// reconstructor's same fallback rules.
///
/// The window is a drain threshold, not a hard cap: events blocked on an
/// unresolved dependency stay resident past it until the dependency
/// resolves (or finish()), so adversarial traces degrade to batch memory
/// instead of producing wrong answers.
class StreamingReconstructor {
 public:
  StreamingReconstructor(const AnalysisOverheads& overheads,
                         const EventBasedOptions& options, std::size_t window,
                         StreamSink& sink);
  ~StreamingReconstructor();

  StreamingReconstructor(const StreamingReconstructor&) = delete;
  StreamingReconstructor& operator=(const StreamingReconstructor&) = delete;

  /// Ingests the next events in measured trace order.
  void push(const trace::Event* events, std::size_t n);
  void push(const std::vector<trace::Event>& events) {
    push(events.data(), events.size());
  }

  /// Resolves everything still pending (applying end-of-stream fallbacks
  /// for partners that never arrived), flushes the sink, and returns the
  /// waiting-classification stats (`approx` is left empty — it lives in the
  /// sink).  Throws CheckError with the batch reconstructor's deadlock
  /// diagnosis if unresolvable events remain.
  EventBasedResult finish();

  // Observability: drain passes run, segments spilled, and the high-water
  // mark of resident (ingested, not yet retired) events.
  std::uint64_t windows_processed() const noexcept;
  std::uint64_t segments_spilled() const noexcept;
  std::size_t resident_high_water() const noexcept;
  std::uint64_t events_pushed() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace perturb::core
