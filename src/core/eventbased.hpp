// Event-based perturbation analysis (§4).
//
// Conservative constructive reconstruction: events are resolved per
// processor in measured order, but synchronization events are re-timed from
// their *dependency* sources rather than from elapsed measured time, using
// the paper's advance/await formulae (§4.2.3):
//
//   t_a(advance) = t_a(u) + t_m(advance) - t_m(u) - alpha
//   t_a(awaitB)  = t_a(v) + t_m(awaitB)  - t_m(v) - beta
//   t_a(awaitE)  = t_a(awaitB) + s_nowait          if t_a(advance) <= t_a(awaitB)
//   t_a(awaitE)  = t_a(advance) + s_wait           otherwise
//
// plus the analogous barrier model (departure = max approximated arrival +
// overhead) and a conservative lock model that preserves the measured
// acquisition order.  Synchronization waiting that existed only because of
// instrumentation intrusion disappears in the approximation, and waiting
// that instrumentation masked reappears (Figure 2) — the two corrections
// time-based analysis cannot make.
//
// The result is a *conservative approximation*: a feasible execution whose
// total order of dependent events matches the measured one (§4.1).
#pragma once

#include <cstddef>
#include <map>

#include "core/overheads.hpp"
#include "trace/index.hpp"
#include "trace/trace.hpp"

namespace perturb::core {

struct EventBasedOptions {
  /// Re-time lock acquisitions with the conservative hand-off model
  /// (preserving measured acquisition order).  When false, lock events are
  /// treated like ordinary statements (time-based).
  bool model_locks = true;
  /// Re-time barrier departures from approximated arrivals.
  bool model_barriers = true;
  /// Counting-semaphore capacities by object id (external knowledge, like
  /// the paper's scheduling information): the k-th acquisition of a
  /// capacity-c semaphore depends on the (k-c)-th release in measured order.
  /// Semaphores without an entry fall back to the time-based rule.
  std::map<trace::ObjectId, std::int64_t> semaphore_capacity;
};

struct EventBasedResult {
  trace::Trace approx;

  // Waiting classification across the awaitE events (Figure 2's two cases).
  std::size_t awaits_total = 0;
  std::size_t waits_measured = 0;    ///< awaits that waited in the measurement
  std::size_t waits_approx = 0;      ///< awaits that wait in the approximation
  std::size_t waits_removed = 0;     ///< measured wait, approximated no-wait
  std::size_t waits_introduced = 0;  ///< measured no-wait, approximated wait
};

/// Runs event-based perturbation analysis on a measured trace.  The trace
/// must be happened-before consistent (see trace::validate); throws
/// CheckError if the dependency resolution cannot make progress.
EventBasedResult event_based_approximation(const trace::Trace& measured,
                                           const AnalysisOverheads& overheads,
                                           const EventBasedOptions& options = {});

/// Same analysis over a pre-built index of the measured trace (the pipeline
/// builds the TraceIndex once and shares it across all analyzers).
EventBasedResult event_based_approximation(const trace::TraceIndex& index,
                                           const AnalysisOverheads& overheads,
                                           const EventBasedOptions& options = {});

}  // namespace perturb::core
