// Unified analysis pipeline.
//
// Every consumer of perturbation analysis — the command-line tools, the
// experiment driver, the benchmarks — runs the same sequence:
//
//   load → salvage → triage → repair → index → analyses → quality → report
//
// This module owns that composition.  The front half (acquisition) turns a
// trace file or in-memory trace into an analyzable, happened-before
// consistent measured trace, recording salvage/repair provenance.  The back
// half builds one shared trace::TraceIndex and runs every registered
// Analyzer over it — independent passes, so they execute on a deterministic
// task pool (support::parallel_for) with each analyzer writing only its own
// output slot.
//
// The four approximation modes (time-based §3, event-based §4, liberal
// §4.3, likely §4.1) are exposed as built-in analyzers; new analyses plug in
// by implementing Analyzer and registering with AnalysisPipeline::add.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/analytic.hpp"
#include "core/eventbased.hpp"
#include "core/likely.hpp"
#include "core/overheads.hpp"
#include "core/quality.hpp"
#include "support/cancel.hpp"
#include "trace/index.hpp"
#include "trace/io.hpp"
#include "trace/repair.hpp"
#include "trace/trace.hpp"
#include "trace/validate.hpp"

namespace perturb::support {
class TaskPool;
}  // namespace perturb::support

namespace perturb::core {

enum class RepairMode : std::uint8_t {
  kOff,           ///< reject traces with causality violations
  kConservative,  ///< salvage + repair with conservative strategies
  kAggressive,    ///< additionally drop whatever cannot be repaired
};

/// One options struct for the whole pipeline; every stage reads from here.
struct PipelineOptions {
  AnalysisOverheads overheads;    ///< probe means + sync processing costs
  EventBasedOptions event_based;  ///< dependency-model knobs (§4)
  sim::MachineConfig machine;     ///< replay machine for liberal/likely
  sim::Schedule schedule = sim::Schedule::kCyclic;  ///< asserted loop policy
  std::size_t likely_samples = 64;
  double likely_uncertainty = 0.05;
  std::uint64_t seed = 1991;
  /// Worker threads for independent analysis passes and the Monte-Carlo
  /// fan-out; results are bit-identical at any thread count.
  std::size_t threads = 1;
  RepairMode repair = RepairMode::kOff;
  trace::Tick sync_slack = 0;  ///< validation slack for measured traces
  /// Drain threshold for the streaming entry points (run_stream_file): the
  /// windowed reconstructor retires resolved events once this many are
  /// resident.  Must hold at least one chunk (trace::kStreamChunkEvents);
  /// the batch entry points ignore it.
  std::size_t stream_window = 8192;
  /// Optional cooperative-cancellation token (borrowed, not owned; may be
  /// shared with the thread that cancels).  When set, the pipeline polls it
  /// at every phase boundary — after load, before triage/repair/index, and
  /// before each analyzer — and aborts by throwing support::CancelledError.
  /// The server uses this to enforce per-job deadlines without killing the
  /// worker mid-phase.
  const support::CancelToken* cancel = nullptr;
};

/// Provenance of the load→salvage→triage→repair front half.
struct AcquireOutcome {
  trace::Trace measured;  ///< the analyzable trace (post-salvage/repair)
  bool ok = false;
  std::string diagnosis;  ///< why acquisition failed, when !ok
  bool salvaged = false;  ///< binary input was incomplete (see salvage)
  trace::SalvageReport salvage;
  bool repaired = false;  ///< a repair pass ran (manifest is meaningful)
  trace::RepairManifest manifest;
  /// Triage result on the loaded input (pre-repair).
  std::vector<trace::Violation> violations;
  /// True when the measurement was salvaged or repaired with loss; quality
  /// metrics computed from it describe a degraded input.
  bool degraded = false;
};

/// Renders salvage/repair provenance for CLI output; empty for a clean
/// acquisition.
std::string render_acquire(const AcquireOutcome& outcome);

/// Wraps a trace the caller vouches for (e.g. fresh simulator output) as a
/// successful acquisition, skipping triage entirely.
AcquireOutcome trusted_acquire(trace::Trace measured);

/// What one analyzer produced.  `approx` is the approximated trace for the
/// trace-producing modes; mode-specific payloads ride in the optionals
/// (their own `approx` members are left empty to avoid duplicating the
/// trace).
struct AnalyzerOutput {
  std::string analyzer;  ///< Analyzer::name() of the producer
  trace::Trace approx;
  std::optional<EventBasedResult> event_stats;  ///< event-based only
  std::optional<LiberalResult> liberal;         ///< liberal only
  std::optional<LikelyDistribution> distribution;  ///< likely only
  std::optional<AnalyticResult> analytic;       ///< analytic only
  std::optional<ApproximationQuality> quality;  ///< vs actual, when provided
};

/// One analysis pass over the shared index.  Implementations must be
/// reentrant: the pipeline may run analyzers concurrently, each writing only
/// its own AnalyzerOutput.
class Analyzer {
 public:
  virtual ~Analyzer() = default;
  virtual const char* name() const noexcept = 0;
  /// True when run() fills AnalyzerOutput::approx with a trace that can be
  /// scored against an actual execution.
  virtual bool produces_trace() const noexcept { return true; }
  virtual AnalyzerOutput run(const trace::TraceIndex& index,
                             const PipelineOptions& options) const = 0;
};

/// The built-in approximation modes.
enum class AnalyzerKind : std::uint8_t {
  kTimeBased,   ///< §3 telescoped overhead subtraction
  kEventBased,  ///< §4 dependency-model reconstruction
  kLiberal,     ///< §4.3 scheduling re-simulation
  kLikely,      ///< §4.1 Monte-Carlo distribution of likely executions
  kAnalytic,    ///< §12 closed-form model prediction (no simulation)
};

std::unique_ptr<Analyzer> make_analyzer(AnalyzerKind kind);

struct PipelineResult {
  AcquireOutcome acquire;
  /// One entry per registered analyzer, in registration order.
  std::vector<AnalyzerOutput> outputs;

  /// Output of the named analyzer; nullptr when not registered.
  const AnalyzerOutput* output(std::string_view analyzer) const;
};

/// Outcome of one streaming run (run_stream_file): chunk-incremental decode
/// feeding the windowed event-based reconstructor, with O(stream_window)
/// resident events end to end.
struct StreamOutcome {
  bool ok = false;
  std::string diagnosis;  ///< why the run failed, when !ok
  trace::TraceInfo info;  ///< header of the streamed trace
  bool salvaged = false;  ///< torn input; the valid prefix was analyzed
  trace::SalvageReport salvage;
  /// Measured-trace summary, accumulated at ingest (never materialized):
  /// same values Trace::size/span/total_time report on the batch load.
  std::size_t measured_events = 0;
  trace::Tick measured_span = 0;
  trace::Tick measured_total = 0;
  /// Waiting classification from the reconstructor.  Its `approx` trace is
  /// filled only when the run collected (batch-identical merge); otherwise
  /// the approximated summary rides in approx_span/approx_total.
  EventBasedResult event_stats;
  trace::Tick approx_span = 0;
  trace::Tick approx_total = 0;
  // Streaming observability; also published as pipeline.stream.* metrics.
  std::size_t chunks = 0;
  std::uint64_t windows = 0;
  std::uint64_t spills = 0;
  std::size_t resident_high_water = 0;
};

class AnalysisPipeline {
 public:
  explicit AnalysisPipeline(PipelineOptions options);
  ~AnalysisPipeline();
  AnalysisPipeline(AnalysisPipeline&&) noexcept;
  AnalysisPipeline& operator=(AnalysisPipeline&&) noexcept;

  const PipelineOptions& options() const noexcept { return options_; }

  AnalysisPipeline& add(AnalyzerKind kind);
  AnalysisPipeline& add(std::unique_ptr<Analyzer> analyzer);

  /// Acquisition only: load (salvaging when repairing), triage, repair.
  /// I/O failures throw trace::IoError; degraded-but-salvageable inputs come
  /// back ok, unusable ones come back !ok with a diagnosis.
  AcquireOutcome acquire_file(const std::string& path) const;
  /// Same, loading through a caller-owned reusable I/O buffer (see
  /// trace::IoArena); batched drivers pass one arena per worker.
  AcquireOutcome acquire_file(const std::string& path,
                              trace::IoArena& arena) const;
  /// Same triage/repair over an in-memory trace (no load/salvage stage).
  AcquireOutcome acquire(trace::Trace measured) const;

  /// Runs every registered analyzer over one shared index of the acquired
  /// trace.  When `actual` is non-null, each trace-producing analyzer's
  /// output is scored against it (flagged degraded per the acquisition).
  /// When the acquisition failed, no analyzers run.
  PipelineResult run(AcquireOutcome acquired,
                     const trace::Trace* actual = nullptr) const;
  PipelineResult run(trace::Trace measured,
                     const trace::Trace* actual = nullptr) const;
  PipelineResult run_file(const std::string& path,
                          const trace::Trace* actual = nullptr) const;

  /// Streaming analysis: decodes `path` chunk by chunk (trace::ChunkReader)
  /// and re-times events through the windowed event-based reconstructor,
  /// never materializing the whole trace.  `collect` additionally merges the
  /// full approximated trace into the result — bit-identical to the batch
  /// event-based analyzer, at O(trace) memory; leave it off for summaries.
  /// Repair mode selects the decode strategy: kOff is strict (torn input
  /// throws trace::IoError, like trace::load), anything else salvages the
  /// valid prefix.  Triage and repair passes do not run — streaming analyzes
  /// the trace as-is, so feed it trusted measurement output or use the batch
  /// path for inputs that may need repair.
  StreamOutcome run_stream_file(const std::string& path, bool collect) const;

  /// Streaming-server entry: analyzes a trace whose index was built
  /// incrementally while its chunks arrived.  `measured` must hold exactly
  /// the events appended to `builder`, in order.  Triage validates through
  /// the sealed index (same fused fast path as run_file); violating traces
  /// fall back to the standard acquire/repair path.
  PipelineResult run_sealed(trace::Trace measured,
                            trace::IncrementalTraceIndex builder,
                            const trace::Trace* actual = nullptr) const;

  /// Batched driver: runs the full pipeline over every path, fanning the
  /// files across options().threads workers with one reusable load buffer
  /// per worker; each file's analysis runs single-threaded inside its
  /// worker.  Per-file I/O failures are reported in that entry's
  /// AcquireOutcome (!ok + diagnosis) instead of thrown, so one unreadable
  /// file cannot abort the batch.  Results are bit-identical to calling
  /// run_file on each path in order, at any thread count.
  std::vector<PipelineResult> run_many(
      const std::vector<std::string>& paths,
      const trace::Trace* actual = nullptr) const;

 private:
  /// Triage + analysis sharing ONE TraceIndex on the clean-trace fast path:
  /// the validator reads the same index the analyzers consume, instead of
  /// building a private one inside trace::validate.  Falls back to the
  /// standard acquire (repair) path when triage finds violations, since a
  /// repaired trace needs a fresh index anyway.  `builder`, when non-null,
  /// is a chunk-fed incremental index that is sealed over `measured` instead
  /// of building the index from scratch (the run_sealed path).
  PipelineResult run_fused(
      trace::Trace measured, const trace::Trace* actual,
      support::TaskPool& pool,
      trace::IncrementalTraceIndex* builder = nullptr) const;
  /// run_file body for one batch item: loads through `arena`, runs
  /// single-threaded, converts trace::IoError into a failed acquisition.
  PipelineResult run_one(const std::string& path, const trace::Trace* actual,
                         trace::IoArena& arena) const;
  void run_analyzers(PipelineResult& result, const trace::TraceIndex& index,
                     const trace::Trace* actual,
                     support::TaskPool& pool) const;

  PipelineOptions options_;
  std::vector<std::unique_ptr<Analyzer>> analyzers_;
};

/// Renders the §5.3 performance report (waiting table, parallelism,
/// critical path) of an approximated trace, with classification thresholds
/// taken from the pipeline's overheads.
std::string render_pipeline_report(const trace::Trace& approx,
                                   const PipelineOptions& options);

}  // namespace perturb::core
