#include "core/quality.hpp"

#include "trace/trace_stats.hpp"

namespace perturb::core {

namespace {

using CompareFn = trace::TraceComparison (*)(const trace::Trace&,
                                             const trace::Trace&);

ApproximationQuality assess_with(const trace::Trace& measured,
                                 const trace::Trace& approx,
                                 const trace::Trace& actual, CompareFn cmp_fn) {
  ApproximationQuality q;
  const auto actual_total = static_cast<double>(actual.total_time());
  if (actual_total > 0.0) {
    q.measured_over_actual =
        static_cast<double>(measured.total_time()) / actual_total;
    q.approx_over_actual =
        static_cast<double>(approx.total_time()) / actual_total;
    q.percent_error = (q.approx_over_actual - 1.0) * 100.0;
  }
  const auto cmp = cmp_fn(approx, actual);
  q.mean_abs_event_error = cmp.mean_abs_time_error;
  q.rms_event_error = cmp.rms_time_error;
  q.p50_event_error = cmp.p50_abs_time_error;
  q.p95_event_error = cmp.p95_abs_time_error;
  q.matched_events = cmp.matched_events;
  return q;
}

}  // namespace

ApproximationQuality assess(const trace::Trace& measured,
                            const trace::Trace& approx,
                            const trace::Trace& actual) {
  return assess_with(measured, approx, actual, trace::compare);
}

ApproximationQuality assess_reference(const trace::Trace& measured,
                                      const trace::Trace& approx,
                                      const trace::Trace& actual) {
  return assess_with(measured, approx, actual, trace::compare_reference);
}

}  // namespace perturb::core
