// Inputs to perturbation analysis: what the analysis knows about costs.
//
// The analysis never sees the true per-event probe costs (they jitter); it is
// given mean per-kind probe overheads — the "measured costs of
// instrumentation" of §2 — plus the empirically calibrated synchronization
// processing overheads s_nowait and s_wait of §4.2.3.
#pragma once

#include <array>

#include "sim/ir.hpp"
#include "trace/event.hpp"

namespace perturb::core {

using sim::Cycles;
using trace::EventKind;
using trace::Tick;

struct AnalysisOverheads {
  /// Mean probe cost per event kind; subtracted per recorded event.
  std::array<Cycles, trace::kNumEventKinds> probe{};

  /// awaitE = awaitB + s_nowait when the approximation decides no waiting
  /// occurs (§4.2.3).
  Cycles s_nowait = 0;
  /// awaitE = advance + s_wait when the approximation decides waiting occurs.
  Cycles s_wait = 0;
  /// Lock-acquisition processing cost applied after the lock becomes free.
  Cycles lock_acquire = 0;
  /// Semaphore P() processing cost applied after a permit becomes free.
  Cycles sem_acquire = 0;
  /// Barrier departure latency applied after the last arrival.
  Cycles barrier_depart = 0;

  Cycles probe_for(EventKind kind) const noexcept {
    return probe[static_cast<std::size_t>(kind)];
  }
};

}  // namespace perturb::core
