// Approximation quality metrics: the ratios the paper's Tables 1 and 2
// report, plus per-event error summaries.
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace perturb::core {

struct ApproximationQuality {
  double measured_over_actual = 0.0;  ///< Measured/Actual execution time
  double approx_over_actual = 0.0;    ///< Approximated/Actual execution time
  double percent_error = 0.0;         ///< (approx - actual)/actual * 100
  double mean_abs_event_error = 0.0;  ///< mean |t_approx - t_actual|, ticks
  double rms_event_error = 0.0;
  double p50_event_error = 0.0;       ///< median |t_approx - t_actual|
  double p95_event_error = 0.0;
  std::size_t matched_events = 0;     ///< events compared between the traces
  /// True when the measured trace was salvaged or repaired with loss before
  /// analysis (see trace::RepairSeverity): the metrics above then describe a
  /// degraded input, not a faithful measurement.
  bool degraded_input = false;
};

/// Scores an approximated trace against the actual (uninstrumented) trace,
/// also reporting how perturbed the measurement itself was.
ApproximationQuality assess(const trace::Trace& measured,
                            const trace::Trace& approx,
                            const trace::Trace& actual);

/// Same scoring through trace::compare_reference (the pre-optimization
/// comparator).  Produces values bit-identical to assess(); exists so the
/// reference experiment driver (experiments::run_grid_reference) can be
/// timed entirely on pre-optimization components.
ApproximationQuality assess_reference(const trace::Trace& measured,
                                      const trace::Trace& approx,
                                      const trace::Trace& actual);

}  // namespace perturb::core
