// Time-based perturbation analysis (§3).
//
// Assumes events on different processors are independent: the only effect of
// instrumentation is the execution-time overhead of the probes.  Each
// processor's events are re-timed by subtracting the cumulative mean probe
// overhead accrued on that processor:
//
//    t_a(e_k) = t_a(e_{k-1}) + [t_m(e_k) - t_m(e_{k-1})] - alpha(e_k)
//
// This is exact for sequential and independent fork-join execution, but — as
// the paper demonstrates on Livermore loops 3, 4 and 17 — fails for
// dependent concurrent execution, because measured waiting (which
// instrumentation shrank or grew) is carried into the approximation
// unchanged.
#pragma once

#include "core/overheads.hpp"
#include "trace/trace.hpp"

namespace perturb::core {

/// Re-times `measured` under the event-independence assumption and returns
/// the approximated trace (same events, adjusted times, re-sorted into a
/// time order with measured order as the tie-break).
///
/// Gaps are clamped at zero: per-event jitter can make a measured gap smaller
/// than the mean overhead, and times within one processor must stay
/// monotone.
trace::Trace time_based_approximation(const trace::Trace& measured,
                                      const AnalysisOverheads& overheads);

}  // namespace perturb::core
