#include "core/liberal.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "sim/ir.hpp"
#include "support/check.hpp"
#include "support/text.hpp"

namespace perturb::core {

namespace {

using trace::Event;
using trace::EventKind;
using trace::ProcId;
using trace::Trace;

constexpr std::int64_t kPairStride = std::int64_t{1} << 32;

}  // namespace

DoacrossShape extract_doacross_shape(const Trace& measured,
                                     const AnalysisOverheads& ov) {
  DoacrossShape shape;
  bool saw_loop = false;
  std::int64_t trip_hint = -1;

  enum class Segment { kOutside, kPre, kWaiting, kChain, kPost };
  struct ProcCursor {
    bool has_prev = false;
    Tick prev_time = 0;
    Segment segment = Segment::kOutside;
    IterationShape current;
  };
  std::unordered_map<ProcId, ProcCursor> procs;
  std::unordered_map<std::int64_t, IterationShape> done;
  bool have_distance = false;

  auto finish = [&](ProcCursor& c) {
    PERTURB_CHECK_MSG(!done.count(c.current.iteration),
                      "iteration executed twice in measured trace");
    done[c.current.iteration] = c.current;
    c.segment = Segment::kOutside;
  };

  for (const Event& e : measured) {
    if (e.kind == EventKind::kLoopBegin) {
      PERTURB_CHECK_MSG(!saw_loop,
                        "liberal analysis supports a single parallel loop");
      saw_loop = true;
      shape.loop_object = e.object;
    }
    ProcCursor& c = procs[e.proc];
    const Tick gap_raw = c.has_prev ? e.time - c.prev_time : 0;
    Tick gap = gap_raw - ov.probe_for(e.kind);
    if (gap < 0) gap = 0;
    c.prev_time = e.time;
    c.has_prev = true;

    auto add_gap = [&](Cycles amount) {
      switch (c.segment) {
        case Segment::kPre: c.current.pre += amount; break;
        case Segment::kChain: c.current.chain += amount; break;
        case Segment::kPost: c.current.post += amount; break;
        default: break;
      }
    };

    switch (e.kind) {
      case EventKind::kIterBegin:
        if (!saw_loop || e.object != shape.loop_object) break;
        c.current = IterationShape{};
        c.current.iteration = e.payload;
        c.segment = Segment::kPre;
        trip_hint = std::max(trip_hint, e.payload + 1);
        break;
      case EventKind::kIterEnd:
        if (c.segment == Segment::kOutside) break;
        add_gap(gap);
        finish(c);
        break;
      case EventKind::kAwaitBegin: {
        if (c.segment == Segment::kOutside) break;
        PERTURB_CHECK_MSG(c.segment == Segment::kPre,
                          "multiple awaits per iteration unsupported");
        add_gap(gap);  // arrival at the await ends the pre segment
        c.current.has_await = true;
        const std::int64_t idx = e.payload % kPairStride;
        const std::int64_t d = c.current.iteration - idx;
        PERTURB_CHECK_MSG(d > 0, "non-forward dependence in measured trace");
        if (have_distance) {
          PERTURB_CHECK_MSG(d == shape.distance,
                            "non-constant dependence distance");
        } else {
          shape.distance = d;
          have_distance = true;
        }
        c.segment = Segment::kWaiting;
        break;
      }
      case EventKind::kAwaitEnd:
        if (c.segment == Segment::kOutside) break;
        // waiting + synchronization processing: excluded from work
        c.segment = Segment::kChain;
        break;
      case EventKind::kAdvance:
        if (c.segment == Segment::kOutside) break;
        // The gap is the advance operation itself: excluded (the replay's
        // machine model re-adds it).  An advance with no preceding await
        // (first d iterations) simply ends the pre segment.
        c.current.has_advance = true;
        c.segment = Segment::kPost;
        break;
      default:
        add_gap(gap);
        break;
    }
  }

  PERTURB_CHECK_MSG(saw_loop, "no parallel loop in measured trace");
  PERTURB_CHECK_MSG(trip_hint > 0, "no iterations observed");
  shape.iterations.resize(static_cast<std::size_t>(trip_hint));
  for (std::int64_t i = 0; i < trip_hint; ++i) {
    const auto it = done.find(i);
    PERTURB_CHECK_MSG(it != done.end(),
                      support::strf("iteration %lld missing from trace",
                                    static_cast<long long>(i)));
    shape.iterations[static_cast<std::size_t>(i)] = it->second;
  }
  return shape;
}

LiberalResult liberal_approximation(const DoacrossShape& shape,
                                    const LiberalOptions& options) {
  const auto iters =
      std::make_shared<const std::vector<IterationShape>>(shape.iterations);
  const auto trip = static_cast<std::int64_t>(iters->size());
  PERTURB_CHECK(trip > 0);

  bool any_advance = false;
  bool any_await = false;
  for (const auto& it : *iters) {
    any_advance |= it.has_advance;
    any_await |= it.has_await;
  }

  sim::Program prog;
  sim::Block body;
  body.nodes.push_back(sim::compute_fn("pre", [iters](std::int64_t i) {
    return (*iters)[static_cast<std::size_t>(i)].pre;
  }));
  if (any_advance) {
    const auto var = prog.declare_sync_var("A");
    if (any_await) {
      PERTURB_CHECK_MSG(shape.distance > 0, "await without distance");
      body.nodes.push_back(sim::await(var, {1, -shape.distance}));
    }
    body.nodes.push_back(sim::compute_fn("chain", [iters](std::int64_t i) {
      return (*iters)[static_cast<std::size_t>(i)].chain;
    }));
    body.nodes.push_back(sim::advance(var, {1, 0}));
  }
  body.nodes.push_back(sim::compute_fn("post", [iters](std::int64_t i) {
    return (*iters)[static_cast<std::size_t>(i)].post;
  }));

  prog.root().nodes.push_back(sim::par_loop(
      "liberal-replay",
      any_advance ? sim::LoopKind::kDoacross : sim::LoopKind::kDoall,
      options.schedule, trip, std::move(body)));
  prog.finalize();

  LiberalResult result;
  result.approx =
      sim::simulate_actual(options.machine, prog, "liberal-replay");

  Tick begin = 0;
  Tick end = 0;
  result.iteration_to_proc.assign(static_cast<std::size_t>(trip), 0);
  for (const Event& e : result.approx) {
    if (e.kind == EventKind::kLoopBegin) begin = e.time;
    if (e.kind == EventKind::kLoopEnd) end = e.time;
    if (e.kind == EventKind::kIterBegin)
      result.iteration_to_proc[static_cast<std::size_t>(e.payload)] = e.proc;
  }
  result.loop_time = end - begin;
  return result;
}

}  // namespace perturb::core
