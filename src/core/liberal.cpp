#include "core/liberal.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "sim/ir.hpp"
#include "support/check.hpp"
#include "support/text.hpp"

namespace perturb::core {

namespace {

using trace::Event;
using trace::EventKind;
using trace::ProcId;
using trace::Trace;
using trace::TraceIndex;

constexpr std::int64_t kPairStride = std::int64_t{1} << 32;

}  // namespace

DoacrossShape extract_doacross_shape(const TraceIndex& index,
                                     const AnalysisOverheads& ov) {
  const Trace& measured = index.trace();
  PERTURB_CHECK_MSG(index.loops().size() <= 1,
                    "liberal analysis supports a single parallel loop");
  PERTURB_CHECK_MSG(!index.loops().empty(),
                    "no parallel loop in measured trace");

  DoacrossShape shape;
  shape.loop_object = index.loops().front().object;
  std::int64_t trip_hint = -1;

  enum class Segment { kOutside, kPre, kWaiting, kChain, kPost };
  std::unordered_map<std::int64_t, IterationShape> done;
  bool have_distance = false;

  // The segment state machine and the de-instrumented gaps are both
  // per-processor, so each processor's chain is walked independently.
  for (std::size_t p = 0; p < index.num_procs(); ++p) {
    Segment segment = Segment::kOutside;
    IterationShape current;

    auto finish = [&]() {
      PERTURB_CHECK_MSG(!done.count(current.iteration),
                        "iteration executed twice in measured trace");
      done[current.iteration] = current;
      segment = Segment::kOutside;
    };

    for (const std::size_t i : index.events_of(static_cast<ProcId>(p))) {
      const Event& e = measured[i];
      const std::size_t prev = index.prev_on_proc(i);
      const Tick gap_raw = prev == TraceIndex::npos
                               ? 0
                               : e.time - measured[prev].time;
      Tick gap = gap_raw - ov.probe_for(e.kind);
      if (gap < 0) gap = 0;

      auto add_gap = [&](Cycles amount) {
        switch (segment) {
          case Segment::kPre: current.pre += amount; break;
          case Segment::kChain: current.chain += amount; break;
          case Segment::kPost: current.post += amount; break;
          default: break;
        }
      };

      switch (e.kind) {
        case EventKind::kIterBegin:
          if (e.object != shape.loop_object) break;
          current = IterationShape{};
          current.iteration = e.payload;
          segment = Segment::kPre;
          trip_hint = std::max(trip_hint, e.payload + 1);
          break;
        case EventKind::kIterEnd:
          if (segment == Segment::kOutside) break;
          add_gap(gap);
          finish();
          break;
        case EventKind::kAwaitBegin: {
          if (segment == Segment::kOutside) break;
          PERTURB_CHECK_MSG(segment == Segment::kPre,
                            "multiple awaits per iteration unsupported");
          add_gap(gap);  // arrival at the await ends the pre segment
          current.has_await = true;
          const std::int64_t idx = e.payload % kPairStride;
          const std::int64_t d = current.iteration - idx;
          PERTURB_CHECK_MSG(d > 0, "non-forward dependence in measured trace");
          if (have_distance) {
            PERTURB_CHECK_MSG(d == shape.distance,
                              "non-constant dependence distance");
          } else {
            shape.distance = d;
            have_distance = true;
          }
          segment = Segment::kWaiting;
          break;
        }
        case EventKind::kAwaitEnd:
          if (segment == Segment::kOutside) break;
          // waiting + synchronization processing: excluded from work
          segment = Segment::kChain;
          break;
        case EventKind::kAdvance:
          if (segment == Segment::kOutside) break;
          // The gap is the advance operation itself: excluded (the replay's
          // machine model re-adds it).  An advance with no preceding await
          // (first d iterations) simply ends the pre segment.
          current.has_advance = true;
          segment = Segment::kPost;
          break;
        default:
          add_gap(gap);
          break;
      }
    }
  }

  PERTURB_CHECK_MSG(trip_hint > 0, "no iterations observed");
  shape.iterations.resize(static_cast<std::size_t>(trip_hint));
  for (std::int64_t i = 0; i < trip_hint; ++i) {
    const auto it = done.find(i);
    PERTURB_CHECK_MSG(it != done.end(),
                      support::strf("iteration %lld missing from trace",
                                    static_cast<long long>(i)));
    shape.iterations[static_cast<std::size_t>(i)] = it->second;
  }
  return shape;
}

DoacrossShape extract_doacross_shape(const Trace& measured,
                                     const AnalysisOverheads& ov) {
  const TraceIndex index(measured);
  return extract_doacross_shape(index, ov);
}

sim::Program lower_doacross_shape(const DoacrossShape& shape,
                                  sim::Schedule schedule) {
  const auto iters =
      std::make_shared<const std::vector<IterationShape>>(shape.iterations);
  const auto trip = static_cast<std::int64_t>(iters->size());
  PERTURB_CHECK(trip > 0);

  bool any_advance = false;
  bool any_await = false;
  for (const auto& it : *iters) {
    any_advance |= it.has_advance;
    any_await |= it.has_await;
  }

  sim::Program prog;
  sim::Block body;
  body.nodes.push_back(sim::compute_fn("pre", [iters](std::int64_t i) {
    return (*iters)[static_cast<std::size_t>(i)].pre;
  }));
  if (any_advance) {
    const auto var = prog.declare_sync_var("A");
    if (any_await) {
      PERTURB_CHECK_MSG(shape.distance > 0, "await without distance");
      body.nodes.push_back(sim::await(var, {1, -shape.distance}));
    }
    body.nodes.push_back(sim::compute_fn("chain", [iters](std::int64_t i) {
      return (*iters)[static_cast<std::size_t>(i)].chain;
    }));
    body.nodes.push_back(sim::advance(var, {1, 0}));
  }
  body.nodes.push_back(sim::compute_fn("post", [iters](std::int64_t i) {
    return (*iters)[static_cast<std::size_t>(i)].post;
  }));

  prog.root().nodes.push_back(sim::par_loop(
      "liberal-replay",
      any_advance ? sim::LoopKind::kDoacross : sim::LoopKind::kDoall,
      schedule, trip, std::move(body)));
  prog.finalize();
  return prog;
}

LiberalResult liberal_approximation(const DoacrossShape& shape,
                                    const LiberalOptions& options) {
  const sim::Program prog = lower_doacross_shape(shape, options.schedule);
  const auto trip = static_cast<std::int64_t>(shape.iterations.size());

  LiberalResult result;
  result.approx =
      sim::simulate_actual(options.machine, prog, "liberal-replay");

  Tick begin = 0;
  Tick end = 0;
  result.iteration_to_proc.assign(static_cast<std::size_t>(trip), 0);
  for (const Event& e : result.approx) {
    if (e.kind == EventKind::kLoopBegin) begin = e.time;
    if (e.kind == EventKind::kLoopEnd) end = e.time;
    if (e.kind == EventKind::kIterBegin)
      result.iteration_to_proc[static_cast<std::size_t>(e.payload)] = e.proc;
  }
  result.loop_time = end - begin;
  return result;
}

}  // namespace perturb::core
