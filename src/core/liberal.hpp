// Liberal perturbation analysis: scheduling re-simulation (§4.2.3, §4.3).
//
// Conservative analysis must keep the measured iteration→processor mapping,
// but under dynamic self-scheduling instrumentation remaps work across
// processors, so the conservative approximation reproduces a mapping the
// uninstrumented program would never have produced.  When the analyst can
// assert external execution information — "this was a constant-distance
// DOACROSS loop scheduled by policy S" — the analysis may go further:
//
//   1. extract each iteration's de-instrumented segment costs from the
//      measured trace (pre-await work, awaitE→advance chain work, post
//      work, and the dependence distance d),
//   2. re-simulate the loop on the machine model under policy S.
//
// Step 2 reuses the simulator: the extracted shape is lowered back to an IR
// DOACROSS program with per-iteration cost functions and executed with
// NullInstrumentation.  The result is a *liberal approximation* — usually
// closer to the likely execution, but no longer guaranteed to preserve the
// measured total order.
//
// Scope: single-chain, constant-distance DOACROSS loops (the paper's §4.3
// model and the shape of Livermore loops 3, 4, and 17).
#pragma once

#include <cstdint>
#include <vector>

#include "core/overheads.hpp"
#include "sim/engine.hpp"
#include "sim/machine.hpp"
#include "trace/index.hpp"
#include "trace/trace.hpp"

namespace perturb::core {

/// Per-iteration de-instrumented costs extracted from a measured trace.
struct IterationShape {
  std::int64_t iteration = 0;
  Cycles pre = 0;    ///< work before the await (or before the advance if none)
  Cycles chain = 0;  ///< work between awaitE and advance (the guarded region)
  Cycles post = 0;   ///< work after the advance
  bool has_await = false;
  bool has_advance = false;
};

struct DoacrossShape {
  std::vector<IterationShape> iterations;  ///< indexed by iteration
  std::int64_t distance = 0;  ///< constant dependence distance (0 = DOALL)
  trace::ObjectId loop_object = 0;
};

/// Extracts the shape of the (single) parallel loop in `measured`.
/// Requires loop/iteration markers and (for DOACROSS) sync events in the
/// trace; throws CheckError if the trace does not fit the model (multiple
/// advances per iteration, non-constant distance, ...).
DoacrossShape extract_doacross_shape(const trace::Trace& measured,
                                     const AnalysisOverheads& overheads);

/// Same extraction over a pre-built index of the measured trace.
DoacrossShape extract_doacross_shape(const trace::TraceIndex& index,
                                     const AnalysisOverheads& overheads);

struct LiberalOptions {
  sim::MachineConfig machine;  ///< machine model for the re-simulation
  sim::Schedule schedule = sim::Schedule::kCyclic;  ///< asserted loop policy
};

struct LiberalResult {
  trace::Trace approx;  ///< synthetic trace of the re-simulated loop
  Tick loop_time = 0;   ///< LoopEnd - LoopBegin of the re-simulation
  std::vector<trace::ProcId> iteration_to_proc;  ///< re-simulated mapping
};

/// Lowers the extracted shape back to a finalized IR program: one parallel
/// loop under `schedule` with per-iteration segment cost functions (the
/// liberal replay program).  Shared by the liberal re-simulation and the
/// analytical model so both evaluate exactly the same program.
sim::Program lower_doacross_shape(const DoacrossShape& shape,
                                  sim::Schedule schedule);

/// Re-simulates the extracted loop under the asserted scheduling policy.
LiberalResult liberal_approximation(const DoacrossShape& shape,
                                    const LiberalOptions& options);

}  // namespace perturb::core
