#include "core/analytic.hpp"

#include <utility>

#include "model/model.hpp"

namespace perturb::core {

AnalyticResult analytic_approximation(const DoacrossShape& shape,
                                      const LiberalOptions& options) {
  const sim::Program prog = lower_doacross_shape(shape, options.schedule);
  // No probes: the replay program models the de-instrumented execution, like
  // the liberal re-simulation's NullInstrumentation run.  With zero probe
  // charges the program markers carry no cost, so the predicted end-to-end
  // time IS the loop time.
  model::Prediction pred =
      model::predict_program(prog, options.machine, model::no_probes());
  AnalyticResult result;
  result.loop_time = pred.total;
  result.uncertainty = pred.uncertainty;
  result.caveats = std::move(pred.caveats);
  return result;
}

}  // namespace perturb::core
