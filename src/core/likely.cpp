#include "core/likely.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/parallel.hpp"
#include "support/prng.hpp"

namespace perturb::core {

double LikelyDistribution::percentile_of(Tick t) const {
  if (loop_times.empty()) return 0.0;
  const auto it = std::upper_bound(loop_times.begin(), loop_times.end(), t);
  return static_cast<double>(it - loop_times.begin()) /
         static_cast<double>(loop_times.size());
}

LikelyDistribution likely_executions(const DoacrossShape& shape,
                                     const LikelyOptions& options) {
  PERTURB_CHECK(options.samples > 0);
  PERTURB_CHECK(options.cost_uncertainty >= 0.0 &&
                options.cost_uncertainty < 1.0);

  LikelyDistribution dist;
  dist.loop_times.assign(options.samples, 0);

  // Each sample's jitter stream is derived from (seed, sample index) alone
  // and its result lands in its own slot, so the distribution is
  // bit-identical at any worker count.
  support::parallel_for(options.threads, options.samples, [&](std::size_t s) {
    // Perturb the iteration costs within the uncertainty band.  The
    // uncertainty has two physical components: a *correlated* factor per
    // sample (systematic calibration error — it shifts every cost together
    // and does not average out over iterations) and an *independent* factor
    // per (iteration, segment) (data-dependent noise).  Both are
    // deterministic in (seed, sample).
    DoacrossShape sample = shape;
    const std::uint64_t sample_key =
        support::hash_combine(options.seed, s);
    const double correlated =
        1.0 + options.cost_uncertainty *
                  support::keyed_jitter(sample_key, 0xc0, 0xde);
    for (auto& it : sample.iterations) {
      auto scale = [&](Cycles c, std::uint64_t segment) {
        const double j = support::keyed_jitter(
            sample_key, static_cast<std::uint64_t>(it.iteration), segment);
        const double factor =
            correlated * (1.0 + options.cost_uncertainty * j);
        const auto scaled = static_cast<Cycles>(
            std::llround(static_cast<double>(c) * factor));
        return scaled < 0 ? Cycles{0} : scaled;
      };
      it.pre = scale(it.pre, 1);
      it.chain = scale(it.chain, 2);
      it.post = scale(it.post, 3);
    }

    LiberalOptions replay;
    replay.machine = options.machine;
    replay.schedule = options.schedule;
    dist.loop_times[s] = liberal_approximation(sample, replay).loop_time;
  });

  std::sort(dist.loop_times.begin(), dist.loop_times.end());
  dist.min = dist.loop_times.front();
  dist.max = dist.loop_times.back();
  dist.median = dist.loop_times[dist.loop_times.size() / 2];
  dist.p95 =
      dist.loop_times[std::min(dist.loop_times.size() - 1,
                               dist.loop_times.size() * 95 / 100)];
  return dist;
}

}  // namespace perturb::core
