#include "core/timebased.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/check.hpp"

namespace perturb::core {

using trace::Event;
using trace::ProcId;
using trace::Trace;

Trace time_based_approximation(const Trace& measured,
                               const AnalysisOverheads& overheads) {
  struct ProcState {
    bool started = false;
    Tick cumulative_overhead = 0;
    Tick last_approx = 0;
  };
  std::unordered_map<ProcId, ProcState> procs;

  Trace approx(measured.info());
  approx.info().name = measured.info().name + "/time-based";

  // Telescoping the per-event recurrence gives
  //   t_a(e_k) = t_m(e_k) - sum_{j<=k} alpha(e_j)   (per processor),
  // which lets per-event jitter residuals cancel instead of accumulating;
  // clamping enforces only per-processor monotonicity and t >= 0.
  for (const Event& e : measured) {
    ProcState& st = procs[e.proc];
    st.cumulative_overhead += overheads.probe_for(e.kind);
    Tick t = e.time - st.cumulative_overhead;
    if (t < 0) t = 0;
    if (st.started) t = std::max(t, st.last_approx);
    st.started = true;
    st.last_approx = t;
    Event out = e;
    out.time = t;
    approx.append(out);
  }
  approx.sort_canonical();
  return approx;
}

}  // namespace perturb::core
