// Monte-Carlo exploration of likely executions (§4.1).
//
// A conservative approximation is guaranteed to be a *feasible* execution,
// but the paper stresses that the interesting question is whether it is a
// *likely* one — and that computing the likelihood distribution of feasible
// executions "is an extremely difficult problem, requiring a model of time
// and concurrent execution".  The simulator is exactly such a model, so this
// module estimates the distribution empirically: it re-simulates the
// extracted loop many times with the per-iteration costs perturbed inside a
// stated uncertainty band, yielding a sampled distribution of loop times
// against which an approximation can be placed.
#pragma once

#include <cstdint>
#include <vector>

#include "core/liberal.hpp"

namespace perturb::core {

struct LikelyOptions {
  sim::MachineConfig machine;
  sim::Schedule schedule = sim::Schedule::kCyclic;
  std::size_t samples = 64;
  /// Relative uniform cost uncertainty: each sampled run scales every
  /// iteration segment by a factor in [1-u, 1+u].
  double cost_uncertainty = 0.05;
  std::uint64_t seed = 1991;
  /// Worker threads for the Monte-Carlo fan-out (0 = hardware concurrency).
  /// Every sample derives its jitter from (seed, sample) alone, so the
  /// distribution is bit-identical at any thread count.
  std::size_t threads = 1;
};

struct LikelyDistribution {
  std::vector<Tick> loop_times;  ///< sorted ascending, one per sample
  Tick min = 0;
  Tick median = 0;
  Tick p95 = 0;
  Tick max = 0;

  /// Fraction of sampled executions no slower than `t` (0 = faster than all
  /// samples, 1 = slower than all).  An approximation far outside [0, 1]'s
  /// interior is feasible but unlikely.
  double percentile_of(Tick t) const;
};

/// Samples the loop-time distribution of the extracted loop under the given
/// scheduling policy and cost uncertainty.
LikelyDistribution likely_executions(const DoacrossShape& shape,
                                     const LikelyOptions& options);

}  // namespace perturb::core
