#include "core/eventbased.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "support/check.hpp"
#include "support/text.hpp"

namespace perturb::core {

namespace {

using trace::Event;
using trace::EventKind;
using trace::SyncKey;
using trace::Trace;
using trace::TraceIndex;

constexpr std::size_t kNone = TraceIndex::npos;

class Reconstructor {
 public:
  Reconstructor(const TraceIndex& index, const AnalysisOverheads& ov,
                const EventBasedOptions& opt)
      : idx_(index), measured_(index.trace()), ov_(ov), opt_(opt) {}

  EventBasedResult run() {
    const std::size_t n = measured_.size();
    t_a_.assign(n, 0);
    resolved_.assign(n, 0);
    resolve_all();
    return build_result();
  }

 private:
  /// Counting-semaphore dependency of acquire event i under the declared
  /// capacities: the k-th acquire (0-based) waits for the (k - capacity)-th
  /// release in measured order; the first `capacity` acquires take initial
  /// permits and have no cross dependency.  Returns {modeled, dep}: not
  /// modeled when the semaphore's capacity is unknown (time-based fallback).
  std::pair<bool, std::size_t> sem_dep(std::size_t i) const {
    const Event& e = measured_[i];
    const auto cap = opt_.semaphore_capacity.find(e.object);
    if (cap == opt_.semaphore_capacity.end()) return {false, kNone};
    const std::size_t k = idx_.sem_ordinal(i);
    if (k < static_cast<std::size_t>(cap->second)) return {true, kNone};
    const auto& releases = idx_.sem_releases(e.object);
    const std::size_t r = k - static_cast<std::size_t>(cap->second);
    return {true, r < releases.size() ? releases[r] : kNone};
  }

  // ---- resolution ---------------------------------------------------------

  /// Per-processor reconstruction state between synchronization points.
  ///
  /// Within a segment of independent execution the approximated time is
  /// computed *cumulatively* from the segment's basis —
  ///     t_a(e) = t_a(basis) + [t_m(e) - t_m(basis)] - sum(alpha since basis)
  /// — so per-event probe-cost jitter telescopes instead of accumulating
  /// through per-gap clamping.  The basis is re-anchored at every event whose
  /// time comes from a dependency model (awaitE, lock acquire, barrier
  /// depart, loop fork).
  struct SegmentBasis {
    bool valid = false;
    Tick basis_ta = 0;
    Tick basis_tm = 0;
    Tick overhead = 0;  ///< mean probe overhead accrued since the basis
  };

  /// Base approximation: the de-perturbed measured gap from the event's
  /// causal predecessor — the loop spawn for a processor's first event in a
  /// parallel-loop episode (its own previous event happened before an idle
  /// stretch whose measured length is the *master's* perturbed time), the
  /// segment basis otherwise.  `fork` is the caller's idx_.fork_dep(i).
  Tick base_time(std::size_t i, std::size_t fork) {
    const Event& e = measured_[i];
    const Cycles alpha = ov_.probe_for(e.kind);
    if (fork != kNone) {
      Tick gap = (e.time - measured_[fork].time) - alpha;
      if (gap < 0) gap = 0;
      return t_a_[fork] + gap;
    }
    if (basis_.size() <= e.proc) basis_.resize(e.proc + 1u);
    SegmentBasis& seg = basis_[e.proc];
    if (!seg.valid) {
      const Tick t = e.time - alpha;
      return t < 0 ? 0 : t;
    }
    seg.overhead += alpha;
    Tick t = seg.basis_ta + (e.time - seg.basis_tm) - seg.overhead;
    if (t < seg.basis_ta) t = seg.basis_ta;
    return t;
  }

  /// Anchors a new segment basis at event `i` with approximated time `t`.
  void rebase(std::size_t i, Tick t) {
    const Event& e = measured_[i];
    if (basis_.size() <= e.proc) basis_.resize(e.proc + 1u);
    basis_[e.proc] = {true, t, e.time, 0};
  }

  /// Fused readiness test and resolution.  Checks event i's dependencies
  /// and, when all are resolved, computes its approximated time in the same
  /// pass, so each sync-table lookup happens once instead of once in ready()
  /// and again in resolve().  Returns false — with no side effects — while a
  /// dependency is still unresolved.
  bool try_resolve(std::size_t i) {
    const Event& e = measured_[i];
    const std::size_t fork = idx_.fork_dep(i);
    if (fork != kNone && !resolved_[fork]) return false;
    Tick t;
    bool anchored = false;  // time came from a dependency model
    switch (e.kind) {
      case EventKind::kAwaitEnd: {
        // A blocked awaitE is retried every resolution round; cache its
        // partner lookups so the sync-table binary searches run once per
        // event instead of once per retry.
        if (pending_.size() <= e.proc) pending_.resize(e.proc + 1u);
        PendingAwait& pending = pending_[e.proc];
        if (pending.event != i) {
          const SyncKey key{e.object, e.payload};
          pending = {i, idx_.last_advance(key),
                     idx_.last_await_begin(key, e.proc)};
        }
        const std::size_t adv = pending.advance;
        if (adv != kNone && !resolved_[adv]) return false;
        const std::size_t ab = pending.await_begin;
        if (adv == kNone || ab == kNone) {
          // Degenerate trace (missing partner events): fall back to the
          // time-based rule.
          t = base_time(i, fork);
          break;
        }
        anchored = true;
        const Tick advance_t = t_a_[adv];
        const Tick await_b_t = t_a_[ab];
        ++stats_.awaits_total;
        // Measured waiting is judged by the await's *duration*: the awaitE
        // timestamp is inflated by its own probe, and the advance timestamp
        // by the advance probe, so comparing raw cross-processor times
        // misclassifies near-simultaneous cases.
        const Cycles gamma = ov_.probe_for(EventKind::kAwaitEnd);
        const Tick nowait_span =
            ov_.s_nowait + gamma + std::max<Cycles>(4, gamma / 4);
        const bool waited_measured =
            measured_[i].time - measured_[ab].time > nowait_span;
        // Continuous form of the paper's two-branch formula: the await
        // completes either s_nowait after its begin or s_wait after the
        // advance, whichever is later.  At the branch boundary the two
        // expressions meet, so near-critical races do not amplify modelling
        // jitter the way a hard branch would.
        const Tick no_wait_t = await_b_t + ov_.s_nowait;
        const Tick wait_t = advance_t + ov_.s_wait;
        const bool waits_approx = wait_t > no_wait_t;
        stats_.waits_measured += waited_measured ? 1 : 0;
        stats_.waits_approx += waits_approx ? 1 : 0;
        stats_.waits_removed += (waited_measured && !waits_approx) ? 1 : 0;
        stats_.waits_introduced += (!waited_measured && waits_approx) ? 1 : 0;
        t = std::max(no_wait_t, wait_t);
        break;
      }
      case EventKind::kLockAcquire: {
        if (!opt_.model_locks) {
          t = base_time(i, fork);
          break;
        }
        const std::size_t dep = idx_.lock_dep(i);
        if (dep != kNone && !resolved_[dep]) return false;
        anchored = true;
        // Conservative hand-off: the processor requests the lock immediately
        // after its previous recorded event; the lock becomes available when
        // the previous holder's (approximated) release completes.
        const std::size_t j = idx_.prev_on_proc(i);
        const Tick request = j == kNone ? 0 : t_a_[j];
        const Tick available = dep == kNone ? request : t_a_[dep];
        t = std::max(request, available) + ov_.lock_acquire;
        break;
      }
      case EventKind::kSemAcquire: {
        const auto [modeled, dep] = sem_dep(i);
        if (modeled && dep != kNone && !resolved_[dep]) return false;
        if (!modeled) {
          t = base_time(i, fork);  // capacity unknown: time-based fallback
          break;
        }
        anchored = true;
        const std::size_t j = idx_.prev_on_proc(i);
        const Tick request = j == kNone ? 0 : t_a_[j];
        const Tick available = dep == kNone ? request : t_a_[dep];
        t = std::max(request, available) + ov_.sem_acquire;
        break;
      }
      case EventKind::kBarrierDepart: {
        if (!opt_.model_barriers) {
          t = base_time(i, fork);
          break;
        }
        const auto* ep = idx_.barrier_episode(e.object, e.payload);
        Tick release = 0;
        if (ep != nullptr) {
          for (const std::size_t a : ep->arrivals)
            if (!resolved_[a]) return false;
          for (const std::size_t a : ep->arrivals)
            release = std::max(release, t_a_[a]);
        }
        anchored = true;
        t = release + ov_.barrier_depart;
        break;
      }
      default:
        t = base_time(i, fork);
        break;
    }
    // Per-processor monotonicity: the dependency models can only push events
    // later than the same-processor predecessor, never earlier.
    const std::size_t j = idx_.prev_on_proc(i);
    if (j != kNone) t = std::max(t, t_a_[j]);
    t_a_[i] = t;
    resolved_[i] = 1;
    // Dependency-model, fork, and segment-opening events anchor a new
    // independent-execution segment.
    const bool first_on_proc =
        basis_.size() <= e.proc || !basis_[e.proc].valid;
    if (anchored || first_on_proc || fork != kNone) rebase(i, t);
    return true;
  }

  void resolve_all() {
    const std::size_t num_procs = idx_.num_procs();
    std::vector<std::size_t> cursor(num_procs, 0);
    bool progress = true;
    std::size_t remaining = measured_.size();
    while (progress && remaining > 0) {
      progress = false;
      for (std::size_t p = 0; p < num_procs; ++p) {
        auto& pos = cursor[p];
        const auto& evs = idx_.events_of(static_cast<trace::ProcId>(p));
        while (pos < evs.size() && try_resolve(evs[pos])) {
          ++pos;
          --remaining;
          progress = true;
        }
      }
    }
    PERTURB_CHECK_MSG(
        remaining == 0,
        support::strf("event-based analysis deadlocked with %zu unresolved "
                      "events (inconsistent measured trace?)",
                      remaining));
  }

  // ---- output ------------------------------------------------------------

  EventBasedResult build_result() {
    Trace approx(measured_.info());
    approx.info().name = measured_.info().name + "/event-based";
    approx.events().reserve(measured_.size());
    // The monotonicity clamp makes t_a nondecreasing along every
    // per-processor chain, so the approximated trace is a k-way merge of the
    // chains keyed by (t_a, original index) — identical to the stable sort
    // by time of the re-timed events, without sorting all n of them.  With
    // at most one cursor per processor a linear min-scan beats a heap: the
    // scan is a handful of predictable compares per output event.
    struct Cursor {
      Tick t;
      std::size_t idx;
      trace::ProcId proc;
      std::size_t pos;
    };
    std::vector<Cursor> cursors;
    cursors.reserve(idx_.num_procs());
    for (std::size_t p = 0; p < idx_.num_procs(); ++p) {
      const auto& evs = idx_.events_of(static_cast<trace::ProcId>(p));
      if (!evs.empty())
        cursors.push_back(
            {t_a_[evs[0]], evs[0], static_cast<trace::ProcId>(p), 0});
    }
    while (!cursors.empty()) {
      std::size_t best = 0;
      for (std::size_t k = 1; k < cursors.size(); ++k) {
        const Cursor& a = cursors[k];
        const Cursor& b = cursors[best];
        if (a.t < b.t || (a.t == b.t && a.idx < b.idx)) best = k;
      }
      Cursor& c = cursors[best];
      Event out = measured_[c.idx];
      out.time = c.t;
      approx.append(out);
      const auto& evs = idx_.events_of(c.proc);
      if (++c.pos < evs.size()) {
        c.idx = evs[c.pos];
        c.t = t_a_[c.idx];
      } else {
        cursors[best] = cursors.back();
        cursors.pop_back();
      }
    }
    EventBasedResult result = std::move(stats_);
    result.approx = std::move(approx);
    return result;
  }

  const TraceIndex& idx_;
  const Trace& measured_;
  const AnalysisOverheads& ov_;
  const EventBasedOptions& opt_;

  /// Partner lookups of the awaitE a processor is currently blocked on.
  struct PendingAwait {
    std::size_t event = kNone;
    std::size_t advance = kNone;
    std::size_t await_begin = kNone;
  };

  std::vector<Tick> t_a_;
  std::vector<std::uint8_t> resolved_;  ///< flat flags; vector<bool> is slower
  std::vector<SegmentBasis> basis_;     ///< per-processor segment state
  std::vector<PendingAwait> pending_;   ///< per-processor awaitE memo
  EventBasedResult stats_;
};

}  // namespace

EventBasedResult event_based_approximation(const trace::Trace& measured,
                                           const AnalysisOverheads& overheads,
                                           const EventBasedOptions& options) {
  const TraceIndex index(measured);
  return Reconstructor(index, overheads, options).run();
}

EventBasedResult event_based_approximation(const trace::TraceIndex& index,
                                           const AnalysisOverheads& overheads,
                                           const EventBasedOptions& options) {
  return Reconstructor(index, overheads, options).run();
}

}  // namespace perturb::core
