#include "core/eventbased.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "support/check.hpp"
#include "support/text.hpp"

namespace perturb::core {

namespace {

using trace::Event;
using trace::EventKind;
using trace::ObjectId;
using trace::ProcId;
using trace::SyncKey;
using trace::SyncKeyHash;
using trace::Trace;

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

class Reconstructor {
 public:
  Reconstructor(const Trace& measured, const AnalysisOverheads& ov,
                const EventBasedOptions& opt)
      : measured_(measured), ov_(ov), opt_(opt) {}

  EventBasedResult run() {
    index_events();
    resolve_all();
    return build_result();
  }

 private:
  // ---- indexing ---------------------------------------------------------

  void index_events() {
    const std::size_t n = measured_.size();
    t_a_.assign(n, 0);
    resolved_.assign(n, false);
    prev_on_proc_.assign(n, kNone);

    std::unordered_map<ProcId, std::size_t> last_on_proc;
    std::unordered_map<ObjectId, std::size_t> last_release;
    std::unordered_map<ObjectId, std::vector<std::size_t>> sem_releases;
    std::unordered_map<ObjectId, std::size_t> sem_acquire_count;
    // Fork tracking: a processor's first event inside a parallel-loop
    // episode is caused by the loop's spawn, not by that processor's
    // previous event (it was idle through the master's sequential section).
    std::size_t current_loop_begin = kNone;
    std::set<ProcId> joined;

    for (std::size_t i = 0; i < n; ++i) {
      const Event& e = measured_[i];
      if (e.kind == EventKind::kLoopBegin) {
        current_loop_begin = i;
        joined.clear();
        joined.insert(e.proc);  // the master's own chain already covers it
      } else if (e.kind == EventKind::kLoopEnd) {
        current_loop_begin = kNone;
      } else if (current_loop_begin != kNone && joined.insert(e.proc).second) {
        fork_dep_[i] = current_loop_begin;
      }
      // per-processor chain
      const auto lp = last_on_proc.find(e.proc);
      if (lp != last_on_proc.end()) prev_on_proc_[i] = lp->second;
      last_on_proc[e.proc] = i;
      if (proc_events_.size() <= e.proc) proc_events_.resize(e.proc + 1u);
      proc_events_[e.proc].push_back(i);

      const SyncKey key{e.object, e.payload};
      switch (e.kind) {
        case EventKind::kAdvance:
          advance_of_[key] = i;
          break;
        case EventKind::kAwaitBegin:
          await_begin_of_[{key, e.proc}] = i;
          break;
        case EventKind::kLockAcquire: {
          const auto lr = last_release.find(e.object);
          lock_dep_[i] = lr == last_release.end() ? kNone : lr->second;
          break;
        }
        case EventKind::kLockRelease:
          last_release[e.object] = i;
          break;
        case EventKind::kSemAcquire: {
          // The k-th acquire (0-based) waits for the (k - capacity)-th
          // release in measured order; the first `capacity` acquires take
          // initial permits and have no cross dependency.
          const auto cap = opt_.semaphore_capacity.find(e.object);
          if (cap == opt_.semaphore_capacity.end()) break;
          const std::size_t k = sem_acquire_count[e.object]++;
          if (k < static_cast<std::size_t>(cap->second)) {
            sem_dep_[i] = kNone;
            break;
          }
          const auto& releases = sem_releases[e.object];
          const std::size_t r = k - static_cast<std::size_t>(cap->second);
          sem_dep_[i] = r < releases.size() ? releases[r] : kNone;
          break;
        }
        case EventKind::kSemRelease:
          sem_releases[e.object].push_back(i);
          break;
        case EventKind::kBarrierArrive:
          barrier_arrivals_[{e.object, e.payload}].push_back(i);
          break;
        default:
          break;
      }
    }
  }

  // ---- resolution ---------------------------------------------------------

  bool ready(std::size_t i) const {
    const auto fork = fork_dep_.find(i);
    if (fork != fork_dep_.end() && !resolved_[fork->second]) return false;
    const Event& e = measured_[i];
    switch (e.kind) {
      case EventKind::kAwaitEnd: {
        const auto adv = advance_of_.find({e.object, e.payload});
        return adv == advance_of_.end() || resolved_[adv->second];
      }
      case EventKind::kLockAcquire: {
        if (!opt_.model_locks) return true;
        const std::size_t dep = lock_dep_.at(i);
        return dep == kNone || resolved_[dep];
      }
      case EventKind::kBarrierDepart: {
        if (!opt_.model_barriers) return true;
        const auto it = barrier_arrivals_.find({e.object, e.payload});
        if (it == barrier_arrivals_.end()) return true;
        for (const std::size_t a : it->second)
          if (!resolved_[a]) return false;
        return true;
      }
      case EventKind::kSemAcquire: {
        const auto dep = sem_dep_.find(i);
        return dep == sem_dep_.end() || dep->second == kNone ||
               resolved_[dep->second];
      }
      default:
        return true;
    }
  }

  /// Per-processor reconstruction state between synchronization points.
  ///
  /// Within a segment of independent execution the approximated time is
  /// computed *cumulatively* from the segment's basis —
  ///     t_a(e) = t_a(basis) + [t_m(e) - t_m(basis)] - sum(alpha since basis)
  /// — so per-event probe-cost jitter telescopes instead of accumulating
  /// through per-gap clamping.  The basis is re-anchored at every event whose
  /// time comes from a dependency model (awaitE, lock acquire, barrier
  /// depart, loop fork).
  struct SegmentBasis {
    bool valid = false;
    Tick basis_ta = 0;
    Tick basis_tm = 0;
    Tick overhead = 0;  ///< mean probe overhead accrued since the basis
  };

  /// Base approximation: the de-perturbed measured gap from the event's
  /// causal predecessor — the loop spawn for a processor's first event in a
  /// parallel-loop episode (its own previous event happened before an idle
  /// stretch whose measured length is the *master's* perturbed time), the
  /// segment basis otherwise.
  Tick base_time(std::size_t i) {
    const Event& e = measured_[i];
    const Cycles alpha = ov_.probe_for(e.kind);
    const auto fork = fork_dep_.find(i);
    if (fork != fork_dep_.end()) {
      const std::size_t lb = fork->second;
      Tick gap = (e.time - measured_[lb].time) - alpha;
      if (gap < 0) gap = 0;
      return t_a_[lb] + gap;
    }
    if (basis_.size() <= e.proc) basis_.resize(e.proc + 1u);
    SegmentBasis& seg = basis_[e.proc];
    if (!seg.valid) {
      const Tick t = e.time - alpha;
      return t < 0 ? 0 : t;
    }
    seg.overhead += alpha;
    Tick t = seg.basis_ta + (e.time - seg.basis_tm) - seg.overhead;
    if (t < seg.basis_ta) t = seg.basis_ta;
    return t;
  }

  /// Anchors a new segment basis at event `i` with approximated time `t`.
  void rebase(std::size_t i, Tick t) {
    const Event& e = measured_[i];
    if (basis_.size() <= e.proc) basis_.resize(e.proc + 1u);
    basis_[e.proc] = {true, t, e.time, 0};
  }

  void resolve(std::size_t i) {
    const Event& e = measured_[i];
    Tick t;
    bool anchored = false;  // time came from a dependency model
    switch (e.kind) {
      case EventKind::kAwaitEnd: {
        const auto adv = advance_of_.find({e.object, e.payload});
        const auto ab = await_begin_of_.find({{e.object, e.payload}, e.proc});
        if (adv == advance_of_.end() || ab == await_begin_of_.end()) {
          // Degenerate trace (missing partner events): fall back to the
          // time-based rule.
          t = base_time(i);
          break;
        }
        anchored = true;
        const Tick advance_t = t_a_[adv->second];
        const Tick await_b_t = t_a_[ab->second];
        ++stats_.awaits_total;
        // Measured waiting is judged by the await's *duration*: the awaitE
        // timestamp is inflated by its own probe, and the advance timestamp
        // by the advance probe, so comparing raw cross-processor times
        // misclassifies near-simultaneous cases.
        const Cycles gamma = ov_.probe_for(EventKind::kAwaitEnd);
        const Tick nowait_span =
            ov_.s_nowait + gamma + std::max<Cycles>(4, gamma / 4);
        const bool waited_measured =
            measured_[i].time - measured_[ab->second].time > nowait_span;
        // Continuous form of the paper's two-branch formula: the await
        // completes either s_nowait after its begin or s_wait after the
        // advance, whichever is later.  At the branch boundary the two
        // expressions meet, so near-critical races do not amplify modelling
        // jitter the way a hard branch would.
        const Tick no_wait_t = await_b_t + ov_.s_nowait;
        const Tick wait_t = advance_t + ov_.s_wait;
        const bool waits_approx = wait_t > no_wait_t;
        stats_.waits_measured += waited_measured ? 1 : 0;
        stats_.waits_approx += waits_approx ? 1 : 0;
        stats_.waits_removed += (waited_measured && !waits_approx) ? 1 : 0;
        stats_.waits_introduced += (!waited_measured && waits_approx) ? 1 : 0;
        t = std::max(no_wait_t, wait_t);
        break;
      }
      case EventKind::kLockAcquire: {
        if (!opt_.model_locks) {
          t = base_time(i);
          break;
        }
        anchored = true;
        // Conservative hand-off: the processor requests the lock immediately
        // after its previous recorded event; the lock becomes available when
        // the previous holder's (approximated) release completes.
        const std::size_t j = prev_on_proc_[i];
        const Tick request = j == kNone ? 0 : t_a_[j];
        const std::size_t dep = lock_dep_.at(i);
        const Tick available = dep == kNone ? request : t_a_[dep];
        t = std::max(request, available) + ov_.lock_acquire;
        break;
      }
      case EventKind::kSemAcquire: {
        const auto dep = sem_dep_.find(i);
        if (dep == sem_dep_.end()) {
          t = base_time(i);  // capacity unknown: time-based fallback
          break;
        }
        anchored = true;
        const std::size_t j = prev_on_proc_[i];
        const Tick request = j == kNone ? 0 : t_a_[j];
        const Tick available = dep->second == kNone ? request : t_a_[dep->second];
        t = std::max(request, available) + ov_.sem_acquire;
        break;
      }
      case EventKind::kBarrierDepart: {
        if (!opt_.model_barriers) {
          t = base_time(i);
          break;
        }
        anchored = true;
        const auto it = barrier_arrivals_.find({e.object, e.payload});
        Tick release = 0;
        if (it != barrier_arrivals_.end())
          for (const std::size_t a : it->second)
            release = std::max(release, t_a_[a]);
        t = release + ov_.barrier_depart;
        break;
      }
      default:
        t = base_time(i);
        break;
    }
    // Per-processor monotonicity: the dependency models can only push events
    // later than the same-processor predecessor, never earlier.
    const std::size_t j = prev_on_proc_[i];
    if (j != kNone) t = std::max(t, t_a_[j]);
    t_a_[i] = t;
    resolved_[i] = true;
    // Dependency-model, fork, and segment-opening events anchor a new
    // independent-execution segment.
    const bool first_on_proc =
        basis_.size() <= e.proc || !basis_[e.proc].valid;
    if (anchored || first_on_proc || fork_dep_.count(i) > 0) rebase(i, t);
  }

  void resolve_all() {
    std::vector<std::size_t> cursor(proc_events_.size(), 0);
    bool progress = true;
    std::size_t remaining = measured_.size();
    while (progress && remaining > 0) {
      progress = false;
      for (std::size_t p = 0; p < proc_events_.size(); ++p) {
        auto& pos = cursor[p];
        const auto& evs = proc_events_[p];
        while (pos < evs.size() && ready(evs[pos])) {
          resolve(evs[pos]);
          ++pos;
          --remaining;
          progress = true;
        }
      }
    }
    PERTURB_CHECK_MSG(
        remaining == 0,
        support::strf("event-based analysis deadlocked with %zu unresolved "
                      "events (inconsistent measured trace?)",
                      remaining));
  }

  // ---- output ------------------------------------------------------------

  EventBasedResult build_result() {
    Trace approx(measured_.info());
    approx.info().name = measured_.info().name + "/event-based";
    for (std::size_t i = 0; i < measured_.size(); ++i) {
      Event out = measured_[i];
      out.time = t_a_[i];
      approx.append(out);
    }
    approx.sort_canonical();
    EventBasedResult result = std::move(stats_);
    result.approx = std::move(approx);
    return result;
  }

  const Trace& measured_;
  const AnalysisOverheads& ov_;
  const EventBasedOptions& opt_;

  std::vector<Tick> t_a_;
  std::vector<bool> resolved_;
  std::vector<std::size_t> prev_on_proc_;
  std::vector<std::vector<std::size_t>> proc_events_;
  std::unordered_map<SyncKey, std::size_t, SyncKeyHash> advance_of_;
  std::map<std::pair<SyncKey, ProcId>, std::size_t> await_begin_of_;
  std::unordered_map<std::size_t, std::size_t> lock_dep_;
  std::unordered_map<std::size_t, std::size_t> sem_dep_;
  std::unordered_map<std::size_t, std::size_t> fork_dep_;
  std::vector<SegmentBasis> basis_;  ///< per-processor segment state
  std::map<std::pair<ObjectId, std::int64_t>, std::vector<std::size_t>>
      barrier_arrivals_;
  EventBasedResult stats_;
};

}  // namespace

EventBasedResult event_based_approximation(const trace::Trace& measured,
                                           const AnalysisOverheads& overheads,
                                           const EventBasedOptions& options) {
  return Reconstructor(measured, overheads, options).run();
}

}  // namespace perturb::core
