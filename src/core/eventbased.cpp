#include "core/eventbased.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "support/check.hpp"
#include "support/text.hpp"

namespace perturb::core {

namespace {

using trace::Event;
using trace::EventKind;
using trace::SyncKey;
using trace::Trace;
using trace::TraceIndex;

constexpr std::size_t kNone = TraceIndex::npos;

class Reconstructor {
 public:
  Reconstructor(const TraceIndex& index, const AnalysisOverheads& ov,
                const EventBasedOptions& opt)
      : idx_(index), measured_(index.trace()), ov_(ov), opt_(opt) {}

  EventBasedResult run() {
    const std::size_t n = measured_.size();
    t_a_.assign(n, 0);
    resolved_.assign(n, 0);
    resolve_all();
    return build_result();
  }

 private:
  /// Counting-semaphore dependency of acquire event i under the declared
  /// capacities: the k-th acquire (0-based) waits for the (k - capacity)-th
  /// release in measured order; the first `capacity` acquires take initial
  /// permits and have no cross dependency.  Returns {modeled, dep}: not
  /// modeled when the semaphore's capacity is unknown (time-based fallback).
  std::pair<bool, std::size_t> sem_dep(std::size_t i) const {
    const Event& e = measured_[i];
    const auto cap = opt_.semaphore_capacity.find(e.object);
    if (cap == opt_.semaphore_capacity.end()) return {false, kNone};
    const std::size_t k = idx_.sem_ordinal(i);
    if (k < static_cast<std::size_t>(cap->second)) return {true, kNone};
    const auto& releases = idx_.sem_releases(e.object);
    const std::size_t r = k - static_cast<std::size_t>(cap->second);
    return {true, r < releases.size() ? releases[r] : kNone};
  }

  // ---- resolution ---------------------------------------------------------

  /// Per-processor reconstruction state between synchronization points.
  ///
  /// Within a segment of independent execution the approximated time is
  /// computed *cumulatively* from the segment's basis —
  ///     t_a(e) = t_a(basis) + [t_m(e) - t_m(basis)] - sum(alpha since basis)
  /// — so per-event probe-cost jitter telescopes instead of accumulating
  /// through per-gap clamping.  The basis is re-anchored at every event whose
  /// time comes from a dependency model (awaitE, lock acquire, barrier
  /// depart, loop fork).
  struct SegmentBasis {
    bool valid = false;
    Tick basis_ta = 0;
    Tick basis_tm = 0;
    Tick overhead = 0;  ///< mean probe overhead accrued since the basis
  };

  /// Base approximation: the de-perturbed measured gap from the event's
  /// causal predecessor — the loop spawn for a processor's first event in a
  /// parallel-loop episode (its own previous event happened before an idle
  /// stretch whose measured length is the *master's* perturbed time), the
  /// segment basis otherwise.  `fork` is the caller's idx_.fork_dep(i).
  Tick base_time(std::size_t i, std::size_t fork) {
    const Event& e = measured_[i];
    const Cycles alpha = ov_.probe_for(e.kind);
    if (fork != kNone) {
      Tick gap = (e.time - measured_[fork].time) - alpha;
      if (gap < 0) gap = 0;
      return t_a_[fork] + gap;
    }
    if (basis_.size() <= e.proc) basis_.resize(e.proc + 1u);
    SegmentBasis& seg = basis_[e.proc];
    if (!seg.valid) {
      const Tick t = e.time - alpha;
      return t < 0 ? 0 : t;
    }
    seg.overhead += alpha;
    Tick t = seg.basis_ta + (e.time - seg.basis_tm) - seg.overhead;
    if (t < seg.basis_ta) t = seg.basis_ta;
    return t;
  }

  /// Anchors a new segment basis at event `i` with approximated time `t`.
  void rebase(std::size_t i, Tick t) {
    const Event& e = measured_[i];
    if (basis_.size() <= e.proc) basis_.resize(e.proc + 1u);
    basis_[e.proc] = {true, t, e.time, 0};
  }

  /// Fused readiness test and resolution.  Checks event i's dependencies
  /// and, when all are resolved, computes its approximated time in the same
  /// pass, so each sync-table lookup happens once instead of once in ready()
  /// and again in resolve().  Returns false — with no side effects — while a
  /// dependency is still unresolved.
  bool try_resolve(std::size_t i) {
    const Event& e = measured_[i];
    const std::size_t fork = idx_.fork_dep(i);
    if (fork != kNone && !resolved_[fork]) return false;
    Tick t;
    bool anchored = false;  // time came from a dependency model
    switch (e.kind) {
      case EventKind::kAwaitEnd: {
        // A blocked awaitE is retried every resolution round; cache its
        // partner lookups so the sync-table binary searches run once per
        // event instead of once per retry.
        if (pending_.size() <= e.proc) pending_.resize(e.proc + 1u);
        PendingAwait& pending = pending_[e.proc];
        if (pending.event != i) {
          const SyncKey key{e.object, e.payload};
          pending = {i, idx_.last_advance(key),
                     idx_.last_await_begin(key, e.proc)};
        }
        const std::size_t adv = pending.advance;
        if (adv != kNone && !resolved_[adv]) return false;
        const std::size_t ab = pending.await_begin;
        if (adv == kNone || ab == kNone) {
          // Degenerate trace (missing partner events): fall back to the
          // time-based rule.
          t = base_time(i, fork);
          break;
        }
        anchored = true;
        const Tick advance_t = t_a_[adv];
        const Tick await_b_t = t_a_[ab];
        ++stats_.awaits_total;
        // Measured waiting is judged by the await's *duration*: the awaitE
        // timestamp is inflated by its own probe, and the advance timestamp
        // by the advance probe, so comparing raw cross-processor times
        // misclassifies near-simultaneous cases.
        const Cycles gamma = ov_.probe_for(EventKind::kAwaitEnd);
        const Tick nowait_span =
            ov_.s_nowait + gamma + std::max<Cycles>(4, gamma / 4);
        const bool waited_measured =
            measured_[i].time - measured_[ab].time > nowait_span;
        // Continuous form of the paper's two-branch formula: the await
        // completes either s_nowait after its begin or s_wait after the
        // advance, whichever is later.  At the branch boundary the two
        // expressions meet, so near-critical races do not amplify modelling
        // jitter the way a hard branch would.
        const Tick no_wait_t = await_b_t + ov_.s_nowait;
        const Tick wait_t = advance_t + ov_.s_wait;
        const bool waits_approx = wait_t > no_wait_t;
        stats_.waits_measured += waited_measured ? 1 : 0;
        stats_.waits_approx += waits_approx ? 1 : 0;
        stats_.waits_removed += (waited_measured && !waits_approx) ? 1 : 0;
        stats_.waits_introduced += (!waited_measured && waits_approx) ? 1 : 0;
        t = std::max(no_wait_t, wait_t);
        break;
      }
      case EventKind::kLockAcquire: {
        if (!opt_.model_locks) {
          t = base_time(i, fork);
          break;
        }
        const std::size_t dep = idx_.lock_dep(i);
        if (dep != kNone && !resolved_[dep]) return false;
        anchored = true;
        // Conservative hand-off: the processor requests the lock immediately
        // after its previous recorded event; the lock becomes available when
        // the previous holder's (approximated) release completes.
        const std::size_t j = idx_.prev_on_proc(i);
        const Tick request = j == kNone ? 0 : t_a_[j];
        const Tick available = dep == kNone ? request : t_a_[dep];
        t = std::max(request, available) + ov_.lock_acquire;
        break;
      }
      case EventKind::kSemAcquire: {
        const auto [modeled, dep] = sem_dep(i);
        if (modeled && dep != kNone && !resolved_[dep]) return false;
        if (!modeled) {
          t = base_time(i, fork);  // capacity unknown: time-based fallback
          break;
        }
        anchored = true;
        const std::size_t j = idx_.prev_on_proc(i);
        const Tick request = j == kNone ? 0 : t_a_[j];
        const Tick available = dep == kNone ? request : t_a_[dep];
        t = std::max(request, available) + ov_.sem_acquire;
        break;
      }
      case EventKind::kBarrierDepart: {
        if (!opt_.model_barriers) {
          t = base_time(i, fork);
          break;
        }
        const auto* ep = idx_.barrier_episode(e.object, e.payload);
        Tick release = 0;
        if (ep != nullptr) {
          for (const std::size_t a : ep->arrivals)
            if (!resolved_[a]) return false;
          for (const std::size_t a : ep->arrivals)
            release = std::max(release, t_a_[a]);
        }
        anchored = true;
        t = release + ov_.barrier_depart;
        break;
      }
      default:
        t = base_time(i, fork);
        break;
    }
    // Per-processor monotonicity: the dependency models can only push events
    // later than the same-processor predecessor, never earlier.
    const std::size_t j = idx_.prev_on_proc(i);
    if (j != kNone) t = std::max(t, t_a_[j]);
    t_a_[i] = t;
    resolved_[i] = 1;
    // Dependency-model, fork, and segment-opening events anchor a new
    // independent-execution segment.
    const bool first_on_proc =
        basis_.size() <= e.proc || !basis_[e.proc].valid;
    if (anchored || first_on_proc || fork != kNone) rebase(i, t);
    return true;
  }

  void resolve_all() {
    const std::size_t num_procs = idx_.num_procs();
    std::vector<std::size_t> cursor(num_procs, 0);
    bool progress = true;
    std::size_t remaining = measured_.size();
    while (progress && remaining > 0) {
      progress = false;
      for (std::size_t p = 0; p < num_procs; ++p) {
        auto& pos = cursor[p];
        const auto& evs = idx_.events_of(static_cast<trace::ProcId>(p));
        while (pos < evs.size() && try_resolve(evs[pos])) {
          ++pos;
          --remaining;
          progress = true;
        }
      }
    }
    PERTURB_CHECK_MSG(
        remaining == 0,
        support::strf("event-based analysis deadlocked with %zu unresolved "
                      "events (inconsistent measured trace?)",
                      remaining));
  }

  // ---- output ------------------------------------------------------------

  EventBasedResult build_result() {
    Trace approx(measured_.info());
    approx.info().name = measured_.info().name + "/event-based";
    approx.events().reserve(measured_.size());
    // The monotonicity clamp makes t_a nondecreasing along every
    // per-processor chain, so the approximated trace is a k-way merge of the
    // chains keyed by (t_a, original index) — identical to the stable sort
    // by time of the re-timed events, without sorting all n of them.  With
    // at most one cursor per processor a linear min-scan beats a heap: the
    // scan is a handful of predictable compares per output event.
    struct Cursor {
      Tick t;
      std::size_t idx;
      trace::ProcId proc;
      std::size_t pos;
    };
    std::vector<Cursor> cursors;
    cursors.reserve(idx_.num_procs());
    for (std::size_t p = 0; p < idx_.num_procs(); ++p) {
      const auto& evs = idx_.events_of(static_cast<trace::ProcId>(p));
      if (!evs.empty())
        cursors.push_back(
            {t_a_[evs[0]], evs[0], static_cast<trace::ProcId>(p), 0});
    }
    while (!cursors.empty()) {
      std::size_t best = 0;
      for (std::size_t k = 1; k < cursors.size(); ++k) {
        const Cursor& a = cursors[k];
        const Cursor& b = cursors[best];
        if (a.t < b.t || (a.t == b.t && a.idx < b.idx)) best = k;
      }
      Cursor& c = cursors[best];
      Event out = measured_[c.idx];
      out.time = c.t;
      approx.append(out);
      const auto& evs = idx_.events_of(c.proc);
      if (++c.pos < evs.size()) {
        c.idx = evs[c.pos];
        c.t = t_a_[c.idx];
      } else {
        cursors[best] = cursors.back();
        cursors.pop_back();
      }
    }
    EventBasedResult result = std::move(stats_);
    result.approx = std::move(approx);
    return result;
  }

  const TraceIndex& idx_;
  const Trace& measured_;
  const AnalysisOverheads& ov_;
  const EventBasedOptions& opt_;

  /// Partner lookups of the awaitE a processor is currently blocked on.
  struct PendingAwait {
    std::size_t event = kNone;
    std::size_t advance = kNone;
    std::size_t await_begin = kNone;
  };

  std::vector<Tick> t_a_;
  std::vector<std::uint8_t> resolved_;  ///< flat flags; vector<bool> is slower
  std::vector<SegmentBasis> basis_;     ///< per-processor segment state
  std::vector<PendingAwait> pending_;   ///< per-processor awaitE memo
  EventBasedResult stats_;
};

}  // namespace

EventBasedResult event_based_approximation(const trace::Trace& measured,
                                           const AnalysisOverheads& overheads,
                                           const EventBasedOptions& options) {
  const TraceIndex index(measured);
  return Reconstructor(index, overheads, options).run();
}

EventBasedResult event_based_approximation(const trace::TraceIndex& index,
                                           const AnalysisOverheads& overheads,
                                           const EventBasedOptions& options) {
  return Reconstructor(index, overheads, options).run();
}

// ---- streaming (windowed) reconstruction ---------------------------------

void CollectSink::on_segment(trace::ProcId proc, const RetimedEvent* events,
                             std::size_t n) {
  if (chains_.size() <= proc) chains_.resize(proc + 1u);
  chains_[proc].insert(chains_[proc].end(), events, events + n);
}

std::size_t CollectSink::size() const noexcept {
  std::size_t total = 0;
  for (const auto& c : chains_) total += c.size();
  return total;
}

trace::Trace CollectSink::take(const trace::TraceInfo& measured_info) {
  Trace approx(measured_info);
  approx.info().name = measured_info.name + "/event-based";
  approx.events().reserve(size());
  // Same linear min-scan k-way merge as the batch build_result: each chain
  // is nondecreasing in (t_a, measured index), so the merge equals a stable
  // sort by time of the re-timed events.
  struct Cursor {
    Tick t;
    std::size_t idx;
    std::size_t chain;
    std::size_t pos;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(chains_.size());
  for (std::size_t p = 0; p < chains_.size(); ++p)
    if (!chains_[p].empty())
      cursors.push_back(
          {chains_[p][0].event.time, chains_[p][0].index, p, 0});
  while (!cursors.empty()) {
    std::size_t best = 0;
    for (std::size_t k = 1; k < cursors.size(); ++k) {
      const Cursor& a = cursors[k];
      const Cursor& b = cursors[best];
      if (a.t < b.t || (a.t == b.t && a.idx < b.idx)) best = k;
    }
    Cursor& c = cursors[best];
    approx.append(chains_[c.chain][c.pos].event);
    if (++c.pos < chains_[c.chain].size()) {
      const RetimedEvent& next = chains_[c.chain][c.pos];
      c.t = next.event.time;
      c.idx = next.index;
    } else {
      cursors[best] = cursors.back();
      cursors.pop_back();
    }
  }
  chains_.clear();
  return approx;
}

/// Streaming mirror of the batch Reconstructor.  Dependencies on already
/// retired events are answered from small lookaside records created at
/// ingest (one per advance / lock release / semaphore release / loop spawn
/// / barrier episode / resolved await-begin) instead of from a TraceIndex,
/// and events wait in per-processor FIFO queues until their dependencies
/// resolve.  Every formula, clamp, stats update, and fallback matches
/// try_resolve in the batch Reconstructor above — when editing either,
/// update both (the stream_test fuzz grid holds them equal).
struct StreamingReconstructor::Impl {
  /// A dependency source's approximated time, shared between the pending
  /// event that will resolve it and everyone captured a reference to it.
  struct DepRec {
    Tick ta = 0;
    bool resolved = false;
  };

  /// One LoopBegin: fork dependents need both its measured and approximated
  /// times.
  struct LoopRec {
    Tick tm = 0;
    Tick ta = 0;
    bool resolved = false;
  };

  /// A resolved await-begin's approximated and measured times.
  struct AwaitBRec {
    Tick ta = 0;
    Tick tm = 0;
  };

  struct BarrierRec {
    std::size_t seen = 0;      ///< arrivals ingested
    std::size_t resolved = 0;  ///< arrivals resolved
    Tick max_ta = 0;
  };

  /// Per-processor independent-execution segment state; see the batch
  /// Reconstructor's SegmentBasis.
  struct SegmentBasis {
    bool valid = false;
    Tick basis_ta = 0;
    Tick basis_tm = 0;
    Tick overhead = 0;
  };

  /// An ingested, not yet resolved event.  `rec` is the event's own DepRec
  /// (advance, lock/semaphore release) or its captured dependency (lock
  /// acquire); `self` is a LoopBegin's loop ordinal or a SemAcquire's
  /// per-object acquire ordinal.  DepRecs live in `dep_arena_` (a deque:
  /// appends never move existing elements), so a plain pointer stays valid
  /// for the reconstructor's lifetime — no per-record heap allocation.
  struct Pending {
    Event e;
    std::size_t index = 0;
    std::size_t fork = kNone;  ///< loop ordinal of the fork dependency
    std::size_t self = kNone;
    DepRec* rec = nullptr;
  };

  struct AwaitBKey {
    SyncKey key;
    trace::ProcId proc = 0;
    friend bool operator==(const AwaitBKey&, const AwaitBKey&) = default;
  };
  struct AwaitBKeyHash {
    std::size_t operator()(const AwaitBKey& k) const noexcept {
      return trace::SyncKeyHash{}(k.key) * 1000003u + k.proc;
    }
  };

  Impl(const AnalysisOverheads& overheads, const EventBasedOptions& options,
       std::size_t window, StreamSink& sink)
      : ov_(overheads), opt_(options), window_(window), sink_(&sink) {}

  // ---- ingest -------------------------------------------------------------

  DepRec* new_rec() {
    dep_arena_.emplace_back();
    return &dep_arena_.back();
  }

  void push(const Event* events, std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) ingest(events[k]);
    if (resident_ >= window_) {
      ++windows_;
      drain();
    }
  }

  void ingest(const Event& e) {
    Pending pd;
    pd.e = e;
    pd.index = next_index_++;

    // Fork tracking — the per-event transition of the index builders' scan.
    if (e.kind == EventKind::kLoopBegin) {
      pd.self = loop_recs_.size();
      loop_recs_.push_back({e.time, 0, false});
      open_loop_ = pd.self;
      if (joined_loop_.size() <= e.proc) joined_loop_.resize(e.proc + 1u, 0);
      joined_loop_[e.proc] = open_loop_ + 1;  // master's chain covers it
    } else if (e.kind == EventKind::kLoopEnd) {
      open_loop_ = kNone;
    } else if (open_loop_ != kNone) {
      if (joined_loop_.size() <= e.proc) joined_loop_.resize(e.proc + 1u, 0);
      if (joined_loop_[e.proc] != open_loop_ + 1) {
        joined_loop_[e.proc] = open_loop_ + 1;
        pd.fork = open_loop_;
      }
    }

    const SyncKey key{e.object, e.payload};
    switch (e.kind) {
      case EventKind::kAdvance:
        pd.rec = new_rec();
        advances_[key] = pd.rec;  // latest seen wins, like last_advance
        break;
      case EventKind::kLockRelease:
        pd.rec = new_rec();
        lock_latest_[e.object] = pd.rec;
        break;
      case EventKind::kLockAcquire: {
        // Captured at ingest == the latest release *before* this event,
        // exactly TraceIndex::lock_dep.
        const auto it = lock_latest_.find(e.object);
        if (it != lock_latest_.end()) pd.rec = it->second;
        break;
      }
      case EventKind::kSemAcquire:
        pd.self = sem_acquire_count_[e.object]++;
        break;
      case EventKind::kSemRelease:
        pd.rec = new_rec();
        sem_releases_[e.object].push_back(pd.rec);
        break;
      case EventKind::kBarrierArrive:
        ++barriers_[key].seen;
        break;
      default:
        break;
    }

    if (queues_.size() <= e.proc) queues_.resize(e.proc + 1u);
    queues_[e.proc].push_back(std::move(pd));
    ++resident_;
    resident_hwm_ = std::max(resident_hwm_, resident_);
  }

  // ---- resolution ---------------------------------------------------------

  Tick base_time(const Pending& pd) {
    const Event& e = pd.e;
    const Cycles alpha = ov_.probe_for(e.kind);
    if (pd.fork != kNone) {
      const LoopRec& lr = loop_recs_[pd.fork];
      Tick gap = (e.time - lr.tm) - alpha;
      if (gap < 0) gap = 0;
      return lr.ta + gap;
    }
    if (basis_.size() <= e.proc) basis_.resize(e.proc + 1u);
    SegmentBasis& seg = basis_[e.proc];
    if (!seg.valid) {
      const Tick t = e.time - alpha;
      return t < 0 ? 0 : t;
    }
    seg.overhead += alpha;
    Tick t = seg.basis_ta + (e.time - seg.basis_tm) - seg.overhead;
    if (t < seg.basis_ta) t = seg.basis_ta;
    return t;
  }

  void rebase(const Event& e, Tick t) {
    if (basis_.size() <= e.proc) basis_.resize(e.proc + 1u);
    basis_[e.proc] = {true, t, e.time, 0};
  }

  /// Streaming try_resolve: false — with no side effects — while a
  /// dependency is unresolved (or, before end-of-stream, possibly not yet
  /// ingested).  The formulae are the batch Reconstructor's.
  bool try_resolve(Pending& pd) {
    const Event& e = pd.e;
    if (pd.fork != kNone && !loop_recs_[pd.fork].resolved) return false;
    Tick t;
    bool anchored = false;  // time came from a dependency model
    switch (e.kind) {
      case EventKind::kAwaitEnd: {
        const SyncKey key{e.object, e.payload};
        const auto adv = advances_.find(key);
        const DepRec* advrec = adv == advances_.end() ? nullptr : adv->second;
        // An unseen advance may still arrive; only end-of-stream makes the
        // batch reader's "no advance" (kNone) fallback definitive.
        if (advrec == nullptr && !eof_) return false;
        if (advrec != nullptr && !advrec->resolved) return false;
        const auto ab = awaitbs_.find(AwaitBKey{key, e.proc});
        if (advrec == nullptr || ab == awaitbs_.end()) {
          // Degenerate trace (missing partner events): fall back to the
          // time-based rule.
          t = base_time(pd);
          break;
        }
        anchored = true;
        const Tick advance_t = advrec->ta;
        const Tick await_b_t = ab->second.ta;
        ++stats_.awaits_total;
        const Cycles gamma = ov_.probe_for(EventKind::kAwaitEnd);
        const Tick nowait_span =
            ov_.s_nowait + gamma + std::max<Cycles>(4, gamma / 4);
        const bool waited_measured = e.time - ab->second.tm > nowait_span;
        // One await-end consumes one await-begin on its own processor:
        // retire the record so the lookaside tracks outstanding awaits
        // (O(window)), not every await in the trace.
        awaitbs_.erase(ab);
        const Tick no_wait_t = await_b_t + ov_.s_nowait;
        const Tick wait_t = advance_t + ov_.s_wait;
        const bool waits_approx = wait_t > no_wait_t;
        stats_.waits_measured += waited_measured ? 1 : 0;
        stats_.waits_approx += waits_approx ? 1 : 0;
        stats_.waits_removed += (waited_measured && !waits_approx) ? 1 : 0;
        stats_.waits_introduced += (!waited_measured && waits_approx) ? 1 : 0;
        t = std::max(no_wait_t, wait_t);
        break;
      }
      case EventKind::kLockAcquire: {
        if (!opt_.model_locks) {
          t = base_time(pd);
          break;
        }
        if (pd.rec != nullptr && !pd.rec->resolved) return false;
        anchored = true;
        const Tick request = last_ta(e.proc);
        const Tick available = pd.rec == nullptr ? request : pd.rec->ta;
        t = std::max(request, available) + ov_.lock_acquire;
        break;
      }
      case EventKind::kSemAcquire: {
        const auto cap = opt_.semaphore_capacity.find(e.object);
        if (cap == opt_.semaphore_capacity.end()) {
          t = base_time(pd);  // capacity unknown: time-based fallback
          break;
        }
        const DepRec* dep = nullptr;
        if (pd.self >= static_cast<std::size_t>(cap->second)) {
          const std::size_t r =
              pd.self - static_cast<std::size_t>(cap->second);
          const auto rel = sem_releases_.find(e.object);
          const std::size_t have =
              rel == sem_releases_.end() ? 0 : rel->second.size();
          if (r < have) {
            dep = rel->second[r];
          } else if (!eof_) {
            return false;  // the release may still arrive
          }
        }
        if (dep != nullptr && !dep->resolved) return false;
        anchored = true;
        const Tick request = last_ta(e.proc);
        const Tick available = dep == nullptr ? request : dep->ta;
        t = std::max(request, available) + ov_.sem_acquire;
        break;
      }
      case EventKind::kBarrierDepart: {
        if (!opt_.model_barriers) {
          t = base_time(pd);
          break;
        }
        // Arrivals precede departures in any consistent episode, so every
        // arrival is already ingested (seen) by the time the departure is
        // at its queue head — the seen count equals the episode's full
        // arrival list.
        const auto it = barriers_.find(SyncKey{e.object, e.payload});
        Tick release = 0;
        if (it != barriers_.end()) {
          if (it->second.resolved < it->second.seen) return false;
          release = it->second.max_ta;
        }
        anchored = true;
        t = release + ov_.barrier_depart;
        break;
      }
      default:
        t = base_time(pd);
        break;
    }
    // Per-processor monotonicity: the dependency models can only push events
    // later than the same-processor predecessor, never earlier.
    if (e.proc < has_last_.size() && has_last_[e.proc])
      t = std::max(t, last_ta_[e.proc]);

    // Publish this event as a dependency source.
    switch (e.kind) {
      case EventKind::kAdvance:
      case EventKind::kLockRelease:
      case EventKind::kSemRelease:
        pd.rec->ta = t;
        pd.rec->resolved = true;
        break;
      case EventKind::kAwaitBegin:
        awaitbs_[AwaitBKey{SyncKey{e.object, e.payload}, e.proc}] = {t, e.time};
        break;
      case EventKind::kBarrierArrive: {
        BarrierRec& br = barriers_[SyncKey{e.object, e.payload}];
        ++br.resolved;
        br.max_ta = std::max(br.max_ta, t);
        break;
      }
      case EventKind::kLoopBegin: {
        LoopRec& lr = loop_recs_[pd.self];
        lr.ta = t;
        lr.resolved = true;
        break;
      }
      default:
        break;
    }

    if (has_last_.size() <= e.proc) {
      has_last_.resize(e.proc + 1u, 0);
      last_ta_.resize(e.proc + 1u, 0);
    }
    const bool first_on_proc =
        basis_.size() <= e.proc || !basis_[e.proc].valid;
    has_last_[e.proc] = 1;
    last_ta_[e.proc] = t;
    if (anchored || first_on_proc || pd.fork != kNone) rebase(e, t);
    // Retire: the pending event now carries its approximated time.
    pd.e.time = t;
    return true;
  }

  Tick last_ta(trace::ProcId proc) const {
    return proc < has_last_.size() && has_last_[proc] ? last_ta_[proc] : 0;
  }

  /// Round-robin over the per-processor queues until a full pass makes no
  /// progress, spilling each processor's resolved run as one segment.
  void drain() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t p = 0; p < queues_.size(); ++p) {
        auto& q = queues_[p];
        scratch_.clear();
        while (!q.empty() && try_resolve(q.front())) {
          scratch_.push_back({q.front().e, q.front().index});
          q.pop_front();
          --resident_;
          progress = true;
        }
        if (!scratch_.empty()) {
          sink_->on_segment(static_cast<trace::ProcId>(p), scratch_.data(),
                            scratch_.size());
          ++spills_;
        }
      }
    }
  }

  EventBasedResult finish() {
    eof_ = true;
    ++windows_;
    drain();
    PERTURB_CHECK_MSG(
        resident_ == 0,
        support::strf("event-based analysis deadlocked with %zu unresolved "
                      "events (inconsistent measured trace?)",
                      resident_));
    return std::move(stats_);
  }

  const AnalysisOverheads ov_;
  const EventBasedOptions opt_;
  const std::size_t window_;
  StreamSink* sink_;

  bool eof_ = false;
  std::size_t next_index_ = 0;
  std::size_t resident_ = 0;
  std::size_t resident_hwm_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t spills_ = 0;

  std::vector<std::deque<Pending>> queues_;  ///< by processor
  std::vector<RetimedEvent> scratch_;

  // Ingest-side scan state (fork / ordinal assignment).
  std::vector<std::size_t> joined_loop_;  ///< by proc; loop ordinal + 1
  std::size_t open_loop_ = kNone;
  std::unordered_map<trace::ObjectId, std::size_t> sem_acquire_count_;
  std::unordered_map<trace::ObjectId, DepRec*> lock_latest_;

  // Dependency lookasides.  DepRecs are arena-allocated (16 bytes apiece, no
  // per-record malloc): sync state is the only reconstructor footprint that
  // scales with the trace, so its constant factor decides how far streaming
  // undercuts batch peak RSS.
  std::deque<DepRec> dep_arena_;
  std::vector<LoopRec> loop_recs_;
  std::unordered_map<SyncKey, DepRec*, trace::SyncKeyHash> advances_;
  std::unordered_map<AwaitBKey, AwaitBRec, AwaitBKeyHash> awaitbs_;
  std::unordered_map<trace::ObjectId, std::vector<DepRec*>> sem_releases_;
  std::unordered_map<SyncKey, BarrierRec, trace::SyncKeyHash> barriers_;

  // Resolution-side per-processor state.
  std::vector<SegmentBasis> basis_;
  std::vector<Tick> last_ta_;
  std::vector<std::uint8_t> has_last_;

  EventBasedResult stats_;
};

StreamingReconstructor::StreamingReconstructor(
    const AnalysisOverheads& overheads, const EventBasedOptions& options,
    std::size_t window, StreamSink& sink)
    : impl_(std::make_unique<Impl>(overheads, options, window, sink)) {}

StreamingReconstructor::~StreamingReconstructor() = default;

void StreamingReconstructor::push(const trace::Event* events, std::size_t n) {
  impl_->push(events, n);
}

EventBasedResult StreamingReconstructor::finish() { return impl_->finish(); }

std::uint64_t StreamingReconstructor::windows_processed() const noexcept {
  return impl_->windows_;
}
std::uint64_t StreamingReconstructor::segments_spilled() const noexcept {
  return impl_->spills_;
}
std::size_t StreamingReconstructor::resident_high_water() const noexcept {
  return impl_->resident_hwm_;
}
std::uint64_t StreamingReconstructor::events_pushed() const noexcept {
  return impl_->next_index_;
}

}  // namespace perturb::core
