#include "core/pipeline.hpp"

#include <cstdio>
#include <utility>

#include "analysis/critical_path.hpp"
#include "analysis/parallelism.hpp"
#include "analysis/waiting.hpp"
#include "core/timebased.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/text.hpp"
#include "trace/chunk_reader.hpp"

namespace perturb::core {

namespace {

using trace::Trace;
using trace::TraceIndex;

// Self-observability: wall-clock spans of the pipeline composition
// (load → triage → repair → index → analyses) plus tallies of what flowed
// through each stage.  On the single-file, single-thread path the stages are
// disjoint, so the per-stage sums account for nearly all of the end-to-end
// time; batched drivers overlap stages across workers, where the sums
// measure aggregate stage cost instead.
const support::HistogramMetric kPhaseLoad("pipeline.phase.load.ns");
const support::HistogramMetric kPhaseTriage("pipeline.phase.triage.ns");
const support::HistogramMetric kPhaseRepair("pipeline.phase.repair.ns");
const support::HistogramMetric kPhaseIndex("pipeline.phase.index.ns");
const support::HistogramMetric kPhaseAnalyses("pipeline.phase.analyses.ns");
const support::Counter kRuns("pipeline.runs");
const support::Counter kEventsMeasured("pipeline.events.measured");
const support::Counter kTriageViolations("pipeline.triage.violations");
const support::Counter kRepairDropped("pipeline.repair.events_dropped");
const support::Counter kRepairSynthesized("pipeline.repair.events_synthesized");
const support::Counter kRepairAdjusted("pipeline.repair.events_adjusted");
const support::Counter kQualityScored("pipeline.quality.scored");

// Streaming path: chunks decoded, drain passes run, segments spilled to the
// sink, and the high-water mark of events resident in the reconstructor
// (the number the O(window) memory claim is about).
const support::Counter kStreamChunks("pipeline.stream.chunks");
const support::Counter kStreamWindows("pipeline.stream.windows");
const support::Counter kStreamSpills("pipeline.stream.spills");
const support::Gauge kStreamResidentHwm("pipeline.stream.resident_events.hwm");

/// Cooperative cancellation checkpoint at a phase boundary; no-op without a
/// token.  Throws support::CancelledError once the options' token has fired.
void checkpoint(const PipelineOptions& options, const char* where) {
  if (options.cancel != nullptr) options.cancel->check(where);
}

/// StreamSink that folds retired events into the approximated-trace summary
/// (span, total time) without keeping them: the O(window) half of
/// run_stream_file.  The program markers are resolved in merged-trace order
/// — (approximated time, measured index), the CollectSink merge key — so
/// span()/total() equal Trace::span()/total_time() on the collected trace.
class TotalsSink final : public StreamSink {
 public:
  void on_segment(trace::ProcId /*proc*/, const RetimedEvent* events,
                  std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) {
      const trace::Event& e = events[i].event;  // time = approximated
      const std::pair<trace::Tick, std::size_t> key{e.time, events[i].index};
      if (count_ == 0 || e.time < min_) min_ = e.time;
      if (count_ == 0 || e.time > max_) max_ = e.time;
      ++count_;
      if (e.kind == trace::EventKind::kProgramBegin &&
          (!have_begin_ || key < begin_)) {
        have_begin_ = true;
        begin_ = key;
      }
      if (e.kind == trace::EventKind::kProgramEnd &&
          (!have_end_ || key > end_)) {
        have_end_ = true;
        end_ = key;
      }
    }
  }

  trace::Tick span() const { return count_ == 0 ? 0 : max_ - min_; }
  trace::Tick total() const {
    return have_begin_ && have_end_ ? end_.first - begin_.first : span();
  }

 private:
  std::size_t count_ = 0;
  trace::Tick min_ = 0;
  trace::Tick max_ = 0;
  bool have_begin_ = false;
  bool have_end_ = false;
  std::pair<trace::Tick, std::size_t> begin_{};
  std::pair<trace::Tick, std::size_t> end_{};
};

class TimeBasedAnalyzer final : public Analyzer {
 public:
  const char* name() const noexcept override { return "time-based"; }
  AnalyzerOutput run(const TraceIndex& index,
                     const PipelineOptions& options) const override {
    AnalyzerOutput out;
    out.analyzer = name();
    out.approx = time_based_approximation(index.trace(), options.overheads);
    return out;
  }
};

class EventBasedAnalyzer final : public Analyzer {
 public:
  const char* name() const noexcept override { return "event-based"; }
  AnalyzerOutput run(const TraceIndex& index,
                     const PipelineOptions& options) const override {
    AnalyzerOutput out;
    out.analyzer = name();
    EventBasedResult result = event_based_approximation(
        index, options.overheads, options.event_based);
    out.approx = std::move(result.approx);
    result.approx = Trace{};
    out.event_stats = std::move(result);
    return out;
  }
};

class LiberalAnalyzer final : public Analyzer {
 public:
  const char* name() const noexcept override { return "liberal"; }
  AnalyzerOutput run(const TraceIndex& index,
                     const PipelineOptions& options) const override {
    AnalyzerOutput out;
    out.analyzer = name();
    const DoacrossShape shape =
        extract_doacross_shape(index, options.overheads);
    LiberalOptions replay;
    replay.machine = options.machine;
    replay.schedule = options.schedule;
    LiberalResult result = liberal_approximation(shape, replay);
    out.approx = std::move(result.approx);
    result.approx = Trace{};
    out.liberal = std::move(result);
    return out;
  }
};

class LikelyAnalyzer final : public Analyzer {
 public:
  const char* name() const noexcept override { return "likely"; }
  bool produces_trace() const noexcept override { return false; }
  AnalyzerOutput run(const TraceIndex& index,
                     const PipelineOptions& options) const override {
    AnalyzerOutput out;
    out.analyzer = name();
    const DoacrossShape shape =
        extract_doacross_shape(index, options.overheads);
    LikelyOptions opt;
    opt.machine = options.machine;
    opt.schedule = options.schedule;
    opt.samples = options.likely_samples;
    opt.cost_uncertainty = options.likely_uncertainty;
    opt.seed = options.seed;
    opt.threads = options.threads;
    out.distribution = likely_executions(shape, opt);
    return out;
  }
};

class AnalyticAnalyzer final : public Analyzer {
 public:
  const char* name() const noexcept override { return "analytic"; }
  bool produces_trace() const noexcept override { return false; }
  AnalyzerOutput run(const TraceIndex& index,
                     const PipelineOptions& options) const override {
    AnalyzerOutput out;
    out.analyzer = name();
    const DoacrossShape shape =
        extract_doacross_shape(index, options.overheads);
    LiberalOptions replay;
    replay.machine = options.machine;
    replay.schedule = options.schedule;
    out.analytic = analytic_approximation(shape, replay);
    return out;
  }
};

}  // namespace

std::unique_ptr<Analyzer> make_analyzer(AnalyzerKind kind) {
  switch (kind) {
    case AnalyzerKind::kTimeBased: return std::make_unique<TimeBasedAnalyzer>();
    case AnalyzerKind::kEventBased:
      return std::make_unique<EventBasedAnalyzer>();
    case AnalyzerKind::kLiberal: return std::make_unique<LiberalAnalyzer>();
    case AnalyzerKind::kLikely: return std::make_unique<LikelyAnalyzer>();
    case AnalyzerKind::kAnalytic:
      return std::make_unique<AnalyticAnalyzer>();
  }
  PERTURB_CHECK_MSG(false, "unknown analyzer kind");
  return nullptr;
}

std::string render_acquire(const AcquireOutcome& outcome) {
  std::string out;
  if (outcome.salvaged)
    out += "salvage: " + outcome.salvage.describe() + "\n";
  if (outcome.repaired) out += trace::render_manifest(outcome.manifest);
  return out;
}

AcquireOutcome trusted_acquire(Trace measured) {
  AcquireOutcome outcome;
  outcome.measured = std::move(measured);
  outcome.ok = true;
  return outcome;
}

const AnalyzerOutput* PipelineResult::output(std::string_view analyzer) const {
  for (const auto& o : outputs)
    if (o.analyzer == analyzer) return &o;
  return nullptr;
}

AnalysisPipeline::AnalysisPipeline(PipelineOptions options)
    : options_(std::move(options)) {}
AnalysisPipeline::~AnalysisPipeline() = default;
AnalysisPipeline::AnalysisPipeline(AnalysisPipeline&&) noexcept = default;
AnalysisPipeline& AnalysisPipeline::operator=(AnalysisPipeline&&) noexcept =
    default;

AnalysisPipeline& AnalysisPipeline::add(AnalyzerKind kind) {
  return add(make_analyzer(kind));
}

AnalysisPipeline& AnalysisPipeline::add(std::unique_ptr<Analyzer> analyzer) {
  PERTURB_CHECK(analyzer != nullptr);
  analyzers_.push_back(std::move(analyzer));
  return *this;
}

AcquireOutcome AnalysisPipeline::acquire_file(const std::string& path) const {
  trace::IoArena arena;
  return acquire_file(path, arena);
}

AcquireOutcome AnalysisPipeline::acquire_file(const std::string& path,
                                              trace::IoArena& arena) const {
  checkpoint(options_, "load");
  if (options_.repair == RepairMode::kOff) {
    Trace loaded = [&] {
      const support::PhaseTimer timer(kPhaseLoad);
      return trace::load(path, arena);
    }();
    return acquire(std::move(loaded));
  }

  AcquireOutcome outcome;
  {
    const support::PhaseTimer timer(kPhaseLoad);
    outcome.measured = trace::load_salvage(path, outcome.salvage, arena);
  }
  if (!outcome.salvage.complete) {
    outcome.salvaged = true;
    outcome.degraded = true;
  }
  if (outcome.measured.empty()) {
    outcome.diagnosis = support::strf(
        "trace is unsalvageable: no events recovered from %s", path.c_str());
    return outcome;
  }
  AcquireOutcome triaged = acquire(std::move(outcome.measured));
  triaged.salvaged = outcome.salvaged;
  triaged.salvage = std::move(outcome.salvage);
  triaged.degraded |= outcome.degraded;
  return triaged;
}

AcquireOutcome AnalysisPipeline::acquire(Trace measured) const {
  AcquireOutcome outcome;
  if (measured.empty()) {
    // A header-only file (declared count 0, or a salvage that recovered
    // nothing) used to flow all the way into the analyzers and produce NaN
    // ratios; fail the acquisition with a diagnosis instead.
    outcome.diagnosis = "trace contains no events; nothing to analyze";
    outcome.measured = std::move(measured);
    return outcome;
  }
  checkpoint(options_, "triage");
  trace::ValidateOptions validate_opts;
  validate_opts.sync_slack = options_.sync_slack;
  {
    const support::PhaseTimer timer(kPhaseTriage);
    outcome.violations = trace::validate(measured, validate_opts);
  }
  kTriageViolations.add(outcome.violations.size());
  if (outcome.violations.empty()) {
    outcome.measured = std::move(measured);
    outcome.ok = true;
    return outcome;
  }

  if (options_.repair == RepairMode::kOff) {
    outcome.diagnosis = support::strf(
        "input trace has %zu causality violation(s); analysis requires a "
        "happened-before-consistent trace (enable repair to triage):\n%s",
        outcome.violations.size(),
        trace::describe(outcome.violations).c_str());
    outcome.measured = std::move(measured);
    return outcome;
  }

  checkpoint(options_, "repair");
  trace::RepairOptions repair_opts;
  repair_opts.aggressive = options_.repair == RepairMode::kAggressive;
  repair_opts.sync_slack = options_.sync_slack;
  auto result = [&] {
    const support::PhaseTimer timer(kPhaseRepair);
    return trace::repair(measured, repair_opts);
  }();
  outcome.repaired = true;
  outcome.manifest = std::move(result.manifest);
  kRepairDropped.add(outcome.manifest.events_dropped);
  kRepairSynthesized.add(outcome.manifest.events_synthesized);
  kRepairAdjusted.add(outcome.manifest.events_adjusted);
  if (outcome.manifest.severity == trace::RepairSeverity::kUnsalvageable) {
    outcome.diagnosis = support::strf(
        "trace is unsalvageable: %zu violation(s) survived repair:\n%s",
        outcome.manifest.remaining.size(),
        trace::describe(outcome.manifest.remaining).c_str());
    outcome.measured = std::move(measured);
    return outcome;
  }
  outcome.degraded =
      outcome.manifest.severity >= trace::RepairSeverity::kLossy;
  outcome.measured = std::move(result.repaired);
  outcome.ok = true;
  return outcome;
}

void AnalysisPipeline::run_analyzers(PipelineResult& result,
                                     const TraceIndex& index,
                                     const Trace* actual,
                                     support::TaskPool& pool) const {
  // The span covers the whole fan-out on the calling thread, so quality
  // scoring inside the workers is part of the analyses stage.
  const support::PhaseTimer timer(kPhaseAnalyses);
  checkpoint(options_, "analyses");
  result.outputs.resize(analyzers_.size());
  // Independent passes over the shared immutable index: each analyzer
  // writes only its own slot, so the run is deterministic at any thread
  // count.
  pool.parallel_for(analyzers_.size(), [&](std::size_t k) {
    const Analyzer& analyzer = *analyzers_[k];
    checkpoint(options_, analyzer.name());
    AnalyzerOutput out = analyzer.run(index, options_);
    if (actual != nullptr && analyzer.produces_trace()) {
      ApproximationQuality q =
          assess(result.acquire.measured, out.approx, *actual);
      q.degraded_input = result.acquire.degraded;
      out.quality = q;
      kQualityScored.add();
    }
    result.outputs[k] = std::move(out);
  });
}

PipelineResult AnalysisPipeline::run(AcquireOutcome acquired,
                                     const Trace* actual) const {
  PipelineResult result;
  result.acquire = std::move(acquired);
  if (!result.acquire.ok) return result;
  kRuns.add();
  kEventsMeasured.add(result.acquire.measured.size());

  checkpoint(options_, "index");
  support::TaskPool pool(options_.threads);
  std::optional<TraceIndex> index;
  {
    const support::PhaseTimer timer(kPhaseIndex);
    index.emplace(result.acquire.measured, pool);
  }
  run_analyzers(result, *index, actual, pool);
  return result;
}

PipelineResult AnalysisPipeline::run_fused(
    Trace measured, const Trace* actual, support::TaskPool& pool,
    trace::IncrementalTraceIndex* builder) const {
  PipelineResult result;
  AcquireOutcome& outcome = result.acquire;
  if (measured.empty()) {
    // Same guard as acquire(): header-only inputs fail with a diagnosis
    // instead of producing NaN analysis output.
    outcome.diagnosis = "trace contains no events; nothing to analyze";
    outcome.measured = std::move(measured);
    return result;
  }
  checkpoint(options_, "index");
  trace::ValidateOptions validate_opts;
  validate_opts.sync_slack = options_.sync_slack;
  outcome.measured = std::move(measured);
  kRuns.add();
  kEventsMeasured.add(outcome.measured.size());
  // The index must be built after the trace reaches its final address
  // (outcome.measured); it is read only within this scope.
  std::optional<TraceIndex> index;
  {
    const support::PhaseTimer timer(kPhaseIndex);
    if (builder != nullptr)
      index.emplace(std::move(*builder).seal(outcome.measured));
    else
      index.emplace(outcome.measured, pool);
  }
  {
    const support::PhaseTimer timer(kPhaseTriage);
    outcome.violations = trace::validate(*index, validate_opts);
  }
  kTriageViolations.add(outcome.violations.size());
  if (outcome.violations.empty()) {
    outcome.ok = true;
    run_analyzers(result, *index, actual, pool);
    return result;
  }

  // Violating input: hand the trace to the standard acquire path (diagnosis
  // or repair).  A repaired trace differs from the loaded one, so the shared
  // index is of no use past this point.  (Triage runs — and is counted —
  // again inside acquire; the counters tally work done, not work needed.)
  PipelineResult degraded;
  degraded.acquire = acquire(std::move(outcome.measured));
  if (!degraded.acquire.ok) return degraded;
  std::optional<TraceIndex> repaired_index;
  {
    const support::PhaseTimer timer(kPhaseIndex);
    repaired_index.emplace(degraded.acquire.measured, pool);
  }
  run_analyzers(degraded, *repaired_index, actual, pool);
  return degraded;
}

PipelineResult AnalysisPipeline::run(Trace measured,
                                     const Trace* actual) const {
  support::TaskPool pool(options_.threads);
  return run_fused(std::move(measured), actual, pool);
}

PipelineResult AnalysisPipeline::run_file(const std::string& path,
                                          const Trace* actual) const {
  if (options_.repair != RepairMode::kOff) return run(acquire_file(path), actual);
  checkpoint(options_, "load");
  support::TaskPool pool(options_.threads);
  Trace loaded = [&] {
    const support::PhaseTimer timer(kPhaseLoad);
    return trace::load(path);
  }();
  return run_fused(std::move(loaded), actual, pool);
}

PipelineResult AnalysisPipeline::run_sealed(
    Trace measured, trace::IncrementalTraceIndex builder,
    const Trace* actual) const {
  support::TaskPool pool(options_.threads);
  return run_fused(std::move(measured), actual, pool, &builder);
}

StreamOutcome AnalysisPipeline::run_stream_file(const std::string& path,
                                                bool collect) const {
  PERTURB_CHECK_MSG(options_.stream_window >= trace::kStreamChunkEvents,
                    "stream window must hold at least one chunk");
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".ptt") == 0)
    throw trace::MalformedTraceError(
        "text traces cannot be streamed; convert to v2 binary or run batch "
        "mode");
  checkpoint(options_, "load");

  StreamOutcome out;
  // Incremental read through a fixed buffer into the feed-mode reader — NOT
  // a whole-file map: mapped pages the decode touches would stay resident,
  // and bounding resident memory is this entry point's whole purpose.
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr)
    throw trace::IoError("cannot open trace file: " + path);
  struct FileCloser {
    std::FILE* f;
    ~FileCloser() { std::fclose(f); }
  } closer{file};
  trace::ChunkReader reader(options_.repair != RepairMode::kOff);

  CollectSink collected;
  TotalsSink totals;
  StreamingReconstructor recon(options_.overheads, options_.event_based,
                               options_.stream_window,
                               collect ? static_cast<StreamSink&>(collected)
                                       : totals);

  // Measured-trace summary, accumulated in trace order as chunks decode —
  // the same first-wins ProgramBegin / last-wins ProgramEnd scan
  // Trace::total_time() runs over a materialized trace.
  bool have_begin = false;
  bool have_end = false;
  trace::Tick begin_t = 0;
  trace::Tick end_t = 0;
  trace::Tick min_t = 0;
  trace::Tick max_t = 0;
  std::vector<trace::Event> chunk;
  std::vector<char> buffer(256 * 1024);
  bool eof = false;
  for (;;) {
    // Drain every chunk the fed bytes complete before reading more, so the
    // reader's backlog stays bounded by one read buffer.
    while (reader.next(chunk) == trace::ChunkReader::Status::kChunk) {
      checkpoint(options_, "stream");
      ++out.chunks;
      for (const trace::Event& e : chunk) {
        if (out.measured_events == 0 || e.time < min_t) min_t = e.time;
        if (out.measured_events == 0 || e.time > max_t) max_t = e.time;
        ++out.measured_events;
        if (e.kind == trace::EventKind::kProgramBegin && !have_begin) {
          have_begin = true;
          begin_t = e.time;
        }
        if (e.kind == trace::EventKind::kProgramEnd) {
          have_end = true;
          end_t = e.time;
        }
      }
      recon.push(chunk);
    }
    if (eof) break;
    const std::size_t got = std::fread(buffer.data(), 1, buffer.size(), file);
    if (got > 0) reader.feed(buffer.data(), got);
    if (got < buffer.size()) {
      if (std::ferror(file) != 0)
        throw trace::IoError("cannot read trace file: " + path);
      reader.finish();
      eof = true;
    }
  }
  out.info = reader.info();
  out.salvage = reader.report();
  out.salvaged = !out.salvage.complete;
  if (out.measured_events == 0) {
    out.diagnosis =
        out.salvaged
            ? support::strf(
                  "trace is unsalvageable: no events recovered from %s",
                  path.c_str())
            : "trace contains no events; nothing to analyze";
    return out;
  }
  out.measured_span = max_t - min_t;
  out.measured_total = have_begin && have_end ? end_t - begin_t
                                              : out.measured_span;
  kRuns.add();
  kEventsMeasured.add(out.measured_events);

  checkpoint(options_, "analyses");
  out.event_stats = recon.finish();
  if (collect) {
    out.event_stats.approx = collected.take(reader.info());
    out.approx_span = out.event_stats.approx.span();
    out.approx_total = out.event_stats.approx.total_time();
  } else {
    out.approx_span = totals.span();
    out.approx_total = totals.total();
  }
  out.windows = recon.windows_processed();
  out.spills = recon.segments_spilled();
  out.resident_high_water = recon.resident_high_water();
  kStreamChunks.add(out.chunks);
  kStreamWindows.add(out.windows);
  kStreamSpills.add(out.spills);
  kStreamResidentHwm.record_max(
      static_cast<std::int64_t>(out.resident_high_water));
  out.ok = true;
  return out;
}

PipelineResult AnalysisPipeline::run_one(const std::string& path,
                                         const Trace* actual,
                                         trace::IoArena& arena) const {
  try {
    support::TaskPool inline_pool(1);
    if (options_.repair != RepairMode::kOff) {
      PipelineResult result;
      result.acquire = acquire_file(path, arena);
      if (!result.acquire.ok) return result;
      kRuns.add();
      kEventsMeasured.add(result.acquire.measured.size());
      std::optional<TraceIndex> index;
      {
        const support::PhaseTimer timer(kPhaseIndex);
        index.emplace(result.acquire.measured);
      }
      run_analyzers(result, *index, actual, inline_pool);
      return result;
    }
    Trace loaded = [&] {
      const support::PhaseTimer timer(kPhaseLoad);
      return trace::load(path, arena);
    }();
    return run_fused(std::move(loaded), actual, inline_pool);
  } catch (const trace::MalformedTraceError& e) {
    // Invalid content (empty file, bad magic, corrupt header): a per-entry
    // failure, same as an unreadable file — one bad input must not abort
    // the batch.
    PipelineResult failed;
    failed.acquire.diagnosis = e.what();
    return failed;
  } catch (const trace::IoError& e) {
    PipelineResult failed;
    failed.acquire.diagnosis = e.what();
    return failed;
  }
}

std::vector<PipelineResult> AnalysisPipeline::run_many(
    const std::vector<std::string>& paths, const Trace* actual) const {
  std::vector<PipelineResult> results(paths.size());
  support::TaskPool pool(options_.threads);
  std::vector<trace::IoArena> arenas(pool.size());
  // One file per task; worker w is the sole user of arenas[w], so each
  // worker's load buffer is allocated once and reused across its block of
  // files.  Each result slot is written by exactly one task.
  pool.parallel_for(paths.size(), [&](std::size_t worker, std::size_t k) {
    results[k] = run_one(paths[k], actual, arenas[worker]);
  });
  return results;
}

std::string render_pipeline_report(const Trace& approx,
                                   const PipelineOptions& options) {
  analysis::WaitClassifier classifier;
  classifier.await_nowait = options.overheads.s_nowait;
  classifier.lock_acquire = options.overheads.lock_acquire;
  classifier.sem_acquire = options.overheads.sem_acquire;
  classifier.barrier_depart = options.overheads.barrier_depart;
  classifier.tolerance = 2;

  const TraceIndex index(approx);
  std::string out;
  const auto waits = analysis::waiting_analysis(index, classifier);
  out += "\n-- waiting --\n" + analysis::render_waiting_table(waits);
  const auto profile = analysis::parallelism_profile(index, classifier);
  out += support::strf(
      "\n-- parallelism --\naverage %.2f (parallel region %.2f)\n",
      profile.average, profile.average_parallel);
  out += "\n-- critical path --\n" +
         analysis::render_critical_path(analysis::critical_path(index));
  return out;
}

}  // namespace perturb::core
